package m2cc_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"m2cc"
)

// exampleLoader reads the shipped example modules, the same tree the
// `make lint` target points m2lint at.
func exampleLoader() *m2cc.DirLoader {
	return &m2cc.DirLoader{Dirs: []string{filepath.Join("examples", "modules")}}
}

// TestLintGoldenFindings byte-matches the analyzer's output on the
// LintFindings fixture (one instance of every finding class, including
// the cross-module unused-export in Shapes.def) against the checked-in
// golden file, for the sequential analyzer and for the concurrent
// checker under every DKY strategy.
func TestLintGoldenFindings(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("examples", "modules", "LintFindings.golden"))
	if err != nil {
		t.Fatal(err)
	}
	want := string(golden)
	loader := exampleLoader()
	if got := m2cc.RenderFindings(m2cc.Lint("LintFindings", loader)); got != want {
		t.Errorf("sequential analyzer diverges from golden file\ngot:\n%s\nwant:\n%s", got, want)
	}
	for _, dky := range []string{"avoidance", "pessimistic", "skeptical", "optimistic"} {
		strategy, err := m2cc.ParseStrategy(dky)
		if err != nil {
			t.Fatal(err)
		}
		res := m2cc.Compile("LintFindings", loader, m2cc.Options{
			Workers: 4, Strategy: strategy, Check: true,
		})
		if res.Failed() {
			t.Fatalf("%s: compile failed:\n%s", dky, res.Diags)
		}
		if got := m2cc.RenderFindings(res.Findings); got != want {
			t.Errorf("%s: concurrent findings diverge from golden file\ngot:\n%s\nwant:\n%s", dky, got, want)
		}
	}
}

// TestLintGoldenClean: the clean fixture produces no findings at all.
func TestLintGoldenClean(t *testing.T) {
	loader := exampleLoader()
	if got := m2cc.RenderFindings(m2cc.Lint("LintClean", loader)); got != "" {
		t.Errorf("sequential analyzer reports on the clean fixture:\n%s", got)
	}
	res := m2cc.Compile("LintClean", loader, m2cc.Options{Workers: 4, Check: true})
	if res.Failed() {
		t.Fatalf("compile failed:\n%s", res.Diags)
	}
	if got := m2cc.RenderFindings(res.Findings); got != "" {
		t.Errorf("concurrent checker reports on the clean fixture:\n%s", got)
	}
}

// TestLintJSONShape: the JSON export round-trips and mirrors the text
// rendering's count and order.
func TestLintJSONShape(t *testing.T) {
	findings := m2cc.Lint("LintFindings", exampleLoader())
	var buf bytes.Buffer
	if err := m2cc.WriteFindingsJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(decoded) != len(findings) {
		t.Fatalf("JSON has %d findings, analyzer produced %d", len(decoded), len(findings))
	}
	for i, d := range decoded {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Severity == "" || d.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, d)
		}
	}
}
