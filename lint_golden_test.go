package m2cc_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"m2cc"
)

// exampleLoader reads the shipped example modules, the same tree the
// `make lint` target points m2lint at.
func exampleLoader() *m2cc.DirLoader {
	return &m2cc.DirLoader{Dirs: []string{filepath.Join("examples", "modules")}}
}

// TestLintGoldenFindings byte-matches the analyzer's output on the
// LintFindings fixture (one instance of every finding class, including
// the cross-module unused-export in Shapes.def) against the checked-in
// golden file, for the sequential analyzer and for the concurrent
// checker under every DKY strategy.
func TestLintGoldenFindings(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("examples", "modules", "LintFindings.golden"))
	if err != nil {
		t.Fatal(err)
	}
	want := string(golden)
	loader := exampleLoader()
	if got := m2cc.RenderFindings(m2cc.Lint("LintFindings", loader)); got != want {
		t.Errorf("sequential analyzer diverges from golden file\ngot:\n%s\nwant:\n%s", got, want)
	}
	for _, dky := range []string{"avoidance", "pessimistic", "skeptical", "optimistic"} {
		strategy, err := m2cc.ParseStrategy(dky)
		if err != nil {
			t.Fatal(err)
		}
		res := m2cc.Compile("LintFindings", loader, m2cc.Options{
			Workers: 4, Strategy: strategy, Check: true,
		})
		if res.Failed() {
			t.Fatalf("%s: compile failed:\n%s", dky, res.Diags)
		}
		if got := m2cc.RenderFindings(res.Findings); got != want {
			t.Errorf("%s: concurrent findings diverge from golden file\ngot:\n%s\nwant:\n%s", dky, got, want)
		}
	}
}

// TestLintGoldenClean: the clean fixture produces no findings at all.
func TestLintGoldenClean(t *testing.T) {
	loader := exampleLoader()
	if got := m2cc.RenderFindings(m2cc.Lint("LintClean", loader)); got != "" {
		t.Errorf("sequential analyzer reports on the clean fixture:\n%s", got)
	}
	res := m2cc.Compile("LintClean", loader, m2cc.Options{Workers: 4, Check: true})
	if res.Failed() {
		t.Fatalf("compile failed:\n%s", res.Diags)
	}
	if got := m2cc.RenderFindings(res.Findings); got != "" {
		t.Errorf("concurrent checker reports on the clean fixture:\n%s", got)
	}
}

// TestLintJSONShape: the JSON export round-trips and mirrors the text
// rendering's count and order.
func TestLintJSONShape(t *testing.T) {
	findings := m2cc.Lint("LintFindings", exampleLoader())
	var buf bytes.Buffer
	if err := m2cc.WriteFindingsJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(decoded) != len(findings) {
		t.Fatalf("JSON has %d findings, analyzer produced %d", len(decoded), len(findings))
	}
	for i, d := range decoded {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Severity == "" || d.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, d)
		}
	}
}

// TestLintGoldenConcFindings byte-matches the concurrency analyzer's
// output on the ConcFindings fixture (one instance of every conc
// finding family: guarded-by violation, cross-procedure lock-order
// cycle, double acquire) against the checked-in golden file, for the
// sequential analyzer and for the concurrent checker under every DKY
// strategy.
func TestLintGoldenConcFindings(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("examples", "modules", "ConcFindings.golden"))
	if err != nil {
		t.Fatal(err)
	}
	want := string(golden)
	loader := exampleLoader()
	if got := m2cc.RenderFindings(m2cc.Lint("ConcFindings", loader)); got != want {
		t.Errorf("sequential analyzer diverges from golden file\ngot:\n%s\nwant:\n%s", got, want)
	}
	for _, dky := range []string{"avoidance", "pessimistic", "skeptical", "optimistic"} {
		strategy, err := m2cc.ParseStrategy(dky)
		if err != nil {
			t.Fatal(err)
		}
		res := m2cc.Compile("ConcFindings", loader, m2cc.Options{
			Workers: 4, Strategy: strategy, Check: true,
		})
		if res.Failed() {
			t.Fatalf("%s: compile failed:\n%s", dky, res.Diags)
		}
		if got := m2cc.RenderFindings(res.Findings); got != want {
			t.Errorf("%s: concurrent findings diverge from golden file\ngot:\n%s\nwant:\n%s", dky, got, want)
		}
	}
}

// TestLintGoldenConcClean: a module with a consistent locking
// discipline produces no findings at all.
func TestLintGoldenConcClean(t *testing.T) {
	loader := exampleLoader()
	if got := m2cc.RenderFindings(m2cc.Lint("ConcClean", loader)); got != "" {
		t.Errorf("sequential analyzer reports on the clean fixture:\n%s", got)
	}
	res := m2cc.Compile("ConcClean", loader, m2cc.Options{Workers: 4, Check: true})
	if res.Failed() {
		t.Fatalf("compile failed:\n%s", res.Diags)
	}
	if got := m2cc.RenderFindings(res.Findings); got != "" {
		t.Errorf("concurrent checker reports on the clean fixture:\n%s", got)
	}
}

// TestLintConcWarmReplay: a warm streamcache rebuild replays cached
// concurrency fact tables (no re-parse of the hit streams) and must
// reproduce the cold build's findings byte-for-byte.
func TestLintConcWarmReplay(t *testing.T) {
	text, err := os.ReadFile(filepath.Join("examples", "modules", "ConcFindings.mod"))
	if err != nil {
		t.Fatal(err)
	}
	loader := m2cc.NewMapLoader()
	loader.Add("ConcFindings", m2cc.Impl, string(text))

	cache := m2cc.NewStreamCache(0)
	opts := m2cc.Options{Workers: 4, Check: true, StreamCache: cache}
	cold := m2cc.Compile("ConcFindings", loader, opts)
	if cold.Failed() {
		t.Fatalf("cold compile failed:\n%s", cold.Diags)
	}
	warm := m2cc.Compile("ConcFindings", loader, opts)
	if warm.Failed() {
		t.Fatalf("warm compile failed:\n%s", warm.Diags)
	}
	if warm.StreamCache == nil || warm.StreamCache.Hits == 0 {
		t.Fatalf("warm rebuild did not hit the stream cache: %+v", warm.StreamCache)
	}
	got := m2cc.RenderFindings(warm.Findings)
	want := m2cc.RenderFindings(cold.Findings)
	if got != want {
		t.Errorf("warm findings diverge from cold\ngot:\n%s\nwant:\n%s", got, want)
	}
	if want == "" {
		t.Error("fixture produced no findings; replay test is vacuous")
	}
}
