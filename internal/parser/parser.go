// Package parser implements recursive-descent syntax analysis for
// Modula-2+.
//
// The concurrent compiler uses the parser in *staged* form, matching the
// unorthodox task division of §3: the Parser/Declarations-Analyzer task
// of a stream parses the prologue and declarations (ParsePrologue,
// ParseDeclarations), runs declaration analysis, marks the stream's
// symbol table complete, and only then builds the statement parse tree
// (ParseBody) — "the symbol table for the declarations is marked
// complete before the statement parse tree is built", so tables complete
// early and DKY blockages resolve sooner.  The sequential compiler uses
// ParseUnit, which performs the same stages back to back.
package parser

import (
	"strconv"

	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/token"
)

// TokenSource supplies tokens.  Both tokq.Reader (concurrent streams)
// and SliceSource (sequential compilation, tests) satisfy it.
type TokenSource interface {
	Next() token.Token
	PeekN(n int) token.Token
}

// SliceSource is a TokenSource over a pre-lexed token slice ending in an
// EOF token.
type SliceSource struct {
	Toks []token.Token
	i    int
}

// NewSliceSource returns a source over toks, which must end with EOF.
func NewSliceSource(toks []token.Token) *SliceSource { return &SliceSource{Toks: toks} }

// Next implements TokenSource.
func (s *SliceSource) Next() token.Token {
	if s.i >= len(s.Toks) {
		return s.Toks[len(s.Toks)-1] // the EOF token
	}
	t := s.Toks[s.i]
	s.i++
	return t
}

// PeekN implements TokenSource.
func (s *SliceSource) PeekN(n int) token.Token {
	j := s.i + n - 1
	if j >= len(s.Toks) {
		return s.Toks[len(s.Toks)-1]
	}
	return s.Toks[j]
}

// Parser holds the state of one syntax analysis.
type Parser struct {
	src   TokenSource
	tok   token.Token
	file  string
	ctx   *ctrace.TaskCtx
	diags *diag.Bag

	inDef    bool // parsing a DEFINITION MODULE: procedures are headings only
	errCount int  // parser-local error count, bounds cascading recovery
}

// New returns a parser over src.  file is the human-readable file label
// for diagnostics; ctx accumulates parse cost (must be non-nil).
func New(src TokenSource, file string, ctx *ctrace.TaskCtx, diags *diag.Bag) *Parser {
	p := &Parser{src: src, file: file, ctx: ctx, diags: diags}
	p.next()
	return p
}

func (p *Parser) next() {
	p.ctx.Add(ctrace.CostParseToken)
	p.tok = p.src.Next()
}

func (p *Parser) peek() token.Token { return p.src.PeekN(1) }

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	p.errCount++
	if p.errCount <= 40 {
		p.diags.Errorf(p.file, pos, format, args...)
	}
}

func (p *Parser) at(k token.Kind) bool { return p.tok.Kind == k }

// expect consumes a token of kind k, reporting an error (without
// consuming) on mismatch.  It returns the matched token's position.
func (p *Parser) expect(k token.Kind) token.Pos {
	pos := p.tok.Pos
	if p.tok.Kind != k {
		p.errorf(pos, "expected %s, found %s", k, p.tok)
		return pos
	}
	p.next()
	return pos
}

// accept consumes a token of kind k if present and reports whether it
// did.
func (p *Parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) name() ast.Name {
	if p.tok.Kind != token.Ident {
		p.errorf(p.tok.Pos, "expected identifier, found %s", p.tok)
		return ast.Name{Text: "?", Pos: p.tok.Pos}
	}
	n := ast.Name{Text: p.tok.Text, Pos: p.tok.Pos}
	p.next()
	return n
}

func (p *Parser) nameList() []ast.Name {
	names := []ast.Name{p.name()}
	for p.accept(token.Comma) {
		names = append(names, p.name())
	}
	return names
}

func (p *Parser) qualident() *ast.Qualident {
	q := &ast.Qualident{Parts: []ast.Name{p.name()}}
	for p.at(token.Dot) && p.peek().Kind == token.Ident {
		p.next()
		q.Parts = append(q.Parts, p.name())
	}
	return q
}

// ---------------------------------------------------------------------
// Compilation units

// ParsePrologue parses the module header and import list, returning a
// Module with Kind, Name and Imports set.  Declarations and body are
// parsed by the later stages.
func (p *Parser) ParsePrologue() *ast.Module {
	m := &ast.Module{Pos: p.tok.Pos}
	switch p.tok.Kind {
	case token.DEFINITION:
		p.next()
		p.expect(token.MODULE)
		m.Kind = ast.DefMod
		p.inDef = true
	case token.IMPLEMENTATION:
		p.next()
		p.expect(token.MODULE)
		m.Kind = ast.ImplMod
	case token.MODULE:
		p.next()
		m.Kind = ast.ProgMod
	default:
		p.errorf(p.tok.Pos, "expected DEFINITION, IMPLEMENTATION or MODULE, found %s", p.tok)
		m.Kind = ast.ProgMod
	}
	m.Name = p.name()
	// Optional module priority "[const]" (parsed and ignored).
	if p.accept(token.LBrack) {
		p.parseExpr()
		p.expect(token.RBrack)
	}
	p.expect(token.Semicolon)
	m.Imports = p.parseImports()
	// Old-style definition modules may carry EXPORT QUALIFIED lists;
	// definition modules export everything, so the list is parsed and
	// ignored.
	if m.Kind == ast.DefMod && p.accept(token.EXPORT) {
		p.accept(token.QUALIFIED)
		p.nameList()
		p.expect(token.Semicolon)
	}
	return m
}

func (p *Parser) parseImports() []*ast.Import {
	var imps []*ast.Import
	for {
		switch p.tok.Kind {
		case token.FROM:
			pos := p.tok.Pos
			p.next()
			from := p.name()
			p.expect(token.IMPORT)
			imps = append(imps, &ast.Import{From: from, Names: p.nameList(), Pos: pos})
			p.expect(token.Semicolon)
		case token.IMPORT:
			pos := p.tok.Pos
			p.next()
			imps = append(imps, &ast.Import{Names: p.nameList(), Pos: pos})
			p.expect(token.Semicolon)
		default:
			return imps
		}
	}
}

// ParseDeclarations parses declaration sections until BEGIN, END or end
// of stream.
func (p *Parser) ParseDeclarations() []ast.Decl {
	var decls []ast.Decl
	for {
		switch p.tok.Kind {
		case token.CONST:
			p.next()
			for p.at(token.Ident) {
				d := &ast.ConstDecl{Name: p.name()}
				p.expect(token.Equal)
				d.Expr = p.parseExpr()
				p.expect(token.Semicolon)
				decls = append(decls, d)
			}
		case token.TYPE:
			p.next()
			for p.at(token.Ident) {
				d := &ast.TypeDecl{Name: p.name()}
				if p.accept(token.Equal) {
					d.Type = p.parseType()
				}
				p.expect(token.Semicolon)
				decls = append(decls, d)
			}
		case token.VAR:
			p.next()
			for p.at(token.Ident) {
				d := &ast.VarDecl{Names: p.nameList()}
				p.expect(token.Colon)
				d.Type = p.parseType()
				p.expect(token.Semicolon)
				decls = append(decls, d)
			}
		case token.EXCEPTION:
			pos := p.tok.Pos
			p.next()
			decls = append(decls, &ast.ExceptionDecl{Names: p.nameList(), Pos: pos})
			p.expect(token.Semicolon)
		case token.PROCEDURE:
			decls = append(decls, p.parseProcDecl())
		case token.MODULE:
			p.errorf(p.tok.Pos, "local modules are not supported by this compiler")
			p.skipLocalModule()
		case token.BEGIN, token.END, token.EOF:
			return decls
		default:
			p.errorf(p.tok.Pos, "expected a declaration, found %s", p.tok)
			p.next() // guarantee progress
		}
	}
}

// skipLocalModule consumes a local module declaration using END-depth
// matching so parsing can continue after the unsupported construct.
func (p *Parser) skipLocalModule() {
	depth := 0
	for {
		switch {
		case p.tok.Kind == token.EOF:
			return
		case p.tok.Kind == token.MODULE,
			p.tok.Kind.OpensEnd() && p.tok.Kind != token.MODULE,
			p.tok.Kind == token.PROCEDURE && p.peek().Kind == token.Ident:
			depth++
			p.next()
		case p.tok.Kind == token.END:
			depth--
			p.next()
			if depth <= 0 {
				p.accept(token.Ident)
				p.accept(token.Semicolon)
				return
			}
		default:
			p.next()
		}
	}
}

// ParseProcHead parses "PROCEDURE name [params] [: ret]".  The caller
// has verified that the current token is PROCEDURE.
func (p *Parser) ParseProcHead() *ast.ProcHead {
	pos := p.expect(token.PROCEDURE)
	h := &ast.ProcHead{Pos: pos, Name: p.name()}
	if p.accept(token.LParen) {
		for !p.at(token.RParen) && !p.at(token.EOF) {
			sec := &ast.FPSection{}
			if p.accept(token.VAR) {
				sec.VarMode = true
			}
			sec.Names = p.nameList()
			p.expect(token.Colon)
			if p.accept(token.ARRAY) {
				p.expect(token.OF)
				sec.Open = true
			}
			sec.Type = p.qualident()
			h.Params = append(h.Params, sec)
			if !p.accept(token.Semicolon) {
				break
			}
		}
		p.expect(token.RParen)
	}
	if p.accept(token.Colon) {
		h.Ret = p.qualident()
	}
	return h
}

func (p *Parser) parseProcDecl() *ast.ProcDecl {
	head := p.ParseProcHead()
	d := &ast.ProcDecl{Head: head}
	p.expect(token.Semicolon)
	switch p.tok.Kind {
	case token.BodyRef:
		// Concurrent mode: the splitter diverted the body to another
		// stream and left its number behind.
		n, err := strconv.Atoi(p.tok.Text)
		if err != nil {
			p.errorf(p.tok.Pos, "corrupt stream reference %q", p.tok.Text)
		}
		d.HeadingOnly = true
		d.BodyStream = int32(n)
		p.next()
		p.expect(token.Semicolon)
	case token.CONST, token.TYPE, token.VAR, token.EXCEPTION, token.PROCEDURE,
		token.BEGIN, token.END, token.MODULE:
		if p.inDef {
			// Definition module: headings never have bodies.
			d.HeadingOnly = true
			return d
		}
		// Sequential mode: the body follows inline.
		d.Decls = p.ParseDeclarations()
		if p.accept(token.BEGIN) {
			d.Body = p.parseStmtList()
		}
		p.expect(token.END)
		d.EndName = p.name()
		if d.EndName.Text != head.Name.Text {
			p.errorf(d.EndName.Pos, "procedure %s ends with name %s", head.Name.Text, d.EndName.Text)
		}
		p.expect(token.Semicolon)
	default:
		// Definition module: heading only.
		d.HeadingOnly = true
	}
	return d
}

// ParseBody parses the optional module body "BEGIN seq" plus the
// closing "END name .".
func (p *Parser) ParseBody(m *ast.Module) {
	if m.Kind == ast.DefMod {
		p.expect(token.END)
		end := p.name()
		if end.Text != m.Name.Text {
			p.errorf(end.Pos, "module %s ends with name %s", m.Name.Text, end.Text)
		}
		p.expect(token.Dot)
		return
	}
	if p.accept(token.BEGIN) {
		m.Body = p.parseStmtList()
	}
	p.expect(token.END)
	end := p.name()
	if end.Text != m.Name.Text {
		p.errorf(end.Pos, "module %s ends with name %s", m.Name.Text, end.Text)
	}
	p.expect(token.Dot)
}

// ParseUnit parses a complete compilation unit (sequential compiler and
// definition-module streams).
func (p *Parser) ParseUnit() *ast.Module {
	m := p.ParsePrologue()
	m.Decls = p.ParseDeclarations()
	p.ParseBody(m)
	return m
}

// ProcStream is the parse result of a procedure stream: the procedure's
// local declarations, its body and the END name.
type ProcStream struct {
	Decls   []ast.Decl
	Body    *ast.StmtList
	EndName ast.Name
}

// ParseProcDeclsOnly parses a procedure stream's declaration part and
// stops before BEGIN/END, for the staged Parser/Decl-Analyzer task.
func (p *Parser) ParseProcDeclsOnly() []ast.Decl { return p.ParseDeclarations() }

// ParseProcTail parses the remainder of a procedure stream after its
// declarations: "[BEGIN seq] END name".  procName is the expected END
// name.
func (p *Parser) ParseProcTail(procName string) *ProcStream {
	ps := &ProcStream{}
	if p.accept(token.BEGIN) {
		ps.Body = p.parseStmtList()
	}
	p.expect(token.END)
	ps.EndName = p.name()
	if ps.EndName.Text != procName {
		p.errorf(ps.EndName.Pos, "procedure %s ends with name %s", procName, ps.EndName.Text)
	}
	if !p.at(token.EOF) {
		p.errorf(p.tok.Pos, "unexpected %s after procedure body", p.tok)
	}
	return ps
}

// AtEOF reports whether the parser has consumed its entire stream.
func (p *Parser) AtEOF() bool { return p.at(token.EOF) }

// AcceptSemicolon consumes a ";" if present (used after a re-processed
// procedure heading in header-sharing alternative 3).
func (p *Parser) AcceptSemicolon() bool { return p.accept(token.Semicolon) }

// ---------------------------------------------------------------------
// Types

func (p *Parser) parseType() ast.Type {
	switch p.tok.Kind {
	case token.Ident:
		q := p.qualident()
		if p.at(token.LBrack) {
			// Base-qualified subrange: T[lo..hi].
			return p.parseSubrange(q)
		}
		return &ast.NamedType{Name: q}
	case token.LParen:
		pos := p.tok.Pos
		p.next()
		e := &ast.EnumType{Pos: pos, Names: p.nameList()}
		p.expect(token.RParen)
		return e
	case token.LBrack:
		return p.parseSubrange(nil)
	case token.ARRAY:
		pos := p.tok.Pos
		p.next()
		a := &ast.ArrayType{Pos: pos}
		a.Indexes = append(a.Indexes, p.parseType())
		for p.accept(token.Comma) {
			a.Indexes = append(a.Indexes, p.parseType())
		}
		p.expect(token.OF)
		a.Elem = p.parseType()
		return a
	case token.RECORD:
		pos := p.tok.Pos
		p.next()
		r := &ast.RecordType{Pos: pos, Fields: p.parseFieldLists()}
		p.expect(token.END)
		return r
	case token.SET:
		pos := p.tok.Pos
		p.next()
		p.expect(token.OF)
		return &ast.SetType{Pos: pos, Base: p.parseType()}
	case token.POINTER:
		pos := p.tok.Pos
		p.next()
		p.expect(token.TO)
		return &ast.PointerType{Pos: pos, Base: p.parseType()}
	case token.REF:
		pos := p.tok.Pos
		p.next()
		return &ast.RefType{Pos: pos, Base: p.parseType()}
	case token.PROCEDURE:
		return p.parseProcType()
	default:
		p.errorf(p.tok.Pos, "expected a type, found %s", p.tok)
		p.next()
		return &ast.NamedType{Name: &ast.Qualident{Parts: []ast.Name{{Text: "INTEGER", Pos: p.tok.Pos}}}}
	}
}

func (p *Parser) parseSubrange(base *ast.Qualident) ast.Type {
	pos := p.expect(token.LBrack)
	s := &ast.SubrangeType{Base: base, Pos: pos}
	s.Lo = p.parseExpr()
	p.expect(token.DotDot)
	s.Hi = p.parseExpr()
	p.expect(token.RBrack)
	return s
}

func (p *Parser) parseFieldLists() []*ast.FieldList {
	var fields []*ast.FieldList
	for {
		switch p.tok.Kind {
		case token.Ident:
			fl := &ast.FieldList{Names: p.nameList()}
			p.expect(token.Colon)
			fl.Type = p.parseType()
			fields = append(fields, fl)
		case token.CASE:
			fields = append(fields, &ast.FieldList{Variant: p.parseVariantPart()})
		}
		if !p.accept(token.Semicolon) {
			return fields
		}
	}
}

func (p *Parser) parseVariantPart() *ast.VariantPart {
	pos := p.expect(token.CASE)
	v := &ast.VariantPart{Pos: pos}
	// "CASE tag : Type OF" or "CASE Type OF" (anonymous tag, old-style
	// "CASE : Type OF" also accepted).
	if p.at(token.Ident) && p.peek().Kind == token.Colon {
		v.TagName = p.name()
		p.next() // ':'
		v.TagType = p.qualident()
	} else {
		p.accept(token.Colon)
		v.TagType = p.qualident()
	}
	p.expect(token.OF)
	for {
		if p.at(token.Bar) {
			p.next()
			continue
		}
		if p.at(token.ELSE) || p.at(token.END) || p.at(token.EOF) {
			break
		}
		c := &ast.VariantCase{Labels: p.parseCaseLabels()}
		p.expect(token.Colon)
		c.Fields = p.parseFieldLists()
		v.Cases = append(v.Cases, c)
		if !p.accept(token.Bar) {
			break
		}
	}
	if p.accept(token.ELSE) {
		v.Else = p.parseFieldLists()
	}
	p.expect(token.END)
	return v
}

func (p *Parser) parseCaseLabels() []*ast.CaseLabel {
	var labels []*ast.CaseLabel
	for {
		l := &ast.CaseLabel{Lo: p.parseExpr()}
		if p.accept(token.DotDot) {
			l.Hi = p.parseExpr()
		}
		labels = append(labels, l)
		if !p.accept(token.Comma) {
			return labels
		}
	}
}

func (p *Parser) parseProcType() ast.Type {
	pos := p.expect(token.PROCEDURE)
	t := &ast.ProcType{Pos: pos}
	if p.accept(token.LParen) {
		for !p.at(token.RParen) && !p.at(token.EOF) {
			param := &ast.ProcTypeParam{}
			if p.accept(token.VAR) {
				param.VarMode = true
			}
			if p.accept(token.ARRAY) {
				p.expect(token.OF)
				param.Open = true
			}
			param.Type = p.qualident()
			t.Params = append(t.Params, param)
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RParen)
	}
	if p.accept(token.Colon) {
		t.Ret = p.qualident()
	}
	return t
}

// ---------------------------------------------------------------------
// Statements

// stmtListStop reports whether the current token terminates a statement
// sequence.
func (p *Parser) stmtListStop() bool {
	switch p.tok.Kind {
	case token.END, token.ELSE, token.ELSIF, token.UNTIL, token.Bar,
		token.EXCEPT, token.FINALLY, token.EOF:
		return true
	}
	return false
}

func (p *Parser) parseStmtList() *ast.StmtList {
	sl := &ast.StmtList{}
	for {
		for p.accept(token.Semicolon) {
		}
		if p.stmtListStop() {
			return sl
		}
		s := p.parseStmt()
		if s != nil {
			sl.Stmts = append(sl.Stmts, s)
		}
		if !p.at(token.Semicolon) && !p.stmtListStop() {
			p.errorf(p.tok.Pos, "expected ; between statements, found %s", p.tok)
			p.next() // guarantee progress
		}
	}
}

func (p *Parser) parseStmt() ast.Stmt {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.Ident:
		d := p.parseDesignator()
		switch p.tok.Kind {
		case token.Assign:
			p.next()
			return &ast.AssignStmt{LHS: d, RHS: p.parseExpr(), Pos: pos}
		case token.LParen:
			p.next()
			var args []ast.Expr
			if !p.at(token.RParen) {
				args = append(args, p.parseExpr())
				for p.accept(token.Comma) {
					args = append(args, p.parseExpr())
				}
			}
			p.expect(token.RParen)
			return &ast.CallStmt{Proc: d, Args: args, HasArgs: true, Pos: pos}
		default:
			return &ast.CallStmt{Proc: d, Pos: pos}
		}
	case token.IF:
		p.next()
		s := &ast.IfStmt{Pos: pos, Cond: p.parseExpr()}
		p.expect(token.THEN)
		s.Then = p.parseStmtList()
		for p.at(token.ELSIF) {
			p.next()
			arm := ast.ElsifArm{Cond: p.parseExpr()}
			p.expect(token.THEN)
			arm.Then = p.parseStmtList()
			s.Elsifs = append(s.Elsifs, arm)
		}
		if p.accept(token.ELSE) {
			s.Else = p.parseStmtList()
		}
		p.expect(token.END)
		return s
	case token.CASE:
		p.next()
		s := &ast.CaseStmt{Pos: pos, Expr: p.parseExpr()}
		p.expect(token.OF)
		for {
			if p.at(token.Bar) {
				p.next()
				continue
			}
			if p.at(token.ELSE) || p.at(token.END) || p.at(token.EOF) {
				break
			}
			arm := &ast.CaseArm{Labels: p.parseCaseLabels()}
			p.expect(token.Colon)
			arm.Body = p.parseStmtList()
			s.Arms = append(s.Arms, arm)
			if !p.accept(token.Bar) {
				break
			}
		}
		if p.accept(token.ELSE) {
			s.Else = p.parseStmtList()
		}
		p.expect(token.END)
		return s
	case token.WHILE:
		p.next()
		s := &ast.WhileStmt{Pos: pos, Cond: p.parseExpr()}
		p.expect(token.DO)
		s.Body = p.parseStmtList()
		p.expect(token.END)
		return s
	case token.REPEAT:
		p.next()
		s := &ast.RepeatStmt{Pos: pos, Body: p.parseStmtList()}
		p.expect(token.UNTIL)
		s.Cond = p.parseExpr()
		return s
	case token.LOOP:
		p.next()
		s := &ast.LoopStmt{Pos: pos, Body: p.parseStmtList()}
		p.expect(token.END)
		return s
	case token.EXIT:
		p.next()
		return &ast.ExitStmt{Pos: pos}
	case token.FOR:
		p.next()
		s := &ast.ForStmt{Pos: pos, Var: p.name()}
		p.expect(token.Assign)
		s.From = p.parseExpr()
		p.expect(token.TO)
		s.To = p.parseExpr()
		if p.accept(token.BY) {
			s.By = p.parseExpr()
		}
		p.expect(token.DO)
		s.Body = p.parseStmtList()
		p.expect(token.END)
		return s
	case token.WITH:
		p.next()
		s := &ast.WithStmt{Pos: pos, Rec: p.parseDesignator()}
		p.expect(token.DO)
		s.Body = p.parseStmtList()
		p.expect(token.END)
		return s
	case token.RETURN:
		p.next()
		s := &ast.ReturnStmt{Pos: pos}
		if !p.stmtListStop() && !p.at(token.Semicolon) {
			s.Expr = p.parseExpr()
		}
		return s
	case token.RAISE:
		p.next()
		return &ast.RaiseStmt{Pos: pos, Exc: p.qualident()}
	case token.TRY:
		p.next()
		s := &ast.TryStmt{Pos: pos, Body: p.parseStmtList()}
		if p.accept(token.EXCEPT) {
			for p.at(token.Ident) {
				h := &ast.Handler{Excs: []*ast.Qualident{p.qualident()}}
				for p.accept(token.Comma) {
					h.Excs = append(h.Excs, p.qualident())
				}
				p.expect(token.Colon)
				h.Body = p.parseStmtList()
				s.Handlers = append(s.Handlers, h)
				p.accept(token.Bar)
			}
			if p.accept(token.ELSE) {
				s.Else = p.parseStmtList()
			}
		}
		if p.accept(token.FINALLY) {
			s.Finally = p.parseStmtList()
		}
		p.expect(token.END)
		return s
	case token.LOCK:
		p.next()
		s := &ast.LockStmt{Pos: pos, Mutex: p.parseExpr()}
		p.expect(token.DO)
		s.Body = p.parseStmtList()
		p.expect(token.END)
		return s
	default:
		p.errorf(pos, "expected a statement, found %s", p.tok)
		p.next()
		return nil
	}
}

// ---------------------------------------------------------------------
// Expressions

func (p *Parser) parseExpr() ast.Expr {
	x := p.parseSimpleExpr()
	switch p.tok.Kind {
	case token.Equal, token.NotEqual, token.Less, token.LessEq,
		token.Greater, token.GreaterEq, token.IN:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		return &ast.BinaryExpr{Op: op, X: x, Y: p.parseSimpleExpr(), Pos: pos}
	}
	return x
}

func (p *Parser) parseSimpleExpr() ast.Expr {
	var lead *ast.UnaryExpr
	if p.at(token.Plus) || p.at(token.Minus) {
		lead = &ast.UnaryExpr{Op: p.tok.Kind, Pos: p.tok.Pos}
		p.next()
	}
	x := p.parseTerm()
	if lead != nil {
		lead.X = x
		x = lead
	}
	for p.at(token.Plus) || p.at(token.Minus) || p.at(token.OR) {
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		x = &ast.BinaryExpr{Op: op, X: x, Y: p.parseTerm(), Pos: pos}
	}
	return x
}

func (p *Parser) parseTerm() ast.Expr {
	x := p.parseFactor()
	for {
		switch p.tok.Kind {
		case token.Star, token.Slash, token.DIV, token.MOD, token.AND, token.Amp:
			op := p.tok.Kind
			if op == token.Amp {
				op = token.AND
			}
			pos := p.tok.Pos
			p.next()
			x = &ast.BinaryExpr{Op: op, X: x, Y: p.parseFactor(), Pos: pos}
		default:
			return x
		}
	}
}

func (p *Parser) parseFactor() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.IntLit:
		v := decodeInt(p.tok.Text)
		e := &ast.IntLit{Value: v, Text: p.tok.Text, Pos: pos}
		p.next()
		return e
	case token.RealLit:
		v, _ := strconv.ParseFloat(p.tok.Text, 64)
		e := &ast.RealLit{Value: v, Text: p.tok.Text, Pos: pos}
		p.next()
		return e
	case token.CharLit:
		// Octal form nnC.
		v, _ := strconv.ParseUint(p.tok.Text[:len(p.tok.Text)-1], 8, 16)
		e := &ast.CharLit{Value: byte(v), Text: p.tok.Text, Pos: pos}
		p.next()
		return e
	case token.StringLit:
		e := &ast.StringLit{Value: p.tok.Text, Pos: pos}
		p.next()
		return e
	case token.LBrace:
		return p.parseSetExpr(nil, pos)
	case token.Ident:
		return p.parseDesignatorOrCall()
	case token.LParen:
		p.next()
		e := p.parseExpr()
		p.expect(token.RParen)
		return e
	case token.NOT, token.Tilde:
		p.next()
		return &ast.UnaryExpr{Op: token.NOT, X: p.parseFactor(), Pos: pos}
	default:
		p.errorf(pos, "expected an expression, found %s", p.tok)
		p.next()
		return &ast.IntLit{Value: 0, Text: "0", Pos: pos}
	}
}

func (p *Parser) parseSetExpr(qual *ast.Qualident, pos token.Pos) ast.Expr {
	p.expect(token.LBrace)
	s := &ast.SetExpr{Type: qual, Pos: pos}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		el := ast.SetElem{Lo: p.parseExpr()}
		if p.accept(token.DotDot) {
			el.Hi = p.parseExpr()
		}
		s.Elems = append(s.Elems, el)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RBrace)
	return s
}

// parseDesignatorOrCall parses a factor beginning with an identifier:
// a designator, a set constructor qualified by a type name, or a
// function call.
func (p *Parser) parseDesignatorOrCall() ast.Expr {
	pos := p.tok.Pos
	d := &ast.Designator{Head: p.name()}
	// While the selector chain is still purely dotted it could turn out
	// to be the type qualifier of a set constructor.
	for {
		if p.at(token.Dot) && p.peek().Kind == token.Ident {
			p.next()
			d.Sels = append(d.Sels, &ast.FieldSel{Name: p.name()})
			continue
		}
		break
	}
	if p.at(token.LBrace) {
		q := &ast.Qualident{Parts: []ast.Name{d.Head}}
		for _, s := range d.Sels {
			q.Parts = append(q.Parts, s.(*ast.FieldSel).Name)
		}
		return p.parseSetExpr(q, pos)
	}
	p.parseSelectors(d)
	if p.at(token.LParen) {
		p.next()
		c := &ast.CallExpr{Fun: d, Pos: pos}
		if !p.at(token.RParen) {
			c.Args = append(c.Args, p.parseExpr())
			for p.accept(token.Comma) {
				c.Args = append(c.Args, p.parseExpr())
			}
		}
		p.expect(token.RParen)
		return c
	}
	return d
}

// parseDesignator parses a designator (no call suffix).
func (p *Parser) parseDesignator() *ast.Designator {
	d := &ast.Designator{Head: p.name()}
	p.parseSelectors(d)
	return d
}

func (p *Parser) parseSelectors(d *ast.Designator) {
	for {
		switch {
		case p.at(token.Dot) && p.peek().Kind == token.Ident:
			p.next()
			d.Sels = append(d.Sels, &ast.FieldSel{Name: p.name()})
		case p.at(token.LBrack):
			pos := p.tok.Pos
			p.next()
			sel := &ast.IndexSel{Pos: pos}
			sel.Indexes = append(sel.Indexes, p.parseExpr())
			for p.accept(token.Comma) {
				sel.Indexes = append(sel.Indexes, p.parseExpr())
			}
			p.expect(token.RBrack)
			d.Sels = append(d.Sels, sel)
		case p.at(token.Caret):
			d.Sels = append(d.Sels, &ast.DerefSel{Pos: p.tok.Pos})
			p.next()
		default:
			return
		}
	}
}

// decodeInt decodes the Modula-2 integer literal forms: decimal, nnnH
// (hex) and nnnB (octal).
func decodeInt(text string) int64 {
	if text == "" {
		return 0
	}
	switch text[len(text)-1] {
	case 'H':
		v, _ := strconv.ParseUint(text[:len(text)-1], 16, 64)
		return int64(v)
	case 'B':
		v, _ := strconv.ParseUint(text[:len(text)-1], 8, 64)
		return int64(v)
	default:
		v, _ := strconv.ParseInt(text, 10, 64)
		return v
	}
}
