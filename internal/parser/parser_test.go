package parser_test

import (
	"strings"
	"testing"

	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/lexer"
	"m2cc/internal/parser"
	"m2cc/internal/source"
	"m2cc/internal/token"
)

// parse parses a whole compilation unit.
func parse(t *testing.T, src string) (*ast.Module, *diag.Bag) {
	t.Helper()
	files := source.NewSet()
	f := files.Add("T", source.Impl, src)
	diags := diag.NewBag(0)
	toks := lexer.ScanAll(f, &ctrace.TaskCtx{}, diags)
	p := parser.New(parser.NewSliceSource(toks), "T.mod", &ctrace.TaskCtx{}, diags)
	return p.ParseUnit(), diags
}

// mustParse fails the test on any diagnostic.
func mustParse(t *testing.T, src string) *ast.Module {
	t.Helper()
	m, diags := parse(t, src)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags)
	}
	return m
}

func TestModuleKinds(t *testing.T) {
	if m := mustParse(t, "MODULE P; END P."); m.Kind != ast.ProgMod {
		t.Error("program module")
	}
	if m := mustParse(t, "IMPLEMENTATION MODULE I; END I."); m.Kind != ast.ImplMod {
		t.Error("implementation module")
	}
	if m := mustParse(t, "DEFINITION MODULE D; END D."); m.Kind != ast.DefMod {
		t.Error("definition module")
	}
}

func TestModulePriorityIgnored(t *testing.T) {
	m := mustParse(t, "MODULE P [4]; END P.")
	if m.Name.Text != "P" {
		t.Fatal("priority clause broke the header")
	}
}

func TestImports(t *testing.T) {
	m := mustParse(t, `
MODULE P;
IMPORT A, B;
FROM C IMPORT x, y;
END P.`)
	if len(m.Imports) != 2 {
		t.Fatalf("got %d import clauses", len(m.Imports))
	}
	if m.Imports[0].From.Text != "" || len(m.Imports[0].Names) != 2 {
		t.Error("plain import wrong")
	}
	if m.Imports[1].From.Text != "C" || len(m.Imports[1].Names) != 2 {
		t.Error("FROM import wrong")
	}
}

func TestExportListAccepted(t *testing.T) {
	mustParse(t, "DEFINITION MODULE D;\nEXPORT QUALIFIED a, b;\nCONST a = 1; b = 2;\nEND D.")
}

func TestConstTypeVarSections(t *testing.T) {
	m := mustParse(t, `
MODULE P;
CONST a = 1; b = a + 2;
TYPE T = INTEGER; U = ARRAY [0..9] OF CHAR;
VAR x, y: T; z: U;
END P.`)
	if len(m.Decls) != 6 {
		t.Fatalf("got %d declarations, want 6 (x, y share one VarDecl)", len(m.Decls))
	}
	if _, ok := m.Decls[0].(*ast.ConstDecl); !ok {
		t.Error("first not a const")
	}
	vd, ok := m.Decls[4].(*ast.VarDecl)
	if !ok || len(vd.Names) != 2 {
		t.Error("var x, y wrong")
	}
}

func TestTypeForms(t *testing.T) {
	m := mustParse(t, `
MODULE P;
TYPE
  E = (red, green, blue);
  S = [1..10];
  CS = ["a".."z"];
  A = ARRAY [0..3], [0..4] OF INTEGER;
  R = RECORD x: INTEGER; CASE tag: INTEGER OF 0: a: CHAR | 1: b: REAL ELSE c: INTEGER END END;
  Set = SET OF [0..31];
  Ptr = POINTER TO R;
  Rf = REF INTEGER;
  F = PROCEDURE (INTEGER, VAR CHAR): INTEGER;
  Op = PROCEDURE;
END P.`)
	wantTypes := []any{
		&ast.EnumType{}, &ast.SubrangeType{}, &ast.SubrangeType{}, &ast.ArrayType{},
		&ast.RecordType{}, &ast.SetType{}, &ast.PointerType{}, &ast.RefType{},
		&ast.ProcType{}, &ast.ProcType{},
	}
	if len(m.Decls) != len(wantTypes) {
		t.Fatalf("got %d type decls", len(m.Decls))
	}
	for i, d := range m.Decls {
		td := d.(*ast.TypeDecl)
		if td.Type == nil {
			t.Fatalf("decl %d has no type", i)
		}
		got, want := typeName(td.Type), typeName(wantTypes[i].(ast.Type))
		if got != want {
			t.Errorf("type %d is %s, want %s", i, got, want)
		}
	}
	// The multi-index array keeps both index types.
	arr := m.Decls[3].(*ast.TypeDecl).Type.(*ast.ArrayType)
	if len(arr.Indexes) != 2 {
		t.Error("ARRAY a, b OF must keep two indexes")
	}
	// The variant record has a tagged case with an ELSE part.
	rec := m.Decls[4].(*ast.TypeDecl).Type.(*ast.RecordType)
	var variant *ast.VariantPart
	for _, fl := range rec.Fields {
		if fl.Variant != nil {
			variant = fl.Variant
		}
	}
	if variant == nil || variant.TagName.Text != "tag" || len(variant.Cases) != 2 || variant.Else == nil {
		t.Error("variant part parsed wrong")
	}
}

func typeName(t ast.Type) string {
	switch t.(type) {
	case *ast.EnumType:
		return "enum"
	case *ast.SubrangeType:
		return "subrange"
	case *ast.ArrayType:
		return "array"
	case *ast.RecordType:
		return "record"
	case *ast.SetType:
		return "set"
	case *ast.PointerType:
		return "pointer"
	case *ast.RefType:
		return "ref"
	case *ast.ProcType:
		return "proc"
	case *ast.NamedType:
		return "named"
	}
	return "?"
}

func TestOpaqueTypeInDefinition(t *testing.T) {
	files := source.NewSet()
	f := files.Add("D", source.Def, "DEFINITION MODULE D;\nTYPE T;\nEND D.")
	diags := diag.NewBag(0)
	toks := lexer.ScanAll(f, &ctrace.TaskCtx{}, diags)
	p := parser.New(parser.NewSliceSource(toks), "D.def", &ctrace.TaskCtx{}, diags)
	m := p.ParseUnit()
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	td := m.Decls[0].(*ast.TypeDecl)
	if td.Type != nil {
		t.Fatal("opaque type must have nil Type")
	}
}

func TestProcedureForms(t *testing.T) {
	m := mustParse(t, `
MODULE P;
PROCEDURE NoParams;
BEGIN
END NoParams;

PROCEDURE Full(a, b: INTEGER; VAR c: CHAR; d: ARRAY OF REAL): INTEGER;
BEGIN
  RETURN a
END Full;
END P.`)
	p1 := m.Decls[0].(*ast.ProcDecl)
	if p1.Head.Name.Text != "NoParams" || len(p1.Head.Params) != 0 || p1.Head.Ret != nil {
		t.Error("NoParams heading wrong")
	}
	p2 := m.Decls[1].(*ast.ProcDecl)
	if len(p2.Head.Params) != 3 {
		t.Fatalf("Full has %d sections, want 3", len(p2.Head.Params))
	}
	if !p2.Head.Params[1].VarMode || p2.Head.Params[1].Names[0].Text != "c" {
		t.Error("VAR section wrong")
	}
	if !p2.Head.Params[2].Open {
		t.Error("open array section wrong")
	}
	if p2.Head.Ret == nil || p2.Head.Ret.String() != "INTEGER" {
		t.Error("return type wrong")
	}
}

func TestEndNameMismatch(t *testing.T) {
	_, diags := parse(t, "MODULE P;\nPROCEDURE F;\nBEGIN\nEND G;\nEND P.")
	if !strings.Contains(diags.String(), "procedure F ends with name G") {
		t.Fatalf("missing mismatch error:\n%s", diags)
	}
	_, diags = parse(t, "MODULE P;\nEND Q.")
	if !strings.Contains(diags.String(), "module P ends with name Q") {
		t.Fatalf("missing module mismatch error:\n%s", diags)
	}
}

func TestStatementForms(t *testing.T) {
	m := mustParse(t, `
MODULE P;
VAR i, n: INTEGER; ok: BOOLEAN;
BEGIN
  i := 1;
  n := i;
  IF ok THEN i := 2 ELSIF i > 1 THEN i := 3 ELSE i := 4 END;
  CASE i OF 1: n := 1 | 2, 3: n := 2 | 4..6: n := 3 ELSE n := 0 END;
  WHILE i < 10 DO INC(i) END;
  REPEAT DEC(i) UNTIL i = 0;
  LOOP EXIT END;
  FOR i := 1 TO 10 BY 2 DO n := n + i END;
  RETURN
END P.`)
	kinds := []string{"assign", "assign", "if", "case", "while", "repeat", "loop", "for", "return"}
	if len(m.Body.Stmts) != len(kinds) {
		t.Fatalf("got %d statements", len(m.Body.Stmts))
	}
	for i, s := range m.Body.Stmts {
		got := stmtName(s)
		if got != kinds[i] {
			t.Errorf("stmt %d is %s, want %s", i, got, kinds[i])
		}
	}
	cs := m.Body.Stmts[3].(*ast.CaseStmt)
	if len(cs.Arms) != 3 || cs.Else == nil {
		t.Error("case arms wrong")
	}
	if cs.Arms[2].Labels[0].Hi == nil {
		t.Error("case range label wrong")
	}
	fs := m.Body.Stmts[7].(*ast.ForStmt)
	if fs.By == nil {
		t.Error("FOR BY missing")
	}
}

func stmtName(s ast.Stmt) string {
	switch s.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.CallStmt:
		return "call"
	case *ast.IfStmt:
		return "if"
	case *ast.CaseStmt:
		return "case"
	case *ast.WhileStmt:
		return "while"
	case *ast.RepeatStmt:
		return "repeat"
	case *ast.LoopStmt:
		return "loop"
	case *ast.ForStmt:
		return "for"
	case *ast.WithStmt:
		return "with"
	case *ast.ReturnStmt:
		return "return"
	case *ast.RaiseStmt:
		return "raise"
	case *ast.TryStmt:
		return "try"
	case *ast.LockStmt:
		return "lock"
	case *ast.ExitStmt:
		return "exit"
	}
	return "?"
}

func TestModulaPlusStatements(t *testing.T) {
	m := mustParse(t, `
MODULE P;
EXCEPTION Bad, Worse;
VAR m: MUTEX;
BEGIN
  TRY
    RAISE Bad
  EXCEPT
    Bad: m := m
  | Worse, Bad: m := m
  ELSE m := m
  END;
  LOCK m DO m := m END
END P.`)
	ts := m.Body.Stmts[0].(*ast.TryStmt)
	if len(ts.Handlers) != 2 || ts.Else == nil {
		t.Fatalf("try parsed wrong: %d handlers", len(ts.Handlers))
	}
	if len(ts.Handlers[1].Excs) != 2 {
		t.Error("multi-exception handler wrong")
	}
	if _, ok := m.Body.Stmts[1].(*ast.LockStmt); !ok {
		t.Error("LOCK missing")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	m := mustParse(t, "MODULE P;\nVAR x: INTEGER;\nBEGIN\n  x := 1 + 2 * 3 - 4 DIV 2\nEND P.")
	rhs := m.Body.Stmts[0].(*ast.AssignStmt).RHS.(*ast.BinaryExpr)
	// ((1 + (2*3)) - (4 DIV 2))
	if rhs.Op != token.Minus {
		t.Fatalf("top op %v, want -", rhs.Op)
	}
	left := rhs.X.(*ast.BinaryExpr)
	if left.Op != token.Plus || left.Y.(*ast.BinaryExpr).Op != token.Star {
		t.Error("left associativity / precedence wrong")
	}
	if rhs.Y.(*ast.BinaryExpr).Op != token.DIV {
		t.Error("DIV binding wrong")
	}
}

func TestRelationIsNonAssociative(t *testing.T) {
	// "a < b < c" must parse the relation once; the second < is an error.
	_, diags := parse(t, "MODULE P;\nVAR a: INTEGER;\nBEGIN\n  a := 1 < 2 < 3\nEND P.")
	if !diags.HasErrors() {
		t.Fatal("chained relations must not parse silently")
	}
}

func TestDesignatorsAndCalls(t *testing.T) {
	m := mustParse(t, `
MODULE P;
VAR x: INTEGER;
BEGIN
  a.b[1, 2]^.c := f(x, g());
  p;
  q()
END P.`)
	as := m.Body.Stmts[0].(*ast.AssignStmt)
	if len(as.LHS.Sels) != 4 {
		t.Fatalf("LHS has %d selectors, want 4 (field, index, deref, field)", len(as.LHS.Sels))
	}
	if _, ok := as.LHS.Sels[2].(*ast.DerefSel); !ok {
		t.Error("deref selector wrong")
	}
	call := as.RHS.(*ast.CallExpr)
	if len(call.Args) != 2 {
		t.Error("call args wrong")
	}
	bare := m.Body.Stmts[1].(*ast.CallStmt)
	if bare.HasArgs {
		t.Error("bare call must have HasArgs=false")
	}
	empty := m.Body.Stmts[2].(*ast.CallStmt)
	if !empty.HasArgs || len(empty.Args) != 0 {
		t.Error("q() must have HasArgs=true and no args")
	}
}

func TestSetConstructors(t *testing.T) {
	m := mustParse(t, `
MODULE P;
VAR s: BITSET;
BEGIN
  s := {};
  s := {1, 3..5};
  s := BITSET{0} + Days{Mon..Fri}
END P.`)
	s1 := m.Body.Stmts[1].(*ast.AssignStmt).RHS.(*ast.SetExpr)
	if s1.Type != nil || len(s1.Elems) != 2 || s1.Elems[1].Hi == nil {
		t.Error("bare set constructor wrong")
	}
	bin := m.Body.Stmts[2].(*ast.AssignStmt).RHS.(*ast.BinaryExpr)
	l := bin.X.(*ast.SetExpr)
	r := bin.Y.(*ast.SetExpr)
	if l.Type == nil || l.Type.String() != "BITSET" {
		t.Error("qualified set constructor wrong")
	}
	if r.Type == nil || r.Type.String() != "Days" {
		t.Error("named set constructor wrong")
	}
}

func TestWithStatement(t *testing.T) {
	m := mustParse(t, "MODULE P;\nVAR r: T;\nBEGIN\n  WITH r.inner DO x := 1 END\nEND P.")
	ws := m.Body.Stmts[0].(*ast.WithStmt)
	if ws.Rec.Head.Text != "r" || len(ws.Rec.Sels) != 1 {
		t.Error("WITH designator wrong")
	}
}

func TestBodyRefToken(t *testing.T) {
	// Simulate the splitter's output: heading, BodyRef, ";".
	toks := []token.Token{
		{Kind: token.MODULE}, {Kind: token.Ident, Text: "M"}, {Kind: token.Semicolon},
		{Kind: token.PROCEDURE}, {Kind: token.Ident, Text: "F"}, {Kind: token.Semicolon},
		{Kind: token.BodyRef, Text: "7"}, {Kind: token.Semicolon},
		{Kind: token.END}, {Kind: token.Ident, Text: "M"}, {Kind: token.Dot},
		{Kind: token.EOF},
	}
	diags := diag.NewBag(0)
	p := parser.New(parser.NewSliceSource(toks), "M.mod", &ctrace.TaskCtx{}, diags)
	m := p.ParseUnit()
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	pd := m.Decls[0].(*ast.ProcDecl)
	if !pd.HeadingOnly || pd.BodyStream != 7 {
		t.Fatalf("BodyRef not parsed: %+v", pd)
	}
}

func TestLocalModuleRejectedButRecovered(t *testing.T) {
	_, diags := parse(t, `
MODULE P;
MODULE Inner;
VAR x: INTEGER;
BEGIN
  x := 1
END Inner;
VAR y: INTEGER;
BEGIN
  y := 2
END P.`)
	text := diags.String()
	if !strings.Contains(text, "local modules are not supported") {
		t.Fatalf("missing local-module error:\n%s", text)
	}
	// Recovery must not cascade into the following VAR section.
	if strings.Count(text, "error") != 1 {
		t.Fatalf("recovery produced cascading errors:\n%s", text)
	}
}

func TestErrorRecoveryProgress(t *testing.T) {
	// Garbage must produce errors but never hang the parser.
	_, diags := parse(t, "MODULE P;\nVAR : ;\nBEGIN\n  := ;\nEND P.")
	if !diags.HasErrors() {
		t.Fatal("garbage must error")
	}
}

func TestLiteralDecoding(t *testing.T) {
	m := mustParse(t, `
MODULE P;
CONST h = 0FFH; o = 17B; d = 42; r = 1.5E2; c = 101C; s = "ab";
END P.`)
	vals := map[string]int64{"h": 255, "o": 15, "d": 42}
	for _, d := range m.Decls[:3] {
		cd := d.(*ast.ConstDecl)
		if got := cd.Expr.(*ast.IntLit).Value; got != vals[cd.Name.Text] {
			t.Errorf("%s = %d, want %d", cd.Name.Text, got, vals[cd.Name.Text])
		}
	}
	if got := m.Decls[3].(*ast.ConstDecl).Expr.(*ast.RealLit).Value; got != 150 {
		t.Errorf("real = %v", got)
	}
	if got := m.Decls[4].(*ast.ConstDecl).Expr.(*ast.CharLit).Value; got != 'A' {
		t.Errorf("char = %c", got)
	}
}

func TestStagedParsing(t *testing.T) {
	// The concurrent driver's staging: prologue → declarations → body.
	files := source.NewSet()
	f := files.Add("T", source.Impl, `
MODULE T;
IMPORT A;
CONST c = 1;
BEGIN
  WriteInt(c, 0)
END T.`)
	diags := diag.NewBag(0)
	toks := lexer.ScanAll(f, &ctrace.TaskCtx{}, diags)
	p := parser.New(parser.NewSliceSource(toks), "T.mod", &ctrace.TaskCtx{}, diags)
	m := p.ParsePrologue()
	if m.Name.Text != "T" || len(m.Imports) != 1 {
		t.Fatal("prologue wrong")
	}
	decls := p.ParseDeclarations()
	if len(decls) != 1 {
		t.Fatal("declarations wrong")
	}
	p.ParseBody(m)
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	if m.Body == nil || len(m.Body.Stmts) != 1 {
		t.Fatal("body wrong")
	}
}
