package symtab_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/types"
)

func newTable(s symtab.Strategy) (*symtab.Table, *symtab.Stats) {
	stats := symtab.NewStats()
	return symtab.NewTable(s, stats, nil), stats
}

func reporter(t *testing.T) (func(pos token.Pos, format string, args ...any), *int) {
	count := 0
	return func(pos token.Pos, format string, args ...any) {
		count++
		t.Logf("diag: "+format, args...)
	}, &count
}

func sym(name string) *symtab.Symbol {
	return &symtab.Symbol{Name: name, Kind: symtab.KVar, Type: types.Integer}
}

func searcher(tab *symtab.Table) *symtab.Searcher {
	return &symtab.Searcher{Tab: tab, Ctx: &ctrace.TaskCtx{}}
}

func TestInsertAndSelfLookup(t *testing.T) {
	tab, _ := newTable(symtab.Skeptical)
	scope := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	report, errs := reporter(t)
	ctx := &ctrace.TaskCtx{}
	if !scope.Insert(ctx, report, sym("x")) {
		t.Fatal("insert failed")
	}
	res := searcher(tab).Lookup(scope, "x", nil)
	if res.Sym == nil || res.Sym.Name != "x" {
		t.Fatal("self lookup failed")
	}
	if *errs != 0 {
		t.Fatal("unexpected diagnostics")
	}
}

func TestRedeclarationRejected(t *testing.T) {
	tab, _ := newTable(symtab.Skeptical)
	scope := tab.NewScope(symtab.ProcScope, "P", nil, 1)
	report, errs := reporter(t)
	ctx := &ctrace.TaskCtx{}
	scope.Insert(ctx, report, sym("x"))
	if scope.Insert(ctx, report, sym("x")) {
		t.Fatal("redeclaration must fail")
	}
	if *errs != 1 {
		t.Fatalf("want 1 diagnostic, got %d", *errs)
	}
}

func TestBuiltinRedeclarationRejected(t *testing.T) {
	// Modula-2+ forbids redeclaring pervasive names (§2.2), which is
	// what makes the builtin search shortcut safe.
	tab, _ := newTable(symtab.Skeptical)
	scope := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	report, errs := reporter(t)
	if scope.Insert(&ctrace.TaskCtx{}, report, sym("WriteInt")) {
		t.Fatal("builtin redeclaration must fail")
	}
	if *errs != 1 {
		t.Fatal("missing diagnostic")
	}
}

func TestBuiltinLookupWithoutChaining(t *testing.T) {
	tab, stats := newTable(symtab.Skeptical)
	outer := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	inner := tab.NewScope(symtab.ProcScope, "P", outer, 1)
	// outer is INCOMPLETE; a builtin reference must not DKY-wait on it.
	done := make(chan symtab.Result, 1)
	go func() { done <- searcher(tab).Lookup(inner, "ABS", nil) }()
	select {
	case res := <-done:
		if res.Sym == nil || res.Sym.Kind != symtab.KBuiltin {
			t.Fatal("ABS not found as builtin")
		}
	case <-time.After(time.Second):
		t.Fatal("builtin lookup blocked on an incomplete outer scope")
	}
	if stats.Blocks.Load() != 0 {
		t.Fatal("builtin lookup must not count DKY blocks")
	}
}

func TestSkepticalFindsInIncompleteTable(t *testing.T) {
	tab, stats := newTable(symtab.Skeptical)
	outer := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	inner := tab.NewScope(symtab.ProcScope, "P", outer, 1)
	report, _ := reporter(t)
	outer.Insert(&ctrace.TaskCtx{}, report, sym("g"))
	// outer still incomplete: Skeptical must find g without blocking.
	res := searcher(tab).Lookup(inner, "g", nil)
	if res.Sym == nil {
		t.Fatal("skeptical must search incomplete tables")
	}
	if stats.Blocks.Load() != 0 {
		t.Fatal("no block may be taken for a hit in an incomplete table")
	}
	rows := stats.Rows()
	found := false
	for _, r := range rows {
		if r.Key.Rel == ctrace.RelOuter && r.Key.Incomplete && r.Key.When == symtab.SearchOut {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a Search/outer/incomplete row:\n%s", stats)
	}
}

func TestSkepticalBlocksThenFinds(t *testing.T) {
	tab, stats := newTable(symtab.Skeptical)
	outer := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	inner := tab.NewScope(symtab.ProcScope, "P", outer, 1)
	report, _ := reporter(t)

	res := make(chan symtab.Result, 1)
	go func() { res <- searcher(tab).Lookup(inner, "late", nil) }()
	time.Sleep(5 * time.Millisecond) // let the searcher block
	ctx := &ctrace.TaskCtx{}
	outer.Insert(ctx, report, sym("late"))
	outer.Complete(ctx)
	select {
	case r := <-res:
		if r.Sym == nil {
			t.Fatal("symbol inserted before completion must be found")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("searcher never woke")
	}
	if stats.Blocks.Load() != 1 {
		t.Fatalf("blocks = %d, want 1", stats.Blocks.Load())
	}
	foundAfter := false
	for _, r := range stats.Rows() {
		if r.Key.When == symtab.AfterDKY {
			foundAfter = true
		}
	}
	if !foundAfter {
		t.Fatalf("want an After DKY row:\n%s", stats)
	}
}

func TestPessimisticBlocksBeforeSearching(t *testing.T) {
	tab, stats := newTable(symtab.Pessimistic)
	outer := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	inner := tab.NewScope(symtab.ProcScope, "P", outer, 1)
	report, _ := reporter(t)
	ctx := &ctrace.TaskCtx{}
	outer.Insert(ctx, report, sym("g")) // present but table incomplete

	res := make(chan symtab.Result, 1)
	go func() { res <- searcher(tab).Lookup(inner, "g", nil) }()
	select {
	case <-res:
		t.Fatal("pessimistic must block on an incomplete table even for a present symbol")
	case <-time.After(10 * time.Millisecond):
	}
	outer.Complete(ctx)
	r := <-res
	if r.Sym == nil {
		t.Fatal("symbol must be found after completion")
	}
	if stats.Blocks.Load() != 1 {
		t.Fatalf("blocks = %d, want 1", stats.Blocks.Load())
	}
}

func TestOptimisticWakesOnInsert(t *testing.T) {
	// Optimistic handling wakes on the individual symbol's event — the
	// table need not be complete.
	tab, _ := newTable(symtab.Optimistic)
	outer := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	inner := tab.NewScope(symtab.ProcScope, "P", outer, 1)
	report, _ := reporter(t)

	res := make(chan symtab.Result, 1)
	go func() { res <- searcher(tab).Lookup(inner, "soon", nil) }()
	time.Sleep(5 * time.Millisecond)
	outer.Insert(&ctrace.TaskCtx{}, report, sym("soon"))
	// NOTE: no Complete here — the insert alone must wake the searcher.
	select {
	case r := <-res:
		if r.Sym == nil {
			t.Fatal("optimistic searcher woke without the symbol")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("optimistic searcher must wake on the symbol's insertion")
	}
}

func TestOptimisticPlaceholdersClearedAtCompletion(t *testing.T) {
	tab, _ := newTable(symtab.Optimistic)
	outer := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	inner := tab.NewScope(symtab.ProcScope, "P", outer, 1)
	res := make(chan symtab.Result, 1)
	go func() { res <- searcher(tab).Lookup(inner, "never", nil) }()
	time.Sleep(5 * time.Millisecond)
	outer.Complete(&ctrace.TaskCtx{})
	r := <-res
	if r.Found() {
		t.Fatal("undeclared symbol must not be found")
	}
	if outer.Len() != 0 {
		t.Fatal("placeholders must not leak into the completed table")
	}
}

func TestQualifiedLookup(t *testing.T) {
	tab, stats := newTable(symtab.Skeptical)
	iface := tab.NewScope(symtab.DefScope, "Lib", nil, 0)
	report, _ := reporter(t)
	ctx := &ctrace.TaskCtx{}
	iface.Insert(ctx, report, sym("thing"))
	iface.Complete(ctx)
	res := searcher(tab).QualifiedLookup(iface, "thing")
	if res.Sym == nil {
		t.Fatal("qualified lookup failed")
	}
	res = searcher(tab).QualifiedLookup(iface, "absent")
	if res.Found() {
		t.Fatal("qualified miss must not chain outward")
	}
	var qualRows int
	for _, r := range stats.Rows() {
		if r.Key.Qualified {
			qualRows++
		}
	}
	if qualRows != 2 {
		t.Fatalf("want 2 qualified rows (hit + Never), got %d:\n%s", qualRows, stats)
	}
}

func TestAliasFollowing(t *testing.T) {
	tab, stats := newTable(symtab.Skeptical)
	iface := tab.NewScope(symtab.DefScope, "Lib", nil, 0)
	mod := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	report, _ := reporter(t)
	ctx := &ctrace.TaskCtx{}
	iface.Insert(ctx, report, sym("target"))
	iface.Complete(ctx)
	mod.Insert(ctx, report, &symtab.Symbol{
		Name: "target", Kind: symtab.KAlias, AliasScope: iface, AliasName: "target",
	})
	res := searcher(tab).Lookup(mod, "target", nil)
	if res.Sym == nil || res.Sym.Kind != symtab.KVar {
		t.Fatal("alias must resolve to the interface symbol")
	}
	otherRow := false
	for _, r := range stats.Rows() {
		if !r.Key.Qualified && r.Key.Rel == ctrace.RelOther {
			otherRow = true
		}
	}
	if !otherRow {
		t.Fatalf("alias hits classify as 'other' (Table 2):\n%s", stats)
	}
}

func TestWithBindingsShadowScopes(t *testing.T) {
	tab, stats := newTable(symtab.Skeptical)
	scope := tab.NewScope(symtab.ProcScope, "P", nil, 1)
	report, _ := reporter(t)
	ctx := &ctrace.TaskCtx{}
	scope.Insert(ctx, report, sym("x")) // also a local named x
	rec := types.NewRecord([]*types.Field{{Name: "x", Type: types.Char, Offset: 0}})
	res := searcher(tab).Lookup(scope, "x", []symtab.WithBinding{{Rec: rec}})
	if res.Field == nil {
		t.Fatal("WITH field must shadow the local")
	}
	withRow := false
	for _, r := range stats.Rows() {
		if r.Key.Rel == ctrace.RelWith {
			withRow = true
		}
	}
	if !withRow {
		t.Fatalf("WITH hits must classify as WITH:\n%s", stats)
	}
	// Innermost WITH wins.
	rec2 := types.NewRecord([]*types.Field{{Name: "x", Type: types.Real, Offset: 0}})
	res = searcher(tab).Lookup(scope, "x", []symtab.WithBinding{{Rec: rec}, {Rec: rec2}})
	if res.Field == nil || res.Field.Type != types.Real || res.WithIndex != 1 {
		t.Fatal("innermost WITH must win")
	}
}

func TestFixupQueueHidesUnpatchedSymbols(t *testing.T) {
	// While fixups are outstanding, newly inserted symbols stay
	// invisible to other tasks (entry atomicity, §2.2 footnote 1) but
	// visible to the owner.
	tab, _ := newTable(symtab.Skeptical)
	outer := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	inner := tab.NewScope(symtab.ProcScope, "P", outer, 1)
	report, _ := reporter(t)
	ctx := &ctrace.TaskCtx{}

	outer.DeferFixup()
	outer.Insert(ctx, report, sym("queued"))
	if outer.OwnerProbe("queued") == nil {
		t.Fatal("owner must see queued symbols")
	}
	// A foreign searcher must not see it yet (skeptical: miss + incomplete → blocks).
	found := make(chan symtab.Result, 1)
	go func() { found <- searcher(tab).Lookup(inner, "queued", nil) }()
	select {
	case <-found:
		t.Fatal("queued symbol leaked before fixups drained")
	case <-time.After(10 * time.Millisecond):
	}
	outer.ResolveFixup(ctx)
	outer.Complete(ctx)
	if r := <-found; r.Sym == nil {
		t.Fatal("published symbol not found after drain")
	}
}

func TestNeverRow(t *testing.T) {
	tab, stats := newTable(symtab.Skeptical)
	scope := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	scope.Complete(&ctrace.TaskCtx{})
	if res := searcher(tab).Lookup(scope, "ghost", nil); res.Found() {
		t.Fatal("ghost found")
	}
	rows := stats.Rows()
	if len(rows) != 1 || rows[0].Key.When != symtab.Never {
		t.Fatalf("want exactly the Never row:\n%s", stats)
	}
}

func TestStatsAddMerges(t *testing.T) {
	a, b := symtab.NewStats(), symtab.NewStats()
	a.Bump(symtab.StatKey{When: symtab.FirstTry, Rel: ctrace.RelSelf})
	b.Bump(symtab.StatKey{When: symtab.FirstTry, Rel: ctrace.RelSelf})
	b.BumpBlock()
	a.Add(b)
	if a.Lookups.Load() != 2 || a.Blocks.Load() != 1 {
		t.Fatalf("merge wrong: %d lookups %d blocks", a.Lookups.Load(), a.Blocks.Load())
	}
	if rows := a.Rows(); len(rows) != 1 || rows[0].Count != 2 {
		t.Fatal("row counts wrong after merge")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"avoidance", "pessimistic", "skeptical", "optimistic"} {
		s, err := symtab.ParseStrategy(name)
		if err != nil || s.String() != name {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := symtab.ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy must error")
	}
}

// TestConcurrentLookupCorrectness is the package's core property: under
// any interleaving of inserts, completions and searches, a search for a
// symbol that the producer WILL declare never reports not-found, and a
// search for an undeclared symbol never reports found — for every
// strategy.
func TestConcurrentLookupCorrectness(t *testing.T) {
	check := func(seed int64, strat uint8) bool {
		strategy := symtab.Strategy(strat % uint8(symtab.NumStrategies))
		r := rand.New(rand.NewSource(seed))
		tab := symtab.NewTable(strategy, nil, nil)
		outer := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
		inner := tab.NewScope(symtab.ProcScope, "P", outer, 1)
		report := func(token.Pos, string, ...any) {}

		declared := make([]string, 0, 8)
		for i := 0; i < 1+r.Intn(8); i++ {
			declared = append(declared, fmt.Sprintf("v%d", i))
		}

		var wg sync.WaitGroup
		// Producer: inserts with random delays, then completes.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &ctrace.TaskCtx{}
			for _, name := range declared {
				if r.Intn(2) == 0 {
					time.Sleep(time.Duration(r.Intn(100)) * time.Microsecond)
				}
				outer.Insert(ctx, report, sym(name))
			}
			outer.Complete(ctx)
		}()

		ok := true
		var mu sync.Mutex
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := &symtab.Searcher{Tab: tab, Ctx: &ctrace.TaskCtx{}}
				for i := 0; i < 10; i++ {
					name := declared[(g+i)%len(declared)]
					if res := s.Lookup(inner, name, nil); res.Sym == nil {
						mu.Lock()
						ok = false
						mu.Unlock()
						return
					}
					if res := s.Lookup(inner, "ghost", nil); res.Found() {
						mu.Lock()
						ok = false
						mu.Unlock()
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionEventFires(t *testing.T) {
	tab, _ := newTable(symtab.Skeptical)
	scope := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	var ev *event.Event = scope.CompletionEvent()
	if ev.Fired() {
		t.Fatal("fresh scope must be incomplete")
	}
	scope.Complete(&ctrace.TaskCtx{})
	if !ev.Fired() || !scope.Completed() {
		t.Fatal("completion event must fire")
	}
}
