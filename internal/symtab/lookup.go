package symtab

import (
	"fmt"
	"strings"
	"sync/atomic"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
	"m2cc/internal/faultinject"
	"m2cc/internal/types"
)

// Strategy selects how symbol search deals with the Doesn't Know Yet
// condition (§2.2).  The constants are ordered as in the paper: by
// decreasing DKY delay, increasing concurrency potential and increasing
// implementation effort.
type Strategy uint8

// DKY strategies.
const (
	// Avoidance delays the start of semantic analysis for a scope until
	// the declaration analysis of its parent scope is complete, so
	// searches never meet an incomplete outer table.  (The gating is
	// done by the driver; if a search still meets an incomplete table —
	// e.g. an indirectly imported interface — it degrades to a
	// Pessimistic wait.)
	Avoidance Strategy = iota
	// Pessimistic blocks on any incomplete table before searching it.
	Pessimistic
	// Skeptical searches the incomplete table first and blocks only if
	// the identifier is not found (Figure 6 — the paper's recommended
	// compromise).
	Skeptical
	// Optimistic blocks on a per-symbol event, waking as soon as the
	// individual entry appears (or the table completes without it).
	Optimistic

	// NumStrategies is the number of DKY strategies.
	NumStrategies
)

var strategyNames = [NumStrategies]string{"avoidance", "pessimistic", "skeptical", "optimistic"}

func (s Strategy) String() string {
	if s < NumStrategies {
		return strategyNames[s]
	}
	return "?"
}

// ParseStrategy converts a name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return Skeptical, fmt.Errorf("unknown DKY strategy %q (want avoidance, pessimistic, skeptical or optimistic)", name)
}

// FoundWhen is the "Found when" column of Table 2.
type FoundWhen uint8

// FoundWhen values.
const (
	// FirstTry: found in the first scope searched.
	FirstTry FoundWhen = iota
	// SearchOut: found while chaining outward through the parentage path.
	SearchOut
	// AfterDKY: found in a scope that was completed after a DKY blockage.
	AfterDKY
	// Never: the identifier was not found anywhere (an error).
	Never
)

func (w FoundWhen) String() string {
	switch w {
	case FirstTry:
		return "First try"
	case SearchOut:
		return "Search"
	case AfterDKY:
		return "After DKY"
	default:
		return "Never"
	}
}

// StatKey is one row coordinate of Table 2.
type StatKey struct {
	Qualified  bool
	When       FoundWhen
	Rel        ctrace.Relation
	Incomplete bool // table state at the successful probe (or first probe for Never)
}

// Outcome classifies how one lookup interacted with the DKY condition
// under its strategy — the measured counterpart of §2.3.3's
// risk/benefit discussion.  Found counts resolved lookups; Blocked
// counts DKY waits actually taken; Guessed counts hits in tables still
// under construction (Skeptical/Optimistic's winning gamble); Retracted
// counts incomplete-table misses that forced a wait plus a second
// search (the gamble's losing side: the first search was wasted work).
type Outcome uint8

// Outcome values.
const (
	OutFound Outcome = iota
	OutBlocked
	OutGuessed
	OutRetracted

	// NumOutcomes is the number of outcome buckets.
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{"found", "blocked", "guessed", "retracted"}

func (o Outcome) String() string {
	if o < NumOutcomes {
		return outcomeNames[o]
	}
	return "?"
}

// numWhen is the number of FoundWhen buckets (Table 2's rows go up to
// Never).
const numWhen = int(Never) + 1

// numStatCells is the dense size of the Table 2 count array:
// Qualified × FoundWhen × Relation × Incomplete.
const numStatCells = 2 * numWhen * int(ctrace.NumRelations) * 2

// cellIndex flattens a StatKey into its dense array slot.  The index
// order (simple before qualified, FoundWhen ascending, Relation
// ascending, complete before incomplete) is exactly Table 2's layout
// order, so Rows can walk the array in place of a sort.
func cellIndex(k StatKey) int {
	i := 0
	if k.Qualified {
		i = 1
	}
	i = i*numWhen + int(k.When)
	i = i*int(ctrace.NumRelations) + int(k.Rel)
	i *= 2
	if k.Incomplete {
		i++
	}
	return i
}

// cellKey is cellIndex's inverse.
func cellKey(i int) StatKey {
	var k StatKey
	k.Incomplete = i%2 == 1
	i /= 2
	k.Rel = ctrace.Relation(i % int(ctrace.NumRelations))
	i /= int(ctrace.NumRelations)
	k.When = FoundWhen(i % numWhen)
	k.Qualified = i/numWhen == 1
	return k
}

// Stats tallies identifier lookups for Table 2 plus aggregate DKY
// blockage counts and a per-strategy outcome histogram.  Safe for
// concurrent use.  Every counter is a dense atomic cell — the StatKey
// coordinate space is tiny and fixed — so the per-lookup instrumented
// path costs two uncontended atomic adds and no lock, whether or not
// anyone is observing.
type Stats struct {
	counts   [numStatCells]atomic.Int64
	outcomes [NumStrategies][NumOutcomes]atomic.Int64

	Blocks  atomic.Int64 // DKY blockages (waits actually taken)
	Lookups atomic.Int64
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{} }

func (st *Stats) bump(k StatKey) {
	if st == nil {
		return
	}
	// The origin scope, WITH field scopes and the builtin table are
	// never DKY-relevant; Table 2 reports them as complete.
	if k.Rel == ctrace.RelSelf || k.Rel == ctrace.RelWith || k.Rel == ctrace.RelBuiltin {
		k.Incomplete = false
	}
	st.counts[cellIndex(k)].Add(1)
	st.Lookups.Add(1)
}

// Bump adds one lookup outcome (exported for the trace-driven
// simulator, which re-derives Table 2 under any strategy).
func (st *Stats) Bump(k StatKey) { st.bump(k) }

func (st *Stats) block() {
	if st == nil {
		return
	}
	st.Blocks.Add(1)
}

// BumpBlock counts one DKY blockage (exported for the simulator).
func (st *Stats) BumpBlock() { st.block() }

func (st *Stats) bumpOutcome(strat Strategy, o Outcome) {
	if st == nil {
		return
	}
	st.outcomes[strat][o].Add(1)
}

// BumpOutcome adds one entry to the per-strategy outcome histogram
// (exported for the simulator's re-derived statistics).
func (st *Stats) BumpOutcome(strat Strategy, o Outcome) { st.bumpOutcome(strat, o) }

// OutcomeRow is one strategy's lookup-outcome histogram.
type OutcomeRow struct {
	Strategy Strategy
	Counts   [NumOutcomes]int64
}

// OutcomeRows returns the nonzero histogram rows in strategy order.
func (st *Stats) OutcomeRows() []OutcomeRow {
	if st == nil {
		return nil
	}
	var rows []OutcomeRow
	for strat := range st.outcomes {
		row := OutcomeRow{Strategy: Strategy(strat)}
		nonzero := false
		for o := range st.outcomes[strat] {
			if c := st.outcomes[strat][o].Load(); c != 0 {
				row.Counts[o] = c
				nonzero = true
			}
		}
		if nonzero {
			rows = append(rows, row)
		}
	}
	return rows
}

// Totals returns the lookup and DKY-blockage counts (the observability
// layer snapshots through here).
func (st *Stats) Totals() (lookups, blocks int64) {
	if st == nil {
		return 0, 0
	}
	return st.Lookups.Load(), st.Blocks.Load()
}

// Add merges other into st (used to aggregate a whole test suite).
func (st *Stats) Add(other *Stats) {
	if st == nil || other == nil {
		return
	}
	for i := range other.counts {
		if v := other.counts[i].Load(); v != 0 {
			st.counts[i].Add(v)
		}
	}
	for strat := range other.outcomes {
		for o := range other.outcomes[strat] {
			if v := other.outcomes[strat][o].Load(); v != 0 {
				st.outcomes[strat][o].Add(v)
			}
		}
	}
	st.Blocks.Add(other.Blocks.Load())
	st.Lookups.Add(other.Lookups.Load())
}

// Rows returns the nonzero rows in Table 2's layout order (the dense
// array's index order).
func (st *Stats) Rows() []StatRow {
	rows := make([]StatRow, 0, 16)
	var total int64
	for i := range st.counts {
		if v := st.counts[i].Load(); v != 0 {
			rows = append(rows, StatRow{Key: cellKey(i), Count: v})
			total += v
		}
	}
	for i := range rows {
		rows[i].Percent = 100 * float64(rows[i].Count) / float64(max64(total, 1))
	}
	return rows
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// StatRow is one rendered row of Table 2.
type StatRow struct {
	Key     StatKey
	Count   int64
	Percent float64
}

func (r StatRow) String() string {
	comp := "complete"
	if r.Key.Incomplete {
		comp = "incomplete"
	}
	cls := "simple"
	if r.Key.Qualified {
		cls = "qualified"
	}
	if r.Key.When == Never {
		return fmt.Sprintf("%-9s  %-9s  %-7s  %-10s  %8d  %6.2f%%", cls, "Never", "-", "-", r.Count, r.Percent)
	}
	return fmt.Sprintf("%-9s  %-9s  %-7s  %-10s  %8d  %6.2f%%",
		cls, r.Key.When, r.Key.Rel, comp, r.Count, r.Percent)
}

// String renders the whole table.
func (st *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s  %-9s  %-7s  %-10s  %8s  %7s\n", "class", "found", "scope", "state", "number", "%")
	for _, r := range st.Rows() {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "lookups: %d   DKY blockages: %d\n", st.Lookups.Load(), st.Blocks.Load())
	if rows := st.OutcomeRows(); len(rows) > 0 {
		fmt.Fprintf(&sb, "\n%-12s  %8s  %8s  %8s  %9s\n", "strategy", "found", "blocked", "guessed", "retracted")
		for _, r := range rows {
			fmt.Fprintf(&sb, "%-12s  %8d  %8d  %8d  %9d\n", r.Strategy,
				r.Counts[OutFound], r.Counts[OutBlocked], r.Counts[OutGuessed], r.Counts[OutRetracted])
		}
	}
	return sb.String()
}

// WithBinding is one active WITH statement: lookups check the record's
// field scope before the ordinary scope chain.
type WithBinding struct {
	Rec *types.Type
}

// Result is a lookup outcome: either a symbol, or a record field bound
// by an enclosing WITH (WithIndex tells which binding matched).
type Result struct {
	Sym       *Symbol
	Field     *types.Field
	WithIndex int

	// DeepAlias marks a not-found outcome caused by an alias chain
	// longer than the follow limit (a cyclic or absurdly deep
	// re-export); callers should report it as such rather than as a
	// plain undeclared identifier.
	DeepAlias bool
}

// Found reports whether the lookup succeeded.
func (r Result) Found() bool { return r.Sym != nil || r.Field != nil }

// Searcher performs symbol lookups on behalf of one task.  Wait is the
// handled-event wait supplied by the scheduler (releasing the worker
// slot and preferring the resolving task, §2.3.4); nil waits inline.
type Searcher struct {
	Tab  *Table
	Ctx  *ctrace.TaskCtx
	Wait func(*event.Event)

	// hopBuf is the per-Searcher scratch buffer for traced lookups'
	// hop chains; record hands the recorder an exact-size copy and
	// recaptures the (possibly grown) buffer.  Searchers are owned by
	// one task, so reuse is race-free.
	hopBuf []ctrace.Hop
}

func (s *Searcher) wait(e *event.Event) bool {
	if e.Fired() {
		// The producer got there first; no blockage is taken (and none
		// is counted — Table 2's DKY numbers are real waits only).
		return false
	}
	s.Ctx.NoteWait(e)
	s.Tab.Stats.block()
	s.Tab.Stats.bumpOutcome(s.Tab.Strategy, OutBlocked)
	if s.Wait != nil {
		s.Wait(e)
	} else {
		e.Wait()
	}
	return true
}

// tally counts one finished lookup: the Table 2 row plus, for resolved
// lookups, the strategy's outcome histogram.
func (s *Searcher) tally(k StatKey) {
	s.Tab.Stats.bump(k)
	if k.When != Never {
		s.Tab.Stats.bumpOutcome(s.Tab.Strategy, OutFound)
	}
}

// probeResult is the outcome of searching one scope under the current
// strategy.
type probeResult struct {
	sym        *Symbol
	incomplete bool // table state at the successful (or final) probe
	blocked    bool // a DKY wait was taken on this scope
}

// searchScope searches one scope under the table's strategy.  self
// marks the origin scope (owner view, never blocks).  Each strategy
// waits at most once per scope: the completion (or per-symbol) event
// firing is the contract that a re-probe is final, which also lets the
// scheduler's deadlock watchdog force-fire events for erroneous
// programs (cyclic imports) without livelocking searchers.
func (s *Searcher) searchScope(sc *Scope, name string, self bool) probeResult {
	s.Ctx.Add(ctrace.CostLookupHop)
	if self {
		sym, complete := sc.probeOwner(name)
		return probeResult{sym: sym, incomplete: !complete}
	}
	switch s.Tab.Strategy {
	case Skeptical:
		// Figure 6: record the completion state, search, succeed on a
		// hit; otherwise wait for completion if the table was initially
		// incomplete and search once more.
		sym, complete := sc.probe(name)
		if sym != nil || complete {
			if sym != nil && !complete {
				// The skeptic's winning gamble: a hit in a table still
				// under construction, no wait needed.
				s.Tab.Stats.bumpOutcome(s.Tab.Strategy, OutGuessed)
			}
			return probeResult{sym: sym, incomplete: !complete}
		}
		// The losing side: the incomplete-table search missed, so the
		// first pass was wasted work — wait, then search once more.
		s.Tab.Stats.bumpOutcome(s.Tab.Strategy, OutRetracted)
		blocked := s.wait(sc.completion)
		s.Ctx.Add(ctrace.CostLookupHop)
		sym, complete = sc.probe(name)
		return probeResult{sym: sym, incomplete: !complete, blocked: blocked}
	case Optimistic:
		sym, complete, ev := sc.probeOrPlaceholder(name)
		if sym != nil || ev == nil {
			if sym != nil && !complete {
				s.Tab.Stats.bumpOutcome(s.Tab.Strategy, OutGuessed)
			}
			return probeResult{sym: sym, incomplete: !complete}
		}
		blocked := s.wait(ev)
		s.Ctx.Add(ctrace.CostLookupHop)
		sym, complete = sc.probe(name)
		return probeResult{sym: sym, incomplete: !complete, blocked: blocked}
	default:
		// Pessimistic blocks before searching an incomplete table;
		// Avoidance expects completeness by construction and degrades
		// to the same wait when an indirectly imported table is still
		// incomplete.
		blocked := false
		if !sc.Completed() {
			blocked = s.wait(sc.completion)
		}
		sym, complete := sc.probe(name)
		return probeResult{sym: sym, incomplete: !complete, blocked: blocked}
	}
}

// classify derives the FoundWhen bucket.
func classify(first bool, blocked bool) FoundWhen {
	switch {
	case blocked:
		return AfterDKY
	case first:
		return FirstTry
	default:
		return SearchOut
	}
}

// record sends the lookup's hop chain to the trace recorder.  The
// recorder keeps its slice, so hops (usually the Searcher's scratch
// buffer) is copied at exact size and the buffer reclaimed for the
// next lookup.
func (s *Searcher) record(qualified bool, at ctrace.Stamp, hops []ctrace.Hop, found bool) {
	rec := s.Tab.Rec
	if rec == nil {
		return
	}
	var kept []ctrace.Hop
	if len(hops) > 0 {
		kept = make([]ctrace.Hop, len(hops))
		copy(kept, hops)
		s.hopBuf = hops[:0]
	}
	rec.NoteLookup(ctrace.LookupRecord{At: at, Qualified: qualified, Hops: kept, Found: found})
}

// hop builds a trace hop for a scope probe outcome.
func (s *Searcher) hop(sc *Scope, rel ctrace.Relation, pr probeResult) ctrace.Hop {
	h := ctrace.Hop{Scope: sc.ID, Rel: rel, Found: pr.sym != nil}
	if rel != ctrace.RelSelf && rel != ctrace.RelBuiltin {
		if rec := s.Tab.Rec; rec != nil {
			h.Completion = sc.completionID(rec)
		}
	}
	if pr.sym != nil {
		h.Insert = pr.sym.Insert
		if s.Tab.IsPrefired(sc) {
			// Interface-cache hit: the symbol's recorded insertion time
			// belongs to the compilation that built the scope.  In this
			// trace it pre-exists every task, like a builtin.
			h.Insert = ctrace.Stamp{}
		}
	}
	return h
}

// Lookup resolves a simple identifier starting at origin: active WITH
// field scopes innermost-first, then the origin scope itself (with
// pervasive builtins acting as if declared locally, §2.2), then outward
// along the parentage chain, following FROM-import aliases into their
// interface scopes.  A zero Result means not found; the caller reports
// the error.
func (s *Searcher) Lookup(origin *Scope, name string, withs []WithBinding) Result {
	if s.Tab.Inject != nil {
		s.Tab.Inject.Panic(faultinject.PanicLookup, name)
	}
	at := s.Ctx.Stamp()
	hops := s.hopBuf[:0]
	tracing := s.Tab.Rec != nil

	// WITH scopes, innermost first.  Record field maps are built before
	// their types publish, so these probes never block.
	for i := len(withs) - 1; i >= 0; i-- {
		s.Ctx.Add(ctrace.CostLookupHop)
		if f := withs[i].Rec.FieldNamed(name); f != nil {
			s.tally(StatKey{When: FirstTry, Rel: ctrace.RelWith})
			if tracing {
				hops = append(hops, ctrace.Hop{Rel: ctrace.RelWith, Found: true})
				s.record(false, at, hops, true)
			}
			return Result{Field: f, WithIndex: i}
		}
	}

	first := true
	for sc := origin; sc != nil; sc = sc.Parent {
		self := sc == origin
		rel := ctrace.RelOuter
		if self {
			rel = ctrace.RelSelf
		}
		pr := s.searchScope(sc, name, self)
		if tracing {
			hops = append(hops, s.hop(sc, rel, pr))
		}
		if pr.sym != nil {
			if pr.sym.Kind == KAlias {
				return s.followAlias(pr.sym, name, at, hops)
			}
			s.tally(StatKey{When: classify(first, pr.blocked), Rel: rel, Incomplete: pr.incomplete})
			s.record(false, at, hops, true)
			return Result{Sym: pr.sym}
		}
		if self {
			// Builtin names behave as if declared local to every scope.
			s.Ctx.Add(ctrace.CostLookupHop)
			if b := lookupBuiltin(name); b != nil {
				s.tally(StatKey{When: FirstTry, Rel: ctrace.RelBuiltin})
				if tracing {
					hops = append(hops, ctrace.Hop{Rel: ctrace.RelBuiltin, Found: true})
					s.record(false, at, hops, true)
				}
				return Result{Sym: b}
			}
		}
		first = false
	}
	s.tally(StatKey{When: Never})
	s.record(false, at, hops, false)
	return Result{}
}

// MaxAliasDepth bounds how many FROM-import aliases a single lookup
// will chase.  Legal re-export chains are short; anything longer is a
// cycle (A re-exports from B, B from A) or pathological nesting, and
// is reported as a deep-alias error rather than a plain not-found.
const MaxAliasDepth = 8

// followAlias continues a search through a FROM-import alias into its
// interface scope — "some other explicitly designated initial search
// scope" in Table 2's terms.
func (s *Searcher) followAlias(alias *Symbol, name string, at ctrace.Stamp, hops []ctrace.Hop) Result {
	tracing := s.Tab.Rec != nil
	for depth := 0; depth < MaxAliasDepth; depth++ {
		// The alias hop itself is not a hit for the trace: mark the
		// previous hop not-found so the simulator keeps searching.
		if tracing && len(hops) > 0 {
			hops[len(hops)-1].Found = false
		}
		pr := s.searchScope(alias.AliasScope, alias.AliasName, false)
		if tracing {
			hops = append(hops, s.hop(alias.AliasScope, ctrace.RelOther, pr))
		}
		if pr.sym == nil {
			s.tally(StatKey{When: Never})
			s.record(false, at, hops, false)
			return Result{}
		}
		if pr.sym.Kind != KAlias {
			s.tally(StatKey{
				When: classify(true, pr.blocked), Rel: ctrace.RelOther, Incomplete: pr.incomplete,
			})
			s.record(false, at, hops, true)
			return Result{Sym: pr.sym}
		}
		alias = pr.sym
	}
	s.tally(StatKey{When: Never})
	s.record(false, at, hops, false)
	return Result{DeepAlias: true}
}

// QualifiedLookup resolves the member of a qualified identifier M.x in
// the interface scope designated by M.  There is no outward chaining
// and no builtin fallback: qualified names live in exactly one table.
func (s *Searcher) QualifiedLookup(iface *Scope, name string) Result {
	if s.Tab.Inject != nil {
		s.Tab.Inject.Panic(faultinject.PanicLookup, name)
	}
	at := s.Ctx.Stamp()
	tracing := s.Tab.Rec != nil
	hops := s.hopBuf[:0]
	pr := s.searchScope(iface, name, false)
	if tracing {
		hops = append(hops, s.hop(iface, ctrace.RelOther, pr))
	}
	if pr.sym != nil && pr.sym.Kind == KAlias {
		return s.followAliasQualified(pr.sym, at, hops)
	}
	if pr.sym != nil {
		s.tally(StatKey{
			Qualified: true, When: classify(true, pr.blocked),
			Rel: ctrace.RelOther, Incomplete: pr.incomplete,
		})
		s.record(true, at, hops, true)
		return Result{Sym: pr.sym}
	}
	s.tally(StatKey{Qualified: true, When: Never})
	s.record(true, at, hops, false)
	return Result{}
}

func (s *Searcher) followAliasQualified(alias *Symbol, at ctrace.Stamp, hops []ctrace.Hop) Result {
	tracing := s.Tab.Rec != nil
	deep := true
	for depth := 0; depth < MaxAliasDepth; depth++ {
		if tracing && len(hops) > 0 {
			hops[len(hops)-1].Found = false
		}
		pr := s.searchScope(alias.AliasScope, alias.AliasName, false)
		if tracing {
			hops = append(hops, s.hop(alias.AliasScope, ctrace.RelOther, pr))
		}
		if pr.sym == nil {
			deep = false
			break
		}
		if pr.sym.Kind != KAlias {
			s.tally(StatKey{
				Qualified: true, When: classify(true, pr.blocked),
				Rel: ctrace.RelOther, Incomplete: pr.incomplete,
			})
			s.record(true, at, hops, true)
			return Result{Sym: pr.sym}
		}
		alias = pr.sym
	}
	s.tally(StatKey{Qualified: true, When: Never})
	s.record(true, at, hops, false)
	return Result{DeepAlias: deep}
}
