package symtab

import (
	"strings"
	"testing"
)

// TestOutcomeHistogram exercises the per-strategy, per-outcome lookup
// histogram: bumping, strategy-ordered rows, merging and rendering.
func TestOutcomeHistogram(t *testing.T) {
	st := NewStats()
	if rows := st.OutcomeRows(); len(rows) != 0 {
		t.Fatalf("fresh stats has outcome rows: %+v", rows)
	}
	st.BumpOutcome(Skeptical, OutFound)
	st.BumpOutcome(Skeptical, OutFound)
	st.BumpOutcome(Skeptical, OutGuessed)
	st.BumpOutcome(Optimistic, OutBlocked)

	rows := st.OutcomeRows()
	if len(rows) != 2 {
		t.Fatalf("OutcomeRows = %+v, want 2 strategies", rows)
	}
	// Rows come in strategy order: Skeptical (2) before Optimistic (3).
	if rows[0].Strategy != Skeptical || rows[1].Strategy != Optimistic {
		t.Fatalf("row order = %v, %v", rows[0].Strategy, rows[1].Strategy)
	}
	if rows[0].Counts != [NumOutcomes]int64{2, 0, 1, 0} {
		t.Errorf("skeptical counts = %v, want [2 0 1 0]", rows[0].Counts)
	}
	if rows[1].Counts != [NumOutcomes]int64{0, 1, 0, 0} {
		t.Errorf("optimistic counts = %v, want [0 1 0 0]", rows[1].Counts)
	}

	// Add merges histograms, including strategies new to the receiver.
	other := NewStats()
	other.BumpOutcome(Skeptical, OutRetracted)
	other.BumpOutcome(Avoidance, OutFound)
	st.Add(other)
	rows = st.OutcomeRows()
	if len(rows) != 3 || rows[0].Strategy != Avoidance {
		t.Fatalf("after Add: rows = %+v, want avoidance first of 3", rows)
	}
	if rows[1].Counts != [NumOutcomes]int64{2, 0, 1, 1} {
		t.Errorf("merged skeptical counts = %v, want [2 0 1 1]", rows[1].Counts)
	}

	out := st.String()
	for _, want := range []string{"retracted", "guessed", Skeptical.String()} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q:\n%s", want, out)
		}
	}
}

// TestOutcomeStrings pins the outcome names used by the obs metrics
// export.
func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutFound: "found", OutBlocked: "blocked",
		OutGuessed: "guessed", OutRetracted: "retracted",
	}
	for o, name := range want {
		if o.String() != name {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), name)
		}
	}
}
