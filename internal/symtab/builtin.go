package symtab

import (
	"m2cc/internal/types"
)

// BuiltinID identifies a pervasive procedure or function.  The paper's
// §2.2 treats builtin names — "typically builtin input/output routines
// or mathematical routines like sin and sqrt" — as if declared local to
// every scope, so a reference to one never incurs DKY waits on outer
// scopes.  Modula-2+ forbids redeclaring them, which Insert enforces.
type BuiltinID uint8

// Builtin routines.
const (
	BInvalid BuiltinID = iota

	// Standard functions.
	BAbs
	BCap
	BChr
	BFloat
	BHigh
	BMax
	BMin
	BOdd
	BOrd
	BSize
	BTSize
	BTrunc
	BVal

	// Mathematical functions (pervasive in this dialect, per §2.2).
	BSin
	BCos
	BSqrt
	BLn
	BExp
	BArctan

	// Standard procedures.
	BInc
	BDec
	BIncl
	BExcl
	BHalt
	BNew
	BDispose
	BAssert

	// Input/output procedures.
	BWriteInt
	BWriteCard
	BWriteChar
	BWriteString
	BWriteReal
	BWriteLn
	BWriteText
	BReadInt
	BReadChar

	// NumBuiltins is the number of builtin IDs.
	NumBuiltins
)

var builtinNames = [NumBuiltins]string{
	BInvalid: "?",
	BAbs:     "ABS", BCap: "CAP", BChr: "CHR", BFloat: "FLOAT", BHigh: "HIGH",
	BMax: "MAX", BMin: "MIN", BOdd: "ODD", BOrd: "ORD", BSize: "SIZE",
	BTSize: "TSIZE", BTrunc: "TRUNC", BVal: "VAL",
	BSin: "sin", BCos: "cos", BSqrt: "sqrt", BLn: "ln", BExp: "exp", BArctan: "arctan",
	BInc: "INC", BDec: "DEC", BIncl: "INCL", BExcl: "EXCL", BHalt: "HALT",
	BNew: "NEW", BDispose: "DISPOSE", BAssert: "ASSERT",
	BWriteInt: "WriteInt", BWriteCard: "WriteCard", BWriteChar: "WriteChar",
	BWriteString: "WriteString", BWriteReal: "WriteReal", BWriteLn: "WriteLn",
	BWriteText: "WriteText", BReadInt: "ReadInt", BReadChar: "ReadChar",
}

// Name returns the source spelling of the builtin.
func (b BuiltinID) Name() string {
	if b < NumBuiltins {
		return builtinNames[b]
	}
	return "?"
}

// builtinScope holds every pervasive name.  It is immutable after
// package initialization and shared (read-only, hence safely) by all
// compilations; its probes never block and never record completion
// events — the builtin table is complete by construction.
var builtinScope *Scope

// builtinByName backs the O(1) check that makes builtin references
// avoid scope chaining (§2.2's "simple modification of the symbol table
// search mechanism").
var builtinByName map[string]*Symbol

func lookupBuiltin(name string) *Symbol { return builtinByName[name] }

// LookupBuiltin exposes the pervasive table to the semantic analyzer
// (e.g. to pre-type FOR loop bounds).  It returns nil for non-builtins.
func LookupBuiltin(name string) *Symbol { return lookupBuiltin(name) }

func init() {
	builtinScope = &Scope{
		ID: 0, Kind: BuiltinScope, Name: "<pervasive>",
		syms: make(map[string]*Symbol), complete: true,
	}
	builtinByName = builtinScope.syms

	add := func(sym *Symbol) {
		builtinScope.syms[sym.Name] = sym
		builtinScope.order = append(builtinScope.order, sym)
	}
	typ := func(t *types.Type) {
		add(&Symbol{Name: t.Name, Kind: KType, Type: t})
	}
	konst := func(name string, c types.Const) {
		add(&Symbol{Name: name, Kind: KConst, Type: c.Type, Val: c})
	}

	for _, t := range []*types.Type{
		types.Integer, types.Cardinal, types.LongInt, types.Boolean,
		types.Char, types.Real, types.LongReal, types.BitSet, types.Proc,
		types.Text, types.RefAny, types.Mutex,
	} {
		typ(t)
	}
	konst("TRUE", types.MakeBool(true))
	konst("FALSE", types.MakeBool(false))
	konst("NIL", types.MakeNil())

	for b := BAbs; b < NumBuiltins; b++ {
		add(&Symbol{Name: b.Name(), Kind: KBuiltin, BID: b})
	}
}
