package symtab_test

import (
	"fmt"
	"testing"

	"m2cc/internal/ctrace"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
)

func noReport(token.Pos, string, ...any) {}

// aliasChain builds an origin scope whose "x" is the head of a chain of
// links alias hops ending in a real variable, all scopes completed.
func aliasChain(tab *symtab.Table, ctx *ctrace.TaskCtx, links int) (origin *symtab.Scope) {
	ifaces := make([]*symtab.Scope, links)
	for i := range ifaces {
		ifaces[i] = tab.NewScope(symtab.DefScope, fmt.Sprintf("I%d", i), nil, 0)
	}
	for i := 0; i < links-1; i++ {
		ifaces[i].Insert(ctx, noReport, &symtab.Symbol{
			Name: "x", Kind: symtab.KAlias, AliasScope: ifaces[i+1], AliasName: "x",
		})
	}
	ifaces[links-1].Insert(ctx, noReport, &symtab.Symbol{Name: "x", Kind: symtab.KVar})
	for _, sc := range ifaces {
		sc.Complete(ctx)
	}
	origin = tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	origin.Insert(ctx, noReport, &symtab.Symbol{
		Name: "x", Kind: symtab.KAlias, AliasScope: ifaces[0], AliasName: "x",
	})
	origin.Complete(ctx)
	return origin
}

func TestAliasChainAtDepthLimitResolves(t *testing.T) {
	tab, _ := newTable(symtab.Skeptical)
	ctx := &ctrace.TaskCtx{}
	origin := aliasChain(tab, ctx, symtab.MaxAliasDepth)
	s := &symtab.Searcher{Tab: tab, Ctx: ctx}
	res := s.Lookup(origin, "x", nil)
	if res.Sym == nil || res.Sym.Kind != symtab.KVar || res.DeepAlias {
		t.Fatalf("chain of %d links must resolve: %+v", symtab.MaxAliasDepth, res)
	}
}

func TestAliasChainBeyondLimitReportsDeepAlias(t *testing.T) {
	tab, _ := newTable(symtab.Skeptical)
	ctx := &ctrace.TaskCtx{}
	origin := aliasChain(tab, ctx, symtab.MaxAliasDepth+1)
	s := &symtab.Searcher{Tab: tab, Ctx: ctx}
	res := s.Lookup(origin, "x", nil)
	if res.Found() {
		t.Fatalf("chain of %d links must not resolve", symtab.MaxAliasDepth+1)
	}
	if !res.DeepAlias {
		t.Fatal("exhausted alias chain must be flagged DeepAlias, not plain not-found")
	}
}

func TestCyclicAliasReportsDeepAlias(t *testing.T) {
	tab, _ := newTable(symtab.Skeptical)
	ctx := &ctrace.TaskCtx{}
	a := tab.NewScope(symtab.DefScope, "A", nil, 0)
	b := tab.NewScope(symtab.DefScope, "B", nil, 0)
	a.Insert(ctx, noReport, &symtab.Symbol{Name: "x", Kind: symtab.KAlias, AliasScope: b, AliasName: "x"})
	b.Insert(ctx, noReport, &symtab.Symbol{Name: "x", Kind: symtab.KAlias, AliasScope: a, AliasName: "x"})
	a.Complete(ctx)
	b.Complete(ctx)
	origin := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	origin.Insert(ctx, noReport, &symtab.Symbol{Name: "x", Kind: symtab.KAlias, AliasScope: a, AliasName: "x"})
	origin.Complete(ctx)

	s := &symtab.Searcher{Tab: tab, Ctx: ctx}
	if res := s.Lookup(origin, "x", nil); res.Found() || !res.DeepAlias {
		t.Fatalf("cyclic alias: got %+v, want DeepAlias", res)
	}
	// Qualified form: M.x where M's interface member is the cycle head.
	if res := s.QualifiedLookup(a, "x"); res.Found() || !res.DeepAlias {
		t.Fatalf("cyclic alias (qualified): got %+v, want DeepAlias", res)
	}
}

func TestBrokenAliasIsPlainNotFound(t *testing.T) {
	tab, _ := newTable(symtab.Skeptical)
	ctx := &ctrace.TaskCtx{}
	empty := tab.NewScope(symtab.DefScope, "E", nil, 0)
	empty.Complete(ctx)
	a := tab.NewScope(symtab.DefScope, "A", nil, 0)
	a.Insert(ctx, noReport, &symtab.Symbol{Name: "x", Kind: symtab.KAlias, AliasScope: empty, AliasName: "x"})
	a.Complete(ctx)

	s := &symtab.Searcher{Tab: tab, Ctx: ctx}
	// The chain dead-ends in a completed scope without the name: that is
	// an ordinary undeclared identifier, not a deep-alias condition.
	if res := s.QualifiedLookup(a, "x"); res.Found() || res.DeepAlias {
		t.Fatalf("broken alias: got %+v, want plain not-found", res)
	}
}

// BenchmarkLookupChain measures the traced hot path: a lookup chaining
// through a procedure scope, its module scope and an alias into an
// interface scope.  Run with -benchmem; the Searcher's reusable hop
// buffer keeps steady-state allocations to the recorder's exact-size
// copy of the hop chain.
func BenchmarkLookupChain(b *testing.B) {
	for _, tracing := range []bool{false, true} {
		name := "untraced"
		var rec *ctrace.Recorder
		if tracing {
			name = "traced"
			rec = ctrace.NewRecorder()
		}
		b.Run(name, func(b *testing.B) {
			tab := symtab.NewTable(symtab.Skeptical, nil, rec)
			ctx := &ctrace.TaskCtx{Rec: rec}
			iface := tab.NewScope(symtab.DefScope, "I", nil, 0)
			iface.Insert(ctx, noReport, &symtab.Symbol{Name: "x", Kind: symtab.KVar})
			iface.Complete(ctx)
			mod := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
			mod.Insert(ctx, noReport, &symtab.Symbol{
				Name: "x", Kind: symtab.KAlias, AliasScope: iface, AliasName: "x",
			})
			mod.Complete(ctx)
			proc := tab.NewScope(symtab.ProcScope, "P", mod, 1)
			proc.Insert(ctx, noReport, &symtab.Symbol{Name: "y", Kind: symtab.KVar})
			proc.Complete(ctx)

			s := &symtab.Searcher{Tab: tab, Ctx: ctx}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := s.Lookup(proc, "x", nil); res.Sym == nil {
					b.Fatal("lookup failed")
				}
			}
		})
	}
}
