// Package symtab implements the concurrent compiler's symbol tables.
//
// Following §2.2 of the paper, the units of compilation correspond to
// major scopes of declaration, and each scope (definition module, main
// module, procedure) has its own symbol table; tables are linked through
// the scope ancestry path.  Because tables are built concurrently with
// the searches that consult them, a search has three possible outcomes —
// found, not found, and *Doesn't Know Yet* — and the package implements
// all four strategies the paper evaluates for the third outcome:
// Avoidance, Pessimistic, Skeptical (Figure 6, the paper's
// recommendation) and Optimistic.
//
// Creation of symbol table entries is atomic with respect to search
// (footnote 1 of the paper): the declaration analyzer constructs each
// symbol completely before publishing it, and symbols whose types are
// still awaiting forward-reference fixups are queued unpublished until
// the fixups drain, so no task ever observes a half-built entry.
package symtab

import (
	"sync"
	"sync/atomic"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
	"m2cc/internal/faultinject"
	"m2cc/internal/token"
	"m2cc/internal/types"
)

// SymKind classifies symbol table entries.
type SymKind uint8

// Symbol kinds.
const (
	KConst SymKind = iota
	KType
	KVar
	KParam
	KProc
	KModule    // an imported module name, designating its interface scope
	KAlias     // a FROM-import: resolves lazily in another scope
	KException // a Modula-2+ exception
	KBuiltin   // a pervasive procedure or function
)

var symKindNames = [...]string{
	"constant", "type", "variable", "parameter", "procedure",
	"module", "import", "exception", "builtin",
}

func (k SymKind) String() string {
	if int(k) < len(symKindNames) {
		return symKindNames[k]
	}
	return "?"
}

// Symbol is one symbol table entry.  All fields are set before the
// symbol is published to its scope and never mutated afterwards.
type Symbol struct {
	Name string
	Kind SymKind
	Pos  token.Pos
	Type *types.Type

	Val types.Const // KConst: the constant's value
	BID BuiltinID   // KBuiltin: which pervasive routine

	// Storage assignment for KVar / KParam.  Globals carry the *name* of
	// their storage area rather than an object-local index: indices are
	// per-compilation (vm.Registry assigns them first-use), while symbols
	// in an interface scope may be shared across compilations through the
	// interface cache.  Code generators resolve the name at emit time.
	Global bool   // module-level variable
	Area   string // globals area of the module declaring it ("M.def"/"M.mod")
	Level  int32  // static nesting level for locals/params
	Offset int32  // slot offset within globals area or frame
	ByRef  bool   // VAR parameter
	Open   bool   // open-array parameter (base+length slot pair)

	ProcIdx int32  // KProc: object-local procedure code index (-1 = external)
	ExcName string // KException: fully qualified name, resolved at emit time

	// ExtName is the symbolic link name ("Module.Proc") for procedures
	// declared in an imported definition module; code references to
	// them stay symbolic until link time.  Empty for local procedures.
	ExtName string

	IfaceScope *Scope // KModule: the designated interface scope

	AliasScope *Scope // KAlias: scope to continue the search in
	AliasName  string // KAlias: name to search for there

	// Insert is the trace stamp of the publication moment.
	Insert ctrace.Stamp

	placeholder bool         // Optimistic-handling placeholder entry
	ready       *event.Event // per-symbol DKY event (Optimistic handling)
}

// ScopeKind classifies scopes.
type ScopeKind uint8

// Scope kinds.
const (
	BuiltinScope ScopeKind = iota
	DefScope               // a definition module's interface
	ModuleScope            // the implementation/main module body
	ProcScope              // a procedure
)

func (k ScopeKind) String() string {
	switch k {
	case BuiltinScope:
		return "builtin"
	case DefScope:
		return "interface"
	case ModuleScope:
		return "module"
	default:
		return "procedure"
	}
}

// Scope is one symbol table with its completion state.
type Scope struct {
	ID     int32
	Kind   ScopeKind
	Name   string
	Parent *Scope
	Level  int32 // static nesting level of entities declared here
	tab    *Table

	mu       sync.Mutex // guards: syms, order, and the publication state below
	syms     map[string]*Symbol
	order    []*Symbol // publication order (deterministic listings)
	complete bool

	// sealed is the lock-free probe fast path: Complete publishes the
	// finished syms map here (placeholders already stripped) after its
	// last write, inside the critical section.  Once a scope seals, its
	// map is never written again — Insert is owner-only and precedes
	// Complete, and probeOrPlaceholder declines to install placeholders
	// in complete scopes — so concurrent searchers may read the map
	// without the mutex.  A non-nil load implies complete, and the
	// sequentially-consistent store/load pair publishes every entry.
	sealed atomic.Pointer[map[string]*Symbol]

	// Owner-task bookkeeping for the atomic-publication rule: while
	// fixups > 0, newly inserted symbols wait in queue.
	fixups int
	queue  []*Symbol

	completion *event.Event
	complID    ctrace.EventID   // assigned lazily when first traced...
	complRec   *ctrace.Recorder // ...by this recorder.  Interface scopes
	// can be shared across compilations (interface cache), each with its
	// own recorder, so the cached ID is valid only for complRec.
}

// Table is the per-compilation symbol table registry: it numbers scopes,
// carries the selected DKY strategy, the Table 2 statistics collector
// and the optional trace recorder.
type Table struct {
	mu       sync.Mutex // guards: nextID, prefired
	nextID   int32
	prefired map[*Scope]bool

	Builtins *Scope
	Strategy Strategy
	Stats    *Stats
	Rec      *ctrace.Recorder

	// Inject, when non-nil, arms the PanicLookup fault-injection point
	// in Searcher (tests only); nil costs one pointer check per lookup.
	Inject *faultinject.Plan
}

// MarkPrefired notes that scope entered this compilation already
// complete (an interface-cache hit): its symbols and completion event
// predate every task of this compilation, so traced lookups must stamp
// them as pre-existing rather than replaying a foreign session's times.
func (t *Table) MarkPrefired(scope *Scope) {
	t.mu.Lock()
	if t.prefired == nil {
		t.prefired = make(map[*Scope]bool)
	}
	t.prefired[scope] = true
	t.mu.Unlock()
}

// IsPrefired reports whether scope was installed by MarkPrefired.
func (t *Table) IsPrefired(scope *Scope) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.prefired[scope]
}

// NewTable returns a table using the given DKY strategy.  stats and rec
// may be nil.
func NewTable(strategy Strategy, stats *Stats, rec *ctrace.Recorder) *Table {
	t := &Table{Strategy: strategy, Stats: stats, Rec: rec}
	t.Builtins = builtinScope
	return t
}

// NewScope creates a scope with the given parentage.  The scope starts
// incomplete; the declaring task must call Complete exactly once.
func (t *Table) NewScope(kind ScopeKind, name string, parent *Scope, level int32) *Scope {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Scope{
		ID: id, Kind: kind, Name: name, Parent: parent, Level: level,
		tab: t, syms: make(map[string]*Symbol), completion: event.New(),
	}
}

// Grow pre-sizes the scope's symbol map for n upcoming declarations so
// insertion does not rehash incrementally.  Existing entries (imports,
// copied procedure headings) are preserved.  Owner task only.
func (s *Scope) Grow(n int) {
	s.mu.Lock()
	if n > len(s.syms) {
		grown := make(map[string]*Symbol, n+len(s.syms))
		for k, v := range s.syms {
			grown[k] = v
		}
		s.syms = grown
		if cap(s.order) < n {
			order := make([]*Symbol, len(s.order), n+len(s.order))
			copy(order, s.order)
			s.order = order
		}
	}
	s.mu.Unlock()
}

// CompletionEvent returns the event fired when the scope's table is
// complete.
func (s *Scope) CompletionEvent() *event.Event { return s.completion }

// Complete marks the scope's symbol table complete and fires its
// completion event, waking every DKY-blocked searcher.  Any symbols
// still queued behind fixups are published first (the owner must have
// resolved all fixups).  ctx stamps the completion for the trace.
func (s *Scope) Complete(ctx *ctrace.TaskCtx) {
	s.mu.Lock()
	if s.fixups != 0 {
		// Defensive: never leave symbols unpublished — erroneous
		// programs must still complete every scope or DKY waiters hang.
		s.fixups = 0
	}
	s.publishQueueLocked(ctx)
	s.complete = true
	var waiters []*event.Event
	for name, sym := range s.syms {
		if sym.placeholder {
			waiters = append(waiters, sym.ready)
			delete(s.syms, name)
		}
	}
	s.sealed.Store(&s.syms)
	s.mu.Unlock()
	// Optimistic handling: traverse the completed table and signal all
	// unsignaled per-symbol events (§2.3.3).
	for _, w := range waiters {
		w.Fire() // vet:allowfire per-symbol micro-event; only the completion event is traced
	}
	ctx.FireEvent(s.completion)
}

// Completed reports whether the scope's table is complete.
func (s *Scope) Completed() bool {
	if s.sealed.Load() != nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.complete
}

// completionID returns (allocating if needed) the trace event ID of the
// scope's completion event, as numbered by rec.
func (s *Scope) completionID(rec *ctrace.Recorder) ctrace.EventID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.complID == 0 || s.complRec != rec {
		s.complID = rec.EventIDOf(s.completion)
		s.complRec = rec
	}
	return s.complID
}

// Insert publishes sym in s, or queues it while forward-reference
// fixups are outstanding.  It reports a diagnostic and returns false on
// redeclaration (including redeclaration of a pervasive builtin name,
// which Modula-2+ forbids — the property §2.2's builtin-search shortcut
// relies on).  Only the scope's owning task may call Insert.
func (s *Scope) Insert(ctx *ctrace.TaskCtx, report func(pos token.Pos, format string, args ...any), sym *Symbol) bool {
	if s.Kind != BuiltinScope {
		if b := lookupBuiltin(sym.Name); b != nil {
			report(sym.Pos, "cannot redeclare builtin %s", sym.Name)
			return false
		}
	}
	ctx.Add(ctrace.CostInsert)
	s.mu.Lock()
	if prev, ok := s.syms[sym.Name]; ok && !prev.placeholder {
		s.mu.Unlock()
		report(sym.Pos, "%s redeclared in %s %s", sym.Name, s.Kind, s.Name)
		return false
	}
	for _, q := range s.queue {
		if q.Name == sym.Name {
			s.mu.Unlock()
			report(sym.Pos, "%s redeclared in %s %s", sym.Name, s.Kind, s.Name)
			return false
		}
	}
	if s.fixups > 0 {
		s.queue = append(s.queue, sym)
		s.mu.Unlock()
		return true
	}
	fired := s.publishLocked(ctx, sym)
	s.mu.Unlock()
	if fired != nil {
		fired.Fire() // vet:allowfire per-symbol micro-event; only the completion event is traced
	}
	return true
}

// publishLocked makes sym visible, returning the placeholder event to
// fire (outside the lock), if any.
func (s *Scope) publishLocked(ctx *ctrace.TaskCtx, sym *Symbol) *event.Event {
	var fire *event.Event
	if prev, ok := s.syms[sym.Name]; ok && prev.placeholder {
		fire = prev.ready
	}
	sym.Insert = ctx.Stamp()
	s.syms[sym.Name] = sym
	s.order = append(s.order, sym)
	return fire
}

func (s *Scope) publishQueueLocked(ctx *ctrace.TaskCtx) {
	var fires []*event.Event
	for _, sym := range s.queue {
		if f := s.publishLocked(ctx, sym); f != nil {
			fires = append(fires, f)
		}
	}
	s.queue = nil
	for _, f := range fires {
		f.Fire() // vet:allowfire per-symbol micro-event; only the completion event is traced
	}
}

// DeferFixup notes an outstanding forward-reference fixup (e.g. POINTER
// TO T with T not yet declared).  While any fixup is outstanding, newly
// inserted symbols stay unpublished, so other tasks can never observe a
// type object that is still going to be patched.  Owner task only.
func (s *Scope) DeferFixup() {
	s.mu.Lock()
	s.fixups++
	s.mu.Unlock()
}

// ResolveFixup retires one fixup; when the last one drains, queued
// symbols are published in declaration order.  Owner task only.
func (s *Scope) ResolveFixup(ctx *ctrace.TaskCtx) {
	s.mu.Lock()
	s.fixups--
	if s.fixups == 0 {
		s.publishQueueLocked(ctx)
	}
	s.mu.Unlock()
}

// probe searches the scope's published symbols.  It reports the
// completion state observed atomically with the search.  Placeholders
// are invisible to probes.  Sealed scopes (the hot path: every probe of
// an imported interface or a finished outer scope) answer from the
// atomically-published map without taking the mutex.
func (s *Scope) probe(name string) (sym *Symbol, complete bool) {
	if m := s.sealed.Load(); m != nil {
		return (*m)[name], true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sym = s.syms[name]
	if sym != nil && sym.placeholder {
		sym = nil
	}
	return sym, s.complete
}

// probeOwner additionally sees queued (not yet published) symbols; it
// serves self-scope searches by the scope's owning task, which must see
// its own declarations regardless of publication state.
func (s *Scope) probeOwner(name string) (sym *Symbol, complete bool) {
	if m := s.sealed.Load(); m != nil {
		// The fixup queue is empty once the scope seals.
		return (*m)[name], true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sym = s.syms[name]
	if sym != nil && sym.placeholder {
		sym = nil
	}
	if sym == nil {
		for _, q := range s.queue {
			if q.Name == name {
				sym = q
				break
			}
		}
	}
	return sym, s.complete
}

// OwnerProbe returns the named symbol as seen by the scope's owning
// task (published or still queued behind fixups), or nil.  It never
// blocks; the declaration analyzer uses it to resolve forward
// references with self-scope priority.
func (s *Scope) OwnerProbe(name string) *Symbol {
	sym, _ := s.probeOwner(name)
	return sym
}

// Probe returns the named published symbol, or nil.  It never blocks,
// never installs a placeholder and never counts as a DKY lookup; the
// declaration analyzer's shadow check uses it to consult an enclosing
// module scope without disturbing the Table 2 statistics.
func (s *Scope) Probe(name string) *Symbol {
	sym, _ := s.probe(name)
	return sym
}

// probeOrPlaceholder implements the Optimistic probe: if the name is
// absent from an incomplete table, a placeholder with a fresh per-symbol
// event is installed (or an existing one reused) and returned for the
// caller to wait on.
func (s *Scope) probeOrPlaceholder(name string) (sym *Symbol, complete bool, wait *event.Event) {
	if m := s.sealed.Load(); m != nil {
		return (*m)[name], true, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.syms[name]
	switch {
	case cur == nil:
		if s.complete {
			return nil, true, nil
		}
		ph := &Symbol{Name: name, placeholder: true, ready: event.New()}
		s.syms[name] = ph
		return nil, false, ph.ready
	case cur.placeholder:
		return nil, s.complete, cur.ready
	default:
		return cur, s.complete, nil
	}
}

// Symbols returns the published symbols in publication order.  Intended
// for listings and tests after the scope completes.
func (s *Scope) Symbols() []*Symbol {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Symbol, 0, len(s.order))
	out = append(out, s.order...)
	return out
}

// Len returns the number of published symbols.
func (s *Scope) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}
