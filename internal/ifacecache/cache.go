// Package ifacecache implements a shared, content-hash-keyed cache of
// completed definition-module compilations with single-flight
// deduplication.
//
// The paper's compiler re-analyzes every directly or indirectly
// imported definition module on every compilation.  Batch workloads
// (the benchmark suite, differential tests, anything CompileBatch-like)
// import the same layered interfaces dozens of times, so most of their
// wall clock is identical interface work redone.  This cache keys each
// definition module by the combined content hash of its transitive
// import closure and stores the *result* of compiling it: the sealed
// symtab.Scope, its storage-area assignment, its direct imports and
// the deterministic work-unit cost of having compiled it.
//
// Concurrency follows the compiler's own event discipline: the first
// compilation to request an uncached interface becomes its leader and
// compiles it exactly once; concurrent requesters park on the entry's
// completion event (Supervisor tasks use an external handled wait, so
// worker slots are released) and re-acquire when it fires.  A leader
// that cannot publish — diagnostics against the file, a load failure,
// a deadlock-poisoned compilation — fails the entry, waking waiters so
// the next requester takes over leadership.
//
// Correctness transparency: an entry is published only when the
// interface compiled cleanly, and installation of a cache hit is
// abandoned if any closure member conflicts with a scope the session
// already has — type compatibility is pointer identity, so a session
// must reference exactly one Scope object per interface.  In traces, a
// cache hit appears as a zero-spawn, pre-fired interface scope (see
// ctrace.NotePrefired), so the simulator models cold and warm
// compilations from the same machinery.
package ifacecache

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/event"
	"m2cc/internal/impscan"
	"m2cc/internal/lexer"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
)

// State is the outcome of an Acquire.
type State uint8

const (
	// Hit: the entry is ready; install its closure and use its scope.
	Hit State = iota
	// Lead: the caller is now the entry's leader and must compile the
	// interface, then call Publish (on success) or Fail.
	Lead
	// Wait: another compilation is leading; park on the returned event
	// and re-Acquire when it fires.
	Wait
	// Bypass: the interface is uncacheable (load failure or an import
	// cycle in its closure); compile it without cache participation.
	Bypass
)

func (s State) String() string {
	switch s {
	case Hit:
		return "hit"
	case Lead:
		return "lead"
	case Wait:
		return "wait"
	default:
		return "bypass"
	}
}

type entryState uint8

const (
	stateLeading entryState = iota // leader compiling
	stateSealing                   // published, waiting for deps to seal
	stateReady                     // installable
	stateFailed                    // not publishable this round; next Acquire re-leads
)

type key struct {
	name string
	hash source.Hash // combined hash of the module's transitive .def closure
}

// Dep names one direct import of a published interface together with
// the Scope object the publication's symbols actually reference.  The
// entry seals only if the dep entry becomes ready with that same scope
// — otherwise the publication would mix scope generations and break
// pointer-identity type compatibility for future installs.
type Dep struct {
	Ent   *Entry
	Scope *symtab.Scope
}

// Entry is one cached (or in-flight) definition-module compilation.
type Entry struct {
	cache *Cache
	name  string
	key   key

	mu        sync.Mutex // guards: state, ready, and the install payload below
	state     entryState
	ready     *event.Event // fired when the entry becomes ready or failed
	scope     *symtab.Scope
	areaName  string
	areaSlots int32
	imports   []string
	deps      []Dep
	cost      float64
	depsLeft  int

	elem *list.Element // guards: under Cache.mu — LRU position; nil once evicted
}

// Name returns the definition module's name.
func (e *Entry) Name() string { return e.name }

// Scope returns the sealed interface scope (ready entries only).
func (e *Entry) Scope() *symtab.Scope {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.scope
}

// AreaName returns the globals-area label ("M.def") of the interface.
func (e *Entry) AreaName() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.areaName
}

// AreaSlots returns the number of storage slots the interface's
// module-level variables occupy.
func (e *Entry) AreaSlots() int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.areaSlots
}

// Imports returns the interface's direct imports (deduplicated, in
// first-mention order).
func (e *Entry) Imports() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.imports
}

// Cost returns the deterministic work-unit cost of the interface's
// def-stream parse/analysis, as measured by the publishing leader.
func (e *Entry) Cost() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cost
}

// Ready reports whether the entry is installable.
func (e *Entry) Ready() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state == stateReady
}

// Closure returns the entry and its transitive deps, dependencies
// first, deduplicated.  Valid once the entry is ready (every dep of a
// ready entry is ready).
func (e *Entry) Closure() []*Entry {
	seen := make(map[*Entry]bool)
	var out []*Entry
	var walk func(*Entry)
	walk = func(x *Entry) {
		if seen[x] {
			return
		}
		seen[x] = true
		x.mu.Lock()
		deps := x.deps
		x.mu.Unlock()
		for _, d := range deps {
			walk(d.Ent)
		}
		out = append(out, x)
	}
	walk(e)
	return out
}

// Publish stores the leader's completed compilation of the interface
// and begins sealing: the entry becomes ready as soon as every direct
// import's entry is ready with the scope this publication references.
// cost is the def stream's deterministic work-unit total; imports are
// the direct imports in first-mention order, deduplicated.
func (e *Entry) Publish(scope *symtab.Scope, areaName string, areaSlots int32,
	imports []string, deps []Dep, cost float64) {

	e.mu.Lock()
	if e.state != stateLeading {
		e.mu.Unlock()
		return
	}
	e.state = stateSealing
	e.scope = scope
	e.areaName = areaName
	e.areaSlots = areaSlots
	e.imports = imports
	e.deps = deps
	e.cost = cost
	e.depsLeft = len(deps)
	left := e.depsLeft
	e.mu.Unlock()

	if left == 0 {
		e.seal()
		return
	}
	for _, d := range deps {
		e.watchDep(d)
	}
}

// Fail marks the entry unpublishable this round and wakes waiters; the
// next Acquire for the same key becomes the new leader.  Ready entries
// never fail.
func (e *Entry) Fail() {
	e.mu.Lock()
	if e.state == stateReady || e.state == stateFailed {
		e.mu.Unlock()
		return
	}
	e.state = stateFailed
	ev := e.ready
	e.mu.Unlock()
	ev.Fire() // vet:allowfire cross-compilation cache event; no TaskCtx owns it
}

func (e *Entry) seal() {
	e.mu.Lock()
	if e.state != stateSealing {
		e.mu.Unlock()
		return
	}
	e.state = stateReady
	ev := e.ready
	e.mu.Unlock()
	ev.Fire() // vet:allowfire cross-compilation cache event; no TaskCtx owns it
}

// watchDep drives one dep toward resolution.  A dep entry can cycle
// through failed → re-led rounds; each round swaps in a fresh ready
// event, so the watcher re-examines the dep's state after every fire
// and only counts it done when it is ready *with the expected scope*.
func (e *Entry) watchDep(d Dep) {
	d.Ent.mu.Lock()
	st := d.Ent.state
	sc := d.Ent.scope
	ev := d.Ent.ready
	d.Ent.mu.Unlock()
	switch st {
	case stateReady:
		if sc != d.Scope {
			// The dep was republished from a different compilation's
			// scope object; this publication's symbols reference the
			// old one, so installing it would split type identity.
			e.Fail()
			return
		}
		e.depDone()
	case stateFailed:
		e.Fail()
	default:
		ev.Subscribe(func() { e.watchDep(d) })
	}
}

func (e *Entry) depDone() {
	e.mu.Lock()
	if e.state != stateSealing {
		e.mu.Unlock()
		return
	}
	e.depsLeft--
	done := e.depsLeft == 0
	e.mu.Unlock()
	if done {
		e.seal()
	}
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits      int64 // Acquire found a ready entry
	Misses    int64 // Acquire became leader (first compile of this content)
	Waits     int64 // Acquire parked behind another compilation's leader
	Bypasses  int64 // uncacheable requests (load failure / import cycle)
	Abandoned int64 // waiters that timed out on a wedged leader (NoteAbandoned)
	Evictions int64 // entries dropped by the LRU cap (SetLimit)
}

// Sub returns s - prev, the cache traffic between two snapshots; the
// observability layer uses it to attribute counters to one compilation
// of a shared cache.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Waits:     s.Waits - prev.Waits,
		Bypasses:  s.Bypasses - prev.Bypasses,
		Abandoned: s.Abandoned - prev.Abandoned,
		Evictions: s.Evictions - prev.Evictions,
	}
}

// Cache is a concurrency-safe interface-compilation cache shared by
// any number of concurrent compilations.  The zero value is not
// usable; call New.
type Cache struct {
	mu       sync.Mutex // guards: entries, lru, limit, scans, closures, stats
	entries  map[key]*Entry
	lru      *list.List // MRU at front; element values are *Entry
	limit    int        // max entries; 0 = unbounded
	scans    map[source.Hash][]string // content hash → direct import names
	closures map[string]*closureMemo  // module name → validated closure-hash memo
	stats    Stats
}

// New returns an empty, unbounded cache (see SetLimit).
func New() *Cache {
	return &Cache{
		entries:  make(map[key]*Entry),
		lru:      list.New(),
		scans:    make(map[source.Hash][]string),
		closures: make(map[string]*closureMemo),
	}
}

// SetLimit caps the cache at n entries (0 = unbounded).  When an
// insert pushes the cache past the cap, the least-recently-used
// evictable entries are dropped.  Entries that are still leading or
// sealing have live waiters parked on their ready event and are never
// evicted — the cache may temporarily exceed the cap while such
// entries exist.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	c.limit = n
	c.evictLocked()
	c.mu.Unlock()
}

// evictLocked drops ready/failed entries from the LRU tail until the
// cache is within its limit.  Caller holds c.mu.
func (c *Cache) evictLocked() {
	if c.limit <= 0 {
		return
	}
	el := c.lru.Back()
	for el != nil && len(c.entries) > c.limit {
		prev := el.Prev()
		e := el.Value.(*Entry)
		e.mu.Lock()
		st := e.state
		e.mu.Unlock()
		if st == stateReady || st == stateFailed {
			delete(c.entries, e.key)
			c.lru.Remove(el)
			e.elem = nil
			c.stats.Evictions++
		}
		el = prev
	}
}

// Stats returns a snapshot of the hit/miss/wait/bypass counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// NoteAbandoned counts one waiter giving up on a wedged foreign leader
// at its stall deadline (the compiler then compiles the interface
// itself, outside the cache).  The cache cannot see these timeouts —
// they happen in the waiter — so the compiler reports them.
func (c *Cache) NoteAbandoned() {
	c.mu.Lock()
	c.stats.Abandoned++
	c.mu.Unlock()
}

// Len returns the number of entries (any state).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Acquire resolves the named definition module against the cache:
//
//	Hit    → ent is ready; install its closure.
//	Lead   → the caller must compile the interface and Publish or Fail ent.
//	Wait   → park on ev, then re-Acquire.
//	Bypass → compile without the cache (ent and ev are nil).
//
// The key is the combined content hash of the module's transitive .def
// import closure, so any textual change to the module or anything it
// imports yields a distinct entry.
func (c *Cache) Acquire(name string, loader source.Loader) (ent *Entry, ev *event.Event, st State) {
	k, ok := c.closureKey(name, loader)
	if !ok {
		c.mu.Lock()
		c.stats.Bypasses++
		c.mu.Unlock()
		return nil, nil, Bypass
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[k]
	if e == nil {
		e = &Entry{cache: c, name: name, key: k, state: stateLeading, ready: event.New()}
		c.entries[k] = e
		e.elem = c.lru.PushFront(e)
		c.stats.Misses++
		c.evictLocked()
		return e, nil, Lead
	}
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case stateReady:
		c.stats.Hits++
		return e, nil, Hit
	case stateFailed:
		// Take over leadership for a fresh round with a fresh event.
		e.state = stateLeading
		e.ready = event.New()
		e.scope = nil
		e.areaName = ""
		e.areaSlots = 0
		e.imports = nil
		e.deps = nil
		e.cost = 0
		e.depsLeft = 0
		c.stats.Misses++
		return e, nil, Lead
	default: // leading or sealing
		c.stats.Waits++
		return e, e.ready, Wait
	}
}

// closureMemo records one module's validated transitive closure hash:
// the content hash of the module's own .def, the name and content hash
// of every other closure member, and the combined closure hash those
// contents produced.  A later request revalidates by re-hashing each
// member's current text — if every content hash matches, the import
// structure is necessarily unchanged (imports are a function of
// content), so the stored closure hash is still correct.
type closureMemo struct {
	own  source.Hash
	deps []depHash
	hash source.Hash
}

type depHash struct {
	name string
	hash source.Hash
}

// closureScratch is the per-recomputation working state, pooled so a
// warm batch does not allocate two maps per Acquire (the closureKey
// hot path the streamcache leans on).
type closureScratch struct {
	memo     map[string]source.Hash // name → closure hash (this walk)
	content  map[string]source.Hash // name → content hash (this walk)
	visiting map[string]bool
	order    []string // completion order; the root is last
}

var scratchPool = sync.Pool{New: func() any {
	return &closureScratch{
		memo:     make(map[string]source.Hash),
		content:  make(map[string]source.Hash),
		visiting: make(map[string]bool),
	}
}}

func (s *closureScratch) reset() {
	clear(s.memo)
	clear(s.content)
	clear(s.visiting)
	s.order = s.order[:0]
}

// closureKey computes the cache key for name: a hash combining the
// content of name.def and, recursively, of every .def it imports.  A
// load failure or an import cycle anywhere in the closure makes the
// module uncacheable (ok=false) — the real compilation will produce
// the diagnostics.
func (c *Cache) closureKey(name string, loader source.Loader) (key, bool) {
	h, ok := c.rootClosureHash(name, loader)
	if !ok {
		return key{}, false
	}
	return key{name: name, hash: h}, true
}

// ClosureHash combines the transitive .def closure hashes of roots
// into one content hash, in root order.  The stream cache keys every
// procedure stream with it: any textual change to any interface the
// compilation can see yields a different hash.  ok is false when any
// root is unloadable or its closure contains an import cycle — such a
// compilation is uncacheable at stream granularity too.
func (c *Cache) ClosureHash(loader source.Loader, roots []string) (source.Hash, bool) {
	hasher := sha256.New()
	for _, name := range roots {
		h, ok := c.rootClosureHash(name, loader)
		if !ok {
			return source.Hash{}, false
		}
		hasher.Write([]byte{0})
		hasher.Write([]byte(name))
		hasher.Write([]byte{0})
		hasher.Write(h[:])
	}
	var out source.Hash
	hasher.Sum(out[:0])
	return out, true
}

// rootClosureHash returns the transitive closure hash of name,
// consulting (and maintaining) the per-name memo: a memo hit needs one
// Load+HashText per closure member and no lexing, recursion, or map
// allocation; a miss or a stale memo falls back to the full walk.
func (c *Cache) rootClosureHash(name string, loader source.Loader) (source.Hash, bool) {
	text, err := loader.Load(name, source.Def)
	if err != nil {
		return source.Hash{}, false
	}
	own := source.HashText(text)

	c.mu.Lock()
	m := c.closures[name]
	c.mu.Unlock()
	if m != nil && m.own == own && c.memoValid(m, loader) {
		return m.hash, true
	}

	s := scratchPool.Get().(*closureScratch)
	s.reset()
	h, ok := c.closureHash(name, loader, s)
	if ok {
		// Record a fresh memo for the root: every visited member except
		// the root itself becomes a validation dep.
		nm := &closureMemo{own: own, hash: h}
		for _, dep := range s.order {
			if dep == name {
				continue
			}
			nm.deps = append(nm.deps, depHash{name: dep, hash: s.content[dep]})
		}
		c.mu.Lock()
		c.closures[name] = nm
		c.mu.Unlock()
	}
	scratchPool.Put(s)
	if !ok {
		return source.Hash{}, false
	}
	return h, true
}

// memoValid reports whether every recorded closure member still loads
// to the recorded content.
func (c *Cache) memoValid(m *closureMemo, loader source.Loader) bool {
	for _, d := range m.deps {
		text, err := loader.Load(d.name, source.Def)
		if err != nil || source.HashText(text) != d.hash {
			return false
		}
	}
	return true
}

func (c *Cache) closureHash(name string, loader source.Loader, s *closureScratch) (source.Hash, bool) {
	if h, ok := s.memo[name]; ok {
		return h, true
	}
	if s.visiting[name] {
		return source.Hash{}, false // import cycle
	}
	s.visiting[name] = true
	defer delete(s.visiting, name)

	text, err := loader.Load(name, source.Def)
	if err != nil {
		return source.Hash{}, false
	}
	content := source.HashText(text)
	imports := c.scanImports(name, text, content)

	hasher := sha256.New()
	hasher.Write(content[:])
	for _, imp := range imports {
		sub, ok := c.closureHash(imp, loader, s)
		if !ok {
			return source.Hash{}, false
		}
		hasher.Write([]byte{0})
		hasher.Write([]byte(imp))
		hasher.Write([]byte{0})
		hasher.Write(sub[:])
	}
	var combined source.Hash
	hasher.Sum(combined[:0])
	s.memo[name] = combined
	s.content[name] = content
	s.order = append(s.order, name)
	return combined, true
}

// scanImports returns the direct imports of a .def's text, memoized by
// content hash so each distinct interface text is lexed once per cache
// lifetime rather than once per compilation.
func (c *Cache) scanImports(name, text string, content source.Hash) []string {
	c.mu.Lock()
	if imps, ok := c.scans[content]; ok {
		c.mu.Unlock()
		return imps
	}
	c.mu.Unlock()

	// Throwaway context and bag: the scan only needs the token kinds;
	// the real compilation re-lexes with proper diagnostics.
	f := &source.File{Name: name, Kind: source.Def, Text: text}
	toks := lexer.ScanAll(f, &ctrace.TaskCtx{}, diag.NewBag(1))
	imps := impscan.Names(toks)

	c.mu.Lock()
	c.scans[content] = imps
	c.mu.Unlock()
	return imps
}
