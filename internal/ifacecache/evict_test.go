package ifacecache_test

import (
	"fmt"
	"testing"

	"m2cc/internal/ifacecache"
	"m2cc/internal/source"
)

// chainLoader builds K defs where chain0 imports chain1 imports ... —
// a deep closure so closureKey work is measurable.
func chainLoader(k int) *source.MapLoader {
	l := source.NewMapLoader()
	for i := 0; i < k; i++ {
		var text string
		if i == k-1 {
			text = fmt.Sprintf("DEFINITION MODULE chain%d;\nCONST base = 1;\nEND chain%d.\n", i, i)
		} else {
			text = fmt.Sprintf("DEFINITION MODULE chain%d;\nFROM chain%d IMPORT base;\nEND chain%d.\n", i, i+1, i)
		}
		l.Add(fmt.Sprintf("chain%d", i), source.Def, text)
	}
	return l
}

func TestLRUEviction(t *testing.T) {
	loader := loaderWith(map[string]string{
		"A": "DEFINITION MODULE A;\nCONST a = 1;\nEND A.\n",
		"B": "DEFINITION MODULE B;\nCONST b = 1;\nEND B.\n",
		"C": "DEFINITION MODULE C;\nCONST c = 1;\nEND C.\n",
	})
	c := ifacecache.New()
	c.SetLimit(2)

	for _, name := range []string{"A", "B"} {
		ent, _, st := c.Acquire(name, loader)
		if st != ifacecache.Lead {
			t.Fatalf("acquire %s: %v, want Lead", name, st)
		}
		ent.Publish(newScope(name), name+".def", 0, nil, nil, 1)
	}
	// Touch A so B is the LRU entry.
	if _, _, st := c.Acquire("A", loader); st != ifacecache.Hit {
		t.Fatalf("warm acquire A: %v, want Hit", st)
	}

	// Inserting C must evict B (the least recently used ready entry).
	entC, _, st := c.Acquire("C", loader)
	if st != ifacecache.Lead {
		t.Fatalf("acquire C: %v, want Lead", st)
	}
	entC.Publish(newScope("C"), "C.def", 0, nil, nil, 1)

	if n := c.Len(); n != 2 {
		t.Fatalf("len after eviction: %d, want 2", n)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions: %d, want 1", ev)
	}
	if _, _, st := c.Acquire("A", loader); st != ifacecache.Hit {
		t.Fatalf("A after eviction: %v, want Hit (A was MRU)", st)
	}
	if _, _, st := c.Acquire("B", loader); st != ifacecache.Lead {
		t.Fatalf("B after eviction: %v, want Lead (B was evicted)", st)
	}
}

func TestLRUNeverEvictsLiveLeader(t *testing.T) {
	loader := loaderWith(map[string]string{
		"A": "DEFINITION MODULE A;\nCONST a = 1;\nEND A.\n",
		"B": "DEFINITION MODULE B;\nCONST b = 1;\nEND B.\n",
	})
	c := ifacecache.New()
	c.SetLimit(1)

	// A is still leading (unpublished) — it has, conceptually, live
	// waiters and must survive the cap.
	entA, _, st := c.Acquire("A", loader)
	if st != ifacecache.Lead {
		t.Fatalf("acquire A: %v, want Lead", st)
	}
	entB, _, st := c.Acquire("B", loader)
	if st != ifacecache.Lead {
		t.Fatalf("acquire B: %v, want Lead", st)
	}
	// Over cap, but nothing evictable: both entries leading.
	if n := c.Len(); n != 2 {
		t.Fatalf("len with two leaders: %d, want 2 (no eviction of leaders)", n)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("evictions with live leaders: %d, want 0", ev)
	}

	// Once published, the next insert pressure can evict.
	entA.Publish(newScope("A"), "A.def", 0, nil, nil, 1)
	entB.Publish(newScope("B"), "B.def", 0, nil, nil, 1)
	c.SetLimit(1)
	if n := c.Len(); n != 1 {
		t.Fatalf("len after publish + re-cap: %d, want 1", n)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions after publish + re-cap: %d, want 1", ev)
	}
}

func TestClosureHash(t *testing.T) {
	loader := chainLoader(3)
	c := ifacecache.New()

	h1, ok := c.ClosureHash(loader, []string{"chain0"})
	if !ok {
		t.Fatal("closure hash of loadable chain must succeed")
	}
	h2, ok := c.ClosureHash(loader, []string{"chain0"})
	if !ok || h2 != h1 {
		t.Fatalf("closure hash not stable: %x vs %x", h1, h2)
	}

	// Editing a leaf changes every root that can reach it.
	loader.Add("chain2", source.Def,
		"DEFINITION MODULE chain2;\nCONST base = 2;\nEND chain2.\n")
	h3, ok := c.ClosureHash(loader, []string{"chain0"})
	if !ok {
		t.Fatal("closure hash after edit must succeed")
	}
	if h3 == h1 {
		t.Fatal("leaf edit must change the root closure hash")
	}

	// Root order matters (the key is positional, like import order).
	ha, _ := c.ClosureHash(loader, []string{"chain1", "chain2"})
	hb, _ := c.ClosureHash(loader, []string{"chain2", "chain1"})
	if ha == hb {
		t.Fatal("closure hash must depend on root order")
	}

	// Unloadable root → uncacheable.
	if _, ok := c.ClosureHash(loader, []string{"nosuch"}); ok {
		t.Fatal("closure hash of unloadable root must fail")
	}

	// Import cycle → uncacheable.
	cyc := source.NewMapLoader()
	cyc.Add("X", source.Def, "DEFINITION MODULE X;\nFROM Y IMPORT y;\nEND X.\n")
	cyc.Add("Y", source.Def, "DEFINITION MODULE Y;\nFROM X IMPORT x;\nEND Y.\n")
	if _, ok := c.ClosureHash(cyc, []string{"X"}); ok {
		t.Fatal("closure hash of cyclic closure must fail")
	}
}

// BenchmarkClosureHashWarm measures the memoized steady state: the
// same root re-keyed against unchanged text, as a warm batch or the
// stream cache's verdict step does.  Compare with
// BenchmarkClosureHashCold (a fresh cache per iteration) to see the
// memoization win.
func BenchmarkClosureHashWarm(b *testing.B) {
	loader := chainLoader(16)
	c := ifacecache.New()
	if _, ok := c.ClosureHash(loader, []string{"chain0"}); !ok {
		b.Fatal("prime failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.ClosureHash(loader, []string{"chain0"}); !ok {
			b.Fatal("warm closure hash failed")
		}
	}
}

func BenchmarkClosureHashCold(b *testing.B) {
	loader := chainLoader(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ifacecache.New()
		if _, ok := c.ClosureHash(loader, []string{"chain0"}); !ok {
			b.Fatal("cold closure hash failed")
		}
	}
}
