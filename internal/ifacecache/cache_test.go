package ifacecache_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"m2cc/internal/ifacecache"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
)

const (
	defA  = "DEFINITION MODULE A;\nCONST one = 1;\nEND A.\n"
	defA2 = "DEFINITION MODULE A;\nCONST one = 1;\nCONST extra = 2;\nEND A.\n"
	defB  = "DEFINITION MODULE B;\nFROM A IMPORT one;\nCONST two = one + 1;\nEND B.\n"
)

func loaderWith(files map[string]string) *source.MapLoader {
	l := source.NewMapLoader()
	for name, text := range files {
		l.Add(name, source.Def, text)
	}
	return l
}

func newScope(name string) *symtab.Scope {
	tab := symtab.NewTable(symtab.Skeptical, nil, nil)
	return tab.NewScope(symtab.DefScope, name, nil, 0)
}

func TestLeadPublishHit(t *testing.T) {
	loader := loaderWith(map[string]string{"A": defA})
	c := ifacecache.New()

	ent, ev, st := c.Acquire("A", loader)
	if st != ifacecache.Lead || ent == nil || ev != nil {
		t.Fatalf("first acquire: got (%v, %v, %v), want Lead", ent, ev, st)
	}
	if ent.Ready() {
		t.Fatal("entry ready before publish")
	}
	sc := newScope("A")
	ent.Publish(sc, "A.def", 3, nil, nil, 42)
	if !ent.Ready() {
		t.Fatal("entry with no deps must be ready after publish")
	}

	ent2, _, st2 := c.Acquire("A", loader)
	if st2 != ifacecache.Hit || ent2 != ent {
		t.Fatalf("second acquire: got (%p, %v), want hit on %p", ent2, st2, ent)
	}
	if ent2.Scope() != sc || ent2.AreaName() != "A.def" || ent2.AreaSlots() != 3 || ent2.Cost() != 42 {
		t.Fatalf("payload mismatch: scope=%p area=%q slots=%d cost=%v",
			ent2.Scope(), ent2.AreaName(), ent2.AreaSlots(), ent2.Cost())
	}
	if cl := ent2.Closure(); len(cl) != 1 || cl[0] != ent2 {
		t.Fatalf("closure of dep-free entry: %v", cl)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Waits != 0 || s.Bypasses != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSingleFlight is the core dedup property: many goroutines racing
// to acquire the same uncached interface produce exactly one leader;
// everyone else waits and ends up with the leader's scope.  Run under
// -race.
func TestSingleFlight(t *testing.T) {
	loader := loaderWith(map[string]string{"A": defA})
	c := ifacecache.New()
	sc := newScope("A")

	const goroutines = 32
	var leads atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ent, ev, st := c.Acquire("A", loader)
				switch st {
				case ifacecache.Lead:
					leads.Add(1)
					// Hold leadership long enough for others to pile up.
					time.Sleep(2 * time.Millisecond)
					ent.Publish(sc, "A.def", 0, nil, nil, 1)
					return
				case ifacecache.Wait:
					ev.Wait()
				case ifacecache.Hit:
					if ent.Scope() != sc {
						t.Error("hit returned a different scope")
					}
					return
				default:
					t.Errorf("unexpected state %v", st)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := leads.Load(); n != 1 {
		t.Fatalf("%d leaders, want exactly 1", n)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits+s.Waits < goroutines-1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFailedLeaderRetried(t *testing.T) {
	loader := loaderWith(map[string]string{"A": defA})
	c := ifacecache.New()

	ent, _, st := c.Acquire("A", loader)
	if st != ifacecache.Lead {
		t.Fatalf("state %v, want Lead", st)
	}

	// A waiter parks behind the leader...
	_, ev, st2 := c.Acquire("A", loader)
	if st2 != ifacecache.Wait {
		t.Fatalf("state %v, want Wait", st2)
	}
	woke := make(chan struct{})
	go func() { ev.Wait(); close(woke) }()

	// ...the leader fails; the waiter wakes and re-leads.
	ent.Fail()
	<-woke
	ent3, _, st3 := c.Acquire("A", loader)
	if st3 != ifacecache.Lead || ent3 != ent {
		t.Fatalf("after fail: got (%p, %v), want fresh lead on %p", ent3, st3, ent)
	}
	sc := newScope("A")
	ent3.Publish(sc, "A.def", 0, nil, nil, 1)
	if _, _, st4 := c.Acquire("A", loader); st4 != ifacecache.Hit {
		t.Fatalf("state %v, want Hit after republish", st4)
	}
}

func TestContentChangeInvalidates(t *testing.T) {
	loader := loaderWith(map[string]string{"A": defA})
	c := ifacecache.New()

	ent, _, _ := c.Acquire("A", loader)
	scOld := newScope("A")
	ent.Publish(scOld, "A.def", 0, nil, nil, 1)

	// Editing A.def must miss; the old entry stays for the old text.
	loader.Add("A", source.Def, defA2)
	ent2, _, st := c.Acquire("A", loader)
	if st != ifacecache.Lead || ent2 == ent {
		t.Fatalf("after edit: state %v (same entry: %v), want fresh Lead", st, ent2 == ent)
	}
	scNew := newScope("A")
	ent2.Publish(scNew, "A.def", 0, nil, nil, 1)
	if c.Len() != 2 {
		t.Fatalf("cache has %d entries, want 2", c.Len())
	}

	// Reverting the text hits the original entry again.
	loader.Add("A", source.Def, defA)
	ent3, _, st3 := c.Acquire("A", loader)
	if st3 != ifacecache.Hit || ent3 != ent || ent3.Scope() != scOld {
		t.Fatalf("after revert: got (%p, %v), want hit on original", ent3, st3)
	}
}

// TestImportChangeInvalidatesDependents: the key is the hash of the
// whole transitive closure, so editing A.def invalidates B (which
// imports A) even though B's own text is unchanged.
func TestImportChangeInvalidatesDependents(t *testing.T) {
	loader := loaderWith(map[string]string{"A": defA, "B": defB})
	c := ifacecache.New()

	entA, _, _ := c.Acquire("A", loader)
	scA := newScope("A")
	entA.Publish(scA, "A.def", 0, nil, nil, 1)

	entB, _, _ := c.Acquire("B", loader)
	scB := newScope("B")
	entB.Publish(scB, "B.def", 0, []string{"A"},
		[]ifacecache.Dep{{Ent: entA, Scope: scA}}, 2)
	if !entB.Ready() {
		t.Fatal("B must seal once its dep is ready")
	}
	if cl := entB.Closure(); len(cl) != 2 || cl[0] != entA || cl[1] != entB {
		t.Fatalf("closure must list deps first: %v", cl)
	}

	loader.Add("A", source.Def, defA2)
	if _, _, st := c.Acquire("B", loader); st != ifacecache.Lead {
		t.Fatalf("B after A edit: state %v, want Lead (new closure hash)", st)
	}
	if _, _, st := c.Acquire("A", loader); st != ifacecache.Lead {
		t.Fatalf("A after A edit: state %v, want Lead", st)
	}
}

// TestSealingAwaitsDeps: an entry published before its dependency is
// ready stays un-installable (waiters park) until the dep seals.
func TestSealingAwaitsDeps(t *testing.T) {
	loader := loaderWith(map[string]string{"A": defA, "B": defB})
	c := ifacecache.New()

	entA, _, _ := c.Acquire("A", loader)
	entB, _, _ := c.Acquire("B", loader)
	scA, scB := newScope("A"), newScope("B")

	entB.Publish(scB, "B.def", 0, []string{"A"},
		[]ifacecache.Dep{{Ent: entA, Scope: scA}}, 2)
	if entB.Ready() {
		t.Fatal("B sealed before its dep A was ready")
	}
	if _, _, st := c.Acquire("B", loader); st != ifacecache.Wait {
		t.Fatalf("B while sealing: state %v, want Wait", st)
	}

	entA.Publish(scA, "A.def", 0, nil, nil, 1)
	if !entB.Ready() {
		t.Fatal("B must seal once A publishes")
	}
	if _, _, st := c.Acquire("B", loader); st != ifacecache.Hit {
		t.Fatalf("B after seal: state %v, want Hit", st)
	}
}

// TestDepScopeMismatchFails: if the dep entry becomes ready with a
// *different* scope object than the publication's symbols reference,
// the publication must fail rather than mix scope generations.
func TestDepScopeMismatchFails(t *testing.T) {
	loader := loaderWith(map[string]string{"A": defA, "B": defB})
	c := ifacecache.New()

	entA, _, _ := c.Acquire("A", loader)
	entA.Publish(newScope("A"), "A.def", 0, nil, nil, 1)

	entB, _, _ := c.Acquire("B", loader)
	staleScopeOfA := newScope("A") // not the scope entA published
	entB.Publish(newScope("B"), "B.def", 0, []string{"A"},
		[]ifacecache.Dep{{Ent: entA, Scope: staleScopeOfA}}, 2)
	if entB.Ready() {
		t.Fatal("B sealed against a mismatched dep scope")
	}
	if _, _, st := c.Acquire("B", loader); st != ifacecache.Lead {
		t.Fatalf("B after mismatch: state %v, want Lead (failed entry re-led)", st)
	}
}

func TestCycleBypasses(t *testing.T) {
	loader := loaderWith(map[string]string{
		"A": "DEFINITION MODULE A;\nFROM B IMPORT x;\nCONST y = x;\nEND A.\n",
		"B": "DEFINITION MODULE B;\nFROM A IMPORT y;\nCONST x = y;\nEND B.\n",
	})
	c := ifacecache.New()
	for _, name := range []string{"A", "B"} {
		if ent, ev, st := c.Acquire(name, loader); st != ifacecache.Bypass || ent != nil || ev != nil {
			t.Fatalf("%s: got (%v, %v, %v), want Bypass", name, ent, ev, st)
		}
	}
	if s := c.Stats(); s.Bypasses != 2 || c.Len() != 0 {
		t.Fatalf("stats = %+v, len = %d", s, c.Len())
	}
}

func TestMissingSourceBypasses(t *testing.T) {
	c := ifacecache.New()
	if _, _, st := c.Acquire("Nope", source.NewMapLoader()); st != ifacecache.Bypass {
		t.Fatalf("state %v, want Bypass for missing .def", st)
	}
	// B is loadable but imports a missing module: the whole closure is
	// uncacheable.
	loader := loaderWith(map[string]string{"B": defB})
	if _, _, st := c.Acquire("B", loader); st != ifacecache.Bypass {
		t.Fatalf("state %v, want Bypass for missing transitive import", st)
	}
}
