package seq_test

import (
	"strings"
	"testing"

	"m2cc/internal/seq"
	"m2cc/internal/source"
	"m2cc/internal/vm"
)

// runProgram compiles and links the given modules and runs the result,
// returning its output.
func runProgram(t *testing.T, main string, files map[string]string) string {
	t.Helper()
	loader := source.NewMapLoader()
	for name, text := range files {
		kind := source.Impl
		base := name
		if strings.HasSuffix(name, ".def") {
			kind = source.Def
			base = strings.TrimSuffix(name, ".def")
		} else {
			base = strings.TrimSuffix(name, ".mod")
		}
		loader.Add(base, kind, text)
	}
	prog, diags, err := seq.CompileAndLink(main, loader)
	if err != nil {
		t.Fatalf("compile failed: %v\n%s", err, diags)
	}
	var out strings.Builder
	m := vm.NewMachine(prog, nil, &out)
	if err := m.Run(); err != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

func TestHello(t *testing.T) {
	out := runProgram(t, "Hello", map[string]string{
		"Hello.mod": `
MODULE Hello;
BEGIN
  WriteString("hello, world");
  WriteLn
END Hello.
`})
	if out != "hello, world\n" {
		t.Fatalf("got %q", out)
	}
}

func TestArithmeticAndControl(t *testing.T) {
	out := runProgram(t, "Arith", map[string]string{
		"Arith.mod": `
MODULE Arith;
VAR i, sum: INTEGER;

PROCEDURE Fib(n: INTEGER): INTEGER;
BEGIN
  IF n < 2 THEN RETURN n END;
  RETURN Fib(n-1) + Fib(n-2)
END Fib;

BEGIN
  sum := 0;
  FOR i := 1 TO 10 DO
    sum := sum + i
  END;
  WriteInt(sum, 0); WriteLn;
  WriteInt(Fib(10), 0); WriteLn;
  WriteInt((-7) DIV 2, 0); WriteLn;
  WriteInt((-7) MOD 2, 0); WriteLn;
  i := 3;
  CASE i OF
    1:      WriteString("one")
  | 2, 3:   WriteString("two or three")
  | 4 .. 6: WriteString("mid")
  ELSE      WriteString("big")
  END;
  WriteLn
END Arith.
`})
	want := "55\n55\n-4\n1\ntwo or three\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestRecordsArraysSets(t *testing.T) {
	out := runProgram(t, "Data", map[string]string{
		"Data.mod": `
MODULE Data;
TYPE
  Day = (Mon, Tue, Wed, Thu, Fri, Sat, Sun);
  Days = SET OF Day;
  Point = RECORD x, y: INTEGER END;
  Row = ARRAY [0..4] OF INTEGER;
VAR
  p, q: Point;
  r: Row;
  work: Days;
  i: INTEGER;
  d: Day;
BEGIN
  p.x := 3; p.y := 4;
  q := p;
  WITH q DO
    WriteInt(x + y, 0); WriteLn
  END;
  FOR i := 0 TO 4 DO r[i] := i * i END;
  WriteInt(r[3], 0); WriteLn;
  work := Days{Mon .. Fri};
  work := work - Days{Wed};
  i := 0;
  FOR d := Mon TO Sun DO
    IF d IN work THEN INC(i) END
  END;
  WriteInt(i, 0); WriteLn
END Data.
`})
	want := "7\n9\n4\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestPointersAndNestedProcs(t *testing.T) {
	out := runProgram(t, "List", map[string]string{
		"List.mod": `
MODULE List;
TYPE
  Ptr = POINTER TO Node;
  Node = RECORD val: INTEGER; next: Ptr END;
VAR head: Ptr;

PROCEDURE Push(v: INTEGER);
VAR n: Ptr;
BEGIN
  NEW(n);
  n^.val := v;
  n^.next := head;
  head := n
END Push;

PROCEDURE Sum(): INTEGER;
VAR total: INTEGER;

  PROCEDURE Walk(p: Ptr);
  BEGIN
    IF p # NIL THEN
      total := total + p^.val;
      Walk(p^.next)
    END
  END Walk;

BEGIN
  total := 0;
  Walk(head);
  RETURN total
END Sum;

VAR k: INTEGER;
BEGIN
  head := NIL;
  FOR k := 1 TO 5 DO Push(k * 10) END;
  WriteInt(Sum(), 0); WriteLn
END List.
`})
	if out != "150\n" {
		t.Fatalf("got %q", out)
	}
}

func TestSeparateModules(t *testing.T) {
	out := runProgram(t, "Main", map[string]string{
		"Math.def": `
DEFINITION MODULE Math;
CONST Base = 100;
VAR calls: INTEGER;
PROCEDURE Triple(x: INTEGER): INTEGER;
END Math.
`,
		"Math.mod": `
IMPLEMENTATION MODULE Math;
PROCEDURE Triple(x: INTEGER): INTEGER;
BEGIN
  INC(calls);
  RETURN 3 * x
END Triple;
BEGIN
  calls := 0
END Math.
`,
		"Main.mod": `
MODULE Main;
FROM Math IMPORT Triple;
IMPORT Math;
BEGIN
  WriteInt(Triple(Math.Base) + Math.Triple(1), 0); WriteLn;
  WriteInt(Math.calls, 0); WriteLn
END Main.
`})
	want := "303\n2\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestExceptions(t *testing.T) {
	out := runProgram(t, "Exc", map[string]string{
		"Exc.mod": `
MODULE Exc;
EXCEPTION Overflow, Underflow;
VAR depth: INTEGER;

PROCEDURE Push;
BEGIN
  IF depth >= 2 THEN RAISE Overflow END;
  INC(depth)
END Push;

BEGIN
  depth := 0;
  TRY
    Push; Push; Push;
    WriteString("not reached")
  EXCEPT
    Underflow: WriteString("under")
  | Overflow:  WriteString("over")
  END;
  WriteLn;
  WriteInt(depth, 0); WriteLn
END Exc.
`})
	want := "over\n2\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestOpenArraysAndStrings(t *testing.T) {
	out := runProgram(t, "Str", map[string]string{
		"Str.mod": `
MODULE Str;
VAR buf: ARRAY [0..15] OF CHAR;

PROCEDURE Count(s: ARRAY OF CHAR): INTEGER;
VAR i, n: INTEGER;
BEGIN
  n := 0;
  FOR i := 0 TO INTEGER(HIGH(s)) DO
    IF s[i] # 0C THEN INC(n) END
  END;
  RETURN n
END Count;

BEGIN
  buf := "abc";
  WriteInt(Count(buf), 0); WriteLn;
  WriteInt(Count("hello"), 0); WriteLn;
  WriteString(buf); WriteLn
END Str.
`})
	want := "3\n5\nabc\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestCompileErrors(t *testing.T) {
	loader := source.NewMapLoader()
	loader.Add("Bad", source.Impl, `
MODULE Bad;
VAR x: INTEGER;
BEGIN
  x := y + 1;
  x := "not a number"
END Bad.
`)
	res := seq.Compile("Bad", loader)
	if !res.Failed() {
		t.Fatal("expected compile errors")
	}
	text := res.Diags.String()
	if !strings.Contains(text, "undeclared identifier y") {
		t.Errorf("missing undeclared-identifier error:\n%s", text)
	}
	if !strings.Contains(text, "incompatible assignment") {
		t.Errorf("missing assignment error:\n%s", text)
	}
}

func TestCompileAndLinkRunsWholeProgram(t *testing.T) {
	loader := source.NewMapLoader()
	loader.Add("Lib", source.Def, "DEFINITION MODULE Lib;\nPROCEDURE Three(): INTEGER;\nEND Lib.")
	loader.Add("Lib", source.Impl, `IMPLEMENTATION MODULE Lib;
PROCEDURE Three(): INTEGER;
BEGIN
  RETURN 3
END Three;
END Lib.`)
	loader.Add("Top", source.Impl, `MODULE Top;
IMPORT Lib;
BEGIN
  WriteInt(Lib.Three() * 14, 0); WriteLn
END Top.`)
	prog, diags, err := seq.CompileAndLink("Top", loader)
	if err != nil {
		t.Fatalf("%v\n%s", err, diags)
	}
	var out strings.Builder
	if err := vm.NewMachine(prog, nil, &out).Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestCompileAndLinkPropagatesErrors(t *testing.T) {
	loader := source.NewMapLoader()
	loader.Add("Top", source.Impl, "MODULE Top;\nBEGIN\n  nope := 1\nEND Top.")
	if _, _, err := seq.CompileAndLink("Top", loader); err == nil {
		t.Fatal("errors must propagate")
	}
	if _, _, err := seq.CompileAndLink("Missing", loader); err == nil {
		t.Fatal("missing main must fail")
	}
}

func TestSequentialCyclicImportDiagnosed(t *testing.T) {
	loader := source.NewMapLoader()
	loader.Add("A", source.Def, "DEFINITION MODULE A;\nFROM B IMPORT x;\nCONST y = x;\nEND A.")
	loader.Add("B", source.Def, "DEFINITION MODULE B;\nFROM A IMPORT y;\nCONST x = y;\nEND B.")
	loader.Add("C", source.Impl, "MODULE C;\nFROM A IMPORT y;\nEND C.")
	res := seq.Compile("C", loader)
	if !res.Failed() {
		t.Fatal("cyclic imports must fail")
	}
	if !strings.Contains(res.Diags.String(), "import cycle") {
		t.Fatalf("missing cycle diagnostic:\n%s", res.Diags)
	}
}

func TestModuleNameMustMatchFile(t *testing.T) {
	loader := source.NewMapLoader()
	loader.Add("Wrong", source.Impl, "MODULE Other;\nEND Other.")
	res := seq.Compile("Wrong", loader)
	if !strings.Contains(res.Diags.String(), "does not match") {
		t.Fatalf("missing name-mismatch diagnostic:\n%s", res.Diags)
	}
}
