// Package seq implements the traditional sequential compiler the paper
// evaluates its concurrent compiler against (§4.2).
//
// It shares every phase — lexer, parser, declaration analyzer,
// statement analyzer / code generator — with the concurrent compiler
// and performs the same work in a fixed order: interfaces depth-first,
// then the module's declarations, then (once the enclosing scope is
// complete) each procedure's declarations, and finally statement
// analysis and code generation for every stream.  That ordering yields
// exactly the name resolutions the concurrent compiler produces under
// any DKY strategy, which is what makes byte-identical output a
// testable property rather than a hope.
package seq

import (
	"fmt"

	"m2cc/internal/ast"
	"m2cc/internal/codegen"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/event"
	"m2cc/internal/ifacecache"
	"m2cc/internal/lexer"
	"m2cc/internal/parser"
	"m2cc/internal/sema"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/vm"
)

// Result is the outcome of one sequential compilation.
type Result struct {
	Object *vm.Object
	Diags  *diag.Bag
	Files  *source.Set
	Units  float64 // total deterministic work units (the 1-processor virtual time)
}

// Failed reports whether the compilation produced errors.
func (r *Result) Failed() bool { return r.Diags.HasErrors() }

// compiler carries the state of one sequential compilation.
type compiler struct {
	loader source.Loader
	files  *source.Set
	diags  *diag.Bag
	tab    *symtab.Table
	reg    *vm.Registry
	ctx    *ctrace.TaskCtx

	ifaces   map[string]*symtab.Scope
	inFlight map[string]bool
	genQueue []genItem

	cache     *ifacecache.Cache
	cacheEnts map[string]*ifacecache.Entry // entry used or led per interface
}

// genItem is one pending statement-analysis/code-generation unit.
type genItem struct {
	env       *sema.Env
	scope     *symtab.Scope
	meta      *vm.ProcMeta
	sig       *symtab.Symbol
	frameBase int32
	body      *ast.StmtList
}

// Compile compiles the named implementation module sequentially.
func Compile(module string, loader source.Loader) *Result {
	return CompileWithCache(module, loader, nil)
}

// CompileWithCache compiles sequentially, consulting (and feeding) a
// shared interface cache when one is supplied.  Output is
// byte-identical to Compile: cached interfaces resolve to the same
// declarations, and diagnostics/listings are name-symbolic.
func CompileWithCache(module string, loader source.Loader, cache *ifacecache.Cache) *Result {
	c := &compiler{
		loader: loader,
		files:  source.NewSet(),
		diags:  diag.NewBag(200),
		reg:    vm.NewRegistry(module),
		ctx:    &ctrace.TaskCtx{},
		ifaces: make(map[string]*symtab.Scope),

		inFlight:  make(map[string]bool),
		cache:     cache,
		cacheEnts: make(map[string]*ifacecache.Entry),
	}
	c.tab = symtab.NewTable(symtab.Skeptical, nil, nil)
	c.compileModule(module)
	return &Result{
		Object: c.reg.Object(),
		Diags:  c.diags,
		Files:  c.files,
		Units:  c.ctx.Units,
	}
}

// env builds a per-file analysis environment.  The sequential searcher
// never actually blocks: if a search meets an incomplete table the
// program has a cyclic import (already diagnosed), and skipping the
// wait gives the same not-found outcome termination-safely.
func (c *compiler) env(file string) *sema.Env {
	return &sema.Env{
		Tab: c.tab,
		Search: &symtab.Searcher{
			Tab: c.tab, Ctx: c.ctx,
			Wait: func(*event.Event) {},
		},
		Ctx:   c.ctx,
		Diags: c.diags,
		File:  file,
		Reg:   c.reg,
	}
}

// iface returns the completed interface scope of a definition module,
// processing each interface exactly once.  With a cache attached it
// first consults the cache: a hit installs the whole cached closure, a
// miss makes this compilation the entry's leader (publishing on
// success), and a concurrent leader elsewhere is simply waited for.
// Cycles are diagnosed and broken exactly as in the uncached path —
// cyclic closures are uncacheable (Bypass), so the cache never sees
// them.
func (c *compiler) iface(name string, pos token.Pos, importer string) *symtab.Scope {
	if sc, ok := c.ifaces[name]; ok {
		if c.inFlight[name] {
			c.diags.Errorf(importer, pos, "import cycle through %s", name)
		}
		return sc
	}
	if c.cache == nil {
		return c.compileIface(name, pos, importer, nil)
	}
	for {
		ent, ev, st := c.cache.Acquire(name, c.loader)
		switch st {
		case ifacecache.Hit:
			if sc := c.installCached(name, ent); sc != nil {
				return sc
			}
			// Closure conflict with locally compiled interfaces:
			// compile fresh, outside the cache.
			return c.compileIface(name, pos, importer, nil)
		case ifacecache.Lead:
			return c.compileIface(name, pos, importer, ent)
		case ifacecache.Wait:
			ev.Wait()
			continue
		default: // Bypass
			return c.compileIface(name, pos, importer, nil)
		}
	}
}

// installCached installs a ready cache entry's whole closure (deepest
// dependencies first) into this compilation's tables.  It returns nil —
// declining the hit — if any closure member's name is already bound to
// a different scope here, since type compatibility is scope-pointer
// identity and a mixed closure would split one interface in two.
func (c *compiler) installCached(name string, ent *ifacecache.Entry) *symtab.Scope {
	closure := ent.Closure()
	for _, m := range closure {
		if ex, ok := c.ifaces[m.Name()]; ok && ex != m.Scope() {
			return nil
		}
	}
	for _, m := range closure {
		if _, ok := c.ifaces[m.Name()]; ok {
			continue
		}
		c.ifaces[m.Name()] = m.Scope()
		c.cacheEnts[m.Name()] = m
		c.reg.SetAreaSlots(c.reg.AreaIdx(m.AreaName()), m.AreaSlots())
		for _, imp := range m.Imports() {
			c.reg.AddImport(imp)
		}
	}
	return c.ifaces[name]
}

// compileIface loads, parses and analyzes a definition module.  When
// ent is non-nil this compilation leads the cache entry: a clean result
// is published (scope, area layout, imports, deps, cost) and any
// failure — load error, diagnostics against the file, an uncacheable
// import — fails the entry so waiters elsewhere retry for themselves.
func (c *compiler) compileIface(name string, pos token.Pos, importer string, ent *ifacecache.Entry) *symtab.Scope {
	scope := c.tab.NewScope(symtab.DefScope, name, nil, 0)
	c.ifaces[name] = scope
	c.inFlight[name] = true
	published := false
	defer func() {
		c.inFlight[name] = false
		if !scope.Completed() {
			scope.Complete(c.ctx)
		}
		if ent != nil && !published {
			ent.Fail()
		}
	}()

	text, err := c.loader.Load(name, source.Def)
	if err != nil {
		c.diags.Errorf(importer, pos, "cannot import %s: %v", name, err)
		return scope
	}
	f := c.files.Add(name, source.Def, text)
	env := c.env(f.Label())
	start := c.ctx.Units
	var nested float64 // work done compiling imported interfaces, not ours
	toks := lexer.ScanAll(f, c.ctx, c.diags)
	p := parser.New(parser.NewSliceSource(toks), f.Label(), c.ctx, c.diags)
	m := p.ParseUnit()
	if m.Kind != ast.DefMod {
		c.diags.Errorf(f.Label(), m.Pos, "%s is not a DEFINITION MODULE", f.Label())
	}
	a := sema.NewModuleAnalyzer(env, scope, name+".def", name, name+".def", true)
	var directImps []string
	impSeen := map[string]bool{}
	a.AnalyzeImports(m.Imports, func(imp string) *symtab.Scope {
		n0 := c.ctx.Units
		sc := c.iface(imp, m.Pos, f.Label())
		nested += c.ctx.Units - n0
		if !impSeen[imp] {
			impSeen[imp] = true
			directImps = append(directImps, imp)
		}
		return sc
	})
	a.Analyze(m.Decls)
	a.ResolveForwardRefs()
	c.reg.SetAreaSlots(a.Area, a.NextOff)
	scope.Complete(c.ctx)

	if ent != nil {
		ok := !c.diags.HasFor(f.Label())
		deps := make([]ifacecache.Dep, 0, len(directImps))
		for _, imp := range directImps {
			ie, have := c.cacheEnts[imp]
			if !have {
				ok = false
				break
			}
			deps = append(deps, ifacecache.Dep{Ent: ie, Scope: c.ifaces[imp]})
		}
		if ok {
			c.cacheEnts[name] = ent
			ent.Publish(scope, a.AreaName, a.NextOff, directImps, deps, c.ctx.Units-start-nested)
			published = true
		}
	}
	return scope
}

func (c *compiler) compileModule(module string) {
	text, err := c.loader.Load(module, source.Impl)
	if err != nil {
		c.diags.Errorf(module+".mod", token.Pos{}, "cannot load module: %v", err)
		return
	}
	f := c.files.Add(module, source.Impl, text)
	env := c.env(f.Label())
	toks := lexer.ScanAll(f, c.ctx, c.diags)
	p := parser.New(parser.NewSliceSource(toks), f.Label(), c.ctx, c.diags)
	m := p.ParseUnit()

	var parent *symtab.Scope
	switch m.Kind {
	case ast.ImplMod:
		parent = c.iface(m.Name.Text, m.Pos, f.Label())
	case ast.DefMod:
		c.diags.Errorf(f.Label(), m.Pos, "%s.mod must be an IMPLEMENTATION or program MODULE", module)
	}
	if m.Name.Text != module {
		c.diags.Errorf(f.Label(), m.Name.Pos, "module name %s does not match file %s", m.Name.Text, f.Label())
	}

	scope := c.tab.NewScope(symtab.ModuleScope, module, parent, 0)
	a := sema.NewModuleAnalyzer(env, scope, module+".mod", module, module+".mod", false)
	a.AnalyzeImports(m.Imports, func(imp string) *symtab.Scope {
		return c.iface(imp, m.Pos, f.Label())
	})
	a.Analyze(m.Decls)
	a.ResolveForwardRefs()
	c.reg.SetAreaSlots(a.Area, a.NextOff)
	scope.Complete(c.ctx)

	// Procedure declarations, depth-first, each scope analyzed only
	// after its parent completed (the resolution order the concurrent
	// compiler guarantees through DKY handling).
	c.walkChildren(env, a.Children)

	// Module body last (it is the paper's main-module statement
	// analysis / code generation task).
	if m.Body != nil {
		bodyMeta := sema.NewBodyMeta(env)
		c.genQueue = append(c.genQueue, genItem{
			env: env, scope: scope, meta: bodyMeta, frameBase: 0, body: m.Body,
		})
	}

	for _, g := range c.genQueue {
		if g.sig != nil {
			codegen.Compile(g.env, g.scope, g.meta, g.sig.Type, g.frameBase, g.body)
		} else {
			codegen.Compile(g.env, g.scope, g.meta, nil, g.frameBase, g.body)
		}
	}
}

// walkChildren analyzes procedure scopes recursively and queues their
// bodies for code generation.
func (c *compiler) walkChildren(env *sema.Env, children []*sema.ChildProc) {
	for _, child := range children {
		a := sema.NewProcAnalyzer(env, child)
		a.Analyze(child.Decl.Decls)
		a.ResolveForwardRefs()
		child.Scope.Complete(c.ctx)
		c.genQueue = append(c.genQueue, genItem{
			env: env, scope: child.Scope, meta: child.Meta, sig: child.Sym,
			frameBase: a.NextOff, body: child.Decl.Body,
		})
		c.walkChildren(env, a.Children)
	}
}

// CompileAndLink compiles the main module plus the implementation of
// every transitively imported module that has one, and links them.
func CompileAndLink(main string, loader source.Loader) (*vm.Program, *diag.Bag, error) {
	diags := diag.NewBag(200)
	objects, err := CompileAll(main, loader, diags)
	if err != nil {
		return nil, diags, err
	}
	if diags.HasErrors() {
		return nil, diags, fmt.Errorf("compilation of %s failed", main)
	}
	prog, err := vm.Link(objects, main)
	return prog, diags, err
}

// CompileAll compiles main and every reachable implementation module,
// merging diagnostics into diags.  Modules without a .mod file are
// interface-only and skipped.
func CompileAll(main string, loader source.Loader, diags *diag.Bag) ([]*vm.Object, error) {
	var objects []*vm.Object
	seen := map[string]bool{}
	queue := []string{main}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		if _, err := loader.Load(name, source.Impl); err != nil {
			if name == main {
				return nil, fmt.Errorf("main module %s has no implementation", main)
			}
			continue
		}
		res := Compile(name, loader)
		for _, d := range res.Diags.Sorted() {
			if d.Sev == diag.Error {
				diags.Errorf(d.File, d.Pos, "%s", d.Msg)
			} else {
				diags.Warnf(d.File, d.Pos, "%s", d.Msg)
			}
		}
		objects = append(objects, res.Object)
		queue = append(queue, res.Object.Imports...)
	}
	return objects, nil
}
