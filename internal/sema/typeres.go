package sema

import (
	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/types"
)

// fixup is one deferred pointer-target resolution ("POINTER TO T" with
// T possibly declared later in the same scope).
type fixup struct {
	target *types.Type // the pointer/REF type whose Base is pending
	name   string
	pos    token.Pos
}

// deferPointerBase registers a forward-reference fixup.  While fixups
// are outstanding, the scope queues new symbols unpublished, preserving
// the entry-atomicity rule of §2.2 footnote 1.
func (a *DeclAnalyzer) deferPointerBase(pt *types.Type, name string, pos token.Pos) {
	a.fixups = append(a.fixups, fixup{target: pt, name: name, pos: pos})
	a.Scope.DeferFixup()
}

// ResolveForwardRefs patches all deferred pointer targets.  Self-scope
// declarations take priority (the Modula-2 forward-reference rule);
// otherwise the ordinary search runs, which may DKY-wait on outer
// scopes.  Must be called before Scope.Complete.
func (a *DeclAnalyzer) ResolveForwardRefs() {
	for _, f := range a.fixups {
		a.Env.Ctx.Add(ctrace.CostTypeNode)
		var t *types.Type
		if sym := a.Scope.OwnerProbe(f.name); sym != nil {
			if sym.Kind == symtab.KType {
				t = sym.Type
			} else {
				a.Env.Errorf(f.pos, "%s is a %s, not a type", f.name, sym.Kind)
				t = types.Bad
			}
		} else {
			q := &ast.Qualident{Parts: []ast.Name{{Text: f.name, Pos: f.pos}}}
			t = a.Env.ResolveTypeName(a.Scope, q)
		}
		f.target.Base = t
		a.Scope.ResolveFixup(a.Env.Ctx)
	}
	a.fixups = nil
}

// resolveTypeDecl resolves the right-hand side of "TYPE name = ...".
// Structural constructors yield a fresh type carrying the declared
// name; a type identifier on the right creates a synonym (the same
// *Type object, per Modula-2 identity rules).
func (a *DeclAnalyzer) resolveTypeDecl(d *ast.TypeDecl) *types.Type {
	t := a.resolveType(d.Type)
	if _, isName := d.Type.(*ast.NamedType); !isName && t.Name == "" {
		t.Name = d.Name.Text
	}
	return t
}

// resolveType resolves a syntactic type denotation to a *types.Type,
// inserting enumeration constants into the current scope as a side
// effect.
func (a *DeclAnalyzer) resolveType(t ast.Type) *types.Type {
	e := a.Env
	e.Ctx.Add(ctrace.CostTypeNode)
	switch t := t.(type) {
	case *ast.NamedType:
		return e.ResolveTypeName(a.Scope, t.Name)

	case *ast.EnumType:
		et := types.NewEnum("", len(t.Names))
		for i, n := range t.Names {
			a.insert(&symtab.Symbol{
				Name: n.Text, Kind: symtab.KConst, Pos: n.Pos,
				Type: et, Val: types.MakeInt(et, int64(i)),
			})
		}
		return et

	case *ast.SubrangeType:
		lo, loT, ok1 := e.EvalConstInt(a.Scope, t.Lo)
		hi, _, ok2 := e.EvalConstInt(a.Scope, t.Hi)
		if !ok1 || !ok2 {
			return types.Bad
		}
		base := loT.Under()
		if t.Base != nil {
			base = e.ResolveTypeName(a.Scope, t.Base)
			if base != types.Bad && !base.IsOrdinal() {
				e.Errorf(t.Pos, "subrange base %s is not an ordinal type", base)
				return types.Bad
			}
		} else if base.Kind == types.WholeK {
			base = types.Integer
		}
		if lo > hi {
			e.Errorf(t.Pos, "empty subrange [%d..%d]", lo, hi)
		}
		return types.NewSubrange(base, lo, hi)

	case *ast.ArrayType:
		elem := a.resolveType(t.Elem)
		// Multiple index types nest right-to-left: ARRAY a, b OF T is
		// ARRAY a OF ARRAY b OF T.
		result := elem
		for i := len(t.Indexes) - 1; i >= 0; i-- {
			idx := a.resolveType(t.Indexes[i])
			switch idx.Deref().Kind {
			case types.SubrangeK, types.EnumK, types.BooleanK, types.CharK:
				// bounded ordinal, fine
			default:
				if idx != types.Bad {
					e.Errorf(t.Pos, "array index type %s must be a bounded ordinal (use a subrange)", idx)
				}
				idx = types.NewSubrange(types.Integer, 0, 0)
			}
			result = types.NewArray(idx, result)
			result.Slots()
		}
		return result

	case *ast.RecordType:
		rec := &recordLayout{a: a, seen: make(map[string]token.Pos)}
		rec.layout(t.Fields, 0)
		rt := types.NewRecord(rec.fields)
		rt.Slots()
		return rt

	case *ast.SetType:
		base := a.resolveType(t.Base)
		if base != types.Bad {
			lo, hi, ok := base.Bounds()
			if !ok || lo < 0 || hi > 63 {
				e.Errorf(t.Pos, "set base type %s must be an ordinal within 0..63", base)
				return types.Bad
			}
		}
		st := types.NewSet(base)
		st.Lo, st.Hi, _ = base.Bounds()
		return st

	case *ast.PointerType:
		return a.resolvePointer(types.NewPointer(nil), t.Base, t.Pos)

	case *ast.RefType:
		return a.resolvePointer(types.NewRef(nil), t.Base, t.Pos)

	case *ast.ProcType:
		params := make([]types.Param, 0, len(t.Params))
		for _, p := range t.Params {
			pt := e.ResolveTypeName(a.Scope, p.Type)
			params = append(params, types.Param{Type: pt, ByRef: p.VarMode, Open: p.Open})
		}
		var ret *types.Type
		if t.Ret != nil {
			ret = e.ResolveTypeName(a.Scope, t.Ret)
		}
		return types.NewProcType(params, ret)

	default:
		e.Errorf(token.Pos{}, "unsupported type form")
		return types.Bad
	}
}

// resolvePointer fills pt.Base, deferring unqualified names to the
// forward-reference pass.
func (a *DeclAnalyzer) resolvePointer(pt *types.Type, base ast.Type, pos token.Pos) *types.Type {
	if nt, ok := base.(*ast.NamedType); ok && len(nt.Name.Parts) == 1 {
		a.deferPointerBase(pt, nt.Name.Parts[0].Text, nt.Name.Parts[0].Pos)
		return pt
	}
	pt.Base = a.resolveType(base)
	return pt
}

// recordLayout assigns record field offsets, overlaying variant cases
// (§ the classic Modula-2 variant record rules: all cases of a variant
// part share storage; the record size is the maximum extent).
type recordLayout struct {
	a      *DeclAnalyzer
	fields []*types.Field
	seen   map[string]token.Pos
}

func (r *recordLayout) layout(fls []*ast.FieldList, base int) int {
	off := base
	for _, fl := range fls {
		if fl.Variant != nil {
			off = r.layoutVariant(fl.Variant, off)
			continue
		}
		ft := r.a.resolveType(fl.Type)
		for _, n := range fl.Names {
			r.addField(n, ft, off)
			off += ft.Slots()
		}
	}
	return off
}

func (r *recordLayout) layoutVariant(v *ast.VariantPart, base int) int {
	e := r.a.Env
	tagType := e.ResolveTypeName(r.a.Scope, v.TagType)
	if tagType != types.Bad && !tagType.IsOrdinal() {
		e.Errorf(v.Pos, "variant tag type %s is not ordinal", tagType)
	}
	off := base
	if v.TagName.Text != "" {
		r.addField(v.TagName, tagType, off)
		off += tagType.Slots()
	}
	maxEnd := off
	for _, c := range v.Cases {
		for _, l := range c.Labels {
			e.EvalConstInt(r.a.Scope, l.Lo)
			if l.Hi != nil {
				e.EvalConstInt(r.a.Scope, l.Hi)
			}
		}
		if end := r.layout(c.Fields, off); end > maxEnd {
			maxEnd = end
		}
	}
	if v.Else != nil {
		if end := r.layout(v.Else, off); end > maxEnd {
			maxEnd = end
		}
	}
	return maxEnd
}

func (r *recordLayout) addField(n ast.Name, t *types.Type, off int) {
	if _, dup := r.seen[n.Text]; dup {
		r.a.Env.Errorf(n.Pos, "field %s redeclared", n.Text)
		return
	}
	r.seen[n.Text] = n.Pos
	r.fields = append(r.fields, &types.Field{Name: n.Text, Type: t, Offset: off, Pos: n.Pos})
}
