package sema

import (
	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/symtab"
	"m2cc/internal/types"
	"m2cc/internal/vm"
)

// ChildProc is the shared parent/child information produced when a
// procedure heading is analyzed in the parent scope (§2.4, alternative
// 1 — the paper's choice): the procedure's own symbol table entry and
// its parameter entries, already copied into the child scope.  The
// driver hands this to whichever task compiles the body: the child
// stream's Parser/Decl-Analyzer task in the concurrent compiler, or the
// deferred recursive walk in the sequential one.
type ChildProc struct {
	Decl      *ast.ProcDecl
	Sym       *symtab.Symbol
	Scope     *symtab.Scope
	Meta      *vm.ProcMeta
	FrameBase int32 // first free frame slot after the parameters
	ScopePath string
}

// DeclAnalyzer processes the declaration part of one stream, building
// the stream's symbol table.  One analyzer is owned by exactly one
// Parser/Declarations-Analyzer task.
type DeclAnalyzer struct {
	Env       *Env
	Scope     *symtab.Scope
	ScopePath string // deterministic path: "M.def", "M.mod", "M.mod:P.Q"
	OwnerMod  string // module whose source declares this scope
	IsDef     bool   // definition-module scope: procedures are external
	Area      int32  // registry globals area (module/def scopes); -1 for procedures
	AreaName  string // the area's name ("M.def"/"M.mod"); symbols carry this
	NextOff   int32  // storage allocator (area slots or frame slots)
	Children  []*ChildProc

	// OnChild, when set, is invoked the moment each procedure heading
	// has been analyzed — the concurrent driver uses it to fire the
	// child stream's avoided heading event immediately (§2.4), instead
	// of waiting for the whole declaration section.
	OnChild func(*ChildProc)

	// ShareHeadings selects §2.4 alternative 1 (true, the paper's
	// choice): the parent copies the procedure and parameter entries
	// into the child scope.  False selects alternative 3: the child
	// stream re-processes the heading itself (AnalyzeOwnHeading).
	ShareHeadings bool

	procPrefix string // "" at module level, "Outer." inside procedures
	fixups     []fixup
}

// NewModuleAnalyzer returns an analyzer for a module-level scope (a
// definition module's interface or the implementation module body).
// areaName is the scope's global storage area ("M.def" / "M.mod").
func NewModuleAnalyzer(env *Env, scope *symtab.Scope, scopePath, ownerMod, areaName string, isDef bool) *DeclAnalyzer {
	return &DeclAnalyzer{
		Env: env, Scope: scope, ScopePath: scopePath, OwnerMod: ownerMod,
		IsDef: isDef, Area: env.Reg.AreaIdx(areaName), AreaName: areaName,
		ShareHeadings: true,
	}
}

// NewProcAnalyzer returns an analyzer for a procedure scope created by
// a parent's heading analysis.
func NewProcAnalyzer(env *Env, child *ChildProc) *DeclAnalyzer {
	return &DeclAnalyzer{
		Env: env, Scope: child.Scope, ScopePath: child.ScopePath,
		OwnerMod: child.Meta.Module, Area: -1, NextOff: child.FrameBase,
		ShareHeadings: true, procPrefix: child.Meta.Name + ".",
	}
}

func (a *DeclAnalyzer) insert(sym *symtab.Symbol) { a.Env.Insert(a.Scope, sym) }

// warnModuleShadow reports a procedure-local variable whose name hides
// an imported module.  Only the enclosing implementation-module scope
// is consulted: its KModule entries are inserted by AnalyzeImports
// before any child stream's heading event fires, so the probe is
// deterministic under every schedule.  The concurrently-built .def
// scopes are deliberately not probed — their import entries may still
// be in flight — and a module-level clash is a redeclaration error
// reported by Insert instead.
func (a *DeclAnalyzer) warnModuleShadow(n ast.Name) {
	if a.Area >= 0 {
		return
	}
	for sc := a.Scope.Parent; sc != nil; sc = sc.Parent {
		if sc.Kind != symtab.ModuleScope {
			continue
		}
		if sym := sc.Probe(n.Text); sym != nil && sym.Kind == symtab.KModule {
			a.Env.Warnf(n.Pos, "variable %s shadows imported module %s", n.Text, n.Text)
		}
		return
	}
}

// alloc reserves n storage slots in this scope's area or frame.
func (a *DeclAnalyzer) alloc(n int32) int32 {
	off := a.NextOff
	a.NextOff += n
	return off
}

// AnalyzeImports processes the import list, creating module symbols
// (IMPORT M) and lazy aliases (FROM M IMPORT x).  resolveIface maps a
// module name to its interface scope, creating/starting the definition
// module stream if needed (the driver supplies this).
func (a *DeclAnalyzer) AnalyzeImports(imports []*ast.Import, resolveIface func(name string) *symtab.Scope) {
	for _, imp := range imports {
		if imp.From.Text != "" {
			iface := resolveIface(imp.From.Text)
			a.Env.Reg.AddImport(imp.From.Text)
			for _, n := range imp.Names {
				a.insert(&symtab.Symbol{
					Name: n.Text, Kind: symtab.KAlias, Pos: n.Pos,
					AliasScope: iface, AliasName: n.Text,
				})
			}
			continue
		}
		for _, n := range imp.Names {
			iface := resolveIface(n.Text)
			a.Env.Reg.AddImport(n.Text)
			a.insert(&symtab.Symbol{
				Name: n.Text, Kind: symtab.KModule, Pos: n.Pos, IfaceScope: iface,
			})
		}
	}
}

// Analyze processes the declarations of this scope: constants, types,
// variables, exceptions and procedure *headings*.  Procedure bodies are
// not descended into — each becomes a ChildProc for the driver, exactly
// mirroring the concurrent compiler's stream split.
func (a *DeclAnalyzer) Analyze(decls []ast.Decl) {
	e := a.Env
	a.Scope.Grow(len(decls))
	for _, d := range decls {
		switch d := d.(type) {
		case *ast.ConstDecl:
			v := e.EvalConst(a.Scope, d.Expr)
			t := v.Type
			if t == nil {
				t = types.Bad
			}
			a.insert(&symtab.Symbol{
				Name: d.Name.Text, Kind: symtab.KConst, Pos: d.Name.Pos, Type: t, Val: v,
			})

		case *ast.TypeDecl:
			var t *types.Type
			if d.Type == nil {
				if !a.IsDef {
					e.Errorf(d.Name.Pos, "opaque type %s is only legal in a definition module", d.Name.Text)
				}
				t = types.NewOpaque(d.Name.Text)
			} else {
				t = a.resolveTypeDecl(d)
			}
			a.insert(&symtab.Symbol{
				Name: d.Name.Text, Kind: symtab.KType, Pos: d.Name.Pos, Type: t,
			})

		case *ast.VarDecl:
			t := a.resolveType(d.Type)
			slots := int32(1)
			if t != types.Bad {
				slots = int32(t.Slots())
			}
			for _, n := range d.Names {
				a.warnModuleShadow(n)
				sym := &symtab.Symbol{
					Name: n.Text, Kind: symtab.KVar, Pos: n.Pos, Type: t,
					Level: a.Scope.Level, Offset: a.alloc(slots),
				}
				if a.Area >= 0 {
					sym.Global = true
					sym.Area = a.AreaName
				}
				a.insert(sym)
			}

		case *ast.ExceptionDecl:
			for _, n := range d.Names {
				full := ExcName(a.ScopePath, n.Text)
				a.insert(&symtab.Symbol{
					Name: n.Text, Kind: symtab.KException, Pos: n.Pos,
					Type: types.Exception, ExcName: full,
				})
			}

		case *ast.ProcDecl:
			a.analyzeProcHeading(d)
		}
	}
}

// resolveFormalType resolves one formal-parameter section's type.
func (a *DeclAnalyzer) resolveFormalType(sec *ast.FPSection) *types.Type {
	t := a.Env.ResolveTypeName(a.Scope, sec.Type)
	if sec.Open {
		return types.NewOpenArray(t)
	}
	return t
}

// ParamSlots returns the frame slots one parameter occupies: VAR
// parameters hold an address (1), open arrays hold base+length (2),
// value parameters hold a copy of the value.
func ParamSlots(p types.Param) int32 {
	switch {
	case p.Open:
		return 2 // base + length, for both value and VAR mode
	case p.ByRef:
		return 1
	default:
		return int32(p.Type.Slots())
	}
}

// analyzeProcHeading implements §2.4 alternative 1: the heading is
// processed here in the parent scope; the symbol table entries it
// yields (the procedure entry and its parameter entries) are copied
// into the child scope, which the driver will only then allow to start.
func (a *DeclAnalyzer) analyzeProcHeading(d *ast.ProcDecl) {
	e := a.Env
	head := d.Head
	e.Ctx.Add(ctrace.CostTypeNode)

	params := make([]types.Param, 0, len(head.Params))
	for _, sec := range head.Params {
		t := a.resolveFormalType(sec)
		for _, n := range sec.Names {
			params = append(params, types.Param{
				Name: n.Text, Type: t, ByRef: sec.VarMode, Open: sec.Open,
			})
		}
	}
	var ret *types.Type
	if head.Ret != nil {
		ret = e.ResolveTypeName(a.Scope, head.Ret)
		switch ret.Deref().Kind {
		case types.ArrayK, types.RecordK, types.OpenArrayK:
			e.Errorf(head.Ret.Pos(), "function result type %s must be scalar", ret)
		}
	}
	sig := types.NewProcType(params, ret)

	if a.IsDef {
		// Definition module: the procedure is implemented elsewhere;
		// client code links to it symbolically.
		a.insert(&symtab.Symbol{
			Name: head.Name.Text, Kind: symtab.KProc, Pos: head.Name.Pos,
			Type: sig, ProcIdx: -1, ExtName: a.OwnerMod + "." + head.Name.Text,
		})
		return
	}

	var argSlots int32
	for _, p := range params {
		argSlots += ParamSlots(p)
	}
	level := a.Scope.Level + 1
	path := a.procPrefix + head.Name.Text
	meta := e.Reg.NewProc(path, a.Scope.Kind == symtab.ModuleScope, false,
		level, argSlots, ret != nil, head.Pos)

	procSym := &symtab.Symbol{
		Name: head.Name.Text, Kind: symtab.KProc, Pos: head.Name.Pos,
		Type: sig, ProcIdx: meta.Idx,
	}
	a.insert(procSym)

	// Build the child scope; under alternative 1 the shared entries
	// (the procedure's own entry and its parameters) are copied in now.
	child := e.Tab.NewScope(symtab.ProcScope, head.Name.Text, a.Scope, level)
	off := int32(0)
	if a.ShareHeadings {
		off = CopyHeadingEntries(e, child, procSym, params)
	}

	cp := &ChildProc{
		Decl: d, Sym: procSym, Scope: child, Meta: meta, FrameBase: off,
		ScopePath: a.ScopePath + ":" + path,
	}
	a.Children = append(a.Children, cp)
	if a.OnChild != nil {
		a.OnChild(cp)
	}
}

// CopyHeadingEntries copies the procedure's symbol and its parameter
// entries into the child scope (§2.4 alternative 1), returning the
// first free frame slot.
func CopyHeadingEntries(e *Env, child *symtab.Scope, procSym *symtab.Symbol, params []types.Param) int32 {
	selfCopy := *procSym
	e.Insert(child, &selfCopy)
	off := int32(0)
	for _, p := range params {
		psym := &symtab.Symbol{
			Name: p.Name, Kind: symtab.KParam, Type: p.Type,
			Level: child.Level, Offset: off, ByRef: p.ByRef, Open: p.Open,
		}
		off += ParamSlots(p)
		e.Insert(child, psym)
	}
	return off
}

// AnalyzeOwnHeading implements §2.4 alternative 3: the child stream
// re-processes its procedure heading, resolving the formal types with
// its own searcher and producing symbol table entries identical to the
// ones the parent built for the signature.  Returns the first free
// frame slot.
func AnalyzeOwnHeading(env *Env, child *ChildProc, head *ast.ProcHead) int32 {
	a := &DeclAnalyzer{Env: env, Scope: child.Scope, ScopePath: child.ScopePath,
		OwnerMod: child.Meta.Module, Area: -1, ShareHeadings: true}
	params := make([]types.Param, 0, len(head.Params))
	for _, sec := range head.Params {
		t := a.resolveFormalType(sec)
		for _, n := range sec.Names {
			params = append(params, types.Param{Name: n.Text, Type: t, ByRef: sec.VarMode, Open: sec.Open})
		}
	}
	if head.Ret != nil {
		env.ResolveTypeName(child.Scope, head.Ret)
	}
	env.Ctx.Add(ctrace.CostTypeNode)
	return CopyHeadingEntries(env, child.Scope, child.Sym, params)
}

// NewBodyMeta registers the module body as a level-0 pseudo-procedure.
func NewBodyMeta(env *Env) *vm.ProcMeta {
	return env.Reg.NewProc(".body", false, true, 0, 0, false, ast.Name{}.Pos)
}
