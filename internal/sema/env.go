// Package sema implements semantic analysis for Modula-2+: constant
// expression evaluation, type denotation resolution and the declaration
// analyzer that the Parser/Declarations-Analyzer tasks run.
//
// Name resolution follows the concurrent compiler's rules (§2.2 of the
// paper): the current scope is searched with strict declare-before-use,
// while every other scope is effectively searched *as completed* —
// whichever DKY strategy is active, a search that reaches another
// stream's table either finds the final entry or waits for the table to
// complete, so the result is schedule- and strategy-independent.  The
// sequential compiler (internal/seq) orders its work to produce exactly
// the same resolutions, which is what the differential tests rely on.
package sema

import (
	"fmt"

	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/types"
	"m2cc/internal/vm"
)

// Env is the per-task analysis context shared by declaration analysis,
// constant evaluation and code generation.
type Env struct {
	Tab    *symtab.Table
	Search *symtab.Searcher
	Ctx    *ctrace.TaskCtx
	Diags  *diag.Bag
	File   string
	Reg    *vm.Registry
}

// Errorf reports an error at pos in this task's file.
func (e *Env) Errorf(pos token.Pos, format string, args ...any) {
	e.Diags.Errorf(e.File, pos, format, args...)
}

// Warnf reports a warning at pos in this task's file.
func (e *Env) Warnf(pos token.Pos, format string, args ...any) {
	e.Diags.Warnf(e.File, pos, format, args...)
}

// report adapts Errorf to the symtab.Scope.Insert callback signature.
func (e *Env) report(pos token.Pos, format string, args ...any) {
	e.Errorf(pos, format, args...)
}

// Insert publishes sym into scope with this task's context.
func (e *Env) Insert(scope *symtab.Scope, sym *symtab.Symbol) bool {
	return scope.Insert(e.Ctx, e.report, sym)
}

// ResolveQualident resolves a (possibly qualified) identifier to a
// symbol, handling module qualification: "M.x" looks up M, then x in
// M's interface scope.  Longer chains re-qualify step by step (a module
// re-exporting a module name is not supported, so chains longer than
// two parts are errors unless each prefix resolves to a module).
// Returns nil after reporting an error.
func (e *Env) ResolveQualident(scope *symtab.Scope, q *ast.Qualident, withs []symtab.WithBinding) *symtab.Symbol {
	head := q.Parts[0]
	res := e.Search.Lookup(scope, head.Text, withs)
	if !res.Found() {
		if res.DeepAlias {
			e.Errorf(head.Pos, "import chain for %s is cyclic or too deep (more than %d re-export links)", head.Text, symtab.MaxAliasDepth)
		} else {
			e.Errorf(head.Pos, "undeclared identifier %s", head.Text)
		}
		return nil
	}
	if res.Field != nil {
		e.Errorf(head.Pos, "%s is a record field, not a qualifier", head.Text)
		return nil
	}
	sym := res.Sym
	for _, part := range q.Parts[1:] {
		if sym.Kind != symtab.KModule {
			e.Errorf(part.Pos, "%s is not a module; cannot qualify with .%s", sym.Name, part.Text)
			return nil
		}
		qres := e.Search.QualifiedLookup(sym.IfaceScope, part.Text)
		if qres.Sym == nil {
			if qres.DeepAlias {
				e.Errorf(part.Pos, "import chain for %s.%s is cyclic or too deep (more than %d re-export links)", sym.Name, part.Text, symtab.MaxAliasDepth)
			} else {
				e.Errorf(part.Pos, "%s is not declared in module %s", part.Text, sym.Name)
			}
			return nil
		}
		sym = qres.Sym
	}
	return sym
}

// ResolveTypeName resolves a qualident that must denote a type.
func (e *Env) ResolveTypeName(scope *symtab.Scope, q *ast.Qualident) *types.Type {
	sym := e.ResolveQualident(scope, q, nil)
	if sym == nil {
		return types.Bad
	}
	if sym.Kind != symtab.KType {
		e.Errorf(q.Pos(), "%s is a %s, not a type", q, sym.Kind)
		return types.Bad
	}
	return sym.Type
}

// TypeErrorf reports a type mismatch with a uniform phrasing so the
// sequential and concurrent compilers produce identical messages.
func (e *Env) TypeErrorf(pos token.Pos, what string, got, want *types.Type) {
	e.Errorf(pos, "%s: have %s, want %s", what, got, want)
}

// CheckAssignable reports an error unless src may be assigned to dst.
func (e *Env) CheckAssignable(pos token.Pos, dst, src *types.Type) {
	if !types.Assignable(dst, src) {
		e.Errorf(pos, "incompatible assignment: %s := %s", dst, src)
	}
}

// ExcName builds the deterministic fully qualified exception name used
// for cross-object unification (scope path + declared name).
func ExcName(scopePath, name string) string {
	return fmt.Sprintf("%s:%s", scopePath, name)
}
