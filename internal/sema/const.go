package sema

import (
	"m2cc/internal/ast"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/types"
)

// FloorDiv implements Modula-2 DIV (rounding toward negative infinity).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// FloorMod implements Modula-2 MOD (result takes the divisor's sign).
func FloorMod(a, b int64) int64 { return a - FloorDiv(a, b)*b }

// EvalConst evaluates a constant expression in the given scope.  Errors
// are reported once at their source; an invalid Const propagates
// silently to avoid cascades.
func (e *Env) EvalConst(scope *symtab.Scope, x ast.Expr) types.Const {
	bad := types.Const{}
	switch x := x.(type) {
	case *ast.IntLit:
		return types.MakeInt(types.Whole, x.Value)
	case *ast.RealLit:
		return types.MakeReal(types.Real, x.Value)
	case *ast.CharLit:
		return types.MakeInt(types.Char, int64(x.Value))
	case *ast.StringLit:
		return types.MakeString(x.Value)
	case *ast.SetExpr:
		return e.evalConstSet(scope, x)
	case *ast.UnaryExpr:
		v := e.EvalConst(scope, x.X)
		if !v.IsValid() {
			return bad
		}
		return e.constUnary(x, v)
	case *ast.BinaryExpr:
		a := e.EvalConst(scope, x.X)
		b := e.EvalConst(scope, x.Y)
		if !a.IsValid() || !b.IsValid() {
			return bad
		}
		return e.constBinary(x, a, b)
	case *ast.Designator:
		q, ok := designatorAsQualident(x)
		if !ok {
			e.Errorf(x.ExprPos(), "constant expression expected")
			return bad
		}
		sym := e.ResolveQualident(scope, q, nil)
		if sym == nil {
			return bad
		}
		if sym.Kind != symtab.KConst {
			e.Errorf(x.ExprPos(), "%s is a %s, not a constant", q, sym.Kind)
			return bad
		}
		return sym.Val
	case *ast.CallExpr:
		return e.evalConstCall(scope, x)
	default:
		e.Errorf(x.ExprPos(), "constant expression expected")
		return bad
	}
}

// designatorAsQualident converts a purely dotted designator to a
// qualident.
func designatorAsQualident(d *ast.Designator) (*ast.Qualident, bool) {
	q := &ast.Qualident{Parts: []ast.Name{d.Head}}
	for _, s := range d.Sels {
		f, ok := s.(*ast.FieldSel)
		if !ok {
			return nil, false
		}
		q.Parts = append(q.Parts, f.Name)
	}
	return q, true
}

func (e *Env) evalConstSet(scope *symtab.Scope, x *ast.SetExpr) types.Const {
	setType := types.BitSet
	if x.Type != nil {
		t := e.ResolveTypeName(scope, x.Type)
		if t == types.Bad {
			return types.Const{}
		}
		if !t.IsSet() {
			e.Errorf(x.Pos, "%s is not a set type", t)
			return types.Const{}
		}
		setType = t
	}
	var mask uint64
	for _, el := range x.Elems {
		lo := e.EvalConst(scope, el.Lo)
		hi := lo
		if el.Hi != nil {
			hi = e.EvalConst(scope, el.Hi)
		}
		if !lo.IsValid() || !hi.IsValid() {
			return types.Const{}
		}
		if lo.Kind != types.CInt || hi.Kind != types.CInt {
			e.Errorf(x.Pos, "set elements must be ordinal constants")
			return types.Const{}
		}
		if lo.I < 0 || hi.I > 63 || lo.I > hi.I {
			e.Errorf(x.Pos, "set element range %d..%d outside 0..63", lo.I, hi.I)
			return types.Const{}
		}
		for i := lo.I; i <= hi.I; i++ {
			mask |= 1 << uint(i)
		}
	}
	return types.MakeSet(setType, mask)
}

func (e *Env) constUnary(x *ast.UnaryExpr, v types.Const) types.Const {
	switch x.Op {
	case token.Plus:
		return v
	case token.Minus:
		switch v.Kind {
		case types.CInt:
			return types.MakeInt(types.Integer, -v.I)
		case types.CReal:
			return types.MakeReal(v.Type, -v.F)
		}
	case token.NOT:
		if v.Type.Under().Kind == types.BooleanK {
			return types.MakeBool(v.I == 0)
		}
	}
	e.Errorf(x.Pos, "invalid constant operand for %s", x.Op)
	return types.Const{}
}

func (e *Env) constBinary(x *ast.BinaryExpr, a, b types.Const) types.Const {
	bad := types.Const{}
	fail := func() types.Const {
		e.Errorf(x.Pos, "invalid constant operands for %s", x.Op)
		return bad
	}

	// Relations work across every constant class.
	switch x.Op {
	case token.Equal, token.NotEqual, token.Less, token.LessEq, token.Greater, token.GreaterEq:
		return e.constRelation(x, a, b)
	case token.IN:
		if a.Kind != types.CInt || b.Kind != types.CSet {
			return fail()
		}
		return types.MakeBool(a.I >= 0 && a.I < 64 && b.Set&(1<<uint(a.I)) != 0)
	}

	switch {
	case a.Kind == types.CInt && b.Kind == types.CInt:
		if !types.SameClass(a.Type, b.Type) {
			return fail()
		}
		ua := a.Type.Under()
		if ua.Kind == types.BooleanK {
			switch x.Op {
			case token.AND:
				return types.MakeBool(a.I != 0 && b.I != 0)
			case token.OR:
				return types.MakeBool(a.I != 0 || b.I != 0)
			}
			return fail()
		}
		rt := a.Type
		if rt.Under().Kind == types.WholeK {
			rt = b.Type
		}
		switch x.Op {
		case token.Plus:
			return types.MakeInt(rt, a.I+b.I)
		case token.Minus:
			return types.MakeInt(rt, a.I-b.I)
		case token.Star:
			return types.MakeInt(rt, a.I*b.I)
		case token.DIV:
			if b.I == 0 {
				e.Errorf(x.Pos, "division by zero in constant expression")
				return bad
			}
			return types.MakeInt(rt, FloorDiv(a.I, b.I))
		case token.MOD:
			if b.I == 0 {
				e.Errorf(x.Pos, "division by zero in constant expression")
				return bad
			}
			return types.MakeInt(rt, FloorMod(a.I, b.I))
		}
		return fail()
	case a.Kind == types.CReal && b.Kind == types.CReal:
		switch x.Op {
		case token.Plus:
			return types.MakeReal(a.Type, a.F+b.F)
		case token.Minus:
			return types.MakeReal(a.Type, a.F-b.F)
		case token.Star:
			return types.MakeReal(a.Type, a.F*b.F)
		case token.Slash:
			if b.F == 0 {
				e.Errorf(x.Pos, "division by zero in constant expression")
				return bad
			}
			return types.MakeReal(a.Type, a.F/b.F)
		}
		return fail()
	case a.Kind == types.CSet && b.Kind == types.CSet:
		switch x.Op {
		case token.Plus:
			return types.MakeSet(a.Type, a.Set|b.Set)
		case token.Minus:
			return types.MakeSet(a.Type, a.Set&^b.Set)
		case token.Star:
			return types.MakeSet(a.Type, a.Set&b.Set)
		case token.Slash:
			return types.MakeSet(a.Type, a.Set^b.Set)
		}
		return fail()
	}
	return fail()
}

func (e *Env) constRelation(x *ast.BinaryExpr, a, b types.Const) types.Const {
	cmp := func(c int) types.Const {
		switch x.Op {
		case token.Equal:
			return types.MakeBool(c == 0)
		case token.NotEqual:
			return types.MakeBool(c != 0)
		case token.Less:
			return types.MakeBool(c < 0)
		case token.LessEq:
			return types.MakeBool(c <= 0)
		case token.Greater:
			return types.MakeBool(c > 0)
		default:
			return types.MakeBool(c >= 0)
		}
	}
	switch {
	case a.Kind == types.CInt && b.Kind == types.CInt:
		switch {
		case a.I < b.I:
			return cmp(-1)
		case a.I > b.I:
			return cmp(1)
		}
		return cmp(0)
	case a.Kind == types.CReal && b.Kind == types.CReal:
		switch {
		case a.F < b.F:
			return cmp(-1)
		case a.F > b.F:
			return cmp(1)
		}
		return cmp(0)
	case a.Kind == types.CString && b.Kind == types.CString:
		switch {
		case a.S < b.S:
			return cmp(-1)
		case a.S > b.S:
			return cmp(1)
		}
		return cmp(0)
	case a.Kind == types.CSet && b.Kind == types.CSet:
		switch x.Op {
		case token.Equal:
			return types.MakeBool(a.Set == b.Set)
		case token.NotEqual:
			return types.MakeBool(a.Set != b.Set)
		case token.LessEq:
			return types.MakeBool(a.Set&^b.Set == 0)
		case token.GreaterEq:
			return types.MakeBool(b.Set&^a.Set == 0)
		}
	case a.Kind == types.CNil && b.Kind == types.CNil:
		return cmp(0)
	}
	e.Errorf(x.Pos, "invalid constant comparison")
	return types.Const{}
}

// evalConstCall evaluates builtin function applications in constant
// expressions: ORD, CHR, ABS, ODD, CAP, MIN, MAX, VAL, TRUNC, FLOAT,
// SIZE and TSIZE.
func (e *Env) evalConstCall(scope *symtab.Scope, x *ast.CallExpr) types.Const {
	bad := types.Const{}
	q, ok := designatorAsQualident(x.Fun)
	if !ok {
		e.Errorf(x.Pos, "constant expression expected")
		return bad
	}
	sym := e.ResolveQualident(scope, q, nil)
	if sym == nil {
		return bad
	}
	if sym.Kind != symtab.KBuiltin {
		e.Errorf(x.Pos, "%s cannot be applied in a constant expression", q)
		return bad
	}
	argType := func(i int) *types.Type {
		d, ok := x.Args[i].(*ast.Designator)
		if !ok {
			return nil
		}
		aq, ok := designatorAsQualident(d)
		if !ok {
			return nil
		}
		s := e.ResolveQualident(scope, aq, nil)
		if s == nil || s.Kind != symtab.KType {
			return nil
		}
		return s.Type
	}
	need := func(n int) bool {
		if len(x.Args) != n {
			e.Errorf(x.Pos, "%s expects %d argument(s)", sym.Name, n)
			return false
		}
		return true
	}
	switch sym.BID {
	case symtab.BOrd:
		if !need(1) {
			return bad
		}
		v := e.EvalConst(scope, x.Args[0])
		switch {
		case v.Kind == types.CInt:
			return types.MakeInt(types.Cardinal, v.I)
		case v.Kind == types.CString && len(v.S) == 1:
			return types.MakeInt(types.Cardinal, int64(v.S[0]))
		}
	case symtab.BChr:
		if !need(1) {
			return bad
		}
		if v := e.EvalConst(scope, x.Args[0]); v.Kind == types.CInt {
			return types.MakeInt(types.Char, v.I&0xFF)
		}
	case symtab.BAbs:
		if !need(1) {
			return bad
		}
		v := e.EvalConst(scope, x.Args[0])
		switch v.Kind {
		case types.CInt:
			if v.I < 0 {
				return types.MakeInt(v.Type, -v.I)
			}
			return v
		case types.CReal:
			if v.F < 0 {
				return types.MakeReal(v.Type, -v.F)
			}
			return v
		}
	case symtab.BOdd:
		if !need(1) {
			return bad
		}
		if v := e.EvalConst(scope, x.Args[0]); v.Kind == types.CInt {
			return types.MakeBool(v.I&1 != 0)
		}
	case symtab.BCap:
		if !need(1) {
			return bad
		}
		v := e.EvalConst(scope, x.Args[0])
		if v.Kind == types.CString && len(v.S) == 1 {
			v = types.MakeInt(types.Char, int64(v.S[0]))
		}
		if v.Kind == types.CInt {
			c := v.I
			if c >= 'a' && c <= 'z' {
				c -= 32
			}
			return types.MakeInt(types.Char, c)
		}
	case symtab.BMin, symtab.BMax:
		if !need(1) {
			return bad
		}
		t := argType(0)
		if t == nil {
			e.Errorf(x.Pos, "%s expects a type argument", sym.Name)
			return bad
		}
		if t.IsReal() {
			if sym.BID == symtab.BMin {
				return types.MakeReal(t, -1.7e308)
			}
			return types.MakeReal(t, 1.7e308)
		}
		lo, hi, ok := t.Bounds()
		if !ok {
			e.Errorf(x.Pos, "%s requires an ordinal or real type", sym.Name)
			return bad
		}
		if sym.BID == symtab.BMin {
			return types.MakeInt(t, lo)
		}
		return types.MakeInt(t, hi)
	case symtab.BVal:
		if !need(2) {
			return bad
		}
		t := argType(0)
		if t == nil || !t.IsOrdinal() {
			e.Errorf(x.Pos, "VAL expects an ordinal type and a value")
			return bad
		}
		if v := e.EvalConst(scope, x.Args[1]); v.Kind == types.CInt {
			return types.MakeInt(t, v.I)
		}
	case symtab.BTrunc:
		if !need(1) {
			return bad
		}
		if v := e.EvalConst(scope, x.Args[0]); v.Kind == types.CReal {
			return types.MakeInt(types.Cardinal, int64(v.F))
		}
	case symtab.BFloat:
		if !need(1) {
			return bad
		}
		if v := e.EvalConst(scope, x.Args[0]); v.Kind == types.CInt {
			return types.MakeReal(types.Real, float64(v.I))
		}
	case symtab.BSize, symtab.BTSize:
		if !need(1) {
			return bad
		}
		t := argType(0)
		if t == nil {
			e.Errorf(x.Pos, "%s expects a type argument in constant expressions", sym.Name)
			return bad
		}
		return types.MakeInt(types.Cardinal, int64(t.Slots()*types.WordBytes))
	default:
		e.Errorf(x.Pos, "%s cannot be applied in a constant expression", sym.Name)
		return bad
	}
	e.Errorf(x.Pos, "invalid argument for %s in constant expression", sym.Name)
	return bad
}

// EvalConstInt evaluates x and coerces to an ordinal constant value.
func (e *Env) EvalConstInt(scope *symtab.Scope, x ast.Expr) (int64, *types.Type, bool) {
	v := e.EvalConst(scope, x)
	switch v.Kind {
	case types.CInt:
		return v.I, v.Type, true
	case types.CString:
		if len(v.S) == 1 {
			return int64(v.S[0]), types.Char, true
		}
	case types.CInvalid:
		return 0, types.Bad, false
	}
	e.Errorf(x.ExprPos(), "ordinal constant expected")
	return 0, types.Bad, false
}
