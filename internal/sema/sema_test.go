package sema_test

import (
	"strings"
	"testing"

	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/event"
	"m2cc/internal/lexer"
	"m2cc/internal/parser"
	"m2cc/internal/sema"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
	"m2cc/internal/types"
	"m2cc/internal/vm"
)

// analyzeModule runs declaration analysis over the given module-level
// declaration source (no imports).
func analyzeModule(t *testing.T, decls string) (*sema.DeclAnalyzer, *symtab.Scope, *diag.Bag) {
	t.Helper()
	src := "MODULE M;\n" + decls + "\nEND M.\n"
	files := source.NewSet()
	f := files.Add("M", source.Impl, src)
	diags := diag.NewBag(0)
	ctx := &ctrace.TaskCtx{}
	toks := lexer.ScanAll(f, ctx, diags)
	p := parser.New(parser.NewSliceSource(toks), "M.mod", ctx, diags)
	m := p.ParseUnit()

	tab := symtab.NewTable(symtab.Skeptical, nil, nil)
	scope := tab.NewScope(symtab.ModuleScope, "M", nil, 0)
	env := &sema.Env{
		Tab:    tab,
		Search: &symtab.Searcher{Tab: tab, Ctx: ctx, Wait: func(*event.Event) {}},
		Ctx:    ctx, Diags: diags, File: "M.mod", Reg: vm.NewRegistry("M"),
	}
	a := sema.NewModuleAnalyzer(env, scope, "M.mod", "M", "M.mod", false)
	a.Analyze(m.Decls)
	a.ResolveForwardRefs()
	scope.Complete(ctx)
	return a, scope, diags
}

func lookup(t *testing.T, scope *symtab.Scope, name string) *symtab.Symbol {
	t.Helper()
	s := scope.OwnerProbe(name)
	if s == nil {
		t.Fatalf("symbol %s not found", name)
	}
	return s
}

func TestConstEvaluation(t *testing.T) {
	_, scope, diags := analyzeModule(t, `
CONST
  a = 2 + 3 * 4;
  b = a DIV 5;
  c = -7 MOD 3;  (* unary minus binds looser: -(7 MOD 3) *)
  d = 3.5 * 2.0;
  e = "x";
  f = ORD("A") + 1;
  g = CHR(66);
  h = a > 10;
  i = NOT h;
  j = MAX(INTEGER);
  k = MIN(CHAR);
  l = ABS(-9);
  m = ODD(3);
  n = TRUNC(2.9);
  o = FLOAT(4);
  p = VAL(CHAR, 67);
  q = SIZE(INTEGER);
  r = {1, 3..5};
  s = r + {0};
  u = 2 IN r;
`)
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	wantInt := map[string]int64{
		"a": 14, "b": 2, "c": -1, "f": 66, "g": 66, "l": 9, "n": 2, "p": 67,
		"q": int64(types.WordBytes), "j": 2147483647,
	}
	for name, want := range wantInt {
		if got := lookup(t, scope, name).Val.I; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if !lookup(t, scope, "h").Val.Bool() {
		t.Error("h = 14 > 10 must be true")
	}
	if lookup(t, scope, "i").Val.Bool() {
		t.Error("i = NOT h must be false")
	}
	if got := lookup(t, scope, "d").Val.F; got != 7.0 {
		t.Errorf("d = %v", got)
	}
	if got := lookup(t, scope, "r").Val.Set; got != 0b111010 {
		t.Errorf("r = %b", got)
	}
	if got := lookup(t, scope, "s").Val.Set; got != 0b111011 {
		t.Errorf("s = %b", got)
	}
	if lookup(t, scope, "u").Val.Bool() {
		t.Error("2 IN {1,3..5} must be false")
	}
}

func TestConstErrors(t *testing.T) {
	cases := map[string]string{
		"CONST a = 1 DIV 0;":     "division by zero",
		"CONST a = 1 + TRUE;":    "invalid constant operands",
		"CONST a = undeclared;":  "undeclared identifier",
		"CONST a = {70};":        "outside 0..63",
		"CONST a = WriteLn(1);":  "cannot be applied",
		"CONST a = 1.0 / 0.0;":   "division by zero",
		"CONST a = MIN(BITSET);": "ordinal or real",
	}
	for src, want := range cases {
		_, _, diags := analyzeModule(t, src)
		if !strings.Contains(diags.String(), want) {
			t.Errorf("%q: want %q in:\n%s", src, want, diags)
		}
	}
}

func TestSetMembershipConst(t *testing.T) {
	_, scope, diags := analyzeModule(t, "CONST r = {1, 3..5}; u = 4 IN r; v = 2 IN r;")
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	if !lookup(t, scope, "u").Val.Bool() {
		t.Error("4 IN {1,3..5} must be true")
	}
	if lookup(t, scope, "v").Val.Bool() {
		t.Error("2 IN {1,3..5} must be false")
	}
}

func TestEnumDeclaration(t *testing.T) {
	_, scope, diags := analyzeModule(t, "TYPE Color = (Red, Green, Blue);\nCONST c = Green;")
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	color := lookup(t, scope, "Color")
	if color.Kind != symtab.KType || color.Type.Kind != types.EnumK || color.Type.EnumLen != 3 {
		t.Fatal("enum type wrong")
	}
	green := lookup(t, scope, "Green")
	if green.Kind != symtab.KConst || green.Val.I != 1 || green.Type != color.Type {
		t.Fatal("enum constant wrong")
	}
	if got := lookup(t, scope, "c").Val.I; got != 1 {
		t.Fatal("enum const propagation wrong")
	}
}

func TestVarOffsetsAndGlobals(t *testing.T) {
	a, scope, diags := analyzeModule(t, `
TYPE R = RECORD x, y: INTEGER END;
VAR i: INTEGER; r: R; j: CHAR;
`)
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	i, r, j := lookup(t, scope, "i"), lookup(t, scope, "r"), lookup(t, scope, "j")
	if !i.Global || !r.Global || !j.Global {
		t.Fatal("module vars must be globals")
	}
	if i.Offset != 0 || r.Offset != 1 || j.Offset != 3 {
		t.Fatalf("offsets %d, %d, %d; want 0, 1, 3", i.Offset, r.Offset, j.Offset)
	}
	if a.NextOff != 4 {
		t.Fatalf("area size %d, want 4", a.NextOff)
	}
}

func TestForwardPointerResolution(t *testing.T) {
	_, scope, diags := analyzeModule(t, `
TYPE
  List = POINTER TO Node;
  Node = RECORD val: INTEGER; next: List END;
`)
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	list := lookup(t, scope, "List").Type
	node := lookup(t, scope, "Node").Type
	if list.Kind != types.PointerK || list.Base != node {
		t.Fatal("forward pointer not patched")
	}
	if f := node.FieldNamed("next"); f == nil || f.Type != list {
		t.Fatal("recursive field wrong")
	}
}

func TestUnresolvedForwardPointer(t *testing.T) {
	_, _, diags := analyzeModule(t, "TYPE P = POINTER TO Ghost;")
	if !strings.Contains(diags.String(), "undeclared identifier Ghost") {
		t.Fatalf("missing error:\n%s", diags)
	}
}

func TestProcedureHeadingAnalysis(t *testing.T) {
	a, scope, diags := analyzeModule(t, `
PROCEDURE F(x, y: INTEGER; VAR s: CHAR; a: ARRAY OF INTEGER): INTEGER;
BEGIN
  RETURN x
END F;
`)
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	f := lookup(t, scope, "F")
	if f.Kind != symtab.KProc || f.ProcIdx != 0 {
		t.Fatal("proc symbol wrong")
	}
	sig := f.Type
	if len(sig.Params) != 4 || !sig.Params[2].ByRef || !sig.Params[3].Open {
		t.Fatal("signature wrong")
	}
	if len(a.Children) != 1 {
		t.Fatal("no child produced")
	}
	child := a.Children[0]
	// Frame: x(1) + y(1) + s(1, VAR) + a(2, open) = 5 slots.
	if child.FrameBase != 5 {
		t.Fatalf("frame base %d, want 5", child.FrameBase)
	}
	if child.Meta.ArgSlots != 5 || !child.Meta.Exported || child.Meta.Level != 1 {
		t.Fatalf("meta wrong: %+v", child.Meta)
	}
	// The child scope holds the copied entries (§2.4 alternative 1).
	if child.Scope.OwnerProbe("x") == nil || child.Scope.OwnerProbe("F") == nil {
		t.Fatal("heading entries not copied into the child scope")
	}
	ps := child.Scope.OwnerProbe("s")
	if !ps.ByRef || ps.Offset != 2 {
		t.Fatal("VAR param addressing wrong")
	}
	pa := child.Scope.OwnerProbe("a")
	if !pa.Open || pa.Offset != 3 {
		t.Fatal("open param addressing wrong")
	}
}

func TestAggregateResultRejected(t *testing.T) {
	_, _, diags := analyzeModule(t, `
TYPE R = RECORD x: INTEGER END;
PROCEDURE F(): R;
BEGIN
END F;
`)
	if !strings.Contains(diags.String(), "must be scalar") {
		t.Fatalf("missing error:\n%s", diags)
	}
}

func TestExceptionNames(t *testing.T) {
	_, scope, diags := analyzeModule(t, "EXCEPTION Bad, Worse;")
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	bad := lookup(t, scope, "Bad")
	worse := lookup(t, scope, "Worse")
	if bad.Kind != symtab.KException || bad.ExcName == worse.ExcName || bad.ExcName == "" {
		t.Fatal("exceptions must get distinct qualified names")
	}
}

func TestOpaqueOnlyInDefinitions(t *testing.T) {
	_, _, diags := analyzeModule(t, "TYPE T;")
	if !strings.Contains(diags.String(), "only legal in a definition module") {
		t.Fatalf("missing error:\n%s", diags)
	}
}

func TestArrayIndexMustBeBounded(t *testing.T) {
	_, _, diags := analyzeModule(t, "TYPE A = ARRAY INTEGER OF CHAR;")
	if !strings.Contains(diags.String(), "bounded ordinal") {
		t.Fatalf("missing error:\n%s", diags)
	}
}

func TestSetBaseRange(t *testing.T) {
	_, _, diags := analyzeModule(t, "TYPE S = SET OF INTEGER;")
	if !strings.Contains(diags.String(), "within 0..63") {
		t.Fatalf("missing error:\n%s", diags)
	}
	_, scope, diags2 := analyzeModule(t, "TYPE S = SET OF [0..63];")
	if diags2.HasErrors() {
		t.Fatalf("%s", diags2)
	}
	if lookup(t, scope, "S").Type.Kind != types.SetK {
		t.Fatal("legal set rejected")
	}
}

func TestNestedProcedureLevels(t *testing.T) {
	a, _, diags := analyzeModule(t, `
PROCEDURE Outer;
BEGIN
END Outer;
`)
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	outer := a.Children[0]
	// Analyze Outer's (empty) declarations and then a nested child.
	if outer.Meta.Level != 1 || outer.Scope.Level != 1 {
		t.Fatal("outer level wrong")
	}
	if outer.ScopePath != "M.mod:Outer" {
		t.Fatalf("scope path %q", outer.ScopePath)
	}
}

func TestFloorDivMod(t *testing.T) {
	cases := []struct{ a, b, q, m int64 }{
		{7, 2, 3, 1},
		{-7, 2, -4, 1},
		{7, -2, -4, -1},
		{-7, -2, 3, -1},
		{6, 3, 2, 0},
		{-6, 3, -2, 0},
	}
	for _, c := range cases {
		if q := sema.FloorDiv(c.a, c.b); q != c.q {
			t.Errorf("FloorDiv(%d, %d) = %d, want %d", c.a, c.b, q, c.q)
		}
		if m := sema.FloorMod(c.a, c.b); m != c.m {
			t.Errorf("FloorMod(%d, %d) = %d, want %d", c.a, c.b, m, c.m)
		}
	}
}

func TestTypeSynonymIdentity(t *testing.T) {
	_, scope, diags := analyzeModule(t, "TYPE A = INTEGER; B = A;")
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	if lookup(t, scope, "A").Type != types.Integer || lookup(t, scope, "B").Type != types.Integer {
		t.Fatal("TYPE A = B must create a synonym (same *Type)")
	}
}

func TestStructuralTypesGetNames(t *testing.T) {
	_, scope, diags := analyzeModule(t, "TYPE R = RECORD x: INTEGER END;")
	if diags.HasErrors() {
		t.Fatalf("%s", diags)
	}
	if got := lookup(t, scope, "R").Type.Name; got != "R" {
		t.Fatalf("record named %q", got)
	}
}

func TestExcNameDeterministic(t *testing.T) {
	if sema.ExcName("M.mod:P", "e") != "M.mod:P:e" {
		t.Fatal("exception naming changed — cross-object unification depends on it")
	}
}

var _ = ast.Module{} // keep the ast import for the helpers above
