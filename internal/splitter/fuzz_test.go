package splitter_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/lexer"
	"m2cc/internal/source"
	"m2cc/internal/splitter"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
)

// splitResult is everything one splitter run produces, keyed so two
// runs over the same input are directly comparable: stream IDs are
// assigned by the single splitter goroutine in input order, so they
// are deterministic however the pipeline is scheduled.
type splitResult struct {
	main    []token.Token
	streams map[int32][]token.Token
	names   map[int32]string
	parents map[int32]int32
}

// runSplit lexes src and splits it.  With concurrent=true the lexer
// feeds the splitter from another goroutine and every queue is drained
// while being written — the production shape; otherwise each stage
// runs to completion before the next starts — the oracle.
func runSplit(src string, copyHeadings, concurrent bool) splitResult {
	files := source.NewSet()
	f := files.Add("T", source.Impl, src)
	in := tokq.New(4)

	res := splitResult{
		streams: make(map[int32][]token.Token),
		names:   make(map[int32]string),
		parents: make(map[int32]int32),
	}
	var mu sync.Mutex // guards: res maps and drain bookkeeping during the concurrent run
	var wg sync.WaitGroup
	drain := func(id int32, q *tokq.Queue) {
		defer wg.Done()
		r := q.NewReader(nil)
		var out []token.Token
		for {
			tok := r.Next()
			if tok.Kind == token.EOF {
				break
			}
			out = append(out, tok)
		}
		mu.Lock()
		if id >= 0 {
			res.streams[id] = out
		} else {
			res.main = out
		}
		mu.Unlock()
	}

	mainQ := tokq.New(4)
	queues := make(map[int32]*tokq.Queue) // sequential mode: drained after the splitter finishes
	next := int32(0)
	start := func(name string, pos token.Pos, parent int32) (int32, *tokq.Queue) {
		next++
		q := tokq.New(4)
		mu.Lock()
		res.names[next] = name
		res.parents[next] = parent
		mu.Unlock()
		if concurrent {
			wg.Add(1)
			go drain(next, q)
		} else {
			queues[next] = q
		}
		return next, q
	}

	runLexer := func() { lexer.Run(f, &ctrace.TaskCtx{}, diag.NewBag(0), in) }
	if concurrent {
		go runLexer()
		wg.Add(1)
		go drain(-1, mainQ)
		splitter.Run(&ctrace.TaskCtx{}, in.NewReader(nil), mainQ, start, copyHeadings)
	} else {
		runLexer()
		splitter.Run(&ctrace.TaskCtx{}, in.NewReader(nil), mainQ, start, copyHeadings)
		wg.Add(1)
		drain(-1, mainQ)
		for id, q := range queues {
			wg.Add(1)
			drain(id, q)
		}
	}
	wg.Wait()
	return res
}

// FuzzSplitterEndMatch fuzzes the stream splitter with arbitrary
// source text — truncated procedures, mismatched END names, nesting
// that never closes.  Two invariants, per §2.2 of the paper:
//
//  1. the splitter never panics, whatever the lexer feeds it, and
//  2. the fully concurrent pipeline (lexer feeding the splitter while
//     every stream is drained in parallel) produces exactly the
//     streams the stage-at-a-time oracle produces: same main stream,
//     same per-procedure token streams, names, and parent links.
//
// Seeds come from examples/modules plus hand-written END pathologies;
// the checked-in corpus lives in testdata/fuzz/FuzzSplitterEndMatch.
func FuzzSplitterEndMatch(f *testing.F) {
	for _, name := range []string{
		"Demo.mod", "Fib.def", "Fib.mod", "Shapes.def", "Shapes.mod",
		"LintClean.mod", "LintFindings.mod",
	} {
		b, err := os.ReadFile(filepath.Join("..", "..", "examples", "modules", name))
		if err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		f.Add(string(b))
	}
	f.Add("MODULE M;\nPROCEDURE P;\nBEGIN\nEND Q;\nEND M.\n")     // END name mismatch
	f.Add("MODULE M;\nPROCEDURE P;\n  PROCEDURE Q;\nBEGIN END")   // truncated nest
	f.Add("PROCEDURE")                                            // heading cut mid-air
	f.Add("MODULE M;\nPROCEDURE P(a: INTEGER;\nEND END END M.\n") // unbalanced ENDs
	f.Add("END END END")                                          // ENDs with no openings
	f.Add("MODULE M;\nVAR s: ARRAY [0..9] OF CHAR;\nBEGIN s := \"unterminated\nEND M.\n")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		for _, copyHeadings := range []bool{false, true} {
			seq := runSplit(src, copyHeadings, false)
			con := runSplit(src, copyHeadings, true)
			if !reflect.DeepEqual(seq.main, con.main) {
				t.Fatalf("copyHeadings=%v: main stream differs between sequential and concurrent split", copyHeadings)
			}
			if !reflect.DeepEqual(seq.names, con.names) || !reflect.DeepEqual(seq.parents, con.parents) {
				t.Fatalf("copyHeadings=%v: stream naming/parentage differs:\nseq: %v %v\ncon: %v %v",
					copyHeadings, seq.names, seq.parents, con.names, con.parents)
			}
			if !reflect.DeepEqual(seq.streams, con.streams) {
				t.Fatalf("copyHeadings=%v: procedure streams differ between sequential and concurrent split", copyHeadings)
			}
		}
	})
}
