package splitter_test

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/lexer"
	"m2cc/internal/source"
	"m2cc/internal/splitter"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
)

// split lexes src and runs the splitter, returning the main-stream
// tokens and each procedure stream's (name, tokens).
func split(t *testing.T, src string, copyHeadings bool) ([]token.Token, map[int32][]token.Token, map[int32]string, map[int32]int32) {
	t.Helper()
	files := source.NewSet()
	f := files.Add("T", source.Impl, src)
	in := tokq.New(8)
	lexer.Run(f, &ctrace.TaskCtx{}, diag.NewBag(0), in)

	mainQ := tokq.New(8)
	streams := make(map[int32]*tokq.Queue)
	names := make(map[int32]string)
	parents := make(map[int32]int32)
	next := int32(0)
	start := func(name string, pos token.Pos, parent int32) (int32, *tokq.Queue) {
		next++
		q := tokq.New(8)
		streams[next] = q
		names[next] = name
		parents[next] = parent
		return next, q
	}
	splitter.Run(&ctrace.TaskCtx{}, in.NewReader(nil), mainQ, start, copyHeadings)

	drain := func(q *tokq.Queue) []token.Token {
		r := q.NewReader(nil)
		var out []token.Token
		for {
			tok := r.Next()
			if tok.Kind == token.EOF {
				return out
			}
			out = append(out, tok)
		}
	}
	main := drain(mainQ)
	got := make(map[int32][]token.Token)
	for id, q := range streams {
		got[id] = drain(q)
	}
	return main, got, names, parents
}

const sample = `
MODULE M;
VAR g: INTEGER;

PROCEDURE Outer(a: INTEGER): INTEGER;
VAR t: INTEGER;

  PROCEDURE Inner(b: INTEGER): INTEGER;
  BEGIN
    IF b > 0 THEN RETURN b END;
    RETURN -b
  END Inner;

BEGIN
  t := Inner(a);
  WHILE t > 10 DO t := t DIV 2 END;
  RETURN t
END Outer;

PROCEDURE Simple;
BEGIN
  g := Outer(g)
END Simple;

BEGIN
  g := 1
END M.
`

func TestStreamsAndNesting(t *testing.T) {
	_, streams, names, parents := split(t, sample, false)
	if len(streams) != 3 {
		t.Fatalf("want 3 procedure streams, got %d", len(streams))
	}
	byName := map[string]int32{}
	for id, n := range names {
		byName[n] = id
	}
	if parents[byName["Outer"]] != 0 {
		t.Error("Outer's parent must be the main stream")
	}
	if parents[byName["Inner"]] != byName["Outer"] {
		t.Error("Inner's parent must be Outer's stream")
	}
	if parents[byName["Simple"]] != 0 {
		t.Error("Simple's parent must be the main stream")
	}
}

func TestMainStreamHasHeadingsAndBodyRefs(t *testing.T) {
	main, _, _, _ := split(t, sample, false)
	text := lexer.Print(main)
	for _, want := range []string{"PROCEDURE Outer ( a : INTEGER ) : INTEGER ;",
		"PROCEDURE Simple ;", "MODULE M ;", "BEGIN g := 1 END M ."} {
		flat := strings.Join(strings.Fields(want), " ")
		if !strings.Contains(strings.Join(strings.Fields(text), " "), flat) {
			t.Errorf("main stream missing %q in:\n%s", want, text)
		}
	}
	refs := 0
	for _, tok := range main {
		if tok.Kind == token.BodyRef {
			refs++
		}
	}
	if refs != 2 {
		t.Errorf("main stream must carry 2 BodyRefs (Outer, Simple), got %d", refs)
	}
}

func TestChildStreamContainsBody(t *testing.T) {
	_, streams, names, _ := split(t, sample, false)
	for id, name := range names {
		if name != "Inner" {
			continue
		}
		text := lexer.Print(streams[id])
		if !strings.Contains(text, "RETURN") || !strings.Contains(text, "Inner") {
			t.Errorf("Inner stream looks wrong:\n%s", text)
		}
		if strings.Contains(text, "PROCEDURE") {
			t.Error("alternative 1 must not copy the heading into the child stream")
		}
	}
}

func TestCopyHeadingsMode(t *testing.T) {
	_, streams, names, _ := split(t, sample, true)
	for id, name := range names {
		text := lexer.Print(streams[id])
		if !strings.Contains(text, "PROCEDURE "+name) {
			t.Errorf("alternative 3 must copy %s's heading into its stream:\n%s", name, text)
		}
	}
}

func TestProcedureTypesNotSplit(t *testing.T) {
	src := `
MODULE M;
TYPE F = PROCEDURE (INTEGER): INTEGER;
VAR f: F;
     g: PROCEDURE;
BEGIN
END M.
`
	_, streams, _, _ := split(t, src, false)
	if len(streams) != 0 {
		t.Fatalf("procedure types must not create streams, got %d", len(streams))
	}
}

func TestEndMatchingThroughRecordsAndCase(t *testing.T) {
	src := `
MODULE M;
PROCEDURE P;
TYPE R = RECORD
  CASE k: INTEGER OF
    0: a: INTEGER
  | 1: b: CHAR
  END
END;
VAR v: R;
BEGIN
  CASE v.k OF
    0: v.a := 1
  ELSE v.b := "x"
  END;
  LOOP EXIT END;
  WITH v DO a := 2 END
END P;
BEGIN
END M.
`
	main, streams, _, _ := split(t, src, false)
	if len(streams) != 1 {
		t.Fatalf("want 1 stream, got %d", len(streams))
	}
	// Everything after P's END must flow back to the main stream.
	text := lexer.Print(main)
	if !strings.HasSuffix(strings.TrimSpace(text), "END M .") {
		t.Errorf("main stream must end with END M .:\n%s", text)
	}
}

// reassemble reconstructs the original token sequence from the split
// streams by substituting each BodyRef with its stream's tokens plus
// the END name.
func reassemble(toks []token.Token, streams map[int32][]token.Token) []token.Token {
	var out []token.Token
	for _, tk := range toks {
		if tk.Kind == token.BodyRef {
			id, _ := strconv.Atoi(tk.Text)
			out = append(out, reassemble(streams[int32(id)], streams)...)
			continue
		}
		out = append(out, tk)
	}
	return out
}

// TestTokenConservation is the splitter's central invariant: splitting
// loses and invents nothing — substituting every BodyRef by its stream
// reproduces the original token sequence exactly.
func TestTokenConservation(t *testing.T) {
	check := func(seed int64) bool {
		src := randomModule(rand.New(rand.NewSource(seed)))
		files := source.NewSet()
		f := files.Add("T", source.Impl, src)
		orig := lexer.ScanAll(f, &ctrace.TaskCtx{}, diag.NewBag(0))
		orig = orig[:len(orig)-1]

		main, streams, _, _ := split(t, src, false)
		got := reassemble(main, streams)
		if len(got) != len(orig) {
			t.Logf("length %d != %d\nsource:\n%s", len(got), len(orig), src)
			return false
		}
		for i := range orig {
			if got[i].Kind != orig[i].Kind || got[i].Text != orig[i].Text {
				t.Logf("token %d differs: %v vs %v", i, got[i], orig[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomModule builds a random but structurally valid module with
// nested procedures and END-bearing statements.
func randomModule(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("MODULE R;\nVAR g: INTEGER;\n")
	var proc func(name string, depth int)
	proc = func(name string, depth int) {
		b.WriteString("PROCEDURE " + name)
		if r.Intn(2) == 0 {
			b.WriteString("(x: INTEGER)")
		}
		b.WriteString(";\n")
		if depth < 2 && r.Intn(3) == 0 {
			proc(name+"n", depth+1)
		}
		b.WriteString("BEGIN\n")
		for i := 0; i < r.Intn(4); i++ {
			switch r.Intn(4) {
			case 0:
				b.WriteString("  IF g > 0 THEN g := g - 1 END;\n")
			case 1:
				b.WriteString("  WHILE g > 0 DO g := g DIV 2 END;\n")
			case 2:
				b.WriteString("  LOOP EXIT END;\n")
			case 3:
				b.WriteString("  CASE g OF 0: g := 1 ELSE g := 2 END;\n")
			}
		}
		b.WriteString("END " + name + ";\n")
	}
	for i := 0; i < 1+r.Intn(4); i++ {
		proc("p"+strconv.Itoa(i), 0)
	}
	b.WriteString("BEGIN\n  g := 0\nEND R.\n")
	return b.String()
}

func TestUnterminatedProcedureStillCloses(t *testing.T) {
	// Malformed input: the module ends inside a procedure.  The splitter
	// must still close every stream so no consumer can hang.
	src := "MODULE M;\nPROCEDURE P;\nBEGIN\n  g := 1\n"
	main, streams, _, _ := split(t, src, false)
	_ = main
	if len(streams) != 1 {
		t.Fatalf("want 1 stream, got %d", len(streams))
	}
}
