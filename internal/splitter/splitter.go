// Package splitter implements the Splitter task: the finite-state
// recognizer of §2.1 that divides the implementation module's token
// stream into separately compilable procedure streams.
//
// Because Modula-2+ fixes program structure with reserved words, the
// splitter needs no parsing: it watches for PROCEDURE followed by an
// identifier (one token of lookahead distinguishes procedure
// declarations from procedure types), routes the heading to the parent
// stream, diverts the body tokens — tracking END-matching depth — to a
// freshly started child stream, and leaves a BodyRef marker where the
// body used to be.  Procedure nesting works by keeping a stack of
// output streams.
package splitter

import (
	"strconv"

	"m2cc/internal/ctrace"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
)

// StartProc is the driver callback invoked when the splitter detects a
// procedure declaration.  parent is the stream the declaration appears
// in (0 = the main module stream).  It returns the new stream's number
// and its token queue.
type StartProc func(name string, pos token.Pos, parent int32) (int32, *tokq.Queue)

// Sink observes the token traffic of a split, stream by stream, from
// the splitter task's own goroutine (no synchronization needed by
// implementations).  The stream cache's keyer implements it to hash
// exactly what each stream's parser will see: StartStream announces a
// new stream under its parent, Heading delivers the heading tokens of
// a procedure stream (always, in both header modes, so heading layout
// is part of the key even when only the parent parses it), Token
// mirrors every token appended to a stream's queue, EndStream marks a
// stream's queue closed, and Done marks the split complete — a split
// that panics never calls Done, leaving the observer incomplete.
type Sink interface {
	StartStream(id, parent int32, name string)
	Heading(id int32, toks []token.Token)
	Token(id int32, t token.Token)
	EndStream(id int32)
	Done()
}

// output is one entry of the splitter's stream stack.
type output struct {
	stream int32
	q      *tokq.Queue
	depth  int // outstanding ENDs within this procedure body
}

// Run splits the token stream arriving on in.  Tokens outside procedure
// bodies flow to mainOut; each procedure body flows to its own stream.
// copyHeadings selects §2.4 alternative 3: the heading tokens are
// duplicated into the child stream so the child can process its own
// heading (the default, alternative 1, gives the heading only to the
// parent, which copies the resulting symbol table entries).
//
// Run fires all queue events with the splitter task's context and is
// careful to close every stream even for malformed input, so no
// consumer can wait forever.
func Run(ctx *ctrace.TaskCtx, in *tokq.Reader, mainOut *tokq.Queue, start StartProc, copyHeadings bool) {
	RunObserved(ctx, in, mainOut, start, copyHeadings, nil)
}

// RunObserved is Run with an optional Sink mirroring the split's token
// traffic (nil = unobserved).  The sink is invoked synchronously from
// the splitter goroutine, in exactly the order tokens are appended.
func RunObserved(ctx *ctrace.TaskCtx, in *tokq.Reader, mainOut *tokq.Queue, start StartProc, copyHeadings bool, sink Sink) {
	mainOut.SetFireHook(ctx.FireEvent)
	stack := []*output{{stream: 0, q: mainOut}}
	top := func() *output { return stack[len(stack)-1] }
	if sink != nil {
		sink.StartStream(0, -1, "")
	}
	emit := func(o *output, t token.Token) {
		o.q.Append(t)
		if sink != nil {
			sink.Token(o.stream, t)
		}
	}

	// closeAll closes every open stream (defensively appending EOF) so
	// consumers always terminate.
	closeAll := func(eof token.Token) {
		for i := len(stack) - 1; i >= 0; i-- {
			emit(stack[i], eof)
			stack[i].q.Close()
			if sink != nil {
				sink.EndStream(stack[i].stream)
			}
		}
	}

	for {
		t := in.Next()
		ctx.Add(ctrace.CostSplitToken)
		switch {
		case t.Kind == token.EOF:
			closeAll(t)
			if sink != nil {
				sink.Done()
			}
			return

		case t.Kind == token.PROCEDURE && in.Peek().Kind == token.Ident:
			// A procedure declaration: stream off the body.
			parent := top()
			name := in.Peek().Text
			heading := collectHeading(ctx, t, in)
			for _, h := range heading {
				emit(parent, h)
			}
			stream, q := start(name, t.Pos, parent.stream)
			q.SetFireHook(ctx.FireEvent)
			if sink != nil {
				sink.StartStream(stream, parent.stream, name)
				sink.Heading(stream, heading)
			}
			emit(parent, token.Token{
				Kind: token.BodyRef, Pos: t.Pos, Text: strconv.Itoa(int(stream)),
			})
			// Let the parent's parser see the heading (and fire the
			// child's heading event) without waiting for a full block.
			parent.q.Flush()
			child := &output{stream: stream, q: q, depth: 1}
			if copyHeadings {
				for _, h := range heading {
					emit(child, h)
				}
			}
			stack = append(stack, child)

		case t.Kind == token.END && len(stack) > 1:
			cur := top()
			cur.depth--
			emit(cur, t)
			if cur.depth == 0 {
				// "END name" closes this procedure; the name goes to the
				// child, the following ";" flows to the parent normally.
				if in.Peek().Kind == token.Ident {
					name := in.Next()
					ctx.Add(ctrace.CostSplitToken)
					emit(cur, name)
				}
				emit(cur, token.Token{Kind: token.EOF, Pos: t.Pos})
				cur.q.Close()
				if sink != nil {
					sink.EndStream(cur.stream)
				}
				stack = stack[:len(stack)-1]
			}

		default:
			if t.Kind.OpensEnd() && len(stack) > 1 {
				top().depth++
			}
			emit(top(), t)
		}
	}
}

// collectHeading consumes and returns the tokens of a procedure heading
// "PROCEDURE name [ ( params ) ] [ : qualident ] ;", starting from the
// already-consumed PROCEDURE token.
func collectHeading(ctx *ctrace.TaskCtx, proc token.Token, in *tokq.Reader) []token.Token {
	heading := []token.Token{proc}
	parens := 0
	for {
		t := in.Next()
		ctx.Add(ctrace.CostSplitToken)
		heading = append(heading, t)
		switch t.Kind {
		case token.LParen:
			parens++
		case token.RParen:
			parens--
		case token.Semicolon:
			if parens <= 0 {
				return heading
			}
		case token.EOF:
			return heading
		}
	}
}
