// Package workload generates deterministic Modula-2+ programs shaped
// like the paper's evaluation inputs (§4.1): a 37-program test suite
// drawn against a shared library of definition modules with layered
// imports (standing in for the DEC SRC Modula-2+ library the authors
// used), the synthetic best-case module Synth.mod of §4.2, and random
// valid modules for the property-based differential tests.
//
// Everything is seeded and reproducible: the same seed yields byte-
// identical sources on every platform, which keeps the experiment
// harness deterministic end to end.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"m2cc/internal/source"
)

// LibLayers is the number of import layers in the generated library;
// a program importing from the top layer reaches the paper's maximum
// import-nesting depth of 12 (Table 1).
const LibLayers = 12

// LibPerLayer is the number of definition modules per layer; 12×12
// gives 144 interfaces, enough for the paper's maximum of 133 imported
// interfaces per compilation.
const LibPerLayer = 12

// DefModule describes one generated library interface.
type DefModule struct {
	Name    string
	Layer   int
	Imports []string // direct imports (library modules)

	Consts []string // declared constant names (unique across the library)
	Rec    string   // record type name (fields f0, f1, f2: INTEGER)
	Arr    string   // array type name (ARRAY [0..15] OF INTEGER)
	Vars   []string // INTEGER variable names
	Procs  []string // procedure names: Procs[0](x: INTEGER): INTEGER, Procs[1](VAR x: INTEGER)
}

// Library is the generated interface pool plus its import structure.
type Library struct {
	Defs   []*DefModule
	byName map[string]*DefModule
}

// Def returns the named interface, or nil.
func (l *Library) Def(name string) *DefModule { return l.byName[name] }

// Closure returns the number of interfaces imported directly or
// indirectly from the given direct-import set, and the maximum import
// nesting depth (Table 1's two import columns).
func (l *Library) Closure(direct []string) (count, depth int) {
	seen := make(map[string]int) // name → depth
	var visit func(name string) int
	visit = func(name string) int {
		if d, ok := seen[name]; ok {
			return d
		}
		seen[name] = 1 // cycle guard; the library is acyclic by layers
		d := 1
		m := l.byName[name]
		for _, imp := range m.Imports {
			if cd := visit(imp) + 1; cd > d {
				d = cd
			}
		}
		seen[name] = d
		return d
	}
	for _, name := range direct {
		if dd := visit(name); dd > depth {
			depth = dd
		}
	}
	return len(seen), depth
}

// GenerateLibrary builds the interface pool and registers each .def in
// loader.
func GenerateLibrary(seed int64, loader *source.MapLoader) *Library {
	r := rand.New(rand.NewSource(seed))
	lib := &Library{byName: make(map[string]*DefModule)}
	for i := 0; i < LibLayers*LibPerLayer; i++ {
		layer := i / LibPerLayer
		m := &DefModule{
			Name:  fmt.Sprintf("Lib%d", i),
			Layer: layer,
			Rec:   fmt.Sprintf("Rec%d", i),
			Arr:   fmt.Sprintf("Arr%d", i),
		}
		for c := 0; c < 3; c++ {
			m.Consts = append(m.Consts, fmt.Sprintf("k%d_%d", i, c))
		}
		for v := 0; v < 2; v++ {
			m.Vars = append(m.Vars, fmt.Sprintf("g%d_%d", i, v))
		}
		m.Procs = []string{fmt.Sprintf("fn%d_0", i), fmt.Sprintf("fn%d_1", i)}
		if layer > 0 {
			// Import one or two interfaces from the previous layer (a
			// leaner fan-out keeps transitive closures near the Table 1
			// targets).
			n := 1 + r.Intn(2)
			for k := 0; k < n; k++ {
				j := (layer-1)*LibPerLayer + r.Intn(LibPerLayer)
				imp := fmt.Sprintf("Lib%d", j)
				if !contains(m.Imports, imp) {
					m.Imports = append(m.Imports, imp)
				}
			}
			sort.Strings(m.Imports)
		}
		lib.Defs = append(lib.Defs, m)
		lib.byName[m.Name] = m
		loader.Add(m.Name, source.Def, defText(m, lib, r))
	}
	return lib
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// defText renders one library interface.
func defText(m *DefModule, lib *Library, r *rand.Rand) string {
	var b strings.Builder
	fmt.Fprintf(&b, "DEFINITION MODULE %s;\n", m.Name)
	// Half the imports arrive qualified, half via FROM (exercising both
	// halves of Table 2's qualified/alias statistics).
	for i, imp := range m.Imports {
		if i%2 == 0 {
			fmt.Fprintf(&b, "IMPORT %s;\n", imp)
		} else {
			dep := lib.byName[imp]
			fmt.Fprintf(&b, "FROM %s IMPORT %s;\n", imp, dep.Consts[0])
		}
	}
	b.WriteString("CONST\n")
	for i, c := range m.Consts {
		switch {
		case len(m.Imports) > 0 && i == 1:
			imp := m.Imports[0]
			dep := lib.byName[imp]
			if len(m.Imports) > 1 && len(m.Imports)%2 == 0 {
				// reference through the FROM alias
				alias := lib.byName[m.Imports[1]]
				fmt.Fprintf(&b, "  %s = %s + %d;\n", c, alias.Consts[0], 1+r.Intn(5))
			} else {
				fmt.Fprintf(&b, "  %s = %s.%s MOD 97 + %d;\n", c, imp, dep.Consts[0], 1+r.Intn(5))
			}
		default:
			fmt.Fprintf(&b, "  %s = %d;\n", c, 2+r.Intn(40))
		}
	}
	fmt.Fprintf(&b, "TYPE\n  %s = RECORD f0, f1, f2: INTEGER END;\n", m.Rec)
	fmt.Fprintf(&b, "  %s = ARRAY [0..15] OF INTEGER;\n", m.Arr)
	fmt.Fprintf(&b, "VAR\n  %s, %s: INTEGER;\n", m.Vars[0], m.Vars[1])
	fmt.Fprintf(&b, "PROCEDURE %s(x: INTEGER): INTEGER;\n", m.Procs[0])
	fmt.Fprintf(&b, "PROCEDURE %s(VAR x: INTEGER);\n", m.Procs[1])
	fmt.Fprintf(&b, "END %s.\n", m.Name)
	return b.String()
}
