package workload

import (
	"fmt"
	"math"
	"math/rand"

	"m2cc/internal/source"
)

// SuiteSize is the number of programs in the test suite (§4.1: "The
// suite of 37 programs used to evaluate our compiler").
const SuiteSize = 37

// Suite is a generated test suite plus the shared interface library.
type Suite struct {
	Loader   *source.MapLoader
	Library  *Library
	Programs []ProgramInfo
}

// twoSegment interpolates geometrically from lo through med (at the
// midpoint) to hi, reproducing the skewed-low distributions of Table 1.
func twoSegment(i, n int, lo, med, hi float64) float64 {
	mid := float64(n-1) / 2
	x := float64(i)
	if x <= mid {
		return lo * math.Pow(med/lo, x/mid)
	}
	return med * math.Pow(hi/med, (x-mid)/(float64(n-1)-mid))
}

// GenerateSuite builds the 37-program suite.  scale in (0,1] shrinks
// program bodies proportionally (the structure — imports, procedure
// counts, nesting — is preserved), letting tests run the full pipeline
// quickly while the benchmark harness uses scale 1.
func GenerateSuite(seed int64, scale float64) *Suite {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	loader := source.NewMapLoader()
	lib := GenerateLibrary(seed, loader)
	s := &Suite{Loader: loader, Library: lib}

	perm := rand.New(rand.NewSource(seed + 1)).Perm(SuiteSize)
	perm2 := rand.New(rand.NewSource(seed + 2)).Perm(SuiteSize)

	for i := 0; i < SuiteSize; i++ {
		// Table 1 targets: sizes 2,371..13,180..336,312 bytes; procedures
		// 2..16..221; imported interfaces 4..17..133; depth 1..5..12.
		targetBytes := twoSegment(i, SuiteSize, 2371, 13180, 336312) * scale
		procs := int(math.Round(twoSegment(i, SuiteSize, 2, 16, 221)))
		imports := int(math.Round(twoSegment(perm[i], SuiteSize, 4, 17, 133)))
		depth := int(math.Round(twoSegment(perm2[i], SuiteSize, 1, 5, 12)))

		// Body size from the byte budget: roughly 620 bytes of module
		// overhead + 28/import + 300/procedure skeleton + 560 per
		// statement-template repetition (×1.8 for the long/short
		// procedure size mix).
		overhead := 620.0 + 28*float64(imports) + 300*float64(procs)
		reps := int((targetBytes - overhead) / (560 * 1.8 * float64(procs)))
		if reps < 1 {
			reps = 1
		}
		spec := ProgramSpec{
			Name:          fmt.Sprintf("Prog%02d", i),
			Seed:          seed + int64(100+i),
			Procs:         procs,
			StmtReps:      reps,
			TargetImports: imports,
			TargetDepth:   depth,
			NestedEvery:   6,
			CallsForward:  true,
		}
		s.Programs = append(s.Programs, GenerateProgram(spec, lib, loader))
	}
	return s
}

// GenerateSynth builds the synthetic best-case module of §4.2: ample
// parallel work (many same-sized, mutually independent procedures,
// plus interface streams whose lexing parallelizes the front end) and
// no DKY blockages (procedure bodies touch only parameters, locals and
// pervasive builtins, and no imported name is ever referenced; the
// module table, holding just the headings, completes almost
// immediately).  It registers Synth.mod in loader and returns its
// info.  imports lists interfaces pulled in purely for parallel work
// (may be nil; they must already exist in loader).
func GenerateSynth(loader *source.MapLoader, procs, reps int, imports []string) ProgramInfo {
	if procs <= 0 {
		procs = 48
	}
	if reps <= 0 {
		reps = 8
	}
	var b []byte
	w := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)...) }
	w("MODULE Synth;\n")
	for _, imp := range imports {
		w("IMPORT %s;\n", imp)
	}
	w("VAR total: INTEGER;\n")
	for k := 0; k < procs; k++ {
		w("\nPROCEDURE work%d(x, y: INTEGER): INTEGER;\nVAR i, j, acc: INTEGER;\nBEGIN\n  acc := x;\n", k)
		for rep := 0; rep < reps; rep++ {
			w("  FOR i := 0 TO 9 DO\n    FOR j := 0 TO 4 DO\n      acc := acc + i * j + y\n    END\n  END;\n")
			w("  IF ODD(acc) THEN acc := acc + 1 ELSE acc := acc DIV 2 END;\n")
			w("  WHILE acc > 1000 DO acc := acc DIV 3 END;\n")
		}
		w("  RETURN acc\nEND work%d;\n", k)
	}
	w("\nBEGIN\n  total := 0;\n")
	for k := 0; k < procs; k++ {
		w("  total := total + work%d(%d, %d);\n", k, k+1, (k*7)%5+1)
	}
	w("  WriteInt(total, 8); WriteLn\nEND Synth.\n")
	loader.Add("Synth", source.Impl, string(b))
	return ProgramInfo{
		Name: "Synth", Bytes: len(b), Procedures: procs,
		Imports: len(imports), Streams: 1 + procs + len(imports),
	}
}

// RandomSpec draws a small random program spec for property-based
// differential tests.  selfContained specs import nothing and only call
// earlier procedures, so the generated program also runs (terminates)
// on the VM.
func RandomSpec(r *rand.Rand, name string, selfContained bool) ProgramSpec {
	spec := ProgramSpec{
		Name:         name,
		Seed:         r.Int63(),
		Procs:        1 + r.Intn(8),
		StmtReps:     1 + r.Intn(4),
		NestedEvery:  []int{0, 2, 3}[r.Intn(3)],
		CallsForward: !selfContained,
	}
	if !selfContained {
		spec.TargetImports = 1 + r.Intn(20)
		spec.TargetDepth = 1 + r.Intn(6)
	}
	return spec
}
