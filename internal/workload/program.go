package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"m2cc/internal/source"
)

// ProgramSpec parameterizes one generated implementation module.
type ProgramSpec struct {
	Name          string
	Seed          int64
	Procs         int  // number of top-level procedures
	StmtReps      int  // body size: repetitions of the statement template
	TargetImports int  // transitive interface count to aim for (0 = none)
	TargetDepth   int  // import nesting depth to aim for (0 = none)
	NestedEvery   int  // every n-th procedure gets a nested procedure (0 = never)
	CallsForward  bool // allow calls to procedures declared later (compile-only programs)
}

// ProgramInfo describes a generated program (the Table 1 attributes).
type ProgramInfo struct {
	Name        string
	Bytes       int
	Procedures  int // procedures incl. nested ones
	Imports     int // transitively imported interfaces
	ImportDepth int
	Streams     int // 1 + procedures + imports (the paper's stream count)
}

// GenerateProgram renders the spec into loader and returns its info.
// lib may be nil when the spec imports nothing.
func GenerateProgram(spec ProgramSpec, lib *Library, loader *source.MapLoader) ProgramInfo {
	r := rand.New(rand.NewSource(spec.Seed))
	g := &progGen{spec: spec, lib: lib, r: r}
	text := g.generate()
	loader.Add(spec.Name, source.Impl, text)
	nested := 0
	if spec.NestedEvery > 0 {
		// Procedures k with k % NestedEvery == NestedEvery-1 get a
		// nested helper: that is floor(Procs / NestedEvery) of them.
		nested = spec.Procs / spec.NestedEvery
	}
	info := ProgramInfo{
		Name:       spec.Name,
		Bytes:      len(text),
		Procedures: spec.Procs + nested,
	}
	if lib != nil && len(g.direct) > 0 {
		info.Imports, info.ImportDepth = lib.Closure(g.direct)
	}
	info.Streams = 1 + info.Procedures + info.Imports
	return info
}

type progGen struct {
	spec   ProgramSpec
	lib    *Library
	r      *rand.Rand
	b      strings.Builder
	direct []string // direct imports
	froms  []string // modules imported via FROM (subset of direct)
}

// pickImports selects direct imports to reach the target depth and
// transitive interface count.
func (g *progGen) pickImports() {
	spec := g.spec
	if g.lib == nil || spec.TargetImports <= 0 {
		return
	}
	depth := spec.TargetDepth
	// Reaching the transitive-import target needs enough layers to draw
	// from: layer k adds at most LibPerLayer interfaces.
	if need := (spec.TargetImports + LibPerLayer - 1) / LibPerLayer; depth < need {
		depth = need
	}
	if depth < 1 {
		depth = 1
	}
	if depth > LibLayers {
		depth = LibLayers
	}
	add := func(name string) {
		if !contains(g.direct, name) {
			g.direct = append(g.direct, name)
		}
	}
	// One interface from the layer that realizes the target depth.
	add(fmt.Sprintf("Lib%d", (depth-1)*LibPerLayer+g.r.Intn(LibPerLayer)))
	for tries := 0; tries < 400; tries++ {
		count, _ := g.lib.Closure(g.direct)
		if count >= spec.TargetImports {
			break
		}
		layer := g.r.Intn(depth)
		add(fmt.Sprintf("Lib%d", layer*LibPerLayer+g.r.Intn(LibPerLayer)))
	}
	sort.Strings(g.direct)
	// A third of the direct imports also get FROM-imported names, which
	// populate Table 2's "other" rows for simple identifiers.
	for i, name := range g.direct {
		if i%3 == 1 {
			g.froms = append(g.froms, name)
		}
	}
}

func (g *progGen) generate() string {
	spec := g.spec
	g.pickImports()
	w := func(format string, args ...any) { fmt.Fprintf(&g.b, format, args...) }

	w("MODULE %s;\n", spec.Name)
	for _, name := range g.direct {
		w("IMPORT %s;\n", name)
	}
	for _, name := range g.froms {
		m := g.lib.Def(name)
		w("FROM %s IMPORT %s, %s;\n", name, m.Consts[0], m.Procs[0])
	}

	// Module-level declarations.
	w("CONST\n  mc0 = %d;\n  mc1 = %d;\n", 3+g.r.Intn(20), 2+g.r.Intn(9))
	if len(g.direct) > 0 {
		m := g.lib.Def(g.direct[g.r.Intn(len(g.direct))])
		w("  mc2 = %s.%s + 1;\n", m.Name, m.Consts[0])
	} else {
		w("  mc2 = mc0 * 2;\n")
	}
	w("TYPE\n")
	w("  MRec = RECORD a, b, c: INTEGER END;\n")
	w("  MArr = ARRAY [0..31] OF INTEGER;\n")
	w("  Hue = (HueRed, HueGreen, HueBlue);\n")
	w("VAR\n  mv0, mv1: INTEGER;\n  mrec: MRec;\n  marr: MArr;\n  mhue: Hue;\n")

	for k := 0; k < spec.Procs; k++ {
		g.procedure(k)
	}

	// Module body.
	w("BEGIN\n")
	w("  mv0 := mc0; mv1 := mc2;\n  mhue := HueGreen;\n")
	if spec.Procs > 0 {
		w("  mv1 := proc0(mv0, mc1);\n")
	}
	w("  WriteInt(mv1, 6); WriteLn\nEND %s.\n", spec.Name)
	return g.b.String()
}

// procedure emits one top-level procedure with spec.StmtReps copies of
// the statement template.
func (g *progGen) procedure(k int) {
	spec := g.spec
	w := func(format string, args ...any) { fmt.Fprintf(&g.b, format, args...) }
	nested := spec.NestedEvery > 0 && k%spec.NestedEvery == spec.NestedEvery-1

	w("\nPROCEDURE proc%d(x, y: INTEGER): INTEGER;\n", k)
	w("VAR i, acc: INTEGER; r: MRec; a: MArr;\n")
	if nested {
		w("  PROCEDURE inner%d(z: INTEGER): INTEGER;\n", k)
		w("  BEGIN\n    RETURN z * 2 + mv0 + mc1\n  END inner%d;\n\n", k)
	}
	w("BEGIN\n  acc := x + mc0;\n")
	// Real modules mix short helpers with a few long workhorses; the
	// size spread is what makes the §2.3.4 long-before-short scheduling
	// rule matter (one worker grinding through a big procedure at the
	// end while the others sit idle).
	reps := spec.StmtReps
	switch {
	case k%7 == 3:
		reps *= 5
	case k%3 == 1:
		reps *= 2
	}
	for rep := 0; rep < reps; rep++ {
		g.stmtGroup(k, rep)
	}
	if nested {
		w("  acc := acc + inner%d(x);\n", k)
	}
	// Call another procedure: earlier-only for runnable programs, any
	// index for compile-only ones (resolved after the table completes —
	// the concurrent compiler's deferred statement analysis allows it).
	if k > 0 || spec.CallsForward {
		j := g.r.Intn(spec.Procs)
		if !spec.CallsForward && j >= k {
			j = g.r.Intn(k)
		}
		if j != k {
			w("  IF x > y THEN acc := acc + proc%d(y, x MOD 7) END;\n", j)
		}
	}
	w("  mv1 := mv1 + 1;\n")
	w("  RETURN acc\nEND proc%d;\n", k)
}

// stmtGroup emits one copy of the statement template, varying the
// details with the generator's random stream.
func (g *progGen) stmtGroup(k, rep int) {
	w := func(format string, args ...any) { fmt.Fprintf(&g.b, format, args...) }
	r := g.r

	// A FOR loop accumulating through locals and module constants.
	w("  FOR i := 0 TO (y MOD %d) + %d DO\n", 5+r.Intn(9), 1+r.Intn(3))
	w("    acc := acc + i * mc%d;\n", r.Intn(3))
	w("    a[i MOD 32] := acc MOD %d\n  END;\n", 50+r.Intn(100))

	// Conditionals over builtins (Table 2's Builtin rows).
	w("  IF ODD(acc) THEN acc := acc + %d ELSE acc := acc DIV 2 END;\n", 1+r.Intn(4))

	// A reference into an imported interface (qualified lookups).
	if len(g.direct) > 0 && r.Intn(2) == 0 {
		m := g.lib.Def(g.direct[r.Intn(len(g.direct))])
		switch r.Intn(3) {
		case 0:
			w("  acc := acc + %s.%s;\n", m.Name, m.Consts[r.Intn(len(m.Consts))])
		case 1:
			w("  %s.%s := acc;\n", m.Name, m.Vars[0])
		default:
			w("  acc := acc + %s.%s(acc MOD 9);\n", m.Name, m.Procs[0])
		}
	}
	if len(g.froms) > 0 && r.Intn(3) == 0 {
		m := g.lib.Def(g.froms[r.Intn(len(g.froms))])
		w("  acc := acc + %s;\n", m.Consts[0])
	}

	// WITH over the local record (Table 2's WITH rows).
	w("  WITH r DO a := acc; b := a + x; c := b - y END;\n")
	w("  acc := acc + r.c;\n")

	// CASE with ranges and ELSE.
	w("  CASE acc MOD 6 OF\n    0: acc := acc + 1\n  | 1, 2: acc := acc + 2\n  | 3 .. 4: acc := acc + x MOD 3\n  ELSE acc := acc - 1\n  END;\n")

	// Outer-scope traffic (module variables).
	w("  mv0 := mv0 + acc MOD %d;\n", 3+r.Intn(7))

	// A bounded WHILE.
	w("  WHILE acc > %d DO acc := acc DIV 2 END;\n", 500+r.Intn(4000))
}
