package workload_test

import (
	"math/rand"
	"strings"
	"testing"

	"m2cc/internal/seq"
	"m2cc/internal/source"
	"m2cc/internal/workload"
)

func TestSuiteCompilesCleanly(t *testing.T) {
	s := workload.GenerateSuite(1992, 0.1)
	if len(s.Programs) != workload.SuiteSize {
		t.Fatalf("got %d programs", len(s.Programs))
	}
	for _, p := range s.Programs {
		res := seq.Compile(p.Name, s.Loader)
		if res.Failed() {
			t.Fatalf("%s fails to compile:\n%s", p.Name, res.Diags)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	s := workload.GenerateSuite(1992, 1.0)
	minB, maxB := 1<<60, 0
	minI, maxI, maxD, maxP := 1<<60, 0, 0, 0
	for _, p := range s.Programs {
		if p.Bytes < minB {
			minB = p.Bytes
		}
		if p.Bytes > maxB {
			maxB = p.Bytes
		}
		if p.Imports < minI {
			minI = p.Imports
		}
		if p.Imports > maxI {
			maxI = p.Imports
		}
		if p.ImportDepth > maxD {
			maxD = p.ImportDepth
		}
		if p.Procedures > maxP {
			maxP = p.Procedures
		}
	}
	t.Logf("bytes %d..%d imports %d..%d depth max %d procs max %d", minB, maxB, minI, maxI, maxD, maxP)
	if minB > 4000 || maxB < 150000 {
		t.Errorf("size range off: %d..%d", minB, maxB)
	}
	if maxI < 80 {
		t.Errorf("import range off: %d..%d", minI, maxI)
	}
	if maxD < 9 {
		t.Errorf("depth max off: %d", maxD)
	}
	if maxP < 150 {
		t.Errorf("proc max off: %d", maxP)
	}
}

func TestSynthCompiles(t *testing.T) {
	loader := source.NewMapLoader()
	workload.GenerateSynth(loader, 16, 3, nil)
	res := seq.Compile("Synth", loader)
	if res.Failed() {
		t.Fatalf("Synth fails:\n%s", res.Diags)
	}
}

func TestRandomProgramsCompile(t *testing.T) {
	loader := source.NewMapLoader()
	lib := workload.GenerateLibrary(7, loader)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		spec := workload.RandomSpec(r, "Rnd", i%2 == 0)
		var uselib *workload.Library
		if spec.TargetImports > 0 {
			uselib = lib
		}
		workload.GenerateProgram(spec, uselib, loader)
		res := seq.Compile("Rnd", loader)
		if res.Failed() {
			t.Fatalf("random program %d (seed %d) fails:\n%s", i, spec.Seed, res.Diags)
		}
	}
}

func TestProcedureSizeMix(t *testing.T) {
	// The §2.3.4 long-before-short rule only matters if procedure sizes
	// vary; the generator must produce a genuine spread.
	loader := source.NewMapLoader()
	info := workload.GenerateProgram(workload.ProgramSpec{
		Name: "Mix", Seed: 42, Procs: 14, StmtReps: 2, CallsForward: true,
	}, nil, loader)
	if info.Procedures != 14 {
		t.Fatalf("procs = %d", info.Procedures)
	}
	text, _ := loader.Load("Mix", source.Impl)
	// Count statement-template repetitions per procedure by counting
	// the WITH lines between procedure headers.
	counts := map[int]int{}
	proc := -1
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "PROCEDURE proc") {
			proc++
		}
		if strings.Contains(line, "WITH r DO") && proc >= 0 {
			counts[proc]++
		}
	}
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < min*3 {
		t.Fatalf("procedure size spread too flat: min %d, max %d", min, max)
	}
}

func TestSynthWithImports(t *testing.T) {
	loader := source.NewMapLoader()
	workload.GenerateLibrary(1, loader)
	info := workload.GenerateSynth(loader, 8, 2, []string{"Lib0", "Lib1"})
	if info.Imports != 2 || info.Streams != 11 {
		t.Fatalf("info %+v", info)
	}
	res := seq.Compile("Synth", loader)
	if res.Failed() {
		t.Fatalf("Synth with imports fails:\n%s", res.Diags)
	}
}
