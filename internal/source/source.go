// Package source manages the source text of a compilation: the
// implementation module (M.mod) plus every definition module (X.def)
// reachable through imports.
//
// The compiler never touches the file system directly; it asks a Loader
// for module text.  This keeps the whole compiler usable in-memory (the
// workload generator and the test suite depend on that) while cmd/m2c
// supplies a disk-backed Loader.
package source

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Hash is a stable content hash of one module file's text.  The
// interface cache keys compiled definition modules by the combined
// hash of their transitive import closure, so any textual change to a
// .def (or to anything it imports) invalidates dependent entries.
type Hash [sha256.Size]byte

// HashText hashes module source text.
func HashText(text string) Hash { return sha256.Sum256([]byte(text)) }

func (h Hash) String() string { return fmt.Sprintf("%x", h[:8]) }

// FileKind distinguishes the two halves of a Modula-2+ module.
type FileKind uint8

const (
	// Def is a definition module file (M.def).
	Def FileKind = iota
	// Impl is an implementation module file (M.mod).
	Impl
)

func (k FileKind) String() string {
	if k == Def {
		return "def"
	}
	return "mod"
}

// Ext returns the conventional file extension for the kind.
func (k FileKind) Ext() string {
	if k == Def {
		return ".def"
	}
	return ".mod"
}

// A Loader resolves module names to source text.  Load is called
// concurrently from importer tasks and must be safe for concurrent use.
type Loader interface {
	// Load returns the text of the named module file.  It returns an
	// error if the module is unknown.
	Load(name string, kind FileKind) (string, error)
}

// MapLoader is an in-memory Loader keyed by "Name.def" / "Name.mod".
// The zero value is empty and ready to use after the first Add.
type MapLoader struct {
	mu    sync.RWMutex // guards: files
	files map[string]string
}

// NewMapLoader returns an empty in-memory loader.
func NewMapLoader() *MapLoader {
	return &MapLoader{files: make(map[string]string)}
}

// Add registers module text under the given name and kind, replacing any
// previous text.
func (l *MapLoader) Add(name string, kind FileKind, text string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.files == nil {
		l.files = make(map[string]string)
	}
	l.files[name+kind.Ext()] = text
}

// Load implements Loader.
func (l *MapLoader) Load(name string, kind FileKind) (string, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	text, ok := l.files[name+kind.Ext()]
	if !ok {
		return "", fmt.Errorf("module %s%s not found", name, kind.Ext())
	}
	return text, nil
}

// Names returns the registered file names in sorted order (for listings
// and tests).
func (l *MapLoader) Names() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.files))
	for n := range l.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DirLoader loads module files from one or more directories, first match
// wins.  It is safe for concurrent use.
type DirLoader struct {
	Dirs []string
}

// Load implements Loader by searching each directory for Name.def or
// Name.mod.
func (l *DirLoader) Load(name string, kind FileKind) (string, error) {
	base := name + kind.Ext()
	for _, dir := range l.Dirs {
		data, err := os.ReadFile(filepath.Join(dir, base))
		if err == nil {
			return string(data), nil
		}
		if !os.IsNotExist(err) {
			return "", err
		}
	}
	return "", fmt.Errorf("module %s not found in %v", base, l.Dirs)
}

// File describes one source file participating in a compilation.  The
// Set assigns each file a small integer ID used in token positions.
type File struct {
	ID   int32
	Name string // module name, without extension
	Kind FileKind
	Text string
}

// Label returns "Name.def" or "Name.mod".
func (f *File) Label() string { return f.Name + f.Kind.Ext() }

// Set is the collection of files seen by one compilation.  Importer
// tasks register files concurrently; token positions refer to files by
// ID.  A Set must not be shared between compilations.
type Set struct {
	mu    sync.RWMutex // guards: files
	files []*File      // index = ID-1
}

// NewSet returns an empty file set.
func NewSet() *Set { return &Set{} }

// Add registers a file and returns it with its assigned ID.
func (s *Set) Add(name string, kind FileKind, text string) *File {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := &File{ID: int32(len(s.files) + 1), Name: name, Kind: kind, Text: text}
	s.files = append(s.files, f)
	return f
}

// ByID returns the file with the given ID, or nil for ID 0 / unknown.
func (s *Set) ByID(id int32) *File {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 1 || int(id) > len(s.files) {
		return nil
	}
	return s.files[id-1]
}

// Len returns the number of registered files.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}
