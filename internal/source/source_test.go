package source_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"m2cc/internal/source"
)

func TestMapLoaderAddLoad(t *testing.T) {
	l := source.NewMapLoader()
	l.Add("M", source.Def, "def text")
	l.Add("M", source.Impl, "impl text")
	if got, err := l.Load("M", source.Def); err != nil || got != "def text" {
		t.Fatalf("Load def = %q, %v", got, err)
	}
	if got, err := l.Load("M", source.Impl); err != nil || got != "impl text" {
		t.Fatalf("Load impl = %q, %v", got, err)
	}
	if _, err := l.Load("N", source.Def); err == nil {
		t.Fatal("missing module must error")
	}
}

func TestMapLoaderNamesSorted(t *testing.T) {
	l := source.NewMapLoader()
	l.Add("B", source.Impl, "")
	l.Add("A", source.Def, "")
	l.Add("A", source.Impl, "")
	want := []string{"A.def", "A.mod", "B.mod"}
	if got := l.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

func TestMapLoaderConcurrent(t *testing.T) {
	l := source.NewMapLoader()
	l.Add("M", source.Def, "x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, err := l.Load("M", source.Def); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestDirLoader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "X.def"), []byte("DEF"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := &source.DirLoader{Dirs: []string{t.TempDir(), dir}}
	if got, err := l.Load("X", source.Def); err != nil || got != "DEF" {
		t.Fatalf("Load = %q, %v", got, err)
	}
	if _, err := l.Load("X", source.Impl); err == nil {
		t.Fatal("missing .mod must error")
	}
}

func TestFileSetIDs(t *testing.T) {
	s := source.NewSet()
	a := s.Add("A", source.Def, "aaa")
	b := s.Add("B", source.Impl, "bbb")
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("IDs = %d, %d; want 1, 2", a.ID, b.ID)
	}
	if got := s.ByID(2); got == nil || got.Label() != "B.mod" {
		t.Fatalf("ByID(2) = %v", got)
	}
	if s.ByID(0) != nil || s.ByID(3) != nil {
		t.Fatal("out-of-range IDs must return nil")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestFileKindExt(t *testing.T) {
	if source.Def.Ext() != ".def" || source.Impl.Ext() != ".mod" {
		t.Fatal("wrong extensions")
	}
	if source.Def.String() != "def" || source.Impl.String() != "mod" {
		t.Fatal("wrong kind names")
	}
}
