package ctrace

import (
	"reflect"
	"testing"
)

// TestIDBasedBuildAPI exercises the trace-construction surface the
// simulator tests and the obs→ctrace exporter rely on: pre-allocated
// event IDs, fire/wait/spawn records by ID, and scope gates.
func TestIDBasedBuildAPI(t *testing.T) {
	r := NewRecorder()
	prod := r.RegisterTask(KindModParseDecl, 1, "prod")
	cons := r.RegisterTask(KindProcParseDecl, 2, "cons")
	r.FinishTask(prod, 100)
	r.FinishTask(cons, 40)

	// NewEventID hands out dense identities without recording a fire.
	e1 := r.NewEventID()
	e2 := r.NewEventID()
	if e1 == 0 || e2 == 0 || e1 == e2 {
		t.Fatalf("NewEventID gave %v, %v: want two distinct nonzero IDs", e1, e2)
	}

	// FireIDs allocates-and-fires in one step; the ID keeps advancing
	// past pre-allocated ones.
	e3 := r.FireIDs(prod, 50)
	if e3 == e1 || e3 == e2 {
		t.Fatalf("FireIDs reused an allocated ID: %v", e3)
	}

	r.NoteFireID(e1, prod, 80)
	r.NoteFireID(e2, 0, 0) // pre-fired (task 0)
	r.NoteWaitIDs(cons, 10, e1, false)
	r.NoteWaitIDs(cons, 30, e3, true)
	r.NoteSpawnIDs(0, Stamp{}, prod, nil)
	r.NoteSpawnIDs(prod, Stamp{Task: prod, Offset: 5}, cons, []EventID{e2})
	r.NoteScopeGateID(cons, e3)

	tr := r.Trace()
	if len(tr.Tasks) != 2 || tr.TotalCost() != 140 {
		t.Fatalf("tasks %d, total cost %v; want 2 tasks of 140 units", len(tr.Tasks), tr.TotalCost())
	}
	if tr.Events < 3 {
		t.Errorf("Events = %d, want >= 3 allocated identities", tr.Events)
	}

	wantFires := []FireRecord{
		{Event: e3, At: Stamp{Task: prod, Offset: 50}},
		{Event: e1, At: Stamp{Task: prod, Offset: 80}},
		{Event: e2, At: Stamp{Task: 0, Offset: 0}},
	}
	if !reflect.DeepEqual(tr.Fires, wantFires) {
		t.Errorf("Fires = %+v\nwant %+v", tr.Fires, wantFires)
	}
	wantWaits := []WaitRecord{
		{Event: e1, At: Stamp{Task: cons, Offset: 10}},
		{Event: e3, At: Stamp{Task: cons, Offset: 30}, Barrier: true},
	}
	if !reflect.DeepEqual(tr.Waits, wantWaits) {
		t.Errorf("Waits = %+v\nwant %+v", tr.Waits, wantWaits)
	}
	if len(tr.Spawns) != 2 || tr.Spawns[1].Parent != prod || tr.Spawns[1].Child != cons {
		t.Errorf("Spawns = %+v", tr.Spawns)
	}
	if !reflect.DeepEqual(tr.Spawns[1].Gates, []EventID{e2}) {
		t.Errorf("spawn gates = %+v, want [%v]", tr.Spawns[1].Gates, e2)
	}
	if !reflect.DeepEqual(tr.ScopeGates[cons], []EventID{e3}) {
		t.Errorf("scope gates = %+v, want [%v]", tr.ScopeGates[cons], e3)
	}
}

// TestNoteSpawnIDsCopiesGates pins that the recorder copies the gate
// slice: callers may reuse their scratch buffer.
func TestNoteSpawnIDsCopiesGates(t *testing.T) {
	r := NewRecorder()
	child := r.RegisterTask(KindLexor, 1, "child")
	r.FinishTask(child, 10)
	gates := []EventID{r.NewEventID()}
	r.NoteSpawnIDs(0, Stamp{}, child, gates)
	orig := gates[0]
	gates[0] = 999 // caller clobbers its buffer
	tr := r.Trace()
	if tr.Spawns[0].Gates[0] != orig {
		t.Fatalf("recorded gate %v followed the caller's mutation, want %v",
			tr.Spawns[0].Gates[0], orig)
	}
}
