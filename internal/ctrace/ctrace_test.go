package ctrace_test

import (
	"sync"
	"testing"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
)

func TestTaskKindGlyphsAndNames(t *testing.T) {
	for k := ctrace.TaskKind(0); k < ctrace.NumTaskKinds; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
		if k.Glyph() == '?' {
			t.Errorf("kind %d has no glyph", k)
		}
	}
	if ctrace.KindLexor.Glyph() != 'L' || ctrace.KindMerge.Glyph() != 'M' {
		t.Error("glyph mapping changed — timeline renders depend on it")
	}
}

func TestMeterAccumulation(t *testing.T) {
	ctx := &ctrace.TaskCtx{}
	ctx.Add(1.5)
	ctx.Add(2.5)
	if ctx.Now() != 4.0 {
		t.Fatalf("Now = %f", ctx.Now())
	}
	st := ctx.Stamp()
	if st.Offset != 4.0 {
		t.Fatalf("Stamp offset = %f", st.Offset)
	}
	var nilCtx *ctrace.TaskCtx
	if nilCtx.Stamp() != (ctrace.Stamp{}) {
		t.Fatal("nil ctx must stamp zero")
	}
}

func TestFireEventWithoutRecorder(t *testing.T) {
	ctx := &ctrace.TaskCtx{}
	e := event.New()
	ctx.FireEvent(e) // must not panic with Rec == nil
	if !e.Fired() {
		t.Fatal("event not fired")
	}
	ctx.NoteWait(e)
	ctx.NoteBarrier(e)
}

func TestRecorderRoundTrip(t *testing.T) {
	rec := ctrace.NewRecorder()
	id1 := rec.RegisterTask(ctrace.KindLexor, 1, "lex")
	id2 := rec.RegisterTask(ctrace.KindSplitter, 1, "split")
	if id1 != 1 || id2 != 2 {
		t.Fatal("task IDs must be dense from 1")
	}
	ctx := &ctrace.TaskCtx{ID: id1, Rec: rec}
	e := event.New()
	ctx.Add(10)
	ctx.FireEvent(e)
	ctx2 := &ctrace.TaskCtx{ID: id2, Rec: rec}
	ctx2.Add(3)
	ctx2.NoteBarrier(e)
	rec.NoteSpawn(id1, ctx.Stamp(), id2, []*event.Event{e})
	rec.NoteScopeGate(id2, e)
	rec.FinishTask(id1, ctx.Units)
	rec.FinishTask(id2, ctx2.Units)
	rec.NoteLookup(ctrace.LookupRecord{At: ctx2.Stamp(), Found: true,
		Hops: []ctrace.Hop{{Rel: ctrace.RelSelf, Found: true}}})

	tr := rec.Trace()
	if len(tr.Tasks) != 2 || tr.Tasks[0].Cost != 10 || tr.Tasks[1].Cost != 3 {
		t.Fatalf("tasks wrong: %+v", tr.Tasks)
	}
	if len(tr.Fires) != 1 || tr.Fires[0].At.Task != id1 || tr.Fires[0].At.Offset != 10 {
		t.Fatalf("fires wrong: %+v", tr.Fires)
	}
	if len(tr.Waits) != 1 || !tr.Waits[0].Barrier {
		t.Fatalf("waits wrong: %+v", tr.Waits)
	}
	if len(tr.Spawns) != 1 || len(tr.Spawns[0].Gates) != 1 {
		t.Fatalf("spawns wrong: %+v", tr.Spawns)
	}
	if len(tr.ScopeGates[id2]) != 1 {
		t.Fatal("scope gate missing")
	}
	if len(tr.Lookups) != 1 {
		t.Fatal("lookup missing")
	}
	if tr.TotalCost() != 13 {
		t.Fatalf("total cost %f", tr.TotalCost())
	}
	// The same event must map to one ID everywhere.
	if tr.Fires[0].Event != tr.Waits[0].Event || tr.Fires[0].Event != tr.Spawns[0].Gates[0] {
		t.Fatal("event identity not stable across record kinds")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	rec := ctrace.NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := rec.RegisterTask(ctrace.KindLexor, 0, "t")
				ctx := &ctrace.TaskCtx{ID: id, Rec: rec}
				e := event.New()
				ctx.FireEvent(e)
				rec.FinishTask(id, 1)
			}
		}()
	}
	wg.Wait()
	tr := rec.Trace()
	if len(tr.Tasks) != 800 || len(tr.Fires) != 800 {
		t.Fatalf("lost records: %d tasks %d fires", len(tr.Tasks), len(tr.Fires))
	}
}

func TestRelationNames(t *testing.T) {
	want := []string{"self", "other", "outer", "WITH", "Builtin"}
	for i, w := range want {
		if got := ctrace.Relation(i).String(); got != w {
			t.Errorf("relation %d = %q, want %q", i, got, w)
		}
	}
}
