package ctrace

// Trace-construction API.
//
// The instrumented compiler records through live *event.Event objects;
// these ID-based variants allow building traces directly — synthetic
// workloads for the simulator, scheduler what-if experiments, and the
// simulator's own unit tests.

// NewEventID allocates a fresh event identity not tied to any live
// event object.
func (r *Recorder) NewEventID() EventID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextEv++
	return r.nextEv
}

// FireIDs records that task fires a new event at the given offset and
// returns the event's ID.
func (r *Recorder) FireIDs(task TaskID, offset float64) EventID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextEv++
	r.fires = append(r.fires, FireRecord{Event: r.nextEv, At: Stamp{Task: task, Offset: offset}})
	return r.nextEv
}

// NoteFireID records that task fires an already-allocated event (from
// NewEventID) at the given offset.  Task 0 marks the event as existing
// before the traced run starts (a pre-fired cache hit, or a fire whose
// producer was not observed); the simulator treats those as fired at
// time zero.  Used by the obs→ctrace exporter, where fire and wait
// edges arrive independently and must share one pre-assigned identity.
func (r *Recorder) NoteFireID(ev EventID, task TaskID, offset float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fires = append(r.fires, FireRecord{Event: ev, At: Stamp{Task: task, Offset: offset}})
}

// NoteWaitIDs records a wait on an event by ID.
func (r *Recorder) NoteWaitIDs(task TaskID, offset float64, ev EventID, barrier bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.waits = append(r.waits, WaitRecord{Event: ev, At: Stamp{Task: task, Offset: offset}, Barrier: barrier})
}

// NoteSpawnIDs records a task creation with gate events given by ID.
func (r *Recorder) NoteSpawnIDs(parent TaskID, at Stamp, child TaskID, gates []EventID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spawns = append(r.spawns, SpawnRecord{
		Parent: parent, At: at, Child: child, Gates: append([]EventID(nil), gates...),
	})
}

// NoteScopeGateID records an Avoidance-strategy scope dependency by ID.
func (r *Recorder) NoteScopeGateID(task TaskID, ev EventID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.scopeGates == nil {
		r.scopeGates = make(map[TaskID][]EventID)
	}
	r.scopeGates[task] = append(r.scopeGates[task], ev)
}
