package ctrace

// Deterministic work-unit weights.
//
// The trace-driven simulator needs task durations that do not depend on
// host load, so each compiler phase accumulates abstract work units from
// the counters below instead of reading a clock.  One unit corresponds
// very roughly to one microsecond of late-1980s CVax time; only ratios
// matter for speedup figures.
//
// The weights were chosen so that phase proportions in a typical
// compilation match the qualitative profile of the paper's Figure 7:
// lexical analysis is a small early fraction (a few percent — 1992
// back ends did far more work per token than scanners did), parsing/
// declaration analysis the middle, and statement analysis + code
// generation the dominant tail.  Lexing is the one inherently serial
// phase per file, so its fraction bounds the attainable speedup; the
// calibration here reproduces the paper's near-linear best case
// (Figure 2).  They are compiled-in constants so traces are exactly
// reproducible.
const (
	// CostLexChar is charged per source character scanned.
	CostLexChar = 0.006
	// CostLexToken is charged per token produced.
	CostLexToken = 0.12
	// CostScanToken is charged per token inspected by the import scanner
	// (a shallow reserved-word scan).
	CostScanToken = 0.06
	// CostSplitToken is charged per token routed by the splitter's
	// finite-state recognizer.
	CostSplitToken = 0.12
	// CostParseToken is charged per token consumed by a parser.
	CostParseToken = 2.4
	// CostInsert is charged per symbol-table insertion.
	CostInsert = 4.0
	// CostLookupHop is charged per scope visited during a lookup.
	CostLookupHop = 2.2
	// CostTypeNode is charged per type constructor analyzed.
	CostTypeNode = 3.0
	// CostStmtNode is charged per AST node visited by the statement
	// analyzer.
	CostStmtNode = 5.5
	// CostEmit is charged per instruction emitted by the code generator.
	CostEmit = 3.0
	// CostMergeSegment is charged per code segment concatenated by the
	// merge task.
	CostMergeSegment = 8.0
	// CostTaskStart is the fixed scheduling overhead charged once per
	// task ("the scheduling cost", §2.3.3).
	CostTaskStart = 5.0
	// CostAnalysisNode is charged per AST node visited by a static-
	// analysis (lint) pass; lighter than CostStmtNode because lint
	// passes neither resolve symbols nor emit code.
	CostAnalysisNode = 1.5
	// CostAnalysisFact is charged per fact examined by the analysis
	// merge when cross-module facts are joined at the barrier.
	CostAnalysisFact = 2.0
)
