package ctrace

// Relation classifies the scope a lookup hop searched, relative to the
// search's origin.  These are the row categories of the paper's Table 2.
type Relation uint8

const (
	// RelSelf is the scope of the stream that initiated the search.
	RelSelf Relation = iota
	// RelOther is an explicitly designated initial search scope: the
	// interface scope behind a qualified name M.x or a FROM-import alias.
	RelOther
	// RelOuter is a scope reached by chaining outward through the scope
	// parentage path.
	RelOuter
	// RelWith is the field scope of a WITH statement.
	RelWith
	// RelBuiltin is the pervasive scope of compiler-predefined names.
	RelBuiltin

	// NumRelations is the number of relation categories.
	NumRelations
)

var relationNames = [NumRelations]string{"self", "other", "outer", "WITH", "Builtin"}

func (r Relation) String() string {
	if r < NumRelations {
		return relationNames[r]
	}
	return "?"
}

// Hop is one scope visited during a lookup.
type Hop struct {
	Scope      int32 // scope ID (symtab numbering)
	Rel        Relation
	Completion EventID // the scope's completion event (0 for always-complete scopes)
	Found      bool    // whether the identifier is declared in this scope
	// Insert is where the winning entry was inserted (valid when Found).
	// A zero Stamp means the entry pre-exists any task (builtins).
	Insert Stamp
}

// LookupRecord captures one symbol-table lookup: who searched, from
// where, which scopes were visited in order, and where the search ends.
// The record holds program facts only — whether the search *blocked* in
// a given run depends on the schedule and the DKY strategy, and is
// re-derived by the simulator (and tallied live by symtab for the real
// concurrent runs).
type LookupRecord struct {
	At        Stamp // searching task and its offset at the search
	Qualified bool  // qualified identifier (M.x) vs simple identifier
	Hops      []Hop // scopes in search order; the last hop is the hit, if any
	Found     bool  // false = the "Never" row of Table 2
}
