package core_test

import (
	"fmt"
	"sync"
	"testing"

	"m2cc/internal/core"
	"m2cc/internal/ifacecache"
	"m2cc/internal/seq"
	"m2cc/internal/sim"
	"m2cc/internal/symtab"
)

// TestCachedMatchesSequential is the cache's differential acceptance
// check: with one interface cache shared across every worker count and
// every DKY strategy — so all but the very first compilation install
// Stacks/Sorter from cache rather than compiling them — diagnostics
// and listings stay byte-identical to the uncached sequential baseline.
func TestCachedMatchesSequential(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	mods := []string{"Main", "Stacks", "Sorter"}
	wantListing, wantDiags := seqBaseline(t, loader, mods)

	cache := ifacecache.New()
	for _, workers := range []int{1, 2, 4, 8} {
		for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
			name := fmt.Sprintf("w%d/%s", workers, strat)
			t.Run(name, func(t *testing.T) {
				for _, m := range mods {
					res := core.Compile(m, loader, core.Options{
						Workers: workers, Strategy: strat, Cache: cache,
					})
					if got := res.Diags.String(); got != wantDiags[m] {
						t.Fatalf("%s: diagnostics differ\n got: %q\nwant: %q", m, got, wantDiags[m])
					}
					if got := res.Object.Listing(); got != wantListing[m] {
						t.Fatalf("%s: listings differ\ngot:\n%s\nwant:\n%s", m, got, wantListing[m])
					}
				}
			})
		}
	}
	if s := cache.Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("cache never exercised: %+v", s)
	}
}

// TestCachedSequentialMatches runs the sequential compiler against a
// shared cache, twice per module, and checks both passes against the
// uncached baseline.
func TestCachedSequentialMatches(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	mods := []string{"Main", "Stacks", "Sorter"}
	wantListing, wantDiags := seqBaseline(t, loader, mods)

	cache := ifacecache.New()
	for pass := 0; pass < 2; pass++ {
		for _, m := range mods {
			res := seq.CompileWithCache(m, loader, cache)
			if got := res.Diags.String(); got != wantDiags[m] {
				t.Fatalf("pass %d, %s: diagnostics differ\n got: %q\nwant: %q", pass, m, got, wantDiags[m])
			}
			if got := res.Object.Listing(); got != wantListing[m] {
				t.Fatalf("pass %d, %s: listings differ\ngot:\n%s\nwant:\n%s", pass, m, got, wantListing[m])
			}
		}
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Fatalf("warm pass produced no hits: %+v", s)
	}
}

// TestSingleFlightAcrossCompilations races eight whole compilations of
// Main against one empty cache: each of the two cacheable interfaces
// (Stacks, Sorter) must be compiled exactly once — one leader each,
// everyone else a waiter-then-hit — and every compilation's output must
// match the baseline.  Run under -race.
func TestSingleFlightAcrossCompilations(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	wantListing, wantDiags := seqBaseline(t, loader, []string{"Main"})

	cache := ifacecache.New()
	const sessions = 8
	results := make([]*core.Result, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = core.Compile("Main", loader, core.Options{
				Workers: 4, Cache: cache,
			})
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if got := res.Diags.String(); got != wantDiags["Main"] {
			t.Fatalf("session %d: diagnostics differ: %q", i, got)
		}
		if got := res.Object.Listing(); got != wantListing["Main"] {
			t.Fatalf("session %d: listing differs", i)
		}
	}
	s := cache.Stats()
	if s.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (Stacks and Sorter led exactly once): %+v", s.Misses, s)
	}
	if s.Hits != sessions*2-2 {
		t.Fatalf("hits = %d, want %d: %+v", s.Hits, sessions*2-2, s)
	}
}

// TestWarmTraceSimulates checks the trace semantics of cache hits: a
// warm compilation records the cached interface scopes as pre-fired
// events and spawns no def streams for them, and the resulting trace
// still drives the simulator.
func TestWarmTraceSimulates(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	cache := ifacecache.New()

	cold := core.Compile("Main", loader, core.Options{Workers: 1, Trace: true, Cache: cache})
	if cold.Failed() {
		t.Fatalf("cold compile failed:\n%s", cold.Diags)
	}
	warm := core.Compile("Main", loader, core.Options{Workers: 1, Trace: true, Cache: cache})
	if warm.Failed() {
		t.Fatalf("warm compile failed:\n%s", warm.Diags)
	}
	if warm.Streams >= cold.Streams {
		t.Fatalf("warm run spawned %d streams, cold %d; cache hits must not spawn def streams",
			warm.Streams, cold.Streams)
	}
	if warm.Trace.TotalCost() >= cold.Trace.TotalCost() {
		t.Fatalf("warm trace cost %.1f not below cold %.1f",
			warm.Trace.TotalCost(), cold.Trace.TotalCost())
	}
	for _, procs := range []int{1, 8} {
		res := sim.New(warm.Trace, sim.Options{
			Processors: procs, Strategy: symtab.Skeptical, LongBeforeShort: true, BoostResolver: true,
		}).Run()
		if res.Makespan <= 0 {
			t.Fatalf("simulation on %d processors produced makespan %v", procs, res.Makespan)
		}
	}
}

// TestCacheWithStatsCountsCachedScopes: Table 2 statistics must still
// see lookups that land in cache-installed scopes (they count as
// complete-table lookups, since the scope pre-exists the compilation).
func TestCacheWithStatsCountsCachedScopes(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	cache := ifacecache.New()
	core.Compile("Main", loader, core.Options{Workers: 2, Cache: cache})

	res := core.Compile("Main", loader, core.Options{
		Workers: 2, Cache: cache, CollectStats: true,
	})
	if res.Failed() {
		t.Fatalf("warm compile failed:\n%s", res.Diags)
	}
	if res.Stats == nil || res.Stats.Lookups.Load() == 0 {
		t.Fatalf("warm-cache run collected no lookup statistics: %+v", res.Stats)
	}
}
