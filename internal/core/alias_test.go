package core_test

import (
	"fmt"
	"strings"
	"testing"

	"m2cc/internal/core"
	"m2cc/internal/seq"
	"m2cc/internal/symtab"
)

// TestDeepReExportChainDiagnosed: a FROM re-export chain longer than
// the alias-follow limit must be reported as a cyclic/too-deep import
// chain — not as a bare undeclared identifier — and identically by the
// sequential and every concurrent configuration.
func TestDeepReExportChainDiagnosed(t *testing.T) {
	files := map[string]string{
		"M0.def": "DEFINITION MODULE M0;\nCONST v = 1;\nEND M0.\n",
	}
	const chain = 10 // > symtab.MaxAliasDepth alias links from Main
	for i := 1; i < chain; i++ {
		files[fmt.Sprintf("M%d.def", i)] = fmt.Sprintf(
			"DEFINITION MODULE M%d;\nFROM M%d IMPORT v;\nEND M%d.\n", i, i-1, i)
	}
	files["Main.mod"] = fmt.Sprintf(
		"MODULE Main;\nFROM M%d IMPORT v;\nBEGIN\n  WriteInt(v, 0)\nEND Main.\n", chain-1)
	loader := testLoader(files)

	want := seq.Compile("Main", loader)
	if !want.Failed() {
		t.Fatalf("a %d-link re-export chain (limit %d) must fail", chain, symtab.MaxAliasDepth)
	}
	if s := want.Diags.String(); !strings.Contains(s, "too deep") {
		t.Fatalf("diagnostic must name the deep/cyclic import chain, got:\n%s", s)
	}
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		got := core.Compile("Main", loader, core.Options{Workers: 4, Strategy: strat})
		if got.Diags.String() != want.Diags.String() {
			t.Fatalf("%s: diagnostics differ\nseq:\n%s\nconc:\n%s", strat, want.Diags, got.Diags)
		}
	}
}

// TestShallowReExportChainCompiles: the same shape inside the limit is
// legal and must resolve through every strategy.
func TestShallowReExportChainCompiles(t *testing.T) {
	files := map[string]string{
		"M0.def": "DEFINITION MODULE M0;\nCONST v = 1;\nEND M0.\n",
	}
	const chain = 4
	for i := 1; i < chain; i++ {
		files[fmt.Sprintf("M%d.def", i)] = fmt.Sprintf(
			"DEFINITION MODULE M%d;\nFROM M%d IMPORT v;\nEND M%d.\n", i, i-1, i)
	}
	files["Main.mod"] = fmt.Sprintf(
		"MODULE Main;\nFROM M%d IMPORT v;\nBEGIN\n  WriteInt(v, 0)\nEND Main.\n", chain-1)
	loader := testLoader(files)

	want := seq.Compile("Main", loader)
	if want.Failed() {
		t.Fatalf("shallow re-export chain must compile:\n%s", want.Diags)
	}
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		got := core.Compile("Main", loader, core.Options{Workers: 4, Strategy: strat})
		if got.Failed() {
			t.Fatalf("%s: shallow chain failed:\n%s", strat, got.Diags)
		}
		if got.Object.Listing() != want.Object.Listing() {
			t.Fatalf("%s: listings differ", strat)
		}
	}
}
