package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"m2cc/internal/core"
	"m2cc/internal/seq"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
	"m2cc/internal/vm"
	"m2cc/internal/workload"
)

// TestRandomProgramsDifferential is the repository's central
// correctness property: for randomly generated valid programs, the
// concurrent compiler — under random worker counts and DKY strategies —
// produces byte-identical diagnostics and listings to the sequential
// compiler, and (for self-contained programs) the compiled code
// executes to the same output.
func TestRandomProgramsDifferential(t *testing.T) {
	loader := source.NewMapLoader()
	lib := workload.GenerateLibrary(99, loader)

	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		selfContained := r.Intn(2) == 0
		spec := workload.RandomSpec(r, fmt.Sprintf("Rnd%d", seed&0xffff), selfContained)
		uselib := lib
		if spec.TargetImports == 0 {
			uselib = nil
		}
		workload.GenerateProgram(spec, uselib, loader)

		want := seq.Compile(spec.Name, loader)
		workers := 1 + r.Intn(8)
		strat := symtab.Strategy(r.Intn(int(symtab.NumStrategies)))
		hdr := core.HeaderShared
		if r.Intn(4) == 0 {
			hdr = core.HeaderReprocess
		}
		got := core.Compile(spec.Name, loader, core.Options{
			Workers: workers, Strategy: strat, Headers: hdr,
		})

		if want.Diags.String() != got.Diags.String() {
			t.Logf("seed %d (w=%d %s): diagnostics differ\nseq:\n%s\nconc:\n%s",
				seed, workers, strat, want.Diags, got.Diags)
			return false
		}
		if want.Failed() {
			t.Logf("seed %d: generator produced an invalid program:\n%s", seed, want.Diags)
			return false
		}
		if want.Object.Listing() != got.Object.Listing() {
			t.Logf("seed %d (w=%d %s): listings differ", seed, workers, strat)
			return false
		}

		if selfContained {
			prog, err := vm.Link([]*vm.Object{got.Object}, spec.Name)
			if err != nil {
				t.Logf("seed %d: link: %v", seed, err)
				return false
			}
			var out1, out2 strings.Builder
			m := vm.NewMachine(prog, nil, &out1)
			m.MaxSteps = 50_000_000
			if err := m.Run(); err != nil {
				t.Logf("seed %d: run: %v", seed, err)
				return false
			}
			prog2, _ := vm.Link([]*vm.Object{want.Object}, spec.Name)
			m2 := vm.NewMachine(prog2, nil, &out2)
			m2.MaxSteps = 50_000_000
			if err := m2.Run(); err != nil {
				t.Logf("seed %d: seq-run: %v", seed, err)
				return false
			}
			if out1.String() != out2.String() {
				t.Logf("seed %d: outputs differ: %q vs %q", seed, out1.String(), out2.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceConsistency checks structural invariants of recorded traces:
// every task referenced by spawns/fires/waits exists, every task is
// spawned exactly once, and costs are positive.
func TestTraceConsistency(t *testing.T) {
	suite := workload.GenerateSuite(5, 0.05)
	res := core.Compile(suite.Programs[15].Name, suite.Loader, core.Options{Workers: 1, Trace: true})
	if res.Failed() {
		t.Fatalf("compile failed:\n%s", res.Diags)
	}
	tr := res.Trace
	known := map[int32]bool{}
	for _, ti := range tr.Tasks {
		known[int32(ti.ID)] = true
		if ti.Cost <= 0 {
			t.Errorf("task %s has cost %f", ti.Label, ti.Cost)
		}
	}
	spawned := map[int32]int{}
	for _, sp := range tr.Spawns {
		spawned[int32(sp.Child)]++
		if sp.Parent != 0 && !known[int32(sp.Parent)] {
			t.Errorf("spawn parent %d unknown", sp.Parent)
		}
	}
	for id := range known {
		if spawned[id] != 1 {
			t.Errorf("task %d spawned %d times", id, spawned[id])
		}
	}
	for _, f := range tr.Fires {
		if f.At.Task != 0 && !known[int32(f.At.Task)] {
			t.Errorf("fire from unknown task %d", f.At.Task)
		}
	}
	for _, w := range tr.Waits {
		if !known[int32(w.At.Task)] {
			t.Errorf("wait from unknown task %d", w.At.Task)
		}
	}
	for _, l := range tr.Lookups {
		if !known[int32(l.At.Task)] {
			t.Errorf("lookup from unknown task %d", l.At.Task)
		}
	}
	if len(tr.Lookups) == 0 || len(tr.Fires) == 0 || len(tr.Waits) == 0 {
		t.Error("trace suspiciously empty")
	}
}

// TestRealTable2Stats collects live (non-simulated) lookup statistics
// from a real 8-worker skeptical compilation — the measurement the
// paper's Table 2 reports.
func TestRealTable2Stats(t *testing.T) {
	suite := workload.GenerateSuite(11, 0.1)
	agg := symtab.NewStats()
	for _, p := range suite.Programs[:8] {
		res := core.Compile(p.Name, suite.Loader, core.Options{
			Workers: 8, Strategy: symtab.Skeptical, CollectStats: true,
		})
		if res.Failed() {
			t.Fatalf("%s failed:\n%s", p.Name, res.Diags)
		}
		agg.Add(res.Stats)
	}
	if agg.Lookups.Load() == 0 {
		t.Fatal("no lookups recorded")
	}
	// The paper's headline: the dominant row is First-try/self, and DKY
	// blockages are relatively rare.
	rows := agg.Rows()
	var selfFirst, total int64
	for _, r := range rows {
		total += r.Count
		if !r.Key.Qualified && r.Key.When == symtab.FirstTry && r.Key.Rel == 0 /* self */ {
			selfFirst += r.Count
		}
	}
	if float64(selfFirst) < 0.3*float64(total) {
		t.Errorf("First try/self = %d of %d — suspiciously low\n%s", selfFirst, total, agg)
	}
	if float64(agg.Blocks.Load()) > 0.05*float64(total) {
		t.Errorf("DKY blockages = %d of %d lookups — the paper found them rare\n%s",
			agg.Blocks.Load(), total, agg)
	}
}

// TestConcurrentCompileIsRaceFreeUnderLoad compiles several programs in
// parallel (shared library loader) — run with -race in CI.
func TestConcurrentCompileIsRaceFreeUnderLoad(t *testing.T) {
	suite := workload.GenerateSuite(13, 0.05)
	done := make(chan string, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			p := suite.Programs[i*4]
			res := core.Compile(p.Name, suite.Loader, core.Options{Workers: 4})
			if res.Failed() {
				done <- p.Name + " failed"
				return
			}
			done <- ""
		}(i)
	}
	for i := 0; i < 8; i++ {
		if msg := <-done; msg != "" {
			t.Error(msg)
		}
	}
}
