package core_test

import (
	"testing"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/faultinject"
	"m2cc/internal/ifacecache"
	"m2cc/internal/symtab"
)

// closedChan returns an already-closed cancel channel.
func closedChan() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestCancelBeforeStartAllStrategies pre-cancels a compilation under
// every DKY strategy: Compile must return promptly with Canceled set,
// every Supervisor slot released (evidenced by Compile returning at
// all), and a fresh compilation over the same loader must still
// produce clean output.
func TestCancelBeforeStartAllStrategies(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		t.Run(strat.String(), func(t *testing.T) {
			res := core.Compile("Main", loader, core.Options{
				Workers: 4, Strategy: strat, Cancel: closedChan(),
			})
			if !res.Canceled {
				t.Fatal("pre-canceled compilation must be marked Canceled")
			}
			clean := core.Compile("Main", loader, core.Options{Workers: 4, Strategy: strat})
			if clean.Failed() || clean.Faulted || clean.Canceled {
				t.Fatalf("follow-up compile wounded by earlier cancellation:\n%s", clean.Diags)
			}
		})
	}
}

// TestCancelMidCompileReleasesCacheLeadership wedges an interface-cache
// leader at a deterministic point (the StallLeader injection site in
// finishEntry), cancels the compilation while it is wedged, and then
// verifies the two request-level invariants the daemon depends on:
//
//  1. the canceled Compile call returns (all Supervisor slots released,
//     no goroutine holds the batch open), and
//  2. the shared cache is left uncorrupted — no leaked leaders: a
//     follow-up compilation against the same cache resolves every
//     interface (self-compiling any abandoned entry via the PR 2 stall
//     path) and produces output byte-identical to an uncached compile.
//
// Run under -race via the core package's RACE_PKGS membership.
func TestCancelMidCompileReleasesCacheLeadership(t *testing.T) {
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		t.Run(strat.String(), func(t *testing.T) {
			loader := testLoader(multiModuleProgram)
			cache := ifacecache.New()
			plan := faultinject.New().Arm(faultinject.StallLeader, 1)
			cancel := make(chan struct{})
			done := make(chan *core.Result, 1)
			go func() {
				done <- core.Compile("Main", loader, core.Options{
					Workers: 4, Strategy: strat, Cache: cache,
					FaultPlan: plan, Cancel: cancel,
					// Short stall bound so abandoned waits resolve fast.
					StallTimeout: 100 * time.Millisecond,
				})
			}()
			// The leader is wedged inside finishEntry: the compilation is
			// provably mid-flight, with cache leadership held.
			select {
			case <-plan.Stalled():
			case res := <-done:
				t.Fatalf("compilation finished before the leader stalled (faulted=%v)", res.Faulted)
			}
			close(cancel)
			// The stalled injection point blocks outside the Supervisor's
			// jurisdiction; release it so the task can unwind.
			plan.Release()
			var res *core.Result
			select {
			case res = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("canceled compilation did not terminate: slots leaked")
			}
			if !res.Canceled {
				t.Fatal("mid-flight cancellation must mark the result Canceled")
			}

			// No leaked leaders: the same cache must serve a fresh
			// compilation without stranding it, and the output must be
			// byte-identical to an uncached compile.
			warm := core.Compile("Main", loader, core.Options{
				Workers: 4, Strategy: strat, Cache: cache,
				StallTimeout: 500 * time.Millisecond,
			})
			if warm.Failed() || warm.Faulted || warm.Canceled {
				t.Fatalf("cache corrupted by canceled leader:\n%s", warm.Diags)
			}
			cold := core.Compile("Main", loader, core.Options{Workers: 4, Strategy: strat})
			if got, want := warm.Object.Listing(), cold.Object.Listing(); got != want {
				t.Fatalf("cached listing differs after cancellation\ngot:\n%s\nwant:\n%s", got, want)
			}
			if got, want := warm.Diags.String(), cold.Diags.String(); got != want {
				t.Fatalf("cached diags differ after cancellation\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestCancelRacingCompletion closes the cancel channel at staggered
// delays while compilations run, across all strategies: whichever side
// wins, the result must be either cleanly complete or cleanly canceled
// — never a hang, never a fault — and a shared cache stays usable.
func TestCancelRacingCompletion(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	cache := ifacecache.New()
	delays := []time.Duration{0, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		for _, delay := range delays {
			cancel := make(chan struct{})
			timer := time.AfterFunc(delay, func() { close(cancel) })
			res := core.Compile("Main", loader, core.Options{
				Workers: 4, Strategy: strat, Cache: cache, Cancel: cancel,
				StallTimeout: 500 * time.Millisecond,
			})
			timer.Stop()
			if res.Canceled {
				continue
			}
			if res.Failed() || res.Faulted {
				t.Fatalf("%v/%v: uncanceled result not clean:\n%s", strat, delay, res.Diags)
			}
		}
	}
	// The cache survived every race above.
	final := core.Compile("Main", loader, core.Options{
		Workers: 4, Cache: cache, StallTimeout: 500 * time.Millisecond,
	})
	if final.Failed() || final.Faulted || final.Canceled {
		t.Fatalf("cache unusable after cancel races:\n%s", final.Diags)
	}
}
