package core_test

import (
	"fmt"
	"strings"
	"testing"

	"m2cc/internal/core"
	"m2cc/internal/seq"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
	"m2cc/internal/vm"
	"m2cc/internal/workload"
)

// testLoader builds a MapLoader from a name→text map ("X.def"/"X.mod").
func testLoader(files map[string]string) *source.MapLoader {
	loader := source.NewMapLoader()
	for name, text := range files {
		if base, ok := strings.CutSuffix(name, ".def"); ok {
			loader.Add(base, source.Def, text)
		} else if base, ok := strings.CutSuffix(name, ".mod"); ok {
			loader.Add(base, source.Impl, text)
		}
	}
	return loader
}

// multiModuleProgram exercises imports, FROM-imports, nesting, records,
// sets, exceptions and cross-module calls in one program.
var multiModuleProgram = map[string]string{
	"Stacks.def": `
DEFINITION MODULE Stacks;
CONST Cap = 16;
TYPE Stack;
EXCEPTION Overflow;
VAR pushes: INTEGER;
PROCEDURE New(): Stack;
PROCEDURE Push(s: Stack; v: INTEGER);
PROCEDURE Pop(s: Stack): INTEGER;
PROCEDURE Depth(s: Stack): INTEGER;
END Stacks.
`,
	"Stacks.mod": `
IMPLEMENTATION MODULE Stacks;
TYPE
  Rep = RECORD
    n: INTEGER;
    a: ARRAY [0..Cap-1] OF INTEGER
  END;
  Stack = POINTER TO Rep;

PROCEDURE New(): Stack;
VAR s: Stack;
BEGIN
  NEW(s);
  s^.n := 0;
  RETURN s
END New;

PROCEDURE Push(s: Stack; v: INTEGER);
BEGIN
  IF s^.n >= Cap THEN RAISE Overflow END;
  s^.a[s^.n] := v;
  INC(s^.n);
  INC(pushes)
END Push;

PROCEDURE Pop(s: Stack): INTEGER;
BEGIN
  DEC(s^.n);
  RETURN s^.a[s^.n]
END Pop;

PROCEDURE Depth(s: Stack): INTEGER;
BEGIN
  RETURN s^.n
END Depth;

BEGIN
  pushes := 0
END Stacks.
`,
	"Sorter.def": `
DEFINITION MODULE Sorter;
PROCEDURE Sort(VAR a: ARRAY OF INTEGER);
END Sorter.
`,
	"Sorter.mod": `
IMPLEMENTATION MODULE Sorter;

PROCEDURE Sort(VAR a: ARRAY OF INTEGER);
VAR n: INTEGER;

  PROCEDURE QSort(lo, hi: INTEGER);
  VAR i, j, pivot, tmp: INTEGER;
  BEGIN
    IF lo >= hi THEN RETURN END;
    i := lo; j := hi;
    pivot := a[(lo + hi) DIV 2];
    WHILE i <= j DO
      WHILE a[i] < pivot DO INC(i) END;
      WHILE a[j] > pivot DO DEC(j) END;
      IF i <= j THEN
        tmp := a[i]; a[i] := a[j]; a[j] := tmp;
        INC(i); DEC(j)
      END
    END;
    QSort(lo, j);
    QSort(i, hi)
  END QSort;

BEGIN
  n := INTEGER(HIGH(a));
  QSort(0, n)
END Sort;

END Sorter.
`,
	"Main.mod": `
MODULE Main;
FROM Stacks IMPORT New, Push, Pop, Overflow;
IMPORT Stacks, Sorter;
TYPE Vec = ARRAY [0..7] OF INTEGER;
VAR
  s: Stacks.Stack;
  v: Vec;
  i: INTEGER;
BEGIN
  s := New();
  FOR i := 0 TO 7 DO
    Push(s, (i * 37) MOD 11)
  END;
  FOR i := 0 TO 7 DO
    v[i] := Pop(s)
  END;
  Sorter.Sort(v);
  FOR i := 0 TO 7 DO
    WriteInt(v[i], 3)
  END;
  WriteLn;
  TRY
    FOR i := 0 TO 99 DO Push(s, i) END
  EXCEPT
    Overflow: WriteString("overflow at depth ");
               WriteInt(Stacks.Depth(s), 0)
  END;
  WriteLn;
  WriteInt(Stacks.pushes, 0); WriteLn
END Main.
`,
}

// seqBaseline compiles every module sequentially and returns listings
// keyed by module plus the sorted diagnostics.
func seqBaseline(t *testing.T, loader source.Loader, mods []string) (map[string]string, map[string]string) {
	t.Helper()
	listings := make(map[string]string)
	diags := make(map[string]string)
	for _, m := range mods {
		res := seq.Compile(m, loader)
		listings[m] = res.Object.Listing()
		diags[m] = res.Diags.String()
	}
	return listings, diags
}

func TestConcurrentMatchesSequential(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	mods := []string{"Main", "Stacks", "Sorter"}
	wantListing, wantDiags := seqBaseline(t, loader, mods)

	for _, workers := range []int{1, 2, 4, 8} {
		for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
			for _, hdr := range []core.HeaderMode{core.HeaderShared, core.HeaderReprocess} {
				name := fmt.Sprintf("w%d/%s/hdr%d", workers, strat, hdr)
				t.Run(name, func(t *testing.T) {
					for _, m := range mods {
						res := core.Compile(m, loader, core.Options{
							Workers: workers, Strategy: strat, Headers: hdr,
						})
						if got := res.Diags.String(); got != wantDiags[m] {
							t.Fatalf("%s: diagnostics differ\n got: %q\nwant: %q", m, got, wantDiags[m])
						}
						if got := res.Object.Listing(); got != wantListing[m] {
							t.Fatalf("%s: listings differ\ngot:\n%s\nwant:\n%s", m, got, wantListing[m])
						}
					}
				})
			}
		}
	}
}

func TestConcurrentProgramRuns(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	var objs []*vm.Object
	for _, m := range []string{"Main", "Stacks", "Sorter"} {
		res := core.Compile(m, loader, core.Options{Workers: 4})
		if res.Failed() {
			t.Fatalf("compile %s failed:\n%s", m, res.Diags)
		}
		objs = append(objs, res.Object)
	}
	prog, err := vm.Link(objs, "Main")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	var out strings.Builder
	if err := vm.NewMachine(prog, nil, &out).Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	want := "  0  1  2  4  5  6  8  9\noverflow at depth 16\n24\n"
	if out.String() != want {
		t.Fatalf("got %q, want %q", out.String(), want)
	}
}

func TestStreamsCounted(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	res := core.Compile("Main", loader, core.Options{Workers: 2})
	if res.Failed() {
		t.Fatalf("compile failed:\n%s", res.Diags)
	}
	// Main has 0 procedures of its own + imports Stacks and Sorter:
	// 1 main stream + 2 interface streams + 1 own-def prefetch.
	if res.Streams < 3 {
		t.Fatalf("streams = %d, want >= 3", res.Streams)
	}
}

func TestDeadlockBrokenOnCyclicImports(t *testing.T) {
	loader := testLoader(map[string]string{
		"A.def": "DEFINITION MODULE A;\nFROM B IMPORT x;\nCONST y = x;\nEND A.\n",
		"B.def": "DEFINITION MODULE B;\nFROM A IMPORT y;\nCONST x = y;\nEND B.\n",
		"C.mod": "MODULE C;\nFROM A IMPORT y;\nBEGIN\n  WriteInt(y, 0)\nEND C.\n",
	})
	done := make(chan *core.Result, 1)
	go func() {
		done <- core.Compile("C", loader, core.Options{Workers: 2})
	}()
	res := <-done
	if !res.Failed() {
		t.Fatal("cyclic imports must fail")
	}
}

// TestWholeSuiteDifferential is the flagship integration check: every
// program of the generated evaluation suite, compiled concurrently on 8
// workers (cycling through the DKY strategies and header modes),
// produces byte-identical diagnostics and listings to the sequential
// compiler.
func TestWholeSuiteDifferential(t *testing.T) {
	suite := workload.GenerateSuite(1992, 0.08)
	for i, p := range suite.Programs {
		strat := symtab.Strategy(i % int(symtab.NumStrategies))
		hdr := core.HeaderShared
		if i%5 == 4 {
			hdr = core.HeaderReprocess
		}
		want := seq.Compile(p.Name, suite.Loader)
		got := core.Compile(p.Name, suite.Loader, core.Options{
			Workers: 8, Strategy: strat, Headers: hdr,
		})
		if want.Diags.String() != got.Diags.String() {
			t.Fatalf("%s (%s): diagnostics differ\nseq:\n%s\nconc:\n%s",
				p.Name, strat, want.Diags, got.Diags)
		}
		if want.Failed() {
			t.Fatalf("%s: suite program failed to compile:\n%s", p.Name, want.Diags)
		}
		if want.Object.Listing() != got.Object.Listing() {
			t.Fatalf("%s (%s, hdr %d): listings differ", p.Name, strat, hdr)
		}
		if got.Streams != p.Streams+1 { // +1: the own-interface prefetch stream
			t.Errorf("%s: %d streams, generator predicted %d (+1 prefetch)",
				p.Name, got.Streams, p.Streams)
		}
	}
}
