package core_test

import (
	"strings"
	"testing"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/faultinject"
	"m2cc/internal/ifacecache"
	"m2cc/internal/symtab"
)

// cyclicProgram deadlocks the concurrent compiler's DKY machinery: two
// interfaces FROM-import each other's constants, so each def stream
// blocks on a lookup only the other could resolve.
var cyclicProgram = map[string]string{
	"A.def":    "DEFINITION MODULE A;\nFROM B IMPORT x;\nCONST y = x;\nEND A.\n",
	"B.def":    "DEFINITION MODULE B;\nFROM A IMPORT y;\nCONST x = y;\nEND B.\n",
	"Main.mod": "MODULE Main;\nFROM A IMPORT y;\nBEGIN\n  WriteInt(y, 0)\nEND Main.\n",
}

// TestDeadlockPoisonsAllStrategies exercises the OnDeadlock watchdog
// under every DKY strategy, not just the default: each must terminate,
// mark the result faulted, and report a scheduler state dump naming
// the stuck tasks.
func TestDeadlockPoisonsAllStrategies(t *testing.T) {
	loader := testLoader(cyclicProgram)
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		t.Run(strat.String(), func(t *testing.T) {
			res := core.Compile("Main", loader, core.Options{Workers: 4, Strategy: strat})
			if !res.Failed() {
				t.Fatal("cyclic imports must fail")
			}
			if !res.Faulted {
				t.Fatal("deadlock-broken result must be marked Faulted")
			}
			msg := res.Diags.String()
			if !strings.Contains(msg, "scheduler state") {
				t.Fatalf("watchdog diagnostic lacks the state dump:\n%s", msg)
			}
			if !strings.Contains(msg, "DefParse") {
				t.Fatalf("state dump does not name the stuck tasks:\n%s", msg)
			}
		})
	}
}

// TestInjectedPanicFaultsAllStrategies arms a lookup panic under each
// strategy: the compilation must terminate (no hang, no crash), mark
// the result faulted, and carry a diagnostic naming the dead task.
func TestInjectedPanicFaultsAllStrategies(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		t.Run(strat.String(), func(t *testing.T) {
			plan := faultinject.New().Arm(faultinject.PanicLookup, 5)
			res := core.Compile("Main", loader, core.Options{
				Workers: 4, Strategy: strat, FaultPlan: plan,
			})
			if plan.Tripped(faultinject.PanicLookup) != 1 {
				t.Fatalf("fault tripped %d times", plan.Tripped(faultinject.PanicLookup))
			}
			if !res.Faulted {
				t.Fatal("panicked compilation must be marked Faulted")
			}
			if !strings.Contains(res.Diags.String(), "panicked") {
				t.Fatalf("no panic diagnostic:\n%s", res.Diags)
			}
		})
	}
}

// TestDroppedFirePoisonsAllStrategies drops the first heading-ready
// fire: the wedged procedure stream must be broken by the watchdog and
// the result poisoned, under every strategy.
func TestDroppedFirePoisonsAllStrategies(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		t.Run(strat.String(), func(t *testing.T) {
			plan := faultinject.New().Arm(faultinject.DropFire, 1)
			res := core.Compile("Stacks", loader, core.Options{
				Workers: 4, Strategy: strat, FaultPlan: plan,
			})
			if plan.Tripped(faultinject.DropFire) != 1 {
				t.Fatalf("fault tripped %d times", plan.Tripped(faultinject.DropFire))
			}
			if !res.Faulted {
				t.Fatal("dropped-fire compilation must be marked Faulted")
			}
		})
	}
}

// TestFailedInstallCompilesFresh vetoes a cache-closure install: the
// compilation must fall back to compiling the interface itself and
// still produce byte-identical output, with no fault recorded.
func TestFailedInstallCompilesFresh(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	cache := ifacecache.New()
	warm := core.Compile("Main", loader, core.Options{Workers: 4, Cache: cache})
	if warm.Failed() || warm.Faulted {
		t.Fatalf("warm-up failed:\n%s", warm.Diags)
	}
	plan := faultinject.New().Arm(faultinject.FailInstall, 1)
	res := core.Compile("Main", loader, core.Options{
		Workers: 4, Cache: cache, FaultPlan: plan,
	})
	if plan.Tripped(faultinject.FailInstall) != 1 {
		t.Fatalf("fault tripped %d times", plan.Tripped(faultinject.FailInstall))
	}
	if res.Failed() || res.Faulted {
		t.Fatalf("declined install must degrade gracefully:\n%s", res.Diags)
	}
	if got, want := res.Object.Listing(), warm.Object.Listing(); got != want {
		t.Fatalf("listing differs after declined install\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestStallTimeoutAbandonsForeignLeader wedges a cache leader in one
// session and checks that a second session waiting on it times out,
// compiles the interface itself, and produces correct, unfaulted
// output.
func TestStallTimeoutAbandonsForeignLeader(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	cache := ifacecache.New()
	plan := faultinject.New().Arm(faultinject.StallLeader, 1)

	leaderDone := make(chan *core.Result, 1)
	go func() {
		leaderDone <- core.Compile("Main", loader, core.Options{
			Workers: 4, Cache: cache, FaultPlan: plan,
		})
	}()
	select {
	case <-plan.Stalled():
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the stall point")
	}

	waiter := core.Compile("Main", loader, core.Options{
		Workers: 4, Cache: cache, StallTimeout: 20 * time.Millisecond,
	})
	if waiter.Failed() || waiter.Faulted {
		t.Fatalf("waiter must abandon the stalled leader and succeed:\n%s", waiter.Diags)
	}

	plan.Release()
	leader := <-leaderDone
	if leader.Failed() || leader.Faulted {
		t.Fatalf("released leader must finish cleanly:\n%s", leader.Diags)
	}
	if got, want := waiter.Object.Listing(), leader.Object.Listing(); got != want {
		t.Fatalf("waiter and leader listings differ\ngot:\n%s\nwant:\n%s", got, want)
	}
}
