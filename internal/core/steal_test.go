package core_test

import (
	"fmt"
	"testing"

	"m2cc/internal/core"
	"m2cc/internal/obs"
	"m2cc/internal/symtab"
)

// TestStealSchedulerDeterministicOutput pins the tentpole invariant of
// the work-stealing dispatcher: compiler output is a pure function of
// the program, never of the dispatch topology.  One worker (where no
// steal can happen) is the baseline; multi-worker steal mode, the
// strict GlobalQueue mode, and both header modes must produce
// byte-identical listings and diagnostics under every DKY strategy.
// The observer's dispatch counters double-check that each mode really
// exercised the topology it claims to.
func TestStealSchedulerDeterministicOutput(t *testing.T) {
	loader := testLoader(multiModuleProgram)
	mods := []string{"Main", "Stacks", "Sorter"}

	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		base := make(map[string][2]string, len(mods))
		for _, m := range mods {
			res := core.Compile(m, loader, core.Options{Workers: 1, Strategy: strat})
			base[m] = [2]string{res.Object.Listing(), res.Diags.String()}
		}
		for _, workers := range []int{2, 8} {
			for _, global := range []bool{false, true} {
				for _, hdr := range []core.HeaderMode{core.HeaderShared, core.HeaderReprocess} {
					name := fmt.Sprintf("%s/w%d/global=%v/hdr%d", strat, workers, global, hdr)
					t.Run(name, func(t *testing.T) {
						o := obs.New()
						o.Begin(workers, strat.String())
						for _, m := range mods {
							res := core.Compile(m, loader, core.Options{
								Workers: workers, Strategy: strat,
								Headers: hdr, GlobalQueue: global, Obs: o,
							})
							if got := res.Object.Listing(); got != base[m][0] {
								t.Fatalf("%s: listing differs from 1-worker baseline\ngot:\n%s\nwant:\n%s",
									m, got, base[m][0])
							}
							if got := res.Diags.String(); got != base[m][1] {
								t.Fatalf("%s: diagnostics differ from 1-worker baseline\n got: %q\nwant: %q",
									m, got, base[m][1])
							}
						}
						o.Finish()
						c := o.Dump().Sched
						if global {
							if c.LocalPushes != 0 || c.LocalPops != 0 || c.Steals != 0 {
								t.Fatalf("GlobalQueue mode touched local queues: %+v", c)
							}
							if c.OverflowPops == 0 {
								t.Fatalf("GlobalQueue mode dispatched nothing via the overflow queue: %+v", c)
							}
						} else {
							if c.LocalPushes == 0 {
								t.Fatalf("steal mode never used a local queue: %+v", c)
							}
							if c.LocalPops+c.Steals == 0 {
								t.Fatalf("steal mode dispatched nothing from a local queue: %+v", c)
							}
						}
					})
				}
			}
		}
	}
}
