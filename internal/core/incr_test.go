package core_test

import (
	"fmt"
	"strings"
	"testing"

	"m2cc/internal/core"
	"m2cc/internal/diag"
	"m2cc/internal/source"
	"m2cc/internal/streamcache"
	"m2cc/internal/symtab"
)

// editStep is one edit-replay step: mutate the program, recompile warm,
// and check the output is byte-identical to a cold compile of the same
// text.
type editStep struct {
	name string
	// apply returns the program text for this step.
	apply func(map[string]string) map[string]string
}

func cloneProgram(p map[string]string) map[string]string {
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// replaceOnce asserts the substitution actually happened, so a drifted
// fixture fails loudly instead of silently testing nothing.
func replaceOnce(t *testing.T, text, old, new string) string {
	t.Helper()
	if !strings.Contains(text, old) {
		t.Fatalf("fixture drift: %q not found", old)
	}
	return strings.Replace(text, old, new, 1)
}

// editReplaySteps is the canonical incremental scenario: no-op rebuild,
// a line-preserving one-procedure edit, a .def edit (invalidates the
// whole closure), and a revert.
func editReplaySteps(t *testing.T) []editStep {
	return []editStep{
		{"noop", func(p map[string]string) map[string]string { return p }},
		{"edit-proc", func(p map[string]string) map[string]string {
			q := cloneProgram(p)
			q["Stacks.mod"] = replaceOnce(t, q["Stacks.mod"],
				"  INC(pushes)\n", "  INC(pushes); INC(pushes)\n")
			return q
		}},
		{"edit-def", func(p map[string]string) map[string]string {
			q := cloneProgram(p)
			q["Stacks.def"] = replaceOnce(t, q["Stacks.def"],
				"CONST Cap = 16;", "CONST Cap = 8;")
			return q
		}},
		{"revert", func(p map[string]string) map[string]string { return p }},
	}
}

func compileAll(loader source.Loader, mods []string, opts core.Options) (map[string]string, map[string]string, map[string]*streamcache.Tally) {
	listings := make(map[string]string)
	diags := make(map[string]string)
	tallies := make(map[string]*streamcache.Tally)
	for _, m := range mods {
		res := core.Compile(m, loader, opts)
		listings[m] = res.Object.Listing()
		diags[m] = res.Diags.String()
		tallies[m] = res.StreamCache
	}
	return listings, diags, tallies
}

// TestIncrementalByteIdentical drives the edit-replay scenario across
// every DKY strategy, worker count and header mode: each warm rebuild
// must be byte-identical to a cold build of the same text.
func TestIncrementalByteIdentical(t *testing.T) {
	base := multiModuleProgram
	mods := []string{"Main", "Stacks", "Sorter"}
	steps := editReplaySteps(t)

	for _, workers := range []int{1, 4} {
		for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
			for _, hdr := range []core.HeaderMode{core.HeaderShared, core.HeaderReprocess} {
				name := fmt.Sprintf("w%d/%s/hdr%d", workers, strat, hdr)
				t.Run(name, func(t *testing.T) {
					cache := streamcache.New(0)
					warm := core.Options{Workers: workers, Strategy: strat, Headers: hdr, StreamCache: cache}
					cold := core.Options{Workers: workers, Strategy: strat, Headers: hdr}

					// Seed the cache with the base program.
					loader := testLoader(base)
					gotL, gotD, _ := compileAll(loader, mods, warm)
					wantL, wantD, _ := compileAll(loader, mods, cold)
					diffOutputs(t, "cold-seed", mods, gotL, gotD, wantL, wantD)

					prog := base
					for _, step := range steps {
						prog = step.apply(base)
						loader := testLoader(prog)
						gotL, gotD, tallies := compileAll(loader, mods, warm)
						wantL, wantD, _ := compileAll(loader, mods, cold)
						diffOutputs(t, step.name, mods, gotL, gotD, wantL, wantD)
						checkTallies(t, step.name, tallies)
					}
				})
			}
		}
	}
}

func diffOutputs(t *testing.T, step string, mods []string, gotL, gotD, wantL, wantD map[string]string) {
	t.Helper()
	for _, m := range mods {
		if gotD[m] != wantD[m] {
			t.Fatalf("%s/%s: diagnostics differ\n got: %q\nwant: %q", step, m, gotD[m], wantD[m])
		}
		if gotL[m] != wantL[m] {
			t.Fatalf("%s/%s: listings differ\ngot:\n%s\nwant:\n%s", step, m, gotL[m], wantL[m])
		}
	}
}

// checkTallies asserts the expected per-step cache traffic for the
// edit-replay scenario's fixture modules.
func checkTallies(t *testing.T, step string, tallies map[string]*streamcache.Tally) {
	t.Helper()
	type want struct{ probed, hits, installed, covered int }
	// Stacks.mod: New, Push, Pop, Depth + body = 5 probes.
	// Sorter.mod: Sort, Sort.QSort + body(absent) = 3 probes; a warm
	// Sort install covers QSort.
	expect := map[string]map[string]want{
		"noop": {
			"Stacks": {5, 5, 5, 0},
			"Sorter": {3, 2, 1, 1},
		},
		// A line-preserving edit inside Push misses Push and the body
		// (the body key covers the whole file); siblings stay warm.
		"edit-proc": {
			"Stacks": {5, 3, 3, 0},
			"Sorter": {3, 2, 1, 1},
		},
		// A .def edit changes the interface closure: every key misses.
		"edit-def": {
			"Stacks": {5, 0, 0, 0},
			"Sorter": {3, 2, 1, 1}, // Sorter does not import Stacks
		},
		// Reverting restores the original keys, recorded by the seed.
		"revert": {
			"Stacks": {5, 5, 5, 0},
			"Sorter": {3, 2, 1, 1},
		},
	}
	for mod, w := range expect[step] {
		ta := tallies[mod]
		if ta == nil {
			t.Fatalf("%s/%s: no stream-cache tally on result", step, mod)
		}
		if ta.Probed != w.probed || ta.Hits != w.hits || ta.Installed != w.installed || ta.Covered != w.covered {
			t.Fatalf("%s/%s: tally = %+v, want probed=%d hits=%d installed=%d covered=%d",
				step, mod, *ta, w.probed, w.hits, w.installed, w.covered)
		}
	}
}

// TestIncrementalWithCheck runs the same scenario under -check: cached
// streams replay their lint fact tables, and the merged findings must
// be byte-identical to a cold lint build.
func TestIncrementalWithCheck(t *testing.T) {
	base := cloneProgram(multiModuleProgram)
	// Give the fixture lint surface: an unused local in a procedure
	// stream and an unused import in the main module.
	base["Stacks.mod"] = replaceOnce(t, base["Stacks.mod"],
		"PROCEDURE Depth(s: Stack): INTEGER;\n",
		"PROCEDURE Depth(s: Stack): INTEGER;\nVAR unusedLocal: INTEGER;\n")
	mods := []string{"Main", "Stacks", "Sorter"}
	steps := editReplaySteps(t)

	cache := streamcache.New(0)
	warm := core.Options{Workers: 4, Check: true, StreamCache: cache}
	cold := core.Options{Workers: 4, Check: true}

	renderFindings := func(fs []diag.Diagnostic) string {
		var sb strings.Builder
		for _, f := range fs {
			fmt.Fprintf(&sb, "%s:%d:%d: %s\n", f.File, f.Pos.Line, f.Pos.Col, f.Msg)
		}
		return sb.String()
	}
	compare := func(step string, loader source.Loader) {
		t.Helper()
		for _, m := range mods {
			got := core.Compile(m, loader, warm)
			want := core.Compile(m, loader, cold)
			if g, w := renderFindings(got.Findings), renderFindings(want.Findings); g != w {
				t.Fatalf("%s/%s: findings differ\n got: %q\nwant: %q", step, m, g, w)
			}
			if g, w := got.Diags.String(), want.Diags.String(); g != w {
				t.Fatalf("%s/%s: diagnostics differ\n got: %q\nwant: %q", step, m, g, w)
			}
			if g, w := got.Object.Listing(), want.Object.Listing(); g != w {
				t.Fatalf("%s/%s: listings differ\ngot:\n%s\nwant:\n%s", step, m, g, w)
			}
		}
	}

	compare("cold-seed", testLoader(base))
	for _, step := range steps {
		compare(step.name, testLoader(step.apply(base)))
	}
	// The unused local lives in Depth's stream; a warm rebuild must have
	// replayed it from the cache (hits on Stacks), proving findings
	// survive without re-analysis.
	res := core.Compile("Stacks", testLoader(base), warm)
	if res.StreamCache == nil || res.StreamCache.Hits == 0 {
		t.Fatalf("expected warm hits on Stacks, tally = %+v", res.StreamCache)
	}
	found := false
	for _, f := range res.Findings {
		if strings.Contains(f.Msg, "unusedLocal") {
			found = true
		}
	}
	if !found {
		t.Fatalf("replayed findings missing unusedLocal warning: %v", res.Findings)
	}
}

// TestStreamCacheEviction: a cap-1 cache keeps working correctly while
// evicting, and reports evictions in its stats.
func TestStreamCacheEviction(t *testing.T) {
	cache := streamcache.New(1)
	loader := testLoader(multiModuleProgram)
	for _, m := range []string{"Main", "Stacks", "Sorter", "Stacks"} {
		res := core.Compile(m, loader, core.Options{Workers: 2, StreamCache: cache})
		if res.Failed() {
			t.Fatalf("compile %s failed:\n%s", m, res.Diags)
		}
	}
	st := cache.Stats()
	if st.Entries > 1 {
		t.Fatalf("cap-1 cache holds %d entries", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under cap-1")
	}
}
