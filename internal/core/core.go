// Package core is the concurrent Modula-2+ compiler: the paper's
// primary contribution, wiring streams and tasks exactly as Figure 5
// describes.
//
// A compilation of module M begins with the lexical analysis of M.mod;
// the compiler "optimistically anticipates the existence of a file
// M.def and tries to start processing this file as soon as possible"
// (§3).  The main token stream feeds the Splitter and Importer tasks;
// the Importer starts a stream per directly or indirectly imported
// definition module (a once-only table deduplicates); the Splitter
// starts a stream per procedure.  Each stream runs 2–5 tasks — Lexor,
// Importer, Splitter, Parser/Declarations-Analyzer, Statement-Analyzer/
// Code-Generator — under the Supervisor, and a final Merge task
// concatenates the per-stream code segments into the object.
package core

import (
	"sort"
	"sync"
	"time"

	"m2cc/internal/ast"
	"m2cc/internal/check"
	"m2cc/internal/codegen"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/event"
	"m2cc/internal/faultinject"
	"m2cc/internal/ifacecache"
	"m2cc/internal/impscan"
	"m2cc/internal/lexer"
	"m2cc/internal/obs"
	"m2cc/internal/parser"
	"m2cc/internal/sched"
	"m2cc/internal/sema"
	"m2cc/internal/source"
	"m2cc/internal/splitter"
	"m2cc/internal/streamcache"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
	"m2cc/internal/vm"
)

// DefaultStallTimeout bounds waits on events owned by foreign
// compilations (interface-cache leaders in other sessions) when
// Options.StallTimeout is zero.  A healthy leader publishes or fails
// its entry in well under a second; a leader silent this long is
// treated as wedged and the waiter compiles the interface itself.
const DefaultStallTimeout = 30 * time.Second

// HeaderMode selects how procedure headings are shared between parent
// and child scopes (§2.4).
type HeaderMode uint8

const (
	// HeaderShared is alternative 1 (the paper's choice): the parent
	// processes the heading and copies the entries into the child scope;
	// the child stream starts only once its heading is processed.
	HeaderShared HeaderMode = iota
	// HeaderReprocess is alternative 3: parent and child each process
	// the heading, trading ~3% redundant work for no sharing.
	HeaderReprocess
)

// LongProcTokens is the stream size (in tokens) from which a
// procedure's statement-analysis/code-generation task is classed as
// "long" and therefore scheduled before short ones (§2.3.4).
const LongProcTokens = 300

// Options configure one concurrent compilation.
type Options struct {
	// Workers is the number of worker slots — "one compiler process for
	// each real hardware processor" (§2.3.2).
	Workers int
	// Strategy selects DKY handling (default Skeptical).
	Strategy symtab.Strategy
	// Headers selects §2.4 heading sharing (default HeaderShared).
	Headers HeaderMode
	// CollectStats enables the Table 2 lookup statistics.
	CollectStats bool
	// Trace attaches a schedule-independent trace recorder; collect
	// traces with Workers=1 for deterministic replays.
	Trace bool
	// BlockSize overrides the token-queue block size (tests).
	BlockSize int
	// Cache, when non-nil, shares completed definition-module
	// compilations across compilations: the once-only interface table
	// consults it before spawning a def stream, and publishes cleanly
	// compiled interfaces back.  Caching is correctness-transparent —
	// diagnostics and listings are byte-identical with or without it.
	Cache *ifacecache.Cache
	// StreamCache, when non-nil, enables incremental recompilation at
	// stream granularity: each procedure stream (and the module body)
	// is keyed by a content hash of its token layout, its enclosing
	// declarations, and the compilation's interface closure; hits
	// replay the stream's cached object code, diagnostics, and lint
	// facts instead of re-running its parse/analysis/codegen tasks,
	// and fresh streams are published back.  Caching is correctness-
	// transparent — output is byte-identical to a cold build.  Unlike
	// Cache, the stream cache composes with Check (fact tables are
	// part of the cached payload).  The sequential compiler ignores
	// it.
	StreamCache *streamcache.Cache
	// StallTimeout bounds how long any task may wait on an event owned
	// by a foreign compilation (another session's interface-cache
	// leader).  On expiry the waiter abandons the cache entry and
	// compiles the interface itself, mirroring the cache's
	// failed-leader retry.  Zero selects DefaultStallTimeout; negative
	// disables the bound (waits forever, the pre-fault-tolerance
	// behavior).
	StallTimeout time.Duration
	// Check runs the concurrent static-analysis (lint) passes alongside
	// the compilation: one KindAnalysis task per stream publishes a
	// fact table, and a barrier-gated merge task joins them into
	// Result.Findings.  Lint compilations bypass the interface cache —
	// a cached interface install carries no ASTs to analyze.
	Check bool
	// GlobalQueue selects the pre-work-stealing dispatch discipline:
	// every runnable task goes through the single shared priority
	// queue instead of the per-worker local run queues.  Kept as the
	// benchmark baseline (`m2bench -sched`) and for A/B debugging;
	// scheduling policy and compiler output are identical either way.
	GlobalQueue bool
	// FaultPlan arms the compiler's deterministic fault-injection
	// points (see internal/faultinject).  Production callers leave it
	// nil, which reduces every injection site to a pointer check.
	FaultPlan *faultinject.Plan
	// Obs, when non-nil, attaches the live-observability layer
	// (internal/obs): wall-clock spans for every Supervisor task,
	// fault and watchdog markers, scheduler and cache metrics.  One
	// Observer may span a whole CompileBatch.  Nil costs a pointer
	// check per scheduler transition.
	Obs *obs.Observer
	// Cancel, when non-nil, aborts the compilation when the channel is
	// closed — guards: nothing itself; it is a read-only broadcast
	// (pass a context's Done channel to propagate a deadline):
	// no new stream does work, blocked tasks unwind through the
	// panic-isolation teardown, every worker slot is released, and any
	// interface-cache entries this compilation led are failed so
	// waiters in other sessions retry instead of stranding.  The
	// Result comes back with Canceled set and must be discarded —
	// cancellation asks the compiler to stop, not to answer.
	Cancel <-chan struct{}
}

// Result is the outcome of one concurrent compilation.
type Result struct {
	Object  *vm.Object
	Diags   *diag.Bag
	Files   *source.Set
	Stats   *symtab.Stats
	Trace   *ctrace.Trace
	Streams int // main module + procedures + imported interfaces (Table 1)

	// Faulted marks a poisoned result: a stream task panicked or the
	// deadlock watchdog had to force-fire events, so the object program
	// and diagnostics may be incomplete.  Callers that need a correct
	// answer re-run the module through the sequential compiler
	// (m2cc.Compile does this transparently).
	Faulted bool
	// FellBack reports that this result was produced by the sequential
	// fallback after a faulted concurrent attempt (set by m2cc, never
	// by core.Compile itself).
	FellBack bool
	// Canceled reports that Options.Cancel fired before the
	// compilation finished: the object and diagnostics are partial and
	// must be discarded.  Canceled results never take the sequential
	// fallback — the request was abandoned, not wounded.
	Canceled bool

	// StreamCache is this compilation's stream-cache traffic
	// (Options.StreamCache); nil when no stream cache was attached.
	StreamCache *streamcache.Tally

	// Findings holds the static-analysis findings (Options.Check),
	// sorted and deduplicated; byte-identical to the sequential
	// analyzer's output under every strategy and worker count.
	Findings []diag.Diagnostic
	// CheckFellBack reports that an analysis task panicked and the
	// findings were recomputed by the sequential analyzer over the
	// registered units.  The compilation itself is unaffected.
	CheckFellBack bool
}

// Failed reports whether the compilation produced errors.
func (r *Result) Failed() bool { return r.Diags.HasErrors() }

// driver owns the shared state of one concurrent compilation.
type driver struct {
	opts   Options
	loader source.Loader
	module string

	files *source.Set
	diags *diag.Bag
	tab   *symtab.Table
	reg   *vm.Registry
	rec   *ctrace.Recorder
	sup   *sched.Supervisor

	cache  *ifacecache.Cache
	inject *faultinject.Plan
	obs    *obs.Observer
	stall  time.Duration // resolved StallTimeout (0 = unbounded)

	check *check.Checker // non-nil when Options.Check

	// Stream-cache machinery (Options.StreamCache; all nil/zero when
	// disabled).  scache, keyer, verdictEv and scacheBase are set before
	// any task spawns and immutable after; the per-stream verdict state
	// below lives under d.mu.
	scache     *streamcache.Cache
	keyer      *streamcache.Keyer
	verdictEv  *event.Event      // fired by the CacheProbe task; gates every ProcParse and the body StmtCG
	scacheBase streamcache.Stats // shared-cache counters at compilation start (eviction delta)

	mu         sync.Mutex             // guards: every driver field below, mutated from task goroutines
	cacheSeen  obs.CacheCounters      // this compilation's own Acquire outcomes
	ifaces     map[string]*ifaceEntry // the once-only table (§3)
	procs      map[int32]*procStream
	nstream    int32
	allTasks   []*sched.Task
	checkTasks []*sched.Task // per-stream analysis tasks (the lint-merge gates)
	findings   []diag.Diagnostic
	checkFell  bool // checker degraded to the sequential analyzer
	mainKind   ast.ModKind
	poisoned   bool                    // deadlock watchdog fired; publish nothing
	faulted    bool                    // a stream task panicked and was isolated
	canceled   bool                    // Options.Cancel fired; result is abandoned
	resolving  map[string]*event.Event // per-name guard for in-flight cache resolution

	// Stream-cache verdict state (under d.mu).
	mainFileID int32                         // source.File.ID of the main .mod (position replay target)
	closureOK  bool                          // the probe derived keys (closure hashed, split complete)
	verdicts   map[int32]*streamcache.Entry  // stream id → hit entry (absent = miss)
	procKeys   map[int32]streamcache.Key     // stream id → cache key (for recording misses)
	bodyKey    streamcache.Key               // module-body cache key
	bodyEnt    *streamcache.Entry            // module-body hit entry
	bodyMeta   *vm.ProcMeta                  // module-body registry meta (for recording)
	bodyBag    *diag.Bag                     // module-body diagnostic tee (fresh codegen)
	covered    map[int32]bool                // streams installed via an ancestor's hit entry
	pending    []pendingInstall              // cached code awaiting fixup application at merge
	tally      streamcache.Tally             // this compilation's stream-cache traffic
}

// pendingInstall is one cached code segment adopted by this compilation;
// the Merge task re-resolves its symbolic fixups against the current
// registry and attaches the result to meta.
type pendingInstall struct {
	meta *vm.ProcMeta
	rec  *streamcache.ProcRecord
}

// ifaceEntry is one once-only table entry for a definition module.
// optional/failed/resolved are guarded by the driver mutex; load
// failures are reported after the compilation settles so the
// diagnostics do not depend on which import path found the module
// first.
type ifaceEntry struct {
	name     string
	scope    *symtab.Scope
	optional bool // own-def prefetch: absence is not an error
	failed   bool // load failed (set by the Lexor task before queue close)

	cacheEnt *ifacecache.Entry // cache entry this session leads or installed
	cached   bool              // scope was installed from a cache hit
	resolved bool              // Publish/Fail decision has been made
}

// procStream is a procedure stream created by the Splitter.
type procStream struct {
	id     int32
	name   string
	q      *tokq.Queue
	parent int32

	// headingReady is the avoided event fired by the parent's
	// declarations analyzer once the heading is processed (§2.4 alt 1)
	// or as soon as the heading entries exist (alt 3).
	headingReady *event.Event
	child        *sema.ChildProc // set before headingReady fires

	// Stream-cache capture for fresh streams (under d.mu): the stream's
	// own diagnostics (a Bag child teeing into the compilation bag) and
	// its published lint fact table.
	tee   *diag.Bag
	facts *check.Facts
}

// Compile runs the concurrent compiler on the named module.
func Compile(module string, loader source.Loader, opts Options) *Result {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Check {
		// Cached interface installs have no ASTs to analyze; lint
		// compilations compile every interface fresh.
		opts.Cache = nil
	}
	d := &driver{
		opts: opts, loader: loader, module: module,
		files:  source.NewSet(),
		diags:  diag.NewBag(200),
		reg:    vm.NewRegistry(module),
		ifaces: make(map[string]*ifaceEntry),
		procs:  make(map[int32]*procStream),
		cache:  opts.Cache,
		inject: opts.FaultPlan,
		obs:    opts.Obs,
	}
	switch {
	case opts.StallTimeout > 0:
		d.stall = opts.StallTimeout
	case opts.StallTimeout == 0:
		d.stall = DefaultStallTimeout
	}
	if d.cache != nil {
		d.resolving = make(map[string]*event.Event)
	}
	if opts.StreamCache != nil {
		d.scache = opts.StreamCache
		d.keyer = streamcache.NewKeyer()
		d.verdictEv = event.New()
		d.verdicts = make(map[int32]*streamcache.Entry)
		d.procKeys = make(map[int32]streamcache.Key)
		d.covered = make(map[int32]bool)
		d.scacheBase = d.scache.Stats()
	}
	if opts.Check {
		d.check = check.NewChecker(d.inject)
	}
	var stats *symtab.Stats
	if opts.CollectStats {
		// The Table 2 collector tallies every identifier lookup under a
		// lock — real cost, so it stays strictly opt-in.  An attached
		// observer reuses the tallies when they are being collected
		// anyway (NoteLookups below) but never forces them on.
		stats = symtab.NewStats()
	}
	if opts.Trace {
		d.rec = ctrace.NewRecorder()
	}
	d.obs.Begin(opts.Workers, opts.Strategy.String())
	d.tab = symtab.NewTable(opts.Strategy, stats, d.rec)
	d.tab.Inject = d.inject
	d.sup = sched.New(opts.Workers, d.rec)
	d.sup.GlobalQueue = opts.GlobalQueue
	d.sup.Inject = d.inject
	d.sup.StallTimeout = d.stall
	d.sup.Obs = d.obs
	d.sup.OnDeadlock = func(msg string) {
		d.mu.Lock()
		d.poisoned = true
		d.mu.Unlock()
		d.diags.Errorf(module+".mod", token.Pos{}, "%s", msg)
	}
	d.sup.OnPanic = func(t *sched.Task, recovered any, stack []byte) {
		d.mu.Lock()
		d.faulted = true
		d.mu.Unlock()
		d.diags.Errorf(module+".mod", token.Pos{},
			"internal: %s task %q (stream %d) panicked: %v",
			t.Kind(), t.Label, t.Stream(), recovered)
	}

	if opts.Cancel != nil {
		// The cancel watcher lives exactly as long as this call: the
		// deferred close retires it whether the compilation finished,
		// faulted, or was torn down by the cancellation itself.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-opts.Cancel:
				d.cancelNow()
			case <-watchDone:
			}
		}()
	}

	d.startMainStream()
	// Optimistic prefetch of the module's own interface (§3).
	d.iface(module, true, nil)
	d.sup.Wait()
	d.reportLoadFailures()
	d.runCheckMerge()
	d.runMerge()
	d.sup.Wait()
	d.failUnpublished()
	d.recordStreams()

	if d.obs != nil {
		if d.cache != nil {
			// This driver's own Acquire outcomes — not a delta of the
			// shared cache's counters, which concurrent batch siblings
			// would pollute.
			d.mu.Lock()
			cc := d.cacheSeen
			d.mu.Unlock()
			d.obs.NoteCache(cc)
		}
		if d.scache != nil {
			d.mu.Lock()
			ta := d.tally
			d.mu.Unlock()
			delta := d.scache.Stats().Sub(d.scacheBase)
			d.obs.NoteStreams(obs.StreamCounters{
				Probed: int64(ta.Probed), Hits: int64(ta.Hits),
				Misses: int64(ta.Misses), Installed: int64(ta.Installed),
				Covered: int64(ta.Covered), Recorded: int64(ta.Recorded),
				Evictions: delta.Evictions,
			})
		}
		d.obs.NoteSched(d.sup.Counters())
		d.obs.NoteLookups(stats)
		d.obs.Finish()
	}
	// Final cancellation check: the watcher goroutine races the
	// compilation's own completion, so a Cancel that fired before this
	// point may not have been delivered yet.  Context semantics decide
	// the tie — a request whose deadline expired is canceled even if
	// the work happened to finish, so callers see a deterministic
	// Canceled bit instead of a scheduling coin flip.
	if opts.Cancel != nil {
		select {
		case <-opts.Cancel:
			d.cancelNow()
		default:
		}
	}
	res := &Result{
		Object: d.reg.Object(),
		Diags:  d.diags,
		Files:  d.files,
		Stats:  stats,
	}
	d.mu.Lock()
	res.Streams = int(d.nstream) + 1
	res.Faulted = d.poisoned || d.faulted
	res.Canceled = d.canceled
	res.Findings = d.findings
	res.CheckFellBack = d.checkFell
	if d.scache != nil {
		ta := d.tally
		res.StreamCache = &ta
	}
	d.mu.Unlock()
	if d.rec != nil {
		res.Trace = d.rec.Trace()
	}
	return res
}

// cancelNow marks the compilation abandoned and tells the Supervisor:
// tasks not yet started are discharged unrun, blocked waits unwind
// through the panic-isolation teardown (whose deferred seals close the
// token queues), and the end-of-compilation sweeps (failUnpublished)
// still run, so no cache waiter in another session is stranded.
func (d *driver) cancelNow() {
	d.mu.Lock()
	if d.canceled {
		d.mu.Unlock()
		return
	}
	d.canceled = true
	d.mu.Unlock()
	d.sup.Cancel()
}

// spawn registers a task with the Supervisor and tracks it for the
// final merge gate.
func (d *driver) spawn(kind ctrace.TaskKind, stream int32, label string,
	priority int64, gates []*event.Event, parent *ctrace.TaskCtx, run func(*sched.Task)) *sched.Task {
	t := d.sup.Spawn(kind, stream, label, priority, gates, parent, run)
	d.mu.Lock()
	d.allTasks = append(d.allTasks, t)
	d.mu.Unlock()
	return t
}

// spawnCheck schedules a stream's static-analysis task (KindAnalysis).
// The unit's ASTs are complete when this is called, so the task is
// ungated; its kind ranks it behind code generation, so lint work
// never delays the compile proper.
func (d *driver) spawnCheck(stream int32, parent *ctrace.TaskCtx, u *check.Unit, sink func(*check.Facts)) {
	if d.check == nil {
		return
	}
	d.check.AddUnit(u)
	t := d.spawn(ctrace.KindAnalysis, stream, "Lint "+u.Path,
		sched.Priority(ctrace.KindAnalysis, 0), nil, parent,
		func(t *sched.Task) {
			out := d.check.RunUnit(t.Ctx, u)
			if sink != nil && out != nil {
				sink(out)
			}
		})
	d.mu.Lock()
	d.checkTasks = append(d.checkTasks, t)
	d.mu.Unlock()
}

// runCheckMerge spawns the lint-merge task, barrier-gated on every
// analysis task's completion event: the per-stream fact tables join
// into the final findings (or, if any analysis task faulted, the
// sequential analyzer re-runs over the registered units).
func (d *driver) runCheckMerge() {
	if d.check == nil {
		return
	}
	d.mu.Lock()
	gates := make([]*event.Event, len(d.checkTasks))
	for i, t := range d.checkTasks {
		gates[i] = t.Done()
	}
	d.mu.Unlock()
	d.spawn(ctrace.KindMerge, 0, "LintMerge "+d.module,
		sched.Priority(ctrace.KindMerge, 0), gates, nil, func(t *sched.Task) {
			fnd := d.check.Merge(t.Ctx)
			fell := d.check.Faulted()
			d.mu.Lock()
			d.findings = fnd
			d.checkFell = fell
			d.mu.Unlock()
		})
}

// env builds a per-task analysis environment.
func (d *driver) env(t *sched.Task, file string) *sema.Env {
	return d.envBag(t, file, d.diags)
}

// envBag is env with an explicit diagnostic bag — stream-cached
// compilations give each procedure stream a Bag child so its own
// diagnostics can be recorded alongside its code.
func (d *driver) envBag(t *sched.Task, file string, bag *diag.Bag) *sema.Env {
	return &sema.Env{
		Tab:    d.tab,
		Search: &symtab.Searcher{Tab: d.tab, Ctx: t.Ctx, Wait: t.HandledWait},
		Ctx:    t.Ctx,
		Diags:  bag,
		File:   file,
		Reg:    d.reg,
	}
}

// sealOnPanic is deferred by token-queue producer tasks (Lexors, the
// Splitter).  Barrier waits hold their worker slot and are invisible to
// the deadlock watchdog, so a producer that dies leaving its queue open
// would hang every consumer forever.  On panic the queue is sealed with
// a terminating EOF — post-Close Appends are safe no-ops, so racing an
// already-closed queue is harmless — and the panic is re-raised for the
// Supervisor's isolation layer to report.
func sealOnPanic(qs ...*tokq.Queue) {
	r := recover()
	if r == nil {
		return
	}
	for _, q := range qs {
		q.Append(token.Token{Kind: token.EOF})
		q.Close()
	}
	panic(r)
}

// sealProcStreams closes every procedure stream's queue with an EOF;
// deferred by the Splitter so its consumers terminate if it panics
// mid-split.
func (d *driver) sealProcStreams() {
	d.mu.Lock()
	qs := make([]*tokq.Queue, 0, len(d.procs))
	for _, ps := range d.procs {
		qs = append(qs, ps.q)
	}
	d.mu.Unlock()
	for _, q := range qs {
		q.Append(token.Token{Kind: token.EOF})
		q.Close()
	}
}

// newStream allocates the next stream number.
func (d *driver) newStream() int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nstream++
	return d.nstream
}

// ---------------------------------------------------------------------
// Main module stream

func (d *driver) startMainStream() {
	rawQ := tokq.New(d.opts.BlockSize)
	rawQ.Retain(2) // Importer + Splitter
	mainQ := tokq.New(d.opts.BlockSize)
	mainQ.Retain(1) // ModParse
	lexStarted := event.New()
	splitStarted := event.New()

	label := d.module + ".mod"

	// Lexor: never blocks; fires lexStarted as its first action so that
	// barrier waits downstream always have a live producer (§2.3.3).
	d.spawn(ctrace.KindLexor, 0, "Lexor "+label,
		sched.Priority(ctrace.KindLexor, 0), nil, nil, func(t *sched.Task) {
			defer sealOnPanic(rawQ)
			t.Ctx.FireEvent(lexStarted)
			rawQ.SetFireHook(t.Ctx.FireEvent)
			text, err := d.loader.Load(d.module, source.Impl)
			if err != nil {
				d.diags.Errorf(label, token.Pos{}, "cannot load module: %v", err)
				rawQ.Append(token.Token{Kind: token.EOF})
				rawQ.Close()
				return
			}
			f := d.files.Add(d.module, source.Impl, text)
			if d.scache != nil {
				d.mu.Lock()
				d.mainFileID = f.ID
				d.mu.Unlock()
			}
			lexer.Run(f, t.Ctx, d.diags, rawQ)
		})

	// Importer: scans the raw token stream for imports (§3).
	d.spawn(ctrace.KindImporter, 0, "Importer "+label,
		sched.Priority(ctrace.KindImporter, 0), []*event.Event{lexStarted}, nil,
		func(t *sched.Task) {
			r := rawQ.NewReader(t.BarrierWait)
			defer r.Detach()
			impscan.Run(t.Ctx, r, func(name string, pos token.Pos) {
				d.iface(name, false, t)
			})
		})

	// Splitter: divides the stream into procedure streams (§2.1).
	splitTask := d.spawn(ctrace.KindSplitter, 0, "Splitter "+label,
		sched.Priority(ctrace.KindSplitter, 0), []*event.Event{lexStarted}, nil,
		func(t *sched.Task) {
			defer func() {
				if r := recover(); r != nil {
					// Seal the main queue and every procedure stream the
					// splitter produces, so their parsers terminate.
					d.sealProcStreams()
					mainQ.Append(token.Token{Kind: token.EOF})
					mainQ.Close()
					panic(r)
				}
			}()
			t.Ctx.FireEvent(splitStarted)
			r := rawQ.NewReader(t.BarrierWait)
			defer r.Detach()
			if d.keyer != nil {
				splitter.RunObserved(t.Ctx, r, mainQ, d.startProcStream(t),
					d.opts.Headers == HeaderReprocess, d.keyer)
			} else {
				splitter.Run(t.Ctx, r, mainQ, d.startProcStream(t),
					d.opts.Headers == HeaderReprocess)
			}
		})

	if d.scache != nil {
		// CacheProbe: once the split settles, hash every stream's layout,
		// look the keys up, and fire the verdict event the proc-parse and
		// body tasks are gated on.  A panicked splitter still completes
		// its Done event, so the probe always runs; an incomplete split
		// simply yields an all-miss verdict.
		probe := d.spawn(ctrace.KindImporter, 0, "CacheProbe "+label,
			sched.Priority(ctrace.KindImporter, 0),
			[]*event.Event{splitTask.Done()}, nil,
			func(t *sched.Task) { d.runCacheProbe(t) })
		d.sup.SetProducer(d.verdictEv, probe)
	}

	// Module Parser / Declarations Analyzer (priority class 5).
	d.spawn(ctrace.KindModParseDecl, 0, "ModParse "+label,
		sched.Priority(ctrace.KindModParseDecl, 0), []*event.Event{splitStarted}, nil,
		func(t *sched.Task) {
			d.runModParse(t, mainQ, label)
		})
}

// startProcStream is the splitter's StartProc callback: it creates the
// stream bookkeeping and spawns the stream's Parser/Decl-Analyzer task,
// gated on the heading event.
func (d *driver) startProcStream(splitterTask *sched.Task) splitter.StartProc {
	return func(name string, pos token.Pos, parent int32) (int32, *tokq.Queue) {
		id := d.newStream()
		ps := &procStream{
			id: id, name: name, parent: parent,
			q:            tokq.New(d.opts.BlockSize),
			headingReady: event.New(),
		}
		ps.q.Retain(1) // ProcParse
		d.mu.Lock()
		d.procs[id] = ps
		d.mu.Unlock()

		gates := []*event.Event{ps.headingReady}
		if d.scache != nil {
			// The stream must not parse before the probe's verdict: a hit
			// replays the cached compilation instead.
			gates = append(gates, d.verdictEv)
		}
		d.spawn(ctrace.KindProcParseDecl, id, "ProcParse "+name,
			sched.Priority(ctrace.KindProcParseDecl, 0),
			gates, splitterTask.Ctx,
			func(t *sched.Task) { d.runProcParse(t, ps) })
		return id, ps.q
	}
}

// bindChildren wires a declaration analyzer to the stream map: as each
// procedure heading is processed, the matching stream learns its
// ChildProc and its avoided heading event fires.
func (d *driver) bindChildren(t *sched.Task, a *sema.DeclAnalyzer) {
	a.OnChild = func(cp *sema.ChildProc) {
		if cp.Decl.BodyStream == 0 {
			// Inline body (should not happen in concurrent mode); the
			// sequential walker would handle it.  Ignore defensively.
			return
		}
		d.mu.Lock()
		ps := d.procs[cp.Decl.BodyStream]
		d.mu.Unlock()
		if ps == nil {
			d.diags.Errorf(t.Label, cp.Sym.Pos, "internal: unknown stream %d", cp.Decl.BodyStream)
			return
		}
		ps.child = cp
		if d.inject.Hit(faultinject.DropFire) {
			// Injected: the heading-ready fire is dropped, wedging the
			// procedure stream until the deadlock watchdog breaks it and
			// poisons the result.
			return
		}
		t.Ctx.FireEvent(ps.headingReady)
	}
}

// runModParse is the main module's Parser/Declarations-Analyzer task.
func (d *driver) runModParse(t *sched.Task, mainQ *tokq.Queue, label string) {
	env := d.env(t, label)
	mr := mainQ.NewReader(t.BarrierWait)
	defer mr.Detach()
	p := parser.New(mr, label, t.Ctx, d.diags)
	m := p.ParsePrologue()

	var parent *symtab.Scope
	entry := d.iface(d.module, true, t)
	switch m.Kind {
	case ast.ImplMod:
		parent = entry.scope
		d.setMainKind(ast.ImplMod)
	case ast.DefMod:
		d.diags.Errorf(label, m.Pos, "%s.mod must be an IMPLEMENTATION or program MODULE", d.module)
	}
	if m.Name.Text != d.module {
		d.diags.Errorf(label, m.Name.Pos, "module name %s does not match file %s", m.Name.Text, label)
	}

	scope := d.tab.NewScope(symtab.ModuleScope, d.module, parent, 0)
	d.sup.SetProducer(scope.CompletionEvent(), t)
	if d.rec != nil && parent != nil {
		d.rec.NoteScopeGate(t.Ctx.ID, parent.CompletionEvent())
	}
	a := sema.NewModuleAnalyzer(env, scope, d.module+".mod", d.module, d.module+".mod", false)
	a.ShareHeadings = d.opts.Headers == HeaderShared
	d.bindChildren(t, a)
	a.AnalyzeImports(m.Imports, func(name string) *symtab.Scope {
		return d.iface(name, false, t).scope
	})
	decls := p.ParseDeclarations()
	a.Analyze(decls)
	a.ResolveForwardRefs()
	d.reg.SetAreaSlots(a.Area, a.NextOff)
	// §3: the symbol table is marked complete before the statement
	// parse tree is built, so DKY blockages resolve as early as possible.
	scope.Complete(t.Ctx)
	p.ParseBody(m)
	d.spawnCheck(0, t.Ctx, &check.Unit{
		Kind: check.ModuleUnit, File: label, Module: d.module, Path: label,
		Imports: m.Imports, Decls: decls, Body: m.Body,
	}, nil)

	if m.Body != nil {
		size := int64(mainQ.Len())
		kind := ctrace.KindShortStmtCG
		if size >= LongProcTokens {
			kind = ctrace.KindLongStmtCG
		}
		bodyMeta := sema.NewBodyMeta(env)
		var gates []*event.Event
		if d.scache != nil {
			d.mu.Lock()
			d.bodyMeta = bodyMeta
			d.mu.Unlock()
			gates = []*event.Event{d.verdictEv}
		}
		d.spawn(kind, 0, "StmtCG "+label+" body",
			sched.Priority(kind, size), gates, t.Ctx, func(t2 *sched.Task) {
				if d.scache != nil {
					d.runBodyStmtCG(t2, scope, bodyMeta, m.Body, label)
					return
				}
				env2 := d.env(t2, label)
				codegen.Compile(env2, scope, bodyMeta, nil, 0, m.Body)
			})
	}
}

// runBodyStmtCG is the module body's code-generation task under a
// stream cache: a verdict hit replays the cached body, a miss runs the
// generator with a diagnostic tee so the body can be recorded.
func (d *driver) runBodyStmtCG(t *sched.Task, scope *symtab.Scope, bodyMeta *vm.ProcMeta, body *ast.StmtList, label string) {
	d.mu.Lock()
	ent := d.bodyEnt
	fileID := d.mainFileID
	d.mu.Unlock()
	if ent != nil {
		rec := &ent.Records[0]
		bodyMeta.Frame = rec.Frame
		d.addPending(bodyMeta, rec)
		d.replayRecord(rec, fileID)
		d.mu.Lock()
		d.tally.Installed++
		d.mu.Unlock()
		t.Ctx.Add(ctrace.CostMergeSegment)
		return
	}
	bag := d.diags.Child()
	d.mu.Lock()
	d.bodyBag = bag
	d.mu.Unlock()
	env := d.envBag(t, label, bag)
	codegen.Compile(env, scope, bodyMeta, nil, 0, body)
}

// runProcParse is a procedure stream's Parser/Declarations-Analyzer
// task (§3, right column of Figure 5).
func (d *driver) runProcParse(t *sched.Task, ps *procStream) {
	cp := ps.child
	if d.scache != nil {
		d.mu.Lock()
		cov := d.covered[ps.id]
		ent := d.verdicts[ps.id]
		d.mu.Unlock()
		if cov {
			// An ancestor's hit entry already installed this stream's
			// compilation; drain the queue for recycle accounting.
			r := ps.q.NewReader(t.BarrierWait)
			r.Detach()
			d.mu.Lock()
			d.tally.Covered++
			d.mu.Unlock()
			return
		}
		if ent != nil && cp != nil {
			d.installStream(t, ps, ent)
			return
		}
	}
	if cp == nil {
		// The heading never arrived (its producer faulted or the fire
		// was dropped) and the watchdog force-fired our gate; the
		// result is already poisoned — nothing to parse.
		return
	}
	label := cp.Meta.Module + ".mod"
	bag := d.diags
	if d.scache != nil {
		// Tee the stream's own diagnostics so a recorded entry can
		// replay them; the child forwards to the compilation bag, so
		// user-visible behavior is unchanged.
		bag = d.diags.Child()
		d.mu.Lock()
		ps.tee = bag
		d.mu.Unlock()
	}
	env := d.envBag(t, label, bag)
	d.sup.SetProducer(cp.Scope.CompletionEvent(), t)
	if d.rec != nil && cp.Scope.Parent != nil {
		d.rec.NoteScopeGate(t.Ctx.ID, cp.Scope.Parent.CompletionEvent())
	}

	pr := ps.q.NewReader(t.BarrierWait)
	defer pr.Detach()
	p := parser.New(pr, label, t.Ctx, bag)
	frameBase := cp.FrameBase
	if d.opts.Headers == HeaderReprocess {
		// Alternative 3: this stream re-processes its own heading (the
		// splitter copied the heading tokens into this queue).
		head := p.ParseProcHead()
		p.AcceptSemicolon()
		frameBase = sema.AnalyzeOwnHeading(env, cp, head)
	}

	a := sema.NewProcAnalyzer(env, cp)
	a.NextOff = frameBase
	a.ShareHeadings = d.opts.Headers == HeaderShared
	d.bindChildren(t, a)
	decls := p.ParseDeclarations()
	a.Analyze(decls)
	a.ResolveForwardRefs()
	cp.Scope.Complete(t.Ctx)
	tail := p.ParseProcTail(ps.name)
	var sink func(*check.Facts)
	if d.scache != nil {
		sink = func(f *check.Facts) {
			d.mu.Lock()
			ps.facts = f
			d.mu.Unlock()
		}
	}
	d.spawnCheck(ps.id, t.Ctx, &check.Unit{
		Kind: check.ProcUnit, File: label, Module: cp.Meta.Module, Path: cp.ScopePath,
		ProcName: cp.Decl.Head.Name.Text, Head: cp.Decl.Head,
		Decls: decls, Body: tail.Body,
	}, sink)

	size := int64(ps.q.Len())
	kind := ctrace.KindShortStmtCG
	if size >= LongProcTokens {
		kind = ctrace.KindLongStmtCG
	}
	frameAfterDecls := a.NextOff
	d.spawn(kind, ps.id, "StmtCG "+cp.Meta.FullName(),
		sched.Priority(kind, size), nil, t.Ctx, func(t2 *sched.Task) {
			env2 := d.envBag(t2, label, bag)
			codegen.Compile(env2, cp.Scope, cp.Meta, cp.Sym.Type, frameAfterDecls, tail.Body)
		})
}

// installStream replays a hit entry in place of parsing the stream: the
// procedure's registry meta (created by the parent's heading analysis)
// adopts the cached frame and code, descendant procedures are
// re-registered from their records, every record's diagnostics and lint
// facts are replayed with positions rebased onto the current main file,
// and the descendants' streams are marked covered and released.
func (d *driver) installStream(t *sched.Task, ps *procStream, ent *streamcache.Entry) {
	cp := ps.child
	r := ps.q.NewReader(t.BarrierWait)
	r.Detach()
	d.sup.SetProducer(cp.Scope.CompletionEvent(), t)
	d.inject.Panic(faultinject.PanicInstall, ps.name)
	// The scope completes empty: only this procedure's descendants could
	// search it, and they are covered below, never analyzed.
	cp.Scope.Complete(t.Ctx)

	d.mu.Lock()
	fileID := d.mainFileID
	d.mu.Unlock()

	own := &ent.Records[0]
	cp.Meta.Frame = own.Frame
	d.addPending(cp.Meta, own)
	d.replayRecord(own, fileID)
	for i := 1; i < len(ent.Records); i++ {
		rec := &ent.Records[i]
		pos := rec.Pos
		reFile(&pos, fileID)
		meta := d.reg.NewProc(rec.Name, rec.Exported, rec.IsBody,
			rec.Level, rec.ArgSlots, rec.HasRet, pos)
		meta.Frame = rec.Frame
		d.addPending(meta, rec)
		d.replayRecord(rec, fileID)
	}

	// Release the covered descendants: nobody will ever bind their
	// headings, so their gates are fired here (their parse tasks see
	// covered and return).
	desc := d.keyer.Descendants(ps.id)
	var fire []*event.Event
	d.mu.Lock()
	for _, id := range desc {
		d.covered[id] = true
		if dps := d.procs[id]; dps != nil {
			fire = append(fire, dps.headingReady)
		}
	}
	d.tally.Installed++
	d.mu.Unlock()
	for _, ev := range fire {
		t.Ctx.FireEvent(ev)
	}
	t.Ctx.Add(float64(len(ent.Records)) * ctrace.CostMergeSegment)
}

// replayRecord re-emits a cached record's diagnostics into the
// compilation bag and re-pins its lint facts, rebasing every stored
// position (file index 0) onto the current main file.
func (d *driver) replayRecord(rec *streamcache.ProcRecord, fileID int32) {
	for _, dg := range rec.Diags {
		reFile(&dg.Pos, fileID)
		reFile(&dg.End, fileID)
		d.diags.Add(dg)
	}
	if d.check != nil && rec.Facts != nil {
		d.check.AddPinned(rewriteFacts(rec.Facts, fileID))
	}
}

// addPending queues one cached code segment for fixup application by
// the Merge task.
func (d *driver) addPending(meta *vm.ProcMeta, rec *streamcache.ProcRecord) {
	d.mu.Lock()
	d.pending = append(d.pending, pendingInstall{meta: meta, rec: rec})
	d.mu.Unlock()
}

// reFile retargets a position's file index, leaving invalid (zero)
// positions untouched so replayed diagnostics stay struct-identical to
// freshly produced ones.
func reFile(p *token.Pos, fileID int32) {
	if p.IsValid() {
		p.File = fileID
	}
}

// copyNames returns ns with every valid position retargeted to fileID.
func copyNames(ns []ast.Name, fileID int32) []ast.Name {
	if ns == nil {
		return nil
	}
	out := make([]ast.Name, len(ns))
	for i, n := range ns {
		reFile(&n.Pos, fileID)
		out[i] = n
	}
	return out
}

// rewriteFacts deep-copies a fact table's position-bearing fields with
// their file index retargeted — to 0 when recording, to the current
// main file when replaying.  The Mentions set carries no positions and
// is shared read-only.
func rewriteFacts(f *check.Facts, fileID int32) *check.Facts {
	g := *f
	reFile(&g.HeadName.Pos, fileID)
	g.Locals = copyNames(f.Locals, fileID)
	g.Params = copyNames(f.Params, fileID)
	g.DeclNames = copyNames(f.DeclNames, fileID)
	if f.Imports != nil {
		g.Imports = make([]check.ImportFact, len(f.Imports))
		for i, imp := range f.Imports {
			reFile(&imp.Name.Pos, fileID)
			g.Imports[i] = imp
		}
	}
	if f.Findings != nil {
		g.Findings = make([]diag.Diagnostic, len(f.Findings))
		for i, dg := range f.Findings {
			reFile(&dg.Pos, fileID)
			reFile(&dg.End, fileID)
			g.Findings[i] = dg
		}
	}
	if f.Conc != nil {
		c := *f.Conc
		c.ModuleVars = copyNames(f.Conc.ModuleVars, fileID)
		if f.Conc.Acquires != nil {
			c.Acquires = make([]check.ConcAcquire, len(f.Conc.Acquires))
			for i, a := range f.Conc.Acquires {
				reFile(&a.Pos, fileID)
				c.Acquires[i] = a // Held is canonical and shared read-only
			}
		}
		if f.Conc.Accesses != nil {
			c.Accesses = make([]check.ConcAccess, len(f.Conc.Accesses))
			for i, a := range f.Conc.Accesses {
				reFile(&a.Pos, fileID)
				c.Accesses[i] = a
			}
		}
		if f.Conc.Calls != nil {
			c.Calls = make([]check.ConcCall, len(f.Conc.Calls))
			for i, a := range f.Conc.Calls {
				reFile(&a.Pos, fileID)
				c.Calls[i] = a
			}
		}
		g.Conc = &c
	}
	return &g
}

// ---------------------------------------------------------------------
// Definition module streams

// iface returns the once-only table entry for a definition module,
// starting its stream (Lexor, Importer, Parser/Decl-Analyzer) on first
// reference.  With a cache attached it consults the cache first: a hit
// installs the sealed closure with zero spawned tasks; a miss makes
// this compilation the single-flight leader; concurrent leaders in
// other compilations are waited out (t supplies the external-wait
// discipline; nil — the prefetch from the main goroutine — waits
// inline).
func (d *driver) iface(name string, optional bool, t *sched.Task) *ifaceEntry {
	d.mu.Lock()
	for {
		if e, ok := d.ifaces[name]; ok {
			if !optional && e.optional {
				e.optional = false
			}
			d.mu.Unlock()
			return e
		}
		if d.cache == nil || d.canceled {
			// No cache — or an abandoned compilation, which must not
			// take cache leadership it would only fail at the sweep.
			d.mu.Unlock()
			return d.startIface(name, optional, nil)
		}
		ev, busy := d.resolving[name]
		if !busy {
			break
		}
		// Another task of this compilation is resolving the same name
		// against the cache; wait for its verdict and re-check.
		d.mu.Unlock()
		if !d.extWait(t, ev) {
			// The resolving task stalled past the deadline (wedged on a
			// foreign leader, or lost to a fault); stop waiting on it and
			// compile the interface without the cache.  startIface
			// re-checks the once-only table, so if the resolver did land
			// meanwhile its entry is reused.
			d.obs.StallAbandoned(obsTaskID(t))
			return d.startIface(name, optional, nil)
		}
		d.mu.Lock()
	}
	resolved := event.New()
	d.resolving[name] = resolved
	d.mu.Unlock()

	var e *ifaceEntry
	for e == nil {
		ent, ev, st := d.cache.Acquire(name, d.loader)
		switch st {
		case ifacecache.Wait:
			d.cacheTally(&d.cacheSeen.Waits)
			if d.extWait(t, ev) {
				continue // re-acquire: the leader published or failed
			}
			// The foreign leader stalled past StallTimeout.  Abandon the
			// cache entry and compile the interface ourselves — the same
			// degradation the cache applies to a failed leader, except
			// this session does not wait for the verdict.
			d.cacheTally(&d.cacheSeen.Abandoned)
			d.cache.NoteAbandoned()
			d.obs.StallAbandoned(obsTaskID(t))
			e = d.startIface(name, optional, nil)
		case ifacecache.Hit:
			d.cacheTally(&d.cacheSeen.Hits)
			e = d.installCached(name, optional, ent)
			if e == nil {
				// A closure member conflicts with a scope this session
				// already holds; compile fresh without the cache so all
				// references keep pointer-identical types.
				e = d.startIface(name, optional, nil)
			}
		case ifacecache.Lead:
			d.cacheTally(&d.cacheSeen.Misses)
			e = d.startIface(name, optional, ent)
		default: // Bypass
			d.cacheTally(&d.cacheSeen.Bypasses)
			e = d.startIface(name, optional, nil)
		}
	}

	d.mu.Lock()
	delete(d.resolving, name)
	d.mu.Unlock()
	// A driver-owned fire (task 0): observed waiters on the resolution
	// guard get a matching fire edge instead of an unexplained unblock.
	d.obs.EventFired(0, resolved)
	resolved.Fire() // vet:allowfire driver-owned fire; EventFired above is the trace record
	return e
}

// cacheTally bumps one counter of d.cacheSeen (field address is stable;
// the increment itself needs d.mu).  Skipped entirely when no observer
// is attached — the counters exist only for the metrics snapshot.
func (d *driver) cacheTally(counter *int64) {
	if d.obs == nil {
		return
	}
	d.mu.Lock()
	*counter++
	d.mu.Unlock()
}

// obsTaskID maps a possibly-nil task (nil = the prefetch running on the
// main goroutine) to its observability ID; 0 means unobserved.
func obsTaskID(t *sched.Task) int {
	if t == nil {
		return 0
	}
	return t.ObsID()
}

// extWait parks on an event owned outside this task's supervisor
// (another compilation's cache leader, or another task's resolution),
// bounded by the resolved stall timeout.  It reports whether the event
// fired; false means the wait was abandoned at the deadline.
func (d *driver) extWait(t *sched.Task, ev *event.Event) bool {
	if t == nil {
		// The prefetch from the main goroutine waits inline, under the
		// same deadline and cancellation discipline as supervised tasks
		// (a nil Cancel channel never fires).
		if d.stall > 0 {
			timer := time.NewTimer(d.stall)
			defer timer.Stop()
			select {
			case <-ev.Done():
				return true
			case <-timer.C:
				return ev.Fired()
			case <-d.opts.Cancel:
				return ev.Fired()
			}
		}
		select {
		case <-ev.WaitChan():
			return true
		case <-d.opts.Cancel:
			return ev.Fired()
		}
	}
	return t.ExternalWait(ev)
}

// installCached installs a ready cache entry's whole closure into the
// once-only table: for each member not yet known to this compilation,
// the sealed scope is adopted, its storage area and imports registered,
// and the scope marked pre-fired for the trace (a cache hit spawns no
// tasks and its completion predates every task).  Returns nil without
// installing anything if any member's name is already bound to a
// *different* scope — mixing scope generations would break
// pointer-identity type compatibility.
func (d *driver) installCached(name string, optional bool, ent *ifacecache.Entry) *ifaceEntry {
	if d.inject.Hit(faultinject.FailInstall) {
		return nil // injected: decline the hit, forcing the compile-fresh path
	}
	closure := ent.Closure()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range closure {
		if ex, ok := d.ifaces[m.Name()]; ok && ex.scope != m.Scope() {
			return nil
		}
	}
	var result *ifaceEntry
	for _, m := range closure {
		mname := m.Name()
		if ex, ok := d.ifaces[mname]; ok {
			if mname == name {
				if !optional && ex.optional {
					ex.optional = false
				}
				result = ex
			}
			continue
		}
		opt := false
		if mname == name {
			opt = optional
		}
		e := &ifaceEntry{
			name: mname, scope: m.Scope(), optional: opt,
			cacheEnt: m, cached: true, resolved: true,
		}
		d.ifaces[mname] = e
		d.reg.SetAreaSlots(d.reg.AreaIdx(m.AreaName()), m.AreaSlots())
		for _, imp := range m.Imports() {
			d.reg.AddImport(imp)
		}
		d.tab.MarkPrefired(m.Scope())
		if d.rec != nil {
			d.rec.NotePrefired(m.Scope().CompletionEvent())
		}
		if mname == name {
			result = e
		}
	}
	return result
}

// startIface inserts the once-only entry for name and spawns its def
// stream.  ent, when non-nil, is the cache entry this compilation
// leads; the DefParse task publishes it on clean completion.
func (d *driver) startIface(name string, optional bool, ent *ifacecache.Entry) *ifaceEntry {
	d.mu.Lock()
	if e, ok := d.ifaces[name]; ok {
		// Installed meanwhile by another task's closure install; yield
		// any leadership we hold so its waiters are not stranded.
		if !optional && e.optional {
			e.optional = false
		}
		d.mu.Unlock()
		if ent != nil {
			ent.Fail()
		}
		return e
	}
	scope := d.tab.NewScope(symtab.DefScope, name, nil, 0)
	e := &ifaceEntry{name: name, scope: scope, optional: optional, cacheEnt: ent}
	d.ifaces[name] = e
	d.nstream++
	stream := d.nstream
	d.mu.Unlock()

	label := name + ".def"
	q := tokq.New(d.opts.BlockSize)
	q.Retain(2) // Importer + DefParse
	lexStarted := event.New()

	d.spawn(ctrace.KindLexor, stream, "Lexor "+label,
		sched.Priority(ctrace.KindLexor, 0), nil, nil, func(t *sched.Task) {
			defer sealOnPanic(q)
			t.Ctx.FireEvent(lexStarted)
			q.SetFireHook(t.Ctx.FireEvent)
			text, err := d.loader.Load(name, source.Def)
			if err != nil {
				d.mu.Lock()
				e.failed = true
				d.mu.Unlock()
				q.Append(token.Token{Kind: token.EOF})
				q.Close()
				return
			}
			f := d.files.Add(name, source.Def, text)
			lexer.Run(f, t.Ctx, d.diags, q)
		})

	d.spawn(ctrace.KindImporter, stream, "Importer "+label,
		sched.Priority(ctrace.KindImporter, 0), []*event.Event{lexStarted}, nil,
		func(t *sched.Task) {
			r := q.NewReader(t.BarrierWait)
			defer r.Detach()
			impscan.Run(t.Ctx, r, func(imp string, pos token.Pos) {
				d.iface(imp, false, t)
			})
		})

	parseTask := d.spawn(ctrace.KindDefParseDecl, stream, "DefParse "+label,
		sched.Priority(ctrace.KindDefParseDecl, 0), []*event.Event{lexStarted}, nil,
		func(t *sched.Task) {
			defer func() {
				if !scope.Completed() {
					scope.Complete(t.Ctx)
				}
				// Early returns (load failure, empty file) leave the
				// entry unpublished; fail it so cache waiters move on.
				d.failEntryIfUnresolved(e)
			}()
			r := q.NewReader(t.BarrierWait)
			defer r.Detach()
			if r.Peek().Kind == token.EOF {
				// Load failed (or empty file): nothing to analyze; the
				// failure is reported once the compilation settles.
				return
			}
			env := d.env(t, label)
			p := parser.New(r, label, t.Ctx, d.diags)
			m := p.ParsePrologue()
			if m.Kind != ast.DefMod {
				d.diags.Errorf(label, m.Pos, "%s is not a DEFINITION MODULE", label)
			}
			a := sema.NewModuleAnalyzer(env, scope, name+".def", name, name+".def", true)
			var directImps []string
			impSeen := make(map[string]bool)
			a.AnalyzeImports(m.Imports, func(imp string) *symtab.Scope {
				if !impSeen[imp] {
					impSeen[imp] = true
					directImps = append(directImps, imp)
				}
				return d.iface(imp, false, t).scope
			})
			decls := p.ParseDeclarations()
			a.Analyze(decls)
			a.ResolveForwardRefs()
			d.reg.SetAreaSlots(a.Area, a.NextOff)
			scope.Complete(t.Ctx)
			d.finishEntry(e, t, a, directImps, label)
			p.ParseBody(m)
			d.spawnCheck(stream, t.Ctx, &check.Unit{
				Kind: check.DefUnit, File: label, Module: name, Path: label,
				Imports: m.Imports, Decls: decls,
			}, nil)
		})
	d.sup.SetProducer(scope.CompletionEvent(), parseTask)
	return e
}

// finishEntry decides the fate of the cache entry this compilation
// leads for e: publish if the interface compiled cleanly (no
// diagnostics against its file, no load failure, no deadlock poison,
// every direct import itself cache-resolved), otherwise fail so the
// next requester retries.  The cost recorded is the def stream's
// deterministic work units at scope completion.
func (d *driver) finishEntry(e *ifaceEntry, t *sched.Task, a *sema.DeclAnalyzer, directImps []string, label string) {
	ent := e.cacheEnt
	if ent == nil {
		return
	}
	// Injected: wedge this leader before it publishes or fails, so
	// foreign waiters exercise their stall timeout.  This session's own
	// tasks are already unblocked — the scope completed above.
	d.inject.Stall(faultinject.StallLeader)
	d.mu.Lock()
	if e.resolved {
		d.mu.Unlock()
		return
	}
	e.resolved = true
	ok := !d.poisoned && !e.failed
	var deps []ifacecache.Dep
	if ok {
		for _, imp := range directImps {
			ie := d.ifaces[imp]
			if ie == nil || ie.cacheEnt == nil {
				ok = false // an uncacheable import makes us uncacheable
				break
			}
			deps = append(deps, ifacecache.Dep{Ent: ie.cacheEnt, Scope: ie.scope})
		}
	}
	scope := e.scope
	d.mu.Unlock()
	if ok && d.diags.HasFor(label) {
		ok = false
	}
	if !ok {
		ent.Fail()
		return
	}
	ent.Publish(scope, a.AreaName, a.NextOff, directImps, deps, t.Ctx.Units)
}

// failEntryIfUnresolved fails e's cache entry if no Publish/Fail
// decision was ever made (early-exit def streams, compiler shutdown).
func (d *driver) failEntryIfUnresolved(e *ifaceEntry) {
	d.mu.Lock()
	ent := e.cacheEnt
	unresolved := ent != nil && !e.resolved
	if unresolved {
		e.resolved = true
	}
	d.mu.Unlock()
	if unresolved {
		ent.Fail()
	}
}

// failUnpublished sweeps the once-only table at compilation end,
// failing any led cache entries that never resolved, so no waiter in
// another compilation is stranded on this session's events.
func (d *driver) failUnpublished() {
	d.mu.Lock()
	entries := make([]*ifaceEntry, 0, len(d.ifaces))
	for _, e := range d.ifaces {
		entries = append(entries, e)
	}
	d.mu.Unlock()
	for _, e := range entries {
		d.failEntryIfUnresolved(e)
	}
}

// setMainKind records the compilation unit's kind for the settled
// load-failure check.
func (d *driver) setMainKind(k ast.ModKind) {
	d.mu.Lock()
	d.mainKind = k
	d.mu.Unlock()
}

// reportLoadFailures emits deterministic diagnostics for interface
// files that could not be loaded, in name order, once all tasks have
// settled (so the result does not depend on which importer found a
// module first).
func (d *driver) reportLoadFailures() {
	d.mu.Lock()
	var failed []*ifaceEntry
	for _, e := range d.ifaces {
		if e.failed {
			failed = append(failed, e)
		}
	}
	mainKind := d.mainKind
	d.mu.Unlock()
	sort.Slice(failed, func(i, j int) bool { return failed[i].name < failed[j].name })
	for _, e := range failed {
		if e.optional {
			if e.name == d.module && mainKind == ast.ImplMod {
				d.diags.Errorf(d.module+".mod", token.Pos{},
					"IMPLEMENTATION MODULE %s requires %s.def", d.module, d.module)
			}
			continue
		}
		d.diags.Errorf(e.name+".def", token.Pos{}, "cannot load module: interface not found")
	}
}

// runMerge spawns the Merge task (§2.1): per-procedure code segments
// concatenate in any order, so it simply freezes the registry, charging
// the concatenation cost.
func (d *driver) runMerge() {
	d.mu.Lock()
	gates := make([]*event.Event, len(d.allTasks))
	for i, t := range d.allTasks {
		gates[i] = t.Done()
	}
	d.mu.Unlock()
	d.spawn(ctrace.KindMerge, 0, "Merge "+d.module,
		sched.Priority(ctrace.KindMerge, 0), gates, nil, func(t *sched.Task) {
			d.applyPendingInstalls()
			obj := d.reg.Object()
			t.Ctx.Add(float64(len(obj.Procs)) * ctrace.CostMergeSegment)
		})
}

// ---------------------------------------------------------------------
// Stream cache: probe, install fixups, record

// runCacheProbe derives every stream's cache key from the completed
// split and looks the keys up; runProcParse and the body task act on
// the verdicts once verdictEv fires (deferred, so a panic here still
// releases the gated tasks into the cold path).
func (d *driver) runCacheProbe(t *sched.Task) {
	defer t.Ctx.FireEvent(d.verdictEv)
	if !d.keyer.Complete() {
		return // split faulted: cold-compile everything, record nothing
	}
	// Closure roots: the module's own interface (when present) plus
	// every import named anywhere in the split, in stream order.
	var roots []string
	seen := make(map[string]bool)
	addRoot := func(name string) {
		if !seen[name] {
			seen[name] = true
			roots = append(roots, name)
		}
	}
	if _, err := d.loader.Load(d.module, source.Def); err == nil {
		addRoot(d.module)
	}
	ids := d.keyer.ProcStreams()
	for _, id := range append([]int32{0}, ids...) {
		for _, imp := range d.keyer.Imports(id) {
			addRoot(imp)
		}
	}
	closure, ok := d.scache.ClosureHash(d.loader, roots)
	if !ok {
		return // unhashable closure (load failure or import cycle): uncacheable
	}
	kp := streamcache.KeyParams{
		Reprocess: d.opts.Headers == HeaderReprocess,
		Check:     d.opts.Check,
		Closure:   closure,
	}
	verdicts := make(map[int32]*streamcache.Entry, len(ids))
	keys := make(map[int32]streamcache.Key, len(ids))
	var ta streamcache.Tally
	for _, id := range ids {
		k := d.keyer.ProcKey(id, kp)
		keys[id] = k
		ta.Probed++
		if ent, hit := d.scache.Get(k); hit {
			verdicts[id] = ent
			ta.Hits++
		} else {
			ta.Misses++
		}
	}
	bodyKey := d.keyer.BodyKey(kp)
	ta.Probed++
	bodyEnt, bodyHit := d.scache.Get(bodyKey)
	if bodyHit {
		ta.Hits++
	} else {
		ta.Misses++
	}
	d.mu.Lock()
	d.closureOK = true
	d.verdicts = verdicts
	d.procKeys = keys
	d.bodyKey = bodyKey
	d.bodyEnt = bodyEnt
	d.tally = ta
	d.mu.Unlock()
	t.Ctx.Add(float64(len(ids)+1) * ctrace.CostMergeSegment)
}

// applyPendingInstalls re-resolves every adopted cached code segment's
// symbolic fixups against this compilation's registry and attaches the
// rewritten code.  Runs inside the Merge task, after every stream task
// has completed (so the registry's name tables are final).
func (d *driver) applyPendingInstalls() {
	d.mu.Lock()
	pending := d.pending
	d.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	obj := d.reg.Object()
	byName := make(map[string]int32, len(obj.Procs))
	for _, p := range obj.Procs {
		byName[p.FullName()] = p.Idx
	}
	procIdx := func(name string) (int32, bool) {
		i, ok := byName[name]
		return i, ok
	}
	for _, pi := range pending {
		code, ok := streamcache.ApplyFixups(pi.rec.Code, pi.rec.Fixups,
			procIdx, d.reg.AreaIdx, d.reg.ExcIdx)
		if !ok {
			d.mu.Lock()
			d.faulted = true
			d.mu.Unlock()
			d.diags.Errorf(d.module+".mod", token.Pos{},
				"internal: cached stream %s references unknown procedure", pi.rec.Name)
			return
		}
		pi.meta.Code = code
	}
}

// recordStreams publishes every freshly compiled stream back to the
// cache: one entry per missed, uncovered stream holding its own record
// plus its whole subtree (descendant subtrees that were themselves hits
// contribute their cached records unchanged).  Runs on the main
// goroutine after all tasks have settled; a wounded compilation —
// faulted, poisoned, canceled, incomplete split, failed closure hash,
// or a degraded checker — publishes nothing.
func (d *driver) recordStreams() {
	if d.scache == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.closureOK || d.faulted || d.poisoned || d.canceled ||
		!d.keyer.Complete() || (d.check != nil && d.checkFell) {
		return
	}
	obj := d.reg.Object()
	procName := func(i int32) string { return obj.Procs[i].FullName() }
	areaName := func(i int32) string { return obj.Areas[i].Name }
	excName := func(i int32) string { return obj.Excs[i] }

	memo := make(map[int32][]streamcache.ProcRecord)
	var collect func(id int32) []streamcache.ProcRecord
	collect = func(id int32) []streamcache.ProcRecord {
		if rs, ok := memo[id]; ok {
			return rs
		}
		var rs []streamcache.ProcRecord
		if ent := d.verdicts[id]; ent != nil {
			rs = ent.Records
		} else if rec, ok := d.makeRecord(id, procName, areaName, excName); ok {
			rs = []streamcache.ProcRecord{rec}
			for _, c := range d.keyer.Children(id) {
				crs := collect(c)
				if crs == nil {
					rs = nil
					break
				}
				rs = append(rs, crs...)
			}
		}
		memo[id] = rs
		return rs
	}
	for _, id := range d.keyer.ProcStreams() {
		if d.verdicts[id] != nil || d.covered[id] {
			continue
		}
		rs := collect(id)
		if rs == nil {
			continue
		}
		d.scache.Put(d.procKeys[id], &streamcache.Entry{Records: rs})
		d.tally.Recorded++
	}
	if d.bodyEnt == nil && d.bodyMeta != nil {
		rec := streamcache.ProcRecord{
			Name: d.bodyMeta.Name, Exported: d.bodyMeta.Exported,
			IsBody: true, Level: d.bodyMeta.Level,
			ArgSlots: d.bodyMeta.ArgSlots, Frame: d.bodyMeta.Frame,
			HasRet: d.bodyMeta.HasRet, Pos: normPos(d.bodyMeta.Pos),
			Code:   d.bodyMeta.Code,
			Fixups: streamcache.ExtractFixups(d.bodyMeta.Code, procName, areaName, excName),
			Diags:  normDiags(d.bodyBag),
		}
		d.scache.Put(d.bodyKey, &streamcache.Entry{Records: []streamcache.ProcRecord{rec}})
		d.tally.Recorded++
	}
}

// makeRecord captures one freshly compiled procedure stream.  Caller
// holds d.mu (all tasks have settled, so nothing contends).
func (d *driver) makeRecord(id int32, procName, areaName, excName func(int32) string) (streamcache.ProcRecord, bool) {
	ps := d.procs[id]
	if ps == nil || ps.child == nil || ps.tee == nil {
		return streamcache.ProcRecord{}, false
	}
	meta := ps.child.Meta
	if d.check != nil && ps.facts == nil {
		return streamcache.ProcRecord{}, false
	}
	rec := streamcache.ProcRecord{
		Name: meta.Name, Exported: meta.Exported, IsBody: meta.IsBody,
		Level: meta.Level, ArgSlots: meta.ArgSlots, Frame: meta.Frame,
		HasRet: meta.HasRet, Pos: normPos(meta.Pos),
		Code:   meta.Code,
		Fixups: streamcache.ExtractFixups(meta.Code, procName, areaName, excName),
		Diags:  normDiags(ps.tee),
	}
	if ps.facts != nil {
		rec.Facts = rewriteFacts(ps.facts, 0)
	}
	return rec, true
}

// normPos returns p with its file index normalized to 0 for storage.
func normPos(p token.Pos) token.Pos {
	reFile(&p, 0)
	return p
}

// normDiags snapshots a stream tee's diagnostics with positions
// normalized for storage.
func normDiags(bag *diag.Bag) []diag.Diagnostic {
	if bag == nil {
		return nil
	}
	ds := bag.Recorded()
	for i := range ds {
		reFile(&ds[i].Pos, 0)
		reFile(&ds[i].End, 0)
	}
	return ds
}
