package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	// le=1 → {0.5, 1}; le=5 → +{3}; le=10 → +{7}; +Inf → +{100}.
	want := []int64{2, 3, 4, 5}
	if len(s.Cumulative) != len(want) {
		t.Fatalf("cumulative len %d, want %d", len(s.Cumulative), len(want))
	}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, s.Cumulative[i], w, s.Cumulative)
		}
	}
	if s.Sum != 111.5 {
		t.Fatalf("sum = %g, want 111.5", s.Sum)
	}
	// Monotone nondecreasing, +Inf equals count — the property the
	// Prometheus exposition (and its smoke check) relies on.
	for i := 1; i < len(s.Cumulative); i++ {
		if s.Cumulative[i] < s.Cumulative[i-1] {
			t.Fatalf("cumulative not monotone at %d: %v", i, s.Cumulative)
		}
	}
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Fatalf("+Inf bucket %d != count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultLatencyBucketsMS)
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i % 50))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*each {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*each)
	}
}

func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot count = %d", s.Count)
	}
}

func TestRollingWindowAgesOut(t *testing.T) {
	r := NewRolling(4, time.Second)
	// Drive the ring by tick directly: tick 0 gets two values, tick 5
	// (more than a full ring later) gets one — tick 0 must be gone.
	r.mu.Lock()
	r.addAtLocked(0, 10)
	r.addAtLocked(0, 20)
	r.addAtLocked(5, 7)
	r.mu.Unlock()

	// Snapshot computes "now" from the wall clock, so read the ring
	// directly for the aging assertion.
	r.mu.Lock()
	defer r.mu.Unlock()
	slot0 := int(0 % int64(len(r.ticks)))
	if r.ticks[slot0] == 0 {
		// slot for tick 0 is index 0; tick 4 also maps there but was
		// never written, so tick 0's stale data may remain — the
		// snapshot's tick check is what hides it.  Write tick 4 to
		// force the overwrite path instead.
		r.addAtLocked(4, 1)
		if r.ticks[slot0] != 4 || r.counts[slot0] != 1 {
			t.Fatalf("slot not recycled: tick=%d count=%d", r.ticks[slot0], r.counts[slot0])
		}
	}
	slot5 := int(5 % int64(len(r.ticks)))
	if r.ticks[slot5] != 5 || r.counts[slot5] != 1 || r.sums[slot5] != 7 {
		t.Fatalf("tick 5 slot wrong: tick=%d count=%d sum=%g", r.ticks[slot5], r.counts[slot5], r.sums[slot5])
	}
}

func TestRollingSnapshotLive(t *testing.T) {
	r := NewRolling(8, 50*time.Millisecond)
	r.Add(3)
	r.Add(5)
	s := r.Snapshot()
	if len(s.Points) == 0 {
		t.Fatal("no points in a freshly written window")
	}
	var count int64
	var sum, max float64
	for _, p := range s.Points {
		count += p.Count
		sum += p.Sum
		if p.Max > max {
			max = p.Max
		}
	}
	if count != 2 || sum != 8 || max != 5 {
		t.Fatalf("window totals count=%d sum=%g max=%g, want 2/8/5", count, sum, max)
	}
	if r.Rate() <= 0 {
		t.Fatal("rate of a non-empty window must be positive")
	}
}

func TestRollingNil(t *testing.T) {
	var r *Rolling
	r.Add(1)
	if s := r.Snapshot(); len(s.Points) != 0 {
		t.Fatal("nil rolling snapshot non-empty")
	}
	if r.Rate() != 0 {
		t.Fatal("nil rolling rate non-zero")
	}
}
