package obs

// TraceStore is the per-request trace plane for the compile daemon:
// every admitted request gets a trace ID; for a deterministically
// sampled subset (or all, or none — TraceMode) the request also gets
// its own Observer recording the full span/fire/wait capture, kept in
// a bounded LRU ring for later retrieval through the daemon's
// /debug/trace endpoints.
//
// Two properties the endpoint tests pin down:
//
//   - Sampling is deterministic in the admission sequence: with
//     sample N, admissions 1, N+1, 2N+1, … are traced, independent of
//     scheduling.  Two runs that admit the same requests in the same
//     order trace the same requests.
//   - Eviction never drops an in-flight request's observer.  Entries
//     are pinned from Admit to Finish; the LRU walk skips pinned
//     entries, temporarily exceeding the cap rather than tearing an
//     Observer out from under the Supervisor hooks writing to it.

import (
	"fmt"
	"sync"
)

// TraceMode selects which admitted requests get a recording Observer.
type TraceMode uint8

const (
	// TraceOff records nothing; requests still get trace IDs for log
	// correlation, but /debug/trace knows none of them.
	TraceOff TraceMode = iota
	// TraceSampled records every Nth admission (deterministic 1-in-N).
	TraceSampled
	// TraceAll records every admission.
	TraceAll
)

func (m TraceMode) String() string {
	switch m {
	case TraceSampled:
		return "sampled"
	case TraceAll:
		return "all"
	default:
		return "off"
	}
}

// ParseTraceMode converts a -trace flag value to a TraceMode.
func ParseTraceMode(s string) (TraceMode, error) {
	switch s {
	case "off":
		return TraceOff, nil
	case "sampled":
		return TraceSampled, nil
	case "all":
		return TraceAll, nil
	}
	return TraceOff, fmt.Errorf("unknown trace mode %q (want off, sampled or all)", s)
}

// TraceEntry is one traced request: its Observer plus the request
// metadata Finish stamps in.  Fields other than ID, Seq and Obs are
// owned by the store's lock until Done is set, after which the entry
// is immutable.
type TraceEntry struct {
	ID  string
	Seq uint64 // 1-based admission number that sampled this request
	Obs *Observer

	Client   string
	Endpoint string  // request path, e.g. /compile
	Path     string  // serving path: concurrent | sequential
	Status   int     // HTTP status of the response
	DurMS    float64 // service time
	Streams  int
	Done     bool

	prev, next *TraceEntry // LRU ring links (store-lock owned)
	inflight   bool
}

// TraceSummary is one /debug/trace index row.
type TraceSummary struct {
	ID       string  `json:"id"`
	Seq      uint64  `json:"seq"`
	Client   string  `json:"client,omitempty"`
	Endpoint string  `json:"endpoint,omitempty"`
	Path     string  `json:"path,omitempty"`
	Status   int     `json:"status,omitempty"`
	DurMS    float64 `json:"dur_ms,omitempty"`
	Done     bool    `json:"done"`
}

// TraceStore holds the daemon's recent request traces.
type TraceStore struct {
	mu      sync.Mutex // guards: everything below, and non-Obs TraceEntry fields until Done
	mode    TraceMode
	sampleN uint64
	keep    int
	seq     uint64 // admissions seen (sampling domain), traced or not
	byID    map[string]*TraceEntry
	// LRU ring sentinel: head.next is most recent, head.prev oldest.
	head TraceEntry
	held int // entries in the ring
}

// NewTraceStore returns a store in the given mode keeping at most keep
// finished traces (minimum 1), sampling 1-in-sampleN admissions in
// TraceSampled mode (minimum 1, i.e. every request).
func NewTraceStore(mode TraceMode, sampleN, keep int) *TraceStore {
	if sampleN < 1 {
		sampleN = 1
	}
	if keep < 1 {
		keep = 1
	}
	s := &TraceStore{
		mode:    mode,
		sampleN: uint64(sampleN),
		keep:    keep,
		byID:    make(map[string]*TraceEntry),
	}
	s.head.prev, s.head.next = &s.head, &s.head
	return s
}

// Mode reports the store's trace mode.
func (s *TraceStore) Mode() TraceMode {
	if s == nil {
		return TraceOff
	}
	return s.mode
}

// Admit assigns the admission its trace ID — requested (a sanitized
// client-chosen X-M2cd-Trace value) or generated — and, when the mode
// and sampling select this request, an entry with a fresh recording
// Observer.  The entry is pinned against eviction until Finish.  A nil
// entry means the request is not traced; the ID is still valid for
// logging.
func (s *TraceStore) Admit(requested string) (id string, e *TraceEntry) {
	if s == nil {
		return "", nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id = sanitizeTraceID(requested)
	if id == "" {
		id = fmt.Sprintf("t%06d", s.seq)
	}
	traced := s.mode == TraceAll ||
		(s.mode == TraceSampled && (s.seq-1)%s.sampleN == 0)
	if !traced {
		return id, nil
	}
	e = &TraceEntry{ID: id, Seq: s.seq, Obs: New(), inflight: true}
	if old := s.byID[id]; old != nil {
		// A reused ID (client-chosen) supersedes the old trace.  The
		// old entry stays in the ring if still pinned — its observer is
		// live — and is unlinked immediately otherwise.
		if !old.inflight {
			s.unlinkLocked(old)
		} else {
			delete(s.byID, id) // superseded; evictable once finished
		}
	}
	s.byID[id] = e
	s.linkFrontLocked(e)
	s.evictLocked()
	return id, e
}

// Finish stamps the entry's request metadata, unpins it, and applies
// the LRU cap.  Safe to call once per entry; nil entries no-op so
// untraced requests need no branch at the call site.
func (s *TraceStore) Finish(e *TraceEntry, client, endpoint, path string, status int, durMS float64, streams int) {
	if s == nil || e == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e.Client, e.Endpoint, e.Path = client, endpoint, path
	e.Status, e.DurMS, e.Streams = status, durMS, streams
	e.Done = true
	e.inflight = false
	s.evictLocked()
}

// Get returns the entry for id, refreshing its LRU position; nil when
// the ID was never traced or has been evicted.  In-flight entries are
// returned too — their Observer snapshots are always coherent.
func (s *TraceStore) Get(id string) *TraceEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.byID[id]
	if e != nil {
		s.unlinkLocked(e)
		s.byID[e.ID] = e // unlinkLocked removed the mapping; restore it
		s.linkFrontLocked(e)
	}
	return e
}

// Held reports how many traces the ring currently holds (pinned
// entries may push this above the keep cap transiently).
func (s *TraceStore) Held() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.held
}

// Admitted reports how many requests passed through Admit (the
// sampling domain), traced or not.
func (s *TraceStore) Admitted() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Summaries lists the held traces, most recently used first.
func (s *TraceStore) Summaries() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, s.held)
	for e := s.head.next; e != &s.head; e = e.next {
		out = append(out, TraceSummary{
			ID: e.ID, Seq: e.Seq, Client: e.Client, Endpoint: e.Endpoint,
			Path: e.Path, Status: e.Status, DurMS: e.DurMS, Done: e.Done,
		})
	}
	return out
}

func (s *TraceStore) linkFrontLocked(e *TraceEntry) {
	e.prev, e.next = &s.head, s.head.next
	s.head.next.prev = e
	s.head.next = e
	s.held++
}

func (s *TraceStore) unlinkLocked(e *TraceEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	s.held--
	if s.byID[e.ID] == e {
		delete(s.byID, e.ID)
	}
}

// evictLocked trims the ring to the keep cap, oldest first, skipping
// pinned (in-flight) entries: a live request's observer is never torn
// down, even if that means transiently holding more than keep traces.
func (s *TraceStore) evictLocked() {
	e := s.head.prev
	for s.held > s.keep && e != &s.head {
		prev := e.prev
		if !e.inflight {
			s.unlinkLocked(e)
		}
		e = prev
	}
}

// sanitizeTraceID accepts a client-supplied trace ID when it is short
// and unambiguous in logs and URLs (alphanumerics plus - _ . only, at
// most 64 bytes); anything else returns "" and a server ID is
// generated instead.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return ""
		}
	}
	return id
}
