package obs

import (
	"fmt"
	"testing"
)

func TestTraceModeParse(t *testing.T) {
	for s, want := range map[string]TraceMode{"off": TraceOff, "sampled": TraceSampled, "all": TraceAll} {
		got, err := ParseTraceMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseTraceMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("TraceMode(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseTraceMode("always"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

// TestSampledDeterministic pins the sampling contract: with 1-in-N,
// admissions 1, N+1, 2N+1, … are traced — a function of the admission
// sequence alone.
func TestSampledDeterministic(t *testing.T) {
	s := NewTraceStore(TraceSampled, 3, 100)
	var traced []uint64
	for i := 0; i < 10; i++ {
		id, e := s.Admit("")
		if id == "" {
			t.Fatal("empty trace ID")
		}
		if e != nil {
			traced = append(traced, e.Seq)
			s.Finish(e, "c", "/compile", "concurrent", 200, 1, 1)
		}
	}
	want := []uint64{1, 4, 7, 10}
	if fmt.Sprint(traced) != fmt.Sprint(want) {
		t.Fatalf("sampled admissions %v, want %v", traced, want)
	}
	if s.Admitted() != 10 {
		t.Fatalf("admitted = %d, want 10", s.Admitted())
	}
}

func TestTraceOffStoresNothing(t *testing.T) {
	s := NewTraceStore(TraceOff, 1, 10)
	id, e := s.Admit("")
	if e != nil {
		t.Fatal("off mode produced an entry")
	}
	if id == "" {
		t.Fatal("off mode must still hand out IDs for logging")
	}
	if s.Held() != 0 {
		t.Fatal("off mode held a trace")
	}
}

func TestClientSuppliedIDs(t *testing.T) {
	s := NewTraceStore(TraceAll, 1, 10)
	id, e := s.Admit("my-trace_1.a")
	if id != "my-trace_1.a" || e == nil || e.ID != id {
		t.Fatalf("clean client ID not honored: %q %v", id, e)
	}
	// Hostile or oversized IDs are replaced, not echoed.
	for _, bad := range []string{"a b", "x\n", "emoji☃", string(make([]byte, 80))} {
		id, _ := s.Admit(bad)
		if id == bad || id == "" {
			t.Fatalf("unsafe ID %q not replaced (got %q)", bad, id)
		}
	}
	// A reused ID supersedes the earlier trace.
	_, e2 := s.Admit("my-trace_1.a")
	s.Finish(e2, "c", "/compile", "concurrent", 200, 1, 1)
	if got := s.Get("my-trace_1.a"); got != e2 {
		t.Fatal("reused ID does not resolve to the newest trace")
	}
}

func TestLRUEvictionSkipsInflight(t *testing.T) {
	s := NewTraceStore(TraceAll, 1, 2)
	// Three in-flight entries: the cap is 2, but nothing may be evicted
	// while pinned.
	var entries []*TraceEntry
	for i := 0; i < 3; i++ {
		_, e := s.Admit(fmt.Sprintf("req%d", i))
		if e == nil {
			t.Fatal("trace-all produced no entry")
		}
		entries = append(entries, e)
	}
	if s.Held() != 3 {
		t.Fatalf("held = %d; an in-flight trace was evicted", s.Held())
	}
	for i, e := range entries {
		if got := s.Get(e.ID); got != e {
			t.Fatalf("in-flight trace %d lost", i)
		}
	}
	// Finishing lets the cap re-assert: oldest finished entries go.
	for _, e := range entries {
		s.Finish(e, "c", "/compile", "concurrent", 200, 1.5, 3)
	}
	if s.Held() != 2 {
		t.Fatalf("held = %d after finish, want 2", s.Held())
	}
	if s.Get("req0") != nil {
		t.Fatal("oldest finished trace survived past the cap")
	}
	if s.Get("req2") == nil || s.Get("req1") == nil {
		t.Fatal("recent traces evicted")
	}
}

func TestLRUGetRefreshes(t *testing.T) {
	s := NewTraceStore(TraceAll, 1, 2)
	_, a := s.Admit("a")
	s.Finish(a, "", "/compile", "concurrent", 200, 1, 1)
	_, b := s.Admit("b")
	s.Finish(b, "", "/compile", "concurrent", 200, 1, 1)
	s.Get("a") // refresh a: now b is the LRU victim
	_, c := s.Admit("c")
	s.Finish(c, "", "/compile", "concurrent", 200, 1, 1)
	if s.Get("a") == nil {
		t.Fatal("refreshed trace evicted")
	}
	if s.Get("b") != nil {
		t.Fatal("least-recently-used trace survived")
	}
}

func TestSummariesOrderAndMetadata(t *testing.T) {
	s := NewTraceStore(TraceAll, 1, 10)
	_, a := s.Admit("a")
	s.Finish(a, "alice", "/compile", "concurrent", 200, 12.5, 7)
	_, b := s.Admit("b")
	sums := s.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	if sums[0].ID != "b" || sums[0].Done {
		t.Fatalf("most recent first: %+v", sums[0])
	}
	if sums[1].ID != "a" || !sums[1].Done || sums[1].Client != "alice" ||
		sums[1].Status != 200 || sums[1].DurMS != 12.5 {
		t.Fatalf("metadata lost: %+v", sums[1])
	}
	s.Finish(b, "bob", "/lint", "sequential", 503, 1, 0)
}

func TestTraceStoreNil(t *testing.T) {
	var s *TraceStore
	if id, e := s.Admit("x"); id != "" || e != nil {
		t.Fatal("nil store admitted")
	}
	s.Finish(nil, "", "", "", 0, 0, 0)
	if s.Get("x") != nil || s.Held() != 0 || s.Admitted() != 0 || s.Summaries() != nil {
		t.Fatal("nil store not inert")
	}
	if s.Mode() != TraceOff {
		t.Fatal("nil store mode")
	}
}
