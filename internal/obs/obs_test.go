package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"m2cc/internal/core"
	"m2cc/internal/ctrace"
	"m2cc/internal/faultinject"
	"m2cc/internal/obs"
	"m2cc/internal/source"
)

// obsProgram is a three-module fixture with enough procedures, imports
// and lookups that every observer hook has arrivals (the same shape as
// the chaos fixture at the repo root).
var obsProgram = map[string]map[source.FileKind]string{
	"Pair": {source.Def: `
DEFINITION MODULE Pair;
PROCEDURE Sum(a, b: INTEGER): INTEGER;
PROCEDURE Max(a, b: INTEGER): INTEGER;
END Pair.
`, source.Impl: `
IMPLEMENTATION MODULE Pair;

PROCEDURE Sum(a, b: INTEGER): INTEGER;
BEGIN
  RETURN a + b
END Sum;

PROCEDURE Max(a, b: INTEGER): INTEGER;
BEGIN
  IF a > b THEN RETURN a END;
  RETURN b
END Max;

END Pair.
`},
	"Main": {source.Impl: `
MODULE Main;
FROM Pair IMPORT Sum, Max;
IMPORT Pair;
VAR v: INTEGER;

PROCEDURE Triple(n: INTEGER): INTEGER;
BEGIN
  RETURN Sum(Sum(n, n), n)
END Triple;

PROCEDURE Clamp(n, hi: INTEGER): INTEGER;
BEGIN
  RETURN hi - Max(0, hi - n)
END Clamp;

BEGIN
  v := Triple(4);
  WriteInt(Clamp(v, 10), 0); WriteLn;
  WriteInt(Pair.Max(v, 3), 0); WriteLn
END Main.
`},
}

func obsLoader() *source.MapLoader {
	loader := source.NewMapLoader()
	for name, kinds := range obsProgram {
		for kind, text := range kinds {
			loader.Add(name, kind, text)
		}
	}
	return loader
}

// compileObserved runs one concurrent compilation with an observer
// attached and fails the test on unexpected compile errors.
func compileObserved(t *testing.T, workers int, plan *faultinject.Plan) (*obs.Observer, *core.Result) {
	t.Helper()
	o := obs.New()
	res := core.Compile("Main", obsLoader(), core.Options{
		Workers: workers, Obs: o, FaultPlan: plan,
		// Lookup tallies are opt-in; the snapshot tests want them.
		CollectStats: true,
	})
	if plan == nil && (res.Failed() || res.Faulted) {
		t.Fatalf("clean compile failed (faulted=%v):\n%s", res.Faulted, res.Diags)
	}
	return o, res
}

// TestNilObserverSafe exercises every hook and export on a nil
// receiver: each must be a no-op (exports return zero values or a
// diagnosable error), mirroring the faultinject pattern.
func TestNilObserverSafe(t *testing.T) {
	var o *obs.Observer
	o.Begin(4, "Skeptical")
	if id := o.TaskSpawned(ctrace.KindLexor, 1, "lex", 0, nil); id != 0 {
		t.Fatalf("nil TaskSpawned = %d, want 0", id)
	}
	o.TaskStarted(1)
	o.TaskBlocked(1, obs.BlockHandled, nil)
	o.TaskUnblocked(1)
	o.TaskBarrierBlocked(1, nil)
	o.TaskBarrierUnblocked(1)
	o.EventFired(1, nil)
	o.EventForceFired(nil)
	o.TaskFinished(1)
	o.TaskPanicked(1)
	o.WatchdogFired()
	o.StallAbandoned(1)
	o.ReadySample(3)
	o.NoteCache(obs.CacheCounters{Hits: 1})
	o.NoteLookups(nil)
	o.Finish()
	if m := o.Snapshot(); m.Tasks != 0 || m.Spans != 0 {
		t.Fatalf("nil Snapshot = %+v, want zero", m)
	}
	if d := o.Dump(); d.Tasks != nil || d.Fires != nil || d.Waits != nil {
		t.Fatalf("nil Dump = %+v, want zero", d)
	}
	if err := o.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil WriteChromeTrace must error")
	}
	if s := o.RenderTimeline(40); s != "" {
		t.Fatalf("nil RenderTimeline = %q, want empty", s)
	}
}

// TestSnapshotWorkers1Deterministic pins the snapshot fields that are
// schedule-independent under a single worker slot: every task runs,
// every task finishes, occupancy never exceeds the one slot.
func TestSnapshotWorkers1Deterministic(t *testing.T) {
	o, _ := compileObserved(t, 1, nil)
	m := o.Snapshot()

	if m.Workers != 1 {
		t.Errorf("Workers = %d, want 1", m.Workers)
	}
	if m.Tasks == 0 {
		t.Fatal("no tasks observed")
	}
	if m.Finished != m.Tasks {
		t.Errorf("Finished = %d, want %d (all tasks)", m.Finished, m.Tasks)
	}
	if m.NeverRan != 0 {
		t.Errorf("NeverRan = %d, want 0", m.NeverRan)
	}
	if m.Spans < m.Tasks {
		t.Errorf("Spans = %d < Tasks = %d; every task needs at least one span", m.Spans, m.Tasks)
	}
	if m.SlotOccupancyPeak != 1 {
		t.Errorf("SlotOccupancyPeak = %d, want 1 with one worker slot", m.SlotOccupancyPeak)
	}
	if m.Panics != 0 || m.WatchdogFires != 0 || m.StallAbandons != 0 {
		t.Errorf("clean run reported faults: %+v", m)
	}
	if m.WallMs <= 0 {
		t.Errorf("WallMs = %v, want > 0", m.WallMs)
	}
	if m.Utilization <= 0 || m.Utilization > 1.000001 {
		t.Errorf("Utilization = %v, want in (0, 1]", m.Utilization)
	}
	if m.EventFires <= 0 {
		t.Errorf("EventFires = %d, want > 0 (scope completions fire events)", m.EventFires)
	}
	if m.Lookups == nil || m.Lookups.Lookups == 0 {
		t.Errorf("Lookups = %+v, want recorded tallies", m.Lookups)
	}
}

// chromeTrace is the trace-event JSON envelope the exporter writes.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Ph    string         `json:"ph"`
		Ts    int64          `json:"ts"`
		Dur   int64          `json:"dur"`
		Pid   int            `json:"pid"`
		Tid   int            `json:"tid"`
		Scope string         `json:"s"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func parseTrace(t *testing.T, o *obs.Observer) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return tr
}

// TestChromeTraceSchema checks the exported trace against the
// trace-event contract: valid JSON, one complete event per span, a
// span for every task, sane lanes and durations.
func TestChromeTraceSchema(t *testing.T) {
	const workers = 4
	o, _ := compileObserved(t, workers, nil)
	m := o.Snapshot()
	tr := parseTrace(t, o)

	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}
	spans := 0
	sawProcessName := false
	tasksWithSpan := map[int]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				sawProcessName = true
			}
		case "X":
			spans++
			if ev.Name == "" {
				t.Error("span event with empty name")
			}
			if ev.Ts < 0 || ev.Dur < 1 {
				t.Errorf("span %q has ts=%d dur=%d", ev.Name, ev.Ts, ev.Dur)
			}
			if ev.Tid < 0 || ev.Tid >= workers {
				t.Errorf("span %q on lane %d, want [0,%d)", ev.Name, ev.Tid, workers)
			}
			if id, ok := ev.Args["task"].(float64); ok {
				tasksWithSpan[int(id)] = true
			}
		case "i":
			if ev.Scope != "t" && ev.Scope != "p" {
				t.Errorf("instant %q has scope %q", ev.Name, ev.Scope)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if !sawProcessName {
		t.Error("missing process_name metadata")
	}
	if spans != m.Spans {
		t.Errorf("trace has %d complete events, snapshot says %d spans", spans, m.Spans)
	}
	if len(tasksWithSpan) != m.Tasks {
		t.Errorf("%d tasks appear in the trace, snapshot says %d", len(tasksWithSpan), m.Tasks)
	}
}

// TestChromeTraceDeterministic pins the export contract: the same
// recorded run serializes byte-identically on every call (spans,
// marks and dependency edges are all sorted before writing).
func TestChromeTraceDeterministic(t *testing.T) {
	o, _ := compileObserved(t, 4, nil)
	var a, b bytes.Buffer
	if err := o.WriteChromeTrace(&a); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := o.WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same recorded run differ")
	}
}

// TestDumpEdgesConsistent validates the dependency-edge capture that
// feeds the profiler: dense event IDs, first-fire-only dedup, closed
// wait windows, and the cross-reference the tracecheck tool enforces —
// every non-external wait names a fired event.
func TestDumpEdgesConsistent(t *testing.T) {
	o, _ := compileObserved(t, 4, nil)
	d := o.Dump()

	if d.Events == 0 {
		t.Fatal("no events observed")
	}
	if len(d.Fires) == 0 {
		t.Fatal("no fire edges observed")
	}
	fired := map[int]bool{}
	for _, f := range d.Fires {
		if f.Event < 1 || f.Event > d.Events {
			t.Errorf("fire references event %d outside 1..%d", f.Event, d.Events)
		}
		if f.Task < 0 || f.Task > len(d.Tasks) {
			t.Errorf("fire references task %d outside 0..%d", f.Task, len(d.Tasks))
		}
		if fired[f.Event] {
			t.Errorf("event %d has more than one fire edge", f.Event)
		}
		fired[f.Event] = true
	}
	for _, w := range d.Waits {
		if w.Event < 1 || w.Event > d.Events {
			t.Errorf("wait references event %d outside 1..%d", w.Event, d.Events)
		}
		if w.Task < 1 || w.Task > len(d.Tasks) {
			t.Errorf("wait references task %d outside 1..%d", w.Task, len(d.Tasks))
		}
		if w.End < w.Start {
			t.Errorf("wait on event %d has End %v < Start %v", w.Event, w.End, w.Start)
		}
		if w.Reason != obs.BlockExternal && !fired[w.Event] {
			t.Errorf("task %d waits on event %d (%s) that never fired",
				w.Task, w.Event, w.Reason)
		}
	}
	for _, tr := range d.Tasks {
		if tr.Parent < 0 || tr.Parent > len(d.Tasks) {
			t.Errorf("task %d has parent %d outside 0..%d", tr.ID, tr.Parent, len(d.Tasks))
		}
		for _, g := range tr.Gates {
			if g < 1 || g > d.Events {
				t.Errorf("task %d gated on event %d outside 1..%d", tr.ID, g, d.Events)
			}
		}
	}
}

// TestCleanVsChaosParity compares a clean run against one with a
// panic injected mid-lookup: the chaos snapshot must show the fault
// (panic count, tainted span, fault marker) while staying internally
// consistent, and both snapshots must agree with their own traces.
func TestCleanVsChaosParity(t *testing.T) {
	clean, cres := compileObserved(t, 4, nil)
	if cres.Faulted {
		t.Fatal("clean run faulted")
	}
	chaosPlan := faultinject.New().Arm(faultinject.PanicLookup, 5)
	chaos, xres := compileObserved(t, 4, chaosPlan)
	if !xres.Faulted {
		t.Fatal("armed PanicLookup did not fault the run")
	}

	cm, xm := clean.Snapshot(), chaos.Snapshot()
	if cm.Panics != 0 {
		t.Errorf("clean Panics = %d, want 0", cm.Panics)
	}
	if xm.Panics < 1 {
		t.Errorf("chaos Panics = %d, want >= 1", xm.Panics)
	}
	for name, m := range map[string]obs.Metrics{"clean": cm, "chaos": xm} {
		if m.Finished > m.Tasks {
			t.Errorf("%s: Finished %d > Tasks %d", name, m.Finished, m.Tasks)
		}
		if m.Spans < m.Finished {
			t.Errorf("%s: Spans %d < Finished %d", name, m.Spans, m.Finished)
		}
		if m.NeverRan > m.Tasks {
			t.Errorf("%s: NeverRan %d > Tasks %d", name, m.NeverRan, m.Tasks)
		}
	}

	// The chaos trace must carry the fault: a tainted span and a panic
	// instant marker — and each trace's block tallies must match its
	// snapshot.
	for name, pair := range map[string]struct {
		o *obs.Observer
		m obs.Metrics
	}{"clean": {clean, cm}, "chaos": {chaos, xm}} {
		tr := parseTrace(t, pair.o)
		var blocksHandled int64
		tainted, panicMark := false, false
		for _, ev := range tr.TraceEvents {
			if ev.Ph == "X" && ev.Args["end"] == "block-handled" {
				blocksHandled++
			}
			if ev.Ph == "X" && ev.Args["panicked"] == true {
				tainted = true
			}
			if ev.Ph == "i" && ev.Name == "panic" {
				panicMark = true
			}
		}
		if blocksHandled != pair.m.BlocksHandled {
			t.Errorf("%s: trace shows %d handled blocks, snapshot %d",
				name, blocksHandled, pair.m.BlocksHandled)
		}
		if name == "chaos" && (!tainted || !panicMark) {
			t.Errorf("chaos trace missing fault evidence: tainted=%v panicMark=%v",
				tainted, panicMark)
		}
		if name == "clean" && (tainted || panicMark) {
			t.Errorf("clean trace shows fault evidence: tainted=%v panicMark=%v",
				tainted, panicMark)
		}
	}
}

// TestRenderTimelineShape checks the Figure 7-style view: one row per
// worker (top-down), an axis line and the legend.
func TestRenderTimelineShape(t *testing.T) {
	o, _ := compileObserved(t, 2, nil)
	out := o.RenderTimeline(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 2 worker rows + axis + legend, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "W1 |") || !strings.HasPrefix(lines[1], "W0 |") {
		t.Errorf("rows not top-down W1,W0:\n%s", out)
	}
	if !strings.Contains(lines[3], "! panic-isolated") {
		t.Errorf("legend missing panic glyph:\n%s", out)
	}
	if !strings.ContainsAny(lines[1], "LSIPGM") {
		t.Errorf("worker 0 row shows no activity:\n%s", out)
	}
}

// TestObserverSpansBatch checks that one Observer accumulates across
// several compilations (the CompileBatch pattern): task counts grow
// and the largest worker count wins.
func TestObserverSpansBatch(t *testing.T) {
	o := obs.New()
	loader := obsLoader()
	for i, w := range []int{2, 4} {
		res := core.Compile("Main", loader, core.Options{Workers: w, Obs: o})
		if res.Failed() || res.Faulted {
			t.Fatalf("compile %d failed:\n%s", i, res.Diags)
		}
	}
	m := o.Snapshot()
	if m.Workers != 4 {
		t.Errorf("Workers = %d, want max(2,4) = 4", m.Workers)
	}
	single := core.Compile("Main", loader, core.Options{Workers: 4, Obs: obs.New()})
	if single.Failed() {
		t.Fatal("single compile failed")
	}
	if m.Finished != m.Tasks || m.Tasks == 0 {
		t.Errorf("batch observer: Tasks=%d Finished=%d, want equal and > 0", m.Tasks, m.Finished)
	}
}
