// Package obs is the live-observability layer for the real concurrent
// compiler: wall-clock span tracing and a metrics snapshot for the
// goroutine Supervisor in internal/sched, the runtime counterpart of
// the deterministic work-unit traces in internal/ctrace.
//
// The simulator (internal/sim) predicts timelines from
// schedule-independent traces; this package measures what actually
// happened — which worker slot ran which task when, where tasks
// blocked, where panics were isolated and where the watchdog fired —
// so the paper's Figure 7 style activity views can be compared
// side-by-side: predicted (simulated) against measured (observed).
//
// An Observer is attached via core.Options.Obs and receives hooks from
// the Supervisor at every task transition: spawn, first dispatch,
// block on a handled/external event, re-dispatch, finish, panic
// isolation, watchdog fire.  Each hook is one mutex acquisition and
// one clock read; every method is safe on a nil *Observer and reduces
// to a pointer check (the same pattern as internal/faultinject), so an
// unobserved compilation pays nothing.  The measured instrumentation
// overhead is reported by `m2bench -obs` and budgeted under 5%.
//
// Three exports:
//
//   - WriteChromeTrace: Chrome trace-event JSON (load in Perfetto or
//     chrome://tracing) with one lane per worker slot;
//   - Snapshot: a machine-readable Metrics value (worker-slot
//     occupancy, ready-queue depth, event and interface-cache
//     counters, per-strategy DKY lookup tallies via symtab.Stats);
//   - RenderTimeline: an ASCII per-worker activity view in the style
//     of the paper's Figure 7, from measured wall-clock spans.
package obs

import (
	"sort"
	"sync"
	"time"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
	"m2cc/internal/symtab"
)

// BlockReason classifies why a task gave up its worker slot.
type BlockReason uint8

const (
	// BlockHandled is a handled-event wait (DKY blockage, §2.3.3): the
	// slot is released until the event fires.
	BlockHandled BlockReason = iota
	// BlockExternal is a wait on an event owned by a foreign
	// compilation (an interface-cache leader in another session).
	BlockExternal
	// BlockBarrier is a barrier-style wait (§2.3.3): the task keeps its
	// worker slot while it waits, so no span closes — only a wait edge
	// is recorded.
	BlockBarrier

	numBlockReasons = 3
)

func (r BlockReason) String() string {
	switch r {
	case BlockExternal:
		return "external"
	case BlockBarrier:
		return "barrier"
	default:
		return "handled"
	}
}

// MarkKind classifies instant markers.
type MarkKind uint8

const (
	// MarkPanic: a task panicked and was isolated (PR 2's runGuarded).
	MarkPanic MarkKind = iota
	// MarkWatchdog: the deadlock watchdog force-fired events.
	MarkWatchdog
	// MarkStallAbandon: a waiter abandoned a wedged foreign cache
	// leader at its stall deadline.
	MarkStallAbandon
)

func (k MarkKind) String() string {
	switch k {
	case MarkPanic:
		return "panic"
	case MarkWatchdog:
		return "watchdog"
	default:
		return "stall-abandon"
	}
}

// Span is one contiguous occupancy of a worker slot by a task: from
// dispatch (first start or unblock) to the next block, panic-tainted
// finish or clean finish.
type Span struct {
	Task  int           // observer task ID (1-based)
	Lane  int           // worker slot lane (0-based, lowest-free assignment)
	Start time.Duration // offset from the observer's epoch
	End   time.Duration
	// EndReason tells how the span closed: "block-handled",
	// "block-external", "finish", or "open" (still running when the
	// snapshot was taken).
	EndReason string
}

// Mark is one instant marker (panic isolation, watchdog fire).
type Mark struct {
	Kind MarkKind
	Task int // 0 for compiler-wide marks (watchdog)
	Lane int // -1 when the mark is not lane-bound
	At   time.Duration
}

// TaskRecord is one task's observed lifecycle.
type TaskRecord struct {
	ID       int
	Kind     ctrace.TaskKind
	Stream   int32
	Label    string
	Parent   int   // spawning task's observer ID; 0 = driver-spawned
	Gates    []int // observer event IDs gating the first dispatch
	Spawned  time.Duration
	Started  time.Duration // first dispatch; 0-with-!HasRun if never ran
	Finished time.Duration
	HasRun   bool
	Done     bool
	Panicked bool
	Blocks   [numBlockReasons]int // waits taken, indexed by BlockReason
}

// FireEdge is one observed event fire.  Each event keeps its first fire
// only (one-shot semantics); Task 0 means the fire came from outside
// any observed task (the driver resolving an interface, or a pre-fired
// cache hit).
type FireEdge struct {
	Event  int // observer event ID (1-based, dense)
	Task   int // firing task's observer ID, 0 = driver
	Lane   int // firer's lane at the fire; -1 when not on a slot
	At     time.Duration
	Forced bool // fired by panic isolation or the deadlock watchdog
}

// WaitEdge is one observed wait of a task on an event, from the moment
// the task decided to wait to the moment it was running again (handled/
// external: slot re-acquired; barrier: wait returned).  The portion
// after the event's fire is queue delay, not dependency stall — the
// profiler splits the two.
type WaitEdge struct {
	Event  int
	Task   int
	Lane   int // lane held (barrier) or just released (handled/external)
	Reason BlockReason
	Start  time.Duration
	End    time.Duration
}

// Dump is a deterministic snapshot of everything the Observer recorded,
// the input to the critical-path profiler (internal/profile).  Open
// spans and waits are closed at the horizon; slices are sorted.
type Dump struct {
	Wall     time.Duration
	Workers  int
	Strategy string
	Events   int // number of distinct observed events
	Tasks    []TaskRecord
	Spans    []Span
	Marks    []Mark
	Fires    []FireEdge
	Waits    []WaitEdge
	Sched    SchedCounters // ready-queue traffic (local/steal/overflow/handoff)
}

// Observer records the runtime behaviour of one (or one batch of)
// concurrent compilation.  All methods are safe for concurrent use and
// on a nil receiver.
type Observer struct {
	mu    sync.Mutex // guards: every record field below; all methods lock it
	epoch time.Time
	ended time.Duration // set by Finish; 0 = still running

	workers int
	tasks   []TaskRecord
	closed  []Span        // finished spans, in close order
	open    map[int]*Span // task ID → its running span
	lanes   []bool        // lane busy flags, lowest-free assignment

	// Slot occupancy: time-weighted integral of busy lanes.
	busy       int
	peakBusy   int
	busyInt    float64 // ∫ busy dt, in seconds·slots
	lastBusyAt time.Duration

	// Ready-queue depth, sampled at every dispatch round.
	readySamples int64
	readySum     int64
	readyPeak    int

	marks     []Mark
	panics    int
	watchdogs int

	// Dependency edges: event identities (dense 1-based IDs handed out
	// on first sight), first-fire edges and per-task wait windows.
	events   map[*event.Event]int
	fires    []FireEdge
	fired    map[int]bool // event ID → a fire edge exists
	waits    []WaitEdge
	openWait map[int]int // task ID → index of its open wait in waits

	evBase    event.Counters
	evDelta   event.Counters
	cache     CacheCounters
	streams   StreamCounters
	sched     SchedCounters
	hasCache  bool
	hasStream bool
	strategy  string
	lookups   *symtab.Stats
}

// SchedCounters is the Supervisor's ready-queue traffic for the
// observed run: where dispatched tasks came from (the finisher's own
// local queue, a steal from another worker's queue, the global
// overflow queue) and how many slot releases handed their slot
// directly to the next task without ever marking it free.  Counters
// from several compilations of a batch accumulate.
type SchedCounters struct {
	LocalPushes    int64 `json:"local_pushes"`    // tasks enqueued on the spawner's local queue
	OverflowPushes int64 `json:"overflow_pushes"` // tasks enqueued on the global overflow queue
	LocalPops      int64 `json:"local_pops"`      // dispatches served from the worker's own queue
	Steals         int64 `json:"steals"`          // dispatches stolen from another worker's queue
	OverflowPops   int64 `json:"overflow_pops"`   // dispatches served from the overflow queue
	Handoffs       int64 `json:"handoffs"`        // releases that handed the slot directly onward
}

// Add accumulates other into c.
func (c *SchedCounters) Add(other SchedCounters) {
	if c == nil {
		return
	}
	c.LocalPushes += other.LocalPushes
	c.OverflowPushes += other.OverflowPushes
	c.LocalPops += other.LocalPops
	c.Steals += other.Steals
	c.OverflowPops += other.OverflowPops
	c.Handoffs += other.Handoffs
}

// CacheCounters is the interface-cache traffic attributed to the
// observed compilation (a delta of ifacecache.Stats).
type CacheCounters struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Waits     int64 `json:"waits"` // single-flight waits behind a foreign leader
	Bypasses  int64 `json:"bypasses"`
	Abandoned int64 `json:"abandoned"` // stall-timeout abandonments of wedged leaders
}

// StreamCounters is the stream-cache (incremental recompilation)
// traffic attributed to the observed compilation: per-stream probe
// outcomes plus the shared store's eviction count.
type StreamCounters struct {
	Probed    int64 `json:"probed"`    // streams whose key was looked up
	Hits      int64 `json:"hits"`      // probes that found a cached entry
	Misses    int64 `json:"misses"`    // probes that found nothing
	Installed int64 `json:"installed"` // hit entries installed (topmost hits + body)
	Covered   int64 `json:"covered"`   // streams skipped under an ancestor's installed entry
	Recorded  int64 `json:"recorded"`  // fresh streams published back to the store
	Evictions int64 `json:"evictions"` // store entries dropped by the LRU cap (delta)
}

// New returns an Observer with its epoch set to now.
func New() *Observer {
	return &Observer{
		epoch:    time.Now(),
		open:     make(map[int]*Span),
		events:   make(map[*event.Event]int),
		fired:    make(map[int]bool),
		openWait: make(map[int]int),
		evBase:   event.Totals(),
	}
}

func (o *Observer) now() time.Duration { return time.Since(o.epoch) }

// Begin notes the compilation's worker-slot count and DKY strategy.
// Idempotent; CompileBatch calls it once per module and the largest
// worker count wins.
func (o *Observer) Begin(workers int, strategy string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if workers > o.workers {
		o.workers = workers
	}
	o.strategy = strategy
	o.mu.Unlock()
}

// Finish stamps the end of the observed run.  Open spans are closed at
// this stamp when a snapshot or export is taken.  Idempotent in effect:
// the latest call wins, so batch observers cover the whole batch.
func (o *Observer) Finish() {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.ended = o.now()
	o.evDelta = event.Totals().Sub(o.evBase)
	o.mu.Unlock()
}

// TaskSpawned registers a task and returns its observer ID (0 on a nil
// Observer; IDs are 1-based).  parent is the spawning task's observer
// ID (0 for driver spawns); gates are the avoided events holding back
// the first dispatch.
func (o *Observer) TaskSpawned(kind ctrace.TaskKind, stream int32, label string, parent int, gates []*event.Event) int {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	id := len(o.tasks) + 1
	var gateIDs []int
	if len(gates) > 0 {
		gateIDs = make([]int, len(gates))
		for i, e := range gates {
			gateIDs[i] = o.eventIDLocked(e)
		}
	}
	o.tasks = append(o.tasks, TaskRecord{
		ID: id, Kind: kind, Stream: stream, Label: label,
		Parent: parent, Gates: gateIDs, Spawned: o.now(),
	})
	return id
}

// eventIDLocked hands out a dense 1-based identity for e.
func (o *Observer) eventIDLocked(e *event.Event) int {
	if e == nil {
		return 0
	}
	id, ok := o.events[e]
	if !ok {
		id = len(o.events) + 1
		o.events[e] = id
	}
	return id
}

// EventFired records that task id (0 = the driver) fired e.  Called
// immediately before the actual fire, so waiters' unblock edges always
// follow the fire edge.  Only the first fire of an event is kept.
func (o *Observer) EventFired(id int, e *event.Event) {
	if o == nil || e == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.fireLocked(id, e, false)
}

// EventForceFired records a fire performed by panic isolation or the
// deadlock watchdog on behalf of a task that will never fire it
// properly.  Forced fires do not extend the critical path — the
// profiler treats their waiters as externally stalled.
func (o *Observer) EventForceFired(e *event.Event) {
	if o == nil || e == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.fireLocked(0, e, true)
}

func (o *Observer) fireLocked(task int, e *event.Event, forced bool) {
	ev := o.eventIDLocked(e)
	if o.fired[ev] {
		return
	}
	o.fired[ev] = true
	lane := -1
	if sp := o.open[task]; task != 0 && sp != nil {
		lane = sp.Lane
	}
	o.fires = append(o.fires, FireEdge{
		Event: ev, Task: task, Lane: lane, At: o.now(), Forced: forced,
	})
}

// openWaitLocked starts a wait edge for task id on e.
func (o *Observer) openWaitLocked(id int, e *event.Event, reason BlockReason, lane int, now time.Duration) {
	if e == nil {
		return
	}
	o.closeWaitLocked(id, now) // defensive: one open wait per task
	o.openWait[id] = len(o.waits)
	o.waits = append(o.waits, WaitEdge{
		Event: o.eventIDLocked(e), Task: id, Lane: lane,
		Reason: reason, Start: now, End: -1,
	})
}

// closeWaitLocked ends task id's open wait edge, if any.
func (o *Observer) closeWaitLocked(id int, now time.Duration) {
	if i, ok := o.openWait[id]; ok {
		delete(o.openWait, id)
		o.waits[i].End = now
	}
}

// acquireLaneLocked hands out the lowest free lane, growing the lane
// set if tasks ever outnumber the declared workers (defensive; the
// Supervisor's slot discipline should prevent it).
func (o *Observer) acquireLaneLocked() int {
	for i, busy := range o.lanes {
		if !busy {
			o.lanes[i] = true
			return i
		}
	}
	o.lanes = append(o.lanes, true)
	return len(o.lanes) - 1
}

// busyDeltaLocked advances the occupancy integral to now, then applies
// d to the busy count.
func (o *Observer) busyDeltaLocked(now time.Duration, d int) {
	o.busyInt += float64(o.busy) * (now - o.lastBusyAt).Seconds()
	o.lastBusyAt = now
	o.busy += d
	if o.busy > o.peakBusy {
		o.peakBusy = o.busy
	}
}

// openSpanLocked starts a span for task id on a fresh lane.
func (o *Observer) openSpanLocked(id int, now time.Duration) {
	lane := o.acquireLaneLocked()
	o.busyDeltaLocked(now, +1)
	o.open[id] = &Span{Task: id, Lane: lane, Start: now}
}

// closeSpanLocked ends task id's running span, freeing its lane.
func (o *Observer) closeSpanLocked(id int, now time.Duration, reason string) {
	sp := o.open[id]
	if sp == nil {
		return
	}
	delete(o.open, id)
	sp.End = now
	sp.EndReason = reason
	o.closed = append(o.closed, *sp)
	if sp.Lane >= 0 && sp.Lane < len(o.lanes) {
		o.lanes[sp.Lane] = false
	}
	o.busyDeltaLocked(now, -1)
}

// TaskStarted notes task id's first dispatch onto a worker slot.
func (o *Observer) TaskStarted(id int) {
	if o == nil || id == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	if t := o.taskLocked(id); t != nil {
		t.Started = now
		t.HasRun = true
	}
	o.openSpanLocked(id, now)
}

// TaskBlocked notes that task id released its slot to wait on e (nil
// when the event is unknown; the block is counted but no edge opens).
func (o *Observer) TaskBlocked(id int, reason BlockReason, e *event.Event) {
	if o == nil || id == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	if t := o.taskLocked(id); t != nil {
		t.Blocks[reason]++
	}
	lane := -1
	if sp := o.open[id]; sp != nil {
		lane = sp.Lane
	}
	o.openWaitLocked(id, e, reason, lane, now)
	o.closeSpanLocked(id, now, "block-"+reason.String())
}

// TaskUnblocked notes that task id re-acquired a slot after a wait.
func (o *Observer) TaskUnblocked(id int) {
	if o == nil || id == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	o.closeWaitLocked(id, now)
	o.openSpanLocked(id, now)
}

// TaskBarrierBlocked notes a barrier wait: task id stalls on e while
// holding its worker slot (its span stays open; only a wait edge is
// recorded).
func (o *Observer) TaskBarrierBlocked(id int, e *event.Event) {
	if o == nil || id == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	if t := o.taskLocked(id); t != nil {
		t.Blocks[BlockBarrier]++
	}
	lane := -1
	if sp := o.open[id]; sp != nil {
		lane = sp.Lane
	}
	o.openWaitLocked(id, e, BlockBarrier, lane, now)
}

// TaskBarrierUnblocked closes task id's barrier wait.
func (o *Observer) TaskBarrierUnblocked(id int) {
	if o == nil || id == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.closeWaitLocked(id, o.now())
}

// TaskFinished notes task id's completion (clean or panic-isolated).
func (o *Observer) TaskFinished(id int) {
	if o == nil || id == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	if t := o.taskLocked(id); t != nil {
		t.Finished = now
		t.Done = true
	}
	o.closeSpanLocked(id, now, "finish")
}

// TaskPanicked marks task id as panic-isolated (the task still
// finishes; its spans are tainted in the export).
func (o *Observer) TaskPanicked(id int) {
	if o == nil || id == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	lane := -1
	if sp := o.open[id]; sp != nil {
		lane = sp.Lane
	}
	if t := o.taskLocked(id); t != nil {
		t.Panicked = true
	}
	o.panics++
	o.marks = append(o.marks, Mark{Kind: MarkPanic, Task: id, Lane: lane, At: now})
}

// WatchdogFired marks one deadlock-watchdog intervention.
func (o *Observer) WatchdogFired() {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.watchdogs++
	o.marks = append(o.marks, Mark{Kind: MarkWatchdog, Lane: -1, At: o.now()})
}

// StallAbandoned marks one waiter giving up on a wedged foreign cache
// leader at the stall deadline.
func (o *Observer) StallAbandoned(id int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.marks = append(o.marks, Mark{Kind: MarkStallAbandon, Task: id, Lane: -1, At: o.now()})
}

// ReadySample records the ready-queue depth after one dispatch round.
func (o *Observer) ReadySample(depth int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.readySamples++
	o.readySum += int64(depth)
	if depth > o.readyPeak {
		o.readyPeak = depth
	}
	o.mu.Unlock()
}

// NoteCache attributes interface-cache traffic (a stats delta) to the
// observed run.  Deltas from several modules of a batch accumulate.
func (o *Observer) NoteCache(c CacheCounters) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.hasCache = true
	o.cache.Hits += c.Hits
	o.cache.Misses += c.Misses
	o.cache.Waits += c.Waits
	o.cache.Bypasses += c.Bypasses
	o.cache.Abandoned += c.Abandoned
	o.mu.Unlock()
}

// NoteStreams attributes stream-cache (incremental recompilation)
// traffic to the observed run.  Deltas from several modules of a batch
// accumulate.
func (o *Observer) NoteStreams(c StreamCounters) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.hasStream = true
	o.streams.Probed += c.Probed
	o.streams.Hits += c.Hits
	o.streams.Misses += c.Misses
	o.streams.Installed += c.Installed
	o.streams.Covered += c.Covered
	o.streams.Recorded += c.Recorded
	o.streams.Evictions += c.Evictions
	o.mu.Unlock()
}

// NoteSched attributes one Supervisor's ready-queue traffic to the
// observed run.  Counters from several compilations of a batch
// accumulate.
func (o *Observer) NoteSched(c SchedCounters) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.sched.Add(c)
	o.mu.Unlock()
}

// NoteLookups attributes DKY lookup tallies to the observed run.
// Stats from several modules of a batch are merged.
func (o *Observer) NoteLookups(st *symtab.Stats) {
	if o == nil || st == nil {
		return
	}
	o.mu.Lock()
	if o.lookups == nil {
		o.lookups = symtab.NewStats()
	}
	agg := o.lookups
	o.mu.Unlock()
	// symtab.Stats has its own lock; merge outside ours to keep the
	// hook lock ordering trivial.
	agg.Add(st)
}

func (o *Observer) taskLocked(id int) *TaskRecord {
	if id < 1 || id > len(o.tasks) {
		return nil
	}
	return &o.tasks[id-1]
}

// wallLocked is the snapshot horizon: Finish's stamp, or now.
func (o *Observer) wallLocked() time.Duration {
	if o.ended > 0 {
		return o.ended
	}
	return o.now()
}

// snapshotSpans returns the closed spans plus every open span closed
// at the horizon, with the horizon used.
func (o *Observer) snapshotSpans() ([]Span, []TaskRecord, []Mark, time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	wall := o.wallLocked()
	spans := make([]Span, 0, len(o.closed)+len(o.open))
	spans = append(spans, o.closed...)
	for _, sp := range o.open {
		cp := *sp
		cp.End = wall
		cp.EndReason = "open"
		spans = append(spans, cp)
	}
	// Deterministic order — by start, then lane, then task — so trace
	// diffs and golden tests are stable across runs of the same record.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Lane != spans[j].Lane {
			return spans[i].Lane < spans[j].Lane
		}
		return spans[i].Task < spans[j].Task
	})
	tasks := make([]TaskRecord, len(o.tasks))
	copy(tasks, o.tasks)
	marks := make([]Mark, len(o.marks))
	copy(marks, o.marks)
	sort.SliceStable(marks, func(i, j int) bool { return marks[i].At < marks[j].At })
	return spans, tasks, marks, wall
}

// snapshotEdges returns sorted copies of the fire and wait edges, with
// still-open waits closed at the horizon.
func (o *Observer) snapshotEdges() (fires []FireEdge, waits []WaitEdge, events int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	wall := o.wallLocked()
	fires = make([]FireEdge, len(o.fires))
	copy(fires, o.fires)
	waits = make([]WaitEdge, len(o.waits))
	copy(waits, o.waits)
	for i := range waits {
		if waits[i].End < 0 {
			waits[i].End = wall
		}
	}
	sort.Slice(fires, func(i, j int) bool {
		if fires[i].At != fires[j].At {
			return fires[i].At < fires[j].At
		}
		return fires[i].Event < fires[j].Event
	})
	sort.Slice(waits, func(i, j int) bool {
		if waits[i].Start != waits[j].Start {
			return waits[i].Start < waits[j].Start
		}
		if waits[i].Task != waits[j].Task {
			return waits[i].Task < waits[j].Task
		}
		return waits[i].Event < waits[j].Event
	})
	return fires, waits, len(o.events)
}

// Dump takes the full deterministic snapshot consumed by the
// critical-path profiler and the obs→ctrace exporter.  Safe on a nil
// receiver (returns the zero Dump).
func (o *Observer) Dump() Dump {
	if o == nil {
		return Dump{}
	}
	spans, tasks, marks, wall := o.snapshotSpans()
	fires, waits, events := o.snapshotEdges()
	o.mu.Lock()
	workers, strategy, sched := o.workers, o.strategy, o.sched
	o.mu.Unlock()
	return Dump{
		Wall: wall, Workers: workers, Strategy: strategy, Events: events,
		Tasks: tasks, Spans: spans, Marks: marks, Fires: fires, Waits: waits,
		Sched: sched,
	}
}
