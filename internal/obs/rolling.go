package obs

// Rolling-window aggregation for the serving path (cmd/m2cd): fixed
// bucket histograms over counters that never reset, and ring-buffered
// per-second time series that age out.  Both are designed for one
// update per request on a hot serving path:
//
//   - Histogram is entirely atomic — Observe is a binary search over
//     immutable bounds plus two atomic adds (and a CAS loop for the
//     float sum); no locks, no allocation.
//   - Rolling takes one small mutex per Add.  Updates are per-request
//     (not per-task-transition like the Observer hooks), so a mutex
//     costs nothing measurable; the win of a lock-free ring would not
//     survive its complexity.
//
// The wall clock is read here freely: internal/obs is the measuring
// layer.  The deterministic packages (internal/sim, internal/ctrace)
// stay clock-free — the notime analyzer in internal/lint enforces it.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBucketsMS are request-latency bucket upper bounds in
// milliseconds, roughly exponential from sub-millisecond cache hits to
// the daemon's default 10 s deadline.
var DefaultLatencyBucketsMS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// DefaultDepthBuckets are admission queue-depth / occupancy bucket
// upper bounds (requests).
var DefaultDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64}

// DefaultRatioBuckets are bucket upper bounds for ratios in [0,1]
// (e.g. a request's stream-cache hit rate).
var DefaultRatioBuckets = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// Histogram is a fixed-bucket histogram safe for concurrent Observe
// with no locking.  Bucket counts are kept per-bucket (not
// cumulative); snapshots cumulate for Prometheus-style exposition.
type Histogram struct {
	bounds []float64      // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits of the running sum
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (a final +Inf bucket is implicit).  The bounds slice is
// copied; out-of-order bounds are sorted rather than rejected.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound >= v; sort.SearchFloat64s finds the
	// insertion point for v, which is exactly that index when bounds
	// are treated as inclusive upper edges (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time cumulative view: Cumulative[i]
// counts observations <= Bounds[i]; the final element of Cumulative
// (the +Inf bucket) equals Count.
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
	Count      int64     `json:"count"`
	Sum        float64   `json:"sum"`
}

// Snapshot returns the cumulative view.  Buckets are loaded one by
// one while observations continue, so a snapshot is a consistent
// cumulative series but not necessarily a point-in-time cut; Count is
// defined as the +Inf cumulative value so the two always agree.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]int64, len(h.counts)),
	}
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		s.Cumulative[i] = run
	}
	s.Count = run // the per-bucket sum IS the count at snapshot time
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// Rolling is a ring of fixed-duration slots holding a value series
// over a sliding window — the live view behind /debug/vars and the
// SSE feed.  Slots older than slots×slotDur fall off as the ring
// advances; an idle slot is reported with zero count.
type Rolling struct {
	mu      sync.Mutex // guards: ring state (ticks, counts, sums, maxes, lastTick)
	epoch   time.Time
	slotDur time.Duration
	ticks   []int64 // slot i holds data for tick ticks[i]; -1 = never used
	counts  []int64
	sums    []float64
	maxes   []float64
}

// NewRolling returns a rolling window of slots slots, each covering
// slotDur of wall time (e.g. 60 slots × 1 s = the last minute).
func NewRolling(slots int, slotDur time.Duration) *Rolling {
	if slots < 1 {
		slots = 1
	}
	if slotDur <= 0 {
		slotDur = time.Second
	}
	r := &Rolling{
		epoch:   time.Now(),
		slotDur: slotDur,
		ticks:   make([]int64, slots),
		counts:  make([]int64, slots),
		sums:    make([]float64, slots),
		maxes:   make([]float64, slots),
	}
	for i := range r.ticks {
		r.ticks[i] = -1
	}
	return r
}

// Add folds one value into the current slot.
func (r *Rolling) Add(v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.addAtLocked(int64(time.Since(r.epoch)/r.slotDur), v)
	r.mu.Unlock()
}

func (r *Rolling) addAtLocked(tick int64, v float64) {
	i := int(tick % int64(len(r.ticks)))
	if r.ticks[i] != tick {
		r.ticks[i] = tick
		r.counts[i] = 0
		r.sums[i] = 0
		r.maxes[i] = 0
	}
	r.counts[i]++
	r.sums[i] += v
	if r.counts[i] == 1 || v > r.maxes[i] {
		r.maxes[i] = v
	}
}

// RollingPoint is one slot of a window snapshot.  AgeSlots is how many
// slots before the current one the point covers (0 = the slot still
// filling).
type RollingPoint struct {
	AgeSlots int     `json:"age_slots"`
	Count    int64   `json:"count"`
	Sum      float64 `json:"sum"`
	Mean     float64 `json:"mean"`
	Max      float64 `json:"max"`
}

// RollingSnapshot is a window snapshot, points ordered oldest first.
type RollingSnapshot struct {
	SlotMS float64        `json:"slot_ms"`
	Points []RollingPoint `json:"points"`
}

// Snapshot returns the live window, oldest slot first.  Slots that
// never saw a value inside the window are included with Count 0 so
// consumers can plot gaps honestly.
func (r *Rolling) Snapshot() RollingSnapshot {
	if r == nil {
		return RollingSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := int64(time.Since(r.epoch) / r.slotDur)
	n := len(r.ticks)
	s := RollingSnapshot{SlotMS: float64(r.slotDur) / float64(time.Millisecond)}
	for age := n - 1; age >= 0; age-- {
		tick := now - int64(age)
		if tick < 0 {
			continue
		}
		p := RollingPoint{AgeSlots: age}
		if i := int(tick % int64(n)); r.ticks[i] == tick {
			p.Count = r.counts[i]
			p.Sum = r.sums[i]
			p.Max = r.maxes[i]
			if p.Count > 0 {
				p.Mean = p.Sum / float64(p.Count)
			}
		}
		s.Points = append(s.Points, p)
	}
	return s
}

// Rate returns the window's total count divided by the covered wall
// time in seconds — e.g. requests shed per second over the window.
func (r *Rolling) Rate() float64 {
	if r == nil {
		return 0
	}
	s := r.Snapshot()
	if len(s.Points) == 0 {
		return 0
	}
	var n int64
	for _, p := range s.Points {
		n += p.Count
	}
	secs := float64(len(s.Points)) * s.SlotMS / 1000
	if secs <= 0 {
		return 0
	}
	return float64(n) / secs
}
