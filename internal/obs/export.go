package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"m2cc/internal/symtab"
)

// Metrics is the machine-readable snapshot of one observed run.  All
// durations are milliseconds of wall clock.
type Metrics struct {
	WallMs  float64 `json:"wall_ms"`
	Workers int     `json:"workers"`

	Tasks    int `json:"tasks"`
	Finished int `json:"finished"`
	NeverRan int `json:"never_ran"` // spawned but never dispatched (faulted runs)
	Spans    int `json:"spans"`

	Panics        int `json:"panics"`         // panic-isolated tasks (PR 2)
	WatchdogFires int `json:"watchdog_fires"` // deadlock-watchdog interventions
	StallAbandons int `json:"stall_abandons"` // foreign-leader waits abandoned at deadline

	BlocksHandled  int64 `json:"blocks_handled"`  // handled-event waits taken (slot released)
	BlocksExternal int64 `json:"blocks_external"` // external (cache-leader) waits taken
	BlocksBarrier  int64 `json:"blocks_barrier"`  // barrier waits taken (slot held)

	// Worker-slot occupancy over the run: time-weighted mean of busy
	// slots, the peak, and mean/workers as utilization (the measured
	// counterpart of sim.Result.Utilization).
	SlotOccupancyMean float64 `json:"slot_occupancy_mean"`
	SlotOccupancyPeak int     `json:"slot_occupancy_peak"`
	Utilization       float64 `json:"utilization"`

	// Ready-queue depth sampled after every dispatch round.
	ReadyDepthMean float64 `json:"ready_depth_mean"`
	ReadyDepthPeak int     `json:"ready_depth_peak"`

	// Event traffic attributed to the run (process-global counter
	// delta; see event.Totals).
	EventFires int64 `json:"event_fires"`
	EventWaits int64 `json:"event_waits"`

	// Cache is the interface-cache traffic, when a cache was attached.
	Cache *CacheCounters `json:"ifacecache,omitempty"`

	// Streams is the stream-cache (incremental recompilation) traffic,
	// when a stream cache was attached.
	Streams *StreamCounters `json:"streamcache,omitempty"`

	// Sched is the Supervisor's dispatch traffic — which queue each
	// dispatched task came from (the worker's own local queue, a steal,
	// the global overflow queue) and how many slot releases handed the
	// slot straight to the next task — when the scheduler reported it.
	Sched *SchedCounters `json:"sched,omitempty"`

	// Lookups are the per-strategy DKY tallies (Table 2's collector,
	// re-used at runtime), when lookup stats were recorded.
	Lookups *LookupMetrics `json:"lookups,omitempty"`
}

// LookupMetrics serializes symtab.Stats for the metrics snapshot.
type LookupMetrics struct {
	Strategy string       `json:"strategy"`
	Lookups  int64        `json:"lookups"`
	Blocks   int64        `json:"blocks"` // DKY blockages actually taken
	Rows     []LookupRow  `json:"rows,omitempty"`
	Outcomes []OutcomeRow `json:"outcomes,omitempty"` // per-strategy DKY outcome histogram
}

// OutcomeRow is one strategy's lookup-outcome histogram: how the
// strategy's DKY gamble actually played out at runtime (the measured
// companion of Table 2's risk/benefit discussion).
type OutcomeRow struct {
	Strategy  string `json:"strategy"`
	Found     int64  `json:"found"`     // lookups that resolved to a symbol
	Blocked   int64  `json:"blocked"`   // DKY waits actually taken
	Guessed   int64  `json:"guessed"`   // hits in still-incomplete tables, no wait
	Retracted int64  `json:"retracted"` // incomplete-table misses searched twice
}

// LookupRow is one Table 2 row as measured at runtime.
type LookupRow struct {
	Class string `json:"class"` // simple | qualified
	Found string `json:"found"` // First try | Search | After DKY | Never
	Scope string `json:"scope,omitempty"`
	State string `json:"state,omitempty"` // complete | incomplete
	Count int64  `json:"count"`
}

// Snapshot computes the metrics view.  It may be taken at any time;
// spans still running are counted up to Finish's stamp (or now).
func (o *Observer) Snapshot() Metrics {
	if o == nil {
		return Metrics{}
	}
	spans, tasks, _, wall := o.snapshotSpans()

	o.mu.Lock()
	m := Metrics{
		WallMs:            wall.Seconds() * 1000,
		Workers:           o.workers,
		Tasks:             len(tasks),
		Spans:             len(spans),
		Panics:            o.panics,
		WatchdogFires:     o.watchdogs,
		SlotOccupancyPeak: o.peakBusy,
		ReadyDepthPeak:    o.readyPeak,
		EventFires:        o.evDelta.Fires,
		EventWaits:        o.evDelta.Waits,
	}
	// Advance the occupancy integral to the horizon for tasks still on
	// a slot, without mutating the live integral.
	busyInt := o.busyInt + float64(o.busy)*(wall-o.lastBusyAt).Seconds()
	if wall > 0 {
		m.SlotOccupancyMean = busyInt / wall.Seconds()
	}
	if o.workers > 0 {
		m.Utilization = m.SlotOccupancyMean / float64(o.workers)
	}
	if o.readySamples > 0 {
		m.ReadyDepthMean = float64(o.readySum) / float64(o.readySamples)
	}
	if o.hasCache {
		c := o.cache
		m.Cache = &c
	}
	if o.hasStream {
		sc := o.streams
		m.Streams = &sc
	}
	if o.sched != (SchedCounters{}) {
		sc := o.sched
		m.Sched = &sc
	}
	lookups := o.lookups
	strategy := o.strategy
	o.mu.Unlock()

	for _, t := range tasks {
		if t.Done {
			m.Finished++
		}
		if !t.HasRun {
			m.NeverRan++
		}
		m.BlocksHandled += int64(t.Blocks[BlockHandled])
		m.BlocksExternal += int64(t.Blocks[BlockExternal])
		m.BlocksBarrier += int64(t.Blocks[BlockBarrier])
	}
	for _, mk := range o.marksSnapshot() {
		if mk.Kind == MarkStallAbandon {
			m.StallAbandons++
		}
	}
	if lookups != nil {
		lm := &LookupMetrics{Strategy: strategy}
		for _, r := range lookups.Rows() {
			row := LookupRow{Count: r.Count, Class: "simple", Found: r.Key.When.String()}
			if r.Key.Qualified {
				row.Class = "qualified"
			}
			if r.Key.When != symtab.Never {
				row.Scope = r.Key.Rel.String()
				row.State = "complete"
				if r.Key.Incomplete {
					row.State = "incomplete"
				}
			}
			lm.Rows = append(lm.Rows, row)
		}
		for _, or := range lookups.OutcomeRows() {
			lm.Outcomes = append(lm.Outcomes, OutcomeRow{
				Strategy:  or.Strategy.String(),
				Found:     or.Counts[symtab.OutFound],
				Blocked:   or.Counts[symtab.OutBlocked],
				Guessed:   or.Counts[symtab.OutGuessed],
				Retracted: or.Counts[symtab.OutRetracted],
			})
		}
		lm.Lookups, lm.Blocks = lookups.Totals()
		m.Lookups = lm
	}
	return m
}

func (o *Observer) marksSnapshot() []Mark {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Mark, len(o.marks))
	copy(out, o.marks)
	return out
}

// WriteMetrics writes the metrics snapshot as indented JSON.
func (o *Observer) WriteMetrics(w io.Writer) error {
	data, err := json.MarshalIndent(o.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// chromeEvent is one Chrome trace-event JSON object (the subset of the
// trace-event format Perfetto and chrome://tracing load: metadata "M",
// complete "X" and instant "i" phases).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

const tracePid = 1

// WriteChromeTrace writes the observed spans as Chrome trace-event
// JSON: one thread lane per worker slot, one complete ("X") event per
// span, instant events for event fires, waits, panic isolation and
// watchdog fires.  Output order is deterministic (spans sorted by
// start, then lane, then task; edges likewise), so the same recorded
// run always serializes byte-identically.  Load the file in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: no observer attached")
	}
	spans, tasks, marks, _ := o.snapshotSpans()
	fires, waits, _ := o.snapshotEdges()
	o.mu.Lock()
	workers := o.workers
	lanes := len(o.lanes)
	o.mu.Unlock()
	if lanes > workers {
		workers = lanes
	}

	evs := make([]chromeEvent, 0, len(spans)+len(marks)+len(fires)+len(waits)+workers+2)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "m2cc concurrent compiler"},
	})
	// task_count lets cross-reference checkers (cmd/tracecheck) validate
	// task IDs in span/edge args without trusting the span set itself.
	evs = append(evs, chromeEvent{
		Name: "task_count", Ph: "M", Pid: tracePid,
		Args: map[string]any{"count": len(tasks)},
	})
	for lane := 0; lane < workers; lane++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: lane,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", lane)},
		})
	}
	taskOf := func(id int) *TaskRecord {
		if id < 1 || id > len(tasks) {
			return nil
		}
		return &tasks[id-1]
	}
	for _, sp := range spans {
		name := fmt.Sprintf("task %d", sp.Task)
		args := map[string]any{"end": sp.EndReason}
		cat := ""
		if t := taskOf(sp.Task); t != nil {
			name = t.Label
			cat = t.Kind.String()
			args["stream"] = t.Stream
			args["task"] = t.ID
			if t.Panicked {
				args["panicked"] = true
			}
		}
		dur := (sp.End - sp.Start).Microseconds()
		if dur < 1 {
			dur = 1 // Perfetto drops zero-width slices
		}
		evs = append(evs, chromeEvent{
			Name: name, Cat: cat, Ph: "X",
			Ts: sp.Start.Microseconds(), Dur: dur,
			Pid: tracePid, Tid: sp.Lane, Args: args,
		})
	}
	for _, mk := range marks {
		name := mk.Kind.String()
		scope, tid := "p", 0
		if mk.Lane >= 0 {
			scope, tid = "t", mk.Lane
		}
		args := map[string]any{}
		if t := taskOf(mk.Task); t != nil {
			args["task"] = t.Label
		}
		evs = append(evs, chromeEvent{
			Name: name, Cat: "fault", Ph: "i",
			Ts: mk.At.Microseconds(), Pid: tracePid, Tid: tid,
			Scope: scope, Args: args,
		})
	}
	// Dependency edges: one instant per event fire and per wait window,
	// carrying the observer event/task IDs so tracecheck can verify the
	// cross-references (every non-external wait must name a fired event).
	for _, f := range fires {
		name := "fire"
		if f.Forced {
			name = "force-fire"
		}
		scope, tid := "p", 0
		if f.Lane >= 0 {
			scope, tid = "t", f.Lane
		}
		evs = append(evs, chromeEvent{
			Name: name, Cat: "event", Ph: "i",
			Ts: f.At.Microseconds(), Pid: tracePid, Tid: tid, Scope: scope,
			Args: map[string]any{"event": f.Event, "task": f.Task},
		})
	}
	for _, wt := range waits {
		scope, tid := "p", 0
		if wt.Lane >= 0 {
			scope, tid = "t", wt.Lane
		}
		evs = append(evs, chromeEvent{
			Name: "wait", Cat: "event", Ph: "i",
			Ts: wt.Start.Microseconds(), Pid: tracePid, Tid: tid, Scope: scope,
			Args: map[string]any{
				"event": wt.Event, "task": wt.Task,
				"reason":     wt.Reason.String(),
				"blocked_us": (wt.End - wt.Start).Microseconds(),
			},
		})
	}

	data, err := json.MarshalIndent(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{evs, "ms"}, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// RenderTimeline draws the measured per-worker activity as rows of
// task-kind glyphs in the style of the paper's Figure 7 (and of
// bench.RenderTimeline, which draws the simulator's *predicted*
// timeline from the same glyph alphabet): L lex, S split, I import,
// P parse/decl, G stmt-analysis/codegen, M merge, '.' idle, '!' a
// panic-isolated span.  Comparing this measured view against the
// simulated one is the point of the layer.
func (o *Observer) RenderTimeline(width int) string {
	if o == nil {
		return ""
	}
	if width <= 0 {
		width = 100
	}
	spans, tasks, _, wall := o.snapshotSpans()
	o.mu.Lock()
	workers := o.workers
	lanes := len(o.lanes)
	o.mu.Unlock()
	if lanes > workers {
		workers = lanes
	}
	if workers == 0 || wall <= 0 {
		return "(no activity recorded)\n"
	}

	total := wall.Seconds()
	rows := make([][]byte, workers)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	// Per-cell dominant glyph by accumulated time, as in the simulated
	// renderer, so sub-cell spans do not flicker based on order.
	acc := make([]map[byte]float64, workers*width)
	for _, sp := range spans {
		if sp.Lane < 0 || sp.Lane >= workers {
			continue
		}
		glyph := byte('?')
		if sp.Task >= 1 && sp.Task <= len(tasks) {
			t := tasks[sp.Task-1]
			glyph = t.Kind.Glyph()
			if t.Panicked {
				glyph = '!'
			}
		}
		s0, s1 := sp.Start.Seconds(), sp.End.Seconds()
		c0 := int(s0 / total * float64(width))
		c1 := int(s1 / total * float64(width))
		if c1 >= width {
			c1 = width - 1
		}
		for c := c0; c <= c1; c++ {
			cell := sp.Lane*width + c
			if acc[cell] == nil {
				acc[cell] = make(map[byte]float64)
			}
			lo := math.Max(s0, total*float64(c)/float64(width))
			hi := math.Min(s1, total*float64(c+1)/float64(width))
			if hi > lo {
				acc[cell][glyph] += hi - lo
			}
		}
	}
	for p := 0; p < workers; p++ {
		for c := 0; c < width; c++ {
			best, bestV := byte('.'), 0.0
			for g, v := range acc[p*width+c] {
				if v > bestV {
					best, bestV = g, v
				}
			}
			rows[p][c] = best
		}
	}
	var sb strings.Builder
	for p := workers - 1; p >= 0; p-- {
		fmt.Fprintf(&sb, "W%d |%s|\n", p, rows[p])
	}
	fmt.Fprintf(&sb, "    0%*s\n", width, fmt.Sprintf("%.2f ms", float64(wall)/float64(time.Millisecond)))
	sb.WriteString("legend: L lexical  S splitter  I importer  P parser/decl  G stmt/codegen  M merge  ! panic-isolated  . idle\n")
	return sb.String()
}
