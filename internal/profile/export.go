package profile

import (
	"time"

	"m2cc/internal/ctrace"
	"m2cc/internal/obs"
)

// ExportTrace converts a measured observation dump into a
// schedule-independent ctrace.Trace, replayable by internal/sim at any
// processor count and DKY strategy (the `m2c -whatif` bridge).
//
// Unit mapping: one trace work unit per microsecond of measured
// execution.  A task's cost is its total executing time (spans minus
// barrier stalls); fire and wait offsets are mapped through the task's
// own execution prefix — wall-clock gaps where the task was blocked or
// off-slot do not advance its offset, which is exactly the
// schedule-independence the simulator needs.  The caveat: measured
// wall-clock includes this machine's scheduling noise, so replayed
// makespans are in "measured microseconds", comparable across replay
// processor counts but not directly against the deterministic
// work-unit traces of a live `-trace` run.
//
// External waits (foreign cache leaders) are omitted, mirroring live
// traces where cached scopes appear pre-fired; events whose only fire
// was forced (panic isolation, watchdog) or driver-issued are exported
// as pre-fired (task 0), since their producers are outside the
// replayable DAG.
func ExportTrace(d *obs.Dump) *ctrace.Trace {
	rec := ctrace.NewRecorder()
	execs := execIntervals(d)

	// offsetAt maps a task's wall-clock instant to its execution offset
	// in microseconds (work units).
	offsetAt := func(task int, t time.Duration) float64 {
		var acc time.Duration
		for _, iv := range execs[task] {
			if t >= iv.e {
				acc += iv.e - iv.s
				continue
			}
			if t > iv.s {
				acc += t - iv.s
			}
			break
		}
		return float64(acc) / float64(time.Microsecond)
	}

	// Tasks, registered in observer-ID order so trace TaskIDs coincide
	// with observer task IDs.
	for i := range d.Tasks {
		t := &d.Tasks[i]
		id := rec.RegisterTask(t.Kind, t.Stream, t.Label)
		var cost time.Duration
		for _, iv := range execs[t.ID] {
			cost += iv.e - iv.s
		}
		rec.FinishTask(id, float64(cost)/float64(time.Microsecond))
	}

	// Events: pre-allocate the dump's dense IDs 1..Events so fire and
	// wait records can reference them independently.
	ids := make([]ctrace.EventID, d.Events+1)
	for i := 1; i <= d.Events; i++ {
		ids[i] = rec.NewEventID()
	}
	evID := func(e int) ctrace.EventID {
		if e < 1 || e >= len(ids) {
			return 0
		}
		return ids[e]
	}

	for _, f := range d.Fires {
		if f.Event < 1 || f.Event > d.Events {
			continue
		}
		if f.Forced || f.Task < 1 || f.Task > len(d.Tasks) {
			rec.NoteFireID(evID(f.Event), 0, 0) // pre-fired for the replay
			continue
		}
		rec.NoteFireID(evID(f.Event), ctrace.TaskID(f.Task), offsetAt(f.Task, f.At))
	}
	for _, w := range d.Waits {
		if w.Event < 1 || w.Event > d.Events || w.Task < 1 || w.Task > len(d.Tasks) {
			continue
		}
		if w.Reason == obs.BlockExternal {
			continue
		}
		rec.NoteWaitIDs(ctrace.TaskID(w.Task), offsetAt(w.Task, w.Start),
			evID(w.Event), w.Reason == obs.BlockBarrier)
	}
	for i := range d.Tasks {
		t := &d.Tasks[i]
		var gates []ctrace.EventID
		for _, g := range t.Gates {
			if id := evID(g); id != 0 {
				gates = append(gates, id)
			}
		}
		var at ctrace.Stamp
		if t.Parent >= 1 && t.Parent <= len(d.Tasks) {
			at = ctrace.Stamp{Task: ctrace.TaskID(t.Parent), Offset: offsetAt(t.Parent, t.Spawned)}
		}
		rec.NoteSpawnIDs(at.Task, at, ctrace.TaskID(t.ID), gates)
	}
	return rec.Trace()
}
