// Package profile is the critical-path profiler for measured
// concurrent compilations: the answer to "why didn't this compile
// speed up?".
//
// Input is an obs.Dump — the wall-clock spans, event fire edges and
// wait windows recorded by internal/obs during a real run.  From those
// the profiler reconstructs the task/event dependency DAG, walks the
// critical path backwards from the last finishing task, attributes
// every unit of blocked time to the event (and producing task) that
// caused it, and derives the two numbers the paper's evaluation keeps
// circling (§4): the serial fraction of the compilation and the
// speedup bound at P→∞ (Amdahl over the measured DAG: total work
// divided by critical-path work).
//
// Blocked time is split into two causes with different remedies:
//
//   - dependency stall: from the moment a task decided to wait until
//     the awaited event fired.  Only producing the event earlier (or
//     restructuring the dependency) can recover it.
//   - queue delay: from the event's fire until the waiter was running
//     again.  More processors recover it.
//
// The same Dump also exports as a schedule-independent ctrace.Trace
// (ExportTrace), so the measured run can be replayed by internal/sim
// at any processor count — see export.go.
package profile

import (
	"sort"
	"time"

	"m2cc/internal/ctrace"
	"m2cc/internal/obs"
)

// SegKind classifies one critical-path segment.
type SegKind uint8

// Segment kinds.
const (
	// SegWork: the task was executing on a worker slot.
	SegWork SegKind = iota
	// SegBlocked: waiting on an event with no usable fire edge (a
	// foreign compilation's event, or one force-fired after a fault) —
	// the stall cannot be walked through to a producer.
	SegBlocked
	// SegQueue: the awaited event had fired; the waiter was waiting for
	// a worker slot (or the gap between a gate fire and first dispatch).
	SegQueue
	// SegDispatch: between spawn and first dispatch with all gates open.
	SegDispatch
	// SegStartup: before the first observed activity (driver startup).
	SegStartup
)

func (k SegKind) String() string {
	switch k {
	case SegWork:
		return "work"
	case SegBlocked:
		return "blocked"
	case SegQueue:
		return "queue"
	case SegDispatch:
		return "dispatch"
	default:
		return "startup"
	}
}

// Segment is one stretch of the critical path.
type Segment struct {
	Kind  SegKind
	Task  int    // task advancing the path (0 for startup)
	Label string // its label, for the report
	Event int    // observer event ID involved (blocked/queue), else 0
	Start time.Duration
	End   time.Duration
}

// Dur returns the segment's length.
func (s Segment) Dur() time.Duration { return s.End - s.Start }

// EventBlame is the blocked time attributed to one event across all
// its waiters — the unit of the ranked blame report.
type EventBlame struct {
	Event         int
	Producer      int    // observer task ID of the firer; 0 = driver/none
	ProducerLabel string // "" when Producer is 0
	Forced        bool   // fire came from panic isolation or the watchdog
	External      bool   // no fire was observed at all (foreign event)
	Waiters       int    // wait edges charged to this event
	Blocked       time.Duration
	Queue         time.Duration
	OnCritPath    bool
}

// TaskCost is one task's measured totals.
type TaskCost struct {
	Task     int
	Kind     ctrace.TaskKind
	Label    string
	Work     time.Duration // executing time (spans minus barrier stalls)
	Blocked  time.Duration // its own wait-edge time, all reasons
	CritWork time.Duration // executing time on the critical path
}

// Profile is the computed critical-path profile of one observed run.
type Profile struct {
	Wall     time.Duration // observation horizon
	Makespan time.Duration // end of the last observed span
	Workers  int
	Strategy string
	Tasks    int

	TotalWork    time.Duration // Σ executing time across tasks
	TotalBlocked time.Duration // Σ wait-edge durations (all reasons)
	TotalQueue   time.Duration // post-fire share of TotalBlocked

	CritLen     time.Duration // Σ path segments (≈ Makespan)
	CritWork    time.Duration
	CritBlocked time.Duration
	CritQueue   time.Duration

	// SerialFraction is CritWork/TotalWork: the share of the measured
	// work that is inherently sequential under the recorded dependency
	// structure.  SpeedupBound is its reciprocal view, TotalWork /
	// CritWork — the measured run's speedup ceiling at P→∞ (0 when no
	// work was recorded).
	SerialFraction float64
	SpeedupBound   float64

	Path   []Segment    // the critical path, earliest first
	Events []EventBlame // ranked by Blocked+Queue, largest first
	ByTask []TaskCost   // ranked by Work, largest first

	// Sched is the Supervisor's dispatch traffic for the observed run
	// (zero when the scheduler reported none): how many dispatches the
	// queue-delay segments above were served from the worker's own
	// local queue, a steal, or the overflow queue, and how many slot
	// releases handed the slot straight onward without a queue trip.
	Sched obs.SchedCounters
}

// ival is one execution interval of a task (span minus barrier stalls).
type ival struct{ s, e time.Duration }

// execIntervals computes each task's executing intervals: its spans
// with overlapping barrier-wait windows carved out (a barrier waiter
// holds its slot but does no work).  Index 0 is unused; task IDs are
// 1-based.  Both spans and waits arrive sorted by start.
func execIntervals(d *obs.Dump) [][]ival {
	execs := make([][]ival, len(d.Tasks)+1)
	barriers := make([][]ival, len(d.Tasks)+1)
	for _, w := range d.Waits {
		if w.Reason == obs.BlockBarrier && w.Task >= 1 && w.Task <= len(d.Tasks) {
			barriers[w.Task] = append(barriers[w.Task], ival{w.Start, w.End})
		}
	}
	for _, sp := range d.Spans {
		if sp.Task < 1 || sp.Task > len(d.Tasks) || sp.End <= sp.Start {
			continue
		}
		cur := sp.Start
		for _, b := range barriers[sp.Task] {
			if b.e <= cur || b.s >= sp.End {
				continue
			}
			if b.s > cur {
				execs[sp.Task] = append(execs[sp.Task], ival{cur, b.s})
			}
			cur = b.e
			if cur >= sp.End {
				break
			}
		}
		if cur < sp.End {
			execs[sp.Task] = append(execs[sp.Task], ival{cur, sp.End})
		}
	}
	return execs
}

// item is one per-task timeline entry for the backward walk: an
// execution interval or a wait window.
type item struct {
	s, e    time.Duration
	event   int  // 0 for exec items
	isWait  bool
	barrier bool
}

const epsD = 100 * time.Nanosecond

// Build computes the critical-path profile of a recorded run.
func Build(d *obs.Dump) *Profile {
	p := &Profile{
		Wall: d.Wall, Workers: d.Workers, Strategy: d.Strategy, Tasks: len(d.Tasks),
		Sched: d.Sched,
	}
	if len(d.Spans) == 0 {
		return p
	}
	execs := execIntervals(d)

	// First (non-forced) fire per event, and its producer.
	fireOf := make(map[int]obs.FireEdge, len(d.Fires))
	for _, f := range d.Fires {
		if _, ok := fireOf[f.Event]; !ok {
			fireOf[f.Event] = f
		}
	}

	// Per-task totals and the ranked task table.
	p.ByTask = make([]TaskCost, 0, len(d.Tasks))
	taskCost := make([]*TaskCost, len(d.Tasks)+1)
	for i := range d.Tasks {
		t := &d.Tasks[i]
		tc := TaskCost{Task: t.ID, Kind: t.Kind, Label: t.Label}
		for _, iv := range execs[t.ID] {
			tc.Work += iv.e - iv.s
		}
		p.TotalWork += tc.Work
		p.ByTask = append(p.ByTask, tc)
	}
	for i := range p.ByTask {
		taskCost[p.ByTask[i].Task] = &p.ByTask[i]
	}

	// Blame attribution: each wait edge splits at its event's fire into
	// dependency stall (before) and queue delay (after).  Invariant
	// checked by the tests: Σ(Blocked+Queue) over events == Σ wait-edge
	// durations == TotalBlocked.
	blame := make(map[int]*EventBlame)
	for _, w := range d.Waits {
		dur := w.End - w.Start
		if dur < 0 {
			dur = 0
		}
		p.TotalBlocked += dur
		if tc := taskCost[w.Task]; tc != nil {
			tc.Blocked += dur
		}
		eb := blame[w.Event]
		if eb == nil {
			eb = &EventBlame{Event: w.Event}
			if f, ok := fireOf[w.Event]; ok {
				eb.Producer = f.Task
				eb.Forced = f.Forced
				if f.Task >= 1 && f.Task <= len(d.Tasks) {
					eb.ProducerLabel = d.Tasks[f.Task-1].Label
				}
			} else {
				eb.External = true
			}
			blame[w.Event] = eb
		}
		eb.Waiters++
		f, ok := fireOf[w.Event]
		switch {
		case !ok:
			eb.Blocked += dur
		case f.At <= w.Start:
			eb.Queue += dur
			p.TotalQueue += dur
		case f.At >= w.End:
			eb.Blocked += dur
		default:
			eb.Blocked += f.At - w.Start
			eb.Queue += w.End - f.At
			p.TotalQueue += w.End - f.At
		}
	}

	// Per-task walk timeline: exec intervals and wait windows, sorted.
	items := make([][]item, len(d.Tasks)+1)
	for id := 1; id <= len(d.Tasks); id++ {
		for _, iv := range execs[id] {
			items[id] = append(items[id], item{s: iv.s, e: iv.e})
		}
	}
	for _, w := range d.Waits {
		if w.Task >= 1 && w.Task <= len(d.Tasks) {
			items[w.Task] = append(items[w.Task], item{
				s: w.Start, e: w.End, event: w.Event,
				isWait: true, barrier: w.Reason == obs.BlockBarrier,
			})
		}
	}
	for id := range items {
		sort.Slice(items[id], func(i, j int) bool { return items[id][i].s < items[id][j].s })
	}

	// Anchor: the task whose observed activity ends last.
	cur, tEnd := 0, time.Duration(0)
	for id := 1; id <= len(d.Tasks); id++ {
		for _, iv := range execs[id] {
			if iv.e > tEnd {
				cur, tEnd = id, iv.e
			}
		}
	}
	if cur == 0 {
		return p
	}
	p.Makespan = tEnd

	label := func(id int) string {
		if id >= 1 && id <= len(d.Tasks) {
			return d.Tasks[id-1].Label
		}
		return ""
	}
	critEvents := map[int]bool{}
	var rev []Segment // built back-to-front
	push := func(seg Segment) {
		if seg.End-seg.Start > 0 {
			rev = append(rev, seg)
		}
	}

	// Backward walk.  Every step strictly decreases t (segments of zero
	// length are dropped but the cursor still moves); the step bound is
	// a defensive guard against degenerate timestamps.
	t := tEnd
	maxSteps := 4*(len(d.Spans)+len(d.Waits)+len(d.Tasks)) + 64
	for steps := 0; t > 0 && steps < maxSteps; steps++ {
		list := items[cur]
		// Latest item beginning strictly before t.
		idx := sort.Search(len(list), func(i int) bool { return list[i].s >= t-epsD }) - 1
		if idx < 0 {
			// Before the task's first activity: spawn/gate region.
			tr := &d.Tasks[cur-1]
			var gate obs.FireEdge
			haveGate := false
			for _, g := range tr.Gates {
				if f, ok := fireOf[g]; ok && f.At <= t+epsD {
					if !haveGate || f.At > gate.At {
						gate, haveGate = f, true
					}
				}
			}
			if haveGate && !gate.Forced && gate.Task >= 1 && gate.At > tr.Spawned+epsD && gate.At < t {
				// The last gate to open bounds the first dispatch: jump
				// to its producer at the fire.
				push(Segment{Kind: SegQueue, Task: cur, Label: label(cur), Event: gate.Event, Start: gate.At, End: t})
				critEvents[gate.Event] = true
				cur, t = gate.Task, gate.At
				continue
			}
			if tr.Parent == 0 && haveGate && !gate.Forced && gate.Task >= 1 && gate.At < t {
				// Driver-sequenced spawn (the merge task): the driver
				// itself waited for these completions before spawning, so
				// even a gate that fired before the recorded spawn stamp
				// bounds it — jump through the latest one rather than
				// writing the whole prefix off as startup.
				push(Segment{Kind: SegDispatch, Task: cur, Label: label(cur), Event: gate.Event, Start: gate.At, End: t})
				critEvents[gate.Event] = true
				cur, t = gate.Task, gate.At
				continue
			}
			spawn := tr.Spawned
			if spawn > t {
				spawn = t
			}
			push(Segment{Kind: SegDispatch, Task: cur, Label: label(cur), Start: spawn, End: t})
			t = spawn
			if tr.Parent >= 1 && t > 0 {
				cur = tr.Parent
				continue
			}
			// Initial task: everything earlier is driver startup.
			push(Segment{Kind: SegStartup, Start: 0, End: t})
			t = 0
			break
		}
		it := list[idx]
		if !it.isWait {
			if t > it.e+epsD {
				// Gap after this exec (measurement jitter between a wake
				// and the next span): charge it as queue delay.
				push(Segment{Kind: SegQueue, Task: cur, Label: label(cur), Start: it.e, End: t})
				t = it.e
				continue
			}
			push(Segment{Kind: SegWork, Task: cur, Label: label(cur), Start: it.s, End: t})
			if tc := taskCost[cur]; tc != nil {
				tc.CritWork += t - it.s
			}
			t = it.s
			continue
		}
		// Wait window.  Jump through the fire to the producer when one
		// was observed; otherwise the stall is a dead end — charge it
		// here and keep walking this task's earlier activity.
		critEvents[it.event] = true
		f, ok := fireOf[it.event]
		if ok && !f.Forced && f.Task >= 1 && f.At >= it.s-epsD && f.At <= t+epsD {
			end := t
			if f.At < end {
				push(Segment{Kind: SegQueue, Task: cur, Label: label(cur), Event: it.event, Start: f.At, End: end})
			}
			cur, t = f.Task, min(f.At, end)
			continue
		}
		push(Segment{Kind: SegBlocked, Task: cur, Label: label(cur), Event: it.event, Start: it.s, End: t})
		t = it.s
	}

	// Earliest-first order and the summary sums.
	for i := len(rev) - 1; i >= 0; i-- {
		seg := rev[i]
		p.Path = append(p.Path, seg)
		p.CritLen += seg.Dur()
		switch seg.Kind {
		case SegWork:
			p.CritWork += seg.Dur()
		case SegBlocked, SegStartup:
			p.CritBlocked += seg.Dur()
		default:
			p.CritQueue += seg.Dur()
		}
	}
	if p.TotalWork > 0 && p.CritWork > 0 {
		p.SerialFraction = float64(p.CritWork) / float64(p.TotalWork)
		p.SpeedupBound = float64(p.TotalWork) / float64(p.CritWork)
	}

	p.Events = make([]EventBlame, 0, len(blame))
	for _, eb := range blame {
		eb.OnCritPath = critEvents[eb.Event]
		p.Events = append(p.Events, *eb)
	}
	sort.Slice(p.Events, func(i, j int) bool {
		a, b := &p.Events[i], &p.Events[j]
		if at, bt := a.Blocked+a.Queue, b.Blocked+b.Queue; at != bt {
			return at > bt
		}
		return a.Event < b.Event
	})
	sort.Slice(p.ByTask, func(i, j int) bool {
		if p.ByTask[i].Work != p.ByTask[j].Work {
			return p.ByTask[i].Work > p.ByTask[j].Work
		}
		return p.ByTask[i].Task < p.ByTask[j].Task
	})
	return p
}

func min(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
