package profile_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/ctrace"
	"m2cc/internal/obs"
	"m2cc/internal/profile"
	"m2cc/internal/sim"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
)

const us = time.Microsecond

// twoTaskDump hand-builds the smallest interesting observation: a
// producer that runs 0..100µs and fires event 1 at 80µs, and a
// consumer (spawned by the producer at 5µs) that runs 10..20µs, waits
// on event 1 from 20µs to 85µs, then runs 85..120µs.  Every profile
// number below is checkable by hand.
func twoTaskDump() obs.Dump {
	return obs.Dump{
		Wall: 120 * us, Workers: 2, Strategy: "Skeptical", Events: 1,
		Tasks: []obs.TaskRecord{
			{ID: 1, Kind: ctrace.KindModParseDecl, Label: "producer",
				Spawned: 0, Started: 0, Finished: 100 * us, HasRun: true, Done: true},
			{ID: 2, Kind: ctrace.KindProcParseDecl, Label: "consumer", Parent: 1,
				Spawned: 5 * us, Started: 10 * us, Finished: 120 * us, HasRun: true, Done: true},
		},
		Spans: []obs.Span{
			{Task: 1, Lane: 0, Start: 0, End: 100 * us, EndReason: "finish"},
			{Task: 2, Lane: 1, Start: 10 * us, End: 20 * us, EndReason: "block-handled"},
			{Task: 2, Lane: 1, Start: 85 * us, End: 120 * us, EndReason: "finish"},
		},
		Fires: []obs.FireEdge{{Event: 1, Task: 1, Lane: 0, At: 80 * us}},
		Waits: []obs.WaitEdge{{Event: 1, Task: 2, Lane: 1,
			Reason: obs.BlockHandled, Start: 20 * us, End: 85 * us}},
	}
}

func TestBuildTwoTaskByHand(t *testing.T) {
	d := twoTaskDump()
	p := profile.Build(&d)

	if p.Makespan != 120*us {
		t.Errorf("Makespan = %v, want 120µs", p.Makespan)
	}
	if p.TotalWork != 145*us {
		t.Errorf("TotalWork = %v, want 145µs (100 + 10 + 35)", p.TotalWork)
	}
	if p.TotalBlocked != 65*us {
		t.Errorf("TotalBlocked = %v, want 65µs", p.TotalBlocked)
	}
	if p.TotalQueue != 5*us {
		t.Errorf("TotalQueue = %v, want 5µs (fire at 80, resumed at 85)", p.TotalQueue)
	}

	// The critical path: producer works 0..80, the consumer's queue
	// delay 80..85, consumer works 85..120.
	want := []profile.Segment{
		{Kind: profile.SegWork, Task: 1, Label: "producer", Start: 0, End: 80 * us},
		{Kind: profile.SegQueue, Task: 2, Label: "consumer", Event: 1, Start: 80 * us, End: 85 * us},
		{Kind: profile.SegWork, Task: 2, Label: "consumer", Start: 85 * us, End: 120 * us},
	}
	if !reflect.DeepEqual(p.Path, want) {
		t.Errorf("Path = %+v\nwant %+v", p.Path, want)
	}
	if p.CritLen != 120*us || p.CritWork != 115*us || p.CritQueue != 5*us || p.CritBlocked != 0 {
		t.Errorf("CritLen/Work/Queue/Blocked = %v/%v/%v/%v, want 120µs/115µs/5µs/0",
			p.CritLen, p.CritWork, p.CritQueue, p.CritBlocked)
	}
	if got, want := p.SerialFraction, 115.0/145.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("SerialFraction = %v, want %v", got, want)
	}
	if got, want := p.SpeedupBound, 145.0/115.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("SpeedupBound = %v, want %v", got, want)
	}

	if len(p.Events) != 1 {
		t.Fatalf("Events = %+v, want exactly one blame row", p.Events)
	}
	eb := p.Events[0]
	if eb.Event != 1 || eb.Producer != 1 || eb.ProducerLabel != "producer" ||
		eb.Waiters != 1 || eb.Blocked != 60*us || eb.Queue != 5*us || !eb.OnCritPath {
		t.Errorf("blame = %+v, want event 1 by producer: 60µs blocked + 5µs queue, on path", eb)
	}
}

func TestExportTwoTaskReplay(t *testing.T) {
	d := twoTaskDump()
	tr := profile.ExportTrace(&d)
	if got := tr.TotalCost(); got != 145 {
		t.Fatalf("TotalCost = %v, want 145 work units (µs of execution)", got)
	}
	// P=1: serial replay is exactly the work total.
	one := sim.New(tr, sim.Options{
		Processors: 1, Strategy: symtab.Skeptical, ReplayWaits: true,
		LongBeforeShort: true, BoostResolver: true,
	}).Run()
	if one.Makespan != 145 {
		t.Errorf("P=1 replay makespan %v, want 145", one.Makespan)
	}
	// P=2: the consumer still waits for the fire at t=80, then runs its
	// remaining 35 units — the measured queue delay is recovered.
	two := sim.New(tr, sim.Options{
		Processors: 2, Strategy: symtab.Skeptical, ReplayWaits: true,
		LongBeforeShort: true, BoostResolver: true,
	}).Run()
	if two.Makespan != 115 {
		t.Errorf("P=2 replay makespan %v, want 115", two.Makespan)
	}
}

func TestBuildEmptySafe(t *testing.T) {
	p := profile.Build(&obs.Dump{})
	if p.Makespan != 0 || p.TotalWork != 0 || len(p.Path) != 0 {
		t.Errorf("empty dump profile = %+v, want zeros", p)
	}
	if out := p.Render(10); !strings.Contains(out, "no activity") {
		t.Errorf("empty Render = %q", out)
	}
	tr := profile.ExportTrace(&obs.Dump{})
	if len(tr.Tasks) != 0 || tr.TotalCost() != 0 {
		t.Errorf("empty export = %+v, want no tasks", tr)
	}
}

// --- real-compilation fixtures ------------------------------------------

var profProgram = map[string]map[source.FileKind]string{
	"Pair": {source.Def: `
DEFINITION MODULE Pair;
PROCEDURE Sum(a, b: INTEGER): INTEGER;
PROCEDURE Max(a, b: INTEGER): INTEGER;
END Pair.
`, source.Impl: `
IMPLEMENTATION MODULE Pair;

PROCEDURE Sum(a, b: INTEGER): INTEGER;
BEGIN
  RETURN a + b
END Sum;

PROCEDURE Max(a, b: INTEGER): INTEGER;
BEGIN
  IF a > b THEN RETURN a END;
  RETURN b
END Max;

END Pair.
`},
	"Main": {source.Impl: `
MODULE Main;
FROM Pair IMPORT Sum, Max;
IMPORT Pair;
VAR v: INTEGER;

PROCEDURE Triple(n: INTEGER): INTEGER;
BEGIN
  RETURN Sum(Sum(n, n), n)
END Triple;

BEGIN
  v := Triple(4);
  WriteInt(Max(v, 3), 0); WriteLn
END Main.
`},
}

// compileDump runs one observed concurrent compilation and returns its
// dump.
func compileDump(t *testing.T, workers int) obs.Dump {
	t.Helper()
	loader := source.NewMapLoader()
	for name, kinds := range profProgram {
		for kind, text := range kinds {
			loader.Add(name, kind, text)
		}
	}
	o := obs.New()
	res := core.Compile("Main", loader, core.Options{
		Workers: workers, Strategy: symtab.Skeptical, Obs: o,
	})
	if res.Failed() || res.Faulted {
		t.Fatalf("compile failed (faulted=%v):\n%s", res.Faulted, res.Diags)
	}
	return o.Dump()
}

// TestBlameConservation pins the attribution invariant on a real run:
// the blocked time attributed across events equals the sum of the
// measured wait edges equals Profile.TotalBlocked, and the walked
// critical path tiles the makespan exactly.
func TestBlameConservation(t *testing.T) {
	d := compileDump(t, 4)
	p := profile.Build(&d)

	var waitsTotal time.Duration
	for _, w := range d.Waits {
		waitsTotal += w.End - w.Start
	}
	if p.TotalBlocked != waitsTotal {
		t.Errorf("TotalBlocked = %v, measured wait edges sum to %v", p.TotalBlocked, waitsTotal)
	}
	var blamed time.Duration
	for _, eb := range p.Events {
		blamed += eb.Blocked + eb.Queue
	}
	if blamed != p.TotalBlocked {
		t.Errorf("attributed %v across events, TotalBlocked %v", blamed, p.TotalBlocked)
	}
	if p.CritLen != p.Makespan {
		t.Errorf("CritLen = %v, Makespan = %v; the path must tile the run", p.CritLen, p.Makespan)
	}
	var pathLen time.Duration
	for i, seg := range p.Path {
		pathLen += seg.Dur()
		if i > 0 && p.Path[i-1].End != seg.Start {
			t.Errorf("path gap: segment %d ends %v, segment %d starts %v",
				i-1, p.Path[i-1].End, i, seg.Start)
		}
	}
	if pathLen != p.CritLen {
		t.Errorf("path segments sum to %v, CritLen %v", pathLen, p.CritLen)
	}
	if p.TotalWork <= 0 || p.SpeedupBound < 1 {
		t.Errorf("TotalWork %v, SpeedupBound %v: want positive work, bound >= 1",
			p.TotalWork, p.SpeedupBound)
	}
}

// TestExportReplayP1Fidelity pins the -whatif acceptance bound: a P=1
// replay of the obs-exported trace reproduces the trace's serial work
// total within 1%.
func TestExportReplayP1Fidelity(t *testing.T) {
	d := compileDump(t, 4)
	tr := profile.ExportTrace(&d)
	total := tr.TotalCost()
	if total <= 0 {
		t.Fatal("exported trace has no work")
	}
	r := sim.New(tr, sim.Options{
		Processors: 1, Strategy: symtab.Skeptical, ReplayWaits: true,
		LongBeforeShort: true, BoostResolver: true,
	}).Run()
	if errPct := 100 * math.Abs(r.Makespan-total) / total; errPct > 1 {
		t.Errorf("P=1 replay makespan %.1f vs trace work %.1f: %.3f%% error, want < 1%%",
			r.Makespan, total, errPct)
	}
}

// TestExportDeterministic pins schedule-independence of the bridge: the
// same dump exports to identical traces, and identical traces simulate
// to identical results at any processor count.
func TestExportDeterministic(t *testing.T) {
	d := compileDump(t, 4)
	a := profile.ExportTrace(&d)
	b := profile.ExportTrace(&d)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two exports of the same dump differ")
	}
	opts := sim.Options{
		Processors: 4, Strategy: symtab.Skeptical, ReplayWaits: true,
		LongBeforeShort: true, BoostResolver: true,
	}
	ra := sim.New(a, opts).Run()
	rb := sim.New(b, opts).Run()
	if ra.Makespan != rb.Makespan || ra.BusyTime != rb.BusyTime || ra.Blocks != rb.Blocks {
		t.Errorf("replays differ: %+v vs %+v", ra, rb)
	}
}

// TestRenderAndJSON smoke-tests both report forms on a real profile.
func TestRenderAndJSON(t *testing.T) {
	d := compileDump(t, 4)
	p := profile.Build(&d)
	out := p.Render(5)
	for _, want := range []string{"critical-path profile", "critical path (earliest first)", "serial fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("profile JSON does not parse: %v", err)
	}
	for _, key := range []string{"makespan_ms", "critical_path", "events", "by_task", "speedup_bound"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("profile JSON missing %q", key)
		}
	}
}
