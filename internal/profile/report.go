package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"m2cc/internal/obs"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Render draws the text blame report: the summary numbers, the
// critical path, and the top maxRows blamed events.
func (p *Profile) Render(maxRows int) string {
	var sb strings.Builder
	if p.Makespan == 0 || p.TotalWork == 0 {
		sb.WriteString("critical-path profile: no activity recorded\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "critical-path profile (%s, %d workers)\n", p.Strategy, p.Workers)
	fmt.Fprintf(&sb, "  makespan %.3f ms   total work %.3f ms   total blocked %.3f ms (%.3f ms of it queue delay)\n",
		ms(p.Makespan), ms(p.TotalWork), ms(p.TotalBlocked), ms(p.TotalQueue))
	fmt.Fprintf(&sb, "  critical path: %.3f ms = %.3f work + %.3f blocked + %.3f queue\n",
		ms(p.CritLen), ms(p.CritWork), ms(p.CritBlocked), ms(p.CritQueue))
	fmt.Fprintf(&sb, "  serial fraction %.1f%%   speedup bound at P→∞: %.2fx\n",
		100*p.SerialFraction, p.SpeedupBound)
	if c := p.Sched; c.LocalPops+c.Steals+c.OverflowPops+c.Handoffs > 0 {
		fmt.Fprintf(&sb, "  dispatches: %d local, %d stolen, %d overflow; %d direct slot handoffs\n",
			c.LocalPops, c.Steals, c.OverflowPops, c.Handoffs)
	}

	sb.WriteString("\ncritical path (earliest first):\n")
	for _, seg := range p.Path {
		who := seg.Label
		if who == "" && seg.Task != 0 {
			who = fmt.Sprintf("task %d", seg.Task)
		}
		line := fmt.Sprintf("  %9.3f..%9.3f ms  %-8s %s", ms(seg.Start), ms(seg.End), seg.Kind, who)
		if seg.Event != 0 && seg.Kind != SegWork {
			line += fmt.Sprintf(" (event %d)", seg.Event)
		}
		sb.WriteString(line + "\n")
	}

	if len(p.Events) > 0 {
		sb.WriteString("\nblame report (blocked time by event):\n")
		fmt.Fprintf(&sb, "  %-6s  %-24s  %8s  %8s  %7s  %s\n",
			"event", "producer", "blocked", "queue", "waiters", "")
		rows := p.Events
		if maxRows > 0 && len(rows) > maxRows {
			rows = rows[:maxRows]
		}
		for _, eb := range rows {
			prod := eb.ProducerLabel
			switch {
			case eb.External:
				prod = "(external)"
			case eb.Forced:
				prod = "(force-fired)"
			case prod == "":
				prod = "(driver)"
			}
			mark := ""
			if eb.OnCritPath {
				mark = "← critical path"
			}
			fmt.Fprintf(&sb, "  %-6d  %-24s  %6.3fms  %6.3fms  %7d  %s\n",
				eb.Event, prod, ms(eb.Blocked), ms(eb.Queue), eb.Waiters, mark)
		}
		if maxRows > 0 && len(p.Events) > maxRows {
			fmt.Fprintf(&sb, "  … %d more events\n", len(p.Events)-maxRows)
		}
	}

	if len(p.ByTask) > 0 {
		sb.WriteString("\ntop tasks by work:\n")
		n := len(p.ByTask)
		if maxRows > 0 && n > maxRows {
			n = maxRows
		}
		for _, tc := range p.ByTask[:n] {
			fmt.Fprintf(&sb, "  %-28s  work %8.3fms  blocked %8.3fms  on-path %8.3fms\n",
				tc.Label, ms(tc.Work), ms(tc.Blocked), ms(tc.CritWork))
		}
	}
	return sb.String()
}

// jsonProfile is the JSON view of a Profile, durations in float
// milliseconds for readability.
type jsonProfile struct {
	WallMs         float64       `json:"wall_ms"`
	MakespanMs     float64       `json:"makespan_ms"`
	Workers        int           `json:"workers"`
	Strategy       string        `json:"strategy"`
	Tasks          int           `json:"tasks"`
	TotalWorkMs    float64       `json:"total_work_ms"`
	TotalBlockedMs float64       `json:"total_blocked_ms"`
	TotalQueueMs   float64       `json:"total_queue_ms"`
	CritLenMs      float64       `json:"crit_len_ms"`
	CritWorkMs     float64       `json:"crit_work_ms"`
	CritBlockedMs  float64       `json:"crit_blocked_ms"`
	CritQueueMs    float64       `json:"crit_queue_ms"`
	SerialFraction float64       `json:"serial_fraction"`
	SpeedupBound   float64       `json:"speedup_bound"`
	Sched          *obs.SchedCounters `json:"sched,omitempty"`
	Path           []jsonSegment `json:"critical_path"`
	Events         []jsonBlame   `json:"events"`
	Tasks_         []jsonTask    `json:"by_task"`
}

type jsonSegment struct {
	Kind    string  `json:"kind"`
	Task    int     `json:"task,omitempty"`
	Label   string  `json:"label,omitempty"`
	Event   int     `json:"event,omitempty"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
}

type jsonBlame struct {
	Event      int     `json:"event"`
	Producer   int     `json:"producer,omitempty"`
	Label      string  `json:"producer_label,omitempty"`
	Forced     bool    `json:"forced,omitempty"`
	External   bool    `json:"external,omitempty"`
	Waiters    int     `json:"waiters"`
	BlockedMs  float64 `json:"blocked_ms"`
	QueueMs    float64 `json:"queue_ms"`
	OnCritPath bool    `json:"on_critical_path,omitempty"`
}

type jsonTask struct {
	Task       int     `json:"task"`
	Kind       string  `json:"kind"`
	Label      string  `json:"label"`
	WorkMs     float64 `json:"work_ms"`
	BlockedMs  float64 `json:"blocked_ms"`
	CritWorkMs float64 `json:"crit_work_ms"`
}

// WriteJSON writes the profile as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	jp := jsonProfile{
		WallMs: ms(p.Wall), MakespanMs: ms(p.Makespan),
		Workers: p.Workers, Strategy: p.Strategy, Tasks: p.Tasks,
		TotalWorkMs: ms(p.TotalWork), TotalBlockedMs: ms(p.TotalBlocked), TotalQueueMs: ms(p.TotalQueue),
		CritLenMs: ms(p.CritLen), CritWorkMs: ms(p.CritWork),
		CritBlockedMs: ms(p.CritBlocked), CritQueueMs: ms(p.CritQueue),
		SerialFraction: p.SerialFraction, SpeedupBound: p.SpeedupBound,
	}
	if p.Sched != (obs.SchedCounters{}) {
		sc := p.Sched
		jp.Sched = &sc
	}
	for _, seg := range p.Path {
		jp.Path = append(jp.Path, jsonSegment{
			Kind: seg.Kind.String(), Task: seg.Task, Label: seg.Label, Event: seg.Event,
			StartMs: ms(seg.Start), EndMs: ms(seg.End),
		})
	}
	for _, eb := range p.Events {
		jp.Events = append(jp.Events, jsonBlame{
			Event: eb.Event, Producer: eb.Producer, Label: eb.ProducerLabel,
			Forced: eb.Forced, External: eb.External, Waiters: eb.Waiters,
			BlockedMs: ms(eb.Blocked), QueueMs: ms(eb.Queue), OnCritPath: eb.OnCritPath,
		})
	}
	for _, tc := range p.ByTask {
		jp.Tasks_ = append(jp.Tasks_, jsonTask{
			Task: tc.Task, Kind: tc.Kind.String(), Label: tc.Label,
			WorkMs: ms(tc.Work), BlockedMs: ms(tc.Blocked), CritWorkMs: ms(tc.CritWork),
		})
	}
	data, err := json.MarshalIndent(jp, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
