package lexer_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/lexer"
	"m2cc/internal/source"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
)

// scan lexes text and returns the tokens (without EOF) plus diagnostics.
func scan(t *testing.T, text string) ([]token.Token, *diag.Bag) {
	t.Helper()
	files := source.NewSet()
	f := files.Add("T", source.Impl, text)
	diags := diag.NewBag(0)
	toks := lexer.ScanAll(f, &ctrace.TaskCtx{}, diags)
	return toks[:len(toks)-1], diags
}

// kinds extracts the token kinds.
func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestReservedVsIdent(t *testing.T) {
	toks, diags := scan(t, "MODULE module If IF ENDX END")
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	want := []token.Kind{token.MODULE, token.Ident, token.Ident, token.IF, token.Ident, token.END}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Fatalf("got %v, want %v", kinds(toks), want)
	}
}

func TestOperators(t *testing.T) {
	toks, diags := scan(t, "+ - * / := & . , ; ( [ { ^ = # < > <= >= .. : ) ] } | ~ <>")
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	want := []token.Kind{
		token.Plus, token.Minus, token.Star, token.Slash, token.Assign,
		token.Amp, token.Dot, token.Comma, token.Semicolon, token.LParen,
		token.LBrack, token.LBrace, token.Caret, token.Equal, token.NotEqual,
		token.Less, token.Greater, token.LessEq, token.GreaterEq,
		token.DotDot, token.Colon, token.RParen, token.RBrack, token.RBrace,
		token.Bar, token.Tilde, token.NotEqual,
	}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Fatalf("got %v\nwant %v", kinds(toks), want)
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
		text string
	}{
		{"123", token.IntLit, "123"},
		{"0", token.IntLit, "0"},
		{"0FFH", token.IntLit, "0FFH"},
		{"0abcH", token.IntLit, "0abcH"}, // lower-case hex rejected? (scan as 0 then ident)
		{"17B", token.IntLit, "17B"},
		{"15C", token.CharLit, "15C"},
		{"3.14", token.RealLit, "3.14"},
		{"1.0E6", token.RealLit, "1.0E6"},
		{"2.5E-3", token.RealLit, "2.5E-3"},
		{"7.", token.RealLit, "7."},
	}
	for _, c := range cases {
		if c.src == "0abcH" {
			continue // covered by TestMalformedNumbers
		}
		toks, diags := scan(t, c.src)
		if diags.HasErrors() {
			t.Errorf("%q: unexpected errors %s", c.src, diags)
			continue
		}
		if len(toks) != 1 || toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q lexed as %v %q, want %v %q", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestIntRangeVsRealDot(t *testing.T) {
	// "3..5" must lex as IntLit DotDot IntLit, never as a real.
	toks, diags := scan(t, "3..5")
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	want := []token.Kind{token.IntLit, token.DotDot, token.IntLit}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Fatalf("got %v, want %v", kinds(toks), want)
	}
}

func TestMalformedNumbers(t *testing.T) {
	for _, src := range []string{"0FF", "99B", "1.0E"} {
		_, diags := scan(t, src)
		if !diags.HasErrors() {
			t.Errorf("%q must produce a lexical error", src)
		}
	}
}

func TestStrings(t *testing.T) {
	toks, diags := scan(t, `"double" 'single' "" "it's"`)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	wantTexts := []string{"double", "single", "", "it's"}
	for i, w := range wantTexts {
		if toks[i].Kind != token.StringLit || toks[i].Text != w {
			t.Errorf("string %d = %v %q, want %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	_, diags := scan(t, "\"oops\nEND")
	if !diags.HasErrors() {
		t.Fatal("unterminated string must error")
	}
}

func TestNestedComments(t *testing.T) {
	toks, diags := scan(t, "a (* outer (* inner *) still out *) b")
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestUnterminatedComment(t *testing.T) {
	_, diags := scan(t, "a (* never closed")
	if !diags.HasErrors() {
		t.Fatal("unterminated comment must error")
	}
}

func TestPragmas(t *testing.T) {
	toks, diags := scan(t, "a <* pragma text *> b")
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	if len(toks) != 2 {
		t.Fatalf("pragma not skipped: %v", toks)
	}
	// "<*" only forms a pragma; "x < *" stays two tokens... but "*" alone
	// after "<" space is Star.
	toks, _ = scan(t, "x < y")
	if !reflect.DeepEqual(kinds(toks), []token.Kind{token.Ident, token.Less, token.Ident}) {
		t.Fatalf("plain < broken: %v", kinds(toks))
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, diags := scan(t, "a ? b")
	if !diags.HasErrors() {
		t.Fatal("illegal character must error")
	}
	if len(toks) != 2 {
		t.Fatalf("lexer must skip the bad character and continue: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := scan(t, "a\n  bb\n ccc")
	wants := []token.Pos{
		{File: 1, Line: 1, Col: 1},
		{File: 1, Line: 2, Col: 3},
		{File: 1, Line: 3, Col: 2},
	}
	for i, w := range wants {
		if toks[i].Pos != w {
			t.Errorf("token %d at %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestRunIntoQueue(t *testing.T) {
	files := source.NewSet()
	f := files.Add("T", source.Impl, "MODULE T; END T.")
	q := tokq.New(4)
	lexer.Run(f, &ctrace.TaskCtx{}, diag.NewBag(0), q)
	if !q.Closed() {
		t.Fatal("Run must close the queue")
	}
	r := q.NewReader(nil)
	var got []token.Kind
	for {
		tok := r.Next()
		got = append(got, tok.Kind)
		if tok.Kind == token.EOF {
			break
		}
	}
	want := []token.Kind{token.MODULE, token.Ident, token.Semicolon,
		token.END, token.Ident, token.Dot, token.EOF}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCostAccumulates(t *testing.T) {
	files := source.NewSet()
	f := files.Add("T", source.Impl, "MODULE T; BEGIN WriteLn END T.")
	ctx := &ctrace.TaskCtx{}
	lexer.ScanAll(f, ctx, diag.NewBag(0))
	if ctx.Units <= 0 {
		t.Fatal("lexing must accumulate work units")
	}
}

// randomTokens generates a plausible token sequence for the round-trip
// property (kinds the printer can render unambiguously).
func randomTokens(r *rand.Rand, n int) []token.Token {
	idents := []string{"a", "bb", "Zoo", "q9", "VAR1"}
	var toks []token.Token
	for i := 0; i < n; i++ {
		switch r.Intn(7) {
		case 0:
			toks = append(toks, token.Token{Kind: token.Ident, Text: idents[r.Intn(len(idents))]})
		case 1:
			toks = append(toks, token.Token{Kind: token.IntLit, Text: "123"})
		case 2:
			toks = append(toks, token.Token{Kind: token.RealLit, Text: "2.5"})
		case 3:
			toks = append(toks, token.Token{Kind: token.StringLit, Text: "hi"})
		case 4:
			k := []token.Kind{token.Plus, token.Semicolon, token.Assign, token.LParen, token.RParen}[r.Intn(5)]
			toks = append(toks, token.Token{Kind: k})
		case 5:
			k := token.Kind(int(token.AND) + r.Intn(int(token.REF)-int(token.AND)+1))
			toks = append(toks, token.Token{Kind: k})
		case 6:
			toks = append(toks, token.Token{Kind: token.CharLit, Text: "15C"})
		}
	}
	return toks
}

// TestPrintRelexRoundTrip: printing any token sequence and re-lexing it
// yields the same kinds and texts (the property the workload
// generator's self-checks rely on).
func TestPrintRelexRoundTrip(t *testing.T) {
	check := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		orig := randomTokens(r, int(size%64)+1)
		text := lexer.Print(orig)
		files := source.NewSet()
		f := files.Add("R", source.Impl, text)
		diags := diag.NewBag(0)
		relexed := lexer.ScanAll(f, &ctrace.TaskCtx{}, diags)
		relexed = relexed[:len(relexed)-1]
		if diags.HasErrors() {
			t.Logf("relex errors for %q: %s", text, diags)
			return false
		}
		if len(relexed) != len(orig) {
			t.Logf("length %d != %d for %q", len(relexed), len(orig), text)
			return false
		}
		for i := range orig {
			if relexed[i].Kind != orig[i].Kind || relexed[i].Text != orig[i].Text {
				t.Logf("token %d: %v %q != %v %q", i, relexed[i].Kind, relexed[i].Text, orig[i].Kind, orig[i].Text)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWholeModuleLexes(t *testing.T) {
	src := `
IMPLEMENTATION MODULE Sample; (* header *)
FROM Lib IMPORT thing;
CONST c = 10; r = 2.5; s = "text"; ch = 15C;
TYPE T = ARRAY [0..c-1] OF INTEGER;
VAR v: T;
PROCEDURE P(x: INTEGER): INTEGER;
BEGIN RETURN x * c END P;
BEGIN
  v[0] := P(3)
END Sample.
`
	toks, diags := scan(t, src)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	if len(toks) < 60 {
		t.Fatalf("suspiciously few tokens: %d", len(toks))
	}
	if strings.Count(src, "(*") != 1 {
		t.Fatal("test source changed")
	}
}
