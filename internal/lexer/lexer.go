// Package lexer implements lexical analysis for Modula-2+.
//
// Lexor tasks are the highest-priority tasks in the Supervisor's ready
// queue (§2.3.4): splitting and importing cannot proceed past the tokens
// the lexer has produced, so getting token blocks flowing early maximizes
// the parallel work available to the rest of the compilation.  A Lexor
// task never blocks (§2.3.3), which is what makes barrier waits on token
// queues deadlock-free.
package lexer

import (
	"strings"

	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/source"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
)

// Lexer scans one source file.  Create with New; call Scan until it
// returns an EOF token (further calls keep returning EOF).
type Lexer struct {
	file  *source.File
	src   string
	off   int // byte offset of next unread character
	line  int32
	col   int32
	ctx   *ctrace.TaskCtx
	diags *diag.Bag

	lastCosted int // source offset already charged to the cost meter
}

// New returns a lexer over f.  ctx supplies the work-unit meter (it must
// be non-nil; use a throwaway TaskCtx when instrumentation is not
// wanted).  Lexical errors are reported to diags.
func New(f *source.File, ctx *ctrace.TaskCtx, diags *diag.Bag) *Lexer {
	return &Lexer{file: f, src: f.Text, line: 1, col: 1, ctx: ctx, diags: diags}
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file.ID, Line: l.line, Col: l.col}
}

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.diags.Errorf(l.file.Label(), p, format, args...)
}

// peek returns the next unread byte, or 0 at end of input.
func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

// peek2 returns the byte after next, or 0.
func (l *Lexer) peek2() byte {
	if l.off+1 < len(l.src) {
		return l.src[l.off+1]
	}
	return 0
}

// advance consumes one byte, maintaining line/column bookkeeping.
func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'A' && c <= 'F'
}

// skipBlanksAndComments consumes whitespace, (* ... *) comments (which
// nest, per the Modula-2 report) and <* ... *> pragmas.
func (l *Lexer) skipBlanksAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f':
			l.advance()
		case c == '(' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			depth := 1
			for depth > 0 {
				if l.off >= len(l.src) {
					l.errorf(start, "unterminated comment")
					return
				}
				switch {
				case l.peek() == '(' && l.peek2() == '*':
					l.advance()
					l.advance()
					depth++
				case l.peek() == '*' && l.peek2() == ')':
					l.advance()
					l.advance()
					depth--
				default:
					l.advance()
				}
			}
		case c == '<' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					l.errorf(start, "unterminated pragma")
					return
				}
				if l.peek() == '*' && l.peek2() == '>' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

// charge adds the cost of everything scanned since the last charge plus
// one token's worth of work.
func (l *Lexer) charge() {
	l.ctx.Add(float64(l.off-l.lastCosted)*ctrace.CostLexChar + ctrace.CostLexToken)
	l.lastCosted = l.off
}

// Scan returns the next token.  At end of input it returns (and keeps
// returning) a token of kind EOF positioned after the last character.
func (l *Lexer) Scan() token.Token {
	l.skipBlanksAndComments()
	p := l.pos()
	if l.off >= len(l.src) {
		l.charge()
		return token.Token{Kind: token.EOF, Pos: p}
	}
	c := l.peek()
	var t token.Token
	switch {
	case isLetter(c):
		t = l.scanIdent(p)
	case isDigit(c):
		t = l.scanNumber(p)
	case c == '"' || c == '\'':
		t = l.scanString(p)
	default:
		t = l.scanOperator(p)
	}
	l.charge()
	return t
}

func (l *Lexer) scanIdent(p token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	text := l.src[start:l.off]
	if k := token.Lookup(text); k != token.Ident {
		return token.Token{Kind: k, Pos: p}
	}
	return token.Token{Kind: token.Ident, Pos: p, Text: text}
}

// scanNumber handles the Modula-2 numeric forms:
//
//	decimal      123
//	hexadecimal  0FFH   (must start with a digit)
//	octal        17B
//	char code    15C    (octal, yields a character literal)
//	real         3.14   1.0E6   2.5E-3
func (l *Lexer) scanNumber(p token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isHexDigit(l.peek()) {
		l.advance()
	}
	digits := l.src[start:l.off]
	// Real literal: digits '.' (but not '..') — only if the digit run was
	// purely decimal.
	if l.peek() == '.' && l.peek2() != '.' && isDecimal(digits) {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == 'E' {
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if !isDigit(l.peek()) {
				l.errorf(l.pos(), "malformed real literal: missing exponent digits")
			}
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return token.Token{Kind: token.RealLit, Pos: p, Text: l.src[start:l.off]}
	}
	switch l.peek() {
	case 'H':
		l.advance()
		return token.Token{Kind: token.IntLit, Pos: p, Text: l.src[start:l.off]}
	case 'B', 'C':
		// The final B/C may already have been consumed into the hex-digit
		// run (B and C are hex digits); handle the trailing-letter form.
		l.advance()
		text := l.src[start:l.off]
		if !isOctal(text[:len(text)-1]) {
			l.errorf(p, "malformed octal literal %q", text)
		}
		kind := token.IntLit
		if text[len(text)-1] == 'C' {
			kind = token.CharLit
		}
		return token.Token{Kind: kind, Pos: p, Text: text}
	}
	// The run may end in B/C/hex letters without an H suffix.
	if isDecimal(digits) {
		return token.Token{Kind: token.IntLit, Pos: p, Text: digits}
	}
	if last := digits[len(digits)-1]; (last == 'B' || last == 'C') && isOctal(digits[:len(digits)-1]) {
		kind := token.IntLit
		if last == 'C' {
			kind = token.CharLit
		}
		return token.Token{Kind: kind, Pos: p, Text: digits}
	}
	l.errorf(p, "malformed number %q (hexadecimal needs an H suffix)", digits)
	return token.Token{Kind: token.IntLit, Pos: p, Text: "0"}
}

func isDecimal(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return len(s) > 0
}

func isOctal(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '7' {
			return false
		}
	}
	return len(s) > 0
}

// scanString scans a single- or double-quoted string.  Modula-2 strings
// have no escape sequences and may not span lines.  A one-character
// string is char-compatible; that classification happens in the
// semantic analyzer, so the lexer always emits StringLit here.
func (l *Lexer) scanString(p token.Pos) token.Token {
	quote := l.advance()
	start := l.off
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(p, "unterminated string")
			return token.Token{Kind: token.StringLit, Pos: p, Text: l.src[start:l.off]}
		}
		if l.peek() == quote {
			text := l.src[start:l.off]
			l.advance()
			return token.Token{Kind: token.StringLit, Pos: p, Text: text}
		}
		l.advance()
	}
}

func (l *Lexer) scanOperator(p token.Pos) token.Token {
	c := l.advance()
	kind := token.EOF
	switch c {
	case '+':
		kind = token.Plus
	case '-':
		kind = token.Minus
	case '*':
		kind = token.Star
	case '/':
		kind = token.Slash
	case '&':
		kind = token.Amp
	case '.':
		if l.peek() == '.' {
			l.advance()
			kind = token.DotDot
		} else {
			kind = token.Dot
		}
	case ',':
		kind = token.Comma
	case ';':
		kind = token.Semicolon
	case '(':
		kind = token.LParen
	case '[':
		kind = token.LBrack
	case '{':
		kind = token.LBrace
	case '^', '@':
		kind = token.Caret
	case '=':
		kind = token.Equal
	case '#':
		kind = token.NotEqual
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			kind = token.LessEq
		case '>':
			l.advance()
			kind = token.NotEqual
		default:
			kind = token.Less
		}
	case '>':
		if l.peek() == '=' {
			l.advance()
			kind = token.GreaterEq
		} else {
			kind = token.Greater
		}
	case ':':
		if l.peek() == '=' {
			l.advance()
			kind = token.Assign
		} else {
			kind = token.Colon
		}
	case ')':
		kind = token.RParen
	case ']':
		kind = token.RBrack
	case '}':
		kind = token.RBrace
	case '|':
		kind = token.Bar
	case '~':
		kind = token.Tilde
	default:
		l.errorf(p, "illegal character %q", string(rune(c)))
		return l.Scan()
	}
	return token.Token{Kind: kind, Pos: p}
}

// Run scans the whole file into q, appending a final EOF token and
// closing the queue.  This is the body of a Lexor task.
func Run(f *source.File, ctx *ctrace.TaskCtx, diags *diag.Bag, q *tokq.Queue) {
	l := New(f, ctx, diags)
	for {
		t := l.Scan()
		q.Append(t)
		if t.Kind == token.EOF {
			break
		}
	}
	q.Close()
}

// ScanAll scans the whole file into a slice ending with the EOF token.
// The sequential compiler and several tests use this form.
func ScanAll(f *source.File, ctx *ctrace.TaskCtx, diags *diag.Bag) []token.Token {
	l := New(f, ctx, diags)
	// Preallocate using a crude tokens-per-byte estimate.
	toks := make([]token.Token, 0, len(f.Text)/5+8)
	for {
		t := l.Scan()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

// Print renders tokens back to compilable source text.  It is the
// inverse used by the lexer round-trip property test and by the
// workload generator's self-checks.
func Print(toks []token.Token) string {
	var sb strings.Builder
	col := 0
	for _, t := range toks {
		if t.Kind == token.EOF {
			break
		}
		s := t.String()
		if col+len(s) > 76 {
			sb.WriteByte('\n')
			col = 0
		} else if col > 0 {
			sb.WriteByte(' ')
			col++
		}
		sb.WriteString(s)
		col += len(s)
	}
	sb.WriteByte('\n')
	return sb.String()
}
