// Package impscan implements the Importer task: a shallow scan of a
// token stream for IMPORT declarations (§3).
//
// The importer runs concurrently with the stream's parser, reading the
// same token queue through its own cursor.  Every module name it finds
// is reported immediately, so definition-module streams start as early
// as possible; a compilation-wide once-only table (owned by the driver)
// guarantees each interface is processed exactly once no matter how
// many import paths reach it.
package impscan

import (
	"m2cc/internal/ctrace"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
)

// Run scans the stream for "FROM M IMPORT ..." and "IMPORT M, N;"
// declarations, invoking onImport for each imported module name.  The
// scan stops at the first declaration keyword: imports only appear in
// the module prologue.
func Run(ctx *ctrace.TaskCtx, in *tokq.Reader, onImport func(name string, pos token.Pos)) {
	for {
		t := in.Next()
		ctx.Add(ctrace.CostScanToken)
		switch t.Kind {
		case token.FROM:
			id := in.Next()
			ctx.Add(ctrace.CostScanToken)
			if id.Kind == token.Ident {
				onImport(id.Text, id.Pos)
			}
			skipToSemicolon(ctx, in)

		case token.IMPORT:
			// Plain import list: every identifier up to ";" is a module.
			for {
				id := in.Next()
				ctx.Add(ctrace.CostScanToken)
				if id.Kind == token.Ident {
					onImport(id.Text, id.Pos)
					continue
				}
				if id.Kind == token.Comma {
					continue
				}
				break // ";" or anything unexpected
			}

		case token.CONST, token.TYPE, token.VAR, token.PROCEDURE,
			token.EXCEPTION, token.BEGIN, token.END, token.EOF:
			return
		}
	}
}

// Names runs the same prologue automaton over an already-lexed token
// slice and returns the imported module names in order of appearance
// (duplicates preserved).  The interface cache uses it to discover a
// definition module's direct imports without task machinery.
func Names(toks []token.Token) []string {
	var names []string
	i := 0
	next := func() token.Token {
		if i >= len(toks) {
			return token.Token{Kind: token.EOF}
		}
		t := toks[i]
		i++
		return t
	}
	for {
		t := next()
		switch t.Kind {
		case token.FROM:
			if id := next(); id.Kind == token.Ident {
				names = append(names, id.Text)
			}
			for {
				t := next()
				if t.Kind == token.Semicolon || t.Kind == token.EOF {
					break
				}
			}

		case token.IMPORT:
			for {
				id := next()
				if id.Kind == token.Ident {
					names = append(names, id.Text)
					continue
				}
				if id.Kind == token.Comma {
					continue
				}
				break
			}

		case token.CONST, token.TYPE, token.VAR, token.PROCEDURE,
			token.EXCEPTION, token.BEGIN, token.END, token.EOF:
			return names
		}
	}
}

func skipToSemicolon(ctx *ctrace.TaskCtx, in *tokq.Reader) {
	for {
		t := in.Next()
		ctx.Add(ctrace.CostScanToken)
		if t.Kind == token.Semicolon || t.Kind == token.EOF {
			return
		}
	}
}
