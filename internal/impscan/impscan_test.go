package impscan_test

import (
	"reflect"
	"testing"

	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/impscan"
	"m2cc/internal/lexer"
	"m2cc/internal/source"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
)

func scanImports(t *testing.T, src string) []string {
	t.Helper()
	files := source.NewSet()
	f := files.Add("T", source.Impl, src)
	q := tokq.New(8)
	lexer.Run(f, &ctrace.TaskCtx{}, diag.NewBag(0), q)
	var got []string
	impscan.Run(&ctrace.TaskCtx{}, q.NewReader(nil), func(name string, pos token.Pos) {
		got = append(got, name)
	})
	return got
}

func TestPlainImportList(t *testing.T) {
	got := scanImports(t, "MODULE M;\nIMPORT A, B, C;\nBEGIN END M.")
	if !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Fatalf("got %v", got)
	}
}

func TestFromImportReportsOnlyTheModule(t *testing.T) {
	got := scanImports(t, "MODULE M;\nFROM Lib IMPORT x, y, z;\nBEGIN END M.")
	if !reflect.DeepEqual(got, []string{"Lib"}) {
		t.Fatalf("FROM must report the module, not the names: %v", got)
	}
}

func TestMixedImports(t *testing.T) {
	got := scanImports(t, `
DEFINITION MODULE M;
IMPORT A;
FROM B IMPORT b1, b2;
IMPORT C, D;
END M.`)
	if !reflect.DeepEqual(got, []string{"A", "B", "C", "D"}) {
		t.Fatalf("got %v", got)
	}
}

func TestScanStopsAtDeclarations(t *testing.T) {
	// IMPORT-shaped text after the declaration section must not count;
	// imports only appear in the prologue, and the scanner stops early.
	got := scanImports(t, `
MODULE M;
IMPORT A;
CONST c = 1;
VAR v: INTEGER;
BEGIN
END M.`)
	if !reflect.DeepEqual(got, []string{"A"}) {
		t.Fatalf("got %v", got)
	}
}

func TestNoImports(t *testing.T) {
	if got := scanImports(t, "MODULE M;\nBEGIN END M."); len(got) != 0 {
		t.Fatalf("got %v, want none", got)
	}
}

func TestEmptyStream(t *testing.T) {
	q := tokq.New(4)
	q.Append(token.Token{Kind: token.EOF})
	q.Close()
	called := false
	impscan.Run(&ctrace.TaskCtx{}, q.NewReader(nil), func(string, token.Pos) { called = true })
	if called {
		t.Fatal("empty stream must report nothing")
	}
}
