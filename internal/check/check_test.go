package check_test

import (
	"strings"
	"testing"

	"m2cc/internal/check"
	"m2cc/internal/core"
	"m2cc/internal/faultinject"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
)

// lintProgram exercises every finding class: an uninitialized
// variable, unreachable code, unused locals and parameters, an unused
// plain import and an unused FROM import, exported-but-unreferenced
// interface symbols, an uncalled procedure, and nested procedures
// (whose mentions must count toward the enclosing scope's liveness).
var lintProgram = map[string]string{
	"Mats.def": `
DEFINITION MODULE Mats;
PROCEDURE Twice(n: INTEGER): INTEGER;
PROCEDURE Thrice(n: INTEGER): INTEGER;
END Mats.
`,
	"Mats.mod": `
IMPLEMENTATION MODULE Mats;

PROCEDURE Twice(n: INTEGER): INTEGER;
BEGIN
  RETURN n + n
END Twice;

PROCEDURE Thrice(n: INTEGER): INTEGER;
BEGIN
  RETURN n + n + n
END Thrice;

END Mats.
`,
	"Vals.def": `
DEFINITION MODULE Vals;
CONST Limit = 10;
CONST Spare = 99;
END Vals.
`,
	"Lint.mod": `
MODULE Lint;
IMPORT Mats;
FROM Vals IMPORT Limit, Spare;
VAR g, h: INTEGER;

PROCEDURE UseThings(a: INTEGER; b: INTEGER): INTEGER;
VAR x, y, dead: INTEGER;
BEGIN
  x := a;
  IF x > Limit THEN y := 1 ELSE y := 2 END;
  RETURN x + y
END UseThings;

PROCEDURE Uninit(): INTEGER;
VAR u, v: INTEGER;
BEGIN
  IF g > 0 THEN u := 1 END;
  v := u;
  RETURN v
END Uninit;

PROCEDURE DeadCode(): INTEGER;
BEGIN
  RETURN 1;
  g := 2
END DeadCode;

PROCEDURE Orphan;
BEGIN
  g := Mats.Twice(g)
END Orphan;

PROCEDURE Outer(n: INTEGER): INTEGER;
VAR t: INTEGER;

  PROCEDURE Inner(k: INTEGER): INTEGER;
  BEGIN
    RETURN k + t
  END Inner;

BEGIN
  t := n;
  RETURN Inner(n)
END Outer;

BEGIN
  g := UseThings(1, 2);
  h := Uninit();
  h := DeadCode();
  h := Outer(h);
  WriteInt(g + h, 0); WriteLn
END Lint.
`,
}

func lintLoader() *source.MapLoader {
	loader := source.NewMapLoader()
	for name, text := range lintProgram {
		if base, ok := strings.CutSuffix(name, ".def"); ok {
			loader.Add(base, source.Def, text)
		} else if base, ok := strings.CutSuffix(name, ".mod"); ok {
			loader.Add(base, source.Impl, text)
		}
	}
	return loader
}

// TestSequentialFindings pins the sequential analyzer's output on the
// fixture — every finding class, byte for byte.
func TestSequentialFindings(t *testing.T) {
	got := check.Render(check.Analyze("Lint", lintLoader()))
	want := []string{
		"variable u may be used before initialization",
		"unreachable statement",
		"local variable dead is declared but never used",
		"parameter b is declared but never used",
		"imported identifier Spare is never used",
		"exported Spare is never referenced in this compilation",
		"exported Thrice is never referenced in this compilation",
		"procedure Orphan is declared but never called",
	}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("findings missing %q\ngot:\n%s", w, got)
		}
	}
	// And nothing spurious about the live code.
	for _, absent := range []string{
		"variable x", "variable y", "variable v", "variable t",
		"parameter a ", "parameter n ", "parameter k ",
		"local variable t ",
		"import Mats", "identifier Limit",
		"exported Limit", "exported Twice",
		"procedure UseThings", "procedure Inner", "procedure Outer",
	} {
		if strings.Contains(got, absent) {
			t.Errorf("findings contain spurious %q\ngot:\n%s", absent, got)
		}
	}
	if got != check.Render(check.Analyze("Lint", lintLoader())) {
		t.Error("sequential analyzer is not deterministic")
	}
}

// TestFindingSpans checks that name-anchored findings carry line+column
// spans ("L:C-L:C") and render deterministically sorted.
func TestFindingSpans(t *testing.T) {
	fnd := check.Analyze("Lint", lintLoader())
	if len(fnd) == 0 {
		t.Fatal("no findings")
	}
	spanned := false
	for _, d := range fnd {
		if d.End.IsValid() {
			spanned = true
			if d.End.Line != d.Pos.Line || d.End.Col <= d.Pos.Col {
				t.Errorf("bad span on %s", d)
			}
		}
	}
	if !spanned {
		t.Error("no finding carries an end position")
	}
	lines := strings.Split(strings.TrimSuffix(check.Render(fnd), "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] && !strings.HasPrefix(lines[i], lines[i-1][:strings.Index(lines[i-1], ":")]) {
			t.Errorf("findings not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
}

// TestDifferential is the tentpole property: the concurrent checker's
// findings are byte-identical to the sequential analyzer's under every
// DKY strategy, both heading modes and several worker counts.
func TestDifferential(t *testing.T) {
	loader := lintLoader()
	want := check.Render(check.Analyze("Lint", loader))
	if want == "" {
		t.Fatal("fixture produced no findings")
	}
	for strat := symtab.Avoidance; strat <= symtab.Optimistic; strat++ {
		for _, workers := range []int{1, 4, 8} {
			for _, headers := range []core.HeaderMode{core.HeaderShared, core.HeaderReprocess} {
				strat, workers, headers := strat, workers, headers
				name := strat.String() + "/w" + string(rune('0'+workers))
				if headers == core.HeaderReprocess {
					name += "/reprocess"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res := core.Compile("Lint", loader, core.Options{
						Workers: workers, Strategy: strat, Headers: headers, Check: true,
					})
					if res.Failed() {
						t.Fatalf("compile failed:\n%s", res.Diags)
					}
					if res.Faulted || res.CheckFellBack {
						t.Fatalf("unexpected fault: Faulted=%v CheckFellBack=%v", res.Faulted, res.CheckFellBack)
					}
					if got := check.Render(res.Findings); got != want {
						t.Fatalf("concurrent findings diverge from sequential baseline\ngot:\n%s\nwant:\n%s", got, want)
					}
				})
			}
		}
	}
}

// TestCheckDegradesOnPanic arms the PanicCheck injection point: the
// tripped analysis task dies, the checker degrades to the sequential
// analyzer at the merge, and neither the compilation nor the sibling
// findings are poisoned.
func TestCheckDegradesOnPanic(t *testing.T) {
	loader := lintLoader()
	want := check.Render(check.Analyze("Lint", loader))
	for _, n := range []int64{1, 3, 5} {
		plan := faultinject.New().Arm(faultinject.PanicCheck, n)
		res := core.Compile("Lint", loader, core.Options{
			Workers: 4, Check: true, FaultPlan: plan,
		})
		if res.Failed() {
			t.Fatalf("n=%d: compile failed:\n%s", n, res.Diags)
		}
		if res.Faulted {
			t.Fatalf("n=%d: a lint panic poisoned the compilation", n)
		}
		if plan.Tripped(faultinject.PanicCheck) != 1 {
			t.Fatalf("n=%d: point tripped %d times", n, plan.Tripped(faultinject.PanicCheck))
		}
		if !res.CheckFellBack {
			t.Fatalf("n=%d: checker did not report the sequential fallback", n)
		}
		if got := check.Render(res.Findings); got != want {
			t.Fatalf("n=%d: degraded findings diverge\ngot:\n%s\nwant:\n%s", n, got, want)
		}
	}
}

// TestShadowWarning: a procedure-local variable hiding an imported
// module name draws the sema warning, identically under the concurrent
// and sequential compilers.
func TestShadowWarning(t *testing.T) {
	loader := source.NewMapLoader()
	loader.Add("Shade", source.Impl, `
MODULE Shade;
IMPORT Mats;
VAR g: INTEGER;

PROCEDURE P(): INTEGER;
VAR Mats: INTEGER;
BEGIN
  Mats := 3;
  RETURN Mats
END P;

BEGIN
  g := P() + Mats.Twice(2);
  WriteInt(g, 0); WriteLn
END Shade.
`)
	loader.Add("Mats", source.Def, lintProgram["Mats.def"])
	loader.Add("Mats", source.Impl, lintProgram["Mats.mod"])
	const warn = "variable Mats shadows imported module Mats"
	res := core.Compile("Shade", loader, core.Options{Workers: 4})
	if res.Failed() || res.Faulted {
		t.Fatalf("compile failed:\n%s", res.Diags)
	}
	if !strings.Contains(res.Diags.String(), warn) {
		t.Fatalf("concurrent diagnostics missing shadow warning:\n%s", res.Diags)
	}
}

// TestUninitCFG pins the dataflow's conservative rules on focused
// programs: loops, VAR-argument definitions, WITH havoc, and TRY
// handler entry states.
func TestUninitCFG(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		decls   string
		flagged []string // variables that must be reported
		clean   []string // variables that must not be reported
	}{
		{
			name:  "while-first-iteration",
			decls: "VAR i, s: INTEGER;",
			body: `
  i := 0;
  WHILE i < 3 DO s := s + 1; i := i + 1 END
`,
			flagged: []string{"s"},
			clean:   []string{"i"},
		},
		{
			name:  "repeat-runs-once",
			decls: "VAR i, s: INTEGER;",
			body: `
  i := 0;
  REPEAT s := 1; i := i + s UNTIL i > 2
`,
			clean: []string{"i", "s"},
		},
		{
			name:  "both-branches-define",
			decls: "VAR c, r: INTEGER;",
			body: `
  c := 1;
  IF c > 0 THEN r := 1 ELSE r := 2 END;
  c := r
`,
			clean: []string{"r"},
		},
		{
			name:  "one-branch-defines",
			decls: "VAR c, r: INTEGER;",
			body: `
  c := 1;
  IF c > 0 THEN r := 1 END;
  c := r
`,
			flagged: []string{"r"},
		},
		{
			name:  "var-argument-defines",
			decls: "VAR r: INTEGER;",
			body: `
  ReadInt(r);
  WriteInt(r, 0)
`,
			clean: []string{"r"},
		},
		{
			name:  "for-defines-loop-var",
			decls: "VAR k, s: INTEGER;",
			body: `
  s := 0;
  FOR k := 1 TO 3 DO s := s + k END;
  WriteInt(s, 0)
`,
			clean: []string{"k", "s"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loader := source.NewMapLoader()
			loader.Add("T", source.Impl, "MODULE T;\n"+tc.decls+"\nBEGIN\n"+tc.body+"\nEND T.\n")
			got := check.Render(check.Analyze("T", loader))
			for _, v := range tc.flagged {
				if !strings.Contains(got, "variable "+v+" may be used before initialization") {
					t.Errorf("missing uninit report for %s:\n%s", v, got)
				}
			}
			for _, v := range tc.clean {
				if strings.Contains(got, "variable "+v+" may be used") {
					t.Errorf("false positive for %s:\n%s", v, got)
				}
			}
		})
	}
}
