// Package check is the concurrent static-analysis (lint) subsystem.
//
// The paper's stream split fits analysis as well as it fits
// compilation: the per-unit intraprocedural passes (uninitialized-
// variable dataflow over a small CFG, unreachable code after
// RETURN/EXIT/RAISE) run as one Supervisor task per stream — main
// module, procedure, definition module — while the cross-module passes
// (unused imports, unused locals/params, exported-but-never-referenced
// symbols, call-graph reachability from the main module) work on
// per-stream fact tables merged by a barrier task gated on every
// analysis task's completion event.  Analysis tasks are first-class
// Supervisor citizens, so their cost shows up in obs spans, -profile
// blame and the internal/sim cost model (KindAnalysis work units).
//
// Determinism: a unit's facts are computed from its AST alone — no
// symbol-table probes, no cross-stream reads — so the fact tables are
// schedule-independent and the merged findings are byte-identical to
// the sequential single-pass baseline (Analyze) under every DKY
// strategy and worker count.  All set logic in the merge is
// order-insensitive and the result is diag.SortDedup'ed.
//
// Fault containment: an analysis task recovers its own panics before
// the Supervisor's isolation layer can see them, marks the checker
// faulted, and the merge re-runs every registered unit sequentially —
// a crashed lint stream degrades to the sequential analyzer without
// poisoning the compilation or sibling findings.
package check

import (
	"fmt"
	"strings"
	"sync"

	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/faultinject"
	"m2cc/internal/token"
)

// UnitKind classifies analysis units, mirroring the compiler's streams.
type UnitKind uint8

const (
	// ModuleUnit is the main module stream: module-level declarations
	// and the initialization body.
	ModuleUnit UnitKind = iota
	// ProcUnit is one procedure stream.
	ProcUnit
	// DefUnit is one definition-module stream.
	DefUnit
)

// Unit is one stream's analyzable slice of the program.  The AST
// fields are read-only after parsing, so units may be analyzed
// concurrently with code generation.  Nested procedure declarations
// inside Decls are never descended into beyond their heading — in the
// concurrent compiler the nested body belongs to another stream's
// unit, and the sequential decomposition (SourceUnits) follows the
// same rule so both modes see identical shapes.
type Unit struct {
	Kind     UnitKind
	File     string // file label, e.g. "M.mod" or "M.def"
	Module   string // module the unit belongs to
	Path     string // deterministic scope path: "M.mod", "M.mod:P", "M.mod:P:P.Q", "M.def"
	ProcName string // procedure's simple name (ProcUnit)
	Head     *ast.ProcHead
	Imports  []*ast.Import
	Decls    []ast.Decl
	Body     *ast.StmtList
}

// ImportFact is one imported name as the cross-module passes see it:
// the name (with its source position, for the warning anchor) and
// whether it came from a FROM import (an identifier) or a plain IMPORT
// (a module name).
type ImportFact struct {
	Name ast.Name
	From bool
}

// Facts is one unit's published fact table: the identifier mention set
// consumed by the cross-module passes, the intraprocedural findings
// computed stream-locally, and every AST-derived datum the merge's
// cross-module rules need.  A Facts value deliberately holds no AST
// pointers — everything is extracted at analysis time — so the stream
// cache (internal/streamcache) can store a procedure stream's table and
// replay it on a later compilation whose stream never parsed at all.
type Facts struct {
	Kind     UnitKind
	File     string // file label, e.g. "M.mod"
	Module   string
	Path     string   // deterministic scope path (Unit.Path)
	ProcName string   // procedure's simple name (ProcUnit)
	HeadName ast.Name // heading name with position (ProcUnit with a head)
	HasHead  bool

	Mentions map[string]bool
	Findings []diag.Diagnostic

	Locals    []ast.Name   // ProcUnit: declared local variable names
	Params    []ast.Name   // ProcUnit: declared parameter names
	Imports   []ImportFact // imported names, FROM-ness preserved
	DeclNames []ast.Name   // DefUnit: exported top-level names
	ProcDecls []string     // DefUnit: exported procedure names (reachability roots)

	Conc *ConcFacts // concurrency summary for the interprocedural lockset pass

	Nodes int // AST nodes visited (deterministic analysis cost)
}

// analyzeUnit runs the per-stream passes on one unit and extracts the
// AST-free fact table.
func analyzeUnit(u *Unit) *Facts {
	w := newWalker()
	w.decls(u.Decls)
	w.stmts(u.Body)
	f := &Facts{
		Kind: u.Kind, File: u.File, Module: u.Module, Path: u.Path,
		ProcName: u.ProcName, Mentions: w.mentions, Nodes: w.nodes,
	}
	if u.Head != nil {
		f.HasHead = true
		f.HeadName = u.Head.Name
	}
	unreachable(u.Body, func(pos token.Pos) {
		f.Findings = append(f.Findings, diag.Diagnostic{
			Sev: diag.Warning, Pos: pos, File: u.File, Msg: "unreachable statement",
			Code: CodeUnreachable,
		})
	})
	if u.Body != nil {
		g := buildCFG(u)
		g.solve(func(name string, pos token.Pos) {
			f.Findings = append(f.Findings, diag.Diagnostic{
				Sev: diag.Warning, Pos: pos, End: nameEnd(name, pos), File: u.File,
				Msg:  fmt.Sprintf("variable %s may be used before initialization", name),
				Code: CodeUninit,
			})
		})
	}
	f.Conc = concAnalyze(u)
	if u.Kind == ProcUnit {
		for _, d := range u.Decls {
			if vd, ok := d.(*ast.VarDecl); ok {
				f.Locals = append(f.Locals, vd.Names...)
			}
		}
		if u.Head != nil {
			for _, sec := range u.Head.Params {
				f.Params = append(f.Params, sec.Names...)
			}
		}
	}
	for _, imp := range u.Imports {
		for _, n := range imp.Names {
			f.Imports = append(f.Imports, ImportFact{Name: n, From: imp.From.Text != ""})
		}
	}
	if u.Kind == DefUnit {
		for _, d := range u.Decls {
			f.DeclNames = append(f.DeclNames, declNames(d)...)
			if pd, ok := d.(*ast.ProcDecl); ok {
				f.ProcDecls = append(f.ProcDecls, pd.Head.Name.Text)
			}
		}
	}
	return f
}

// nameEnd extends a name's start position to its exclusive end column,
// giving findings a full line+column span.
func nameEnd(name string, pos token.Pos) token.Pos {
	if !pos.IsValid() {
		return token.Pos{}
	}
	pos.Col += int32(len(name))
	return pos
}

// Run analyzes every unit sequentially and merges the fact tables —
// the single-pass baseline the concurrent checker must byte-match, and
// the degraded path a faulted checker falls back to.
func Run(units []*Unit) []diag.Diagnostic {
	fs := make([]*Facts, 0, len(units))
	for _, u := range units {
		fs = append(fs, analyzeUnit(u))
	}
	return mergeFacts(fs)
}

// Checker accumulates per-stream fact tables for one concurrent
// compilation.  AddUnit registers a unit when its stream's parse
// completes; RunUnit is the analysis task's body; Merge joins the
// tables at the barrier.  All methods are safe for concurrent use.
type Checker struct {
	inject *faultinject.Plan

	mu      sync.Mutex // guards: units, fs, pinned, faulted
	units   []*Unit
	fs      []*Facts
	pinned  []*Facts // cached streams' replayed tables (streamcache); survive a faulted re-analysis
	faulted bool
}

// NewChecker returns a checker; plan (may be nil) supplies the
// PanicCheck injection point.
func NewChecker(plan *faultinject.Plan) *Checker {
	return &Checker{inject: plan}
}

// AddUnit registers a unit before its analysis task is spawned, so a
// faulted checker can still re-analyze every unit sequentially.
func (c *Checker) AddUnit(u *Unit) {
	c.mu.Lock()
	c.units = append(c.units, u)
	c.mu.Unlock()
}

// RunUnit is the analysis task body: analyze one unit and publish its
// fact table, which is also returned so the stream cache can record it
// (nil when the analysis panicked).  A panic (including an injected
// PanicCheck) is recovered here — before the Supervisor's isolation
// layer sees it — so a dead lint stream marks the checker faulted
// instead of poisoning the compilation.
func (c *Checker) RunUnit(ctx *ctrace.TaskCtx, u *Unit) (out *Facts) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			c.mu.Lock()
			c.faulted = true
			c.mu.Unlock()
		}
	}()
	c.inject.Panic(faultinject.PanicCheck, u.Path)
	f := analyzeUnit(u)
	ctx.Add(float64(f.Nodes) * ctrace.CostAnalysisNode)
	c.mu.Lock()
	c.fs = append(c.fs, f)
	c.mu.Unlock()
	return f
}

// AddPinned registers a fact table replayed from the stream cache for a
// stream that never parsed this compilation.  Pinned tables join the
// merge alongside freshly computed ones and — unlike them — survive a
// faulted checker's sequential re-analysis, which can only re-run units
// that have ASTs.
func (c *Checker) AddPinned(f *Facts) {
	c.mu.Lock()
	c.pinned = append(c.pinned, f)
	c.mu.Unlock()
}

// Faulted reports whether any analysis task panicked (the merge then
// re-ran the sequential analyzer over the registered units).
func (c *Checker) Faulted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faulted
}

// Merge joins the published fact tables into the final findings.  If
// any analysis task faulted — or the merge's own interprocedural fixed
// point panics mid-flight (injected PanicConcMerge) — the concurrent
// tables are discarded and every registered unit is re-analyzed
// sequentially with a clean merge, so a crashed stream or a crashed
// barrier both degrade to the sequential analyzer with byte-identical
// output.  Never returns nil.
func (c *Checker) Merge(ctx *ctrace.TaskCtx) []diag.Diagnostic {
	c.mu.Lock()
	faulted := c.faulted
	fs := append([]*Facts(nil), c.fs...)
	units := append([]*Unit(nil), c.units...)
	pinned := append([]*Facts(nil), c.pinned...)
	c.mu.Unlock()
	if !faulted {
		if out, ok := c.tryMerge(ctx, append(fs, pinned...)); ok {
			return out
		}
		c.mu.Lock()
		c.faulted = true
		c.mu.Unlock()
	}
	fs = fs[:0]
	for _, u := range units {
		f := analyzeUnit(u)
		ctx.Add(float64(f.Nodes) * ctrace.CostAnalysisNode)
		fs = append(fs, f)
	}
	fs = append(fs, pinned...)
	out := mergeFacts(fs)
	ctx.Add(float64(len(fs)+len(out)) * ctrace.CostAnalysisFact)
	return out
}

// tryMerge runs the merge with the checker's injection plan armed,
// converting a panic inside the merge barrier into a faulted signal
// instead of letting it poison the compilation.
func (c *Checker) tryMerge(ctx *ctrace.TaskCtx, fs []*Facts) (out []diag.Diagnostic, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			out, ok = nil, false
		}
	}()
	out = mergeFactsPlan(fs, c.inject)
	ctx.Add(float64(len(fs)+len(out)) * ctrace.CostAnalysisFact)
	return out, true
}

// mergeFacts runs the cross-module passes over the fact tables and
// returns the sorted, deduplicated findings.  Every rule is a set
// membership test, so the result is independent of table order; every
// rule reads the Facts fields alone, never an AST, so cached tables
// (streamcache) merge exactly like fresh ones.
func mergeFacts(fs []*Facts) []diag.Diagnostic {
	return mergeFactsPlan(fs, nil)
}

// mergeFactsPlan is mergeFacts with a fault-injection plan supplying
// the PanicConcMerge point inside the interprocedural fixed point.
func mergeFactsPlan(fs []*Facts, plan *faultinject.Plan) []diag.Diagnostic {
	out := []diag.Diagnostic{}
	for _, f := range fs {
		out = append(out, f.Findings...)
	}

	warn := func(code, file string, n ast.Name, format string, args ...any) {
		out = append(out, diag.Diagnostic{
			Sev: diag.Warning, Pos: n.Pos, End: nameEnd(n.Text, n.Pos),
			File: file, Msg: fmt.Sprintf(format, args...), Code: code,
		})
	}
	// mentionedUnder: name is mentioned by the unit at path or any
	// descendant scope (nested procedure streams).
	mentionedUnder := func(name, path string) bool {
		for _, f := range fs {
			if f.Path == path || strings.HasPrefix(f.Path, path+":") {
				if f.Mentions[name] {
					return true
				}
			}
		}
		return false
	}
	mentionedByModule := func(name, module string) bool {
		for _, f := range fs {
			if f.Module == module && f.Mentions[name] {
				return true
			}
		}
		return false
	}
	mentionedOutsideModule := func(name, module string) bool {
		for _, f := range fs {
			if f.Module != module && f.Mentions[name] {
				return true
			}
		}
		return false
	}

	var root *Facts
	for _, f := range fs {
		if f.Kind == ModuleUnit {
			root = f
		}
	}
	rootModule := ""
	if root != nil {
		rootModule = root.Module
	}

	for _, f := range fs {
		// Unused locals and parameters (procedure streams).  A name is
		// "used" if mentioned anywhere in the procedure or a nested
		// procedure — conservative under shadowing, so never a false
		// positive.
		if f.Kind == ProcUnit {
			for _, n := range f.Locals {
				if !mentionedUnder(n.Text, f.Path) {
					warn(CodeUnusedLocal, f.File, n, "local variable %s is declared but never used", n.Text)
				}
			}
			for _, n := range f.Params {
				if !mentionedUnder(n.Text, f.Path) {
					warn(CodeUnusedParam, f.File, n, "parameter %s is declared but never used", n.Text)
				}
			}
		}
		// Unused imports.  Checked against the whole importing module
		// (a .def's imports are visible to its implementation through
		// the scope chain).
		for _, imp := range f.Imports {
			if mentionedByModule(imp.Name.Text, f.Module) {
				continue
			}
			if imp.From {
				warn(CodeUnusedImport, f.File, imp.Name, "imported identifier %s is never used", imp.Name.Text)
			} else {
				warn(CodeUnusedImport, f.File, imp.Name, "import %s is never used", imp.Name.Text)
			}
		}
	}

	// Exported-but-never-referenced symbols: every top-level name in a
	// definition module is exported; one nobody outside its module
	// mentions is dead interface surface for this program.  The root
	// module's own interface is exempt — its clients are outside this
	// compilation.
	for _, f := range fs {
		if f.Kind != DefUnit || f.Module == rootModule {
			continue
		}
		for _, n := range f.DeclNames {
			if !mentionedOutsideModule(n.Text, f.Module) {
				warn(CodeUnusedExport, f.File, n, "exported %s is never referenced in this compilation", n.Text)
			}
		}
	}

	// Call-graph reachability from the main module: roots are the main
	// stream's mentions plus the procedures the root interface exports;
	// an edge U→P exists when a reached unit mentions P's name.  The
	// name-based graph over-approximates calls, so "never called" has
	// no false positives.
	if root != nil {
		byName := map[string][]*Facts{}
		var procs []*Facts
		for _, f := range fs {
			if f.Kind == ProcUnit && f.Module == rootModule {
				procs = append(procs, f)
				byName[f.ProcName] = append(byName[f.ProcName], f)
			}
		}
		reached := map[*Facts]bool{}
		var queue []string
		for name := range root.Mentions {
			queue = append(queue, name)
		}
		for _, f := range fs {
			if f.Kind == DefUnit && f.Module == rootModule {
				queue = append(queue, f.ProcDecls...)
			}
		}
		for len(queue) > 0 {
			name := queue[0]
			queue = queue[1:]
			for _, p := range byName[name] {
				if reached[p] {
					continue
				}
				reached[p] = true
				for m := range p.Mentions {
					queue = append(queue, m)
				}
			}
		}
		for _, p := range procs {
			if !reached[p] && p.HasHead {
				warn(CodeNeverCalled, p.File, p.HeadName, "procedure %s is declared but never called", p.ProcName)
			}
		}
	}

	out = append(out, concMerge(fs, plan)...)
	return diag.SortDedup(out)
}

// declNames lists the names a declaration introduces.
func declNames(d ast.Decl) []ast.Name {
	switch d := d.(type) {
	case *ast.ConstDecl:
		return []ast.Name{d.Name}
	case *ast.TypeDecl:
		return []ast.Name{d.Name}
	case *ast.VarDecl:
		return d.Names
	case *ast.ExceptionDecl:
		return d.Names
	case *ast.ProcDecl:
		return []ast.Name{d.Head.Name}
	}
	return nil
}
