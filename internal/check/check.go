// Package check is the concurrent static-analysis (lint) subsystem.
//
// The paper's stream split fits analysis as well as it fits
// compilation: the per-unit intraprocedural passes (uninitialized-
// variable dataflow over a small CFG, unreachable code after
// RETURN/EXIT/RAISE) run as one Supervisor task per stream — main
// module, procedure, definition module — while the cross-module passes
// (unused imports, unused locals/params, exported-but-never-referenced
// symbols, call-graph reachability from the main module) work on
// per-stream fact tables merged by a barrier task gated on every
// analysis task's completion event.  Analysis tasks are first-class
// Supervisor citizens, so their cost shows up in obs spans, -profile
// blame and the internal/sim cost model (KindAnalysis work units).
//
// Determinism: a unit's facts are computed from its AST alone — no
// symbol-table probes, no cross-stream reads — so the fact tables are
// schedule-independent and the merged findings are byte-identical to
// the sequential single-pass baseline (Analyze) under every DKY
// strategy and worker count.  All set logic in the merge is
// order-insensitive and the result is diag.SortDedup'ed.
//
// Fault containment: an analysis task recovers its own panics before
// the Supervisor's isolation layer can see them, marks the checker
// faulted, and the merge re-runs every registered unit sequentially —
// a crashed lint stream degrades to the sequential analyzer without
// poisoning the compilation or sibling findings.
package check

import (
	"fmt"
	"strings"
	"sync"

	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/faultinject"
	"m2cc/internal/token"
)

// UnitKind classifies analysis units, mirroring the compiler's streams.
type UnitKind uint8

const (
	// ModuleUnit is the main module stream: module-level declarations
	// and the initialization body.
	ModuleUnit UnitKind = iota
	// ProcUnit is one procedure stream.
	ProcUnit
	// DefUnit is one definition-module stream.
	DefUnit
)

// Unit is one stream's analyzable slice of the program.  The AST
// fields are read-only after parsing, so units may be analyzed
// concurrently with code generation.  Nested procedure declarations
// inside Decls are never descended into beyond their heading — in the
// concurrent compiler the nested body belongs to another stream's
// unit, and the sequential decomposition (SourceUnits) follows the
// same rule so both modes see identical shapes.
type Unit struct {
	Kind     UnitKind
	File     string // file label, e.g. "M.mod" or "M.def"
	Module   string // module the unit belongs to
	Path     string // deterministic scope path: "M.mod", "M.mod:P", "M.mod:P:P.Q", "M.def"
	ProcName string // procedure's simple name (ProcUnit)
	Head     *ast.ProcHead
	Imports  []*ast.Import
	Decls    []ast.Decl
	Body     *ast.StmtList
}

// facts is one unit's published fact table: the identifier mention set
// consumed by the cross-module passes, plus the intraprocedural
// findings computed stream-locally.
type facts struct {
	unit     *Unit
	mentions map[string]bool
	findings []diag.Diagnostic
	nodes    int // AST nodes visited (deterministic analysis cost)
}

// analyzeUnit runs the per-stream passes on one unit.
func analyzeUnit(u *Unit) *facts {
	w := newWalker()
	w.decls(u.Decls)
	w.stmts(u.Body)
	f := &facts{unit: u, mentions: w.mentions, nodes: w.nodes}
	unreachable(u.Body, func(pos token.Pos) {
		f.findings = append(f.findings, diag.Diagnostic{
			Sev: diag.Warning, Pos: pos, File: u.File, Msg: "unreachable statement",
		})
	})
	if u.Body != nil {
		g := buildCFG(u)
		g.solve(func(name string, pos token.Pos) {
			f.findings = append(f.findings, diag.Diagnostic{
				Sev: diag.Warning, Pos: pos, End: nameEnd(name, pos), File: u.File,
				Msg: fmt.Sprintf("variable %s may be used before initialization", name),
			})
		})
	}
	return f
}

// nameEnd extends a name's start position to its exclusive end column,
// giving findings a full line+column span.
func nameEnd(name string, pos token.Pos) token.Pos {
	if !pos.IsValid() {
		return token.Pos{}
	}
	pos.Col += int32(len(name))
	return pos
}

// Run analyzes every unit sequentially and merges the fact tables —
// the single-pass baseline the concurrent checker must byte-match, and
// the degraded path a faulted checker falls back to.
func Run(units []*Unit) []diag.Diagnostic {
	fs := make([]*facts, 0, len(units))
	for _, u := range units {
		fs = append(fs, analyzeUnit(u))
	}
	return mergeFacts(fs)
}

// Checker accumulates per-stream fact tables for one concurrent
// compilation.  AddUnit registers a unit when its stream's parse
// completes; RunUnit is the analysis task's body; Merge joins the
// tables at the barrier.  All methods are safe for concurrent use.
type Checker struct {
	inject *faultinject.Plan

	mu      sync.Mutex // guards: units, fs, faulted
	units   []*Unit
	fs      []*facts
	faulted bool
}

// NewChecker returns a checker; plan (may be nil) supplies the
// PanicCheck injection point.
func NewChecker(plan *faultinject.Plan) *Checker {
	return &Checker{inject: plan}
}

// AddUnit registers a unit before its analysis task is spawned, so a
// faulted checker can still re-analyze every unit sequentially.
func (c *Checker) AddUnit(u *Unit) {
	c.mu.Lock()
	c.units = append(c.units, u)
	c.mu.Unlock()
}

// RunUnit is the analysis task body: analyze one unit and publish its
// fact table.  A panic (including an injected PanicCheck) is recovered
// here — before the Supervisor's isolation layer sees it — so a dead
// lint stream marks the checker faulted instead of poisoning the
// compilation.
func (c *Checker) RunUnit(ctx *ctrace.TaskCtx, u *Unit) {
	defer func() {
		if r := recover(); r != nil {
			c.mu.Lock()
			c.faulted = true
			c.mu.Unlock()
		}
	}()
	c.inject.Panic(faultinject.PanicCheck, u.Path)
	f := analyzeUnit(u)
	ctx.Add(float64(f.nodes) * ctrace.CostAnalysisNode)
	c.mu.Lock()
	c.fs = append(c.fs, f)
	c.mu.Unlock()
}

// Faulted reports whether any analysis task panicked (the merge then
// re-ran the sequential analyzer over the registered units).
func (c *Checker) Faulted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faulted
}

// Merge joins the published fact tables into the final findings.  If
// any analysis task faulted, the concurrent tables are discarded and
// every registered unit is re-analyzed sequentially, so sibling
// findings survive a crashed stream intact.  Never returns nil.
func (c *Checker) Merge(ctx *ctrace.TaskCtx) []diag.Diagnostic {
	c.mu.Lock()
	faulted := c.faulted
	fs := append([]*facts(nil), c.fs...)
	units := append([]*Unit(nil), c.units...)
	c.mu.Unlock()
	if faulted {
		fs = fs[:0]
		for _, u := range units {
			f := analyzeUnit(u)
			ctx.Add(float64(f.nodes) * ctrace.CostAnalysisNode)
			fs = append(fs, f)
		}
	}
	out := mergeFacts(fs)
	ctx.Add(float64(len(fs)+len(out)) * ctrace.CostAnalysisFact)
	return out
}

// mergeFacts runs the cross-module passes over the fact tables and
// returns the sorted, deduplicated findings.  Every rule is a set
// membership test, so the result is independent of table order.
func mergeFacts(fs []*facts) []diag.Diagnostic {
	out := []diag.Diagnostic{}
	for _, f := range fs {
		out = append(out, f.findings...)
	}

	warn := func(file string, n ast.Name, format string, args ...any) {
		out = append(out, diag.Diagnostic{
			Sev: diag.Warning, Pos: n.Pos, End: nameEnd(n.Text, n.Pos),
			File: file, Msg: fmt.Sprintf(format, args...),
		})
	}
	// mentionedUnder: name is mentioned by the unit at path or any
	// descendant scope (nested procedure streams).
	mentionedUnder := func(name, path string) bool {
		for _, f := range fs {
			if f.unit.Path == path || strings.HasPrefix(f.unit.Path, path+":") {
				if f.mentions[name] {
					return true
				}
			}
		}
		return false
	}
	mentionedByModule := func(name, module string) bool {
		for _, f := range fs {
			if f.unit.Module == module && f.mentions[name] {
				return true
			}
		}
		return false
	}
	mentionedOutsideModule := func(name, module string) bool {
		for _, f := range fs {
			if f.unit.Module != module && f.mentions[name] {
				return true
			}
		}
		return false
	}

	var root *facts
	for _, f := range fs {
		if f.unit.Kind == ModuleUnit {
			root = f
		}
	}
	rootModule := ""
	if root != nil {
		rootModule = root.unit.Module
	}

	for _, f := range fs {
		u := f.unit
		// Unused locals and parameters (procedure streams).  A name is
		// "used" if mentioned anywhere in the procedure or a nested
		// procedure — conservative under shadowing, so never a false
		// positive.
		if u.Kind == ProcUnit {
			for _, d := range u.Decls {
				vd, ok := d.(*ast.VarDecl)
				if !ok {
					continue
				}
				for _, n := range vd.Names {
					if !mentionedUnder(n.Text, u.Path) {
						warn(u.File, n, "local variable %s is declared but never used", n.Text)
					}
				}
			}
			if u.Head != nil {
				for _, sec := range u.Head.Params {
					for _, n := range sec.Names {
						if !mentionedUnder(n.Text, u.Path) {
							warn(u.File, n, "parameter %s is declared but never used", n.Text)
						}
					}
				}
			}
		}
		// Unused imports.  Checked against the whole importing module
		// (a .def's imports are visible to its implementation through
		// the scope chain).
		for _, imp := range u.Imports {
			for _, n := range imp.Names {
				if mentionedByModule(n.Text, u.Module) {
					continue
				}
				if imp.From.Text != "" {
					warn(u.File, n, "imported identifier %s is never used", n.Text)
				} else {
					warn(u.File, n, "import %s is never used", n.Text)
				}
			}
		}
	}

	// Exported-but-never-referenced symbols: every top-level name in a
	// definition module is exported; one nobody outside its module
	// mentions is dead interface surface for this program.  The root
	// module's own interface is exempt — its clients are outside this
	// compilation.
	for _, f := range fs {
		u := f.unit
		if u.Kind != DefUnit || u.Module == rootModule {
			continue
		}
		for _, d := range u.Decls {
			for _, n := range declNames(d) {
				if !mentionedOutsideModule(n.Text, u.Module) {
					warn(u.File, n, "exported %s is never referenced in this compilation", n.Text)
				}
			}
		}
	}

	// Call-graph reachability from the main module: roots are the main
	// stream's mentions plus the procedures the root interface exports;
	// an edge U→P exists when a reached unit mentions P's name.  The
	// name-based graph over-approximates calls, so "never called" has
	// no false positives.
	if root != nil {
		byName := map[string][]*facts{}
		var procs []*facts
		for _, f := range fs {
			if f.unit.Kind == ProcUnit && f.unit.Module == rootModule {
				procs = append(procs, f)
				byName[f.unit.ProcName] = append(byName[f.unit.ProcName], f)
			}
		}
		reached := map[*facts]bool{}
		var queue []string
		for name := range root.mentions {
			queue = append(queue, name)
		}
		for _, f := range fs {
			if f.unit.Kind == DefUnit && f.unit.Module == rootModule {
				for _, d := range f.unit.Decls {
					if pd, ok := d.(*ast.ProcDecl); ok {
						queue = append(queue, pd.Head.Name.Text)
					}
				}
			}
		}
		for len(queue) > 0 {
			name := queue[0]
			queue = queue[1:]
			for _, p := range byName[name] {
				if reached[p] {
					continue
				}
				reached[p] = true
				for m := range p.mentions {
					queue = append(queue, m)
				}
			}
		}
		for _, p := range procs {
			if !reached[p] && p.unit.Head != nil {
				warn(p.unit.File, p.unit.Head.Name, "procedure %s is declared but never called", p.unit.ProcName)
			}
		}
	}

	return diag.SortDedup(out)
}

// declNames lists the names a declaration introduces.
func declNames(d ast.Decl) []ast.Name {
	switch d := d.(type) {
	case *ast.ConstDecl:
		return []ast.Name{d.Name}
	case *ast.TypeDecl:
		return []ast.Name{d.Name}
	case *ast.VarDecl:
		return d.Names
	case *ast.ExceptionDecl:
		return d.Names
	case *ast.ProcDecl:
		return []ast.Name{d.Head.Name}
	}
	return nil
}
