package check

import (
	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/lexer"
	"m2cc/internal/parser"
	"m2cc/internal/source"
)

// SourceUnits parses the named implementation module and its
// transitive interface closure from source and decomposes them into
// analysis units exactly as the concurrent compiler's stream split
// would: one ModuleUnit for the main module, one ProcUnit per
// procedure body (with the splitter's scope paths, so nested
// procedures nest their paths), one DefUnit per definition module.
// Unloadable or unparseable files contribute whatever units still
// parse; the compiler proper owns error reporting.
func SourceUnits(module string, loader source.Loader) []*Unit {
	var units []*Unit
	files := source.NewSet()
	ctx := &ctrace.TaskCtx{}
	parse := func(name string, kind source.FileKind) *ast.Module {
		text, err := loader.Load(name, kind)
		if err != nil {
			return nil
		}
		f := files.Add(name, kind, text)
		diags := diag.NewBag(0)
		toks := lexer.ScanAll(f, ctx, diags)
		return parser.New(parser.NewSliceSource(toks), f.Label(), ctx, diags).ParseUnit()
	}

	seen := map[string]bool{}
	var defQueue []string
	addDef := func(name string) {
		if !seen[name] {
			seen[name] = true
			defQueue = append(defQueue, name)
		}
	}
	importNames := func(imps []*ast.Import) []string {
		var out []string
		for _, imp := range imps {
			if imp.From.Text != "" {
				out = append(out, imp.From.Text)
				continue
			}
			for _, n := range imp.Names {
				out = append(out, n.Text)
			}
		}
		return out
	}

	m := parse(module, source.Impl)
	// The compiler optimistically prefetches the module's own interface
	// (§3); a program module without one simply contributes no unit.
	addDef(module)
	if m != nil {
		file := module + ".mod"
		units = append(units, &Unit{
			Kind: ModuleUnit, File: file, Module: module, Path: file,
			Imports: m.Imports, Decls: m.Decls, Body: m.Body,
		})
		// explode replicates the splitter's stream paths: a procedure's
		// registry path is its dot-joined nesting ("P", "P.Q"), and its
		// scope path chains parent paths with ':'.
		var explode func(decls []ast.Decl, parentPath, prefix string)
		explode = func(decls []ast.Decl, parentPath, prefix string) {
			for _, d := range decls {
				pd, ok := d.(*ast.ProcDecl)
				if !ok || pd.HeadingOnly {
					continue
				}
				regPath := prefix + pd.Head.Name.Text
				path := parentPath + ":" + regPath
				units = append(units, &Unit{
					Kind: ProcUnit, File: file, Module: module, Path: path,
					ProcName: pd.Head.Name.Text, Head: pd.Head,
					Decls: pd.Decls, Body: pd.Body,
				})
				explode(pd.Decls, path, regPath+".")
			}
		}
		explode(m.Decls, file, "")
		for _, imp := range importNames(m.Imports) {
			addDef(imp)
		}
	}
	for i := 0; i < len(defQueue); i++ {
		name := defQueue[i]
		dm := parse(name, source.Def)
		if dm == nil {
			continue
		}
		units = append(units, &Unit{
			Kind: DefUnit, File: name + ".def", Module: name, Path: name + ".def",
			Imports: dm.Imports, Decls: dm.Decls,
		})
		for _, imp := range importNames(dm.Imports) {
			addDef(imp)
		}
	}
	return units
}

// Analyze is the sequential single-pass analyzer: parse from source,
// analyze every unit in order, merge.  The concurrent checker's
// findings are byte-identical to this on every schedule, DKY strategy
// and worker count — the property the differential tests enforce.
func Analyze(module string, loader source.Loader) []diag.Diagnostic {
	return Run(SourceUnits(module, loader))
}
