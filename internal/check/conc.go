package check

import (
	"fmt"
	"sort"
	"strings"

	"m2cc/internal/ast"
	"m2cc/internal/diag"
	"m2cc/internal/faultinject"
	"m2cc/internal/token"
)

// The lockset analysis is the checker's first interprocedural pass
// family: Modula-2+'s LOCK mutex DO … END monitors are tracked per
// stream and joined at the merge barrier.
//
// Per unit, a structural walk over the body maintains the syntactic
// lockset — the stack of mutexes held at each point — and records an
// AST-free concurrency summary in Facts.Conc: every mutex acquisition
// with the set already held, every access to a potentially
// module-level variable with the lockset at the access, and every
// simple-name call with the lockset at the call.  The syntactic
// nesting is exact for Modula-2+ because LOCK is a monitor region: a
// RAISE that unwinds out of a LOCK releases its mutex before an
// enclosing TRY handler runs, so a handler's lockset is the lockset at
// its TRY statement — which is precisely the syntactic lockset where
// the handler appears.  Walking TRY handlers, ELSE and FINALLY parts
// under the enclosing lockset therefore models every unwind path
// without a separate exceptional CFG.
//
// Mutex identity is the qualified designator's text ("mu", "state.mu",
// "Sync.guard").  Only designators made of a head name and field
// selectors are canonical; an indexed or dereferenced mutex
// (arr[i], p^) has no static identity — two occurrences may be
// different mutexes at run time — so it contributes no acquisition
// facts, and the region it guards is held under an opaque token that
// never matches a canonical mutex (the accesses inside are protected
// by *something*, so they are not bare, but they witness no guard
// either).  This keeps every rule free of false positives.
//
// At the merge barrier, a fixed point over the PR 5 name-based call
// graph propagates calling-context locksets: the module body and the
// root interface's exported procedures start with the empty context,
// and a call to P under effective lockset L adds L to P's context set.
// The lattice is the powerset of locksets over the program's canonical
// mutexes ordered by inclusion; propagation only ever adds elements,
// so the fixed point is reached regardless of iteration order and the
// result — like every other merge rule — is schedule-independent.
// Three finding families fall out:
//
//	conc-guard        a module-level VAR accessed under a mutex in one
//	                  place and with an empty effective lockset in
//	                  another (at least one of the two a write) — a
//	                  static race.  Module-body accesses are exempt as
//	                  bare witnesses: initialization runs before any
//	                  concurrency exists.
//	conc-deadlock     a cycle in the global lock-order graph (edge
//	                  a→b when b is acquired while a is held,
//	                  including through calls), reported with the
//	                  witnessing acquisition path.
//	conc-double-lock  a mutex acquired while already held — Modula-2+
//	                  mutexes are not reentrant.

// Finding-family codes (diag.Diagnostic.Code) emitted by the analyzer.
const (
	CodeUninit       = "uninit"
	CodeUnreachable  = "unreachable"
	CodeUnusedLocal  = "unused-local"
	CodeUnusedParam  = "unused-param"
	CodeUnusedImport = "unused-import"
	CodeUnusedExport = "unused-export"
	CodeNeverCalled  = "never-called"
	CodeConcGuard    = "conc-guard"
	CodeConcDeadlock = "conc-deadlock"
	CodeConcDouble   = "conc-double-lock"
)

// FindingCodes lists every finding-family code the analyzer can emit,
// in a fixed documentation order (m2lint validates -enable/-disable
// against it).
func FindingCodes() []string {
	return []string{
		CodeUninit, CodeUnreachable, CodeUnusedLocal, CodeUnusedParam,
		CodeUnusedImport, CodeUnusedExport, CodeNeverCalled,
		CodeConcGuard, CodeConcDeadlock, CodeConcDouble,
	}
}

// ConcFacts is one unit's concurrency summary: everything the merge's
// interprocedural lockset pass needs, and nothing that points into the
// AST — like the rest of Facts it must replay bit-for-bit from the
// stream cache.
type ConcFacts struct {
	ModuleVars []ast.Name    // ModuleUnit/DefUnit: module-level VAR names (shared-variable roots)
	Acquires   []ConcAcquire // LOCK statements with a canonical mutex, walk order
	Accesses   []ConcAccess  // reads/writes of potentially module-level names, walk order
	Calls      []ConcCall    // simple-name calls, walk order
}

// ConcAcquire is one LOCK of a canonical mutex.
type ConcAcquire struct {
	Mutex string    // canonical designator identity, e.g. "mu" or "state.mu"
	Held  []string  // lockset already held at the acquisition (sorted, deduped)
	Pos   token.Pos // the LOCK statement
}

// ConcAccess is one read or write of a name that may denote a
// module-level variable (any simple name the unit does not itself
// declare; the merge intersects with the module's VAR names and
// discards names shadowed by an enclosing procedure).
type ConcAccess struct {
	Name  string
	Write bool
	Held  []string // lockset held at the access (sorted, deduped)
	Pos   token.Pos
}

// ConcCall is one call through a bare name (the PR 5 call-graph edge),
// annotated with the lockset held at the call site.
type ConcCall struct {
	Callee string
	Held   []string // lockset held at the call (sorted, deduped)
	Pos    token.Pos
}

// opaqueMutex stands in the held set for a mutex with no static
// identity (indexed or dereferenced, or not a designator at all).  The
// leading '\x00' keeps it out of the canonical namespace: it can never
// collide with source identifiers, contributes no lock-order edges,
// and is filtered from every message.
const opaqueMutex = "\x00?"

// concWalker builds one unit's ConcFacts.
type concWalker struct {
	facts ConcFacts
	held  []string        // acquisition-ordered lockset stack (may repeat)
	local map[string]bool // names the unit declares (excluded from accesses)
}

// concAnalyze extracts the concurrency summary for one unit; it runs
// inside the per-stream analysis task, so its cost is charged to the
// stream like the other intraprocedural passes.
func concAnalyze(u *Unit) *ConcFacts {
	w := &concWalker{local: map[string]bool{}}
	for _, d := range u.Decls {
		if vd, ok := d.(*ast.VarDecl); ok && (u.Kind == ModuleUnit || u.Kind == DefUnit) {
			w.facts.ModuleVars = append(w.facts.ModuleVars, vd.Names...)
		}
		if u.Kind == ProcUnit {
			for _, n := range declNames(d) {
				w.local[n.Text] = true
			}
		}
	}
	if u.Kind == ProcUnit && u.Head != nil {
		for _, sec := range u.Head.Params {
			for _, n := range sec.Names {
				w.local[n.Text] = true
			}
		}
	}
	w.stmts(u.Body)
	return &w.facts
}

// heldSet snapshots the current lockset, sorted and deduped — the
// canonical form every set rule in the merge compares.
func (w *concWalker) heldSet() []string {
	if len(w.held) == 0 {
		return nil
	}
	out := append([]string(nil), w.held...)
	sort.Strings(out)
	j := 0
	for i, m := range out {
		if i > 0 && m == out[j-1] {
			continue
		}
		out[j] = m
		j++
	}
	return out[:j]
}

// mutexName renders a LOCK's mutex expression as its canonical
// identity, or "" when the mutex has no static identity.
func mutexName(e ast.Expr) string {
	d, ok := e.(*ast.Designator)
	if !ok {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(d.Head.Text)
	for _, sel := range d.Sels {
		fs, ok := sel.(*ast.FieldSel)
		if !ok {
			return "" // indexed or dereferenced: no static identity
		}
		sb.WriteByte('.')
		sb.WriteString(fs.Name.Text)
	}
	return sb.String()
}

func (w *concWalker) access(name string, write bool, pos token.Pos) {
	if name == "" || w.local[name] {
		return
	}
	w.facts.Accesses = append(w.facts.Accesses, ConcAccess{
		Name: name, Write: write, Held: w.heldSet(), Pos: pos,
	})
}

func (w *concWalker) stmts(l *ast.StmtList) {
	if l == nil {
		return
	}
	for _, s := range l.Stmts {
		w.stmt(s)
	}
}

func (w *concWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.expr(s.RHS)
		if s.LHS != nil {
			for _, sel := range s.LHS.Sels {
				if ix, ok := sel.(*ast.IndexSel); ok {
					for _, e := range ix.Indexes {
						w.expr(e)
					}
				}
			}
			// Assigning through selectors still mutates the named
			// object; component granularity is out of scope.
			w.access(s.LHS.Head.Text, true, s.LHS.Head.Pos)
		}
	case *ast.CallStmt:
		w.call(s.Proc, s.Args)
	case *ast.IfStmt:
		w.expr(s.Cond)
		w.stmts(s.Then)
		for _, e := range s.Elsifs {
			w.expr(e.Cond)
			w.stmts(e.Then)
		}
		w.stmts(s.Else)
	case *ast.CaseStmt:
		w.expr(s.Expr)
		for _, arm := range s.Arms {
			w.stmts(arm.Body)
		}
		w.stmts(s.Else)
	case *ast.WhileStmt:
		w.expr(s.Cond)
		w.stmts(s.Body)
	case *ast.RepeatStmt:
		w.stmts(s.Body)
		w.expr(s.Cond)
	case *ast.LoopStmt:
		w.stmts(s.Body)
	case *ast.ForStmt:
		w.expr(s.From)
		w.expr(s.To)
		w.expr(s.By)
		w.access(s.Var.Text, true, s.Var.Pos)
		w.stmts(s.Body)
	case *ast.WithStmt:
		w.desig(s.Rec, false)
		w.stmts(s.Body)
	case *ast.ReturnStmt:
		w.expr(s.Expr)
	case *ast.TryStmt:
		// Handlers, ELSE and FINALLY run under the lockset held at the
		// TRY statement: any LOCK entered inside the protected body is
		// released during the unwind before control reaches them, so
		// the enclosing (current) lockset is exact — see the package
		// comment above.
		w.stmts(s.Body)
		for _, h := range s.Handlers {
			w.stmts(h.Body)
		}
		w.stmts(s.Else)
		w.stmts(s.Finally)
	case *ast.LockStmt:
		name := mutexName(s.Mutex)
		w.expr(s.Mutex)
		if name != "" {
			w.facts.Acquires = append(w.facts.Acquires, ConcAcquire{
				Mutex: name, Held: w.heldSet(), Pos: s.Pos,
			})
			w.held = append(w.held, name)
		} else {
			w.held = append(w.held, opaqueMutex)
		}
		w.stmts(s.Body)
		w.held = w.held[:len(w.held)-1]
	}
}

// call records the call-graph edge and the accesses its arguments
// perform.  A bare designator in argument position may bind to a VAR
// parameter the callee assigns, so it counts as a write (matching the
// uninitialized-variable CFG's conservatism).
func (w *concWalker) call(fun *ast.Designator, args []ast.Expr) {
	if fun != nil && len(fun.Sels) == 0 {
		w.facts.Calls = append(w.facts.Calls, ConcCall{
			Callee: fun.Head.Text, Held: w.heldSet(), Pos: fun.Head.Pos,
		})
	} else {
		w.desig(fun, false)
	}
	for _, a := range args {
		if d, ok := a.(*ast.Designator); ok && len(d.Sels) == 0 {
			w.access(d.Head.Text, true, d.Head.Pos)
			continue
		}
		w.expr(a)
	}
}

func (w *concWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.SetExpr:
		for _, el := range e.Elems {
			w.expr(el.Lo)
			w.expr(el.Hi)
		}
	case *ast.Designator:
		w.desig(e, false)
	case *ast.CallExpr:
		w.call(e.Fun, e.Args)
	}
}

func (w *concWalker) desig(d *ast.Designator, write bool) {
	if d == nil {
		return
	}
	w.access(d.Head.Text, write, d.Head.Pos)
	for _, sel := range d.Sels {
		if ix, ok := sel.(*ast.IndexSel); ok {
			for _, e := range ix.Indexes {
				w.expr(e)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Merge-barrier fixed point

// lsKey is a lockset's canonical key: its sorted members joined by
// '\x01' (which no identifier contains).
func lsKey(ls []string) string { return strings.Join(ls, "\x01") }

func lsFromKey(k string) []string {
	if k == "" {
		return nil
	}
	return strings.Split(k, "\x01")
}

// lsUnion unions two canonical (sorted, deduped) locksets into a new
// canonical lockset.
func lsUnion(a, b []string) []string {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Strings(out)
	j := 0
	for i, m := range out {
		if i > 0 && m == out[j-1] {
			continue
		}
		out[j] = m
		j++
	}
	return out[:j]
}

func lsContains(ls []string, m string) bool {
	for _, x := range ls {
		if x == m {
			return true
		}
	}
	return false
}

// concSite is a source anchor ordered by (file label, line, column) —
// NOT by Pos.File, whose index differs between a fresh parse and a
// cache replay; the label order is what the user sees and what stays
// stable across warm rebuilds.
type concSite struct {
	file string
	pos  token.Pos
}

func (s concSite) before(o concSite) bool {
	if s.file != o.file {
		return s.file < o.file
	}
	if s.pos.Line != o.pos.Line {
		return s.pos.Line < o.pos.Line
	}
	return s.pos.Col < o.pos.Col
}

func (s concSite) String() string { return fmt.Sprintf("%s:%s", s.file, s.pos) }

// concCtxBudget caps the total number of calling contexts the merge
// fixed point tracks across all units.  Real monitor disciplines use a
// handful of locksets; only adversarial inputs approach the cap.
const concCtxBudget = 4096

// concMerge runs the interprocedural lockset pass over the fact
// tables and returns the concurrency findings (unsorted; the caller's
// SortDedup totals the order).  plan supplies the PanicConcMerge
// injection point and may be nil.  Every rule below is a set
// computation whose witnesses are chosen by deterministic minima, so
// the result is independent of table order — the same property the
// other merge rules rely on.
func concMerge(fs []*Facts, plan *faultinject.Plan) []diag.Diagnostic {
	var root *Facts
	for _, f := range fs {
		if f.Kind == ModuleUnit {
			root = f
		}
	}
	if root == nil || root.Conc == nil {
		return nil
	}
	rootModule := root.Module

	// Shared variables: the root module's own VARs plus the VARs its
	// interface exports.
	shared := map[string]bool{}
	for _, n := range root.Conc.ModuleVars {
		shared[n.Text] = true
	}
	for _, f := range fs {
		if f.Kind == DefUnit && f.Module == rootModule && f.Conc != nil {
			for _, n := range f.Conc.ModuleVars {
				shared[n.Text] = true
			}
		}
	}

	// Root-module procedure streams by simple name — the same
	// conservative name-based call graph as the reachability pass.
	byName := map[string][]*Facts{}
	var procs []*Facts
	for _, f := range fs {
		if f.Kind == ProcUnit && f.Module == rootModule && f.Conc != nil {
			procs = append(procs, f)
			byName[f.ProcName] = append(byName[f.ProcName], f)
		}
	}
	units := append([]*Facts{root}, procs...)

	// Context fixed point: ctx[f] is the set of locksets (as canonical
	// keys) f may execute under.  Roots: the module body and every
	// procedure the root interface exports run with the empty lockset.
	//
	// The context lattice is the powerset of locksets, so a hostile
	// input (deep call chains threading many mutexes) can blow the
	// fixed point up exponentially.  concCtxBudget bounds the total
	// number of contexts tracked: propagation runs in synchronous
	// rounds, each computed purely from the keys the previous round
	// added, with the budget checked only at round boundaries.  Once
	// it trips, propagation freezes.  The frozen state is a subset of
	// the genuine contexts — the pass may miss findings on such
	// inputs, never invent them — and because whole rounds are applied
	// atomically and the freeze decision depends only on a count, the
	// result is still independent of table order.
	ctx := map[*Facts]map[string]bool{}
	type ctxEntry struct {
		f   *Facts
		key string
	}
	total := 0
	var frontier []ctxEntry
	add := func(f *Facts, key string) {
		m := ctx[f]
		if m == nil {
			m = map[string]bool{}
			ctx[f] = m
		}
		if m[key] {
			return
		}
		m[key] = true
		total++
		frontier = append(frontier, ctxEntry{f, key})
	}
	add(root, "")
	for _, f := range fs {
		if f.Kind == DefUnit && f.Module == rootModule {
			for _, name := range f.ProcDecls {
				for _, p := range byName[name] {
					add(p, "")
				}
			}
		}
	}
	plan.Panic(faultinject.PanicConcMerge, rootModule)
	for {
		// Propagate contexts through calls to a fixed point.  The
		// accumulation is monotone (contexts are only ever added), so
		// the result does not depend on iteration order.
		for len(frontier) > 0 && total < concCtxBudget {
			round := frontier
			frontier = nil
			for _, e := range round {
				base := lsFromKey(e.key)
				for _, c := range e.f.Conc.Calls {
					eff := lsKey(lsUnion(base, c.Held))
					for _, p := range byName[c.Callee] {
						add(p, eff)
					}
				}
			}
		}
		// A procedure nothing reached may still be an entry point (the
		// reachability pass flags it separately): seed it with the
		// empty context and re-propagate, so a dead helper's callees
		// inherit its locks rather than a fabricated bare context.
		seeded := false
		for _, p := range procs {
			if ctx[p] == nil {
				add(p, "")
				seeded = true
			}
		}
		if !seeded {
			break
		}
	}

	// shadowed reports whether an enclosing procedure stream declares
	// name — a nested procedure's free name may bind to a parent's
	// local, which hides the module variable.
	shadowed := func(f *Facts, name string) bool {
		for _, a := range fs {
			if a.Kind != ProcUnit || a == f || !strings.HasPrefix(f.Path, a.Path+":") {
				continue
			}
			for _, n := range a.Locals {
				if n.Text == name {
					return true
				}
			}
			for _, n := range a.Params {
				if n.Text == name {
					return true
				}
			}
		}
		return false
	}

	var out []diag.Diagnostic

	// Effective accesses per shared variable, and — in the same sweep —
	// the lock-order edges and double acquisitions.
	type varAccess struct {
		site  concSite
		write bool
		eff   []string
		init  bool // module-body access: exempt as a bare witness
	}
	accByVar := map[string][]varAccess{}
	edges := map[lockEdge]concSite{} // earliest witnessing acquisition
	for _, f := range units {
		for key := range ctx[f] {
			base := lsFromKey(key)
			for _, a := range f.Conc.Accesses {
				if !shared[a.Name] || shadowed(f, a.Name) {
					continue
				}
				accByVar[a.Name] = append(accByVar[a.Name], varAccess{
					site:  concSite{f.File, a.Pos},
					write: a.Write,
					eff:   lsUnion(base, a.Held),
					init:  f.Kind == ModuleUnit,
				})
			}
			for _, aq := range f.Conc.Acquires {
				before := lsUnion(base, aq.Held)
				site := concSite{f.File, aq.Pos}
				if lsContains(before, aq.Mutex) {
					out = append(out, diag.Diagnostic{
						Sev: diag.Warning, Pos: aq.Pos, File: f.File, Code: CodeConcDouble,
						Msg: fmt.Sprintf("mutex %s is acquired while already held (MUTEX is not reentrant)", aq.Mutex),
					})
				}
				for _, h := range before {
					if h == opaqueMutex || h == aq.Mutex {
						continue
					}
					e := lockEdge{h, aq.Mutex}
					if cur, ok := edges[e]; !ok || site.before(cur) {
						edges[e] = site
					}
				}
			}
		}
	}

	// Guarded-by violations: a shared variable with both a
	// mutex-protected access and a bare one, at least one of them a
	// write.  The guard named in the message is the canonical mutex
	// held at the most protected accesses (ties to the smallest name) —
	// the analyst's best guess at the intended discipline; the witness
	// is its earliest protected site.
	varNames := make([]string, 0, len(accByVar))
	for v := range accByVar {
		varNames = append(varNames, v)
	}
	sort.Strings(varNames)
	for _, v := range varNames {
		accs := accByVar[v]
		guard := ""
		votes := map[string]int{}
		lockedWrite, bareWrite, haveBare := false, false, false
		for _, a := range accs {
			for _, m := range a.eff {
				if m == opaqueMutex {
					continue
				}
				votes[m]++
				if guard == "" || votes[m] > votes[guard] ||
					(votes[m] == votes[guard] && m < guard) {
					guard = m
				}
			}
			if len(a.eff) > 0 {
				if a.write {
					lockedWrite = true
				}
			} else if !a.init {
				haveBare = true
				if a.write {
					bareWrite = true
				}
			}
		}
		if guard == "" || !haveBare || !(lockedWrite || bareWrite) {
			continue
		}
		var witness concSite
		haveWitness := false
		for _, a := range accs {
			if lsContains(a.eff, guard) && (!haveWitness || a.site.before(witness)) {
				witness, haveWitness = a.site, true
			}
		}
		for _, a := range accs {
			if len(a.eff) > 0 || a.init {
				continue
			}
			out = append(out, diag.Diagnostic{
				Sev: diag.Warning, Pos: a.site.pos, End: nameEnd(v, a.site.pos),
				File: a.site.file, Code: CodeConcGuard,
				Msg: fmt.Sprintf("module variable %s is accessed without holding mutex %s (guarded at %s)", v, guard, witness),
			})
		}
	}

	out = append(out, concDeadlocks(edges)...)
	return out
}

// lockEdge is one lock-order edge: to was acquired while from was held.
type lockEdge struct{ from, to string }

// concDeadlocks finds cycles in the global lock-order graph and
// reports one finding per knot, with the witnessing acquisition path.
func concDeadlocks(edges map[lockEdge]concSite) []diag.Diagnostic {
	succ := map[string][]string{}
	for e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	nodes := make([]string, 0, len(succ))
	for n := range succ {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(succ[n])
	}

	var out []diag.Diagnostic
	for _, s := range nodes {
		cycle := shortestCycle(s, succ)
		if cycle == nil {
			continue
		}
		// Report each knot once, from its smallest member: any cycle
		// through the smallest mutex of a strongly connected component
		// stays inside the component, so exactly one finding per knot
		// survives this filter.
		minOK := true
		for _, m := range cycle {
			if m < s {
				minOK = false
				break
			}
		}
		if !minOK {
			continue
		}
		var path, wits []string
		var anchor concSite
		haveAnchor := false
		path = append(path, cycle...)
		path = append(path, s)
		for i := 0; i+1 < len(path); i++ {
			site := edges[lockEdge{path[i], path[i+1]}]
			wits = append(wits, fmt.Sprintf("%s acquired under %s at %s", path[i+1], path[i], site))
			if !haveAnchor || site.before(anchor) {
				anchor, haveAnchor = site, true
			}
		}
		out = append(out, diag.Diagnostic{
			Sev: diag.Warning, Pos: anchor.pos, File: anchor.file, Code: CodeConcDeadlock,
			Msg: fmt.Sprintf("potential deadlock: lock-order cycle %s (%s)",
				strings.Join(path, " -> "), strings.Join(wits, "; ")),
		})
	}
	return out
}

// shortestCycle returns the nodes of the lexicographically-first
// shortest cycle through s (starting at s, excluding the final return
// to s), or nil if s lies on no cycle.  BFS with sorted successor
// scans makes the choice deterministic.
func shortestCycle(s string, succ map[string][]string) []string {
	parent := map[string]string{}
	var queue []string
	for _, n := range succ[s] {
		if n == s {
			return []string{s} // self-loop
		}
		if _, seen := parent[n]; !seen {
			parent[n] = s
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, n := range succ[u] {
			if n == s {
				var rev []string
				for x := u; x != s; x = parent[x] {
					rev = append(rev, x)
				}
				out := []string{s}
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if _, seen := parent[n]; !seen {
				parent[n] = u
				queue = append(queue, n)
			}
		}
	}
	return nil
}
