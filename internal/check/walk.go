package check

import (
	"m2cc/internal/ast"
	"m2cc/internal/token"
)

// walker accumulates one unit's identifier mention set and counts the
// AST nodes visited (the unit's deterministic analysis cost).
//
// Mentions are use-sites only: declaration-name positions (a VarDecl's
// names, a heading's procedure and parameter names, record field
// names, enum constants, import clauses) are not mentions.  Nested
// procedure declarations are never descended into beyond their heading
// — in the concurrent compiler the nested body belongs to another
// stream's unit, and the sequential decomposition follows the same
// rule, so both modes walk identical shapes.
type walker struct {
	mentions map[string]bool
	nodes    int
}

func newWalker() *walker { return &walker{mentions: make(map[string]bool)} }

func (w *walker) mention(name string) {
	if name != "" {
		w.mentions[name] = true
	}
}

func (w *walker) qualident(q *ast.Qualident) {
	if q == nil {
		return
	}
	w.nodes++
	for _, p := range q.Parts {
		w.mention(p.Text)
	}
}

func (w *walker) decls(decls []ast.Decl) {
	for _, d := range decls {
		w.nodes++
		switch d := d.(type) {
		case *ast.ConstDecl:
			w.expr(d.Expr)
		case *ast.TypeDecl:
			w.typ(d.Type)
		case *ast.VarDecl:
			w.typ(d.Type)
		case *ast.ExceptionDecl:
			// declares names, mentions nothing
		case *ast.ProcDecl:
			w.head(d.Head)
		}
	}
}

// head walks a heading's formal types and result type; the procedure
// and parameter names themselves are declarations, not mentions.
func (w *walker) head(h *ast.ProcHead) {
	if h == nil {
		return
	}
	w.nodes++
	for _, sec := range h.Params {
		w.nodes++
		w.qualident(sec.Type)
	}
	w.qualident(h.Ret)
}

func (w *walker) typ(t ast.Type) {
	if t == nil {
		return
	}
	w.nodes++
	switch t := t.(type) {
	case *ast.NamedType:
		w.qualident(t.Name)
	case *ast.EnumType:
		// declares constant names
	case *ast.SubrangeType:
		w.qualident(t.Base)
		w.expr(t.Lo)
		w.expr(t.Hi)
	case *ast.ArrayType:
		for _, ix := range t.Indexes {
			w.typ(ix)
		}
		w.typ(t.Elem)
	case *ast.RecordType:
		w.fields(t.Fields)
	case *ast.SetType:
		w.typ(t.Base)
	case *ast.PointerType:
		w.typ(t.Base)
	case *ast.RefType:
		w.typ(t.Base)
	case *ast.ProcType:
		for _, p := range t.Params {
			w.qualident(p.Type)
		}
		w.qualident(t.Ret)
	}
}

func (w *walker) fields(fields []*ast.FieldList) {
	for _, f := range fields {
		w.nodes++
		w.typ(f.Type) // field names are declarations
		if f.Variant != nil {
			w.qualident(f.Variant.TagType)
			for _, c := range f.Variant.Cases {
				for _, l := range c.Labels {
					w.expr(l.Lo)
					w.expr(l.Hi)
				}
				w.fields(c.Fields)
			}
			w.fields(f.Variant.Else)
		}
	}
}

func (w *walker) stmts(l *ast.StmtList) {
	if l == nil {
		return
	}
	for _, s := range l.Stmts {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	w.nodes++
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.designator(s.LHS)
		w.expr(s.RHS)
	case *ast.CallStmt:
		w.designator(s.Proc)
		for _, a := range s.Args {
			w.expr(a)
		}
	case *ast.IfStmt:
		w.expr(s.Cond)
		w.stmts(s.Then)
		for _, e := range s.Elsifs {
			w.expr(e.Cond)
			w.stmts(e.Then)
		}
		w.stmts(s.Else)
	case *ast.CaseStmt:
		w.expr(s.Expr)
		for _, arm := range s.Arms {
			for _, l := range arm.Labels {
				w.expr(l.Lo)
				w.expr(l.Hi)
			}
			w.stmts(arm.Body)
		}
		w.stmts(s.Else)
	case *ast.WhileStmt:
		w.expr(s.Cond)
		w.stmts(s.Body)
	case *ast.RepeatStmt:
		w.stmts(s.Body)
		w.expr(s.Cond)
	case *ast.LoopStmt:
		w.stmts(s.Body)
	case *ast.ExitStmt:
	case *ast.ForStmt:
		w.mention(s.Var.Text)
		w.expr(s.From)
		w.expr(s.To)
		w.expr(s.By)
		w.stmts(s.Body)
	case *ast.WithStmt:
		w.designator(s.Rec)
		w.stmts(s.Body)
	case *ast.ReturnStmt:
		w.expr(s.Expr)
	case *ast.RaiseStmt:
		w.qualident(s.Exc)
	case *ast.TryStmt:
		w.stmts(s.Body)
		for _, h := range s.Handlers {
			for _, exc := range h.Excs {
				w.qualident(exc)
			}
			w.stmts(h.Body)
		}
		w.stmts(s.Else)
		w.stmts(s.Finally)
	case *ast.LockStmt:
		w.expr(s.Mutex)
		w.stmts(s.Body)
	}
}

func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	w.nodes++
	switch e := e.(type) {
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.SetExpr:
		w.qualident(e.Type)
		for _, el := range e.Elems {
			w.expr(el.Lo)
			w.expr(el.Hi)
		}
	case *ast.Designator:
		w.designator(e)
	case *ast.CallExpr:
		w.designator(e.Fun)
		for _, a := range e.Args {
			w.expr(a)
		}
	}
	// literals mention nothing
}

func (w *walker) designator(d *ast.Designator) {
	if d == nil {
		return
	}
	w.nodes++
	w.mention(d.Head.Text)
	for _, sel := range d.Sels {
		switch sel := sel.(type) {
		case *ast.FieldSel:
			w.mention(sel.Name.Text)
		case *ast.IndexSel:
			for _, ix := range sel.Indexes {
				w.expr(ix)
			}
		}
	}
}

// stmtPos returns a statement's source position.
func stmtPos(s ast.Stmt) token.Pos {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return s.Pos
	case *ast.CallStmt:
		return s.Pos
	case *ast.IfStmt:
		return s.Pos
	case *ast.CaseStmt:
		return s.Pos
	case *ast.WhileStmt:
		return s.Pos
	case *ast.RepeatStmt:
		return s.Pos
	case *ast.LoopStmt:
		return s.Pos
	case *ast.ExitStmt:
		return s.Pos
	case *ast.ForStmt:
		return s.Pos
	case *ast.WithStmt:
		return s.Pos
	case *ast.ReturnStmt:
		return s.Pos
	case *ast.RaiseStmt:
		return s.Pos
	case *ast.TryStmt:
		return s.Pos
	case *ast.LockStmt:
		return s.Pos
	}
	return token.Pos{}
}

// unreachable reports the first statement after a RETURN, EXIT or
// RAISE in each statement sequence (one report per sequence), then
// recurses into every nested sequence.
func unreachable(l *ast.StmtList, report func(pos token.Pos)) {
	if l == nil {
		return
	}
	dead, reported := false, false
	for _, s := range l.Stmts {
		if dead && !reported {
			report(stmtPos(s))
			reported = true
		}
		switch s := s.(type) {
		case *ast.ReturnStmt, *ast.ExitStmt, *ast.RaiseStmt:
			dead = true
		case *ast.IfStmt:
			unreachable(s.Then, report)
			for _, e := range s.Elsifs {
				unreachable(e.Then, report)
			}
			unreachable(s.Else, report)
		case *ast.CaseStmt:
			for _, arm := range s.Arms {
				unreachable(arm.Body, report)
			}
			unreachable(s.Else, report)
		case *ast.WhileStmt:
			unreachable(s.Body, report)
		case *ast.RepeatStmt:
			unreachable(s.Body, report)
		case *ast.LoopStmt:
			unreachable(s.Body, report)
		case *ast.ForStmt:
			unreachable(s.Body, report)
		case *ast.WithStmt:
			unreachable(s.Body, report)
		case *ast.TryStmt:
			unreachable(s.Body, report)
			for _, h := range s.Handlers {
				unreachable(h.Body, report)
			}
			unreachable(s.Else, report)
			unreachable(s.Finally, report)
		case *ast.LockStmt:
			unreachable(s.Body, report)
		}
	}
}
