package check_test

import (
	"os"
	"path/filepath"
	"testing"

	"m2cc/internal/check"
	"m2cc/internal/core"
	"m2cc/internal/source"
)

// FuzzConcFindings differentially fuzzes the concurrency analyzer with
// arbitrary single-module source — hostile LOCK nesting, truncated
// monitors, RAISE mid-region, mutexes with no static identity.  Three
// invariants:
//
//  1. neither analyzer panics past its recover barrier, whatever the
//     parser makes of the input (the compilation may fail; it may not
//     crash the process);
//  2. the run terminates promptly — the merge's context fixed point
//     is budgeted (concCtxBudget), so even inputs engineered to blow
//     up the powerset-of-locksets lattice freeze instead of hanging;
//  3. on input that compiles cleanly, the concurrent checker's
//     findings are byte-identical to the sequential analyzer's.
//
// Seeds come from the LOCK fixtures in examples/modules plus
// hand-written pathologies; the checked-in corpus lives in
// testdata/fuzz/FuzzConcFindings.
func FuzzConcFindings(f *testing.F) {
	for _, name := range []string{"ConcClean.mod", "ConcFindings.mod"} {
		b, err := os.ReadFile(filepath.Join("..", "..", "examples", "modules", name))
		if err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		f.Add(string(b))
	}
	f.Add(concProgram["Conc.mod"])
	f.Add("MODULE M;\nVAR m: MUTEX;\nBEGIN\n  LOCK m DO LOCK m DO LOCK m DO END END END\nEND M.\n")
	f.Add("MODULE M;\nVAR m: MUTEX;\nPROCEDURE P;\nBEGIN\n  LOCK m DO")     // truncated monitor
	f.Add("MODULE M;\nVAR a: ARRAY [0..1] OF MUTEX; i: INTEGER;\nBEGIN\n  i := 0;\n  LOCK a[i] DO i := 1 END\nEND M.\n") // opaque mutex
	f.Add("MODULE M;\nEXCEPTION E;\nVAR m: MUTEX; g: INTEGER;\nBEGIN\n  TRY LOCK m DO g := 1; RAISE E END EXCEPT E: g := 2 END\nEND M.\n")
	f.Add("LOCK DO END")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		loader := source.NewMapLoader()
		loader.Add("F", source.Impl, src)

		seq := check.Analyze("F", loader)
		res := core.Compile("F", loader, core.Options{Workers: 4, Check: true})
		if res.Failed() {
			// Hostile input may not compile; the invariant is that
			// neither path crashed or hung getting here.
			return
		}
		if res.CheckFellBack {
			t.Fatalf("checker fell back without an injected fault on:\n%s", src)
		}
		want := check.Render(seq)
		if got := check.Render(res.Findings); got != want {
			t.Fatalf("concurrent findings diverge from sequential analyzer\ngot:\n%s\nwant:\n%s\nsource:\n%s", got, want, src)
		}
	})
}
