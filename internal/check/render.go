package check

import (
	"encoding/json"
	"io"
	"strings"

	"m2cc/internal/diag"
)

// Render formats findings one per line (diag.Diagnostic.String) — the
// byte-comparable form used by the differential tests and m2c -lint.
func Render(findings []diag.Diagnostic) string {
	var sb strings.Builder
	for _, d := range findings {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// jsonFinding is the machine-readable finding shape for -lint-json.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int32  `json:"line"`
	Col      int32  `json:"col"`
	EndLine  int32  `json:"end_line,omitempty"`
	EndCol   int32  `json:"end_col,omitempty"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	Code     string `json:"code,omitempty"`
}

// WriteJSON emits findings as an indented JSON array with full
// line+column spans.
func WriteJSON(w io.Writer, findings []diag.Diagnostic) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, d := range findings {
		jf := jsonFinding{
			File: d.File, Line: d.Pos.Line, Col: d.Pos.Col,
			Severity: d.Sev.String(), Message: d.Msg, Code: d.Code,
		}
		if d.End.IsValid() {
			jf.EndLine = d.End.Line
			jf.EndCol = d.End.Col
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
