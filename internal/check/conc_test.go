package check_test

import (
	"strings"
	"testing"

	"m2cc/internal/check"
	"m2cc/internal/core"
	"m2cc/internal/faultinject"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
)

// concProgram exercises every concurrency finding family through the
// interprocedural machinery: shared is guarded by m in Guarded but
// touched bare in Sloppy and in BA's exception handler (whose lockset
// is the lockset at the TRY statement — the LOCK b inside the body is
// released during the unwind); AB orders a before b while BA reaches
// b before a through Helper (a cross-procedure acquisition cycle);
// Again re-enters Guarded's LOCK m with m already held (a double
// acquire visible only through the calling context).
var concProgram = map[string]string{
	"Conc.mod": `
MODULE Conc;
EXCEPTION Oops;
VAR a, b, m: MUTEX;
VAR shared: INTEGER;

PROCEDURE Guarded;
BEGIN
  LOCK m DO
    shared := shared + 1
  END
END Guarded;

PROCEDURE Sloppy(): INTEGER;
BEGIN
  RETURN shared
END Sloppy;

PROCEDURE Helper;
BEGIN
  LOCK a DO
    Guarded
  END
END Helper;

PROCEDURE AB;
BEGIN
  LOCK a DO
    LOCK b DO
      Guarded
    END
  END
END AB;

PROCEDURE BA;
BEGIN
  TRY
    LOCK b DO
      Helper;
      RAISE Oops
    END
  EXCEPT
    Oops: shared := 0
  END
END BA;

PROCEDURE Again;
BEGIN
  LOCK m DO
    Guarded
  END
END Again;

BEGIN
  Guarded;
  AB;
  BA;
  Again;
  WriteInt(Sloppy(), 0); WriteLn
END Conc.
`,
}

func concLoader() *source.MapLoader {
	loader := source.NewMapLoader()
	for name, text := range concProgram {
		if base, ok := strings.CutSuffix(name, ".mod"); ok {
			loader.Add(base, source.Impl, text)
		}
	}
	return loader
}

// TestConcSequentialFindings pins the interprocedural lockset pass's
// behavior on the fixture: which family fires where, and which
// disciplined accesses stay silent.
func TestConcSequentialFindings(t *testing.T) {
	got := check.Render(check.Analyze("Conc", concLoader()))
	for _, w := range []string{
		// Sloppy's bare read and the handler's bare write, both blamed
		// on the m discipline established in Guarded.
		"module variable shared is accessed without holding mutex m",
		"[conc-guard]",
		// The cross-procedure cycle, with both witnessing acquisitions.
		"potential deadlock: lock-order cycle a -> b -> a",
		"b acquired under a",
		"a acquired under b",
		"[conc-deadlock]",
		// Guarded's LOCK m re-entered from Again's LOCK m.
		"mutex m is acquired while already held",
		"[conc-double-lock]",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("findings missing %q\ngot:\n%s", w, got)
		}
	}
	// Two conc-guard sites: Sloppy's RETURN and the handler assignment.
	if n := strings.Count(got, "[conc-guard]"); n != 2 {
		t.Errorf("want 2 conc-guard findings, got %d:\n%s", n, got)
	}
	if n := strings.Count(got, "[conc-deadlock]"); n != 1 {
		t.Errorf("want 1 conc-deadlock finding, got %d:\n%s", n, got)
	}
	if n := strings.Count(got, "[conc-double-lock]"); n != 1 {
		t.Errorf("want 1 conc-double-lock finding, got %d:\n%s", n, got)
	}
	// Guarded's own accesses are disciplined — no finding may anchor
	// inside it (its LOCK is at line 10; the double-lock finding blames
	// that line, which is correct, but no conc-guard may).
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "[conc-guard]") && strings.Contains(line, "shared := shared") {
			t.Errorf("guarded access reported bare: %s", line)
		}
	}
}

// TestConcDifferential is the tentpole property for the new pass: the
// concurrency findings are byte-identical to the sequential analyzer's
// under every DKY strategy, both heading modes and several worker
// counts.
func TestConcDifferential(t *testing.T) {
	loader := concLoader()
	want := check.Render(check.Analyze("Conc", loader))
	if !strings.Contains(want, "[conc-") {
		t.Fatalf("fixture produced no concurrency findings:\n%s", want)
	}
	for strat := symtab.Avoidance; strat <= symtab.Optimistic; strat++ {
		for _, workers := range []int{1, 4, 8} {
			for _, headers := range []core.HeaderMode{core.HeaderShared, core.HeaderReprocess} {
				strat, workers, headers := strat, workers, headers
				name := strat.String() + "/w" + string(rune('0'+workers))
				if headers == core.HeaderReprocess {
					name += "/reprocess"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res := core.Compile("Conc", loader, core.Options{
						Workers: workers, Strategy: strat, Headers: headers, Check: true,
					})
					if res.Failed() {
						t.Fatalf("compile failed:\n%s", res.Diags)
					}
					if res.Faulted || res.CheckFellBack {
						t.Fatalf("unexpected fault: Faulted=%v CheckFellBack=%v", res.Faulted, res.CheckFellBack)
					}
					if got := check.Render(res.Findings); got != want {
						t.Fatalf("concurrent findings diverge from sequential baseline\ngot:\n%s\nwant:\n%s", got, want)
					}
				})
			}
		}
	}
}

// TestConcMergePanicDegrades arms the PanicConcMerge injection point:
// the merge barrier's fixed point dies mid-flight, the checker discards
// the concurrent tables and re-runs the sequential analyzer, and the
// findings stay byte-identical.
func TestConcMergePanicDegrades(t *testing.T) {
	loader := concLoader()
	want := check.Render(check.Analyze("Conc", loader))
	plan := faultinject.New().Arm(faultinject.PanicConcMerge, 1)
	res := core.Compile("Conc", loader, core.Options{
		Workers: 4, Check: true, FaultPlan: plan,
	})
	if res.Failed() {
		t.Fatalf("compile failed:\n%s", res.Diags)
	}
	if res.Faulted {
		t.Fatal("a merge panic poisoned the compilation")
	}
	if plan.Tripped(faultinject.PanicConcMerge) != 1 {
		t.Fatalf("point tripped %d times", plan.Tripped(faultinject.PanicConcMerge))
	}
	if !res.CheckFellBack {
		t.Fatal("checker did not report the sequential fallback")
	}
	if got := check.Render(res.Findings); got != want {
		t.Fatalf("degraded findings diverge\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFindingCodes: the registry lists every family exactly once and
// every rendered finding carries a bracketed code from it.
func TestFindingCodes(t *testing.T) {
	codes := check.FindingCodes()
	seen := map[string]bool{}
	for _, c := range codes {
		if seen[c] {
			t.Errorf("duplicate code %q", c)
		}
		seen[c] = true
	}
	for _, c := range []string{"conc-guard", "conc-deadlock", "conc-double-lock", "uninit"} {
		if !seen[c] {
			t.Errorf("registry missing %q", c)
		}
	}
	for _, d := range check.Analyze("Conc", concLoader()) {
		if !seen[d.Code] {
			t.Errorf("finding carries unregistered code %q: %s", d.Code, d.String())
		}
	}
}
