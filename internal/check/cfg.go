package check

import (
	"m2cc/internal/ast"
	"m2cc/internal/token"
)

// The uninitialized-variable pass runs a must-initialize forward
// dataflow over a small control-flow graph built from the unit's body.
// A variable is "initialized" at a point iff it is assigned on every
// path from entry; a read of a variable not must-initialized is
// reported once, at its earliest offending use.
//
// The analysis is deliberately conservative so it never produces a
// false positive under Modula-2+ semantics:
//
//   - a bare variable in call-argument position counts as a definition
//     (it may bind to a VAR parameter the callee assigns);
//   - a call to a procedure declared in this unit havocs the state
//     (nested procedures can assign the enclosing frame's variables);
//   - a WITH body havocs on entry (field names are indistinguishable
//     from variables without type information);
//   - exception handlers join with the TRY entry state (an exception
//     may strike before any assignment in the protected body).

type actKind uint8

const (
	actUse actKind = iota
	actDef
	actHavoc
)

// action is one dataflow-relevant event inside a basic block.
type action struct {
	kind actKind
	v    int // tracked-variable index (actUse/actDef)
	name string
	pos  token.Pos
}

// cblock is one basic block.
type cblock struct {
	acts  []action
	succs []*cblock
	in    bitset
	seen  bool // reachable from entry
}

// bitset is a fixed-width bit vector over the tracked variables.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }
func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }

func (b bitset) setAll() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// and intersects o into b, reporting whether b changed.
func (b bitset) and(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// cfg is one unit body's control-flow graph under construction.
type cfg struct {
	vars   []ast.Name // tracked variables, declaration order
	varIdx map[string]int
	procs  map[string]bool // procedures declared in this unit (havoc on call)
	blocks []*cblock
	entry  *cblock
	cur    *cblock   // nil while the current path is terminated
	loops  []*cblock // LOOP after-block stack, for EXIT
}

func buildCFG(u *Unit) *cfg {
	g := &cfg{varIdx: map[string]int{}, procs: map[string]bool{}}
	for _, d := range u.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			for _, n := range d.Names {
				if _, ok := g.varIdx[n.Text]; !ok {
					g.varIdx[n.Text] = len(g.vars)
					g.vars = append(g.vars, n)
				}
			}
		case *ast.ProcDecl:
			g.procs[d.Head.Name.Text] = true
		}
	}
	g.entry = g.newBlock()
	g.cur = g.entry
	g.stmts(u.Body)
	return g
}

func (g *cfg) newBlock() *cblock {
	b := &cblock{}
	g.blocks = append(g.blocks, b)
	return b
}

func (g *cfg) edge(from, to *cblock) {
	if from != nil {
		from.succs = append(from.succs, to)
	}
}

func (g *cfg) emit(a action) {
	if g.cur != nil {
		g.cur.acts = append(g.cur.acts, a)
	}
}

func (g *cfg) use(name string, pos token.Pos) {
	if i, ok := g.varIdx[name]; ok {
		g.emit(action{kind: actUse, v: i, name: name, pos: pos})
	}
}

func (g *cfg) def(name string) {
	if i, ok := g.varIdx[name]; ok {
		g.emit(action{kind: actDef, v: i})
	}
}

func (g *cfg) havoc() { g.emit(action{kind: actHavoc}) }

// uses records the reads an expression performs.
func (g *cfg) uses(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		g.uses(e.X)
		g.uses(e.Y)
	case *ast.UnaryExpr:
		g.uses(e.X)
	case *ast.SetExpr:
		for _, el := range e.Elems {
			g.uses(el.Lo)
			g.uses(el.Hi)
		}
	case *ast.Designator:
		g.desigUses(e)
	case *ast.CallExpr:
		g.call(e.Fun, e.Args)
	}
}

func (g *cfg) desigUses(d *ast.Designator) {
	if d == nil {
		return
	}
	g.use(d.Head.Text, d.Head.Pos)
	for _, sel := range d.Sels {
		if ix, ok := sel.(*ast.IndexSel); ok {
			for _, e := range ix.Indexes {
				g.uses(e)
			}
		}
	}
}

// call models a procedure or function call.  A bare tracked variable
// in argument position may bind to a VAR (out) parameter, so it counts
// as a definition rather than a use; a call to a procedure declared in
// this unit may assign any of the unit's variables through the shared
// frame, so it havocs the must-init state.
func (g *cfg) call(fun *ast.Designator, args []ast.Expr) {
	g.desigUses(fun)
	for _, a := range args {
		if d, ok := a.(*ast.Designator); ok && len(d.Sels) == 0 {
			if _, tracked := g.varIdx[d.Head.Text]; tracked {
				g.def(d.Head.Text)
				continue
			}
		}
		g.uses(a)
	}
	if fun != nil && len(fun.Sels) == 0 && g.procs[fun.Head.Text] {
		g.havoc()
	}
}

func (g *cfg) stmts(l *ast.StmtList) {
	if l == nil {
		return
	}
	for _, s := range l.Stmts {
		g.stmt(s)
	}
}

func (g *cfg) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		g.uses(s.RHS)
		if s.LHS != nil {
			for _, sel := range s.LHS.Sels {
				if ix, ok := sel.(*ast.IndexSel); ok {
					for _, e := range ix.Indexes {
						g.uses(e)
					}
				}
			}
			// Assigning through selectors still requires the whole to
			// have been initialized, but component tracking is out of
			// scope; treat any assignment to the head as defining it.
			g.def(s.LHS.Head.Text)
		}
	case *ast.CallStmt:
		g.call(s.Proc, s.Args)
	case *ast.IfStmt:
		g.uses(s.Cond)
		prev := g.cur // block holding the previous condition
		join := g.newBlock()
		then := g.newBlock()
		g.edge(prev, then)
		g.cur = then
		g.stmts(s.Then)
		g.edge(g.cur, join)
		for _, e := range s.Elsifs {
			cond := g.newBlock()
			g.edge(prev, cond)
			g.cur = cond
			g.uses(e.Cond)
			arm := g.newBlock()
			g.edge(cond, arm)
			g.cur = arm
			g.stmts(e.Then)
			g.edge(g.cur, join)
			prev = cond
		}
		if s.Else != nil {
			els := g.newBlock()
			g.edge(prev, els)
			g.cur = els
			g.stmts(s.Else)
			g.edge(g.cur, join)
		} else {
			g.edge(prev, join)
		}
		g.cur = join
	case *ast.CaseStmt:
		g.uses(s.Expr)
		head := g.cur
		join := g.newBlock()
		for _, arm := range s.Arms {
			// Case labels are constant expressions — no tracked reads.
			ab := g.newBlock()
			g.edge(head, ab)
			g.cur = ab
			g.stmts(arm.Body)
			g.edge(g.cur, join)
		}
		if s.Else != nil {
			eb := g.newBlock()
			g.edge(head, eb)
			g.cur = eb
			g.stmts(s.Else)
			g.edge(g.cur, join)
		}
		// Without ELSE an unmatched selector halts the program, so the
		// only paths to join run through the arms.
		g.cur = join
	case *ast.WhileStmt:
		cond := g.newBlock()
		g.edge(g.cur, cond)
		g.cur = cond
		g.uses(s.Cond)
		body := g.newBlock()
		after := g.newBlock()
		g.edge(cond, body)
		g.edge(cond, after)
		g.cur = body
		g.stmts(s.Body)
		g.edge(g.cur, cond)
		g.cur = after
	case *ast.RepeatStmt:
		body := g.newBlock()
		g.edge(g.cur, body)
		g.cur = body
		g.stmts(s.Body)
		g.uses(s.Cond) // evaluated wherever the body ends
		after := g.newBlock()
		g.edge(g.cur, body)
		g.edge(g.cur, after)
		g.cur = after
	case *ast.LoopStmt:
		body := g.newBlock()
		g.edge(g.cur, body)
		after := g.newBlock()
		g.loops = append(g.loops, after)
		g.cur = body
		g.stmts(s.Body)
		g.edge(g.cur, body)
		g.loops = g.loops[:len(g.loops)-1]
		g.cur = after
	case *ast.ExitStmt:
		if n := len(g.loops); n > 0 {
			g.edge(g.cur, g.loops[n-1])
		}
		g.cur = nil
	case *ast.ForStmt:
		g.uses(s.From)
		g.uses(s.To)
		g.uses(s.By)
		g.def(s.Var.Text)
		head := g.cur
		body := g.newBlock()
		after := g.newBlock()
		g.edge(head, body)
		g.edge(head, after) // zero iterations
		g.cur = body
		g.stmts(s.Body)
		g.edge(g.cur, body)
		g.edge(g.cur, after)
		g.cur = after
	case *ast.WithStmt:
		g.desigUses(s.Rec)
		g.havoc()
		g.stmts(s.Body)
	case *ast.ReturnStmt:
		g.uses(s.Expr)
		g.cur = nil
	case *ast.RaiseStmt:
		g.cur = nil
	case *ast.TryStmt:
		entry := g.cur
		join := g.newBlock()
		body := g.newBlock()
		g.edge(entry, body)
		g.cur = body
		g.stmts(s.Body)
		g.edge(g.cur, join)
		for _, h := range s.Handlers {
			hb := g.newBlock()
			g.edge(entry, hb) // an exception may strike before any assignment
			g.cur = hb
			g.stmts(h.Body)
			g.edge(g.cur, join)
		}
		if s.Else != nil {
			eb := g.newBlock()
			g.edge(entry, eb)
			g.cur = eb
			g.stmts(s.Else)
			g.edge(g.cur, join)
		}
		g.cur = join
		g.stmts(s.Finally)
	case *ast.LockStmt:
		g.uses(s.Mutex)
		g.stmts(s.Body)
	}
}

// transfer applies a block's actions to st, invoking onUninit for each
// read of a variable not must-initialized at that point.
func (g *cfg) transfer(b *cblock, st bitset, onUninit func(action)) {
	for _, a := range b.acts {
		switch a.kind {
		case actUse:
			if !st.get(a.v) && onUninit != nil {
				onUninit(a)
			}
		case actDef:
			st.set(a.v)
		case actHavoc:
			st.setAll()
		}
	}
}

// solve runs the must-initialize dataflow to fixpoint, then reports
// the earliest possibly-uninitialized use of each tracked variable.
// Unreachable blocks keep the all-initialized top state and so report
// nothing.
func (g *cfg) solve(report func(name string, pos token.Pos)) {
	nv := len(g.vars)
	if nv == 0 || len(g.blocks) == 0 {
		return
	}
	for _, b := range g.blocks {
		b.in = newBitset(nv)
		b.in.setAll()
	}
	g.entry.in = newBitset(nv) // nothing initialized on entry
	g.entry.seen = true
	work := []*cblock{g.entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := b.in.clone()
		g.transfer(b, out, nil)
		for _, s := range b.succs {
			first := !s.seen
			s.seen = true
			if s.in.and(out) || first {
				work = append(work, s)
			}
		}
	}
	// Earliest offending use per variable, in declaration order (the
	// caller's findings are globally sorted afterwards anyway).
	first := make([]token.Pos, nv)
	has := make([]bool, nv)
	for _, b := range g.blocks {
		if !b.seen {
			continue
		}
		st := b.in.clone()
		g.transfer(b, st, func(a action) {
			if !has[a.v] || a.pos.Before(first[a.v]) {
				has[a.v] = true
				first[a.v] = a.pos
			}
		})
	}
	for i := range g.vars {
		if has[i] {
			report(g.vars[i].Text, first[i])
		}
	}
}
