package tokq_test

import (
	"sync"
	"testing"

	"m2cc/internal/event"
	"m2cc/internal/token"
	"m2cc/internal/tokq"
)

// fill appends n identifier tokens plus an EOF, then closes.
func fill(q *tokq.Queue, n int) {
	for i := 0; i < n; i++ {
		q.Append(token.Token{Kind: token.Ident, Text: "x"})
	}
	q.Append(token.Token{Kind: token.EOF})
	q.Close()
}

func TestReadBackAcrossBlocks(t *testing.T) {
	q := tokq.New(4) // tiny blocks force boundary crossings
	go fill(q, 10)
	r := q.NewReader(nil)
	for i := 0; i < 10; i++ {
		if got := r.Next(); got.Kind != token.Ident {
			t.Fatalf("token %d: %v", i, got)
		}
	}
	if got := r.Next(); got.Kind != token.EOF {
		t.Fatalf("want EOF, got %v", got)
	}
	// EOF repeats forever.
	if got := r.Next(); got.Kind != token.EOF {
		t.Fatalf("EOF must repeat, got %v", got)
	}
}

func TestMultipleIndependentReaders(t *testing.T) {
	q := tokq.New(3)
	go fill(q, 7)
	a, b := q.NewReader(nil), q.NewReader(nil)
	for i := 0; i < 3; i++ {
		a.Next()
	}
	// b starts from the beginning regardless of a's position.
	count := 0
	for b.Next().Kind != token.EOF {
		count++
	}
	if count != 7 {
		t.Fatalf("reader b saw %d tokens, want 7", count)
	}
}

func TestPeekNDoesNotConsume(t *testing.T) {
	q := tokq.New(2)
	q.Append(token.Token{Kind: token.PROCEDURE})
	q.Append(token.Token{Kind: token.Ident, Text: "f"})
	q.Append(token.Token{Kind: token.Semicolon})
	q.Append(token.Token{Kind: token.EOF})
	q.Close()
	r := q.NewReader(nil)
	if r.PeekN(2).Text != "f" {
		t.Fatal("PeekN(2) wrong")
	}
	if r.Peek().Kind != token.PROCEDURE {
		t.Fatal("Peek must not consume")
	}
	if r.Next().Kind != token.PROCEDURE || r.Next().Text != "f" {
		t.Fatal("Next order broken after peeks")
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	q := tokq.New(8)
	const n = 10000
	go fill(q, n)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := q.NewReader(nil)
			count := 0
			for r.Next().Kind != token.EOF {
				count++
			}
			if count != n {
				t.Errorf("saw %d tokens, want %d", count, n)
			}
		}()
	}
	wg.Wait()
}

func TestFlushMakesPartialBlockReadable(t *testing.T) {
	q := tokq.New(256)
	q.Append(token.Token{Kind: token.Ident, Text: "a"})
	q.Append(token.Token{Kind: token.Ident, Text: "b"})
	q.Flush()
	r := q.NewReader(nil)
	// Without the flush these reads would block (block size 256).
	if r.Next().Text != "a" || r.Next().Text != "b" {
		t.Fatal("flushed tokens must be readable immediately")
	}
	// The queue still accepts appends after a flush.
	q.Append(token.Token{Kind: token.EOF})
	q.Close()
	if r.Next().Kind != token.EOF {
		t.Fatal("append after flush lost")
	}
}

func TestLenCountsAllTokens(t *testing.T) {
	q := tokq.New(4)
	fill(q, 9)
	if got := q.Len(); got != 10 { // 9 idents + EOF
		t.Fatalf("Len = %d, want 10", got)
	}
	if !q.Closed() {
		t.Fatal("queue must report closed")
	}
}

func TestCloseWithoutTokens(t *testing.T) {
	q := tokq.New(4)
	q.Close()
	r := q.NewReader(nil)
	if got := r.Next(); got.Kind != token.EOF {
		t.Fatalf("empty closed queue must yield EOF, got %v", got)
	}
}

// TestWaitHookSeesEveryBlock checks the schedule-independence property
// the trace recorder relies on: the reader invokes its wait function
// once per block acquisition, whether or not the block event had
// already fired.
func TestWaitHookSeesEveryBlock(t *testing.T) {
	q := tokq.New(2)
	fill(q, 5) // 6 tokens in blocks of 2 → 3 blocks
	waits := 0
	r := q.NewReader(func(e *event.Event) {
		waits++
		e.Wait()
	})
	for r.Next().Kind != token.EOF {
	}
	if waits != 3 {
		t.Fatalf("wait hook invoked %d times, want once per block (3)", waits)
	}
}

func TestAppendAfterCloseIsSafeNoOp(t *testing.T) {
	q := tokq.New(4)
	if !q.Append(token.Token{Kind: token.Ident, Text: "a"}) {
		t.Fatal("Append before Close must be accepted")
	}
	q.Append(token.Token{Kind: token.EOF})
	q.Close()
	if q.Append(token.Token{Kind: token.Ident, Text: "late"}) {
		t.Fatal("Append after Close must report rejection")
	}
	if got := q.Len(); got != 2 {
		t.Fatalf("post-Close Append changed the queue: len %d, want 2", got)
	}
	// A recovered producer's cleanup path may Close again and keep
	// appending; everything must stay a quiet no-op.
	q.Close()
	if q.Append(token.Token{Kind: token.EOF}) {
		t.Fatal("second post-Close Append accepted")
	}
	r := q.NewReader(nil)
	if r.Next().Kind != token.Ident || r.Next().Kind != token.EOF {
		t.Fatal("queue contents corrupted by post-Close Appends")
	}
}

func TestRetainDetachRecycles(t *testing.T) {
	// Compile-shaped lifecycle: declare readers, produce, close, read,
	// detach.  The blocks go back to the pool; a second queue built
	// right after must still deliver its own tokens intact.
	for round := 0; round < 3; round++ {
		q := tokq.New(4)
		q.Retain(2)
		go fill(q, 9)
		a, b := q.NewReader(nil), q.NewReader(nil)
		na, nb := 0, 0
		for a.Next().Kind != token.EOF {
			na++
		}
		a.Detach()
		a.Detach() // idempotent
		for b.Next().Kind != token.EOF {
			nb++
		}
		b.Detach()
		if na != 9 || nb != 9 {
			t.Fatalf("round %d: saw %d/%d tokens, want 9/9", round, na, nb)
		}
	}
}

// BenchmarkAppendRead measures the producer→consumer hot path: one
// queue per iteration, filled and drained, with the Retain/Detach
// lifecycle armed so block storage recycles through the pool.  The
// -benchmem allocs/op figure is the witness for the pooled-allocation
// claim (each iteration would otherwise allocate every block's token
// array afresh).
func BenchmarkAppendRead(b *testing.B) {
	const tokens = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := tokq.New(0)
		q.Retain(1)
		for j := 0; j < tokens; j++ {
			q.Append(token.Token{Kind: token.Ident, Text: "x"})
		}
		q.Append(token.Token{Kind: token.EOF})
		q.Close()
		r := q.NewReader(nil)
		for r.Next().Kind != token.EOF {
		}
		r.Detach()
	}
}

// BenchmarkAppendReadNoPool is the same workload without Retain/Detach:
// recycling never arms, so every block's token storage is allocated
// fresh.  The gap to BenchmarkAppendRead is the pool's contribution.
func BenchmarkAppendReadNoPool(b *testing.B) {
	const tokens = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := tokq.New(0)
		for j := 0; j < tokens; j++ {
			q.Append(token.Token{Kind: token.Ident, Text: "x"})
		}
		q.Append(token.Token{Kind: token.EOF})
		q.Close()
		r := q.NewReader(nil)
		for r.Next().Kind != token.EOF {
		}
	}
}
