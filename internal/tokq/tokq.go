// Package tokq implements the lexical token queues that connect producer
// tasks (Lexor, Splitter) to consumer tasks (Splitter, Importer, parsers).
//
// Per Wortman & Junkin §2.3.1: "the Splitter task and the Lexor task of a
// main module stream communicate via a lexical token queue.  The elements
// in this queue are blocks of tokens.  Each block is associated with one
// event.  When the Lexor fills a token block, the block's event is
// signaled, indicating to the Splitter that it now may begin to read the
// tokens of that block."
//
// A Queue is append-only and supports any number of independent Readers
// (the Importer and the Splitter both scan the main module's queue).
// Waits on block events are *barrier* events (§2.3.3): the consumer's
// worker is not rescheduled, it simply waits, which is deadlock-free
// because token consumers are only started once their producers have
// begun and producers never block.
//
// Synchronization is block-granular, not token-granular.  The producer
// owns the open tail block and appends to it without a lock; readers
// never touch a block's tokens before its Ready event fires, and a block
// is frozen from the moment Ready fires (full, flushed, or closed), so
// the event's fire/wait pair is the only happens-before edge needed.
// The queue mutex is taken once per block — on publication, and by each
// reader on block acquisition — instead of once per token.
package tokq

import (
	"sync"
	"sync/atomic"

	"m2cc/internal/event"
	"m2cc/internal/token"
)

// DefaultBlockSize is the number of tokens per block.  The value trades
// pipelining latency (smaller blocks let consumers start sooner) against
// event-signaling overhead; 256 matches the granularity the paper's
// measurements found cheap enough that barrier delays were "quite small".
const DefaultBlockSize = 256

// Block is one unit of the queue: a slice of tokens plus the event that
// its producer fires when the block is complete and readable.
type Block struct {
	Toks  []token.Token
	Ready *event.Event
}

// blockPool recycles Block structs and their token storage across
// compilations.  Ready events are never reused: the observability layer
// keys its bookkeeping by *event.Event identity, so a recycled block
// always gets a fresh event (events are small; the win is the token
// array, blockSize × sizeof(Token) per block).
var blockPool sync.Pool

// newBlock returns a block with a fresh Ready event and token storage of
// at least the given capacity, reusing pooled storage when possible.
func newBlock(size int) *Block {
	if v := blockPool.Get(); v != nil {
		b := v.(*Block)
		if cap(b.Toks) >= size {
			b.Toks = b.Toks[:0]
			b.Ready = event.New()
			return b
		}
	}
	return &Block{Toks: make([]token.Token, 0, size), Ready: event.New()}
}

// Queue is a block-granularity token stream with one producer and many
// readers.  The zero value is not ready; use New.
type Queue struct {
	blockSize int
	fire      func(*event.Event) // producer-side fire hook (instrumentation)

	// open is the producer-owned unsealed tail block (also the last
	// element of blocks).  Only the producer reads or writes it, and
	// readers wait on its Ready event before touching its tokens, so no
	// lock covers the per-token append.
	open *Block

	closed  atomic.Bool  // set under mu; read lock-free by Append's no-op guard
	readers atomic.Int32 // Retain-declared readers not yet detached
	managed atomic.Bool  // Retain was called: block recycling is armed

	mu     sync.Mutex // guards: blocks, grown (swapped under it); closed's false→true transition
	blocks []*Block
	grown  *event.Event // fired (and replaced) when a block is added or the queue closes
}

// New returns an empty queue with the given block size (<= 0 selects
// DefaultBlockSize).
func New(blockSize int) *Queue {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	q := &Queue{blockSize: blockSize, grown: event.New()}
	q.fire = func(e *event.Event) { e.Fire() } // vet:allowfire default hook; SetFireHook swaps in FireEvent
	return q
}

// SetFireHook routes every event fire through f, so the producing task
// can stamp the fire with its current work-unit offset for the trace.
// Must be set before the first Append and only by the producer.
func (q *Queue) SetFireHook(f func(*event.Event)) { q.fire = f }

// Retain declares n future readers.  Once every declared reader has
// called Detach and the queue is closed, the queue's blocks are returned
// to the package block pool for the next compilation to reuse.  The
// spawning driver must declare every reader it will ever create before
// the count can reach zero; queues that never Retain simply skip
// recycling.  A late reader of a recycled queue degrades safely (it sees
// an empty closed stream and reads EOF), but gets no tokens — Retain
// counts must cover all readers.
func (q *Queue) Retain(n int) {
	q.readers.Add(int32(n))
	q.managed.Store(true)
}

// maybeRecycle returns all blocks to the pool once the queue is closed
// and the last declared reader has detached.
func (q *Queue) maybeRecycle() {
	if !q.managed.Load() || !q.closed.Load() || q.readers.Load() != 0 {
		return
	}
	q.mu.Lock()
	blocks := q.blocks
	q.blocks = nil
	q.mu.Unlock()
	for _, b := range blocks {
		b.Ready = nil // events are never reused (obs identity); let GC take them
		b.Toks = b.Toks[:0]
		blockPool.Put(b)
	}
}

// Append adds one token produced by the lexer or splitter and reports
// whether it was accepted.  When the current block fills, its Ready
// event fires and a new block opens.  Append must be called from a
// single producer task — except after Close, when it is a safe no-op
// returning false: under panic isolation a recovered producer's
// cleanup can race the closing of a queue another path already sealed,
// and that race must not take down the compilation.
func (q *Queue) Append(t token.Token) bool {
	if q.closed.Load() {
		return false
	}
	b := q.open
	if b == nil {
		b = newBlock(q.blockSize)
		q.mu.Lock()
		if q.closed.Load() {
			// Lost the race against a concurrent sealing path; drop the
			// token as the contract requires.
			q.mu.Unlock()
			return false
		}
		q.open = b
		q.blocks = append(q.blocks, b)
		grown := q.grown
		q.grown = event.New()
		q.mu.Unlock()
		q.fire(grown)
	}
	b.Toks = append(b.Toks, t)
	if len(b.Toks) == q.blockSize {
		// Seal the full block: freeze-then-fire is the publication edge
		// readers rely on.
		q.open = nil
		q.fire(b.Ready)
	}
	return true
}

// Flush fires the current partial block's event so consumers can read
// everything appended so far without waiting for the block to fill.
// The splitter flushes after each procedure heading and body marker,
// keeping the main module parser (and through it the heading events
// that release procedure streams, §2.4) flowing at heading granularity
// rather than block granularity.
func (q *Queue) Flush() {
	b := q.open
	if b == nil || len(b.Toks) == 0 {
		return
	}
	// Seal the block: the next Append starts a new one.
	q.open = nil
	q.fire(b.Ready)
}

// Close marks the end of the token stream.  The final partial block's
// event fires so waiting readers drain it.  The producer must append a
// token.EOF token before closing; Readers return that EOF forever after.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed.Load() {
		q.mu.Unlock()
		return
	}
	q.closed.Store(true)
	grown := q.grown
	q.mu.Unlock()
	if b := q.open; b != nil {
		q.open = nil
		q.fire(b.Ready)
	}
	q.fire(grown)
	q.maybeRecycle()
}

// Closed reports whether the producer has closed the queue.
func (q *Queue) Closed() bool { return q.closed.Load() }

// Len returns the total number of tokens appended so far.  Intended for
// statistics once the queue is closed.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, b := range q.blocks {
		n += len(b.Toks)
	}
	return n
}

// state returns (block i if it exists, whether it exists, growth event,
// closed) under the lock.
func (q *Queue) state(i int) (b *Block, ok bool, grown *event.Event, closed bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if i < len(q.blocks) {
		return q.blocks[i], true, nil, q.closed.Load()
	}
	return nil, false, q.grown, q.closed.Load()
}

// WaitFunc performs a barrier wait on an event.  The scheduler supplies
// an instrumented implementation so waits are attributed to the running
// task; the default simply blocks.
type WaitFunc func(*event.Event)

// Reader is an independent cursor over a Queue.  Each consumer task owns
// one Reader; Readers are not safe for concurrent use (but distinct
// Readers over one Queue are).
type Reader struct {
	q    *Queue
	wait WaitFunc

	cur      *Block // acquired block (Ready fired; tokens frozen)
	blk      int
	off      int
	buf      []token.Token // lookahead of already-read tokens
	sawEOF   token.Token
	atEOF    bool
	detached bool
}

// NewReader returns a reader positioned at the start of q.  wait may be
// nil for a plain blocking wait.
func (q *Queue) NewReader(wait WaitFunc) *Reader {
	if wait == nil {
		wait = func(e *event.Event) { e.Wait() }
	}
	return &Reader{q: q, wait: wait}
}

// Detach releases the reader's claim on the queue's blocks.  The owning
// task must call it (typically deferred) when it is done reading; after
// the queue closes and its last declared reader detaches, the blocks
// are recycled.  The reader must not be used again.  Detach on an
// undeclared (never-Retained) queue is a harmless no-op.
func (r *Reader) Detach() {
	if r == nil || r.detached {
		return
	}
	r.detached = true
	r.cur = nil
	if r.q.managed.Load() && r.q.readers.Add(-1) == 0 {
		r.q.maybeRecycle()
	}
}

// fetch pulls the next token from the queue, performing barrier waits as
// needed.  After the stream ends it returns the EOF token indefinitely.
// The acquired block is cached on the reader, so the per-token path is
// a bounds check and an index — the queue lock is taken once per block.
func (r *Reader) fetch() token.Token {
	if r.atEOF {
		return r.sawEOF
	}
	for {
		if b := r.cur; b != nil {
			if r.off < len(b.Toks) {
				t := b.Toks[r.off]
				r.off++
				if t.Kind == token.EOF {
					r.atEOF = true
					r.sawEOF = t
				}
				return t
			}
			// Block exhausted; move on.  A block is only readable once
			// Ready fired, and after that its Toks never change.
			r.cur = nil
			r.blk++
			r.off = 0
		}
		b, ok, grown, closed := r.q.state(r.blk)
		if ok {
			// Acquire the block: the wait function records the
			// dependency (and blocks only if the block is not ready).
			r.wait(b.Ready)
			r.cur = b
			continue
		}
		if closed {
			// Producer closed without an explicit EOF token (defensive;
			// lexers always append one).
			r.atEOF = true
			r.sawEOF = token.Token{Kind: token.EOF}
			return r.sawEOF
		}
		r.wait(grown)
	}
}

// Next returns the next token, advancing the reader.
func (r *Reader) Next() token.Token {
	if len(r.buf) > 0 {
		t := r.buf[0]
		copy(r.buf, r.buf[1:])
		r.buf = r.buf[:len(r.buf)-1]
		return t
	}
	return r.fetch()
}

// Peek returns the next token without consuming it.
func (r *Reader) Peek() token.Token { return r.PeekN(1) }

// PeekN returns the n-th upcoming token (1-based) without consuming
// anything.  This is the "small amount of token stream lookahead"
// (§2.1) the splitter needs to classify PROCEDURE tokens.
func (r *Reader) PeekN(n int) token.Token {
	for len(r.buf) < n {
		r.buf = append(r.buf, r.fetch())
	}
	return r.buf[n-1]
}
