// Package tokq implements the lexical token queues that connect producer
// tasks (Lexor, Splitter) to consumer tasks (Splitter, Importer, parsers).
//
// Per Wortman & Junkin §2.3.1: "the Splitter task and the Lexor task of a
// main module stream communicate via a lexical token queue.  The elements
// in this queue are blocks of tokens.  Each block is associated with one
// event.  When the Lexor fills a token block, the block's event is
// signaled, indicating to the Splitter that it now may begin to read the
// tokens of that block."
//
// A Queue is append-only and supports any number of independent Readers
// (the Importer and the Splitter both scan the main module's queue).
// Waits on block events are *barrier* events (§2.3.3): the consumer's
// worker is not rescheduled, it simply waits, which is deadlock-free
// because token consumers are only started once their producers have
// begun and producers never block.
package tokq

import (
	"sync"

	"m2cc/internal/event"
	"m2cc/internal/token"
)

// DefaultBlockSize is the number of tokens per block.  The value trades
// pipelining latency (smaller blocks let consumers start sooner) against
// event-signaling overhead; 256 matches the granularity the paper's
// measurements found cheap enough that barrier delays were "quite small".
const DefaultBlockSize = 256

// Block is one unit of the queue: a slice of tokens plus the event that
// its producer fires when the block is complete and readable.
type Block struct {
	Toks  []token.Token
	Ready *event.Event
}

// Queue is a block-granularity token stream with one producer and many
// readers.  The zero value is not ready; use New.
type Queue struct {
	blockSize int
	fire      func(*event.Event) // producer-side fire hook (instrumentation)

	mu     sync.Mutex // guards: blocks, grown (swapped under it), closed
	blocks []*Block
	grown  *event.Event // fired (and replaced) when a block is added or the queue closes
	closed bool
}

// New returns an empty queue with the given block size (<= 0 selects
// DefaultBlockSize).
func New(blockSize int) *Queue {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	q := &Queue{blockSize: blockSize, grown: event.New()}
	q.fire = func(e *event.Event) { e.Fire() } // vet:allowfire default hook; SetFireHook swaps in FireEvent
	return q
}

// SetFireHook routes every event fire through f, so the producing task
// can stamp the fire with its current work-unit offset for the trace.
// Must be set before the first Append and only by the producer.
func (q *Queue) SetFireHook(f func(*event.Event)) { q.fire = f }

// Append adds one token produced by the lexer or splitter and reports
// whether it was accepted.  When the current block fills, its Ready
// event fires and a new block opens.  Append must be called from a
// single producer task — except after Close, when it is a safe no-op
// returning false: under panic isolation a recovered producer's
// cleanup can race the closing of a queue another path already sealed,
// and that race must not take down the compilation.
func (q *Queue) Append(t token.Token) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	n := len(q.blocks)
	if n == 0 || len(q.blocks[n-1].Toks) == q.blockSize {
		b := &Block{Toks: make([]token.Token, 0, q.blockSize), Ready: event.New()}
		q.blocks = append(q.blocks, b)
		grown := q.grown
		q.grown = event.New()
		n++
		q.mu.Unlock()
		q.fire(grown)
		q.mu.Lock()
	}
	b := q.blocks[n-1]
	b.Toks = append(b.Toks, t)
	full := len(b.Toks) == q.blockSize
	q.mu.Unlock()
	if full {
		q.fire(b.Ready)
	}
	return true
}

// Flush fires the current partial block's event so consumers can read
// everything appended so far without waiting for the block to fill.
// The splitter flushes after each procedure heading and body marker,
// keeping the main module parser (and through it the heading events
// that release procedure streams, §2.4) flowing at heading granularity
// rather than block granularity.
func (q *Queue) Flush() {
	q.mu.Lock()
	var last *Block
	if n := len(q.blocks); n > 0 && len(q.blocks[n-1].Toks) > 0 {
		last = q.blocks[n-1]
		// Seal the block: the next Append starts a new one.
		if len(last.Toks) < q.blockSize {
			q.blocks = append(q.blocks, &Block{
				Toks:  make([]token.Token, 0, q.blockSize),
				Ready: event.New(),
			})
			grown := q.grown
			q.grown = event.New()
			q.mu.Unlock()
			q.fire(last.Ready)
			q.fire(grown)
			return
		}
	}
	q.mu.Unlock()
	if last != nil {
		q.fire(last.Ready)
	}
}

// Close marks the end of the token stream.  The final partial block's
// event fires so waiting readers drain it.  The producer must append a
// token.EOF token before closing; Readers return that EOF forever after.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	var last *Block
	if n := len(q.blocks); n > 0 {
		last = q.blocks[n-1]
	}
	grown := q.grown
	q.mu.Unlock()
	if last != nil {
		q.fire(last.Ready)
	}
	q.fire(grown)
}

// Closed reports whether the producer has closed the queue.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Len returns the total number of tokens appended so far.  Intended for
// statistics once the queue is closed.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, b := range q.blocks {
		n += len(b.Toks)
	}
	return n
}

// state returns (block i if it exists, whether it exists, growth event,
// closed) under the lock.
func (q *Queue) state(i int) (b *Block, ok bool, grown *event.Event, closed bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if i < len(q.blocks) {
		return q.blocks[i], true, nil, q.closed
	}
	return nil, false, q.grown, q.closed
}

// WaitFunc performs a barrier wait on an event.  The scheduler supplies
// an instrumented implementation so waits are attributed to the running
// task; the default simply blocks.
type WaitFunc func(*event.Event)

// Reader is an independent cursor over a Queue.  Each consumer task owns
// one Reader; Readers are not safe for concurrent use (but distinct
// Readers over one Queue are).
type Reader struct {
	q    *Queue
	wait WaitFunc

	blk    int
	off    int
	buf    []token.Token // lookahead of already-read tokens
	sawEOF token.Token
	atEOF  bool
}

// NewReader returns a reader positioned at the start of q.  wait may be
// nil for a plain blocking wait.
func (q *Queue) NewReader(wait WaitFunc) *Reader {
	if wait == nil {
		wait = func(e *event.Event) { e.Wait() }
	}
	return &Reader{q: q, wait: wait}
}

// fetch pulls the next token from the queue, performing barrier waits as
// needed.  After the stream ends it returns the EOF token indefinitely.
func (r *Reader) fetch() token.Token {
	if r.atEOF {
		return r.sawEOF
	}
	for {
		b, ok, grown, closed := r.q.state(r.blk)
		if ok {
			// Acquire the block: the wait function records the
			// dependency (and blocks only if the block is not ready).
			if r.off == 0 {
				r.wait(b.Ready)
			}
			if r.off < len(b.Toks) {
				t := b.Toks[r.off]
				r.off++
				if t.Kind == token.EOF {
					r.atEOF = true
					r.sawEOF = t
				}
				return t
			}
			// Block exhausted; move on.  A block is only readable once
			// Ready fired, and after that its Toks never change.
			r.blk++
			r.off = 0
			continue
		}
		if closed {
			// Producer closed without an explicit EOF token (defensive;
			// lexers always append one).
			r.atEOF = true
			r.sawEOF = token.Token{Kind: token.EOF}
			return r.sawEOF
		}
		r.wait(grown)
	}
}

// Next returns the next token, advancing the reader.
func (r *Reader) Next() token.Token {
	if len(r.buf) > 0 {
		t := r.buf[0]
		copy(r.buf, r.buf[1:])
		r.buf = r.buf[:len(r.buf)-1]
		return t
	}
	return r.fetch()
}

// Peek returns the next token without consuming it.
func (r *Reader) Peek() token.Token { return r.PeekN(1) }

// PeekN returns the n-th upcoming token (1-based) without consuming
// anything.  This is the "small amount of token stream lookahead"
// (§2.1) the splitter needs to classify PROCEDURE tokens.
func (r *Reader) PeekN(n int) token.Token {
	for len(r.buf) < n {
		r.buf = append(r.buf, r.fetch())
	}
	return r.buf[n-1]
}
