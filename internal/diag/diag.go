// Package diag collects compiler diagnostics.
//
// In a concurrent compilation, errors are produced by many tasks in a
// nondeterministic order.  Each stream appends to a shared Bag; at the
// end of compilation the bag is sorted by source position so the user
// (and the differential tests against the sequential compiler) see a
// stable report regardless of schedule.
package diag

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"m2cc/internal/token"
)

// Severity of a diagnostic.
type Severity uint8

const (
	// Error marks a diagnostic that makes the compilation fail.
	Error Severity = iota
	// Warning marks a diagnostic that does not fail the compilation.
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one message anchored at a source position.  File carries
// the human-readable file label (e.g. "Sort.mod") so messages are
// self-contained after streams are merged.  End, when valid, extends the
// anchor to a full line+column span; a zero End means "point diagnostic"
// and renders exactly as before spans existed.  Code, when set, names
// the finding family (e.g. "uninit", "conc-deadlock") — the stable key
// m2lint's -enable/-disable filters and the daemon's per-family counts
// select on; compiler errors carry no code and render unchanged.
type Diagnostic struct {
	Sev  Severity
	Pos  token.Pos
	End  token.Pos // exclusive end of the span; zero = point diagnostic
	File string
	Msg  string
	Code string // finding family, "" for plain compiler diagnostics
}

func (d Diagnostic) String() string {
	loc := d.Pos.String()
	if d.End.IsValid() && d.End != d.Pos {
		loc = fmt.Sprintf("%s-%s", d.Pos, d.End)
	}
	msg := d.Msg
	if d.Code != "" {
		msg = fmt.Sprintf("%s [%s]", d.Msg, d.Code)
	}
	if d.File == "" {
		return fmt.Sprintf("%s: %s: %s", loc, d.Sev, msg)
	}
	return fmt.Sprintf("%s:%s: %s: %s", d.File, loc, d.Sev, msg)
}

// Bag accumulates diagnostics from concurrent tasks.  The zero value is
// ready to use.
type Bag struct {
	mu     sync.Mutex // guards: diags, errors
	diags  []Diagnostic
	errors int
	limit  int  // 0 = unlimited
	fwd    *Bag // tee target: every add is also forwarded (see Child)
}

// NewBag returns a Bag that stops recording after limit errors
// (0 = unlimited).  The error count keeps increasing past the limit so
// HasErrors stays accurate.
func NewBag(limit int) *Bag { return &Bag{limit: limit} }

// Child returns a tee bag: every diagnostic added to it is recorded
// locally (unlimited) and forwarded to b, so global behavior — error
// counts, the recording limit, the final sorted report — is unchanged
// while the child keeps an isolated per-stream transcript.  The stream
// cache records each procedure stream's diagnostics this way so a
// cached stream can replay them verbatim on a later compilation.
func (b *Bag) Child() *Bag { return &Bag{fwd: b} }

// Recorded returns a snapshot of the diagnostics recorded in this bag,
// in insertion order (the stream cache's payload capture; callers
// wanting the user-facing report use Sorted).
func (b *Bag) Recorded() []Diagnostic {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Diagnostic(nil), b.diags...)
}

// Errorf records an error at pos in the given file.
func (b *Bag) Errorf(file string, pos token.Pos, format string, args ...any) {
	b.add(Diagnostic{Sev: Error, Pos: pos, File: file, Msg: fmt.Sprintf(format, args...)})
}

// Warnf records a warning at pos in the given file.
func (b *Bag) Warnf(file string, pos token.Pos, format string, args ...any) {
	b.add(Diagnostic{Sev: Warning, Pos: pos, File: file, Msg: fmt.Sprintf(format, args...)})
}

// Add records a fully-formed diagnostic (used by producers that carry
// end positions, e.g. the static-analysis checker).
func (b *Bag) Add(d Diagnostic) { b.add(d) }

func (b *Bag) add(d Diagnostic) {
	b.mu.Lock()
	if d.Sev == Error {
		b.errors++
		if b.limit > 0 && b.errors > b.limit {
			b.mu.Unlock()
			if b.fwd != nil {
				b.fwd.add(d)
			}
			return
		}
	}
	b.diags = append(b.diags, d)
	fwd := b.fwd
	b.mu.Unlock()
	if fwd != nil {
		fwd.add(d)
	}
}

// HasErrors reports whether at least one error has been recorded.
func (b *Bag) HasErrors() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.errors > 0
}

// HasFor reports whether any error has been recorded against the given
// file label.  The interface cache uses it to publish only cleanly
// compiled definition modules.
func (b *Bag) HasFor(file string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.diags {
		if d.Sev == Error && d.File == file {
			return true
		}
	}
	return false
}

// ErrorCount returns the number of errors recorded (including any past
// the recording limit).
func (b *Bag) ErrorCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.errors
}

// Sorted returns all diagnostics ordered by (file, position, end,
// severity, message), with exact duplicates collapsed to one.  The
// ordering is total and the dedup deterministic, so concurrent and
// sequential compilations of the same program produce identical reports
// even when two streams independently report the same fact.
func (b *Bag) Sorted() []Diagnostic {
	b.mu.Lock()
	out := make([]Diagnostic, len(b.diags))
	copy(out, b.diags)
	b.mu.Unlock()
	return SortDedup(out)
}

// SortDedup sorts ds in place by (file, position, end, severity,
// message, code) and removes exact duplicates, returning the trimmed
// slice.
func SortDedup(ds []Diagnostic) []Diagnostic {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Pos != ds[j].Pos {
			return ds[i].Pos.Before(ds[j].Pos)
		}
		if ds[i].End != ds[j].End {
			return ds[i].End.Before(ds[j].End)
		}
		if ds[i].Sev != ds[j].Sev {
			return ds[i].Sev < ds[j].Sev
		}
		if ds[i].Msg != ds[j].Msg {
			return ds[i].Msg < ds[j].Msg
		}
		return ds[i].Code < ds[j].Code
	})
	w := 0
	for i, d := range ds {
		if i > 0 && d == ds[w-1] {
			continue
		}
		ds[w] = d
		w++
	}
	return ds[:w]
}

// String renders the sorted diagnostics one per line.
func (b *Bag) String() string {
	var sb strings.Builder
	for _, d := range b.Sorted() {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
