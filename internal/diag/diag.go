// Package diag collects compiler diagnostics.
//
// In a concurrent compilation, errors are produced by many tasks in a
// nondeterministic order.  Each stream appends to a shared Bag; at the
// end of compilation the bag is sorted by source position so the user
// (and the differential tests against the sequential compiler) see a
// stable report regardless of schedule.
package diag

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"m2cc/internal/token"
)

// Severity of a diagnostic.
type Severity uint8

const (
	// Error marks a diagnostic that makes the compilation fail.
	Error Severity = iota
	// Warning marks a diagnostic that does not fail the compilation.
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one message anchored at a source position.  File carries
// the human-readable file label (e.g. "Sort.mod") so messages are
// self-contained after streams are merged.
type Diagnostic struct {
	Sev  Severity
	Pos  token.Pos
	File string
	Msg  string
}

func (d Diagnostic) String() string {
	if d.File == "" {
		return fmt.Sprintf("%s: %s: %s", d.Pos, d.Sev, d.Msg)
	}
	return fmt.Sprintf("%s:%s: %s: %s", d.File, d.Pos, d.Sev, d.Msg)
}

// Bag accumulates diagnostics from concurrent tasks.  The zero value is
// ready to use.
type Bag struct {
	mu     sync.Mutex
	diags  []Diagnostic
	errors int
	limit  int // 0 = unlimited
}

// NewBag returns a Bag that stops recording after limit errors
// (0 = unlimited).  The error count keeps increasing past the limit so
// HasErrors stays accurate.
func NewBag(limit int) *Bag { return &Bag{limit: limit} }

// Errorf records an error at pos in the given file.
func (b *Bag) Errorf(file string, pos token.Pos, format string, args ...any) {
	b.add(Diagnostic{Sev: Error, Pos: pos, File: file, Msg: fmt.Sprintf(format, args...)})
}

// Warnf records a warning at pos in the given file.
func (b *Bag) Warnf(file string, pos token.Pos, format string, args ...any) {
	b.add(Diagnostic{Sev: Warning, Pos: pos, File: file, Msg: fmt.Sprintf(format, args...)})
}

func (b *Bag) add(d Diagnostic) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if d.Sev == Error {
		b.errors++
		if b.limit > 0 && b.errors > b.limit {
			return
		}
	}
	b.diags = append(b.diags, d)
}

// HasErrors reports whether at least one error has been recorded.
func (b *Bag) HasErrors() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.errors > 0
}

// HasFor reports whether any error has been recorded against the given
// file label.  The interface cache uses it to publish only cleanly
// compiled definition modules.
func (b *Bag) HasFor(file string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.diags {
		if d.Sev == Error && d.File == file {
			return true
		}
	}
	return false
}

// ErrorCount returns the number of errors recorded (including any past
// the recording limit).
func (b *Bag) ErrorCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.errors
}

// Sorted returns all diagnostics ordered by (file, position, message).
// The ordering is total, so concurrent and sequential compilations of
// the same program produce identical reports.
func (b *Bag) Sorted() []Diagnostic {
	b.mu.Lock()
	out := make([]Diagnostic, len(b.diags))
	copy(out, b.diags)
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Pos != out[j].Pos {
			return out[i].Pos.Before(out[j].Pos)
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

// String renders the sorted diagnostics one per line.
func (b *Bag) String() string {
	var sb strings.Builder
	for _, d := range b.Sorted() {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
