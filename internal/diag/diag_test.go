package diag_test

import (
	"strings"
	"sync"
	"testing"

	"m2cc/internal/diag"
	"m2cc/internal/token"
)

func TestSortedStableOrder(t *testing.T) {
	b := diag.NewBag(0)
	b.Errorf("b.mod", token.Pos{Line: 5, Col: 1}, "later")
	b.Errorf("a.mod", token.Pos{Line: 9, Col: 9}, "other file")
	b.Errorf("b.mod", token.Pos{Line: 2, Col: 4}, "earlier")
	b.Errorf("b.mod", token.Pos{Line: 2, Col: 4}, "alpha") // same pos: by message
	got := b.String()
	want := "a.mod:9:9: error: other file\n" +
		"b.mod:2:4: error: alpha\n" +
		"b.mod:2:4: error: earlier\n" +
		"b.mod:5:1: error: later\n"
	if got != want {
		t.Errorf("got:\n%swant:\n%s", got, want)
	}
}

func TestErrorLimitKeepsCounting(t *testing.T) {
	b := diag.NewBag(3)
	for i := 0; i < 10; i++ {
		b.Errorf("x", token.Pos{Line: int32(i + 1)}, "e%d", i)
	}
	if got := b.ErrorCount(); got != 10 {
		t.Errorf("ErrorCount = %d, want 10", got)
	}
	if got := len(b.Sorted()); got != 3 {
		t.Errorf("recorded %d, want 3 (the limit)", got)
	}
	if !b.HasErrors() {
		t.Error("HasErrors must be true")
	}
}

func TestWarningsDoNotFail(t *testing.T) {
	b := diag.NewBag(0)
	b.Warnf("x", token.Pos{Line: 1}, "heads up")
	if b.HasErrors() {
		t.Error("warnings must not count as errors")
	}
	if !strings.Contains(b.String(), "warning: heads up") {
		t.Errorf("missing warning in %q", b.String())
	}
}

func TestConcurrentAppends(t *testing.T) {
	b := diag.NewBag(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Errorf("f", token.Pos{Line: int32(g*1000 + i)}, "m")
			}
		}(g)
	}
	wg.Wait()
	if got := b.ErrorCount(); got != 800 {
		t.Errorf("ErrorCount = %d, want 800", got)
	}
}

func TestDiagnosticWithoutFile(t *testing.T) {
	d := diag.Diagnostic{Sev: diag.Error, Pos: token.Pos{Line: 1, Col: 2}, Msg: "boom"}
	if got := d.String(); got != "1:2: error: boom" {
		t.Errorf("got %q", got)
	}
}
