package sim_test

import (
	"testing"

	"m2cc/internal/core"
	"m2cc/internal/ctrace"
	"m2cc/internal/sim"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
	"m2cc/internal/workload"
)

// collectTrace compiles a program with one worker and tracing on.
func collectTrace(t *testing.T, name string, loader *source.MapLoader) *ctrace.Trace {
	t.Helper()
	res := core.Compile(name, loader, core.Options{Workers: 1, Trace: true})
	if res.Failed() {
		t.Fatalf("compile %s failed:\n%s", name, res.Diags)
	}
	if res.Trace == nil {
		t.Fatal("no trace collected")
	}
	return res.Trace
}

func synthTrace(t *testing.T, procs, reps int) *ctrace.Trace {
	loader := source.NewMapLoader()
	workload.GenerateSynth(loader, procs, reps, nil)
	return collectTrace(t, "Synth", loader)
}

func defaultOpts(p int) sim.Options {
	return sim.Options{
		Processors: p, Strategy: symtab.Skeptical,
		LongBeforeShort: true, BoostResolver: true,
	}
}

// TestSimSpeedupMonotone checks the headline property: more simulated
// processors never make the compilation slower, and the synthetic
// best-case module scales close to linearly (Figure 2).
func TestSimSpeedupMonotone(t *testing.T) {
	trace := synthTrace(t, 32, 6)
	base := sim.New(trace, defaultOpts(1)).Run().Makespan
	if base <= 0 {
		t.Fatal("zero makespan")
	}
	prev := 0.0
	for p := 1; p <= 8; p++ {
		r := sim.New(trace, defaultOpts(p)).Run()
		speedup := base / r.Makespan
		t.Logf("P=%d makespan=%.0f speedup=%.2f util=%.2f", p, r.Makespan, speedup, r.Utilization(p))
		if speedup+0.02 < prev {
			t.Errorf("speedup decreased at P=%d: %.3f < %.3f", p, speedup, prev)
		}
		prev = speedup
	}
	r8 := sim.New(trace, defaultOpts(8)).Run()
	if sp := base / r8.Makespan; sp < 5.5 {
		t.Errorf("Synth speedup at P=8 = %.2f, want near-linear (> 5.5)", sp)
	}
}

// TestSimBusContention checks that the Firefly bus model flattens the
// high-P tail without affecting P=1.
func TestSimBusContention(t *testing.T) {
	trace := synthTrace(t, 32, 6)
	o1 := defaultOpts(1)
	o1.Beta = sim.DefaultBeta
	r1 := sim.New(trace, o1).Run()
	r1nb := sim.New(trace, defaultOpts(1)).Run()
	if r1.Makespan != r1nb.Makespan {
		t.Errorf("beta must not affect one processor: %f vs %f", r1.Makespan, r1nb.Makespan)
	}
	o8 := defaultOpts(8)
	o8.Beta = sim.DefaultBeta
	r8 := sim.New(trace, o8).Run()
	r8nb := sim.New(trace, defaultOpts(8)).Run()
	if r8.Makespan <= r8nb.Makespan {
		t.Errorf("bus contention must slow P=8: %f <= %f", r8.Makespan, r8nb.Makespan)
	}
}

// TestSimDeterministic: same trace + options ⇒ identical results.
func TestSimDeterministic(t *testing.T) {
	trace := synthTrace(t, 16, 3)
	a := sim.New(trace, defaultOpts(5)).Run()
	b := sim.New(trace, defaultOpts(5)).Run()
	if a.Makespan != b.Makespan || a.BusyTime != b.BusyTime || a.Blocks != b.Blocks {
		t.Fatalf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}

// TestSimStrategies runs a real import-heavy program under all four
// strategies; every strategy must terminate and Skeptical should not
// be slower than Pessimistic (it strictly reduces waiting).
func TestSimStrategies(t *testing.T) {
	s := workload.GenerateSuite(3, 0.05)
	trace := collectTrace(t, s.Programs[20].Name, s.Loader)
	make2 := map[symtab.Strategy]float64{}
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		o := defaultOpts(8)
		o.Strategy = strat
		r := sim.New(trace, o).Run()
		make2[strat] = r.Makespan
		t.Logf("%s: makespan=%.0f blocks=%d", strat, r.Makespan, r.Blocks)
		if r.Makespan <= 0 {
			t.Errorf("%s: empty makespan", strat)
		}
	}
	if make2[symtab.Skeptical] > make2[symtab.Pessimistic]*1.02 {
		t.Errorf("skeptical (%f) should not be slower than pessimistic (%f)",
			make2[symtab.Skeptical], make2[symtab.Pessimistic])
	}
}

// TestSimTable2Stats: the simulated lookup statistics must cover the
// same row families as the paper's Table 2 and sum to the lookup count.
func TestSimTable2Stats(t *testing.T) {
	s := workload.GenerateSuite(3, 0.05)
	trace := collectTrace(t, s.Programs[25].Name, s.Loader)
	o := defaultOpts(8)
	o.CollectStats = true
	r := sim.New(trace, o).Run()
	if r.Stats == nil {
		t.Fatal("no stats")
	}
	rows := r.Stats.Rows()
	if len(rows) == 0 {
		t.Fatal("empty Table 2")
	}
	var total int64
	seenSelf, seenQual := false, false
	for _, row := range rows {
		total += row.Count
		if !row.Key.Qualified && row.Key.Rel == ctrace.RelSelf {
			seenSelf = true
		}
		if row.Key.Qualified {
			seenQual = true
		}
	}
	if !seenSelf || !seenQual {
		t.Errorf("missing expected row families (self=%v qualified=%v):\n%s",
			seenSelf, seenQual, r.Stats)
	}
	t.Logf("simulated Table 2 at P=8:\n%s", r.Stats)
}

// TestSimTimeline: the timeline must cover every processor's busy time
// and contain the task-kind mix of Figure 7.
func TestSimTimeline(t *testing.T) {
	trace := synthTrace(t, 16, 4)
	o := defaultOpts(4)
	o.CollectTimeline = true
	r := sim.New(trace, o).Run()
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	var sum float64
	kinds := map[ctrace.TaskKind]bool{}
	for _, iv := range r.Timeline {
		if iv.End <= iv.Start {
			t.Fatalf("bad interval %+v", iv)
		}
		if iv.Proc < 0 || iv.Proc >= 4 {
			t.Fatalf("bad processor %d", iv.Proc)
		}
		sum += iv.End - iv.Start
		kinds[iv.Kind] = true
	}
	if diff := sum - r.BusyTime; diff > 1 || diff < -1 {
		t.Errorf("timeline sum %.1f != busy time %.1f", sum, r.BusyTime)
	}
	for _, k := range []ctrace.TaskKind{ctrace.KindLexor, ctrace.KindSplitter, ctrace.KindModParseDecl} {
		if !kinds[k] {
			t.Errorf("timeline missing %s activity", k)
		}
	}
}

// TestUtilizationDegenerateProcessors is the regression test for the
// p <= 0 guard: a nonsense processor count must yield 0, not a
// negative or infinite utilization.
func TestUtilizationDegenerateProcessors(t *testing.T) {
	r := &sim.Result{Makespan: 100, BusyTime: 250}
	for _, p := range []int{0, -1, -8} {
		if u := r.Utilization(p); u != 0 {
			t.Errorf("Utilization(%d) = %v, want 0", p, u)
		}
	}
	if u := r.Utilization(4); u != 250.0/(4*100.0) {
		t.Errorf("Utilization(4) = %v, want %v", u, 250.0/(4*100.0))
	}
	empty := &sim.Result{}
	if u := empty.Utilization(4); u != 0 {
		t.Errorf("empty run Utilization(4) = %v, want 0", u)
	}
}
