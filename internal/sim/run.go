package sim

import (
	"container/heap"

	"m2cc/internal/ctrace"
	"m2cc/internal/symtab"
)

const eps = 1e-9

// Run executes the simulation to completion and returns its result.
func (s *Sim) Run() *Result {
	// Initial tasks: spawn records with no parent, in record order.
	for i := range s.trace.Spawns {
		sp := &s.trace.Spawns[i]
		if sp.Parent != 0 {
			continue
		}
		if ts := s.tasks[sp.Child]; ts != nil {
			s.spawnTask(ts, s.gatesFor(sp.Child, sp.Gates))
		}
	}
	s.remain = len(s.order)
	s.now = s.opts.Startup
	s.busy = s.opts.Startup

	var executing []*proc
	for s.remain > 0 {
		s.dispatch()
		// Snapshot the executing set for this step: processing a
		// segment end may un-stall or release other processors, and
		// those must not be debited work they did not perform.
		executing = executing[:0]
		for _, p := range s.procs {
			if p.task != nil && !p.stalled {
				executing = append(executing, p)
			}
		}
		busy := len(executing)
		if busy == 0 {
			if !s.breakStall() {
				break
			}
			continue
		}
		rate := 1.0
		if s.opts.Beta > 0 && busy > 1 {
			rate = 1.0 / (1.0 + s.opts.Beta*float64(busy-1))
		}
		// Advance to the earliest segment boundary.
		dt := -1.0
		for _, p := range executing {
			d := p.segLeft / rate
			if dt < 0 || d < dt {
				dt = d
			}
		}
		if dt < 0 {
			break
		}
		s.now += dt
		s.busy += float64(busy) * dt
		work := dt * rate
		for _, p := range executing {
			if p.task == nil || p.stalled {
				continue // released or stalled by an earlier segment end
			}
			p.segLeft -= work
			if p.task.extra > 0 {
				p.task.extra -= work
				if p.task.extra < 0 {
					p.task.extra = 0
				}
			} else {
				p.task.progress += work
			}
			if p.segLeft <= eps {
				s.onSegmentEnd(p)
			}
		}
		s.checkWatchers()
	}

	res := &Result{Makespan: s.now, BusyTime: s.busy, Blocks: s.blocks, Stats: s.stats}
	res.Timeline = s.tl
	return res
}

// breakStall handles the no-executing-processor situation.  In healthy
// traces it cannot occur (barrier producers always hold a processor);
// defensively, pending events are force-fired so malformed traces
// terminate.  Returns false when nothing can be done.
func (s *Sim) breakStall() bool {
	if s.ready.Len() > 0 {
		// Processors all stalled on barriers yet tasks are ready: the
		// trace violates the producer-holds-a-slot invariant.  Force
		// the awaited events.
		return s.forceFire()
	}
	return s.forceFire()
}

func (s *Sim) forceFire() bool {
	var evs []ctrace.EventID
	for ev := range s.waiters {
		evs = append(evs, ev)
	}
	for ev := range s.gated {
		evs = append(evs, ev)
	}
	if len(evs) == 0 {
		// Watchers only: wake them unconditionally.
		n := 0
		for id, ws := range s.watchers {
			for _, w := range ws {
				if w.task.state == tsBlocked {
					s.makeReady(w.task)
					n++
				}
			}
			delete(s.watchers, id)
		}
		return n > 0
	}
	for _, ev := range evs {
		s.fire(ev)
	}
	return true
}

// dispatch assigns ready tasks to idle processors in priority order.
func (s *Sim) dispatch() {
	for s.ready.Len() > 0 {
		var free *proc
		for _, p := range s.procs {
			if p.task == nil {
				free = p
				break
			}
		}
		if free == nil {
			return
		}
		ts := heap.Pop(&s.ready).(*taskState)
		ts.state = tsRunning
		ts.proc = free.idx
		free.task = ts
		free.stalled = false
		free.started = s.now
		s.computeSegment(free)
		if free.segLeft <= eps {
			s.onSegmentEnd(free)
		}
	}
}

// release frees a processor, closing its timeline interval.
func (s *Sim) release(p *proc) {
	if s.opts.CollectTimeline && p.task != nil && s.now > p.started+eps {
		s.tl = append(s.tl, Interval{
			Proc: p.idx, Task: p.task.id, Kind: p.task.info.Kind,
			Start: p.started, End: s.now,
		})
	}
	p.task = nil
	p.stalled = false
}

// closeInterval records activity up to now without freeing the
// processor (barrier stalls keep the slot).
func (s *Sim) closeInterval(p *proc) {
	if s.opts.CollectTimeline && p.task != nil && s.now > p.started+eps {
		s.tl = append(s.tl, Interval{
			Proc: p.idx, Task: p.task.id, Kind: p.task.info.Kind,
			Start: p.started, End: s.now,
		})
	}
}

// onSegmentEnd processes the breakpoint a running task just reached.
// It may leave the task running (recomputing the next segment), stall
// the processor (barrier), or release it (handled block / finish).
func (s *Sim) onSegmentEnd(p *proc) {
	ts := p.task
	ts.extra = 0

	if ts.pendingLookup != nil {
		if !s.continueLookup(ts, p) {
			return // blocked again; processor released
		}
	}

	for ts.nextAct < len(ts.actions) {
		a := &ts.actions[ts.nextAct]
		if a.off-ts.progress > eps {
			// Spurious boundary (watcher split): keep executing.
			break
		}
		ts.progress = a.off
		switch a.kind {
		case actFire:
			ts.nextAct++
			s.fire(a.event)
		case actSpawn:
			ts.nextAct++
			if child := s.tasks[a.spawn.Child]; child != nil {
				s.spawnTask(child, s.gatesFor(a.spawn.Child, a.spawn.Gates))
			}
		case actWait:
			ts.nextAct++
			if _, ok := s.fired[a.event]; ok {
				continue
			}
			if !a.barrier {
				// Replayed handled wait (ReplayWaits, obs-exported
				// traces): release the processor like a live DKY wait.
				// No resume cost — the re-search work is already part of
				// the measured task cost.
				s.blockOn(ts, p, a.event, 0)
				return
			}
			// Barrier wait: hold the processor, stop executing (§2.3.3).
			s.closeInterval(p)
			ts.state = tsStalled
			p.stalled = true
			s.waiters[a.event] = append(s.waiters[a.event], ts)
			return
		case actLookup:
			ts.nextAct++
			ts.pendingLookup = a.lookup
			ts.pendingHop = 0
			ts.hopBlocked = false
			if s.opts.Strategy == symtab.Optimistic {
				ts.extra += costOptimisticLookup
			}
			if !s.continueLookup(ts, p) {
				return
			}
			if ts.extra > 0 {
				s.computeSegment(p)
				if p.segLeft > eps {
					return
				}
			}
		case actFinish:
			s.release(p)
			ts.state = tsDone
			s.remain--
			return
		}
	}
	s.computeSegment(p)
	if p.segLeft <= eps && ts.nextAct < len(ts.actions) {
		// Zero-length segment: process immediately (recursion depth is
		// bounded by the action count).
		s.onSegmentEnd(p)
	}
}

// blockOn releases the processor and parks the task until the event
// fires, applying the DKY bookkeeping (§2.3.4: the resolving task is
// boosted to the queue front).
func (s *Sim) blockOn(ts *taskState, p *proc, ev ctrace.EventID, resumeCost float64) {
	s.blocks++
	s.stats.BumpBlock()
	ts.extra = resumeCost
	ts.state = tsBlocked
	s.waiters[ev] = append(s.waiters[ev], ts)
	if s.opts.BoostResolver {
		if prod := s.tasks[s.firerOf[ev]]; prod != nil && prod.heapIdx >= 0 {
			prod.priority = -1 << 62
			heap.Fix(&s.ready, prod.heapIdx)
		}
	}
	s.closeInterval(p)
	p.task = nil
	p.stalled = false
}

// blockOnWatcher parks the task until the producer reaches the given
// offset (the Optimistic per-symbol event).
func (s *Sim) blockOnWatcher(ts *taskState, p *proc, at ctrace.Stamp, resumeCost float64) {
	s.blocks++
	s.stats.BumpBlock()
	ts.extra = resumeCost
	ts.state = tsBlocked
	s.watchers[at.Task] = append(s.watchers[at.Task], watcher{off: at.Offset, task: ts})
	// Split the producer's current segment so the wake is punctual.
	if prod := s.tasks[at.Task]; prod != nil && prod.state == tsRunning {
		pp := s.procs[prod.proc]
		if left := at.Offset - prod.progress; left > eps && prod.extra <= 0 && left < pp.segLeft {
			pp.segLeft = left
		}
	}
	s.closeInterval(p)
	p.task = nil
	p.stalled = false
}

// producerReached reports whether the symbol inserted at the stamp is
// visible at the current simulated time.
func (s *Sim) producerReached(at ctrace.Stamp) bool {
	if at.Task == 0 {
		return true // pre-existing (builtins, parameters copied pre-gate)
	}
	prod := s.tasks[at.Task]
	return prod == nil || prod.state == tsDone || prod.progress+eps >= at.Offset
}

// completionFired reports whether the scope completion event has fired.
func (s *Sim) completionFired(ev ctrace.EventID) bool {
	_, ok := s.fired[ev]
	return ok
}

// continueLookup evaluates the pending lookup from its current hop
// under the configured strategy.  Returns false if the task blocked
// (the processor has been released).
func (s *Sim) continueLookup(ts *taskState, p *proc) bool {
	l := ts.pendingLookup
	for ts.pendingHop < len(l.Hops) {
		h := &l.Hops[ts.pendingHop]
		blocked := ts.hopBlocked
		ts.hopBlocked = false

		if h.Completion == 0 {
			// Self, WITH or builtin scope: never blocks.
			if h.Found {
				s.tally(l, h, false, false)
				ts.pendingLookup = nil
				return true
			}
			ts.pendingHop++
			continue
		}

		complete := s.completionFired(h.Completion)
		switch s.opts.Strategy {
		case symtab.Skeptical:
			if h.Found && s.producerReached(h.Insert) {
				s.tally(l, h, blocked, !complete)
				ts.pendingLookup = nil
				return true
			}
			if !h.Found && complete {
				ts.pendingHop++
				continue
			}
			if complete {
				// Found entry whose producer has completed but progress
				// bookkeeping lags (defensive): treat as found.
				s.tally(l, h, blocked, false)
				ts.pendingLookup = nil
				return true
			}
			ts.hopBlocked = true
			s.blockOn(ts, p, h.Completion, costResearch)
			return false

		case symtab.Pessimistic, symtab.Avoidance:
			if !complete {
				ts.hopBlocked = true
				s.blockOn(ts, p, h.Completion, costResearch/2)
				return false
			}
			if h.Found {
				s.tally(l, h, blocked, false)
				ts.pendingLookup = nil
				return true
			}
			ts.pendingHop++

		case symtab.Optimistic:
			if h.Found {
				if s.producerReached(h.Insert) {
					s.tally(l, h, blocked, !complete)
					ts.pendingLookup = nil
					return true
				}
				ts.hopBlocked = true
				s.blockOnWatcher(ts, p, h.Insert, costOptimisticBlockage)
				return false
			}
			if complete {
				ts.pendingHop++
				continue
			}
			ts.hopBlocked = true
			s.blockOn(ts, p, h.Completion, costOptimisticBlockage)
			return false
		}
	}
	// Searched every scope without success: the "Never" row.
	if s.stats != nil {
		s.stats.Bump(symtab.StatKey{Qualified: l.Qualified, When: symtab.Never})
	}
	ts.pendingLookup = nil
	return true
}

// tally classifies a successful lookup for Table 2.
func (s *Sim) tally(l *ctrace.LookupRecord, h *ctrace.Hop, blocked, incomplete bool) {
	if s.stats == nil {
		return
	}
	var when symtab.FoundWhen
	switch {
	case blocked:
		when = symtab.AfterDKY
	case h.Rel == ctrace.RelOuter:
		when = symtab.SearchOut
	default:
		when = symtab.FirstTry
	}
	if h.Rel == ctrace.RelSelf || h.Rel == ctrace.RelWith || h.Rel == ctrace.RelBuiltin {
		incomplete = false
	}
	s.stats.Bump(symtab.StatKey{
		Qualified: l.Qualified, When: when, Rel: h.Rel, Incomplete: incomplete,
	})
}

// taskHeap orders ready tasks by (priority, seq) like the Supervisor.
type taskHeap []*taskState

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*taskState)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}
