// Package sim is the multiprocessor substitute for the paper's DEC
// Firefly: a deterministic discrete-event simulation of the Supervisor
// scheduling policy (§2.3) over a recorded compilation trace.
//
// The trace (internal/ctrace) holds only schedule-independent facts —
// task costs in deterministic work units, event fire/wait offsets, task
// spawn points with their avoided-event gates, and per-lookup scope
// resolution facts.  Replaying those facts under the Supervisor policy
// for any processor count P and any DKY strategy reproduces the paper's
// speedup experiments (Figures 1–3, Table 3), activity timelines
// (Figures 4 and 7) and lookup statistics (Table 2) without parallel
// hardware.  An optional memory-bus contention model reproduces the
// Firefly's documented saturation behaviour (§4.1): with beta > 0,
// every executing processor slows by a factor 1 + beta·(busy−1).
package sim

import (
	"container/heap"

	"sort"

	"m2cc/internal/ctrace"
	"m2cc/internal/sched"
	"m2cc/internal/symtab"
)

// Options configure one simulation run.
type Options struct {
	// Processors is the simulated machine size (the paper sweeps 1–8).
	Processors int
	// Strategy selects the DKY handling to model.
	Strategy symtab.Strategy
	// Beta is the memory-bus contention coefficient (0 disables;
	// DefaultBeta approximates the Firefly's reported saturation).
	Beta float64
	// Startup is a fixed serial cost (work units) charged before any
	// task runs: compiler start-up, file-system traffic and result
	// writing, which the paper's wall-clock measurements include.  Its
	// presence is what limits small compilations to ~2.5x speedup
	// (§4.2: "the speedup obtainable through concurrent processing is
	// limited for small programs").  Self-relative speedups include it
	// on both sides of the ratio.
	Startup float64
	// LongBeforeShort applies §2.3.4's long-procedures-first ordering
	// (the paper's choice); false is the ablation.
	LongBeforeShort bool
	// BoostResolver applies §2.3.4's preference for running the task
	// that resolves a DKY blockage; false is the ablation.
	BoostResolver bool
	// CollectStats tallies Table 2 lookup statistics.
	CollectStats bool
	// CollectTimeline records per-processor activity intervals
	// (Figures 4 and 7).
	CollectTimeline bool
	// ReplayWaits honours the trace's recorded non-barrier WaitRecords
	// as handled waits instead of re-deriving DKY blockages from lookup
	// records.  Live-compiler traces leave this off (their handled waits
	// are lookup-derived and replaying both would double-count);
	// obs-exported measured traces (internal/profile.ExportTrace) turn
	// it on, since the measured wait edges *are* the dependency facts.
	ReplayWaits bool
}

// DefaultBeta is the bus-contention coefficient used by the benchmark
// harness.
const DefaultBeta = 0.015

// Strategy overheads (work units), modelling the implementation costs
// the paper discusses: Skeptical re-searches a table after a DKY wait;
// Optimistic pays for creating and signaling one event per searched-for
// symbol, which is why its better self-relative speedup does not
// translate into better compile times (§2.3.3).
const (
	costResearch           = ctrace.CostLookupHop
	costOptimisticLookup   = 1.2
	costOptimisticBlockage = 12.0
)

// Interval is one stretch of processor activity.
type Interval struct {
	Proc  int
	Task  ctrace.TaskID
	Kind  ctrace.TaskKind
	Start float64
	End   float64
}

// Result is the outcome of one simulation.
type Result struct {
	Makespan float64
	BusyTime float64 // total executing time across processors
	Blocks   int64   // DKY blockages taken
	Stats    *symtab.Stats
	Timeline []Interval
}

// Utilization returns BusyTime / (P * Makespan); 0 when the run is
// empty (Makespan 0) or p is not a positive processor count — a
// division by p <= 0 would report a negative or infinite utilization.
func (r *Result) Utilization(p int) float64 {
	if r.Makespan <= 0 || p <= 0 {
		return 0
	}
	return r.BusyTime / (float64(p) * r.Makespan)
}

// actionKind discriminates task breakpoints.
type actionKind uint8

const (
	actFire actionKind = iota
	actWait
	actLookup
	actSpawn
	actFinish
)

// action is one breakpoint in a task's execution.
type action struct {
	off     float64
	kind    actionKind
	event   ctrace.EventID
	barrier bool
	lookup  *ctrace.LookupRecord
	spawn   *ctrace.SpawnRecord
}

// taskState tracks one task during simulation.
type taskState struct {
	id       ctrace.TaskID
	info     *ctrace.TaskInfo
	actions  []action
	nextAct  int
	progress float64 // executed work units (original-offset coordinates)
	extra    float64 // strategy-dependent extra work still to burn

	gatesLeft int
	spawned   bool
	priority  int64
	seq       int64
	heapIdx   int

	state tstate
	// hop progress for a lookup interrupted by a DKY wait
	pendingLookup *ctrace.LookupRecord
	pendingHop    int
	hopBlocked    bool

	proc int // processor while running/stalled
}

type tstate uint8

const (
	tsUnborn tstate = iota // not yet spawned
	tsGated                // spawned, waiting on avoided events
	tsReady                // in the ready queue
	tsRunning
	tsStalled // barrier wait, holding its processor
	tsBlocked // handled wait, processor released
	tsDone
)

// Sim is one simulation instance.  Build with New, run with Run.
type Sim struct {
	opts  Options
	trace *ctrace.Trace

	tasks   map[ctrace.TaskID]*taskState
	order   []*taskState // task-ID order, for determinism
	fired   map[ctrace.EventID]float64
	firerOf map[ctrace.EventID]ctrace.TaskID

	// event → tasks to wake / gates to decrement when it fires
	waiters map[ctrace.EventID][]*taskState
	gated   map[ctrace.EventID][]*taskState

	// offset watchers (Optimistic per-symbol events): producer task →
	// sorted watcher offsets with waiting tasks
	watchers map[ctrace.TaskID][]watcher

	ready taskHeap
	procs []*proc
	now   float64
	seq   int64

	stats  *symtab.Stats
	blocks int64
	busy   float64
	tl     []Interval
	remain int // unfinished tasks
}

type watcher struct {
	off  float64
	task *taskState
}

type proc struct {
	idx     int
	task    *taskState // nil = idle
	stalled bool       // barrier wait: occupied but not executing
	segLeft float64    // work units until the running task's next action
	started float64    // interval start (timeline)
}

// New prepares a simulation of trace under opts.
func New(trace *ctrace.Trace, opts Options) *Sim {
	if opts.Processors < 1 {
		opts.Processors = 1
	}
	s := &Sim{
		opts: opts, trace: trace,
		tasks:    make(map[ctrace.TaskID]*taskState, len(trace.Tasks)),
		fired:    make(map[ctrace.EventID]float64),
		firerOf:  make(map[ctrace.EventID]ctrace.TaskID),
		waiters:  make(map[ctrace.EventID][]*taskState),
		gated:    make(map[ctrace.EventID][]*taskState),
		watchers: make(map[ctrace.TaskID][]watcher),
	}
	if opts.CollectStats {
		s.stats = symtab.NewStats()
	}
	for i := range trace.Tasks {
		info := &trace.Tasks[i]
		ts := &taskState{id: info.ID, info: info, heapIdx: -1, state: tsUnborn}
		ts.priority = s.priorityOf(info)
		s.tasks[info.ID] = ts
		s.order = append(s.order, ts)
	}
	s.buildActions()
	for i := 0; i < opts.Processors; i++ {
		s.procs = append(s.procs, &proc{idx: i})
	}
	return s
}

// priorityOf maps a task to its ready-queue priority, honouring the
// long-before-short ablation switch.
func (s *Sim) priorityOf(info *ctrace.TaskInfo) int64 {
	kind := info.Kind
	if !s.opts.LongBeforeShort && kind == ctrace.KindLongStmtCG {
		kind = ctrace.KindShortStmtCG
	}
	size := int64(info.Cost)
	if !s.opts.LongBeforeShort {
		size = 0
	}
	return sched.Priority(kind, size)
}

// buildActions converts the trace into per-task sorted breakpoints.
func (s *Sim) buildActions() {
	add := func(id ctrace.TaskID, a action) {
		if ts := s.tasks[id]; ts != nil {
			ts.actions = append(ts.actions, a)
		}
	}
	for i := range s.trace.Fires {
		f := &s.trace.Fires[i]
		if f.At.Task == 0 {
			// Pre-task fire (none in healthy traces): already available.
			s.fired[f.Event] = 0
			continue
		}
		s.firerOf[f.Event] = f.At.Task
		add(f.At.Task, action{off: f.At.Offset, kind: actFire, event: f.Event})
	}
	for i := range s.trace.Waits {
		w := &s.trace.Waits[i]
		if !w.Barrier && !s.opts.ReplayWaits {
			// Handled DKY waits are re-derived from lookup records.
			continue
		}
		add(w.At.Task, action{off: w.At.Offset, kind: actWait, event: w.Event, barrier: w.Barrier})
	}
	for i := range s.trace.Lookups {
		l := &s.trace.Lookups[i]
		add(l.At.Task, action{off: l.At.Offset, kind: actLookup, lookup: l})
	}
	for i := range s.trace.Spawns {
		sp := &s.trace.Spawns[i]
		if sp.Parent == 0 {
			continue // initial tasks, handled in Run
		}
		add(sp.Parent, action{off: sp.At.Offset, kind: actSpawn, spawn: sp})
	}
	for _, ts := range s.order {
		ts.actions = append(ts.actions, action{off: ts.info.Cost, kind: actFinish})
		acts := ts.actions
		sort.SliceStable(acts, func(i, j int) bool { return acts[i].off < acts[j].off })
	}
}

// gatesFor returns a spawn's avoided events plus, under Avoidance, the
// parent-scope completion gates.
func (s *Sim) gatesFor(id ctrace.TaskID, spawnGates []ctrace.EventID) []ctrace.EventID {
	gates := append([]ctrace.EventID(nil), spawnGates...)
	if s.opts.Strategy == symtab.Avoidance {
		gates = append(gates, s.trace.ScopeGates[id]...)
	}
	return gates
}

// spawnTask introduces a task at the current time.
func (s *Sim) spawnTask(ts *taskState, gates []ctrace.EventID) {
	if ts.spawned {
		return
	}
	ts.spawned = true
	ts.seq = s.seq
	s.seq++
	pending := 0
	for _, g := range gates {
		if _, ok := s.fired[g]; !ok {
			pending++
			s.gated[g] = append(s.gated[g], ts)
		}
	}
	ts.gatesLeft = pending
	if pending == 0 {
		s.makeReady(ts)
	} else {
		ts.state = tsGated
	}
}

func (s *Sim) makeReady(ts *taskState) {
	ts.state = tsReady
	heap.Push(&s.ready, ts)
}

// fire marks an event fired at the current time, waking gated and
// blocked tasks.
func (s *Sim) fire(ev ctrace.EventID) {
	if _, ok := s.fired[ev]; ok {
		return
	}
	s.fired[ev] = s.now
	for _, ts := range s.gated[ev] {
		ts.gatesLeft--
		if ts.gatesLeft == 0 && ts.state == tsGated {
			s.makeReady(ts)
		}
	}
	delete(s.gated, ev)
	for _, ts := range s.waiters[ev] {
		switch ts.state {
		case tsBlocked:
			s.makeReady(ts)
		case tsStalled:
			// Barrier waiter: its processor resumes.
			p := s.procs[ts.proc]
			p.stalled = false
			ts.state = tsRunning
			p.started = s.now
			s.computeSegment(p)
		}
	}
	delete(s.waiters, ev)
	s.checkWatchers()
}

// checkWatchers wakes Optimistic per-symbol waiters whose producer has
// reached the watched offset.
func (s *Sim) checkWatchers() {
	for id, ws := range s.watchers {
		prod := s.tasks[id]
		kept := ws[:0]
		for _, w := range ws {
			if prod == nil || prod.state == tsDone || prod.progress >= w.off {
				if w.task.state == tsBlocked {
					s.makeReady(w.task)
				}
			} else {
				kept = append(kept, w)
			}
		}
		if len(kept) == 0 {
			delete(s.watchers, id)
		} else {
			s.watchers[id] = kept
		}
	}
}

// computeSegment sets how much work the running task must execute to
// reach its next action.
func (s *Sim) computeSegment(p *proc) {
	ts := p.task
	if ts.extra > 0 {
		p.segLeft = ts.extra
		return
	}
	if ts.nextAct < len(ts.actions) {
		p.segLeft = ts.actions[ts.nextAct].off - ts.progress
		if p.segLeft < 0 {
			p.segLeft = 0
		}
		return
	}
	p.segLeft = 0
}
