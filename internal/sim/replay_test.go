package sim_test

import (
	"testing"

	"m2cc/internal/ctrace"
	"m2cc/internal/sim"
	"m2cc/internal/symtab"
)

// TestSimReplayWaitsHonoursHandledWaits pins the ReplayWaits contract
// used by obs-exported traces (`m2c -whatif`): recorded non-barrier
// waits are skipped by default (live traces carry the same dependency
// as lookup records) and replayed as handled waits when the option is
// set.
func TestSimReplayWaitsHonoursHandledWaits(t *testing.T) {
	build := func() *ctrace.Trace {
		b := newBuilder()
		prod := b.task(ctrace.KindLexor, "prod", 100)
		cons := b.task(ctrace.KindSplitter, "cons", 40)
		ready := b.rec.FireIDs(prod, 80)
		b.rec.NoteWaitIDs(cons, 10, ready, false) // handled wait at offset 10
		b.spawn(0, 0, prod)
		b.spawn(0, 0, cons)
		return b.rec.Trace()
	}

	// Default: the recorded handled wait is ignored, both tasks run
	// freely in parallel.
	plain := sim.New(build(), sim.Options{Processors: 2, Strategy: symtab.Skeptical}).Run()
	if plain.Makespan != 100 {
		t.Fatalf("without ReplayWaits: makespan %f, want 100", plain.Makespan)
	}
	if plain.Blocks != 0 {
		t.Fatalf("without ReplayWaits: blocks %d, want 0", plain.Blocks)
	}

	// ReplayWaits: the consumer runs 10 units, releases its processor
	// until the producer's fire at t=80, then runs its remaining 30.
	rw := sim.New(build(), sim.Options{Processors: 2, Strategy: symtab.Skeptical, ReplayWaits: true}).Run()
	if rw.Makespan != 110 {
		t.Fatalf("with ReplayWaits: makespan %f, want 110", rw.Makespan)
	}
	if rw.Blocks != 1 {
		t.Fatalf("with ReplayWaits: blocks %d, want 1", rw.Blocks)
	}

	// P=1 anchor for the -whatif acceptance check: the serial replay is
	// exactly the trace's total work (no idle time can accumulate).
	one := sim.New(build(), sim.Options{
		Processors: 1, Strategy: symtab.Skeptical, ReplayWaits: true,
		LongBeforeShort: true, BoostResolver: true,
	}).Run()
	if one.Makespan != 140 {
		t.Fatalf("P=1 replay: makespan %f, want 140 (total work)", one.Makespan)
	}
}

// TestSimReplayWaitsPreFiredEventSkipped checks that a replayed wait on
// an event fired before the waiter reaches its wait offset costs
// nothing — the obs exporter records driver and pre-fired events as
// task-0 fires, which the simulator fires at startup.
func TestSimReplayWaitsPreFiredEventSkipped(t *testing.T) {
	b := newBuilder()
	cons := b.task(ctrace.KindSplitter, "cons", 40)
	ready := b.rec.NewEventID()
	b.rec.NoteFireID(ready, 0, 0) // pre-fired (driver/cache)
	b.rec.NoteWaitIDs(cons, 10, ready, false)
	b.spawn(0, 0, cons)
	tr := b.rec.Trace()

	r := sim.New(tr, sim.Options{Processors: 1, Strategy: symtab.Skeptical, ReplayWaits: true}).Run()
	if r.Makespan != 40 {
		t.Fatalf("makespan %f, want 40 (pre-fired wait is free)", r.Makespan)
	}
	if r.Blocks != 0 {
		t.Fatalf("blocks %d, want 0", r.Blocks)
	}
}
