package sim_test

import (
	"testing"

	"m2cc/internal/ctrace"
	"m2cc/internal/sim"
	"m2cc/internal/symtab"
)

// buildTrace assembles a trace by hand through a Recorder, simulating
// what the instrumented compiler would have recorded.
type traceBuilder struct {
	rec  *ctrace.Recorder
	ctxs map[ctrace.TaskID]*ctrace.TaskCtx
}

func newBuilder() *traceBuilder {
	return &traceBuilder{rec: ctrace.NewRecorder(), ctxs: map[ctrace.TaskID]*ctrace.TaskCtx{}}
}

func (b *traceBuilder) task(kind ctrace.TaskKind, label string, cost float64) ctrace.TaskID {
	id := b.rec.RegisterTask(kind, 0, label)
	b.ctxs[id] = &ctrace.TaskCtx{ID: id, Kind: kind, Rec: b.rec}
	b.rec.FinishTask(id, cost)
	return id
}

func (b *traceBuilder) spawn(parent ctrace.TaskID, at float64, child ctrace.TaskID, gates ...ctrace.EventID) {
	var stamp ctrace.Stamp
	if parent != 0 {
		stamp = ctrace.Stamp{Task: parent, Offset: at}
	}
	b.rec.NoteSpawnIDs(parent, stamp, child, gates)
}

func TestSimTwoIndependentTasks(t *testing.T) {
	b := newBuilder()
	a := b.task(ctrace.KindShortStmtCG, "a", 100)
	c := b.task(ctrace.KindShortStmtCG, "c", 100)
	b.spawn(0, 0, a)
	b.spawn(0, 0, c)
	tr := b.rec.Trace()

	one := sim.New(tr, sim.Options{Processors: 1, Strategy: symtab.Skeptical}).Run()
	two := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Skeptical}).Run()
	if one.Makespan != 200 {
		t.Fatalf("P=1 makespan %f, want 200", one.Makespan)
	}
	if two.Makespan != 100 {
		t.Fatalf("P=2 makespan %f, want 100", two.Makespan)
	}
}

func TestSimGateDelaysChild(t *testing.T) {
	b := newBuilder()
	parent := b.task(ctrace.KindModParseDecl, "parent", 100)
	child := b.task(ctrace.KindProcParseDecl, "child", 50)
	// The parent fires the gate at offset 60.
	gate := b.rec.FireIDs(parent, 60)
	b.spawn(0, 0, parent)
	b.spawn(parent, 10, child, gate)
	tr := b.rec.Trace()
	r := sim.New(tr, sim.Options{Processors: 4, Strategy: symtab.Skeptical}).Run()
	// Child can only start at t=60, finishing at 110; parent ends at 100.
	if r.Makespan != 110 {
		t.Fatalf("makespan %f, want 110", r.Makespan)
	}
}

func TestSimBarrierHoldsProcessor(t *testing.T) {
	b := newBuilder()
	prod := b.task(ctrace.KindLexor, "prod", 100)
	cons := b.task(ctrace.KindSplitter, "cons", 10)
	ready := b.rec.FireIDs(prod, 80)
	b.rec.NoteWaitIDs(cons, 2, ready, true) // barrier wait at offset 2
	b.spawn(0, 0, prod)
	b.spawn(0, 0, cons)
	tr := b.rec.Trace()
	// With 2 processors the consumer stalls (holding its processor)
	// until t=80, then runs its remaining 8 units: makespan 100 (the
	// producer bounds it).
	r := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Skeptical}).Run()
	if r.Makespan != 100 {
		t.Fatalf("makespan %f, want 100", r.Makespan)
	}
	// Busy time excludes the stall: 100 (producer) + 10 (consumer).
	if r.BusyTime != 110 {
		t.Fatalf("busy %f, want 110", r.BusyTime)
	}
}

func TestSimStartupShiftsEverything(t *testing.T) {
	b := newBuilder()
	a := b.task(ctrace.KindShortStmtCG, "a", 100)
	b.spawn(0, 0, a)
	tr := b.rec.Trace()
	r := sim.New(tr, sim.Options{Processors: 4, Startup: 500, Strategy: symtab.Skeptical}).Run()
	if r.Makespan != 600 {
		t.Fatalf("makespan %f, want 600", r.Makespan)
	}
}

func TestSimSkepticalLookupBlocksUntilCompletion(t *testing.T) {
	b := newBuilder()
	producer := b.task(ctrace.KindModParseDecl, "producer", 200)
	consumer := b.task(ctrace.KindProcParseDecl, "consumer", 50)
	completion := b.rec.FireIDs(producer, 200)
	// The symbol is inserted at offset 150 of the producer; the consumer
	// looks it up at its own offset 10.
	b.rec.NoteLookup(ctrace.LookupRecord{
		At: ctrace.Stamp{Task: consumer, Offset: 10}, Found: true,
		Hops: []ctrace.Hop{{
			Scope: 1, Rel: ctrace.RelOuter, Completion: completion,
			Found: true, Insert: ctrace.Stamp{Task: producer, Offset: 150},
		}},
	})
	b.spawn(0, 0, producer)
	b.spawn(0, 0, consumer)
	tr := b.rec.Trace()

	// Skeptical: the consumer probes at t≈10, the entry is not yet
	// inserted (producer at ~10 of 150) → blocks until COMPLETION
	// (t=200), then finishes its remaining 40 units + re-search cost.
	r := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Skeptical}).Run()
	if r.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1", r.Blocks)
	}
	if r.Makespan < 240 || r.Makespan > 250 {
		t.Fatalf("makespan %f, want ≈ 200 + 40 + research", r.Makespan)
	}

	// Optimistic wakes at the INSERT (t=150), not completion.
	ro := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Optimistic}).Run()
	if ro.Makespan >= r.Makespan {
		t.Fatalf("optimistic (%f) must beat skeptical (%f) here", ro.Makespan, r.Makespan)
	}
	if ro.Makespan < 190 || ro.Makespan > 210 {
		t.Fatalf("optimistic makespan %f, want ≈ 150 + 40 + overhead", ro.Makespan)
	}

	// Pessimistic also waits for completion even when the entry would
	// have been found earlier; with the symbol inserted BEFORE the
	// probe it still blocks.  Here the probe precedes the insert anyway,
	// so it matches skeptical.
	rp := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Pessimistic}).Run()
	if rp.Blocks != 1 {
		t.Fatalf("pessimistic blocks = %d", rp.Blocks)
	}
}

func TestSimSkepticalFindsEarlyInsert(t *testing.T) {
	b := newBuilder()
	producer := b.task(ctrace.KindModParseDecl, "producer", 200)
	consumer := b.task(ctrace.KindProcParseDecl, "consumer", 50)
	completion := b.rec.FireIDs(producer, 200)
	// Insert at offset 5 — well before the consumer's probe at 30.
	b.rec.NoteLookup(ctrace.LookupRecord{
		At: ctrace.Stamp{Task: consumer, Offset: 30}, Found: true,
		Hops: []ctrace.Hop{{
			Scope: 1, Rel: ctrace.RelOuter, Completion: completion,
			Found: true, Insert: ctrace.Stamp{Task: producer, Offset: 5},
		}},
	})
	b.spawn(0, 0, producer)
	b.spawn(0, 0, consumer)
	tr := b.rec.Trace()

	// Skeptical searches the incomplete table and hits: no block.
	rs := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Skeptical, CollectStats: true}).Run()
	if rs.Blocks != 0 {
		t.Fatalf("skeptical blocks = %d, want 0", rs.Blocks)
	}
	var incompleteHit bool
	for _, row := range rs.Stats.Rows() {
		if row.Key.Incomplete && row.Key.Rel == ctrace.RelOuter {
			incompleteHit = true
		}
	}
	if !incompleteHit {
		t.Fatalf("want an incomplete-table hit row:\n%s", rs.Stats)
	}

	// Pessimistic blocks anyway — the §2.2 difference.
	rp := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Pessimistic}).Run()
	if rp.Blocks != 1 {
		t.Fatalf("pessimistic blocks = %d, want 1", rp.Blocks)
	}
	if rp.Makespan <= rs.Makespan {
		t.Fatalf("pessimistic (%f) must be slower than skeptical (%f)", rp.Makespan, rs.Makespan)
	}
}

func TestSimAvoidanceAppliesScopeGates(t *testing.T) {
	b := newBuilder()
	parent := b.task(ctrace.KindModParseDecl, "parent", 100)
	child := b.task(ctrace.KindProcParseDecl, "child", 20)
	completion := b.rec.FireIDs(parent, 100)
	b.spawn(0, 0, parent)
	b.spawn(parent, 10, child)
	b.rec.NoteScopeGateID(child, completion)
	tr := b.rec.Trace()

	sk := sim.New(tr, sim.Options{Processors: 4, Strategy: symtab.Skeptical}).Run()
	av := sim.New(tr, sim.Options{Processors: 4, Strategy: symtab.Avoidance}).Run()
	if sk.Makespan != 100 {
		t.Fatalf("skeptical makespan %f (child overlaps)", sk.Makespan)
	}
	if av.Makespan != 120 {
		t.Fatalf("avoidance makespan %f, want 120 (child gated on completion)", av.Makespan)
	}
}

func TestSimBoostAblation(t *testing.T) {
	// Two processors.  The consumer (long remaining work) blocks early
	// on a completion fired by "resolver" (worst class).  Two same-class
	// competitors keep the machine busy.  With the §2.3.4 boost the
	// freed slot runs the resolver immediately, so the consumer resumes
	// at ~110; without it the resolver waits behind the competitors and
	// the consumer's 490 remaining units start hundreds of units later.
	b := newBuilder()
	consumer := b.task(ctrace.KindLexor, "consumer", 500)
	other1 := b.task(ctrace.KindSplitter, "other1", 300)
	other2 := b.task(ctrace.KindSplitter, "other2", 300)
	resolver := b.task(ctrace.KindMerge, "resolver", 100)
	completion := b.rec.FireIDs(resolver, 100)
	b.rec.NoteLookup(ctrace.LookupRecord{
		At: ctrace.Stamp{Task: consumer, Offset: 10}, Found: true,
		Hops: []ctrace.Hop{{
			Scope: 1, Rel: ctrace.RelOuter, Completion: completion,
			Found: true, Insert: ctrace.Stamp{Task: resolver, Offset: 90},
		}},
	})
	b.spawn(0, 0, consumer)
	b.spawn(0, 0, other1)
	b.spawn(0, 0, other2)
	b.spawn(0, 0, resolver)
	tr := b.rec.Trace()

	boosted := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Skeptical, BoostResolver: true}).Run()
	plain := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Skeptical}).Run()
	if !(boosted.Makespan+50 < plain.Makespan) {
		t.Fatalf("boost must help on this graph: boosted %f vs plain %f",
			boosted.Makespan, plain.Makespan)
	}
	if boosted.Blocks != 1 || plain.Blocks != 1 {
		t.Fatalf("blocks: %d / %d, want 1 / 1", boosted.Blocks, plain.Blocks)
	}
}

func TestSimLongBeforeShortOrdering(t *testing.T) {
	// Three G tasks of sizes 90, 30, 30 on two processors, all ready at
	// once.  Long-first: makespan 90.  Without the rule (FIFO by spawn
	// order, short ones first): 30+90 = 120 on one processor.
	b := newBuilder()
	s1 := b.task(ctrace.KindShortStmtCG, "s1", 30)
	s2 := b.task(ctrace.KindShortStmtCG, "s2", 30)
	long := b.task(ctrace.KindLongStmtCG, "long", 90)
	b.spawn(0, 0, s1)
	b.spawn(0, 0, s2)
	b.spawn(0, 0, long)
	tr := b.rec.Trace()

	with := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Skeptical, LongBeforeShort: true}).Run()
	without := sim.New(tr, sim.Options{Processors: 2, Strategy: symtab.Skeptical}).Run()
	if with.Makespan != 90 {
		t.Fatalf("with ordering: %f, want 90", with.Makespan)
	}
	if without.Makespan != 120 {
		t.Fatalf("without ordering: %f, want 120", without.Makespan)
	}
}
