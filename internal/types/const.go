package types

import (
	"fmt"
	"strconv"
)

// ConstKind discriminates compile-time constant values.
type ConstKind uint8

// Constant kinds.
const (
	CInvalid ConstKind = iota
	CInt               // whole numbers, enum ordinals, CHAR codes, BOOLEAN 0/1
	CReal
	CString
	CSet // bit mask over ordinals 0..63
	CNil
)

// Const is a compile-time constant value paired with its type.
type Const struct {
	Kind ConstKind
	Type *Type
	I    int64
	F    float64
	S    string
	Set  uint64
}

// MakeInt returns an integer-class constant of type t.
func MakeInt(t *Type, v int64) Const { return Const{Kind: CInt, Type: t, I: v} }

// MakeReal returns a real constant.
func MakeReal(t *Type, v float64) Const { return Const{Kind: CReal, Type: t, F: v} }

// MakeString returns a string constant.
func MakeString(s string) Const { return Const{Kind: CString, Type: StringT, S: s} }

// MakeSet returns a set constant of type t with the given bit mask.
func MakeSet(t *Type, mask uint64) Const { return Const{Kind: CSet, Type: t, Set: mask} }

// MakeNil returns the NIL constant.
func MakeNil() Const { return Const{Kind: CNil, Type: Nil} }

// MakeBool returns a BOOLEAN constant.
func MakeBool(b bool) Const {
	v := int64(0)
	if b {
		v = 1
	}
	return Const{Kind: CInt, Type: Boolean, I: v}
}

// IsValid reports whether the constant carries a value (errors produce
// invalid constants to suppress cascading diagnostics).
func (c Const) IsValid() bool { return c.Kind != CInvalid }

// Bool reports the truth value of a BOOLEAN constant.
func (c Const) Bool() bool { return c.I != 0 }

// String renders the constant in Modula-2 syntax where possible.
func (c Const) String() string {
	switch c.Kind {
	case CInt:
		if c.Type != nil {
			switch c.Type.Under().Kind {
			case BooleanK:
				if c.I != 0 {
					return "TRUE"
				}
				return "FALSE"
			case CharK:
				return fmt.Sprintf("%oC", c.I)
			}
		}
		return strconv.FormatInt(c.I, 10)
	case CReal:
		return strconv.FormatFloat(c.F, 'G', -1, 64)
	case CString:
		return strconv.Quote(c.S)
	case CSet:
		return fmt.Sprintf("{%#x}", c.Set)
	case CNil:
		return "NIL"
	default:
		return "<invalid const>"
	}
}
