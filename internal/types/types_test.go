package types_test

import (
	"testing"
	"testing/quick"

	"m2cc/internal/types"
)

func TestBasicSlots(t *testing.T) {
	for _, tt := range []*types.Type{
		types.Integer, types.Cardinal, types.Boolean, types.Char,
		types.Real, types.BitSet, types.Text, types.Proc,
	} {
		if tt.Slots() != 1 {
			t.Errorf("%s occupies %d slots, want 1", tt, tt.Slots())
		}
	}
}

func TestArraySlots(t *testing.T) {
	a := types.NewArray(types.NewSubrange(types.Integer, 0, 9), types.Integer)
	if a.Slots() != 10 {
		t.Fatalf("ARRAY [0..9] OF INTEGER = %d slots", a.Slots())
	}
	m := types.NewArray(types.NewSubrange(types.Integer, 1, 3), a)
	if m.Slots() != 30 {
		t.Fatalf("nested array = %d slots, want 30", m.Slots())
	}
}

func TestRecordLayoutAndSlots(t *testing.T) {
	rec := types.NewRecord([]*types.Field{
		{Name: "a", Type: types.Integer, Offset: 0},
		{Name: "b", Type: types.NewArray(types.NewSubrange(types.Integer, 0, 4), types.Char), Offset: 1},
		{Name: "c", Type: types.Real, Offset: 6},
	})
	if rec.Slots() != 7 {
		t.Fatalf("record = %d slots, want 7", rec.Slots())
	}
	if f := rec.FieldNamed("b"); f == nil || f.Offset != 1 {
		t.Fatal("FieldNamed broken")
	}
	if rec.FieldNamed("nope") != nil {
		t.Fatal("missing field must be nil")
	}
}

func TestVariantRecordOverlaySlots(t *testing.T) {
	// Variants overlay: size is the max arm extent, not the sum.
	rec := types.NewRecord([]*types.Field{
		{Name: "tag", Type: types.Integer, Offset: 0},
		{Name: "small", Type: types.Char, Offset: 1},
		{Name: "big", Type: types.NewArray(types.NewSubrange(types.Integer, 0, 7), types.Integer), Offset: 1},
	})
	if rec.Slots() != 9 {
		t.Fatalf("variant record = %d slots, want 9 (tag + max arm)", rec.Slots())
	}
}

func TestEmptyRecordHasStorage(t *testing.T) {
	if types.NewRecord(nil).Slots() != 1 {
		t.Fatal("empty record must still occupy a slot")
	}
}

func TestBounds(t *testing.T) {
	cases := []struct {
		t      *types.Type
		lo, hi int64
	}{
		{types.Boolean, 0, 1},
		{types.Char, 0, 255},
		{types.NewSubrange(types.Integer, -5, 5), -5, 5},
		{types.NewEnum("E", 4), 0, 3},
	}
	for _, c := range cases {
		lo, hi, ok := c.t.Bounds()
		if !ok || lo != c.lo || hi != c.hi {
			t.Errorf("%s bounds = %d..%d (%v), want %d..%d", c.t, lo, hi, ok, c.lo, c.hi)
		}
	}
	if _, _, ok := types.Real.Bounds(); ok {
		t.Error("REAL must have no ordinal bounds")
	}
}

func TestUnderResolvesSubranges(t *testing.T) {
	s := types.NewSubrange(types.NewSubrange(types.Integer, 0, 100), 5, 10)
	if s.Under() != types.Integer {
		t.Fatalf("Under = %s", s.Under())
	}
	if !s.IsInteger() || !s.IsOrdinal() {
		t.Fatal("subrange classification wrong")
	}
}

func TestSameClassIntegers(t *testing.T) {
	sub := types.NewSubrange(types.Cardinal, 0, 9)
	for _, pair := range [][2]*types.Type{
		{types.Integer, types.Cardinal},
		{types.Integer, types.LongInt},
		{types.Integer, types.Whole},
		{sub, types.Integer},
	} {
		if !types.SameClass(pair[0], pair[1]) {
			t.Errorf("%s and %s must mix", pair[0], pair[1])
		}
	}
}

func TestSameClassRejections(t *testing.T) {
	enumA := types.NewEnum("A", 3)
	enumB := types.NewEnum("B", 3)
	for _, pair := range [][2]*types.Type{
		{types.Integer, types.Real},
		{types.Integer, types.Boolean},
		{types.Char, types.Integer},
		{enumA, enumB},
		{enumA, types.Integer},
	} {
		if types.SameClass(pair[0], pair[1]) {
			t.Errorf("%s and %s must not mix", pair[0], pair[1])
		}
	}
}

func TestCharAndStringClasses(t *testing.T) {
	if !types.SameClass(types.Char, types.StringT) {
		t.Error("CHAR and a string literal may compare (length-one strings)")
	}
	if !types.SameClass(types.Text, types.StringT) {
		t.Error("TEXT and string literals mix")
	}
}

func TestAssignable(t *testing.T) {
	sub := types.NewSubrange(types.Integer, 0, 9)
	arr := types.NewArray(types.NewSubrange(types.Integer, 0, 3), types.Char)
	ptr := types.NewPointer(types.Integer)
	cases := []struct {
		dst, src *types.Type
		want     bool
	}{
		{types.Integer, types.Cardinal, true},
		{sub, types.Whole, true},
		{types.Real, types.Whole, true},
		{types.Real, types.Integer, false},
		{types.Char, types.StringT, true},
		{arr, types.StringT, true},
		{types.Text, types.StringT, true},
		{ptr, types.Nil, true},
		{ptr, types.NewPointer(types.Integer), false}, // distinct pointer types
		{ptr, ptr, true},
		{types.RefAny, types.NewRef(types.Char), true},
		{types.Integer, types.Boolean, false},
	}
	for _, c := range cases {
		if got := types.Assignable(c.dst, c.src); got != c.want {
			t.Errorf("Assignable(%s, %s) = %v, want %v", c.dst, c.src, got, c.want)
		}
	}
}

func TestProcSignatures(t *testing.T) {
	sigA := types.NewProcType([]types.Param{{Type: types.Integer}}, types.Integer)
	sigB := types.NewProcType([]types.Param{{Type: types.Cardinal}}, types.Cardinal)
	sigC := types.NewProcType([]types.Param{{Type: types.Integer, ByRef: true}}, types.Integer)
	sigD := types.NewProcType(nil, types.Integer)
	if !types.SameSignature(sigA, sigB) {
		t.Error("integer-class signatures must match")
	}
	if types.SameSignature(sigA, sigC) {
		t.Error("VAR mode must distinguish signatures")
	}
	if types.SameSignature(sigA, sigD) {
		t.Error("arity must distinguish signatures")
	}
	if !types.Assignable(sigA, sigB) {
		t.Error("compatible proc values must assign")
	}
	parameterless := types.NewProcType(nil, nil)
	if !types.Assignable(types.Proc, parameterless) {
		t.Error("PROC accepts parameterless proper procedures")
	}
	if types.Assignable(types.Proc, sigA) {
		t.Error("PROC must reject functions")
	}
}

func TestComparableAndOrdered(t *testing.T) {
	setA := types.NewSet(types.NewSubrange(types.Integer, 0, 15))
	if !types.Comparable(setA, types.BitSet) {
		t.Error("sets compare with = and #")
	}
	if !types.Comparable(types.NewPointer(types.Char), types.Nil) {
		t.Error("pointer vs NIL comparable")
	}
	if types.Ordered(types.NewPointer(types.Char), types.Nil) {
		t.Error("pointers are not ordered")
	}
	if !types.Ordered(types.Char, types.Char) || !types.Ordered(types.Real, types.Real) {
		t.Error("chars and reals are ordered")
	}
}

func TestOpaqueBehavesAsPointer(t *testing.T) {
	op := types.NewOpaque("T")
	if op.Slots() != 1 {
		t.Error("opaque types are pointer-sized")
	}
	if !op.IsPointerLike() {
		t.Error("opaque values may compare with NIL")
	}
}

func TestDerefIdentitySynonyms(t *testing.T) {
	// TYPE A = INTEGER makes A the same *Type object; identity is
	// pointer equality.
	a := types.Integer
	if a.Deref() != types.Integer {
		t.Error("Deref must be identity for basic types")
	}
}

func TestSlotsAlwaysPositive(t *testing.T) {
	check := func(n uint8, depth uint8) bool {
		elem := types.Integer
		var tt *types.Type = elem
		for i := uint8(0); i < depth%4; i++ {
			tt = types.NewArray(types.NewSubrange(types.Integer, 0, int64(n%8)), tt)
		}
		return tt.Slots() >= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstConstructors(t *testing.T) {
	if c := types.MakeBool(true); !c.Bool() || c.Type != types.Boolean {
		t.Error("MakeBool")
	}
	if c := types.MakeInt(types.Char, 65); c.String() != "101C" {
		t.Errorf("char const renders %q", c.String())
	}
	if c := types.MakeNil(); c.Kind != types.CNil || c.String() != "NIL" {
		t.Error("MakeNil")
	}
	if c := types.MakeString("hi"); c.String() != `"hi"` {
		t.Errorf("string const renders %q", c.String())
	}
	if (types.Const{}).IsValid() {
		t.Error("zero Const must be invalid")
	}
}
