// Package types implements the Modula-2+ type system: the pervasive
// basic types, structural type constructors, and the compatibility and
// assignability rules the semantic analyzer enforces.
//
// Type identity follows Modula-2 rules: a type declaration "TYPE A = B"
// makes A a synonym (the same *Type object), while every structural
// constructor (ARRAY, RECORD, SET, POINTER, enumeration, subrange,
// PROCEDURE) creates a distinct type.  Identity is therefore pointer
// equality.
package types

import (
	"fmt"
	"sync/atomic"

	"m2cc/internal/token"
)

// Kind discriminates type representations.
type Kind uint8

// Type kinds.
const (
	Invalid Kind = iota
	IntegerK
	CardinalK
	LongIntK
	BooleanK
	CharK
	RealK
	LongRealK
	BitSetK // the pervasive BITSET = SET OF [0..31]
	ProcK   // the pervasive parameterless PROC type
	TextK   // Modula-2+ TEXT (immutable string)
	RefAnyK // Modula-2+ REFANY
	MutexK  // Modula-2+ MUTEX
	NilK    // the type of NIL
	WholeK  // whole-number literal constants, compatible with all integer types
	StringK // string literal (len != 1); length-1 strings are char-compatible
	VoidK   // "result type" of proper procedures

	EnumK
	SubrangeK
	ArrayK
	OpenArrayK
	RecordK
	SetK
	PointerK
	RefK
	ProcTypeK
	OpaqueK
	ExceptionK
)

// Type is the representation of one Modula-2+ type.
type Type struct {
	Kind Kind
	Name string // declared name, for diagnostics ("" for anonymous)

	Base   *Type    // subrange base, set element, pointer/REF target, array element, opaque resolution
	Index  *Type    // array index type
	Lo, Hi int64    // subrange bounds; enum: 0..len-1; BITSET: 0..31
	Fields []*Field // record fields (flattened, variants overlaid)
	Params []Param  // procedure parameters
	Ret    *Type    // procedure result; nil for proper procedures

	EnumLen int // number of enumeration constants

	// slots memoizes the storage size (0 = not yet computed).  It is
	// atomic because types published through the interface cache are
	// shared by concurrent compilations, which may race to fill the
	// memo; the computation is deterministic, so either store wins.
	slots atomic.Int32
}

// Field is one record field with its storage offset in slots.
type Field struct {
	Name   string
	Type   *Type
	Offset int
	Pos    token.Pos
}

// Param is one formal parameter of a procedure type or heading.
type Param struct {
	Name  string
	Type  *Type
	ByRef bool // VAR parameter
	Open  bool // open array (ARRAY OF T)
}

// The pervasive types.  These are singletons; pointer comparison against
// them is meaningful.
var (
	Integer   = &Type{Kind: IntegerK, Name: "INTEGER"}
	Cardinal  = &Type{Kind: CardinalK, Name: "CARDINAL"}
	LongInt   = &Type{Kind: LongIntK, Name: "LONGINT"}
	Boolean   = &Type{Kind: BooleanK, Name: "BOOLEAN"}
	Char      = &Type{Kind: CharK, Name: "CHAR"}
	Real      = &Type{Kind: RealK, Name: "REAL"}
	LongReal  = &Type{Kind: LongRealK, Name: "LONGREAL"}
	BitSet    = &Type{Kind: BitSetK, Name: "BITSET", Lo: 0, Hi: 31}
	Proc      = &Type{Kind: ProcK, Name: "PROC"}
	Text      = &Type{Kind: TextK, Name: "TEXT"}
	RefAny    = &Type{Kind: RefAnyK, Name: "REFANY"}
	Mutex     = &Type{Kind: MutexK, Name: "MUTEX"}
	Nil       = &Type{Kind: NilK, Name: "NIL"}
	Whole     = &Type{Kind: WholeK, Name: "integer constant"}
	StringT   = &Type{Kind: StringK, Name: "string"}
	Void      = &Type{Kind: VoidK, Name: "void"}
	Bad       = &Type{Kind: Invalid, Name: "<invalid>"}
	Exception = &Type{Kind: ExceptionK, Name: "EXCEPTION"}
)

// String returns the declared name or a structural description.
func (t *Type) String() string {
	if t == nil {
		return "<nil type>"
	}
	if t.Name != "" {
		return t.Name
	}
	switch t.Kind {
	case EnumK:
		return fmt.Sprintf("enumeration(%d)", t.EnumLen)
	case SubrangeK:
		return fmt.Sprintf("%s[%d..%d]", t.Base, t.Lo, t.Hi)
	case ArrayK:
		return fmt.Sprintf("ARRAY %s OF %s", t.Index, t.Base)
	case OpenArrayK:
		return fmt.Sprintf("ARRAY OF %s", t.Base)
	case RecordK:
		return "RECORD"
	case SetK:
		return fmt.Sprintf("SET OF %s", t.Base)
	case PointerK:
		return fmt.Sprintf("POINTER TO %s", t.Base)
	case RefK:
		return fmt.Sprintf("REF %s", t.Base)
	case ProcTypeK:
		return "PROCEDURE type"
	case OpaqueK:
		return "opaque type"
	default:
		return fmt.Sprintf("type(kind %d)", t.Kind)
	}
}

// Deref follows opaque-type resolutions to the underlying type (the
// implementation module patches Base when it completes an opaque type).
func (t *Type) Deref() *Type {
	for t != nil && t.Kind == OpaqueK && t.Base != nil {
		t = t.Base
	}
	return t
}

// Under resolves subranges (and opaques) to their base type.
func (t *Type) Under() *Type {
	t = t.Deref()
	for t != nil && t.Kind == SubrangeK {
		t = t.Base.Deref()
	}
	return t
}

// IsOrdinal reports whether t is an ordinal type (usable as array
// index, FOR control variable, CASE selector, set base...).
func (t *Type) IsOrdinal() bool {
	switch t.Under().Kind {
	case IntegerK, CardinalK, LongIntK, BooleanK, CharK, EnumK, WholeK:
		return true
	}
	return false
}

// IsInteger reports whether t belongs to the whole-number class.
func (t *Type) IsInteger() bool {
	switch t.Under().Kind {
	case IntegerK, CardinalK, LongIntK, WholeK:
		return true
	}
	return false
}

// IsReal reports whether t is REAL or LONGREAL.
func (t *Type) IsReal() bool {
	k := t.Under().Kind
	return k == RealK || k == LongRealK
}

// IsChar reports whether t is CHAR (or a subrange of CHAR).
func (t *Type) IsChar() bool { return t.Under().Kind == CharK }

// IsSet reports whether t is a set type (including BITSET).
func (t *Type) IsSet() bool {
	k := t.Under().Kind
	return k == SetK || k == BitSetK
}

// IsPointerLike reports whether t holds a pointer value (POINTER, REF,
// REFANY, ADDRESS-free dialect) and may be compared to NIL.
func (t *Type) IsPointerLike() bool {
	switch t.Under().Kind {
	case PointerK, RefK, RefAnyK, NilK, MutexK, TextK, ProcTypeK, ProcK, OpaqueK:
		return true
	}
	return false
}

// Bounds returns the ordinal value range of an ordinal type.
func (t *Type) Bounds() (lo, hi int64, ok bool) {
	d := t.Deref()
	switch d.Kind {
	case SubrangeK:
		return d.Lo, d.Hi, true
	case IntegerK:
		return -2147483648, 2147483647, true
	case LongIntK:
		return -(1 << 62), 1 << 62, true
	case CardinalK:
		return 0, 4294967295, true
	case BooleanK:
		return 0, 1, true
	case CharK:
		return 0, 255, true
	case EnumK:
		return 0, int64(d.EnumLen) - 1, true
	}
	return 0, 0, false
}

// Slots returns the storage size of a value of type t, in abstract
// machine slots (one slot holds one scalar).  Open arrays occupy two
// slots in a frame (base + length); that special case is handled by the
// code generator, not here.
func (t *Type) Slots() int {
	d := t.Deref()
	if s := d.slots.Load(); s > 0 {
		return int(s)
	}
	n := 1
	switch d.Kind {
	case ArrayK:
		lo, hi, _ := d.Index.Bounds()
		count := int(hi - lo + 1)
		if count < 0 {
			count = 0
		}
		n = count * d.Base.Slots()
	case RecordK:
		n = 0
		for _, f := range d.Fields {
			if end := f.Offset + f.Type.Slots(); end > n {
				n = end
			}
		}
		if n == 0 {
			n = 1 // empty record still occupies storage
		}
	}
	d.slots.Store(int32(n))
	return n
}

// WordBytes is the byte size of one storage slot reported by SIZE and
// TSIZE (the CVax the paper measured on had 4-byte words).
const WordBytes = 4

// NewEnum returns a fresh enumeration type with n constants.
func NewEnum(name string, n int) *Type {
	return &Type{Kind: EnumK, Name: name, EnumLen: n, Lo: 0, Hi: int64(n - 1)}
}

// NewSubrange returns lo..hi of base.
func NewSubrange(base *Type, lo, hi int64) *Type {
	return &Type{Kind: SubrangeK, Base: base, Lo: lo, Hi: hi}
}

// NewArray returns ARRAY index OF elem.
func NewArray(index, elem *Type) *Type {
	return &Type{Kind: ArrayK, Index: index, Base: elem}
}

// NewOpenArray returns ARRAY OF elem (formal parameters only).
func NewOpenArray(elem *Type) *Type { return &Type{Kind: OpenArrayK, Base: elem} }

// NewSet returns SET OF base.  The base must be an ordinal within
// [0, 63]; the analyzer validates that.
func NewSet(base *Type) *Type { return &Type{Kind: SetK, Base: base} }

// NewPointer returns POINTER TO base.
func NewPointer(base *Type) *Type { return &Type{Kind: PointerK, Base: base} }

// NewRef returns the Modula-2+ REF base.
func NewRef(base *Type) *Type { return &Type{Kind: RefK, Base: base} }

// NewProcType returns a procedure type.
func NewProcType(params []Param, ret *Type) *Type {
	return &Type{Kind: ProcTypeK, Params: params, Ret: ret}
}

// NewOpaque returns an unresolved opaque type (definition-module
// "TYPE T;"), later completed by the implementation module via Base.
func NewOpaque(name string) *Type { return &Type{Kind: OpaqueK, Name: name} }

// NewRecord returns a record with the given fields (offsets already
// assigned by the analyzer).
func NewRecord(fields []*Field) *Type { return &Type{Kind: RecordK, Fields: fields} }

// FieldNamed returns the record field with the given name, or nil.
func (t *Type) FieldNamed(name string) *Field {
	d := t.Deref()
	for _, f := range d.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// SameClass reports whether a and b may be mixed in an expression.
// This implements the compatibility rules described in the package
// comment, with the whole-number class merged (INTEGER, CARDINAL,
// LONGINT and their subranges interoperate, as in Modula-2+).
func SameClass(a, b *Type) bool {
	if a == nil || b == nil || a.Kind == Invalid || b.Kind == Invalid {
		return true // error already reported; avoid cascades
	}
	ua, ub := a.Under(), b.Under()
	if ua == ub {
		return true
	}
	switch {
	case ua.IsInteger() && ub.IsInteger():
		return true
	case ua.IsReal() && ub.IsReal():
		return true
	case ua.Kind == CharK && (ub.Kind == CharK || ub.Kind == StringK):
		return true
	case ub.Kind == CharK && ua.Kind == StringK:
		return true
	case ua.Kind == BitSetK && ub.Kind == BitSetK:
		return true
	case ua.IsPointerLike() && (ub.Kind == NilK):
		return true
	case ub.IsPointerLike() && (ua.Kind == NilK):
		return true
	case ua.Kind == TextK && ub.Kind == StringK,
		ub.Kind == TextK && ua.Kind == StringK:
		return true
	case ua.Kind == StringK && ub.Kind == StringK:
		return true
	case ua.Kind == RefAnyK && (ub.Kind == RefK || ub.Kind == RefAnyK),
		ub.Kind == RefAnyK && (ua.Kind == RefK || ua.Kind == RefAnyK):
		return true
	}
	return false
}

// Assignable reports whether a value of type src may be assigned to a
// variable of type dst, following Modula-2 assignment compatibility
// extended with the Modula-2+ cases (TEXT := string literal, REFANY :=
// any REF, procedure values).
func Assignable(dst, src *Type) bool {
	if dst == nil || src == nil || dst.Kind == Invalid || src.Kind == Invalid {
		return true
	}
	if dst.Deref() == src.Deref() {
		return true
	}
	ud, us := dst.Under(), src.Under()
	switch {
	case ud.IsInteger() && us.IsInteger():
		return true
	case ud.IsReal() && (us.IsReal() || us.Kind == WholeK):
		return true
	case ud.Kind == CharK && us.Kind == CharK:
		return true
	case ud.Kind == CharK && us.Kind == StringK:
		return true // the analyzer checks the literal's length
	case ud == us:
		return true
	case ud.Kind == ArrayK && us.Kind == StringK && ud.Base.Under().Kind == CharK:
		return true // string constant into char array (length checked separately)
	case ud.Kind == TextK && us.Kind == StringK:
		return true
	case us.Kind == NilK && ud.IsPointerLike():
		return true
	case ud.Kind == RefAnyK && (us.Kind == RefK || us.Kind == RefAnyK || us.Kind == NilK):
		return true
	case ud.Kind == ProcTypeK && us.Kind == ProcTypeK:
		return SameSignature(ud, us)
	case ud.Kind == ProcK && us.Kind == ProcTypeK && len(us.Params) == 0 && us.Ret == nil:
		return true
	case ud.Kind == BitSetK && us.Kind == BitSetK:
		return true
	}
	return false
}

// SameSignature reports whether two procedure types have compatible
// signatures (parameter modes and types, result type).
func SameSignature(a, b *Type) bool {
	a, b = a.Under(), b.Under()
	if len(a.Params) != len(b.Params) {
		return false
	}
	if (a.Ret == nil) != (b.Ret == nil) {
		return false
	}
	if a.Ret != nil && a.Ret.Deref() != b.Ret.Deref() && !(a.Ret.IsInteger() && b.Ret.IsInteger()) {
		return false
	}
	for i := range a.Params {
		pa, pb := a.Params[i], b.Params[i]
		if pa.ByRef != pb.ByRef || pa.Open != pb.Open {
			return false
		}
		if pa.Type.Deref() != pb.Type.Deref() && !(pa.Type.IsInteger() && pb.Type.IsInteger()) {
			return false
		}
	}
	return true
}

// Comparable reports whether values of type a and b may be compared
// with = and #.
func Comparable(a, b *Type) bool {
	if SameClass(a, b) {
		return true
	}
	ua, ub := a.Under(), b.Under()
	if ua.Kind == ProcTypeK && ub.Kind == ProcTypeK {
		return SameSignature(ua, ub)
	}
	if ua.IsPointerLike() && ub.IsPointerLike() {
		return ua == ub || ua.Kind == NilK || ub.Kind == NilK ||
			ua.Kind == RefAnyK || ub.Kind == RefAnyK
	}
	if ua.IsSet() && ub.IsSet() {
		return true
	}
	return false
}

// Ordered reports whether values of type a and b may be compared with
// the ordering operators.
func Ordered(a, b *Type) bool {
	if !SameClass(a, b) {
		return false
	}
	ua := a.Under()
	switch {
	case ua.IsInteger(), ua.IsReal(), ua.Kind == CharK, ua.Kind == EnumK,
		ua.Kind == BooleanK, ua.Kind == StringK, ua.Kind == TextK:
		return true
	}
	return false
}
