package codegen_test

import (
	"strings"
	"testing"

	"m2cc/internal/core"
	"m2cc/internal/seq"
	"m2cc/internal/source"
	"m2cc/internal/vm"
)

// runCase is one end-to-end language-behavior check: the module is
// compiled by BOTH compilers (their outputs must agree), linked and
// executed.  Exactly one of want/wantErr/wantTrap is set: expected
// stdout, an expected compile-error substring, or an expected runtime
// trap substring.
type runCase struct {
	name     string
	body     string // module body placed inside "MODULE T; ... END T."
	want     string
	wantErr  string
	wantTrap string
}

func (c runCase) src() string { return "MODULE T;\n" + c.body + "\nEND T.\n" }

func runAll(t *testing.T, cases []runCase) {
	t.Helper()
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			loader := source.NewMapLoader()
			loader.Add("T", source.Impl, c.src())

			seqr := seq.Compile("T", loader)
			conc := core.Compile("T", loader, core.Options{Workers: 4})
			if seqr.Diags.String() != conc.Diags.String() {
				t.Fatalf("compilers disagree on diagnostics\nseq:\n%s\nconc:\n%s",
					seqr.Diags, conc.Diags)
			}
			if c.wantErr != "" {
				if !seqr.Failed() {
					t.Fatalf("expected compile error containing %q", c.wantErr)
				}
				if !strings.Contains(seqr.Diags.String(), c.wantErr) {
					t.Fatalf("want error %q, got:\n%s", c.wantErr, seqr.Diags)
				}
				return
			}
			if seqr.Failed() {
				t.Fatalf("compile failed:\n%s", seqr.Diags)
			}
			if sl, cl := seqr.Object.Listing(), conc.Object.Listing(); sl != cl {
				t.Fatalf("listings differ\nseq:\n%s\nconc:\n%s", sl, cl)
			}
			prog, err := vm.Link([]*vm.Object{seqr.Object}, "T")
			if err != nil {
				t.Fatalf("link: %v", err)
			}
			var out strings.Builder
			err = vm.NewMachine(prog, strings.NewReader("42 7"), &out).Run()
			if c.wantTrap != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantTrap) {
					t.Fatalf("want trap %q, got err=%v output=%q", c.wantTrap, err, out.String())
				}
				return
			}
			if err != nil {
				t.Fatalf("run: %v\noutput: %q", err, out.String())
			}
			if out.String() != c.want {
				t.Fatalf("output %q, want %q", out.String(), c.want)
			}
		})
	}
}

func TestArithmetic(t *testing.T) {
	runAll(t, []runCase{
		{name: "integer ops", body: `
VAR a: INTEGER;
BEGIN
  a := 7;
  WriteInt(a + 3, 0); WriteChar(" ");
  WriteInt(a - 10, 0); WriteChar(" ");
  WriteInt(a * 6, 0); WriteChar(" ");
  WriteInt(a DIV 2, 0); WriteChar(" ");
  WriteInt(a MOD 2, 0); WriteLn`,
			want: "10 -3 42 3 1\n"},
		{name: "floor DIV and MOD on negatives", body: `
VAR a, b: INTEGER;
BEGIN
  a := -7; b := 2;
  WriteInt(a DIV b, 0); WriteChar(" ");
  WriteInt(a MOD b, 0); WriteLn`,
			want: "-4 1\n"},
		{name: "real arithmetic", body: `
VAR x: REAL;
BEGIN
  x := 1.5;
  WriteReal(x * 4.0 + 1.0, 0); WriteLn;
  WriteReal(x / 0.5, 0); WriteLn`,
			want: "7\n3\n"},
		{name: "unary minus and ABS", body: `
VAR i: INTEGER; r: REAL;
BEGIN
  i := -5; r := -2.5;
  WriteInt(ABS(i), 0); WriteChar(" ");
  WriteInt(-i, 0); WriteLn;
  WriteReal(ABS(r), 0); WriteLn`,
			want: "5 5\n2.5\n"},
		{name: "division by zero traps", body: `
VAR a, b: INTEGER;
BEGIN
  a := 1; b := 0;
  WriteInt(a DIV b, 0)`,
			wantTrap: "division by zero"},
		{name: "slash on integers is an error", body: `
VAR a: INTEGER;
BEGIN
  a := 4 / 2`,
			wantErr: "use DIV"},
		{name: "mixed int and real is an error", body: `
VAR a: INTEGER;
BEGIN
  a := 1 + 2.5`,
			wantErr: "incompatible"},
	})
}

func TestComparisonsAndBooleans(t *testing.T) {
	runAll(t, []runCase{
		{name: "integer relations", body: `
PROCEDURE B(x: BOOLEAN);
BEGIN
  IF x THEN WriteChar("T") ELSE WriteChar("F") END
END B;
BEGIN
  B(1 < 2); B(2 <= 2); B(3 > 4); B(4 >= 4); B(1 = 2); B(1 # 2); WriteLn`,
			want: "TFFTFT\n"[0:0] + "TTFTFT\n"},
		{name: "short circuit AND", body: `
VAR n: INTEGER;
PROCEDURE Touch(): BOOLEAN;
BEGIN
  INC(n);
  RETURN TRUE
END Touch;
BEGIN
  n := 0;
  IF (1 > 2) AND Touch() THEN END;
  WriteInt(n, 0); WriteLn`,
			want: "0\n"},
		{name: "short circuit OR", body: `
VAR n: INTEGER;
PROCEDURE Touch(): BOOLEAN;
BEGIN
  INC(n);
  RETURN FALSE
END Touch;
BEGIN
  n := 0;
  IF (1 < 2) OR Touch() THEN END;
  WriteInt(n, 0); WriteLn`,
			want: "0\n"},
		{name: "NOT and ampersand", body: `
BEGIN
  IF NOT (1 > 2) & (2 > 1) THEN WriteString("yes") END; WriteLn`,
			want: "yes\n"},
		{name: "char comparisons adapt literals", body: `
VAR c: CHAR;
BEGIN
  c := "m";
  IF ("a" < c) AND (c <= "z") AND (c # "n") THEN WriteString("mid") END; WriteLn`,
			want: "mid\n"},
		{name: "bool compared with int is an error", body: `
BEGIN
  IF TRUE = 1 THEN END`,
			wantErr: "cannot compare"},
	})
}

func TestControlFlow(t *testing.T) {
	runAll(t, []runCase{
		{name: "if elsif else", body: `
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 4 DO
    IF i = 1 THEN WriteChar("a")
    ELSIF i = 2 THEN WriteChar("b")
    ELSIF i = 3 THEN WriteChar("c")
    ELSE WriteChar("d")
    END
  END;
  WriteLn`,
			want: "abcd\n"},
		{name: "while and repeat", body: `
VAR i, s: INTEGER;
BEGIN
  i := 0; s := 0;
  WHILE i < 5 DO s := s + i; INC(i) END;
  REPEAT DEC(i); s := s * 2 UNTIL i = 0;
  WriteInt(s, 0); WriteLn`,
			want: "320\n"},
		{name: "loop exit", body: `
VAR i: INTEGER;
BEGIN
  i := 0;
  LOOP
    INC(i);
    IF i >= 3 THEN EXIT END
  END;
  WriteInt(i, 0); WriteLn`,
			want: "3\n"},
		{name: "nested loop exit is innermost", body: `
VAR i, j, n: INTEGER;
BEGIN
  n := 0; i := 0;
  LOOP
    INC(i); j := 0;
    LOOP
      INC(j); INC(n);
      IF j = 2 THEN EXIT END
    END;
    IF i = 3 THEN EXIT END
  END;
  WriteInt(n, 0); WriteLn`,
			want: "6\n"},
		{name: "for with BY and downward", body: `
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 10 TO 0 BY -2 DO s := s + i END;
  WriteInt(s, 0); WriteLn;
  FOR i := 1 TO 7 BY 3 DO WriteInt(i, 2) END;
  WriteLn`,
			want: "30\n 1 4 7\n"},
		{name: "for loop body skipped when empty range", body: `
VAR i, n: INTEGER;
BEGIN
  n := 0;
  FOR i := 5 TO 1 DO INC(n) END;
  WriteInt(n, 0); WriteLn`,
			want: "0\n"},
		{name: "case with ranges and else", body: `
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO 7 DO
    CASE i OF
      0: WriteChar("z")
    | 1, 3: WriteChar("o")
    | 4 .. 6: WriteChar("m")
    ELSE WriteChar("?")
    END
  END;
  WriteLn`,
			want: "zo?ommm?\n"},
		{name: "case without else traps on no match", body: `
VAR i: INTEGER;
BEGIN
  i := 9;
  CASE i OF 1: WriteChar("a") | 2: WriteChar("b") END`,
			wantTrap: "matches no label"},
		{name: "exit outside loop is an error", body: `
BEGIN
  EXIT`,
			wantErr: "EXIT outside of LOOP"},
	})
}

func TestProceduresAndParameters(t *testing.T) {
	runAll(t, []runCase{
		{name: "value vs VAR parameters", body: `
VAR a, b: INTEGER;
PROCEDURE Swap(VAR x, y: INTEGER);
VAR t: INTEGER;
BEGIN
  t := x; x := y; y := t
END Swap;
PROCEDURE Value(x: INTEGER);
BEGIN
  x := 999
END Value;
BEGIN
  a := 1; b := 2;
  Swap(a, b);
  Value(a);
  WriteInt(a, 0); WriteInt(b, 2); WriteLn`,
			want: "2 1\n"},
		{name: "recursion", body: `
PROCEDURE Fact(n: INTEGER): INTEGER;
BEGIN
  IF n <= 1 THEN RETURN 1 END;
  RETURN n * Fact(n - 1)
END Fact;
BEGIN
  WriteInt(Fact(6), 0); WriteLn`,
			want: "720\n"},
		{name: "mutual recursion with forward reference", body: `
PROCEDURE IsEven(n: INTEGER): BOOLEAN;
BEGIN
  IF n = 0 THEN RETURN TRUE END;
  RETURN IsOdd(n - 1)
END IsEven;
PROCEDURE IsOdd(n: INTEGER): BOOLEAN;
BEGIN
  IF n = 0 THEN RETURN FALSE END;
  RETURN IsEven(n - 1)
END IsOdd;
BEGIN
  IF IsEven(10) THEN WriteString("even") END; WriteLn`,
			want: "even\n"},
		{name: "nested procedures see enclosing locals", body: `
PROCEDURE Outer(base: INTEGER): INTEGER;
VAR acc: INTEGER;
  PROCEDURE Add(n: INTEGER);
  BEGIN
    acc := acc + n + base
  END Add;
BEGIN
  acc := 0;
  Add(1); Add(2);
  RETURN acc
END Outer;
BEGIN
  WriteInt(Outer(10), 0); WriteLn`,
			want: "23\n"},
		{name: "two levels of nesting", body: `
PROCEDURE L1(): INTEGER;
VAR a: INTEGER;
  PROCEDURE L2(): INTEGER;
    PROCEDURE L3(): INTEGER;
    BEGIN
      RETURN a * 2
    END L3;
  BEGIN
    RETURN L3() + 1
  END L2;
BEGIN
  a := 5;
  RETURN L2()
END L1;
BEGIN
  WriteInt(L1(), 0); WriteLn`,
			want: "11\n"},
		{name: "function result must be used", body: `
PROCEDURE F(): INTEGER;
BEGIN
  RETURN 1
END F;
BEGIN
  F`,
			wantErr: "result must be used"},
		{name: "proper procedure in expression is an error", body: `
VAR x: INTEGER;
PROCEDURE P;
BEGIN
END P;
BEGIN
  x := P()`,
			wantErr: "returns no value"},
		{name: "function falling off the end traps", body: `
PROCEDURE F(n: INTEGER): INTEGER;
BEGIN
  IF n > 0 THEN RETURN n END
END F;
BEGIN
  WriteInt(F(-1), 0)`,
			wantTrap: "without RETURN"},
		{name: "wrong argument count", body: `
PROCEDURE F(x: INTEGER): INTEGER;
BEGIN
  RETURN x
END F;
VAR a: INTEGER;
BEGIN
  a := F(1, 2)`,
			wantErr: "expects 1 argument"},
		{name: "VAR argument must be a variable", body: `
PROCEDURE P(VAR x: INTEGER);
BEGIN
  x := 1
END P;
BEGIN
  P(42)`,
			wantErr: "requires a variable"},
	})
}

func TestArraysAndRecords(t *testing.T) {
	runAll(t, []runCase{
		{name: "array indexing and assignment copies", body: `
TYPE A = ARRAY [1..5] OF INTEGER;
VAR x, y: A; i: INTEGER;
BEGIN
  FOR i := 1 TO 5 DO x[i] := i * i END;
  y := x;
  x[3] := 0;
  WriteInt(y[3], 0); WriteInt(x[3], 2); WriteLn`,
			want: "9 0\n"},
		{name: "array bounds trap low and high", body: `
TYPE A = ARRAY [2..4] OF INTEGER;
VAR x: A; i: INTEGER;
BEGIN
  i := 5;
  x[i] := 1`,
			wantTrap: "out of bounds"},
		{name: "multi dimensional arrays", body: `
TYPE M = ARRAY [0..2], [0..2] OF INTEGER;
VAR m: M; i, j, s: INTEGER;
BEGIN
  FOR i := 0 TO 2 DO
    FOR j := 0 TO 2 DO m[i, j] := i * 3 + j END
  END;
  s := m[0][0] + m[1, 1] + m[2][2];
  WriteInt(s, 0); WriteLn`,
			want: "12\n"},
		{name: "records and nested fields", body: `
TYPE Inner = RECORD a, b: INTEGER END;
     Outer = RECORD x: Inner; y: INTEGER END;
VAR o, p: Outer;
BEGIN
  o.x.a := 1; o.x.b := 2; o.y := 3;
  p := o;
  o.x.a := 99;
  WriteInt(p.x.a + p.x.b + p.y, 0); WriteLn`,
			want: "6\n"},
		{name: "record assignment type mismatch", body: `
TYPE R1 = RECORD a: INTEGER END;
     R2 = RECORD a: INTEGER END;
VAR x: R1; y: R2;
BEGIN
  x := y`,
			wantErr: "incompatible assignment"},
		{name: "variant records share storage", body: `
TYPE V = RECORD
  CASE tag: INTEGER OF
    0: i: INTEGER
  | 1: c: CHAR
  END
END;
VAR v: V;
BEGIN
  v.tag := 0;
  v.i := 65;
  WriteChar(v.c); WriteLn`,
			want: "A\n"},
		{name: "with statement caches the address once", body: `
TYPE R = RECORD a, b: INTEGER END;
VAR rs: ARRAY [0..1] OF R; i: INTEGER;
BEGIN
  i := 0;
  WITH rs[i] DO
    a := 7;
    i := 1;   (* must not re-evaluate the designator *)
    b := 8
  END;
  WriteInt(rs[0].a, 0); WriteInt(rs[0].b, 2); WriteInt(rs[1].a, 2); WriteLn`,
			want: "7 8 0\n"},
		{name: "nested with shadows outer with", body: `
TYPE R = RECORD a: INTEGER; inner: RECORD a: INTEGER END END;
VAR r: R;
BEGIN
  WITH r DO
    a := 1;
    WITH inner DO a := 2 END
  END;
  WriteInt(r.a, 0); WriteInt(r.inner.a, 2); WriteLn`,
			want: "1 2\n"},
		{name: "unknown field", body: `
TYPE R = RECORD a: INTEGER END;
VAR r: R;
BEGIN
  r.b := 1`,
			wantErr: "has no field"},
		{name: "indexing a non array", body: `
VAR i: INTEGER;
BEGIN
  i[0] := 1`,
			wantErr: "cannot index"},
	})
}

func TestOpenArraysAndStrings(t *testing.T) {
	runAll(t, []runCase{
		{name: "open array HIGH and element access", body: `
VAR a5: ARRAY [0..4] OF INTEGER;
    a3: ARRAY [0..2] OF INTEGER;
PROCEDURE Sum(a: ARRAY OF INTEGER): INTEGER;
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 0 TO INTEGER(HIGH(a)) DO s := s + a[i] END;
  RETURN s
END Sum;
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO 4 DO a5[i] := 1 END;
  FOR i := 0 TO 2 DO a3[i] := 10 END;
  WriteInt(Sum(a5), 0); WriteInt(Sum(a3), 3); WriteLn`,
			want: "5 30\n"},
		{name: "VAR open array writes through", body: `
VAR a: ARRAY [0..3] OF INTEGER;
PROCEDURE Clear(VAR x: ARRAY OF INTEGER);
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO INTEGER(HIGH(x)) DO x[i] := -1 END
END Clear;
BEGIN
  a[2] := 42;
  Clear(a);
  WriteInt(a[2], 0); WriteLn`,
			want: "-1\n"},
		{name: "open array forwarding", body: `
PROCEDURE Len(a: ARRAY OF CHAR): INTEGER;
BEGIN
  RETURN INTEGER(HIGH(a)) + 1
END Len;
PROCEDURE Via(a: ARRAY OF CHAR): INTEGER;
BEGIN
  RETURN Len(a)
END Via;
BEGIN
  WriteInt(Via("hello"), 0); WriteLn`,
			want: "5\n"},
		{name: "open array bounds trap", body: `
PROCEDURE First(a: ARRAY OF INTEGER): INTEGER;
BEGIN
  RETURN a[5]
END First;
VAR x: ARRAY [0..2] OF INTEGER;
BEGIN
  WriteInt(First(x), 0)`,
			wantTrap: "out of bounds"},
		{name: "string into char array pads with 0C", body: `
VAR buf: ARRAY [0..7] OF CHAR;
VAR i, n: INTEGER;
BEGIN
  buf := "hi";
  n := 0;
  FOR i := 0 TO 7 DO
    IF buf[i] = 0C THEN INC(n) END
  END;
  WriteInt(n, 0); WriteLn;
  WriteString(buf); WriteLn`,
			want: "6\nhi\n"},
		{name: "string too long for array", body: `
VAR buf: ARRAY [0..2] OF CHAR;
BEGIN
  buf := "overflow"`,
			wantErr: "does not fit"},
		{name: "char array element assignment", body: `
VAR buf: ARRAY [0..3] OF CHAR;
BEGIN
  buf := "abcd";
  buf[1] := "X";
  WriteString(buf); WriteLn`,
			want: "aXcd\n"},
	})
}

func TestSets(t *testing.T) {
	runAll(t, []runCase{
		{name: "set operators", body: `
TYPE S = SET OF [0..15];
VAR a, b: S;
PROCEDURE Count(s: S): INTEGER;
VAR i, n: INTEGER;
BEGIN
  n := 0;
  FOR i := 0 TO 15 DO IF i IN s THEN INC(n) END END;
  RETURN n
END Count;
BEGIN
  a := S{1, 2, 3};
  b := S{3, 4};
  WriteInt(Count(a + b), 0);
  WriteInt(Count(a - b), 2);
  WriteInt(Count(a * b), 2);
  WriteInt(Count(a / b), 2);
  WriteLn`,
			want: "4 2 1 3\n"},
		{name: "INCL EXCL and membership", body: `
VAR s: BITSET;
BEGIN
  s := {};
  INCL(s, 5);
  INCL(s, 9);
  EXCL(s, 5);
  IF 9 IN s THEN WriteChar("y") END;
  IF 5 IN s THEN WriteChar("n") END;
  WriteLn`,
			want: "y\n"},
		{name: "set relations", body: `
VAR a, b: BITSET;
BEGIN
  a := {1, 2}; b := {1, 2, 3};
  IF a <= b THEN WriteChar("s") END;
  IF b >= a THEN WriteChar("S") END;
  IF a # b THEN WriteChar("d") END;
  WriteLn`,
			want: "sSd\n"},
		{name: "runtime set constructor with ranges", body: `
VAR s: BITSET; lo, i, n: INTEGER;
BEGIN
  lo := 2;
  s := {lo .. lo + 3, 9};
  n := 0;
  FOR i := 0 TO 31 DO IF i IN s THEN INC(n) END END;
  WriteInt(n, 0); WriteLn`,
			want: "5\n"},
		{name: "set element out of range traps", body: `
VAR s: BITSET; i: INTEGER;
BEGIN
  i := 99;
  INCL(s, i)`,
			wantTrap: "outside 0..63"},
	})
}

func TestEnumsAndSubranges(t *testing.T) {
	runAll(t, []runCase{
		{name: "enum iteration and ORD", body: `
TYPE Day = (Mon, Tue, Wed, Thu, Fri);
VAR d: Day; s: INTEGER;
BEGIN
  s := 0;
  FOR d := Mon TO Fri DO s := s + INTEGER(ORD(d)) END;
  WriteInt(s, 0); WriteLn`,
			want: "10\n"},
		{name: "enum in case", body: `
TYPE Color = (Red, Green, Blue);
VAR c: Color;
BEGIN
  c := Green;
  CASE c OF
    Red: WriteString("r")
  | Green: WriteString("g")
  | Blue: WriteString("b")
  END;
  WriteLn`,
			want: "g\n"},
		{name: "VAL converts ordinals", body: `
TYPE Color = (Red, Green, Blue);
VAR c: Color;
BEGIN
  c := VAL(Color, 2);
  IF c = Blue THEN WriteString("blue") END; WriteLn`,
			want: "blue\n"},
		{name: "subrange assignment checks range", body: `
VAR s: [1..10]; i: INTEGER;
BEGIN
  i := 11;
  s := i`,
			wantTrap: "outside range 1..10"},
		{name: "subrange accepts in-range values", body: `
VAR s: [1..10];
BEGIN
  s := 10;
  WriteInt(s, 0); WriteLn`,
			want: "10\n"},
		{name: "CHR range checks", body: `
VAR i: INTEGER;
BEGIN
  i := 300;
  WriteChar(CHR(i))`,
			wantTrap: "outside range 0..255"},
		{name: "CAP and ODD", body: `
BEGIN
  WriteChar(CAP("q"));
  IF ODD(7) THEN WriteChar("o") END;
  IF ODD(8) THEN WriteChar("x") END;
  WriteLn`,
			want: "Qo\n"},
	})
}

func TestPointersAndNew(t *testing.T) {
	runAll(t, []runCase{
		{name: "NEW dereference and NIL", body: `
TYPE P = POINTER TO RECORD v: INTEGER END;
VAR p, q: P;
BEGIN
  NEW(p);
  p^.v := 5;
  q := p;
  q^.v := q^.v + 1;
  WriteInt(p^.v, 0); WriteLn;
  IF p = q THEN WriteString("same") END; WriteLn;
  p := NIL;
  IF p = NIL THEN WriteString("nil") END; WriteLn`,
			want: "6\nsame\nnil\n"},
		{name: "NIL dereference traps", body: `
TYPE P = POINTER TO INTEGER;
VAR p: P;
BEGIN
  p := NIL;
  WriteInt(p^, 0)`,
			wantTrap: "NIL dereference"},
		{name: "DISPOSE clears the pointer", body: `
TYPE P = POINTER TO INTEGER;
VAR p: P;
BEGIN
  NEW(p);
  DISPOSE(p);
  IF p = NIL THEN WriteString("cleared") END; WriteLn`,
			want: "cleared\n"},
		{name: "linked structure", body: `
TYPE Node = POINTER TO Rec;
     Rec = RECORD v: INTEGER; next: Node END;
VAR head, n: Node; i, s: INTEGER;
BEGIN
  head := NIL;
  FOR i := 1 TO 4 DO
    NEW(n); n^.v := i; n^.next := head; head := n
  END;
  s := 0;
  n := head;
  WHILE n # NIL DO s := s * 10 + n^.v; n := n^.next END;
  WriteInt(s, 0); WriteLn`,
			want: "4321\n"},
		{name: "REF types allocate like pointers", body: `
TYPE R = REF RECORD v: INTEGER END;
VAR r: R;
BEGIN
  NEW(r);
  r^.v := 77;
  WriteInt(r^.v, 0); WriteLn`,
			want: "77\n"},
	})
}

func TestProcedureValues(t *testing.T) {
	runAll(t, []runCase{
		{name: "procedure variables", body: `
TYPE F = PROCEDURE (INTEGER): INTEGER;
VAR f: F;
PROCEDURE Double(x: INTEGER): INTEGER;
BEGIN
  RETURN 2 * x
END Double;
PROCEDURE Square(x: INTEGER): INTEGER;
BEGIN
  RETURN x * x
END Square;
BEGIN
  f := Double;
  WriteInt(f(10), 0);
  f := Square;
  WriteInt(f(10), 4); WriteLn`,
			want: "20 100\n"},
		{name: "procedure value comparisons", body: `
TYPE F = PROCEDURE (INTEGER): INTEGER;
VAR f: F;
PROCEDURE Id(x: INTEGER): INTEGER;
BEGIN
  RETURN x
END Id;
BEGIN
  f := Id;
  IF f = Id THEN WriteString("eq") END;
  WriteLn`,
			want: "eq\n"},
		{name: "signature mismatch rejected", body: `
TYPE F = PROCEDURE (INTEGER): INTEGER;
VAR f: F;
PROCEDURE Two(x, y: INTEGER): INTEGER;
BEGIN
  RETURN x + y
END Two;
BEGIN
  f := Two`,
			wantErr: "incompatible assignment"},
		{name: "call through NIL procedure traps", body: `
TYPE F = PROCEDURE;
VAR f: F;
BEGIN
  f`,
			wantTrap: "NIL procedure"},
	})
}

func TestExceptions(t *testing.T) {
	runAll(t, []runCase{
		{name: "raise and matching handler", body: `
EXCEPTION E1, E2;
BEGIN
  TRY
    RAISE E2;
    WriteString("skipped")
  EXCEPT
    E1: WriteString("one")
  | E2: WriteString("two")
  END;
  WriteLn`,
			want: "two\n"},
		{name: "exceptions propagate through calls", body: `
EXCEPTION Deep;
PROCEDURE Inner;
BEGIN
  RAISE Deep
END Inner;
PROCEDURE Middle;
BEGIN
  Inner;
  WriteString("unreached")
END Middle;
BEGIN
  TRY
    Middle
  EXCEPT
    Deep: WriteString("caught")
  END;
  WriteLn`,
			want: "caught\n"},
		{name: "unmatched handler reraises", body: `
EXCEPTION A, B;
BEGIN
  TRY
    TRY
      RAISE A
    EXCEPT
      B: WriteString("wrong")
    END
  EXCEPT
    A: WriteString("outer")
  END;
  WriteLn`,
			want: "outer\n"},
		{name: "else handler catches everything", body: `
EXCEPTION A;
BEGIN
  TRY
    RAISE A
  EXCEPT
    ELSE WriteString("else")
  END;
  WriteLn`,
			want: "else\n"},
		{name: "unhandled exception reported", body: `
EXCEPTION Boom;
BEGIN
  RAISE Boom`,
			wantTrap: "unhandled exception"},
		{name: "nested try restores handlers", body: `
EXCEPTION A;
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 2 DO
    TRY
      RAISE A
    EXCEPT
      A: WriteInt(i, 0)
    END
  END;
  WriteLn`,
			want: "12\n"},
		{name: "raising a non-exception is an error", body: `
VAR x: INTEGER;
BEGIN
  RAISE x`,
			wantErr: "not an exception"},
	})
}

func TestBuiltinsAndConversions(t *testing.T) {
	runAll(t, []runCase{
		{name: "INC DEC with and without step", body: `
VAR i: INTEGER;
BEGIN
  i := 10;
  INC(i); INC(i, 5); DEC(i, 2); DEC(i);
  WriteInt(i, 0); WriteLn`,
			want: "13\n"},
		{name: "INC evaluates designator once", body: `
VAR a: ARRAY [0..1] OF INTEGER; i: INTEGER;
BEGIN
  i := 0;
  a[0] := 5; a[1] := 50;
  INC(a[i], 1);
  WriteInt(a[0], 0); WriteInt(a[1], 3); WriteLn`,
			want: "6 50\n"},
		{name: "FLOAT TRUNC round trip", body: `
VAR r: REAL; i: INTEGER;
BEGIN
  r := FLOAT(7) / 2.0;
  i := INTEGER(TRUNC(r));
  WriteReal(r, 0); WriteChar(" "); WriteInt(i, 0); WriteLn`,
			want: "3.5 3\n"},
		{name: "math builtins", body: `
VAR r: REAL;
BEGIN
  r := sqrt(16.0) + exp(0.0) + cos(0.0);
  WriteReal(r, 0); WriteLn`,
			want: "6\n"},
		{name: "sqrt of negative traps", body: `
VAR r: REAL;
BEGIN
  r := -4.0;
  WriteReal(sqrt(r), 0)`,
			wantTrap: "sqrt of negative"},
		{name: "SIZE and TSIZE", body: `
TYPE R = RECORD a, b, c: INTEGER END;
VAR r: R;
BEGIN
  WriteInt(INTEGER(SIZE(r)), 0); WriteChar(" ");
  WriteInt(INTEGER(TSIZE(R)), 0); WriteLn`,
			want: "12 12\n"},
		{name: "MIN MAX of types", body: `
TYPE S = [3..9];
BEGIN
  WriteInt(INTEGER(MAX(BOOLEAN)), 0);
  WriteInt(INTEGER(MIN(S)), 2);
  WriteLn`,
			want: "1 3\n"},
		{name: "type transfer reinterprets sets", body: `
VAR s: BITSET; i: INTEGER;
BEGIN
  s := {0, 2};
  i := INTEGER(s);
  WriteInt(i, 0); WriteLn`,
			want: "5\n"},
		{name: "type transfer int to real is an error", body: `
VAR r: REAL;
BEGIN
  r := REAL(1)`,
			wantErr: "use FLOAT"},
		{name: "HALT stops cleanly", body: `
BEGIN
  WriteString("before"); WriteLn;
  HALT;
  WriteString("after")`,
			want: "before\n"},
		{name: "ASSERT failure traps", body: `
BEGIN
  ASSERT(1 > 2)`,
			wantTrap: "assertion failed"},
		{name: "ReadInt reads stdin", body: `
VAR a, b: INTEGER;
BEGIN
  ReadInt(a); ReadInt(b);
  WriteInt(a + b, 0); WriteLn`,
			want: "49\n"},
		{name: "WriteInt field width pads", body: `
BEGIN
  WriteInt(7, 4); WriteInt(-13, 6); WriteLn`,
			want: "   7   -13\n"},
	})
}

func TestTextAndLock(t *testing.T) {
	runAll(t, []runCase{
		{name: "TEXT values and comparisons", body: `
VAR t, u: TEXT;
BEGIN
  t := "alpha";
  u := t;
  IF t = u THEN WriteString("same ") END;
  IF t < "beta" THEN WriteString("ordered") END;
  WriteLn;
  WriteString(t); WriteLn`,
			want: "same ordered\nalpha\n"},
		{name: "LOCK runs its body", body: `
VAR m: MUTEX; n: INTEGER;
BEGIN
  n := 1;
  LOCK m DO n := n + 1 END;
  WriteInt(n, 0); WriteLn`,
			want: "2\n"},
	})
}

func TestNameResolutionRules(t *testing.T) {
	runAll(t, []runCase{
		{name: "procedure body sees later module variables", body: `
PROCEDURE Get(): INTEGER;
BEGIN
  RETURN late
END Get;
VAR late: INTEGER;
BEGIN
  late := 42;
  WriteInt(Get(), 0); WriteLn`,
			want: "42\n"},
		{name: "locals shadow module variables", body: `
VAR x: INTEGER;
PROCEDURE P(): INTEGER;
VAR x: INTEGER;
BEGIN
  x := 5;
  RETURN x
END P;
BEGIN
  x := 1;
  WriteInt(P(), 0); WriteInt(x, 2); WriteLn`,
			want: "5 1\n"},
		{name: "undeclared identifier", body: `
BEGIN
  ghost := 1`,
			wantErr: "undeclared identifier ghost"},
		{name: "builtins usable at every depth", body: `
PROCEDURE A;
  PROCEDURE B;
  BEGIN
    WriteInt(INTEGER(ABS(-3)), 0)
  END B;
BEGIN
  B
END A;
BEGIN
  A; WriteLn`,
			want: "3\n"},
		{name: "assignment to constant is an error", body: `
CONST c = 1;
BEGIN
  c := 2`,
			wantErr: "cannot assign"},
		{name: "redeclaration in same scope", body: `
VAR x: INTEGER;
VAR x: CHAR;
BEGIN
END`,
			wantErr: "redeclared"},
	})
}
