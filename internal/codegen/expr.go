package codegen

import (
	"m2cc/internal/ast"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/types"
	"m2cc/internal/vm"
)

// charLitByte reports whether e is a single-character string literal
// (which Modula-2 treats as CHAR-compatible) and returns its value.
func charLitByte(e ast.Expr) (byte, bool) {
	switch e := e.(type) {
	case *ast.StringLit:
		if len(e.Value) == 1 {
			return e.Value[0], true
		}
	case *ast.CharLit:
		return e.Value, true
	}
	return 0, false
}

// compileExpr compiles e, leaving its value on the stack (for
// aggregates: its address; the bool result reports that case).
func (g *Gen) compileExpr(e ast.Expr) (*types.Type, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		g.emit(vm.Instr{Op: vm.PushInt, Imm: e.Value})
		return types.Whole, false
	case *ast.RealLit:
		g.emit(vm.Instr{Op: vm.PushReal, F: e.Value})
		return types.Real, false
	case *ast.CharLit:
		g.emit(vm.Instr{Op: vm.PushInt, Imm: int64(e.Value)})
		return types.Char, false
	case *ast.StringLit:
		g.emit(vm.Instr{Op: vm.PushStr, S: e.Value})
		return types.StringT, false
	case *ast.SetExpr:
		return g.compileSet(e), false
	case *ast.UnaryExpr:
		return g.compileUnary(e), false
	case *ast.BinaryExpr:
		return g.compileBinary(e), false
	case *ast.Designator:
		p := g.resolveDesig(e, false)
		return g.loadPlace(p, e.Head.Pos)
	case *ast.CallExpr:
		return g.compileCallExpr(e), false
	default:
		g.errorf(e.ExprPos(), "unsupported expression")
		g.emit(vm.Instr{Op: vm.PushInt})
		return types.Bad, false
	}
}

// compileScalarExpr compiles e and requires a one-slot value.
func (g *Gen) compileScalarExpr(e ast.Expr) *types.Type {
	t, agg := g.compileExpr(e)
	if agg {
		g.errorf(e.ExprPos(), "aggregate value of type %s not allowed here", t)
		g.emit(vm.Instr{Op: vm.LdInd}) // degrade to first slot to keep the stack balanced
	}
	return t
}

// compileOrdinalExpr compiles e and requires an ordinal value.
func (g *Gen) compileOrdinalExpr(e ast.Expr) *types.Type {
	if b, ok := charLitByte(e); ok {
		g.emit(vm.Instr{Op: vm.PushInt, Imm: int64(b)})
		return types.Char
	}
	t := g.compileScalarExpr(e)
	if t != types.Bad && !t.IsOrdinal() {
		g.errorf(e.ExprPos(), "ordinal value expected, have %s", t)
	}
	return t
}

// compileCoerced compiles e in a context expecting type want, turning
// single-character string literals into CHAR ordinals when the context
// asks for a CHAR (and rejecting longer literals there — the one case
// types.Assignable cannot see, since it has no literal lengths).
func (g *Gen) compileCoerced(e ast.Expr, want *types.Type) *types.Type {
	if want != nil && want.IsChar() {
		if b, ok := charLitByte(e); ok {
			g.emit(vm.Instr{Op: vm.PushInt, Imm: int64(b)})
			return types.Char
		}
		if s, ok := e.(*ast.StringLit); ok && len(s.Value) != 1 {
			g.errorf(e.ExprPos(), "incompatible assignment: CHAR := string of length %d", len(s.Value))
			g.emit(vm.Instr{Op: vm.PushInt})
			return types.Char
		}
	}
	return g.compileScalarExpr(e)
}

func (g *Gen) compileUnary(e *ast.UnaryExpr) *types.Type {
	t := g.compileScalarExpr(e.X)
	switch e.Op {
	case token.Plus:
		if !t.IsInteger() && !t.IsReal() {
			g.errorf(e.Pos, "unary + requires a numeric operand, have %s", t)
		}
		return t
	case token.Minus:
		switch {
		case t.IsReal():
			g.emit(vm.Instr{Op: vm.NegF})
		case t.IsInteger():
			g.emit(vm.Instr{Op: vm.NegI})
			if t.Under().Kind == types.WholeK {
				return types.Whole
			}
			return types.Integer
		default:
			g.errorf(e.Pos, "unary - requires a numeric operand, have %s", t)
		}
		return t
	case token.NOT:
		if t.Under().Kind != types.BooleanK && t != types.Bad {
			g.errorf(e.Pos, "NOT requires a BOOLEAN operand, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.NotB})
		return types.Boolean
	}
	return types.Bad
}

// relOf maps a relation token to the VM relation code.
func relOf(op token.Kind) int32 {
	switch op {
	case token.Equal:
		return vm.RelEq
	case token.NotEqual:
		return vm.RelNe
	case token.Less:
		return vm.RelLt
	case token.LessEq:
		return vm.RelLe
	case token.Greater:
		return vm.RelGt
	default:
		return vm.RelGe
	}
}

// swapRel mirrors a relation for swapped operands.
func swapRel(r int32) int32 {
	switch r {
	case vm.RelLt:
		return vm.RelGt
	case vm.RelLe:
		return vm.RelGe
	case vm.RelGt:
		return vm.RelLt
	case vm.RelGe:
		return vm.RelLe
	default:
		return r
	}
}

func (g *Gen) compileBinary(e *ast.BinaryExpr) *types.Type {
	switch e.Op {
	case token.AND:
		g.boolOperand(e.X)
		g.emit(vm.Instr{Op: vm.Dup})
		j := g.emit(vm.Instr{Op: vm.Jz})
		g.emit(vm.Instr{Op: vm.Drop})
		g.boolOperand(e.Y)
		g.patch(j)
		return types.Boolean
	case token.OR:
		g.boolOperand(e.X)
		g.emit(vm.Instr{Op: vm.Dup})
		j := g.emit(vm.Instr{Op: vm.Jnz})
		g.emit(vm.Instr{Op: vm.Drop})
		g.boolOperand(e.Y)
		g.patch(j)
		return types.Boolean
	case token.Equal, token.NotEqual, token.Less, token.LessEq, token.Greater, token.GreaterEq:
		return g.compileRelation(e)
	case token.IN:
		et := g.compileOrdinalExpr(e.X)
		st := g.compileScalarExpr(e.Y)
		if st != types.Bad && !st.IsSet() {
			g.errorf(e.Pos, "IN requires a set, have %s", st)
		}
		_ = et
		g.emit(vm.Instr{Op: vm.SetIn})
		return types.Boolean
	}

	// Arithmetic and set operators.
	tx := g.compileScalarExpr(e.X)
	ty := g.compileCoerced(e.Y, tx)
	if !types.SameClass(tx, ty) {
		g.errorf(e.Pos, "operands of %s are incompatible: %s and %s", e.Op, tx, ty)
		return types.Bad
	}
	result := tx
	if tx.Under().Kind == types.WholeK {
		result = ty
	}
	switch {
	case tx.IsInteger() && ty.IsInteger():
		switch e.Op {
		case token.Plus:
			g.emit(vm.Instr{Op: vm.AddI})
		case token.Minus:
			g.emit(vm.Instr{Op: vm.SubI})
		case token.Star:
			g.emit(vm.Instr{Op: vm.MulI})
		case token.DIV:
			g.emit(vm.Instr{Op: vm.DivI, A: int32(e.Pos.Line)})
		case token.MOD:
			g.emit(vm.Instr{Op: vm.ModI, A: int32(e.Pos.Line)})
		case token.Slash:
			g.errorf(e.Pos, "/ applies to reals and sets; use DIV for whole numbers")
		default:
			g.errorf(e.Pos, "invalid integer operator %s", e.Op)
		}
		return result
	case tx.IsReal() && ty.IsReal():
		switch e.Op {
		case token.Plus:
			g.emit(vm.Instr{Op: vm.AddF})
		case token.Minus:
			g.emit(vm.Instr{Op: vm.SubF})
		case token.Star:
			g.emit(vm.Instr{Op: vm.MulF})
		case token.Slash:
			g.emit(vm.Instr{Op: vm.DivF, A: int32(e.Pos.Line)})
		default:
			g.errorf(e.Pos, "invalid real operator %s", e.Op)
		}
		return result
	case tx.IsSet() && ty.IsSet():
		switch e.Op {
		case token.Plus:
			g.emit(vm.Instr{Op: vm.SetUnion})
		case token.Minus:
			g.emit(vm.Instr{Op: vm.SetDiff})
		case token.Star:
			g.emit(vm.Instr{Op: vm.SetInter})
		case token.Slash:
			g.emit(vm.Instr{Op: vm.SetSymDiff})
		default:
			g.errorf(e.Pos, "invalid set operator %s", e.Op)
		}
		return result
	}
	g.errorf(e.Pos, "operator %s does not apply to %s", e.Op, tx)
	return types.Bad
}

func (g *Gen) boolOperand(e ast.Expr) {
	t := g.compileScalarExpr(e)
	if t != types.Bad && t.Under().Kind != types.BooleanK {
		g.errorf(e.ExprPos(), "BOOLEAN operand expected, have %s", t)
	}
}

func (g *Gen) compileRelation(e *ast.BinaryExpr) *types.Type {
	rel := relOf(e.Op)
	x, y := e.X, e.Y
	// Single-character string literals adapt to a CHAR on the other
	// side; compile the non-literal side first so its type decides.
	if _, ok := charLitByte(x); ok {
		if _, oy := charLitByte(y); !oy {
			x, y = y, x
			rel = swapRel(rel)
		}
	}
	tx := g.compileScalarExpr(x)
	ty := g.compileCoerced(y, tx)
	ux, uy := tx.Under(), ty.Under()
	switch {
	case tx.IsInteger() && ty.IsInteger(),
		ux.Kind == types.CharK && uy.Kind == types.CharK,
		ux.Kind == types.BooleanK && uy.Kind == types.BooleanK,
		ux.Kind == types.EnumK && ux == uy:
		g.emit(vm.Instr{Op: vm.CmpI, A: rel})
	case tx.IsReal() && ty.IsReal():
		g.emit(vm.Instr{Op: vm.CmpF, A: rel})
	case (ux.Kind == types.StringK || ux.Kind == types.TextK) &&
		(uy.Kind == types.StringK || uy.Kind == types.TextK):
		g.emit(vm.Instr{Op: vm.CmpS, A: rel})
	case tx.IsSet() && ty.IsSet():
		if rel == vm.RelLt || rel == vm.RelGt {
			g.errorf(e.Pos, "sets compare with =, #, <= and >= only")
		}
		g.emit(vm.Instr{Op: vm.SetCmp, A: rel})
	case tx.IsPointerLike() && ty.IsPointerLike():
		if rel != vm.RelEq && rel != vm.RelNe {
			g.errorf(e.Pos, "pointers compare with = and # only")
		}
		if !types.Comparable(tx, ty) {
			g.errorf(e.Pos, "cannot compare %s with %s", tx, ty)
		}
		g.emit(vm.Instr{Op: vm.CmpA, A: rel})
	default:
		if tx != types.Bad && ty != types.Bad {
			g.errorf(e.Pos, "cannot compare %s with %s", tx, ty)
		}
		g.emit(vm.Instr{Op: vm.CmpI, A: rel})
	}
	return types.Boolean
}

// compileSet compiles a set constructor.
func (g *Gen) compileSet(e *ast.SetExpr) *types.Type {
	setType := types.BitSet
	if e.Type != nil {
		t := g.env.ResolveTypeName(g.scope, e.Type)
		if t != types.Bad && !t.IsSet() {
			g.errorf(e.Pos, "%s is not a set type", t)
		} else if t != types.Bad {
			setType = t
		}
	}
	g.emit(vm.Instr{Op: vm.PushInt, Imm: 0})
	for _, el := range e.Elems {
		g.compileOrdinalExpr(el.Lo)
		if el.Hi == nil {
			g.emit(vm.Instr{Op: vm.SetAdd, A: int32(e.Pos.Line)})
		} else {
			g.compileOrdinalExpr(el.Hi)
			g.emit(vm.Instr{Op: vm.SetAddRng, A: int32(e.Pos.Line)})
		}
	}
	return setType
}

// compileCallExpr compiles a function application: a builtin function,
// a type transfer T(x), or a user function (direct or through a
// procedure variable).
func (g *Gen) compileCallExpr(e *ast.CallExpr) *types.Type {
	p := g.resolveDesig(e.Fun, false)
	switch p.kind {
	case pBuiltin:
		return g.builtinFunc(p.sym, e)
	case pType:
		return g.typeTransfer(p.t, e)
	case pProc:
		sig := p.t
		if sig.Ret == nil {
			g.errorf(e.Pos, "procedure %s returns no value", p.sym.Name)
		}
		mark := g.tempTop
		g.emitArgs(sig, e.Args, e.Pos)
		g.emitDirectCall(p.sym, sig)
		g.releaseTemp(mark)
		if sig.Ret == nil {
			g.emit(vm.Instr{Op: vm.PushInt})
			return types.Bad
		}
		return sig.Ret
	case pDirect, pAddr:
		// Call through a procedure variable: the value goes below the
		// arguments.
		t, _ := g.loadPlace(p, e.Pos)
		if t.Under().Kind != types.ProcTypeK {
			if t != types.Bad {
				g.errorf(e.Pos, "%s is not a procedure", t)
			}
			return types.Bad
		}
		sig := t.Under()
		if sig.Ret == nil {
			g.errorf(e.Pos, "procedure variable returns no value")
		}
		mark := g.tempTop
		g.emitArgs(sig, e.Args, e.Pos)
		g.emit(vm.Instr{Op: vm.CallInd, B: g.argSlotsOf(sig)})
		g.releaseTemp(mark)
		return sig.Ret
	case pNone:
		g.emit(vm.Instr{Op: vm.PushInt})
		return types.Bad
	default:
		g.errorf(e.Pos, "this designator cannot be called")
		g.emit(vm.Instr{Op: vm.PushInt})
		return types.Bad
	}
}

// typeTransfer compiles the Modula-2 type transfer T(x): a free
// reinterpretation between one-slot ordinal/set/pointer values.
func (g *Gen) typeTransfer(t *types.Type, e *ast.CallExpr) *types.Type {
	if len(e.Args) != 1 {
		g.errorf(e.Pos, "type transfer %s expects one argument", t)
		g.emit(vm.Instr{Op: vm.PushInt})
		return t
	}
	at := g.compileScalarExpr(e.Args[0])
	switch {
	case at == types.Bad || t == types.Bad:
	case at.IsReal() != t.IsReal():
		g.errorf(e.Pos, "cannot transfer %s to %s; use FLOAT or TRUNC", at, t)
	case !isScalar(t):
		g.errorf(e.Pos, "type transfer target %s must be scalar", t)
	}
	return t
}

func (g *Gen) argSlotsOf(sig *types.Type) int32 {
	var n int32
	for _, p := range sig.Params {
		n += paramSlots(p)
	}
	return n
}

func paramSlots(p types.Param) int32 {
	switch {
	case p.Open:
		return 2
	case p.ByRef:
		return 1
	default:
		return int32(p.Type.Slots())
	}
}

func (g *Gen) emitDirectCall(sym *symtab.Symbol, sig *types.Type) {
	if sym.ExtName != "" {
		g.emit(vm.Instr{Op: vm.CallExt, S: sym.ExtName, B: g.argSlotsOf(sig)})
	} else {
		g.emit(vm.Instr{Op: vm.Call, A: sym.ProcIdx, B: g.argSlotsOf(sig)})
	}
}

// emitArgs compiles an actual-parameter list against a signature.
func (g *Gen) emitArgs(sig *types.Type, args []ast.Expr, pos token.Pos) {
	if len(args) != len(sig.Params) {
		g.errorf(pos, "call expects %d argument(s), have %d", len(sig.Params), len(args))
		// Compile nothing further; push zeros to keep the frame shape.
		for _, p := range sig.Params {
			for i := int32(0); i < paramSlots(p); i++ {
				g.emit(vm.Instr{Op: vm.PushInt})
			}
		}
		return
	}
	for i, formal := range sig.Params {
		g.compileArg(formal, args[i])
	}
}

// compileArg compiles one actual parameter.
func (g *Gen) compileArg(formal types.Param, a ast.Expr) {
	pos := a.ExprPos()
	switch {
	case formal.Open:
		g.compileOpenArg(formal, a)
	case formal.ByRef:
		d, ok := a.(*ast.Designator)
		if !ok {
			g.errorf(pos, "VAR parameter requires a variable")
			g.emit(vm.Instr{Op: vm.PushNil})
			return
		}
		p := g.resolveDesig(d, true)
		if p.kind != pAddr {
			if p.kind != pNone {
				g.errorf(pos, "VAR parameter requires a variable")
			}
			g.emit(vm.Instr{Op: vm.PushNil})
			return
		}
		if !types.Assignable(formal.Type, p.t) && !types.Assignable(p.t, formal.Type) {
			g.errorf(pos, "VAR parameter type mismatch: have %s, want %s", p.t, formal.Type)
		}
	case isScalar(formal.Type):
		at := g.compileCoerced(a, formal.Type)
		g.env.CheckAssignable(pos, formal.Type, at)
		g.rangeCheck(formal.Type, pos)
	default:
		// Value aggregate: the caller copies the slots onto the stack.
		n := int32(formal.Type.Slots())
		if s, ok := a.(*ast.StringLit); ok {
			g.stringToTempThen(s, n, func(temp int32) {
				g.emit(vm.Instr{Op: vm.LdaLoc, A: 0, B: temp})
				g.emit(vm.Instr{Op: vm.LdIndN, A: n})
			})
			return
		}
		d, ok := a.(*ast.Designator)
		if !ok {
			g.errorf(pos, "aggregate argument must be a variable or string constant")
			for i := int32(0); i < n; i++ {
				g.emit(vm.Instr{Op: vm.PushInt})
			}
			return
		}
		p := g.resolveDesig(d, true)
		if p.kind != pAddr {
			if p.kind != pNone {
				g.errorf(pos, "aggregate argument must be a variable")
			}
			for i := int32(0); i < n; i++ {
				g.emit(vm.Instr{Op: vm.PushInt})
			}
			return
		}
		if p.t.Deref() != formal.Type.Deref() {
			g.errorf(pos, "argument type mismatch: have %s, want %s", p.t, formal.Type)
		}
		g.emit(vm.Instr{Op: vm.LdIndN, A: n})
	}
}

// compileOpenArg passes (base, length) for an open-array parameter.
func (g *Gen) compileOpenArg(formal types.Param, a ast.Expr) {
	pos := a.ExprPos()
	elem := formal.Type.Deref().Base
	if s, ok := a.(*ast.StringLit); ok {
		if !elem.IsChar() {
			g.errorf(pos, "string constant requires ARRAY OF CHAR, want ARRAY OF %s", elem)
		}
		n := int32(len(s.Value))
		if n == 0 {
			n = 1
		}
		g.stringToTempThen(s, n, func(temp int32) {
			g.emit(vm.Instr{Op: vm.LdaLoc, A: 0, B: temp})
			g.emit(vm.Instr{Op: vm.PushInt, Imm: int64(n)})
		})
		return
	}
	d, ok := a.(*ast.Designator)
	if !ok {
		g.errorf(pos, "open array argument must be an array variable or string constant")
		g.emit(vm.Instr{Op: vm.PushNil})
		g.emit(vm.Instr{Op: vm.PushInt})
		return
	}
	p := g.resolveDesig(d, true)
	switch p.kind {
	case pOpen:
		sym := p.sym
		hops := g.hops(sym.Level)
		g.emit(vm.Instr{Op: vm.LdLoc, A: hops, B: sym.Offset})
		g.emit(vm.Instr{Op: vm.LdLoc, A: hops, B: sym.Offset + 1})
		g.checkOpenElem(elem, sym.Type.Deref().Base, pos)
	case pAddr:
		at := p.t.Deref()
		if at.Kind != types.ArrayK {
			g.errorf(pos, "open array argument must be an array, have %s", p.t)
			g.emit(vm.Instr{Op: vm.PushInt})
			return
		}
		lo, hi, _ := at.Index.Bounds()
		g.emit(vm.Instr{Op: vm.PushInt, Imm: hi - lo + 1})
		g.checkOpenElem(elem, at.Base, pos)
	default:
		if p.kind != pNone {
			g.errorf(pos, "open array argument must be an array variable")
		}
		g.emit(vm.Instr{Op: vm.PushNil})
		g.emit(vm.Instr{Op: vm.PushInt})
	}
}

func (g *Gen) checkOpenElem(want, have *types.Type, pos token.Pos) {
	if want.Deref() != have.Deref() && !(want.IsInteger() && have.IsInteger()) {
		g.errorf(pos, "open array element mismatch: have %s, want %s", have, want)
	}
}

// stringToTempThen materializes a string literal into n temp slots and
// runs use with the temp's offset.  The temp stays allocated; the call
// paths release argument temps only after the Call instruction, since
// open-array arguments pass the temp's address to the callee.
func (g *Gen) stringToTempThen(s *ast.StringLit, n int32, use func(temp int32)) {
	temp := g.allocTemp(n)
	g.emit(vm.Instr{Op: vm.LdaLoc, A: 0, B: temp})
	g.emit(vm.Instr{Op: vm.PushStr, S: s.Value})
	g.emit(vm.Instr{Op: vm.StrToA, A: n})
	use(temp)
}
