package codegen

import (
	"m2cc/internal/ast"
	"m2cc/internal/symtab"
	"m2cc/internal/types"
	"m2cc/internal/vm"
)

// builtinFunc compiles an application of a pervasive function.
func (g *Gen) builtinFunc(sym *symtab.Symbol, e *ast.CallExpr) *types.Type {
	bad := func() *types.Type {
		g.emit(vm.Instr{Op: vm.PushInt})
		return types.Bad
	}
	need := func(n int) bool {
		if len(e.Args) != n {
			g.errorf(e.Pos, "%s expects %d argument(s)", sym.Name, n)
			return false
		}
		return true
	}

	switch sym.BID {
	case symtab.BAbs:
		if !need(1) {
			return bad()
		}
		t := g.compileScalarExpr(e.Args[0])
		switch {
		case t.IsReal():
			g.emit(vm.Instr{Op: vm.AbsF})
		case t.IsInteger():
			g.emit(vm.Instr{Op: vm.AbsI})
		default:
			g.errorf(e.Pos, "ABS requires a numeric argument, have %s", t)
		}
		return t

	case symtab.BCap:
		if !need(1) {
			return bad()
		}
		t := g.compileCoerced(e.Args[0], types.Char)
		if t != types.Bad && !t.IsChar() {
			g.errorf(e.Pos, "CAP requires a CHAR, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.CapCh})
		return types.Char

	case symtab.BChr:
		if !need(1) {
			return bad()
		}
		t := g.compileScalarExpr(e.Args[0])
		if t != types.Bad && !t.IsInteger() {
			g.errorf(e.Pos, "CHR requires a whole number, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.ChkRange, Imm: 0, Imm2: 255, A: int32(e.Pos.Line)})
		return types.Char

	case symtab.BFloat:
		if !need(1) {
			return bad()
		}
		t := g.compileScalarExpr(e.Args[0])
		if t != types.Bad && !t.IsInteger() {
			g.errorf(e.Pos, "FLOAT requires a whole number, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.IntToReal})
		return types.Real

	case symtab.BTrunc:
		if !need(1) {
			return bad()
		}
		t := g.compileScalarExpr(e.Args[0])
		if t != types.Bad && !t.IsReal() {
			g.errorf(e.Pos, "TRUNC requires a real, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.RealToInt})
		return types.Cardinal

	case symtab.BOdd:
		if !need(1) {
			return bad()
		}
		t := g.compileScalarExpr(e.Args[0])
		if t != types.Bad && !t.IsInteger() {
			g.errorf(e.Pos, "ODD requires a whole number, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.OddI})
		return types.Boolean

	case symtab.BOrd:
		if !need(1) {
			return bad()
		}
		t := g.compileOrdinalExpr(e.Args[0])
		_ = t
		return types.Cardinal

	case symtab.BHigh:
		if !need(1) {
			return bad()
		}
		d, ok := e.Args[0].(*ast.Designator)
		if !ok {
			g.errorf(e.Pos, "HIGH requires an array designator")
			return bad()
		}
		p := g.resolveDesig(d, true)
		switch {
		case p.kind == pOpen:
			g.emit(vm.Instr{Op: vm.LdLoc, A: g.hops(p.sym.Level), B: p.sym.Offset + 1})
			g.emit(vm.Instr{Op: vm.PushInt, Imm: 1})
			g.emit(vm.Instr{Op: vm.SubI})
			return types.Cardinal
		case p.kind == pAddr && p.t.Deref().Kind == types.ArrayK:
			g.emit(vm.Instr{Op: vm.Drop})
			lo, hi, _ := p.t.Deref().Index.Bounds()
			g.emit(vm.Instr{Op: vm.PushInt, Imm: hi - lo})
			return types.Cardinal
		default:
			if p.kind != pNone {
				g.errorf(e.Pos, "HIGH requires an array, have %s", p.t)
			}
			return bad()
		}

	case symtab.BMin, symtab.BMax, symtab.BSize, symtab.BTSize:
		// Constant-foldable; the shared constant evaluator handles the
		// type-argument forms.  SIZE of a variable folds from its type.
		if sym.BID == symtab.BSize && len(e.Args) == 1 {
			if d, ok := e.Args[0].(*ast.Designator); ok {
				if t := g.sizeOfVar(d); t != nil {
					return t
				}
			}
		}
		v := g.env.EvalConst(g.scope, e)
		if !v.IsValid() {
			return bad()
		}
		return g.emitConst(v, e.Pos)

	case symtab.BVal:
		if !need(2) {
			return bad()
		}
		t := g.typeArg(e.Args[0])
		if t == nil || !t.IsOrdinal() {
			g.errorf(e.Pos, "VAL expects an ordinal type and a value")
			return bad()
		}
		at := g.compileScalarExpr(e.Args[1])
		if at != types.Bad && !at.IsOrdinal() {
			g.errorf(e.Pos, "VAL requires an ordinal value, have %s", at)
		}
		if lo, hi, ok := t.Bounds(); ok {
			g.emit(vm.Instr{Op: vm.ChkRange, Imm: lo, Imm2: hi, A: int32(e.Pos.Line)})
		}
		return t

	case symtab.BSin, symtab.BCos, symtab.BSqrt, symtab.BLn, symtab.BExp, symtab.BArctan:
		if !need(1) {
			return bad()
		}
		t := g.compileScalarExpr(e.Args[0])
		if t != types.Bad && !t.IsReal() {
			g.errorf(e.Pos, "%s requires a real argument, have %s", sym.Name, t)
		}
		var fn int32
		switch sym.BID {
		case symtab.BSin:
			fn = vm.MathSin
		case symtab.BCos:
			fn = vm.MathCos
		case symtab.BSqrt:
			fn = vm.MathSqrt
		case symtab.BLn:
			fn = vm.MathLn
		case symtab.BExp:
			fn = vm.MathExp
		default:
			fn = vm.MathArctan
		}
		g.emit(vm.Instr{Op: vm.MathOp, A: fn, B: int32(e.Pos.Line)})
		return types.Real

	default:
		g.errorf(e.Pos, "%s is a proper procedure, not a function", sym.Name)
		return bad()
	}
}

// typeArg resolves an argument that must be a type name.
func (g *Gen) typeArg(a ast.Expr) *types.Type {
	d, ok := a.(*ast.Designator)
	if !ok {
		return nil
	}
	p := g.resolveDesig(d, false)
	if p.kind != pType {
		return nil
	}
	return p.t
}

// sizeOfVar folds SIZE(v) for a variable designator; returns nil if the
// argument is not a plain variable.
func (g *Gen) sizeOfVar(d *ast.Designator) *types.Type {
	res := g.env.Search.Lookup(g.scope, d.Head.Text, g.withBindings())
	if !res.Found() || res.Sym == nil {
		return nil
	}
	sym := res.Sym
	if (sym.Kind != symtab.KVar && sym.Kind != symtab.KParam) || len(d.Sels) != 0 || sym.Open {
		return nil
	}
	g.emit(vm.Instr{Op: vm.PushInt, Imm: int64(sym.Type.Slots() * types.WordBytes)})
	return types.Cardinal
}
