// Package codegen implements the Statement-Analyzer/Code-Generator task
// of the concurrent compiler.
//
// Per §3 of the paper, statement semantic analysis is deliberately
// combined with code generation in a single task: by the time statement
// work is ready to run there are almost always more parallel tasks than
// processors, so splitting further would buy nothing — while deferring
// statement work lets declaration tables complete early, resolving DKY
// blockages sooner.  Accordingly this package type-checks statements
// and expressions as it emits stack-machine code, one independent code
// segment per stream, merged later by simple concatenation (§2.1).
package codegen

import (
	"sync"

	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/sema"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/types"
	"m2cc/internal/vm"
)

// Gen compiles the statements of one stream into its code segment.
type Gen struct {
	env   *sema.Env
	scope *symtab.Scope
	meta  *vm.ProcMeta
	sig   *types.Type // procedure signature; nil for module bodies

	code     []vm.Instr
	withs    []withInfo
	tempTop  int32
	maxFrame int32
	loops    []*loopCtx
	areaMemo map[string]int32
}

type withInfo struct {
	binding symtab.WithBinding
	temp    int32
}

type loopCtx struct {
	exits []int32 // Jmp indexes to patch to the loop end
}

// codeArena recycles emission buffers across Compile calls.  The final
// code segment is retained by the object for the program's lifetime,
// so emitting straight into a fresh slice pays the append-doubling
// garbage on every procedure; instead each Compile emits into a pooled
// arena (which converges on the largest procedure's size) and retains
// only one exact-size copy.
var codeArena sync.Pool

// Compile type-checks and generates code for body (and, for functions,
// verifies a value-return path), storing the segment and the final
// frame size into meta.  frameBase is the first free frame slot after
// parameters and locals.
func Compile(env *sema.Env, scope *symtab.Scope, meta *vm.ProcMeta, sig *types.Type, frameBase int32, body *ast.StmtList) {
	g := &Gen{env: env, scope: scope, meta: meta, sig: sig,
		tempTop: frameBase, maxFrame: frameBase}
	arena, _ := codeArena.Get().(*[]vm.Instr)
	if arena != nil {
		g.code = (*arena)[:0]
	}
	g.stmtList(body)
	if sig != nil && sig.Ret != nil {
		g.emit(vm.Instr{Op: vm.NoRet, A: int32(meta.Pos.Line)})
	} else {
		g.emit(vm.Instr{Op: vm.RetP})
	}
	meta.Frame = g.maxFrame
	meta.Code = append(make([]vm.Instr, 0, len(g.code)), g.code...)
	if arena == nil {
		arena = new([]vm.Instr)
	}
	*arena = g.code[:0]
	codeArena.Put(arena)
}

func (g *Gen) errorf(pos token.Pos, format string, args ...any) {
	g.env.Errorf(pos, format, args...)
}

// ---------------------------------------------------------------------
// Emission helpers

func (g *Gen) emit(i vm.Instr) int32 {
	g.env.Ctx.Add(ctrace.CostEmit)
	g.code = append(g.code, i)
	return int32(len(g.code) - 1)
}

func (g *Gen) here() int32 { return int32(len(g.code)) }

// areaIdx resolves a globals-area name to this compilation's registry
// index.  Symbols carry area *names* (they may live in interface scopes
// shared across compilations); the index is object-local and assigned
// at first use.  A tiny per-Gen memo keeps registry locking off the
// instruction-emission hot path.
func (g *Gen) areaIdx(name string) int32 {
	if idx, ok := g.areaMemo[name]; ok {
		return idx
	}
	idx := g.env.Reg.AreaIdx(name)
	if g.areaMemo == nil {
		g.areaMemo = make(map[string]int32, 4)
	}
	g.areaMemo[name] = idx
	return idx
}

// excIdx resolves a fully qualified exception name to this
// compilation's registry index (see areaIdx for why symbols carry
// names rather than indices).
func (g *Gen) excIdx(name string) int32 {
	return g.env.Reg.ExcIdx(name)
}

// patch sets the jump target of instruction i to the current position.
func (g *Gen) patch(i int32) { g.code[i].A = g.here() }

// allocTemp reserves n temporary frame slots; the caller releases them
// with releaseTemp (stack discipline within one statement nest).
func (g *Gen) allocTemp(n int32) int32 {
	off := g.tempTop
	g.tempTop += n
	if g.tempTop > g.maxFrame {
		g.maxFrame = g.tempTop
	}
	return off
}

func (g *Gen) releaseTemp(mark int32) { g.tempTop = mark }

// hops returns the number of static-link hops from the current
// procedure to a symbol declared at the given level.
func (g *Gen) hops(symLevel int32) int32 { return g.meta.Level - symLevel }

// emitConst pushes a constant value.
func (g *Gen) emitConst(v types.Const, pos token.Pos) *types.Type {
	switch v.Kind {
	case types.CInt:
		g.emit(vm.Instr{Op: vm.PushInt, Imm: v.I})
	case types.CReal:
		g.emit(vm.Instr{Op: vm.PushReal, F: v.F})
	case types.CString:
		g.emit(vm.Instr{Op: vm.PushStr, S: v.S})
	case types.CSet:
		g.emit(vm.Instr{Op: vm.PushInt, Imm: int64(v.Set)})
	case types.CNil:
		g.emit(vm.Instr{Op: vm.PushNil})
	default:
		g.emit(vm.Instr{Op: vm.PushInt})
		return types.Bad
	}
	if v.Type == nil {
		return types.Bad
	}
	return v.Type
}

// rangeCheck emits a ChkRange when dst is a subrange (or CHR target).
func (g *Gen) rangeCheck(dst *types.Type, pos token.Pos) {
	d := dst.Deref()
	if d.Kind == types.SubrangeK {
		g.emit(vm.Instr{Op: vm.ChkRange, Imm: d.Lo, Imm2: d.Hi, A: int32(pos.Line)})
	}
}
