package codegen_test

import "testing"

func TestMoreNumericSemantics(t *testing.T) {
	runAll(t, []runCase{
		{name: "hex octal and char literals", body: `
BEGIN
  WriteInt(0FFH, 0); WriteChar(" ");
  WriteInt(17B, 0); WriteChar(" ");
  WriteChar(101C); WriteLn`,
			want: "255 15 A\n"},
		{name: "CARDINAL and LONGINT interoperate", body: `
VAR c: CARDINAL; l: LONGINT; i: INTEGER;
BEGIN
  c := 10; l := 20; i := 30;
  WriteInt(i + INTEGER(c) + INTEGER(l), 0); WriteLn;
  l := c;
  c := CARDINAL(i);
  WriteInt(INTEGER(l) + INTEGER(c), 0); WriteLn`,
			want: "60\n40\n"},
		{name: "real comparison and negative literals", body: `
VAR r: REAL;
BEGIN
  r := -0.5;
  IF r < 0.0 THEN WriteString("neg") END;
  IF ABS(r) >= 0.5 THEN WriteString(" half") END;
  WriteLn`,
			want: "neg half\n"},
		{name: "integer overflow-free small arithmetic chain", body: `
VAR i, acc: INTEGER;
BEGIN
  acc := 1;
  FOR i := 1 TO 12 DO acc := acc * 2 END;
  WriteInt(acc, 0); WriteLn`,
			want: "4096\n"},
		{name: "MOD with negative divisor follows the divisor sign", body: `
BEGIN
  WriteInt(7 MOD (-2), 0); WriteLn`,
			want: "-1\n"},
		{name: "ln and arctan", body: `
VAR r: REAL;
BEGIN
  r := ln(exp(2.0));
  WriteReal(r, 0); WriteChar(" ");
  WriteReal(arctan(0.0), 0); WriteLn`,
			want: "2 0\n"},
	})
}

func TestMoreAggregateSemantics(t *testing.T) {
	runAll(t, []runCase{
		{name: "array of records", body: `
TYPE P = RECORD x, y: INTEGER END;
VAR pts: ARRAY [0..3] OF P; i, s: INTEGER;
BEGIN
  FOR i := 0 TO 3 DO
    pts[i].x := i;
    pts[i].y := i * 10
  END;
  s := 0;
  FOR i := 0 TO 3 DO s := s + pts[i].x + pts[i].y END;
  WriteInt(s, 0); WriteLn`,
			want: "66\n"},
		{name: "record containing array", body: `
TYPE Buf = RECORD n: INTEGER; data: ARRAY [0..7] OF INTEGER END;
VAR b: Buf;
BEGIN
  b.n := 2;
  b.data[0] := 30; b.data[1] := 12;
  WriteInt(b.data[0] + b.data[b.n - 1], 0); WriteLn`,
			want: "42\n"},
		{name: "aggregate value parameter is a copy", body: `
TYPE A = ARRAY [0..2] OF INTEGER;
VAR a: A;
PROCEDURE Mangle(x: A): INTEGER;
BEGIN
  x[0] := 999;
  RETURN x[0]
END Mangle;
BEGIN
  a[0] := 1;
  WriteInt(Mangle(a), 0); WriteInt(a[0], 2); WriteLn`,
			want: "999 1\n"},
		{name: "VAR record parameter mutates caller", body: `
TYPE P = RECORD x: INTEGER END;
VAR p: P;
PROCEDURE Set(VAR q: P);
BEGIN
  q.x := 5
END Set;
BEGIN
  Set(p);
  WriteInt(p.x, 0); WriteLn`,
			want: "5\n"},
		{name: "char subrange array index", body: `
VAR counts: ARRAY ["a".."e"] OF INTEGER; c: CHAR;
BEGIN
  FOR c := "a" TO "e" DO counts[c] := INTEGER(ORD(c)) - INTEGER(ORD("a")) END;
  WriteInt(counts["d"], 0); WriteLn`,
			want: "3\n"},
		{name: "boolean array indexed by enum", body: `
TYPE Day = (Mon, Tue, Wed);
VAR open: ARRAY Day OF BOOLEAN; d: Day; n: INTEGER;
BEGIN
  open[Mon] := TRUE; open[Tue] := FALSE; open[Wed] := TRUE;
  n := 0;
  FOR d := Mon TO Wed DO IF open[d] THEN INC(n) END END;
  WriteInt(n, 0); WriteLn`,
			want: "2\n"},
		{name: "deep pointer chains through records", body: `
TYPE
  P = POINTER TO R;
  R = RECORD v: INTEGER; next: P END;
VAR a, c: P;
BEGIN
  NEW(a); NEW(a^.next); NEW(a^.next^.next);
  a^.v := 1; a^.next^.v := 2; a^.next^.next^.v := 3;
  a^.next^.next^.next := NIL;
  c := a^.next;
  WriteInt(c^.next^.v, 0); WriteLn`,
			want: "3\n"},
	})
}

func TestMoreControlSemantics(t *testing.T) {
	runAll(t, []runCase{
		{name: "exit from loop inside while", body: `
VAR i, n: INTEGER;
BEGIN
  i := 0; n := 0;
  WHILE i < 3 DO
    INC(i);
    LOOP
      INC(n);
      EXIT
    END
  END;
  WriteInt(n, 0); WriteLn`,
			want: "3\n"},
		{name: "return exits nested control structures", body: `
PROCEDURE Find(limit: INTEGER): INTEGER;
VAR i, j: INTEGER;
BEGIN
  FOR i := 0 TO limit DO
    FOR j := 0 TO limit DO
      IF i * j = 12 THEN RETURN i * 100 + j END
    END
  END;
  RETURN -1
END Find;
BEGIN
  WriteInt(Find(10), 0); WriteLn`,
			want: "206\n"},
		{name: "case on characters", body: `
VAR c: CHAR;
BEGIN
  FOR c := "a" TO "f" DO
    CASE c OF
      "a", "e": WriteChar("V")
    | "b" .. "d": WriteChar(".")
    ELSE WriteChar("?")
    END
  END;
  WriteLn`,
			want: "V...V?\n"},
		{name: "repeat runs at least once", body: `
VAR n: INTEGER;
BEGIN
  n := 100;
  REPEAT INC(n) UNTIL TRUE;
  WriteInt(n, 0); WriteLn`,
			want: "101\n"},
		{name: "for control variable value after loop is usable", body: `
VAR i, last: INTEGER;
BEGIN
  last := -1;
  FOR i := 1 TO 3 DO last := i END;
  WriteInt(last, 0); WriteLn`,
			want: "3\n"},
		{name: "deeply nested ifs", body: `
VAR a, b, c: INTEGER;
BEGIN
  a := 1; b := 2; c := 3;
  IF a < b THEN
    IF b < c THEN
      IF a + b = c THEN WriteString("sum") END
    END
  END;
  WriteLn`,
			want: "sum\n"},
	})
}

func TestMoreProcedureSemantics(t *testing.T) {
	runAll(t, []runCase{
		{name: "procedure value as parameter", body: `
TYPE Fn = PROCEDURE (INTEGER): INTEGER;
PROCEDURE Apply(f: Fn; x: INTEGER): INTEGER;
BEGIN
  RETURN f(f(x))
END Apply;
PROCEDURE Inc1(x: INTEGER): INTEGER;
BEGIN
  RETURN x + 1
END Inc1;
BEGIN
  WriteInt(Apply(Inc1, 40), 0); WriteLn`,
			want: "42\n"},
		{name: "array of procedure values", body: `
TYPE Fn = PROCEDURE (INTEGER): INTEGER;
VAR ops: ARRAY [0..1] OF Fn; i, acc: INTEGER;
PROCEDURE Dbl(x: INTEGER): INTEGER;
BEGIN
  RETURN 2 * x
END Dbl;
PROCEDURE Sqr(x: INTEGER): INTEGER;
BEGIN
  RETURN x * x
END Sqr;
BEGIN
  ops[0] := Dbl; ops[1] := Sqr;
  acc := 3;
  FOR i := 0 TO 1 DO acc := ops[i](acc) END;
  WriteInt(acc, 0); WriteLn`,
			want: "36\n"},
		{name: "parameterless PROC variable", body: `
VAR p: PROC; n: INTEGER;
PROCEDURE Bump;
BEGIN
  INC(n)
END Bump;
BEGIN
  n := 0;
  p := Bump;
  p; p;
  WriteInt(n, 0); WriteLn`,
			want: "2\n"},
		{name: "VAR parameter through two levels", body: `
VAR g: INTEGER;
PROCEDURE Inner(VAR x: INTEGER);
BEGIN
  x := x + 1
END Inner;
PROCEDURE Outer(VAR y: INTEGER);
BEGIN
  Inner(y);
  Inner(y)
END Outer;
BEGIN
  g := 10;
  Outer(g);
  WriteInt(g, 0); WriteLn`,
			want: "12\n"},
		{name: "recursion through nested procedure sharing state", body: `
PROCEDURE Count(n: INTEGER): INTEGER;
VAR total: INTEGER;
  PROCEDURE Walk(k: INTEGER);
  BEGIN
    IF k = 0 THEN RETURN END;
    total := total + k;
    Walk(k - 1)
  END Walk;
BEGIN
  total := 0;
  Walk(n);
  RETURN total
END Count;
BEGIN
  WriteInt(Count(4), 0); WriteLn`,
			want: "10\n"},
		{name: "open array of record elements", body: `
TYPE P = RECORD x, y: INTEGER END;
VAR pts: ARRAY [0..2] OF P;
PROCEDURE SumX(a: ARRAY OF P): INTEGER;
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 0 TO INTEGER(HIGH(a)) DO s := s + a[i].x END;
  RETURN s
END SumX;
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO 2 DO pts[i].x := i + 1; pts[i].y := 0 END;
  WriteInt(SumX(pts), 0); WriteLn`,
			want: "6\n"},
	})
}

func TestMoreErrorDiagnostics(t *testing.T) {
	runAll(t, []runCase{
		{name: "calling a variable", body: `
VAR x: INTEGER;
BEGIN
  x(1)`,
			wantErr: "not"},
		{name: "IN with non-set right operand", body: `
BEGIN
  IF 1 IN 2 THEN END`,
			wantErr: "requires a set"},
		{name: "WITH over a non-record", body: `
VAR i: INTEGER;
BEGIN
  WITH i DO END`,
			wantErr: "requires a record"},
		{name: "FOR over a non-ordinal", body: `
VAR r: REAL;
BEGIN
  FOR r := 1 TO 3 DO END`,
			wantErr: "ordinal"},
		{name: "FOR with zero step", body: `
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 3 BY 0 DO END`,
			wantErr: "must not be zero"},
		{name: "dereferencing a non-pointer", body: `
VAR i: INTEGER;
BEGIN
  i := i^`,
			wantErr: "cannot dereference"},
		{name: "NEW of a non-pointer", body: `
VAR i: INTEGER;
BEGIN
  NEW(i)`,
			wantErr: "requires a pointer"},
		{name: "case selector must be ordinal", body: `
VAR r: REAL;
BEGIN
  r := 1.0;
  CASE r OF END`,
			wantErr: "ordinal"},
		{name: "string literal too long for CHAR", body: `
VAR c: CHAR;
BEGIN
  c := "ab"`,
			wantErr: "incompatible assignment"},
		{name: "unknown qualified member", body: `
BEGIN
  WriteInt(INTEGER(Nowhere.thing), 0)`,
			wantErr: "undeclared identifier Nowhere"},
	})
}

func TestMixedFeaturePrograms(t *testing.T) {
	runAll(t, []runCase{
		{name: "binary search over a sorted array", body: `
VAR a: ARRAY [0..9] OF INTEGER; i: INTEGER;
PROCEDURE Find(key: INTEGER): INTEGER;
VAR lo, hi, mid: INTEGER;
BEGIN
  lo := 0; hi := 9;
  WHILE lo <= hi DO
    mid := (lo + hi) DIV 2;
    IF a[mid] = key THEN RETURN mid
    ELSIF a[mid] < key THEN lo := mid + 1
    ELSE hi := mid - 1
    END
  END;
  RETURN -1
END Find;
BEGIN
  FOR i := 0 TO 9 DO a[i] := i * 3 END;
  WriteInt(Find(21), 0); WriteInt(Find(22), 3); WriteLn`,
			want: "7 -1\n"},
		{name: "string reversal in place", body: `
VAR buf: ARRAY [0..15] OF CHAR;
PROCEDURE Reverse(VAR s: ARRAY OF CHAR);
VAR i, j: INTEGER; t: CHAR;
BEGIN
  i := 0;
  WHILE (i <= INTEGER(HIGH(s))) AND (s[i] # 0C) DO INC(i) END;
  j := i - 1; i := 0;
  WHILE i < j DO
    t := s[i]; s[i] := s[j]; s[j] := t;
    INC(i); DEC(j)
  END
END Reverse;
BEGIN
  buf := "stressed";
  Reverse(buf);
  WriteString(buf); WriteLn`,
			want: "desserts\n"},
		{name: "gcd with exceptions for bad input", body: `
EXCEPTION BadArgs;
PROCEDURE Gcd(a, b: INTEGER): INTEGER;
BEGIN
  IF (a <= 0) OR (b <= 0) THEN RAISE BadArgs END;
  WHILE b # 0 DO
    a := a MOD b;
    IF a = 0 THEN RETURN b END;
    b := b MOD a
  END;
  RETURN a
END Gcd;
BEGIN
  WriteInt(Gcd(48, 36), 0); WriteLn;
  TRY
    WriteInt(Gcd(-1, 3), 0)
  EXCEPT
    BadArgs: WriteString("bad args")
  END;
  WriteLn`,
			want: "12\nbad args\n"},
		{name: "set-based prime sieve", body: `
TYPE Bits = SET OF [0..63];
VAR composite: Bits; i, j, count: INTEGER;
BEGIN
  composite := Bits{};
  FOR i := 2 TO 63 DO
    IF NOT (i IN composite) THEN
      j := i + i;
      WHILE j <= 63 DO
        INCL(composite, j);
        j := j + i
      END
    END
  END;
  count := 0;
  FOR i := 2 TO 63 DO
    IF NOT (i IN composite) THEN INC(count) END
  END;
  WriteInt(count, 0); WriteLn`,
			want: "18\n"},
	})
}

func TestTryFinally(t *testing.T) {
	runAll(t, []runCase{
		{name: "finally on the normal path", body: `
EXCEPTION E;
BEGIN
  TRY
    WriteChar("b")
  FINALLY
    WriteChar("f")
  END;
  WriteLn`,
			want: "bf\n"},
		{name: "finally after a matched handler", body: `
EXCEPTION E;
BEGIN
  TRY
    RAISE E
  EXCEPT
    E: WriteChar("h")
  FINALLY
    WriteChar("f")
  END;
  WriteLn`,
			want: "hf\n"},
		{name: "finally runs before propagation", body: `
EXCEPTION A, B;
BEGIN
  TRY
    TRY
      RAISE A
    EXCEPT
      B: WriteChar("x")
    FINALLY
      WriteChar("f")
    END
  EXCEPT
    A: WriteChar("o")
  END;
  WriteLn`,
			want: "fo\n"},
		{name: "finally without except propagates after cleanup", body: `
EXCEPTION A;
BEGIN
  TRY
    TRY
      RAISE A
    FINALLY
      WriteChar("c")
    END
  EXCEPT
    A: WriteChar("a")
  END;
  WriteLn`,
			want: "ca\n"},
		{name: "finally with else handler", body: `
EXCEPTION A;
BEGIN
  TRY
    RAISE A
  EXCEPT
    ELSE WriteChar("e")
  FINALLY
    WriteChar("f")
  END;
  WriteLn`,
			want: "ef\n"},
	})
}
