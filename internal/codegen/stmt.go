package codegen

import (
	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/types"
	"m2cc/internal/vm"
)

func (g *Gen) stmtList(sl *ast.StmtList) {
	if sl == nil {
		return
	}
	for _, s := range sl.Stmts {
		g.stmt(s)
	}
}

func (g *Gen) stmt(s ast.Stmt) {
	g.env.Ctx.Add(ctrace.CostStmtNode)
	switch s := s.(type) {
	case *ast.AssignStmt:
		g.assign(s)
	case *ast.CallStmt:
		g.callStmt(s)
	case *ast.IfStmt:
		g.ifStmt(s)
	case *ast.CaseStmt:
		g.caseStmt(s)
	case *ast.WhileStmt:
		top := g.here()
		g.boolOperand(s.Cond)
		j := g.emit(vm.Instr{Op: vm.Jz})
		g.stmtList(s.Body)
		g.emit(vm.Instr{Op: vm.Jmp, A: top})
		g.patch(j)
	case *ast.RepeatStmt:
		top := g.here()
		g.stmtList(s.Body)
		g.boolOperand(s.Cond)
		g.emit(vm.Instr{Op: vm.Jz, A: top})
	case *ast.LoopStmt:
		top := g.here()
		g.loops = append(g.loops, &loopCtx{})
		g.stmtList(s.Body)
		g.emit(vm.Instr{Op: vm.Jmp, A: top})
		lc := g.loops[len(g.loops)-1]
		g.loops = g.loops[:len(g.loops)-1]
		for _, e := range lc.exits {
			g.patch(e)
		}
	case *ast.ExitStmt:
		if len(g.loops) == 0 {
			g.errorf(s.Pos, "EXIT outside of LOOP")
			return
		}
		lc := g.loops[len(g.loops)-1]
		lc.exits = append(lc.exits, g.emit(vm.Instr{Op: vm.Jmp}))
	case *ast.ForStmt:
		g.forStmt(s)
	case *ast.WithStmt:
		g.withStmt(s)
	case *ast.ReturnStmt:
		g.returnStmt(s)
	case *ast.RaiseStmt:
		sym := g.env.ResolveQualident(g.scope, s.Exc, g.withBindings())
		if sym == nil {
			return
		}
		if sym.Kind != symtab.KException {
			g.errorf(s.Pos, "%s is not an exception", s.Exc)
			return
		}
		g.emit(vm.Instr{Op: vm.Raise, A: g.excIdx(sym.ExcName), B: int32(s.Pos.Line)})
	case *ast.TryStmt:
		g.tryStmt(s)
	case *ast.LockStmt:
		t := g.compileScalarExpr(s.Mutex)
		if t != types.Bad && t.Under().Kind != types.MutexK && !t.IsPointerLike() {
			g.errorf(s.Pos, "LOCK requires a MUTEX, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.Drop})
		g.stmtList(s.Body)
	}
}

// assign compiles "lhs := rhs", covering the scalar, aggregate-copy and
// string-into-char-array forms.
func (g *Gen) assign(s *ast.AssignStmt) {
	p := g.resolveDesig(s.LHS, false)
	if p.kind == pNone {
		g.discard(s.RHS)
		return
	}
	if p.kind != pAddr && p.kind != pDirect {
		g.errorf(s.Pos, "cannot assign to %s", s.LHS.Head.Text)
		g.discard(s.RHS)
		return
	}

	if !isScalar(p.t) {
		// Aggregate destination: the address is on the stack (pAddr is
		// guaranteed — aggregates never yield pDirect).
		if str, ok := s.RHS.(*ast.StringLit); ok {
			d := p.t.Deref()
			if d.Kind != types.ArrayK || !d.Base.IsChar() {
				g.errorf(s.Pos, "string constant requires an ARRAY OF CHAR destination, have %s", p.t)
				g.emit(vm.Instr{Op: vm.Drop})
				return
			}
			n := int32(d.Slots())
			if int32(len(str.Value)) > n {
				g.errorf(s.Pos, "string constant of length %d does not fit in %s", len(str.Value), p.t)
			}
			g.emit(vm.Instr{Op: vm.PushStr, S: str.Value})
			g.emit(vm.Instr{Op: vm.StrToA, A: n})
			return
		}
		rd, ok := s.RHS.(*ast.Designator)
		if !ok {
			g.errorf(s.Pos, "aggregate assignment requires a variable or string constant on the right")
			g.emit(vm.Instr{Op: vm.Drop})
			return
		}
		rp := g.resolveDesig(rd, true)
		if rp.kind != pAddr {
			if rp.kind != pNone {
				g.errorf(s.Pos, "aggregate assignment requires a variable on the right")
			}
			g.emit(vm.Instr{Op: vm.Drop})
			return
		}
		if rp.t.Deref() != p.t.Deref() {
			g.errorf(s.Pos, "incompatible assignment: %s := %s", p.t, rp.t)
		}
		g.emit(vm.Instr{Op: vm.Copy, A: int32(p.t.Slots())})
		return
	}

	rt := g.compileCoerced(s.RHS, p.t)
	g.env.CheckAssignable(s.Pos, p.t, rt)
	g.rangeCheck(p.t, s.Pos)
	g.storePlace(p, s.Pos)
}

// discard compiles an expression whose destination failed to resolve,
// keeping diagnostics flowing without corrupting the stack.
func (g *Gen) discard(e ast.Expr) {
	_, agg := g.compileExpr(e)
	_ = agg
	g.emit(vm.Instr{Op: vm.Drop})
}

func (g *Gen) ifStmt(s *ast.IfStmt) {
	var ends []int32
	g.boolOperand(s.Cond)
	next := g.emit(vm.Instr{Op: vm.Jz})
	g.stmtList(s.Then)
	for _, arm := range s.Elsifs {
		ends = append(ends, g.emit(vm.Instr{Op: vm.Jmp}))
		g.patch(next)
		g.boolOperand(arm.Cond)
		next = g.emit(vm.Instr{Op: vm.Jz})
		g.stmtList(arm.Then)
	}
	if s.Else != nil {
		ends = append(ends, g.emit(vm.Instr{Op: vm.Jmp}))
		g.patch(next)
		g.stmtList(s.Else)
	} else {
		g.patch(next)
	}
	for _, e := range ends {
		g.patch(e)
	}
}

// caseStmt compiles CASE with a label-compare chain over a cached
// selector temp.
func (g *Gen) caseStmt(s *ast.CaseStmt) {
	mark := g.tempTop
	sel := g.allocTemp(1)
	st := g.compileOrdinalExpr(s.Expr)
	g.emit(vm.Instr{Op: vm.StLoc, A: 0, B: sel})

	var ends []int32
	for _, arm := range s.Arms {
		var hits []int32
		for _, l := range arm.Labels {
			lo, lot, ok := g.env.EvalConstInt(g.scope, l.Lo)
			hi := lo
			if l.Hi != nil {
				hi, _, _ = g.env.EvalConstInt(g.scope, l.Hi)
			}
			if ok && st != types.Bad && !types.SameClass(st, lot) {
				g.errorf(s.Pos, "case label type %s does not match selector type %s", lot, st)
			}
			g.emit(vm.Instr{Op: vm.LdLoc, A: 0, B: sel})
			if l.Hi == nil {
				g.emit(vm.Instr{Op: vm.PushInt, Imm: lo})
				g.emit(vm.Instr{Op: vm.CmpI, A: vm.RelEq})
				hits = append(hits, g.emit(vm.Instr{Op: vm.Jnz}))
			} else {
				// lo <= sel <= hi via two compares.
				g.emit(vm.Instr{Op: vm.PushInt, Imm: lo})
				g.emit(vm.Instr{Op: vm.CmpI, A: vm.RelGe})
				miss := g.emit(vm.Instr{Op: vm.Jz})
				g.emit(vm.Instr{Op: vm.LdLoc, A: 0, B: sel})
				g.emit(vm.Instr{Op: vm.PushInt, Imm: hi})
				g.emit(vm.Instr{Op: vm.CmpI, A: vm.RelLe})
				hits = append(hits, g.emit(vm.Instr{Op: vm.Jnz}))
				g.patch(miss)
			}
		}
		skip := g.emit(vm.Instr{Op: vm.Jmp})
		for _, h := range hits {
			g.patch(h)
		}
		g.stmtList(arm.Body)
		ends = append(ends, g.emit(vm.Instr{Op: vm.Jmp}))
		g.patch(skip)
	}
	if s.Else != nil {
		g.stmtList(s.Else)
	} else {
		g.emit(vm.Instr{Op: vm.CaseTrap, A: int32(s.Pos.Line)})
	}
	for _, e := range ends {
		g.patch(e)
	}
	g.releaseTemp(mark)
}

func (g *Gen) forStmt(s *ast.ForStmt) {
	res := g.env.Search.Lookup(g.scope, s.Var.Text, g.withBindings())
	if !res.Found() || res.Sym == nil ||
		(res.Sym.Kind != symtab.KVar && res.Sym.Kind != symtab.KParam) {
		g.errorf(s.Var.Pos, "FOR control variable %s must be a declared variable", s.Var.Text)
		return
	}
	v := res.Sym
	if !v.Type.IsOrdinal() || v.ByRef || v.Open {
		g.errorf(s.Var.Pos, "FOR control variable %s must be a plain ordinal variable", s.Var.Text)
		return
	}
	step := int64(1)
	if s.By != nil {
		var ok bool
		step, _, ok = g.env.EvalConstInt(g.scope, s.By)
		if !ok {
			step = 1
		}
		if step == 0 {
			g.errorf(s.Pos, "FOR step must not be zero")
			step = 1
		}
	}

	store := func() {
		if v.Global {
			g.emit(vm.Instr{Op: vm.StGlb, A: g.areaIdx(v.Area), B: v.Offset})
		} else {
			g.emit(vm.Instr{Op: vm.StLoc, A: g.hops(v.Level), B: v.Offset})
		}
	}
	load := func() {
		if v.Global {
			g.emit(vm.Instr{Op: vm.LdGlb, A: g.areaIdx(v.Area), B: v.Offset})
		} else {
			g.emit(vm.Instr{Op: vm.LdLoc, A: g.hops(v.Level), B: v.Offset})
		}
	}

	mark := g.tempTop
	limit := g.allocTemp(1)
	ft := g.compileCoerced(s.From, v.Type)
	g.env.CheckAssignable(s.Var.Pos, v.Type, ft)
	store()
	tt := g.compileCoerced(s.To, v.Type)
	g.env.CheckAssignable(s.Var.Pos, v.Type, tt)
	g.emit(vm.Instr{Op: vm.StLoc, A: 0, B: limit})

	top := g.here()
	load()
	g.emit(vm.Instr{Op: vm.LdLoc, A: 0, B: limit})
	if step > 0 {
		g.emit(vm.Instr{Op: vm.CmpI, A: vm.RelLe})
	} else {
		g.emit(vm.Instr{Op: vm.CmpI, A: vm.RelGe})
	}
	done := g.emit(vm.Instr{Op: vm.Jz})
	g.stmtList(s.Body)
	load()
	g.emit(vm.Instr{Op: vm.PushInt, Imm: step})
	g.emit(vm.Instr{Op: vm.AddI})
	store()
	g.emit(vm.Instr{Op: vm.Jmp, A: top})
	g.patch(done)
	g.releaseTemp(mark)
}

func (g *Gen) withStmt(s *ast.WithStmt) {
	p := g.resolveDesig(s.Rec, true)
	if p.kind != pAddr || p.t.Deref().Kind != types.RecordK {
		if p.kind != pNone {
			g.errorf(s.Pos, "WITH requires a record designator, have %s", p.t)
		}
		if p.kind == pAddr {
			g.emit(vm.Instr{Op: vm.Drop})
		}
		g.stmtList(s.Body)
		return
	}
	mark := g.tempTop
	temp := g.allocTemp(1)
	g.emit(vm.Instr{Op: vm.StLoc, A: 0, B: temp})
	g.withs = append(g.withs, withInfo{
		binding: symtab.WithBinding{Rec: p.t},
		temp:    temp,
	})
	g.stmtList(s.Body)
	g.withs = g.withs[:len(g.withs)-1]
	g.releaseTemp(mark)
}

func (g *Gen) returnStmt(s *ast.ReturnStmt) {
	if g.sig == nil || g.sig.Ret == nil {
		if s.Expr != nil {
			g.errorf(s.Pos, "RETURN with a value in a proper procedure")
			g.discard(s.Expr)
		}
		g.emit(vm.Instr{Op: vm.RetP})
		return
	}
	if s.Expr == nil {
		g.errorf(s.Pos, "RETURN in a function must carry a value")
		g.emit(vm.Instr{Op: vm.PushInt})
		g.emit(vm.Instr{Op: vm.RetF})
		return
	}
	rt := g.compileCoerced(s.Expr, g.sig.Ret)
	g.env.CheckAssignable(s.Pos, g.sig.Ret, rt)
	g.rangeCheck(g.sig.Ret, s.Pos)
	g.emit(vm.Instr{Op: vm.RetF})
}

func (g *Gen) tryStmt(s *ast.TryStmt) {
	// FINALLY compiles by duplication, the classic inline scheme: the
	// cleanup statements run on the normal path, after a matched
	// handler, and before an unhandled exception propagates.
	finally := func() {
		if s.Finally != nil {
			g.stmtList(s.Finally)
		}
	}

	try := g.emit(vm.Instr{Op: vm.EnterTry})
	g.stmtList(s.Body)
	g.emit(vm.Instr{Op: vm.EndTry})
	finally()
	end := g.emit(vm.Instr{Op: vm.Jmp})
	g.patch(try)

	var ends []int32
	for _, h := range s.Handlers {
		var hits []int32
		for _, exq := range h.Excs {
			sym := g.env.ResolveQualident(g.scope, exq, g.withBindings())
			if sym == nil {
				continue
			}
			if sym.Kind != symtab.KException {
				g.errorf(exq.Pos(), "%s is not an exception", exq)
				continue
			}
			g.emit(vm.Instr{Op: vm.ExcIs, A: g.excIdx(sym.ExcName)})
			hits = append(hits, g.emit(vm.Instr{Op: vm.Jnz}))
		}
		skip := g.emit(vm.Instr{Op: vm.Jmp})
		for _, h2 := range hits {
			g.patch(h2)
		}
		g.stmtList(h.Body)
		finally()
		ends = append(ends, g.emit(vm.Instr{Op: vm.Jmp}))
		g.patch(skip)
	}
	if s.Else != nil {
		g.stmtList(s.Else)
		finally()
	} else {
		finally()
		g.emit(vm.Instr{Op: vm.Reraise})
	}
	for _, e := range ends {
		g.patch(e)
	}
	g.patch(end)
}

// callStmt compiles a procedure-call statement: user procedures,
// procedure variables and the builtin proper procedures.
func (g *Gen) callStmt(s *ast.CallStmt) {
	p := g.resolveDesig(s.Proc, false)
	switch p.kind {
	case pBuiltin:
		g.builtinProc(p.sym, s)
	case pProc:
		sig := p.t
		if sig.Ret != nil {
			g.errorf(s.Pos, "function %s result must be used", p.sym.Name)
		}
		mark := g.tempTop
		g.emitArgs(sig, s.Args, s.Pos)
		g.emitDirectCall(p.sym, sig)
		g.releaseTemp(mark)
		if sig.Ret != nil {
			g.emit(vm.Instr{Op: vm.Drop})
		}
	case pDirect, pAddr:
		t, _ := g.loadPlace(p, s.Pos)
		if t.Under().Kind != types.ProcTypeK && t.Under().Kind != types.ProcK {
			if t != types.Bad {
				g.errorf(s.Pos, "%s is not callable", t)
			}
			g.emit(vm.Instr{Op: vm.Drop})
			return
		}
		sig := t.Under()
		if sig.Kind == types.ProcK {
			sig = types.NewProcType(nil, nil)
		}
		if sig.Ret != nil {
			g.errorf(s.Pos, "function result must be used")
		}
		mark := g.tempTop
		g.emitArgs(sig, s.Args, s.Pos)
		g.emit(vm.Instr{Op: vm.CallInd, B: g.argSlotsOf(sig)})
		g.releaseTemp(mark)
	case pNone:
		for _, a := range s.Args {
			g.discard(a)
		}
	default:
		g.errorf(s.Pos, "%s cannot be called", s.Proc.Head.Text)
	}
}

// needArgs checks the argument count for a builtin.
func (g *Gen) needArgs(s *ast.CallStmt, name string, lo, hi int) bool {
	if len(s.Args) < lo || len(s.Args) > hi {
		if lo == hi {
			g.errorf(s.Pos, "%s expects %d argument(s)", name, lo)
		} else {
			g.errorf(s.Pos, "%s expects %d to %d arguments", name, lo, hi)
		}
		return false
	}
	return true
}

// argAddr compiles the address of a designator argument and returns its
// type (types.Bad on failure, with a placeholder address emitted).
func (g *Gen) argAddr(a ast.Expr, what string) *types.Type {
	d, ok := a.(*ast.Designator)
	if !ok {
		g.errorf(a.ExprPos(), "%s requires a variable", what)
		g.emit(vm.Instr{Op: vm.PushNil})
		return types.Bad
	}
	p := g.resolveDesig(d, true)
	if p.kind != pAddr {
		if p.kind != pNone {
			g.errorf(a.ExprPos(), "%s requires a variable", what)
		}
		g.emit(vm.Instr{Op: vm.PushNil})
		return types.Bad
	}
	return p.t
}

func (g *Gen) builtinProc(sym *symtab.Symbol, s *ast.CallStmt) {
	pos := s.Pos
	switch sym.BID {
	case symtab.BInc, symtab.BDec:
		if !g.needArgs(s, sym.Name, 1, 2) {
			return
		}
		t := g.argAddr(s.Args[0], sym.Name)
		if t != types.Bad && !t.IsOrdinal() {
			g.errorf(pos, "%s requires an ordinal variable, have %s", sym.Name, t)
		}
		g.emit(vm.Instr{Op: vm.Dup})
		g.emit(vm.Instr{Op: vm.LdInd})
		if len(s.Args) == 2 {
			at := g.compileScalarExpr(s.Args[1])
			if at != types.Bad && !at.IsInteger() {
				g.errorf(pos, "%s step must be an integer, have %s", sym.Name, at)
			}
		} else {
			g.emit(vm.Instr{Op: vm.PushInt, Imm: 1})
		}
		if sym.BID == symtab.BInc {
			g.emit(vm.Instr{Op: vm.AddI})
		} else {
			g.emit(vm.Instr{Op: vm.SubI})
		}
		g.rangeCheck(t, pos)
		g.emit(vm.Instr{Op: vm.StInd})

	case symtab.BIncl, symtab.BExcl:
		if !g.needArgs(s, sym.Name, 2, 2) {
			return
		}
		t := g.argAddr(s.Args[0], sym.Name)
		if t != types.Bad && !t.IsSet() {
			g.errorf(pos, "%s requires a set variable, have %s", sym.Name, t)
		}
		g.compileOrdinalExpr(s.Args[1])
		if sym.BID == symtab.BIncl {
			g.emit(vm.Instr{Op: vm.InclM, A: int32(pos.Line)})
		} else {
			g.emit(vm.Instr{Op: vm.ExclM, A: int32(pos.Line)})
		}

	case symtab.BNew:
		if !g.needArgs(s, sym.Name, 1, 1) {
			return
		}
		t := g.argAddr(s.Args[0], sym.Name)
		d := t.Deref()
		if t != types.Bad && d.Kind != types.PointerK && d.Kind != types.RefK {
			g.errorf(pos, "NEW requires a pointer variable, have %s", t)
			g.emit(vm.Instr{Op: vm.Drop})
			return
		}
		slots := int32(1)
		if d.Base != nil {
			slots = int32(d.Base.Slots())
		}
		g.emit(vm.Instr{Op: vm.NewObj, A: slots})

	case symtab.BDispose:
		if !g.needArgs(s, sym.Name, 1, 1) {
			return
		}
		t := g.argAddr(s.Args[0], sym.Name)
		if t != types.Bad && t.Deref().Kind != types.PointerK {
			g.errorf(pos, "DISPOSE requires a POINTER variable, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.Dispose})

	case symtab.BHalt:
		if !g.needArgs(s, sym.Name, 0, 0) {
			return
		}
		g.emit(vm.Instr{Op: vm.HaltOp})

	case symtab.BAssert:
		if !g.needArgs(s, sym.Name, 1, 1) {
			return
		}
		g.boolOperand(s.Args[0])
		g.emit(vm.Instr{Op: vm.AssertOp, A: int32(pos.Line)})

	case symtab.BWriteInt, symtab.BWriteCard:
		if !g.needArgs(s, sym.Name, 1, 2) {
			return
		}
		t := g.compileScalarExpr(s.Args[0])
		if t != types.Bad && !t.IsInteger() {
			g.errorf(pos, "%s requires an integer, have %s", sym.Name, t)
		}
		g.emitWidth(s, 1)
		g.emit(vm.Instr{Op: vm.IOWriteInt})

	case symtab.BWriteReal:
		if !g.needArgs(s, sym.Name, 1, 2) {
			return
		}
		t := g.compileScalarExpr(s.Args[0])
		if t != types.Bad && !t.IsReal() {
			g.errorf(pos, "WriteReal requires a real, have %s", t)
		}
		g.emitWidth(s, 1)
		g.emit(vm.Instr{Op: vm.IOWriteReal})

	case symtab.BWriteChar:
		if !g.needArgs(s, sym.Name, 1, 1) {
			return
		}
		t := g.compileCoerced(s.Args[0], types.Char)
		if t != types.Bad && !t.IsChar() {
			g.errorf(pos, "WriteChar requires a CHAR, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.IOWriteChar})

	case symtab.BWriteLn:
		if !g.needArgs(s, sym.Name, 0, 0) {
			return
		}
		g.emit(vm.Instr{Op: vm.IOWriteLn})

	case symtab.BWriteString, symtab.BWriteText:
		if !g.needArgs(s, sym.Name, 1, 1) {
			return
		}
		g.writeStringArg(s.Args[0])

	case symtab.BReadInt:
		if !g.needArgs(s, sym.Name, 1, 1) {
			return
		}
		t := g.argAddr(s.Args[0], sym.Name)
		if t != types.Bad && !t.IsInteger() {
			g.errorf(pos, "ReadInt requires an integer variable, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.IOReadInt})

	case symtab.BReadChar:
		if !g.needArgs(s, sym.Name, 1, 1) {
			return
		}
		t := g.argAddr(s.Args[0], sym.Name)
		if t != types.Bad && !t.IsChar() {
			g.errorf(pos, "ReadChar requires a CHAR variable, have %s", t)
		}
		g.emit(vm.Instr{Op: vm.IOReadChar})

	default:
		g.errorf(pos, "%s is a function; its result must be used", sym.Name)
	}
}

// emitWidth pushes the optional field-width argument (default 0).
func (g *Gen) emitWidth(s *ast.CallStmt, idx int) {
	if len(s.Args) > idx {
		t := g.compileScalarExpr(s.Args[idx])
		if t != types.Bad && !t.IsInteger() {
			g.errorf(s.Pos, "field width must be an integer, have %s", t)
		}
		return
	}
	g.emit(vm.Instr{Op: vm.PushInt, Imm: 0})
}

// writeStringArg compiles WriteString/WriteText for a string literal,
// TEXT value or character array.
func (g *Gen) writeStringArg(a ast.Expr) {
	if d, ok := a.(*ast.Designator); ok {
		p := g.resolveDesig(d, true)
		switch {
		case p.kind == pOpen:
			if !p.t.Deref().Base.IsChar() {
				g.errorf(a.ExprPos(), "WriteString requires characters, have %s", p.t)
			}
			hops := g.hops(p.sym.Level)
			g.emit(vm.Instr{Op: vm.LdLoc, A: hops, B: p.sym.Offset})
			g.emit(vm.Instr{Op: vm.LdLoc, A: hops, B: p.sym.Offset + 1})
			g.emit(vm.Instr{Op: vm.IOWriteStr})
			return
		case p.kind == pAddr && p.t.Deref().Kind == types.ArrayK:
			d := p.t.Deref()
			if !d.Base.IsChar() {
				g.errorf(a.ExprPos(), "WriteString requires an ARRAY OF CHAR, have %s", p.t)
			}
			g.emit(vm.Instr{Op: vm.PushInt, Imm: int64(d.Slots())})
			g.emit(vm.Instr{Op: vm.IOWriteStr})
			return
		case p.kind == pAddr || p.kind == pDirect:
			t, _ := g.loadPlaceFrom(p, a.ExprPos())
			if t != types.Bad && t.Under().Kind != types.TextK && t.Under().Kind != types.StringK {
				g.errorf(a.ExprPos(), "WriteString requires text or characters, have %s", t)
			}
			g.emit(vm.Instr{Op: vm.IOWriteText})
			return
		case p.kind == pConst:
			g.emitConst(p.v, a.ExprPos())
			g.emit(vm.Instr{Op: vm.IOWriteText})
			return
		default:
			g.errorf(a.ExprPos(), "WriteString cannot print this designator")
			return
		}
	}
	t := g.compileScalarExpr(a)
	if t != types.Bad && t.Under().Kind != types.TextK && t.Under().Kind != types.StringK {
		g.errorf(a.ExprPos(), "WriteString requires a string, have %s", t)
	}
	g.emit(vm.Instr{Op: vm.IOWriteText})
}

// loadPlaceFrom is loadPlace without re-resolving (helper for places
// already classified).
func (g *Gen) loadPlaceFrom(p place, pos token.Pos) (*types.Type, bool) {
	return g.loadPlace(p, pos)
}
