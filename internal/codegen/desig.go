package codegen

import (
	"m2cc/internal/ast"
	"m2cc/internal/symtab"
	"m2cc/internal/token"
	"m2cc/internal/types"
	"m2cc/internal/vm"
)

// placeKind classifies what a designator denotes.
type placeKind uint8

const (
	pNone    placeKind = iota // resolution failed (error already reported)
	pConst                    // a constant value
	pType                     // a type name (type-transfer call target)
	pBuiltin                  // a pervasive routine (call target only)
	pExc                      // an exception (RAISE target)
	pProc                     // a procedure (call target or procedure value)
	pDirect                   // a scalar variable addressable without code
	pOpen                     // a whole open-array parameter (base+length pair)
	pAddr                     // an address has been pushed on the stack
)

// place is the result of resolving a designator.
type place struct {
	kind placeKind
	t    *types.Type
	sym  *symtab.Symbol
	v    types.Const
}

func badPlace() place { return place{kind: pNone, t: types.Bad} }

// resolveDesig resolves a designator to a place, emitting address
// computation code for anything that needs it.  wantAddr forces even
// simple scalar variables into pAddr form.
func (g *Gen) resolveDesig(d *ast.Designator, wantAddr bool) place {
	res := g.env.Search.Lookup(g.scope, d.Head.Text, g.withBindings())
	if !res.Found() {
		if res.DeepAlias {
			g.errorf(d.Head.Pos, "import chain for %s is cyclic or too deep (more than %d re-export links)", d.Head.Text, symtab.MaxAliasDepth)
		} else {
			g.errorf(d.Head.Pos, "undeclared identifier %s", d.Head.Text)
		}
		return badPlace()
	}
	var t *types.Type
	sels := d.Sels
	if res.Field != nil {
		// WITH-bound field: the record's address is cached in a temp.
		w := g.withs[res.WithIndex]
		g.emit(vm.Instr{Op: vm.LdLoc, A: 0, B: w.temp})
		g.emit(vm.Instr{Op: vm.AddOff, A: int32(res.Field.Offset)})
		t = res.Field.Type
		return g.walkSelectors(t, sels, d.Head.Pos)
	}

	sym := res.Sym
	// Module qualification: M.x (possibly chained).
	for sym.Kind == symtab.KModule {
		if len(sels) == 0 {
			g.errorf(d.Head.Pos, "module %s cannot be used as a value", sym.Name)
			return badPlace()
		}
		fs, ok := sels[0].(*ast.FieldSel)
		if !ok {
			g.errorf(d.Head.Pos, "module %s must be qualified with .name", sym.Name)
			return badPlace()
		}
		qres := g.env.Search.QualifiedLookup(sym.IfaceScope, fs.Name.Text)
		if qres.Sym == nil {
			if qres.DeepAlias {
				g.errorf(fs.Name.Pos, "import chain for %s.%s is cyclic or too deep (more than %d re-export links)", sym.Name, fs.Name.Text, symtab.MaxAliasDepth)
			} else {
				g.errorf(fs.Name.Pos, "%s is not declared in module %s", fs.Name.Text, sym.Name)
			}
			return badPlace()
		}
		sym = qres.Sym
		sels = sels[1:]
	}

	switch sym.Kind {
	case symtab.KConst:
		if len(sels) != 0 {
			g.errorf(d.Head.Pos, "constant %s cannot be selected or indexed", sym.Name)
			return badPlace()
		}
		return place{kind: pConst, t: sym.Type, sym: sym, v: sym.Val}
	case symtab.KType:
		if len(sels) != 0 {
			g.errorf(d.Head.Pos, "type %s cannot be selected or indexed", sym.Name)
			return badPlace()
		}
		return place{kind: pType, t: sym.Type, sym: sym}
	case symtab.KBuiltin:
		return place{kind: pBuiltin, t: types.Bad, sym: sym}
	case symtab.KException:
		return place{kind: pExc, t: types.Exception, sym: sym}
	case symtab.KProc:
		if len(sels) != 0 {
			g.errorf(d.Head.Pos, "procedure %s cannot be selected or indexed", sym.Name)
			return badPlace()
		}
		return place{kind: pProc, t: sym.Type, sym: sym}
	case symtab.KVar, symtab.KParam:
		return g.varPlace(sym, sels, d.Head.Pos, wantAddr)
	default:
		g.errorf(d.Head.Pos, "%s cannot be used here", sym.Name)
		return badPlace()
	}
}

// varPlace emits addressing for a variable or parameter designator.
func (g *Gen) varPlace(sym *symtab.Symbol, sels []ast.Selector, pos token.Pos, wantAddr bool) place {
	if sym.Open {
		return g.openArrayPlace(sym, sels, pos)
	}
	if len(sels) == 0 && !sym.ByRef && isScalar(sym.Type) && !wantAddr {
		return place{kind: pDirect, t: sym.Type, sym: sym}
	}
	g.pushVarAddr(sym)
	return g.walkSelectors(sym.Type, sels, pos)
}

// pushVarAddr pushes the address of a (non-open) variable or parameter.
func (g *Gen) pushVarAddr(sym *symtab.Symbol) {
	switch {
	case sym.ByRef:
		g.emit(vm.Instr{Op: vm.LdLoc, A: g.hops(sym.Level), B: sym.Offset})
	case sym.Global:
		g.emit(vm.Instr{Op: vm.LdaGlb, A: g.areaIdx(sym.Area), B: sym.Offset})
	default:
		g.emit(vm.Instr{Op: vm.LdaLoc, A: g.hops(sym.Level), B: sym.Offset})
	}
}

// openArrayPlace handles open-array parameters: bare (for HIGH and
// argument forwarding) or indexed.
func (g *Gen) openArrayPlace(sym *symtab.Symbol, sels []ast.Selector, pos token.Pos) place {
	if len(sels) == 0 {
		return place{kind: pOpen, t: sym.Type, sym: sym}
	}
	idx, ok := sels[0].(*ast.IndexSel)
	if !ok {
		g.errorf(pos, "open array %s must be indexed", sym.Name)
		return badPlace()
	}
	elem := sym.Type.Deref().Base
	hops := g.hops(sym.Level)
	g.emit(vm.Instr{Op: vm.LdLoc, A: hops, B: sym.Offset})     // base
	g.emit(vm.Instr{Op: vm.LdLoc, A: hops, B: sym.Offset + 1}) // length
	g.compileOrdinalExpr(idx.Indexes[0])
	g.emit(vm.Instr{Op: vm.IndexOp, A: int32(elem.Slots()), B: int32(pos.Line)})
	t := elem
	// Any further indexes in the same bracket apply to the element.
	if len(idx.Indexes) > 1 {
		rest := &ast.IndexSel{Indexes: idx.Indexes[1:], Pos: idx.Pos}
		return g.walkSelectors(t, append([]ast.Selector{rest}, sels[1:]...), pos)
	}
	return g.walkSelectors(t, sels[1:], pos)
}

// walkSelectors applies field/index/deref selectors to the address on
// the stack.
func (g *Gen) walkSelectors(t *types.Type, sels []ast.Selector, pos token.Pos) place {
	for _, sel := range sels {
		if t == types.Bad {
			return badPlace()
		}
		switch sel := sel.(type) {
		case *ast.FieldSel:
			d := t.Deref()
			if d.Kind != types.RecordK {
				g.errorf(sel.Name.Pos, "%s is not a record; cannot select field %s", t, sel.Name.Text)
				return badPlace()
			}
			f := d.FieldNamed(sel.Name.Text)
			if f == nil {
				g.errorf(sel.Name.Pos, "record %s has no field %s", t, sel.Name.Text)
				return badPlace()
			}
			if f.Offset != 0 {
				g.emit(vm.Instr{Op: vm.AddOff, A: int32(f.Offset)})
			}
			t = f.Type
		case *ast.IndexSel:
			for _, ix := range sel.Indexes {
				d := t.Deref()
				if d.Kind != types.ArrayK {
					g.errorf(sel.Pos, "%s is not an array; cannot index", t)
					return badPlace()
				}
				g.compileOrdinalExpr(ix)
				lo, hi, _ := d.Index.Bounds()
				g.emit(vm.Instr{
					Op: vm.Index, Imm: lo, B: int32(hi - lo + 1),
					A: int32(d.Base.Slots()),
				})
				t = d.Base
			}
		case *ast.DerefSel:
			d := t.Deref()
			if d.Kind != types.PointerK && d.Kind != types.RefK {
				g.errorf(sel.Pos, "%s is not a pointer; cannot dereference", t)
				return badPlace()
			}
			g.emit(vm.Instr{Op: vm.LdInd})
			t = d.Base
			if t == nil {
				t = types.Bad
			}
		}
	}
	return place{kind: pAddr, t: t}
}

// isScalar reports whether a value of type t occupies one stack slot.
func isScalar(t *types.Type) bool {
	switch t.Deref().Kind {
	case types.ArrayK, types.RecordK, types.OpenArrayK:
		return false
	}
	return true
}

// loadPlace turns a place into a value on the stack.  For aggregates
// the "value" is the address; the caller handles copying.  Returns the
// value's type and whether it is an aggregate address.
func (g *Gen) loadPlace(p place, pos token.Pos) (*types.Type, bool) {
	switch p.kind {
	case pConst:
		return g.emitConst(p.v, pos), false
	case pDirect:
		if p.sym.Global {
			g.emit(vm.Instr{Op: vm.LdGlb, A: g.areaIdx(p.sym.Area), B: p.sym.Offset})
		} else {
			g.emit(vm.Instr{Op: vm.LdLoc, A: g.hops(p.sym.Level), B: p.sym.Offset})
		}
		return p.t, false
	case pAddr:
		if isScalar(p.t) {
			g.emit(vm.Instr{Op: vm.LdInd})
			return p.t, false
		}
		return p.t, true
	case pProc:
		// Procedure used as a value: only non-nested procedures may be
		// assigned (the Modula-2 rule that makes procedure values need
		// no closure).
		sym := p.sym
		if sym.ExtName != "" {
			g.emit(vm.Instr{Op: vm.PushProc, A: -1, S: sym.ExtName})
		} else {
			g.emit(vm.Instr{Op: vm.PushProc, A: sym.ProcIdx})
		}
		return p.t, false
	case pOpen:
		g.errorf(pos, "open array %s cannot be used as a value here", p.sym.Name)
		return types.Bad, false
	case pNone:
		g.emit(vm.Instr{Op: vm.PushInt})
		return types.Bad, false
	default:
		g.errorf(pos, "%s cannot be used as a value", p.sym.Name)
		g.emit(vm.Instr{Op: vm.PushInt})
		return types.Bad, false
	}
}

// storePlace stores the value on top of the stack into the place (the
// address, for pAddr, was pushed before the value).
func (g *Gen) storePlace(p place, pos token.Pos) {
	switch p.kind {
	case pDirect:
		if p.sym.Global {
			g.emit(vm.Instr{Op: vm.StGlb, A: g.areaIdx(p.sym.Area), B: p.sym.Offset})
		} else {
			g.emit(vm.Instr{Op: vm.StLoc, A: g.hops(p.sym.Level), B: p.sym.Offset})
		}
	case pAddr:
		g.emit(vm.Instr{Op: vm.StInd})
	case pNone:
		g.emit(vm.Instr{Op: vm.Drop})
	default:
		g.errorf(pos, "cannot assign to this designator")
		g.emit(vm.Instr{Op: vm.Drop})
	}
}

// withBindings exposes the active WITH records to the symbol searcher.
func (g *Gen) withBindings() []symtab.WithBinding {
	if len(g.withs) == 0 {
		return nil
	}
	bs := make([]symtab.WithBinding, len(g.withs))
	for i, w := range g.withs {
		bs[i] = w.binding
	}
	return bs
}
