// Package vm defines the abstract stack machine the compiler targets
// and an interpreter for it.
//
// The paper's compiler generated VAX code; the machine here plays the
// same role one level up: each procedure compiles to an independent
// code segment, segments are merged by concatenation in any order
// (§2.1), cross-module references stay symbolic in the object file and
// are resolved by a small linker, and compiled programs actually run —
// which is what lets the test suite check concurrent and sequential
// compilations against each other end to end.
package vm

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Opcodes.  Stack effects are written (pops → pushes).
const (
	Nop Op = iota

	// Constants.
	PushInt  // ( → i) Imm
	PushReal // ( → r) F
	PushStr  // ( → s) S
	PushNil  // ( → nil)
	PushProc // ( → proc) A=local proc index
	Dup      // (v → v v)
	Drop     // (v → )

	// Variable access.  Globals live in per-scope areas (A = local area
	// index); locals in frames (A = static-link hops, B = slot offset).
	LdGlb  // ( → v) A=area B=off
	StGlb  // (v → ) A=area B=off
	LdaGlb // ( → addr) A=area B=off
	LdLoc  // ( → v) A=hops B=off
	StLoc  // (v → ) A=hops B=off
	LdaLoc // ( → addr) A=hops B=off
	LdInd  // (addr → v)
	LdIndN // (addr → v1..vA) multi-slot load for aggregate value arguments
	StInd  // (addr v → )
	Copy   // (dst src → ) A=slot count: aggregate assignment
	StrToA // (dst s → ) store string constant into char array, A=array slots, zero-padded

	// Address arithmetic.
	AddOff  // (addr → addr+A)
	Index   // (addr i → addr+(i-Imm)*A) bounds-checked against B elements
	IndexOp // (addr len i → addr+i*A) open array, bounds-checked

	// Integer arithmetic (also CHAR/enum/BOOLEAN ordinals).
	AddI
	SubI
	MulI
	DivI // DIV, truncating toward -inf per Modula-2
	ModI
	NegI
	AbsI
	OddI // (i → bool)
	CmpI // (a b → bool) A=relation (see Rel*)

	// Real arithmetic.
	AddF
	SubF
	MulF
	DivF
	NegF
	AbsF
	CmpF

	// String / TEXT comparison.
	CmpS

	// Address (pointer/NIL/procedure value) comparison.
	CmpA

	// Sets (bit masks over ordinals 0..63).
	SetAdd    // (mask e → mask')
	SetAddRng // (mask lo hi → mask')
	SetUnion
	SetDiff
	SetInter
	SetSymDiff
	SetIn  // (e mask → bool)
	SetCmp // (a b → bool) A=relation (Eq, Ne, Le=subset, Ge=superset)
	InclM  // (addr e → ) INCL
	ExclM  // (addr e → ) EXCL

	// Booleans (AND/OR compile to short-circuit jumps).
	NotB

	// Conversions and checks.
	IntToReal // FLOAT
	RealToInt // TRUNC
	CapCh     // CAP
	ChkRange  // (v → v) range check Imm..Imm2, A=trap site line

	// Control flow (targets are absolute PCs after linking; segment-
	// relative before).
	Jmp // A=target
	Jz  // (bool → ) jump if false
	Jnz // (bool → ) jump if true

	// Calls.  B = total argument slots (popped into the callee frame).
	Call     // A=local proc index
	CallExt  // S="Module.Proc", resolved by the linker
	CallInd  // (args... proc → ) indirect through a procedure value
	RetP     // return from proper procedure
	RetF     // (v → ) return value to caller's stack
	EnterTry // A=handler PC (segment-relative before linking)
	EndTry
	Raise   // A=local exception index (remapped by the linker)
	ExcIs   // ( → bool) A=local exception index: current exception test
	Reraise // propagate the current exception

	// Heap.
	NewObj  // (addr → ) A=slots: allocate and store pointer through addr
	Dispose // (addr → ) explicit DISPOSE (the heap is GC'd; this clears the pointer)

	// Builtins with dedicated opcodes.
	MathOp     // (r → r) A=math function (see Math*)
	IOWriteInt // (v w → ) width-formatted
	IOWriteChar
	IOWriteStr  // (addr len → ) char-array write; strings via IOWriteText
	IOWriteReal // (r w → )
	IOWriteLn
	IOWriteText // (s → )
	IOReadInt   // (addr → )
	IOReadChar  // (addr → )
	HaltOp
	AssertOp // (bool → ) A=line
	CaseTrap // CASE selector matched no label and there is no ELSE; A=line
	NoRet    // function body fell off the end without RETURN; A=line

	numOps
)

// Relations for CmpI/CmpF/CmpS/CmpA/SetCmp.
const (
	RelEq = iota
	RelNe
	RelLt
	RelLe
	RelGt
	RelGe
)

// Math function selectors for MathOp.
const (
	MathSin = iota
	MathCos
	MathSqrt
	MathLn
	MathExp
	MathArctan
)

var opNames = [numOps]string{
	"NOP", "PUSHI", "PUSHF", "PUSHS", "PUSHNIL", "PUSHPROC", "DUP", "DROP",
	"LDGLB", "STGLB", "LDAGLB", "LDLOC", "STLOC", "LDALOC", "LDIND", "LDINDN", "STIND", "COPY", "STRTOA",
	"ADDOFF", "INDEX", "INDEXOP",
	"ADDI", "SUBI", "MULI", "DIVI", "MODI", "NEGI", "ABSI", "ODDI", "CMPI",
	"ADDF", "SUBF", "MULF", "DIVF", "NEGF", "ABSF", "CMPF",
	"CMPS", "CMPA",
	"SETADD", "SETADDRNG", "UNION", "DIFF", "INTER", "SYMDIFF", "IN", "SETCMP", "INCL", "EXCL",
	"NOT",
	"FLOAT", "TRUNC", "CAP", "CHKRNG",
	"JMP", "JZ", "JNZ",
	"CALL", "CALLX", "CALLI", "RETP", "RETF",
	"TRY", "ENDTRY", "RAISE", "EXCIS", "RERAISE",
	"NEW", "DISPOSE",
	"MATH", "WRINT", "WRCHAR", "WRSTR", "WRREAL", "WRLN", "WRTEXT", "RDINT", "RDCHAR",
	"HALT", "ASSERT", "CASETRAP", "NORET",
}

// String returns the mnemonic.
func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Instr is one instruction.  The operand fields used depend on the
// opcode; unused fields are zero.
type Instr struct {
	Op   Op
	A, B int32
	Imm  int64
	Imm2 int64
	F    float64
	S    string
}
