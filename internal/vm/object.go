package vm

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"m2cc/internal/token"
)

// ProcMeta describes one compiled procedure: its identity, addressing
// metadata and code segment.  The Code slice is produced by exactly one
// statement-analyzer/code-generator task and read only after the merge.
type ProcMeta struct {
	Idx      int32  // object-local index
	Name     string // dotted path within the module, e.g. "Sort" or "Sort.Partition"
	Module   string // module the procedure belongs to
	Exported bool   // heading appears in the definition module
	IsBody   bool   // the module initialization body
	Level    int32  // static nesting level (module body = 0)
	ArgSlots int32
	Frame    int32 // total frame slots (args + locals + temporaries)
	HasRet   bool
	Pos      token.Pos
	Code     []Instr
}

// FullName returns "Module.Name" (or "Module..body" for bodies).
func (p *ProcMeta) FullName() string {
	if p.IsBody {
		return p.Module + "..body"
	}
	return p.Module + "." + p.Name
}

// Area is one global storage area.  Each declaration scope that owns
// module-level variables gets its own area ("M.def", "M.mod"), which is
// what lets definition and implementation declaration tasks assign
// offsets independently, without cross-stream coordination.
type Area struct {
	Name  string
	Slots int32
}

// Object is the output of compiling one implementation module: the
// paper's "complete compiler result" after the merge task concatenates
// the per-stream code (§2.1).  Cross-module references remain symbolic
// (CallExt, area and exception names) until Link.
type Object struct {
	Module  string
	Procs   []*ProcMeta
	Areas   []*Area
	Excs    []string // object-local exception index → "Module.Name"
	Imports []string // directly imported modules (for initialization order)
	Body    int32    // object-local index of the module body proc, -1 if none
}

// Registry assigns object-local indices during compilation.  Methods
// are safe for concurrent use by the compiler's tasks; index assignment
// order is schedule-dependent, which is why everything observable
// (listings, link resolution) goes through names instead.
type Registry struct {
	mu         sync.Mutex // guards: module, procs, and the index maps below
	module     string
	procs      []*ProcMeta
	areas      []*Area
	areaByName map[string]int32
	excs       []string
	excByName  map[string]int32
	imports    []string
	importSeen map[string]bool
	body       int32
}

// NewRegistry returns a registry for compiling the named module.
func NewRegistry(module string) *Registry {
	return &Registry{
		module:     module,
		areaByName: make(map[string]int32),
		excByName:  make(map[string]int32),
		importSeen: make(map[string]bool),
		body:       -1,
	}
}

// Module returns the name of the module being compiled.
func (r *Registry) Module() string { return r.module }

// NewProc allocates a procedure index.  Identity fields are fixed here;
// Frame and Code are filled later by the code generator task that owns
// the procedure.
func (r *Registry) NewProc(name string, exported, isBody bool, level, argSlots int32, hasRet bool, pos token.Pos) *ProcMeta {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &ProcMeta{
		Idx: int32(len(r.procs)), Name: name, Module: r.module,
		Exported: exported, IsBody: isBody, Level: level,
		ArgSlots: argSlots, HasRet: hasRet, Pos: pos,
	}
	r.procs = append(r.procs, p)
	if isBody {
		r.body = p.Idx
	}
	return p
}

// AreaIdx returns (allocating on first use) the object-local index of
// the named global area.
func (r *Registry) AreaIdx(name string) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.areaByName[name]; ok {
		return i
	}
	i := int32(len(r.areas))
	r.areas = append(r.areas, &Area{Name: name})
	r.areaByName[name] = i
	return i
}

// SetAreaSlots records the final size of an area, once its owning
// declaration task completes.
func (r *Registry) SetAreaSlots(idx int32, slots int32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.areas[idx].Slots = slots
}

// ExcIdx returns (allocating on first use) the object-local index of
// the exception with the given fully qualified name ("Module.Name").
func (r *Registry) ExcIdx(fullName string) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.excByName[fullName]; ok {
		return i
	}
	i := int32(len(r.excs))
	r.excs = append(r.excs, fullName)
	r.excByName[fullName] = i
	return i
}

// AddImport records a directly imported module.
func (r *Registry) AddImport(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.importSeen[name] {
		r.importSeen[name] = true
		r.imports = append(r.imports, name)
	}
}

// Object freezes the registry into an Object.  Call after compilation
// completes (the merge task does).
func (r *Registry) Object() *Object {
	r.mu.Lock()
	defer r.mu.Unlock()
	imports := append([]string(nil), r.imports...)
	sort.Strings(imports)
	return &Object{
		Module: r.module, Procs: r.procs, Areas: r.areas,
		Excs: r.excs, Imports: imports, Body: r.body,
	}
}

// Listing renders the object as deterministic symbolic assembly:
// procedures sorted by source position, every cross-reference shown by
// name.  Because object-local indices never appear, concurrent and
// sequential compilations of the same program produce byte-identical
// listings — the property the differential tests check.
func (o *Object) Listing() string {
	procs := append([]*ProcMeta(nil), o.Procs...)
	sort.Slice(procs, func(i, j int) bool {
		if procs[i].Module != procs[j].Module {
			return procs[i].Module < procs[j].Module
		}
		if procs[i].Pos != procs[j].Pos {
			return procs[i].Pos.Before(procs[j].Pos)
		}
		return procs[i].Name < procs[j].Name
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "OBJECT %s\n", o.Module)
	for _, a := range sortedAreas(o.Areas) {
		fmt.Fprintf(&sb, "AREA %s %d\n", a.Name, a.Slots)
	}
	for _, p := range procs {
		kind := "PROC"
		if p.IsBody {
			kind = "BODY"
		}
		fmt.Fprintf(&sb, "%s %s (level=%d args=%d frame=%d ret=%v)\n",
			kind, p.FullName(), p.Level, p.ArgSlots, p.Frame, p.HasRet)
		for pc, ins := range p.Code {
			fmt.Fprintf(&sb, "%5d  %s\n", pc, o.format(ins))
		}
	}
	return sb.String()
}

func sortedAreas(areas []*Area) []*Area {
	out := append([]*Area(nil), areas...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// format renders one instruction with symbolic operands.
func (o *Object) format(ins Instr) string {
	switch ins.Op {
	case PushInt:
		return fmt.Sprintf("%-9s %d", ins.Op, ins.Imm)
	case PushReal:
		return fmt.Sprintf("%-9s %G", ins.Op, ins.F)
	case PushStr:
		return fmt.Sprintf("%-9s %q", ins.Op, ins.S)
	case PushProc:
		if ins.S != "" {
			return fmt.Sprintf("%-9s %s", ins.Op, ins.S)
		}
		return fmt.Sprintf("%-9s %s", ins.Op, o.Procs[ins.A].FullName())
	case LdGlb, StGlb, LdaGlb:
		return fmt.Sprintf("%-9s %s+%d", ins.Op, o.Areas[ins.A].Name, ins.B)
	case LdLoc, StLoc, LdaLoc:
		return fmt.Sprintf("%-9s up%d+%d", ins.Op, ins.A, ins.B)
	case Call:
		return fmt.Sprintf("%-9s %s", ins.Op, o.Procs[ins.A].FullName())
	case CallExt:
		return fmt.Sprintf("%-9s %s", ins.Op, ins.S)
	case CallInd:
		return fmt.Sprintf("%-9s args=%d", ins.Op, ins.B)
	case Raise, ExcIs:
		return fmt.Sprintf("%-9s %s", ins.Op, o.Excs[ins.A])
	case Jmp, Jz, Jnz, EnterTry:
		return fmt.Sprintf("%-9s ->%d", ins.Op, ins.A)
	case Index:
		return fmt.Sprintf("%-9s lo=%d elems=%d size=%d", ins.Op, ins.Imm, ins.B, ins.A)
	case IndexOp:
		return fmt.Sprintf("%-9s size=%d", ins.Op, ins.A)
	case ChkRange:
		return fmt.Sprintf("%-9s %d..%d", ins.Op, ins.Imm, ins.Imm2)
	case CmpI, CmpF, CmpS, CmpA, SetCmp:
		return fmt.Sprintf("%-9s rel=%d", ins.Op, ins.A)
	case Copy, NewObj:
		return fmt.Sprintf("%-9s slots=%d", ins.Op, ins.A)
	case MathOp:
		return fmt.Sprintf("%-9s fn=%d", ins.Op, ins.A)
	default:
		if ins.A != 0 || ins.B != 0 || ins.Imm != 0 {
			return fmt.Sprintf("%-9s a=%d b=%d imm=%d", ins.Op, ins.A, ins.B, ins.Imm)
		}
		return ins.Op.String()
	}
}
