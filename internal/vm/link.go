package vm

import (
	"fmt"
	"sort"
)

// Program is a fully linked, executable image: all symbolic references
// resolved to global indices, module initialization ordered.
type Program struct {
	Procs    []*ProcMeta
	AreaDefs []*Area
	Excs     []string
	Init     []int32 // module body procs in initialization order
	Entry    int32   // the main module's body (-1 if it has none)
	Main     string
}

// Link resolves the symbolic cross-references of a set of compiled
// objects into a Program.  The main module's object must be present;
// objects for imported modules are optional as long as none of their
// procedures are called (pure-interface modules need no implementation).
func Link(objects []*Object, main string) (*Program, error) {
	objs := append([]*Object(nil), objects...)
	sort.Slice(objs, func(i, j int) bool { return objs[i].Module < objs[j].Module })

	p := &Program{Entry: -1, Main: main}

	// Global areas and exceptions, unified by name.
	areaIdx := make(map[string]int32)
	excIdx := make(map[string]int32)
	globalArea := func(a *Area) int32 {
		if i, ok := areaIdx[a.Name]; ok {
			if a.Slots > p.AreaDefs[i].Slots {
				p.AreaDefs[i].Slots = a.Slots
			}
			return i
		}
		i := int32(len(p.AreaDefs))
		p.AreaDefs = append(p.AreaDefs, &Area{Name: a.Name, Slots: a.Slots})
		areaIdx[a.Name] = i
		return i
	}
	globalExc := func(name string) int32 {
		if i, ok := excIdx[name]; ok {
			return i
		}
		i := int32(len(p.Excs))
		p.Excs = append(p.Excs, name)
		excIdx[name] = i
		return i
	}

	// First pass: global proc table and export map.
	exports := make(map[string]int32)
	bodies := make(map[string]int32)
	bases := make([]int32, len(objs))
	for oi, o := range objs {
		bases[oi] = int32(len(p.Procs))
		for _, pm := range o.Procs {
			g := int32(len(p.Procs))
			clone := *pm
			p.Procs = append(p.Procs, &clone)
			if pm.IsBody {
				bodies[o.Module] = g
			} else if pm.Exported {
				exports[pm.FullName()] = g
			}
		}
	}

	// Second pass: remap instructions.
	for oi, o := range objs {
		areaMap := make([]int32, len(o.Areas))
		for i, a := range o.Areas {
			areaMap[i] = globalArea(a)
		}
		excMap := make([]int32, len(o.Excs))
		for i, name := range o.Excs {
			excMap[i] = globalExc(name)
		}
		base := bases[oi]
		for pi := range o.Procs {
			src := o.Procs[pi].Code
			code := make([]Instr, len(src))
			copy(code, src)
			for i := range code {
				ins := &code[i]
				switch ins.Op {
				case Call:
					ins.A += base
				case CallExt:
					g, ok := exports[ins.S]
					if !ok {
						return nil, fmt.Errorf("link: undefined procedure %s (referenced by %s)", ins.S, o.Module)
					}
					ins.Op = Call
					ins.A = g
					ins.S = ""
				case PushProc:
					if ins.S != "" {
						g, ok := exports[ins.S]
						if !ok {
							return nil, fmt.Errorf("link: undefined procedure %s (referenced by %s)", ins.S, o.Module)
						}
						ins.A = g
						ins.S = ""
					} else {
						ins.A += base
					}
				case LdGlb, StGlb, LdaGlb:
					ins.A = areaMap[ins.A]
				case Raise, ExcIs:
					ins.A = excMap[ins.A]
				}
			}
			p.Procs[base+int32(pi)].Code = code
		}
	}

	// Initialization order: imported module bodies before importers
	// (post-order over the import DAG from the main module).
	byName := make(map[string]*Object, len(objs))
	for _, o := range objs {
		byName[o.Module] = o
	}
	mainObj, ok := byName[main]
	if !ok {
		return nil, fmt.Errorf("link: main module %s has no object", main)
	}
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("link: import cycle through module %s", name)
		case 2:
			return nil
		}
		state[name] = 1
		if o := byName[name]; o != nil {
			for _, imp := range o.Imports {
				if imp == name {
					continue
				}
				if err := visit(imp); err != nil {
					return err
				}
			}
			if name != main {
				if b, ok := bodies[name]; ok {
					p.Init = append(p.Init, b)
				}
			}
		}
		state[name] = 2
		return nil
	}
	if err := visit(main); err != nil {
		return nil, err
	}
	if b, ok := bodies[main]; ok {
		p.Entry = b
	}
	_ = mainObj
	return p, nil
}
