package vm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// ValKind tags polymorphic values (only where instructions are
// polymorphic: NIL, addresses and procedure values under CmpA).
type ValKind uint8

// Value kinds.
const (
	VInt ValKind = iota
	VReal
	VStr
	VAddr
	VProc
	VNil
)

// Addr is a machine address: a storage container plus a slot offset.
type Addr struct {
	Mem []Value
	Off int32
}

// Value is one machine slot or stack entry.
type Value struct {
	K ValKind
	I int64
	F float64
	S string
	A Addr
}

func intVal(i int64) Value    { return Value{K: VInt, I: i} }
func realVal(f float64) Value { return Value{K: VReal, F: f} }
func strVal(s string) Value   { return Value{K: VStr, S: s} }
func addrVal(a Addr) Value    { return Value{K: VAddr, A: a} }
func procVal(idx int32) Value { return Value{K: VProc, I: int64(idx)} }
func nilVal() Value           { return Value{K: VNil} }
func sameAddr(a, b Addr) bool {
	if len(a.Mem) == 0 || len(b.Mem) == 0 {
		return len(a.Mem) == 0 && len(b.Mem) == 0 && a.Off == b.Off
	}
	return &a.Mem[0] == &b.Mem[0] && a.Off == b.Off
}

// RuntimeError is a trap raised by the running program.
type RuntimeError struct {
	Msg  string
	Line int32
	Proc string
}

func (e *RuntimeError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("runtime error in %s (line %d): %s", e.Proc, e.Line, e.Msg)
	}
	return fmt.Sprintf("runtime error in %s: %s", e.Proc, e.Msg)
}

// Machine executes a linked Program.
type Machine struct {
	prog  *Program
	areas [][]Value
	out   io.Writer
	in    *bufio.Reader

	steps    int64
	MaxSteps int64 // execution budget; 0 selects a generous default

	halted bool
}

// NewMachine prepares a machine for one run of prog.
func NewMachine(prog *Program, in io.Reader, out io.Writer) *Machine {
	m := &Machine{prog: prog, out: out, MaxSteps: 200_000_000}
	if in == nil {
		in = strings.NewReader("")
	}
	m.in = bufio.NewReader(in)
	m.areas = make([][]Value, len(prog.AreaDefs))
	for i, a := range prog.AreaDefs {
		m.areas[i] = make([]Value, a.Slots)
	}
	return m
}

type frame struct {
	slots []Value
	up    *frame
}

// staticLink computes the callee's static link given the caller's frame
// and levels.
func staticLink(caller *frame, callerLevel, calleeLevel int32) *frame {
	link := caller
	for l := callerLevel; l >= calleeLevel && link != nil; l-- {
		link = link.up
	}
	return link
}

// Run executes module initialization bodies followed by the main body.
// It returns the first runtime error, unhandled exception or HALT
// (HALT is a normal stop, returning nil).
func (m *Machine) Run() error {
	for _, b := range m.prog.Init {
		if err := m.runTop(b); err != nil || m.halted {
			return err
		}
	}
	if m.prog.Entry >= 0 {
		return m.runTop(m.prog.Entry)
	}
	return nil
}

func (m *Machine) runTop(proc int32) error {
	_, exc, err := m.call(proc, nil, nil, 0)
	if err != nil {
		return err
	}
	if exc >= 0 {
		return fmt.Errorf("unhandled exception %s", m.prog.Excs[exc])
	}
	return nil
}

// call runs one procedure.  args are the argument slots (frame prefix);
// callerFrame/callerLevel supply the static link.  It returns the
// function result (if any), a raised-exception index (-1 none) and a
// trap error.
func (m *Machine) call(procIdx int32, args []Value, callerFrame *frame, callerLevel int32) (Value, int32, error) {
	p := m.prog.Procs[procIdx]
	f := &frame{slots: make([]Value, p.Frame)}
	copy(f.slots, args)
	if p.Level > 0 {
		f.up = staticLink(callerFrame, callerLevel, p.Level)
	}

	stack := make([]Value, 0, 16)
	push := func(v Value) { stack = append(stack, v) }
	pop := func() Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	trap := func(line int32, format string, a ...any) error {
		return &RuntimeError{Msg: fmt.Sprintf(format, a...), Line: line, Proc: p.FullName()}
	}
	frameAt := func(hops int32) *frame {
		fr := f
		for ; hops > 0; hops-- {
			fr = fr.up
		}
		return fr
	}

	var tryStack []int32
	curExc := int32(-1)
	code := p.Code

	for pc := int32(0); pc >= 0 && int(pc) < len(code); pc++ {
		m.steps++
		if m.steps > m.MaxSteps {
			return Value{}, -1, trap(0, "execution budget exceeded (possible infinite loop)")
		}
		ins := code[pc]
		switch ins.Op {
		case Nop:
		case PushInt:
			push(intVal(ins.Imm))
		case PushReal:
			push(realVal(ins.F))
		case PushStr:
			push(strVal(ins.S))
		case PushNil:
			push(nilVal())
		case PushProc:
			push(procVal(ins.A))
		case Dup:
			push(stack[len(stack)-1])
		case Drop:
			pop()

		case LdGlb:
			push(m.areas[ins.A][ins.B])
		case StGlb:
			m.areas[ins.A][ins.B] = pop()
		case LdaGlb:
			push(addrVal(Addr{Mem: m.areas[ins.A], Off: ins.B}))
		case LdLoc:
			push(frameAt(ins.A).slots[ins.B])
		case StLoc:
			frameAt(ins.A).slots[ins.B] = pop()
		case LdaLoc:
			push(addrVal(Addr{Mem: frameAt(ins.A).slots, Off: ins.B}))
		case LdInd:
			a := pop()
			if a.K != VAddr {
				return Value{}, -1, trap(0, "NIL dereference")
			}
			push(a.A.Mem[a.A.Off])
		case LdIndN:
			a := pop()
			if a.K != VAddr {
				return Value{}, -1, trap(0, "NIL dereference")
			}
			for i := int32(0); i < ins.A; i++ {
				push(a.A.Mem[a.A.Off+i])
			}
		case StInd:
			v := pop()
			a := pop()
			if a.K != VAddr {
				return Value{}, -1, trap(0, "NIL dereference")
			}
			a.A.Mem[a.A.Off] = v
		case Copy:
			src := pop()
			dst := pop()
			if src.K != VAddr || dst.K != VAddr {
				return Value{}, -1, trap(0, "NIL dereference in aggregate copy")
			}
			copy(dst.A.Mem[dst.A.Off:dst.A.Off+ins.A], src.A.Mem[src.A.Off:src.A.Off+ins.A])
		case StrToA:
			s := pop().S
			dst := pop()
			if dst.K != VAddr {
				return Value{}, -1, trap(0, "NIL dereference in string store")
			}
			for i := int32(0); i < ins.A; i++ {
				var c int64
				if int(i) < len(s) {
					c = int64(s[i])
				}
				dst.A.Mem[dst.A.Off+i] = intVal(c)
			}

		case AddOff:
			a := pop()
			if a.K != VAddr {
				return Value{}, -1, trap(0, "NIL dereference")
			}
			a.A.Off += ins.A
			push(a)
		case Index:
			i := pop().I
			a := pop()
			if a.K != VAddr {
				return Value{}, -1, trap(0, "NIL dereference")
			}
			rel := i - ins.Imm
			if rel < 0 || rel >= int64(ins.B) {
				return Value{}, -1, trap(0, "array index %d out of bounds [%d..%d]", i, ins.Imm, ins.Imm+int64(ins.B)-1)
			}
			a.A.Off += int32(rel) * ins.A
			push(a)
		case IndexOp:
			i := pop().I
			n := pop().I
			a := pop()
			if a.K != VAddr {
				return Value{}, -1, trap(ins.B, "NIL open array")
			}
			if i < 0 || i >= n {
				return Value{}, -1, trap(ins.B, "open array index %d out of bounds [0..%d]", i, n-1)
			}
			a.A.Off += int32(i) * ins.A
			push(a)

		case AddI:
			b := pop().I
			a := pop().I
			push(intVal(a + b))
		case SubI:
			b := pop().I
			a := pop().I
			push(intVal(a - b))
		case MulI:
			b := pop().I
			a := pop().I
			push(intVal(a * b))
		case DivI:
			b := pop().I
			a := pop().I
			if b == 0 {
				return Value{}, -1, trap(ins.A, "division by zero")
			}
			q := a / b
			if a%b != 0 && (a < 0) != (b < 0) {
				q--
			}
			push(intVal(q))
		case ModI:
			b := pop().I
			a := pop().I
			if b == 0 {
				return Value{}, -1, trap(ins.A, "division by zero")
			}
			q := a / b
			if a%b != 0 && (a < 0) != (b < 0) {
				q--
			}
			push(intVal(a - q*b))
		case NegI:
			push(intVal(-pop().I))
		case AbsI:
			v := pop().I
			if v < 0 {
				v = -v
			}
			push(intVal(v))
		case OddI:
			push(intVal(pop().I & 1))
		case CmpI:
			b := pop().I
			a := pop().I
			push(intVal(boolInt(cmpOrd(a, b, ins.A))))

		case AddF:
			b := pop().F
			a := pop().F
			push(realVal(a + b))
		case SubF:
			b := pop().F
			a := pop().F
			push(realVal(a - b))
		case MulF:
			b := pop().F
			a := pop().F
			push(realVal(a * b))
		case DivF:
			b := pop().F
			a := pop().F
			if b == 0 {
				return Value{}, -1, trap(ins.A, "real division by zero")
			}
			push(realVal(a / b))
		case NegF:
			push(realVal(-pop().F))
		case AbsF:
			push(realVal(math.Abs(pop().F)))
		case CmpF:
			b := pop().F
			a := pop().F
			var c int
			switch {
			case a < b:
				c = -1
			case a > b:
				c = 1
			}
			push(intVal(boolInt(relHolds(c, ins.A))))
		case CmpS:
			b := pop().S
			a := pop().S
			push(intVal(boolInt(relHolds(strings.Compare(a, b), ins.A))))
		case CmpA:
			b := pop()
			a := pop()
			eq := false
			switch {
			case a.K == VNil && b.K == VNil:
				eq = true
			case a.K == VAddr && b.K == VAddr:
				eq = sameAddr(a.A, b.A)
			case a.K == VProc && b.K == VProc:
				eq = a.I == b.I
			}
			if ins.A == RelEq {
				push(intVal(boolInt(eq)))
			} else {
				push(intVal(boolInt(!eq)))
			}

		case SetAdd:
			e := pop().I
			s := pop().I
			if e < 0 || e > 63 {
				return Value{}, -1, trap(ins.A, "set element %d outside 0..63", e)
			}
			push(intVal(s | int64(1)<<uint(e)))
		case SetAddRng:
			hi := pop().I
			lo := pop().I
			s := pop().I
			if lo < 0 || hi > 63 {
				return Value{}, -1, trap(ins.A, "set range %d..%d outside 0..63", lo, hi)
			}
			for e := lo; e <= hi; e++ {
				s |= int64(1) << uint(e)
			}
			push(intVal(s))
		case SetUnion:
			b := pop().I
			a := pop().I
			push(intVal(a | b))
		case SetDiff:
			b := pop().I
			a := pop().I
			push(intVal(a &^ b))
		case SetInter:
			b := pop().I
			a := pop().I
			push(intVal(a & b))
		case SetSymDiff:
			b := pop().I
			a := pop().I
			push(intVal(a ^ b))
		case SetIn:
			s := pop().I
			e := pop().I
			in := e >= 0 && e < 64 && s&(int64(1)<<uint(e)) != 0
			push(intVal(boolInt(in)))
		case SetCmp:
			b := pop().I
			a := pop().I
			var r bool
			switch ins.A {
			case RelEq:
				r = a == b
			case RelNe:
				r = a != b
			case RelLe:
				r = a&^b == 0
			case RelGe:
				r = b&^a == 0
			}
			push(intVal(boolInt(r)))
		case InclM:
			e := pop().I
			a := pop()
			if e < 0 || e > 63 {
				return Value{}, -1, trap(ins.A, "set element %d outside 0..63", e)
			}
			a.A.Mem[a.A.Off].I |= int64(1) << uint(e)
		case ExclM:
			e := pop().I
			a := pop()
			if e < 0 || e > 63 {
				return Value{}, -1, trap(ins.A, "set element %d outside 0..63", e)
			}
			a.A.Mem[a.A.Off].I &^= int64(1) << uint(e)

		case NotB:
			push(intVal(boolInt(pop().I == 0)))

		case IntToReal:
			push(realVal(float64(pop().I)))
		case RealToInt:
			push(intVal(int64(pop().F)))
		case CapCh:
			c := pop().I
			if c >= 'a' && c <= 'z' {
				c -= 32
			}
			push(intVal(c))
		case ChkRange:
			v := stack[len(stack)-1].I
			if v < ins.Imm || v > ins.Imm2 {
				return Value{}, -1, trap(ins.A, "value %d outside range %d..%d", v, ins.Imm, ins.Imm2)
			}

		case Jmp:
			pc = ins.A - 1
		case Jz:
			if pop().I == 0 {
				pc = ins.A - 1
			}
		case Jnz:
			if pop().I != 0 {
				pc = ins.A - 1
			}

		case Call, CallInd:
			target := ins.A
			nargs := ins.B
			args := make([]Value, nargs)
			copy(args, stack[int32(len(stack))-nargs:])
			stack = stack[:int32(len(stack))-nargs]
			if ins.Op == CallInd {
				pv := pop()
				if pv.K != VProc {
					return Value{}, -1, trap(0, "call through NIL procedure value")
				}
				target = int32(pv.I)
			}
			ret, exc, err := m.call(target, args, f, p.Level)
			if err != nil {
				return Value{}, -1, err
			}
			if m.halted {
				return Value{}, -1, nil
			}
			if exc >= 0 {
				// Propagate into this procedure's innermost handler, or
				// out of the procedure.
				if len(tryStack) == 0 {
					return Value{}, exc, nil
				}
				curExc = exc
				pc = tryStack[len(tryStack)-1] - 1
				tryStack = tryStack[:len(tryStack)-1]
				continue
			}
			if m.prog.Procs[target].HasRet {
				push(ret)
			}

		case RetP:
			return Value{}, -1, nil
		case RetF:
			return pop(), -1, nil

		case EnterTry:
			tryStack = append(tryStack, ins.A)
		case EndTry:
			tryStack = tryStack[:len(tryStack)-1]
		case Raise:
			if len(tryStack) == 0 {
				return Value{}, ins.A, nil
			}
			curExc = ins.A
			pc = tryStack[len(tryStack)-1] - 1
			tryStack = tryStack[:len(tryStack)-1]
		case ExcIs:
			push(intVal(boolInt(curExc == ins.A)))
		case Reraise:
			if len(tryStack) == 0 {
				return Value{}, curExc, nil
			}
			pc = tryStack[len(tryStack)-1] - 1
			tryStack = tryStack[:len(tryStack)-1]

		case NewObj:
			a := pop()
			obj := make([]Value, ins.A)
			a.A.Mem[a.A.Off] = addrVal(Addr{Mem: obj})
		case Dispose:
			a := pop()
			a.A.Mem[a.A.Off] = nilVal()

		case MathOp:
			x := pop().F
			var r float64
			switch ins.A {
			case MathSin:
				r = math.Sin(x)
			case MathCos:
				r = math.Cos(x)
			case MathSqrt:
				if x < 0 {
					return Value{}, -1, trap(ins.B, "sqrt of negative value")
				}
				r = math.Sqrt(x)
			case MathLn:
				if x <= 0 {
					return Value{}, -1, trap(ins.B, "ln of non-positive value")
				}
				r = math.Log(x)
			case MathExp:
				r = math.Exp(x)
			case MathArctan:
				r = math.Atan(x)
			}
			push(realVal(r))

		case IOWriteInt:
			w := pop().I
			v := pop().I
			fmt.Fprintf(m.out, "%*d", w, v)
		case IOWriteChar:
			fmt.Fprintf(m.out, "%c", rune(pop().I))
		case IOWriteStr:
			n := pop().I
			a := pop()
			var sb strings.Builder
			for i := int64(0); i < n; i++ {
				c := a.A.Mem[a.A.Off+int32(i)].I
				if c == 0 {
					break
				}
				sb.WriteByte(byte(c))
			}
			io.WriteString(m.out, sb.String())
		case IOWriteReal:
			w := pop().I
			v := pop().F
			fmt.Fprintf(m.out, "%*G", w, v)
		case IOWriteLn:
			io.WriteString(m.out, "\n")
		case IOWriteText:
			io.WriteString(m.out, pop().S)
		case IOReadInt:
			a := pop()
			var v int64
			fmt.Fscan(m.in, &v)
			a.A.Mem[a.A.Off] = intVal(v)
		case IOReadChar:
			a := pop()
			c, err := m.in.ReadByte()
			if err != nil {
				c = 0
			}
			a.A.Mem[a.A.Off] = intVal(int64(c))

		case HaltOp:
			m.halted = true
			return Value{}, -1, nil
		case AssertOp:
			if pop().I == 0 {
				return Value{}, -1, trap(ins.A, "assertion failed")
			}
		case CaseTrap:
			return Value{}, -1, trap(ins.A, "CASE selector matches no label")
		case NoRet:
			return Value{}, -1, trap(ins.A, "function ended without RETURN")

		default:
			return Value{}, -1, trap(0, "illegal instruction %s", ins.Op)
		}
	}
	return Value{}, -1, nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpOrd(a, b int64, rel int32) bool {
	var c int
	switch {
	case a < b:
		c = -1
	case a > b:
		c = 1
	}
	return relHolds(c, rel)
}

func relHolds(c int, rel int32) bool {
	switch rel {
	case RelEq:
		return c == 0
	case RelNe:
		return c != 0
	case RelLt:
		return c < 0
	case RelLe:
		return c <= 0
	case RelGt:
		return c > 0
	default:
		return c >= 0
	}
}
