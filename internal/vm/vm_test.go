package vm_test

import (
	"strings"
	"testing"

	"m2cc/internal/seq"
	"m2cc/internal/source"
	"m2cc/internal/token"
	"m2cc/internal/vm"
)

// compile builds an object from in-memory sources.
func compile(t *testing.T, name string, files map[string]string) *vm.Object {
	t.Helper()
	loader := source.NewMapLoader()
	for n, text := range files {
		if base, ok := strings.CutSuffix(n, ".def"); ok {
			loader.Add(base, source.Def, text)
		} else {
			loader.Add(strings.TrimSuffix(n, ".mod"), source.Impl, text)
		}
	}
	res := seq.Compile(name, loader)
	if res.Failed() {
		t.Fatalf("compile %s:\n%s", name, res.Diags)
	}
	return res.Object
}

func TestLinkUndefinedProcedure(t *testing.T) {
	obj := compile(t, "Main", map[string]string{
		"Lib.def":  "DEFINITION MODULE Lib;\nPROCEDURE Go;\nEND Lib.",
		"Main.mod": "MODULE Main;\nIMPORT Lib;\nBEGIN\n  Lib.Go\nEND Main.",
	})
	_, err := vm.Link([]*vm.Object{obj}, "Main")
	if err == nil || !strings.Contains(err.Error(), "undefined procedure Lib.Go") {
		t.Fatalf("want undefined-procedure error, got %v", err)
	}
}

func TestLinkInterfaceOnlyModuleIsFine(t *testing.T) {
	// A module whose interface carries only constants/types needs no
	// implementation.
	obj := compile(t, "Main", map[string]string{
		"Consts.def": "DEFINITION MODULE Consts;\nCONST K = 41;\nEND Consts.",
		"Main.mod":   "MODULE Main;\nIMPORT Consts;\nBEGIN\n  WriteInt(Consts.K + 1, 0); WriteLn\nEND Main.",
	})
	prog, err := vm.Link([]*vm.Object{obj}, "Main")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := vm.NewMachine(prog, nil, &out).Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestModuleInitializationOrder(t *testing.T) {
	// Imported module bodies run before importers' bodies (post-order
	// over the import DAG), the main body last.
	files := map[string]string{
		"A.def":    "DEFINITION MODULE A;\nPROCEDURE Mark;\nEND A.",
		"A.mod":    "IMPLEMENTATION MODULE A;\nPROCEDURE Mark;\nBEGIN WriteChar(\"a\") END Mark;\nBEGIN\n  WriteChar(\"A\")\nEND A.",
		"B.def":    "DEFINITION MODULE B;\nIMPORT A;\nEND B.",
		"B.mod":    "IMPLEMENTATION MODULE B;\nIMPORT A;\nBEGIN\n  A.Mark;\n  WriteChar(\"B\")\nEND B.",
		"Main.mod": "MODULE Main;\nIMPORT B;\nBEGIN\n  WriteChar(\"M\"); WriteLn\nEND Main.",
	}
	var objs []*vm.Object
	for _, m := range []string{"Main", "A", "B"} {
		objs = append(objs, compile(t, m, files))
	}
	prog, err := vm.Link(objs, "Main")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := vm.NewMachine(prog, nil, &out).Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "AaBM\n" {
		t.Fatalf("init order gave %q, want %q", out.String(), "AaBM\n")
	}
}

func TestGlobalAreaSharedAcrossObjects(t *testing.T) {
	// A definition-module variable written by its owner must be visible
	// to a client: both objects reference the area "Shared.def" and the
	// linker unifies it.
	files := map[string]string{
		"Shared.def": "DEFINITION MODULE Shared;\nVAR counter: INTEGER;\nPROCEDURE Bump;\nEND Shared.",
		"Shared.mod": "IMPLEMENTATION MODULE Shared;\nPROCEDURE Bump;\nBEGIN INC(counter) END Bump;\nBEGIN counter := 100\nEND Shared.",
		"Main.mod":   "MODULE Main;\nIMPORT Shared;\nBEGIN\n  Shared.Bump;\n  Shared.counter := Shared.counter + 10;\n  WriteInt(Shared.counter, 0); WriteLn\nEND Main.",
	}
	objs := []*vm.Object{compile(t, "Main", files), compile(t, "Shared", files)}
	prog, err := vm.Link(objs, "Main")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := vm.NewMachine(prog, nil, &out).Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "111\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestExceptionIdentityAcrossModules(t *testing.T) {
	files := map[string]string{
		"Errs.def": "DEFINITION MODULE Errs;\nEXCEPTION Fail;\nPROCEDURE Boom;\nEND Errs.",
		"Errs.mod": "IMPLEMENTATION MODULE Errs;\nPROCEDURE Boom;\nBEGIN RAISE Fail END Boom;\nEND Errs.",
		"Main.mod": `MODULE Main;
FROM Errs IMPORT Fail, Boom;
BEGIN
  TRY
    Boom
  EXCEPT
    Fail: WriteString("caught across modules")
  END;
  WriteLn
END Main.`,
	}
	objs := []*vm.Object{compile(t, "Main", files), compile(t, "Errs", files)}
	prog, err := vm.Link(objs, "Main")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := vm.NewMachine(prog, nil, &out).Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "caught across modules\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestLinkMissingMain(t *testing.T) {
	obj := compile(t, "A", map[string]string{"A.mod": "MODULE A;\nEND A."})
	if _, err := vm.Link([]*vm.Object{obj}, "Nope"); err == nil {
		t.Fatal("missing main must fail")
	}
}

func TestListingIsSymbolicAndStable(t *testing.T) {
	files := map[string]string{
		"Main.mod": `MODULE Main;
VAR g: INTEGER;
PROCEDURE Inc2;
BEGIN
  INC(g, 2)
END Inc2;
BEGIN
  Inc2
END Main.`,
	}
	a := compile(t, "Main", files).Listing()
	b := compile(t, "Main", files).Listing()
	if a != b {
		t.Fatal("listing not reproducible")
	}
	for _, want := range []string{"PROC Main.Inc2", "BODY Main..body",
		"AREA Main.mod 1", "CALL      Main.Inc2", "LDAGLB    Main.mod+0"} {
		if !strings.Contains(a, want) {
			t.Errorf("listing missing %q:\n%s", want, a)
		}
	}
}

func TestExecutionBudget(t *testing.T) {
	obj := compile(t, "Spin", map[string]string{
		"Spin.mod": "MODULE Spin;\nBEGIN\n  LOOP END\nEND Spin.",
	})
	prog, err := vm.Link([]*vm.Object{obj}, "Spin")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(prog, nil, &strings.Builder{})
	m.MaxSteps = 10000
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("infinite loop must hit the budget, got %v", err)
	}
}

func TestRuntimeErrorIdentifiesProcedure(t *testing.T) {
	obj := compile(t, "Trap", map[string]string{
		"Trap.mod": `MODULE Trap;
PROCEDURE Div(a, b: INTEGER): INTEGER;
BEGIN
  RETURN a DIV b
END Div;
BEGIN
  WriteInt(Div(1, 0), 0)
END Trap.`,
	})
	prog, _ := vm.Link([]*vm.Object{obj}, "Trap")
	err := vm.NewMachine(prog, nil, &strings.Builder{}).Run()
	rte, ok := err.(*vm.RuntimeError)
	if !ok {
		t.Fatalf("want *RuntimeError, got %T: %v", err, err)
	}
	if rte.Proc != "Trap.Div" || rte.Line == 0 {
		t.Fatalf("trap context wrong: %+v", rte)
	}
}

func TestOpNamesComplete(t *testing.T) {
	// Every opcode must have a mnemonic (catches forgotten table rows).
	for op := vm.Op(0); ; op++ {
		s := op.String()
		if strings.HasPrefix(s, "OP(") {
			break
		}
		if s == "" {
			t.Fatalf("opcode %d has an empty name", op)
		}
	}
}

func TestRegistryExcAndAreaIdempotence(t *testing.T) {
	reg := vm.NewRegistry("M")
	a1 := reg.AreaIdx("M.def")
	a2 := reg.AreaIdx("M.def")
	b := reg.AreaIdx("M.mod")
	if a1 != a2 || a1 == b {
		t.Fatal("area indices wrong")
	}
	e1 := reg.ExcIdx("M.mod:E")
	e2 := reg.ExcIdx("M.mod:E")
	f := reg.ExcIdx("M.mod:F")
	if e1 != e2 || e1 == f {
		t.Fatal("exception indices wrong")
	}
	reg.AddImport("A")
	reg.AddImport("A")
	obj := reg.Object()
	if len(obj.Imports) != 1 {
		t.Fatal("duplicate import recorded")
	}
}

func TestProcMetaFullName(t *testing.T) {
	p := &vm.ProcMeta{Name: "Outer.Inner", Module: "M"}
	if p.FullName() != "M.Outer.Inner" {
		t.Fatal(p.FullName())
	}
	b := &vm.ProcMeta{Module: "M", IsBody: true}
	if b.FullName() != "M..body" {
		t.Fatal(b.FullName())
	}
	_ = token.Pos{}
}
