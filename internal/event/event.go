// Package event implements the concurrency mechanism of the concurrent
// compiler: the event.
//
// Per Wortman & Junkin §2.3.1: "An event is simply something that either
// has or has not occurred.  A task waits on an event if and only if it
// hasn't occurred."  Producer tasks fire events to indicate that a
// portion of a shared data structure (a token block, a completed symbol
// table, a processed procedure heading) is ready for its consumers.
//
// How an event is *waited on* — avoided, handled, or barrier — is a
// property of the waiting task, not the event, and is implemented by the
// scheduler (internal/sched).  This package supplies only the primitive.
package event

import (
	"sync"
	"sync/atomic"
)

// Process-wide fire/wait tallies.  The observability layer
// (internal/obs) snapshots these around a compilation to report how
// much event traffic it generated; the counters are monotonic and
// shared by every compilation in the process, so consumers must work
// with deltas.  One atomic add per fire/wait keeps the primitive's
// overhead negligible whether or not anyone is observing.
var (
	totalFires int64
	totalWaits int64
)

// Counters is a snapshot of the process-wide event tallies.
type Counters struct {
	Fires int64 // events fired (first Fire per event only)
	Waits int64 // blocking waits actually taken (Wait on an unfired event)
}

// Totals returns the current process-wide event counters.
func Totals() Counters {
	return Counters{
		Fires: atomic.LoadInt64(&totalFires),
		Waits: atomic.LoadInt64(&totalWaits),
	}
}

// Sub returns c - prev, the traffic between two snapshots.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{Fires: c.Fires - prev.Fires, Waits: c.Waits - prev.Waits}
}

// Event is a one-shot occurrence flag.  The zero value is an unfired
// event ready for use.  Fire is idempotent; all methods are safe for
// concurrent use.
//
// The fired flag is an atomic published under mu: it transitions
// false→true exactly once, inside Fire's critical section.  Readers may
// check it without the lock — once it reads true it stays true, and the
// sequentially-consistent store/load pair carries the happens-before
// edge from the producer's writes to the consumer.  Post-fire Fired,
// Wait, Fire and Subscribe calls (the common warm case on every DKY
// probe and token fetch) therefore cost one atomic load and never touch
// the mutex.
type Event struct {
	mu    sync.Mutex    // guards: subs, done (creation); fired's false→true transition
	done  chan struct{} // guards: the fired state for waiters — closed exactly once by Fire
	fired atomic.Bool   // set while holding mu; read lock-free
	subs  []func()
}

// New returns a fresh, unfired event.
func New() *Event { return &Event{} }

// Fire marks the event as occurred, wakes all waiters, and runs all
// subscribed callbacks.  Firing an already-fired event is a no-op.
func (e *Event) Fire() {
	if e.fired.Load() {
		return
	}
	e.mu.Lock()
	if e.fired.Load() {
		e.mu.Unlock()
		return
	}
	e.fired.Store(true)
	atomic.AddInt64(&totalFires, 1)
	if e.done != nil {
		close(e.done)
	}
	subs := e.subs
	e.subs = nil
	e.mu.Unlock()
	for _, f := range subs {
		f()
	}
}

// Fired reports whether the event has occurred.
func (e *Event) Fired() bool {
	return e.fired.Load()
}

// Done returns a channel that is closed when the event fires.  The same
// channel is returned on every call.
func (e *Event) Done() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done == nil {
		e.done = make(chan struct{})
		if e.fired.Load() {
			close(e.done)
		}
	}
	return e.done
}

// Subscribe arranges for f to run once when the event fires.  If the
// event has already fired, f runs immediately in the caller's goroutine.
// The scheduler uses this to move tasks gated on avoided events into the
// ready queue the moment their last gate fires.
func (e *Event) Subscribe(f func()) {
	if e.fired.Load() {
		f()
		return
	}
	e.mu.Lock()
	if e.fired.Load() {
		e.mu.Unlock()
		f()
		return
	}
	e.subs = append(e.subs, f)
	e.mu.Unlock()
}

// WaitChan returns the channel Wait would block on, counting the wait
// in the process-wide tallies exactly as Wait does when the event is
// unfired.  Use it when the wait must be combined with other signals in
// a select (the scheduler's cancellation-aware waits); plain blocking
// waits should call Wait.
func (e *Event) WaitChan() <-chan struct{} {
	if !e.fired.Load() {
		atomic.AddInt64(&totalWaits, 1)
	}
	return e.Done()
}

// Wait blocks the calling goroutine until the event fires.  Tasks under
// the Supervisor must not call Wait directly for handled events — they go
// through the scheduler so their worker slot can be released; Wait is the
// barrier-style wait used by token-queue consumers (§2.3.3).
func (e *Event) Wait() {
	if e.fired.Load() {
		return
	}
	atomic.AddInt64(&totalWaits, 1)
	<-e.Done()
}
