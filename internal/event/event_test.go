package event_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"m2cc/internal/event"
)

func TestFireIsIdempotent(t *testing.T) {
	e := event.New()
	if e.Fired() {
		t.Fatal("new event must be unfired")
	}
	e.Fire()
	e.Fire()
	if !e.Fired() {
		t.Fatal("event must be fired")
	}
}

func TestDoneClosesOnFire(t *testing.T) {
	e := event.New()
	select {
	case <-e.Done():
		t.Fatal("Done closed before Fire")
	default:
	}
	e.Fire()
	select {
	case <-e.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after Fire")
	}
}

func TestDoneAfterFire(t *testing.T) {
	e := event.New()
	e.Fire()
	select {
	case <-e.Done():
	default:
		t.Fatal("Done must be closed when requested after Fire")
	}
}

func TestSubscribeBeforeFire(t *testing.T) {
	e := event.New()
	var n atomic.Int32
	e.Subscribe(func() { n.Add(1) })
	e.Subscribe(func() { n.Add(1) })
	if n.Load() != 0 {
		t.Fatal("callbacks ran before Fire")
	}
	e.Fire()
	if n.Load() != 2 {
		t.Fatalf("callbacks ran %d times, want 2", n.Load())
	}
	e.Fire()
	if n.Load() != 2 {
		t.Fatal("callbacks must run exactly once")
	}
}

func TestSubscribeAfterFireRunsInline(t *testing.T) {
	e := event.New()
	e.Fire()
	ran := false
	e.Subscribe(func() { ran = true })
	if !ran {
		t.Fatal("late subscription must run immediately")
	}
}

func TestConcurrentWaitersAllWake(t *testing.T) {
	e := event.New()
	const n = 50
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			e.Wait()
		}()
	}
	time.Sleep(time.Millisecond)
	e.Fire()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiters did not wake")
	}
}

func TestConcurrentFireAndSubscribe(t *testing.T) {
	// Each subscription must run exactly once no matter how Fire races
	// with Subscribe.
	for round := 0; round < 100; round++ {
		e := event.New()
		var n atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			e.Subscribe(func() { n.Add(1) })
		}()
		go func() {
			defer wg.Done()
			e.Fire()
		}()
		wg.Wait()
		if n.Load() != 1 {
			t.Fatalf("round %d: callback ran %d times", round, n.Load())
		}
	}
}
