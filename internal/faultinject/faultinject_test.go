package faultinject

import (
	"sync"
	"testing"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.Hit(PanicLookup) {
		t.Fatal("nil plan tripped")
	}
	p.Panic(PanicLookup, "x") // must not panic
	p.Stall(StallLeader)      // must not block
	p.Release()
	if p.Tripped(DropFire) != 0 || p.Count(DropFire) != 0 {
		t.Fatal("nil plan has state")
	}
}

func TestArmTripsExactlyOnceAtN(t *testing.T) {
	p := New().Arm(DropFire, 3)
	got := -1
	for i := 1; i <= 10; i++ {
		if p.Hit(DropFire) {
			if got != -1 {
				t.Fatalf("tripped twice (hits %d and %d)", got, i)
			}
			got = i
		}
	}
	if got != 3 {
		t.Fatalf("tripped at hit %d, want 3", got)
	}
	if p.Tripped(DropFire) != 1 || p.Count(DropFire) != 10 {
		t.Fatalf("tripped=%d count=%d", p.Tripped(DropFire), p.Count(DropFire))
	}
}

func TestPanicCarriesInjectedValue(t *testing.T) {
	p := New().Arm(PanicLookup, 1)
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok {
			t.Fatalf("recovered %T, want *Injected", r)
		}
		if inj.Point != PanicLookup || inj.Site != "Foo" || inj.N != 1 {
			t.Fatalf("bad injected value %+v", inj)
		}
		if inj.Error() == "" {
			t.Fatal("empty error text")
		}
	}()
	p.Panic(PanicLookup, "Foo")
	t.Fatal("did not panic")
}

func TestStallBlocksUntilRelease(t *testing.T) {
	p := New().Arm(StallLeader, 1)
	done := make(chan struct{})
	go func() {
		p.Stall(StallLeader)
		close(done)
	}()
	<-p.Stalled()
	select {
	case <-done:
		t.Fatal("stall returned before Release")
	default:
	}
	p.Release()
	p.Release() // idempotent
	<-done
	// Further arrivals pass through without blocking.
	p.Stall(StallLeader)
}

func TestFromSeedIsDeterministic(t *testing.T) {
	seen := make(map[Point]bool)
	for seed := int64(0); seed < 64; seed++ {
		a, b := FromSeed(seed), FromSeed(seed)
		var pa, pb Point
		var na, nb int64
		for _, pt := range Points() {
			a.mu.Lock()
			if a.trigger[pt] != 0 {
				pa, na = pt, a.trigger[pt]
			}
			a.mu.Unlock()
			b.mu.Lock()
			if b.trigger[pt] != 0 {
				pb, nb = pt, b.trigger[pt]
			}
			b.mu.Unlock()
		}
		if pa != pb || na != nb {
			t.Fatalf("seed %d: (%v,%d) vs (%v,%d)", seed, pa, na, pb, nb)
		}
		if na < 1 || na > 32 {
			t.Fatalf("seed %d: trigger %d out of range", seed, na)
		}
		seen[pa] = true
	}
	if len(seen) != len(Points()) {
		t.Fatalf("64 seeds cover only %d/%d points", len(seen), len(Points()))
	}
}

func TestConcurrentHitsTripOnce(t *testing.T) {
	p := New().Arm(FailInstall, 50)
	var wg sync.WaitGroup
	var mu sync.Mutex
	trips := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if p.Hit(FailInstall) {
					mu.Lock()
					trips++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if trips != 1 {
		t.Fatalf("tripped %d times, want exactly 1", trips)
	}
	if p.Count(FailInstall) != 200 {
		t.Fatalf("count %d, want 200", p.Count(FailInstall))
	}
}
