// Package faultinject provides deterministic, seed-addressed fault
// injection for the concurrent compiler's fault-tolerance layer.
//
// Production code carries a small number of named injection points —
// compiled in as nil-guarded no-op hooks — at the places a concurrent
// compilation can realistically be wounded: a symbol lookup that
// panics, an interface-cache leader that stalls before publishing, a
// cache-closure install that must be declined, a heading-ready event
// fire that is dropped.  A test arms a Plan (directly, or derived from
// a seed) and hands it to the compilation under test via
// core.Options.FaultPlan; everything else runs the real code paths.
//
// Determinism: a Plan triggers each armed point exactly once, at the
// Nth arrival at that point, where N comes from the plan (seeded plans
// derive the point and N from an xorshift of the seed).  Arrival order
// across goroutines may vary between runs — that is the nature of the
// concurrency under test — but the injection decision is a pure
// function of the plan's counters, never of wall-clock time or global
// randomness, so a chaos run is described completely by (program,
// options, seed).
//
// Every method is safe on a nil *Plan and does nothing, so call sites
// in production code reduce to a nil check.
package faultinject

import (
	"fmt"
	"sync"
)

// Point names one injection site compiled into the production code.
type Point uint8

// The injection points.
const (
	// PanicLookup panics inside symtab.Searcher at the Nth symbol
	// lookup, modelling a crashed analyzer/code-generator task.
	PanicLookup Point = iota
	// StallLeader blocks an interface-cache leader (core.finishEntry)
	// before it publishes, until Release is called, modelling a wedged
	// foreign compilation that waiters must time out on.
	StallLeader
	// FailInstall vetoes the Nth cache-closure install
	// (core.installCached), forcing the compile-fresh path.
	FailInstall
	// DropFire drops the Nth heading-ready event fire
	// (core.bindChildren), wedging a procedure stream until the
	// deadlock watchdog breaks it.
	DropFire
	// PanicCheck panics inside the Nth static-analysis (lint) task
	// body (check.Checker.RunUnit), modelling a crashed analysis
	// stream; the checker must degrade to the sequential analyzer
	// without poisoning the compilation or sibling findings.
	PanicCheck
	// PanicSteal panics the Nth task dispatched by stealing it from
	// another worker's local run queue, before its body runs
	// (sched.runGuarded), modelling a task crashing on the wrong
	// worker; panic isolation and force-firing must behave identically
	// whether a task was dispatched locally or via a steal.
	PanicSteal
	// SlowRequest marks the Nth request admitted by the m2cd daemon
	// for an injected service delay (the daemon chooses the latency):
	// it must push the request toward its deadline and the admission
	// queue toward shedding without ever corrupting a response.
	SlowRequest
	// PanicHandler panics inside the m2cd daemon's Nth request handler
	// after admission, modelling a crashed handler goroutine; the
	// recovery middleware must convert it into a well-formed 500
	// response and release the request's admission slot.
	PanicHandler
	// PanicInstall panics the Nth cached-stream install (core's
	// stream-cache hit path), modelling corruption discovered while
	// replaying a warm procedure stream; panic isolation must poison
	// the compilation and recover via the sequential fallback, never
	// via a half-installed stream.
	PanicInstall
	// PanicConcMerge panics inside the merge barrier's interprocedural
	// lockset fixed point (check.concMerge), modelling a crashed merge
	// task; the checker must discard the concurrent tables and degrade
	// to the sequential analyzer (Result.CheckFellBack) with
	// byte-identical findings.
	PanicConcMerge

	numPoints
)

var pointNames = [numPoints]string{
	"panic-lookup", "stall-leader", "fail-install", "drop-fire",
	"panic-check", "panic-steal", "slow-request", "panic-handler",
	"panic-install", "panic-conc-merge",
}

func (p Point) String() string {
	if p < numPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// Points lists every injection point (for chaos matrices).
func Points() []Point {
	return []Point{PanicLookup, StallLeader, FailInstall, DropFire, PanicCheck, PanicSteal,
		SlowRequest, PanicHandler, PanicInstall, PanicConcMerge}
}

// ParsePoint converts a point name (as printed by Point.String, e.g.
// "slow-request") back to the Point; the m2cd daemon's -inject flag
// uses it to hand-arm plans from the command line.
func ParsePoint(name string) (Point, error) {
	for p := Point(0); p < numPoints; p++ {
		if pointNames[p] == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown injection point %q", name)
}

// Injected is the value an armed PanicLookup point panics with; the
// Supervisor's isolation layer reports it like any other task panic.
type Injected struct {
	Point Point
	Site  string // free-form site detail (e.g. the identifier looked up)
	N     int64  // the hit index that tripped
}

func (e *Injected) Error() string {
	return fmt.Sprintf("injected fault %s at hit %d (%s)", e.Point, e.N, e.Site)
}

// Plan is one armed set of injection triggers.  A Plan may be shared
// by every task of a compilation; its counters are concurrency-safe.
// The zero value is valid and triggers nothing; so is a nil *Plan.
type Plan struct {
	Seed int64 // the seed this plan was derived from (0 for hand-armed)

	mu      sync.Mutex       // guards: trigger, count, tripped
	trigger [numPoints]int64 // 1-based hit index that trips; 0 = disarmed
	count   [numPoints]int64 // arrivals seen so far
	tripped [numPoints]int64 // times the point actually fired

	release chan struct{} // guards: stall continuation — closed by Release; stalled points block on it
	stalled chan struct{} // guards: stall notification — closed when a StallLeader point first trips
}

// New returns an empty plan with nothing armed.
func New() *Plan {
	return &Plan{
		release: make(chan struct{}),
		stalled: make(chan struct{}),
	}
}

// Arm sets pt to trip at its nth arrival (1-based) and returns the
// plan for chaining.  n < 1 disarms the point.
func (p *Plan) Arm(pt Point, n int64) *Plan {
	p.mu.Lock()
	if n < 1 {
		n = 0
	}
	p.trigger[pt] = n
	p.mu.Unlock()
	return p
}

// FromSeed derives a single-point plan deterministically from seed:
// the seed's bits choose the point and the hit index N (1..32).  The
// same seed always yields the same plan.
func FromSeed(seed int64) *Plan {
	r := uint64(seed)*2685821657736338717 + 1442695040888963407
	r ^= r >> 33
	r *= 0xff51afd7ed558ccd
	r ^= r >> 33
	pt := Point(r % uint64(numPoints))
	n := int64(1 + (r>>8)%32)
	p := New()
	p.Seed = seed
	return p.Arm(pt, n)
}

// hit records one arrival at pt and reports whether it trips now,
// returning the arrival index.
func (p *Plan) hit(pt Point) (bool, int64) {
	if p == nil {
		return false, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.count[pt]++
	if p.trigger[pt] != 0 && p.count[pt] == p.trigger[pt] {
		p.tripped[pt]++
		return true, p.count[pt]
	}
	return false, p.count[pt]
}

// Hit records one arrival at pt and reports whether the fault
// triggers at this arrival.  Each armed point trips exactly once.
func (p *Plan) Hit(pt Point) bool {
	trip, _ := p.hit(pt)
	return trip
}

// Panic panics with an *Injected value if pt trips at this arrival.
func (p *Plan) Panic(pt Point, site string) {
	if trip, n := p.hit(pt); trip {
		panic(&Injected{Point: pt, Site: site, N: n})
	}
}

// Stall blocks until Release if pt trips at this arrival, closing the
// Stalled channel first so the orchestrating test can sequence the
// victim.  Points other than the tripping arrival pass through.
func (p *Plan) Stall(pt Point) {
	trip, _ := p.hit(pt)
	if !trip {
		return
	}
	close(p.stalled)
	<-p.release
}

// Stalled is closed when a Stall point trips; tests use it to know
// the leader is wedged before starting the waiting compilation.
func (p *Plan) Stalled() <-chan struct{} {
	if p == nil {
		return nil
	}
	return p.stalled
}

// Release unblocks every stalled point.  Idempotent.
func (p *Plan) Release() {
	if p == nil {
		return
	}
	p.mu.Lock()
	select {
	case <-p.release:
	default:
		close(p.release)
	}
	p.mu.Unlock()
}

// Trigger reports the 1-based arrival index at which pt is armed to
// trip, or 0 if pt is disarmed.  Chaos harnesses use it to set up the
// preconditions a point needs (e.g. a warm cache for FailInstall).
func (p *Plan) Trigger(pt Point) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.trigger[pt]
}

// Tripped reports how many times pt actually fired.
func (p *Plan) Tripped(pt Point) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tripped[pt]
}

// Count reports how many arrivals pt has seen.
func (p *Plan) Count(pt Point) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count[pt]
}
