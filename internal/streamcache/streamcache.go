// Package streamcache implements incremental recompilation at the
// paper's stream granularity: a shared, content-hash-keyed cache of
// completed per-procedure (and module-body) stream compilations.
//
// The splitter's decomposition into one stream per procedure is a
// natural incremental-build unit.  Each stream is keyed by a content
// hash covering everything that can influence its output — its own
// token layout, its heading, the declaration text of every enclosing
// stream, and the transitive interface closure of the compilation
// (reusing internal/ifacecache's closure-key machinery).  A recompile
// after a one-procedure edit re-runs only the changed streams; hits
// replay the stream's object code, diagnostics, and lint fact table
// verbatim, and the Merge task concatenates cached and fresh segments
// exactly as the paper does.
//
// Keying is by ABSOLUTE layout: token line/column positions are part
// of the key, so a cached artifact's positions are correct by
// construction and replay verbatim (no position rebasing).  The cost
// is coarser invalidation — an edit that shifts later lines
// invalidates the streams on those lines — but an edit that preserves
// line structure (the common editor case the daemon serves) keeps
// every untouched stream warm.  The only per-compilation rewrite is
// the source-file index (token.Pos.File), which is assigned in
// schedule-dependent registration order and is normalized to zero in
// stored records.
//
// Object code is stored with symbolic fixups: procedure, global-area,
// and exception indices are registry-assignment-ordered (schedule-
// dependent), so each such operand is recorded by name and re-resolved
// against the current compilation's registry at merge time.  Segment-
// relative jump targets and line-number operands replay verbatim.
package streamcache

import (
	"container/list"
	"sync"

	"m2cc/internal/check"
	"m2cc/internal/diag"
	"m2cc/internal/ifacecache"
	"m2cc/internal/source"
	"m2cc/internal/token"
	"m2cc/internal/vm"
)

// Key identifies one cached stream compilation (see Keyer).
type Key = source.Hash

// FixKind classifies one symbolic operand of a cached instruction.
type FixKind uint8

const (
	// FixProc: operand A is a same-module procedure index (Call, and
	// PushProc with an empty S field).
	FixProc FixKind = iota
	// FixArea: operand A is a global storage-area index (LdGlb, StGlb,
	// LdaGlb).
	FixArea
	// FixExc: operand A is an exception index (Raise, ExcIs).
	FixExc
)

// Fixup records one schedule-dependent operand of a cached code
// segment by name, to be re-resolved against the installing
// compilation's registry.
type Fixup struct {
	Index int // instruction index within the record's Code
	Kind  FixKind
	Name  string // proc FullName / area name / exception name
}

// ProcRecord is one procedure's (or the module body's) cached
// compilation: the registry metadata needed to re-create its ProcMeta,
// its object code with symbolic fixups, the diagnostics its stream
// produced, and its lint fact table.  Records are immutable once
// published — installers copy before rewriting.
type ProcRecord struct {
	Name     string // dotted path within the module ("Sort.Partition")
	Exported bool
	IsBody   bool
	Level    int32
	ArgSlots int32
	Frame    int32
	HasRet   bool
	Pos      token.Pos // declaration position; File normalized to 0

	Code   []vm.Instr // shared, read-only; fixup application copies
	Fixups []Fixup

	Diags []diag.Diagnostic // stream's own diagnostics; Pos/End File normalized to 0
	Facts *check.Facts      // lint fact table (nil unless recorded under Check)
}

// Entry is one cached stream compilation: the stream's own record
// first, then every descendant stream's record in pre-order, so a hit
// installs the whole subtree without touching the descendants' keys.
type Entry struct {
	Records []ProcRecord
}

// Stats is a snapshot of a cache's cumulative counters.
type Stats struct {
	Hits      int64 // Get found an entry
	Misses    int64 // Get found nothing
	Evictions int64 // entries dropped by the LRU cap
	Entries   int   // current entry count
}

// Sub returns s - prev (traffic between two snapshots); Entries is
// carried from s unchanged, being a level rather than a counter.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
		Entries:   s.Entries,
	}
}

// Tally is one compilation's stream-cache traffic (Result.StreamCache).
type Tally struct {
	Probed    int // streams whose key was looked up
	Hits      int // probes that found an entry
	Misses    int // probes that found nothing
	Installed int // hit entries actually installed (topmost hits + body)
	Covered   int // streams skipped because an ancestor's entry covered them
	Recorded  int // fresh streams published back to the cache
}

// cacheEnt is one LRU node.
type cacheEnt struct {
	key Key
	ent *Entry
}

// Cache is a concurrency-safe stream-compilation cache shared by any
// number of compilations (the m2cd daemon holds one per process).
// There is no single-flight machinery: two concurrent compilations
// that miss on the same key both compile and both publish — the
// second Put overwrites the first with an identical entry, which is
// benign.  Consequently no entry ever has waiters, and the LRU cap
// can evict any entry.
type Cache struct {
	mu    sync.Mutex // guards: entries, lru, limit, stats
	limit int        // max entries; 0 = unbounded
	lru   *list.List // MRU at front; element values are *cacheEnt
	byKey map[Key]*list.Element
	stats Stats

	// hasher computes interface-closure hashes for key derivation.  It
	// is a private ifacecache used purely for its memoized closure-key
	// machinery — compilations never Acquire through it, so it works
	// even when the compilation itself runs without an interface cache
	// (Options.Check forces Cache to nil; the stream cache must not).
	hasher *ifacecache.Cache
}

// New returns an empty cache capped at limit entries (0 = unbounded).
func New(limit int) *Cache {
	return &Cache{
		limit:  limit,
		lru:    list.New(),
		byKey:  make(map[Key]*list.Element),
		hasher: ifacecache.New(),
	}
}

// ClosureHash combines the transitive interface closure of roots into
// one hash (ok=false if any interface fails to load or the closure is
// cyclic).  Closure hashes are memoized across compilations and
// revalidated against interface content hashes on each call.
func (c *Cache) ClosureHash(loader source.Loader, roots []string) (source.Hash, bool) {
	return c.hasher.ClosureHash(loader, roots)
}

// SetLimit changes the entry cap (0 = unbounded), evicting immediately
// if the cache is over the new cap.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	c.limit = n
	c.evictLocked()
	c.mu.Unlock()
}

// Get looks up a stream key, marking the entry most recently used.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEnt).ent, true
}

// Put publishes a stream compilation under its key, evicting from the
// LRU tail if the cap is exceeded.  Re-publishing an existing key
// replaces the entry (a racing sibling computed the same thing).
func (c *Cache) Put(k Key, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*cacheEnt).ent = e
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[k] = c.lru.PushFront(&cacheEnt{key: k, ent: e})
	c.evictLocked()
}

// evictLocked drops LRU-tail entries until within the cap.  Caller
// holds c.mu.
func (c *Cache) evictLocked() {
	if c.limit <= 0 {
		return
	}
	for len(c.byKey) > c.limit {
		el := c.lru.Back()
		if el == nil {
			return
		}
		ce := el.Value.(*cacheEnt)
		delete(c.byKey, ce.key)
		c.lru.Remove(el)
		c.stats.Evictions++
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.byKey)
	return s
}

// ExtractFixups scans a completed code segment for schedule-dependent
// operands (see FixKind) and returns their symbolic forms, resolving
// indices through the supplied name tables (a registry Object
// snapshot).  The code itself is not modified.
func ExtractFixups(code []vm.Instr, procName func(int32) string,
	areaName func(int32) string, excName func(int32) string) []Fixup {

	var out []Fixup
	for i, ins := range code {
		switch ins.Op {
		case vm.Call:
			out = append(out, Fixup{Index: i, Kind: FixProc, Name: procName(ins.A)})
		case vm.PushProc:
			if ins.S == "" {
				out = append(out, Fixup{Index: i, Kind: FixProc, Name: procName(ins.A)})
			}
		case vm.LdGlb, vm.StGlb, vm.LdaGlb:
			out = append(out, Fixup{Index: i, Kind: FixArea, Name: areaName(ins.A)})
		case vm.Raise, vm.ExcIs:
			out = append(out, Fixup{Index: i, Kind: FixExc, Name: excName(ins.A)})
		}
	}
	return out
}

// ApplyFixups re-resolves every symbolic operand of a cached code
// segment against the installing compilation's registry.  The copy is
// made lazily, on the first operand that actually differs: when the
// registry assigned every name the same index as the recording
// compilation did (the common warm-rebuild case — same module, same
// discovery order), the cached segment itself is returned.  Sharing is
// safe because the recording path already aliases the segment between
// the cache and the recording compilation's result — object code is
// immutable once installed.  procIdx reports ok=false for an unknown
// procedure name — impossible when the key matched, but surfaced as a
// failed install rather than silently wrong code.
func ApplyFixups(code []vm.Instr, fixups []Fixup,
	procIdx func(string) (int32, bool),
	areaIdx func(string) int32, excIdx func(string) int32) ([]vm.Instr, bool) {

	out := code
	copied := false
	for _, f := range fixups {
		var idx int32
		switch f.Kind {
		case FixProc:
			i, ok := procIdx(f.Name)
			if !ok {
				return nil, false
			}
			idx = i
		case FixArea:
			idx = areaIdx(f.Name)
		case FixExc:
			idx = excIdx(f.Name)
		}
		if out[f.Index].A == idx {
			continue
		}
		if !copied {
			out = append([]vm.Instr(nil), code...)
			copied = true
		}
		out[f.Index].A = idx
	}
	return out, true
}
