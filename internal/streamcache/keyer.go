// The Keyer observes a split (it implements splitter.Sink) and derives
// each stream's cache key.
//
// Key structure, for procedure stream P:
//
//	key(P) = H( version ‖ headerMode ‖ checkBit ‖ closureHash
//	          ‖ ancestor own-text chain      (kinds+texts, no positions)
//	          ‖ heading layout hash of P     (kinds+texts+line+col)
//	          ‖ subtree layout hash of P     (kinds+texts+line+col,
//	                                          children recursively,
//	                                          source order)
//	          ‖ P's name )
//
// The ancestor chain covers everything an enclosing stream declares —
// constants, types, sibling headings, storage offsets — without their
// positions, so a line shift in the enclosing declaration region does
// not invalidate an unmoved procedure.  The heading hash carries the
// heading's absolute positions in both header modes (in HeaderShared
// the parent produces P's heading diagnostics and parameter facts; the
// copied heading tokens only enter P's own queue under
// HeaderReprocess).  The subtree layout hash pins the absolute layout
// of every token P's tasks read, including nested procedure headings
// (which the splitter routes to P's queue), so every position a cached
// artifact carries is identical by construction.  BodyRef reference
// text is excluded everywhere: stream numbers are allocated from a
// counter shared with interface streams and vary with discovery order.
//
// The module body's key hashes the whole main-stream subtree — any
// edit to the file recompiles the body, which is small by the paper's
// own measurements.
//
// Tokens are never stored: each arrival appends one compact record to
// the stream's flat byte buffers, and the probe digests each buffer in
// a single bulk sha256 write.  The record encoding is self-delimiting
// (kind is a fixed byte, positions and lengths are varints, text is
// length-prefixed), so distinct token sequences produce distinct byte
// streams.  Own-text hashes (kinds and texts, no positions) are
// re-derived from the layout records on demand — only ancestors' own
// hashes enter any key, so the decode runs for a handful of enclosing
// streams per compilation.  Feeding a digest per token (even buffered)
// was measured at roughly a third of the warm rebuild's wall clock;
// the bulk scheme reduces the keyer's hot path to one byte-append per
// token.
package streamcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"

	"m2cc/internal/source"
	"m2cc/internal/token"
)

// keyVersion namespaces the hash format; bump on any change to record
// layout or key derivation.  v2: per-stream token runs enter the
// subtree hash as finished sha256 digests over compact varint records
// rather than inline token bytes (same invalidation semantics, single
// bulk digest pass over the traffic).
const keyVersion = "m2sc/2"

// KeyParams are the per-compilation key inputs shared by every stream.
type KeyParams struct {
	Reprocess bool        // §2.4 alternative 3 (HeaderReprocess)
	Check     bool        // lint facts recorded alongside code
	Closure   source.Hash // combined interface-closure hash (ifacecache.ClosureHash)
}

// impState is the prologue-import automaton state (the incremental
// equivalent of impscan.Names): imports only appear before the first
// declaration keyword.
type impState uint8

const (
	impScan impState = iota // looking for FROM / IMPORT
	impFrom                 // saw FROM, next Ident is a module name
	impFromSkip             // inside FROM ... IMPORT list, skip to ";"
	impList                 // inside IMPORT list, Idents are module names
	impDone                 // hit a declaration keyword; prologue over
)

// streamInfo is one observed stream.
type streamInfo struct {
	id       int32
	parent   int32 // -1 for the main stream
	name     string
	children []int32 // StartStream order == source order

	// Flat record buffers, digested in bulk at probe time.  Tag bytes
	// ('L', 'H') and the 'S' prefix of combined subtree hashes keep the
	// digest domains disjoint.
	layoutBuf []byte // 'L' + records with positions (line delta + col)
	headBuf   []byte // nil if no heading; else 'H' + records with positions
	prevLine  int32  // last layout record's line (delta base)
	headLine  int32  // last heading record's line (delta base)

	imports []string // prologue import names, in order of appearance
	imp     impState

	layout  source.Hash // memoized subtree layout hash
	own     source.Hash
	heading source.Hash
	owned   bool // own digested
	final   bool // heading digested
	hashed  bool // subtree layout memoized
}

// Keyer accumulates a split's token traffic and computes stream keys.
// It is driven synchronously from the splitter goroutine; readers must
// only touch it after the splitter task completes (the scheduler's
// completion edge orders the accesses).
type Keyer struct {
	streams map[int32]*streamInfo
	order   []int32 // StartStream order; the main stream (0) is first
	done    bool

	// Token traffic is bursty per stream; caching the last target
	// skips the map lookup on the hot path.
	lastID int32
	last   *streamInfo
}

// NewKeyer returns an empty Keyer ready to observe one split.
func NewKeyer() *Keyer {
	return &Keyer{streams: make(map[int32]*streamInfo)}
}

// StartStream implements splitter.Sink.
func (k *Keyer) StartStream(id, parent int32, name string) {
	// Generous initial capacities: record buffers for typical streams
	// reach a few KB, and growth reallocations on the token hot path
	// were a measurable slice of warm-rebuild GC time.
	buf := make([]byte, 1, 4096)
	buf[0] = 'L'
	k.streams[id] = &streamInfo{
		id: id, parent: parent, name: name,
		layoutBuf: buf,
	}
	k.order = append(k.order, id)
	if p, ok := k.streams[parent]; ok {
		p.children = append(p.children, id)
	}
}

// Heading implements splitter.Sink.
func (k *Keyer) Heading(id int32, toks []token.Token) {
	s := k.streams[id]
	if s == nil {
		return
	}
	if s.headBuf == nil {
		s.headBuf = append(make([]byte, 0, 256), 'H')
	}
	for _, t := range toks {
		s.headBuf = appendRecord(s.headBuf, t, &s.headLine)
	}
}

// appendRecord appends one positioned token record: kind byte, line
// delta (signed varint), column (uvarint), then — except for BodyRef,
// whose reference text is excluded everywhere — length-prefixed text.
// Every field is fixed-width or self-delimiting, so the record stream
// is decodable and distinct token sequences encode distinctly.
func appendRecord(b []byte, t token.Token, line *int32) []byte {
	b = append(b, byte(t.Kind))
	b = binary.AppendVarint(b, int64(t.Pos.Line-*line))
	*line = t.Pos.Line
	b = binary.AppendUvarint(b, uint64(t.Pos.Col))
	if t.Kind != token.BodyRef {
		b = binary.AppendUvarint(b, uint64(len(t.Text)))
		b = append(b, t.Text...)
	}
	return b
}

// Token implements splitter.Sink.
func (k *Keyer) Token(id int32, t token.Token) {
	s := k.last
	if s == nil || k.lastID != id {
		s = k.streams[id]
		if s == nil {
			return
		}
		k.lastID, k.last = id, s
	}
	s.layoutBuf = appendRecord(s.layoutBuf, t, &s.prevLine)
	s.scanImport(t)
}

// scanImport advances the prologue automaton by one token (the
// incremental form of impscan's Names).
func (s *streamInfo) scanImport(t token.Token) {
	switch s.imp {
	case impDone:
		return
	case impFrom:
		if t.Kind == token.Ident {
			s.imports = append(s.imports, t.Text)
		}
		s.imp = impFromSkip
		return
	case impFromSkip:
		if t.Kind == token.Semicolon || t.Kind == token.EOF {
			s.imp = impScan
		}
		return
	case impList:
		switch t.Kind {
		case token.Ident:
			s.imports = append(s.imports, t.Text)
		case token.Comma:
		default:
			s.imp = impScan
			s.scanImport(t) // the terminator may itself start a state
		}
		return
	}
	switch t.Kind { // impScan
	case token.FROM:
		s.imp = impFrom
	case token.IMPORT:
		s.imp = impList
	case token.CONST, token.TYPE, token.VAR, token.PROCEDURE,
		token.EXCEPTION, token.BEGIN, token.END, token.EOF:
		s.imp = impDone
	}
}

// EndStream implements splitter.Sink.
func (k *Keyer) EndStream(id int32) {}

// Done implements splitter.Sink.
func (k *Keyer) Done() { k.done = true }

// Complete reports whether the split ran to completion; a panicked
// splitter leaves the Keyer incomplete and the compilation uncacheable.
func (k *Keyer) Complete() bool { return k.done }

// ProcStreams returns the procedure stream ids in source order.
func (k *Keyer) ProcStreams() []int32 {
	if len(k.order) == 0 {
		return nil
	}
	return k.order[1:]
}

// Name returns the stream's procedure name.
func (k *Keyer) Name(id int32) string {
	if s := k.streams[id]; s != nil {
		return s.name
	}
	return ""
}

// Imports returns the module names the stream's prologue imports, in
// order of appearance (the driver's cache probe collects closure roots
// from them).
func (k *Keyer) Imports(id int32) []string {
	if s := k.streams[id]; s != nil {
		return s.imports
	}
	return nil
}

// Children returns a stream's direct children in source order.
func (k *Keyer) Children(id int32) []int32 {
	if s := k.streams[id]; s != nil {
		return s.children
	}
	return nil
}

// Descendants returns every stream below id in pre-order.
func (k *Keyer) Descendants(id int32) []int32 {
	var out []int32
	var walk func(int32)
	walk = func(sid int32) {
		for _, c := range k.Children(sid) {
			out = append(out, c)
			walk(c)
		}
	}
	walk(id)
	return out
}

// fin sums a stream's heading digest (once).  A nil headBuf digests as
// the canonical empty heading.
func (k *Keyer) fin(s *streamInfo) {
	if s.final {
		return
	}
	s.heading = sha256.Sum256(s.headBuf)
	s.final = true
}

// ownHash digests the stream's own text — kinds and texts without
// positions or EOF — on first use.  The byte stream is re-derived from
// the layout records, which are self-delimiting by construction; only
// ancestors' own hashes enter any key, so the decode runs for a
// handful of enclosing streams per compilation, never for the leaves
// that carry the bulk of the traffic.
func (s *streamInfo) ownHash() source.Hash {
	if s.owned {
		return s.own
	}
	buf := s.layoutBuf
	b := make([]byte, 0, len(buf))
	for p := 1; p < len(buf); { // 1: skip the 'L' domain tag
		kind := token.Kind(buf[p])
		p++
		_, n := binary.Varint(buf[p:]) // line delta
		p += n
		_, n = binary.Uvarint(buf[p:]) // column
		p += n
		var text []byte
		if kind != token.BodyRef {
			l, n := binary.Uvarint(buf[p:])
			p += n
			text = buf[p : p+int(l)]
			p += int(l)
		}
		if kind == token.EOF {
			continue
		}
		b = append(b, byte(kind))
		if kind != token.BodyRef {
			b = binary.AppendUvarint(b, uint64(len(text)))
			b = append(b, text...)
		}
	}
	s.own = sha256.Sum256(b)
	s.owned = true
	return s.own
}

// layoutHash digests a stream's layout records and, for streams with
// children, combines them with the children's layout hashes in source
// order under a distinct 'S' domain tag.
func (k *Keyer) layoutHash(s *streamInfo) source.Hash {
	if s.hashed {
		return s.layout
	}
	if len(s.children) == 0 {
		s.layout = sha256.Sum256(s.layoutBuf)
	} else {
		b := make([]byte, 1, 1+sha256.Size*(1+len(s.children)))
		b[0] = 'S'
		own := sha256.Sum256(s.layoutBuf)
		b = append(b, own[:]...)
		for _, c := range s.children {
			if cs := k.streams[c]; cs != nil {
				ch := k.layoutHash(cs)
				b = append(b, ch[:]...)
			}
		}
		s.layout = sha256.Sum256(b)
	}
	s.hashed = true
	return s.layout
}

// base writes the per-compilation key prefix.
func base(h *hashW, p KeyParams) {
	h.str(keyVersion)
	h.bit(p.Reprocess)
	h.bit(p.Check)
	h.hash(p.Closure)
}

// ProcKey computes the cache key of procedure stream id.
func (k *Keyer) ProcKey(id int32, p KeyParams) Key {
	s := k.streams[id]
	h := newHashW()
	base(h, p)
	// Ancestor own-text chain, root first.
	var chain []*streamInfo
	for a := k.streams[s.parent]; a != nil; a = k.streams[a.parent] {
		chain = append(chain, a)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		h.hash(chain[i].ownHash())
	}
	k.fin(s)
	h.hash(s.heading)
	h.hash(k.layoutHash(s))
	h.str(s.name)
	return h.sum()
}

// BodyKey computes the module body's cache key: the full main-stream
// subtree layout.
func (k *Keyer) BodyKey(p KeyParams) Key {
	h := newHashW()
	base(h, p)
	h.str(".body")
	if s := k.streams[0]; s != nil {
		h.hash(k.layoutHash(s))
	}
	return h.sum()
}

// hashW is a length-prefixed sha256 writer (length prefixes prevent
// concatenation ambiguity between adjacent fields) that batches writes
// through a fixed buffer.  It only runs at probe time, combining a
// handful of finished digests per key; token traffic never goes
// through it.
type hashW struct {
	st  hash.Hash
	buf []byte
}

const hashWBuf = 256

func newHashW() *hashW {
	return &hashW{st: sha256.New(), buf: make([]byte, 0, hashWBuf)}
}

func (w *hashW) flush() {
	if len(w.buf) > 0 {
		w.st.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *hashW) u32(v uint32) {
	if len(w.buf)+4 > cap(w.buf) {
		w.flush()
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

func (w *hashW) str(s string) {
	w.u32(uint32(len(s)))
	for len(s) > 0 {
		if len(w.buf) == cap(w.buf) {
			w.flush()
		}
		n := copy(w.buf[len(w.buf):cap(w.buf)], s)
		w.buf = w.buf[:len(w.buf)+n]
		s = s[n:]
	}
}

func (w *hashW) bit(b bool) {
	if b {
		w.u32(1)
	} else {
		w.u32(0)
	}
}

func (w *hashW) hash(h source.Hash) {
	if len(w.buf)+len(h) > cap(w.buf) {
		w.flush()
	}
	w.buf = append(w.buf, h[:]...)
}

// sum finalizes the digest.  The writer must not be written after.
func (w *hashW) sum() source.Hash {
	w.flush()
	var out source.Hash
	w.st.Sum(out[:0])
	return out
}
