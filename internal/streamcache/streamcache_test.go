package streamcache

import (
	"fmt"
	"testing"

	"m2cc/internal/token"
)

// feed drives a minimal one-procedure split through a fresh Keyer:
// stream 0 (main) with toks0, stream 1 (procedure "P", child of 0)
// with head as its heading and toks1 as its body tokens.
func feed(toks0, head, toks1 []token.Token) *Keyer {
	k := NewKeyer()
	k.StartStream(0, -1, "")
	for _, t := range toks0 {
		k.Token(0, t)
	}
	k.StartStream(1, 0, "P")
	k.Heading(1, head)
	for _, t := range toks1 {
		k.Token(1, t)
	}
	k.EndStream(1)
	k.EndStream(0)
	k.Done()
	return k
}

func tok(kind token.Kind, text string, line, col int32) token.Token {
	return token.Token{Kind: kind, Text: text, Pos: token.Pos{Line: line, Col: col}}
}

// TestKeyerSensitivity pins the invalidation semantics the record
// encoding must preserve: text edits and layout shifts inside the
// procedure change its key; a pure line shift of the enclosing
// declarations does not (the ancestor chain hashes no positions); any
// edit anywhere changes the body key.
func TestKeyerSensitivity(t *testing.T) {
	p := KeyParams{}
	main0 := []token.Token{tok(token.VAR, "VAR", 1, 1), tok(token.Ident, "x", 1, 5), tok(token.EOF, "", 9, 1)}
	head := []token.Token{tok(token.PROCEDURE, "PROCEDURE", 3, 1), tok(token.Ident, "P", 3, 11)}
	body := []token.Token{tok(token.BEGIN, "BEGIN", 4, 1), tok(token.Ident, "x", 5, 3), tok(token.END, "END", 6, 1)}

	base := feed(main0, head, body)
	baseProc, baseBody := base.ProcKey(1, p), base.BodyKey(p)

	if again := feed(main0, head, body); again.ProcKey(1, p) != baseProc || again.BodyKey(p) != baseBody {
		t.Fatal("identical traffic must produce identical keys")
	}

	// Edit the procedure body's text.
	edited := append(append([]token.Token(nil), body[:1]...), tok(token.Ident, "y", 5, 3), body[2])
	if got := feed(main0, head, edited); got.ProcKey(1, p) == baseProc {
		t.Fatal("body text edit must change the procedure key")
	} else if got.BodyKey(p) == baseBody {
		t.Fatal("body text edit must change the module body key")
	}

	// Shift the procedure body down one line (same texts).
	shifted := make([]token.Token, len(body))
	for i, tk := range body {
		tk.Pos.Line++
		shifted[i] = tk
	}
	if got := feed(main0, head, shifted); got.ProcKey(1, p) == baseProc {
		t.Fatal("layout shift inside the procedure must change its key")
	}

	// Shift only the enclosing declarations' positions: the ancestor
	// own-text chain ignores positions, and stream 1's own records are
	// untouched, so the procedure key survives — but the body key (full
	// main-stream subtree layout) changes.
	shifted0 := make([]token.Token, len(main0))
	for i, tk := range main0 {
		tk.Pos.Line++
		shifted0[i] = tk
	}
	moved := feed(shifted0, head, body)
	if moved.ProcKey(1, p) != baseProc {
		t.Fatal("a pure position shift of enclosing declarations must not invalidate the procedure")
	}
	if moved.BodyKey(p) == baseBody {
		t.Fatal("a position shift of main-stream tokens must change the body key")
	}

	// Changing an enclosing declaration's text invalidates the
	// procedure through the ancestor chain.
	renamed := append([]token.Token(nil), main0...)
	renamed[1] = tok(token.Ident, "z", 1, 5)
	if got := feed(renamed, head, body); got.ProcKey(1, p) == baseProc {
		t.Fatal("an enclosing declaration edit must invalidate the procedure")
	}

	// BodyRef reference text is excluded: two splits that number the
	// child stream differently still agree on every key.
	withRef := func(ref string) *Keyer {
		k := NewKeyer()
		k.StartStream(0, -1, "")
		k.Token(0, tok(token.VAR, "VAR", 1, 1))
		k.Token(0, token.Token{Kind: token.BodyRef, Text: ref, Pos: token.Pos{Line: 3, Col: 1}})
		k.StartStream(1, 0, "P")
		k.Heading(1, head)
		for _, tk := range body {
			k.Token(1, tk)
		}
		k.Done()
		return k
	}
	if withRef("7").BodyKey(p) != withRef("12").BodyKey(p) {
		t.Fatal("BodyRef reference text must not enter any key")
	}

	// Params separate key spaces.
	if base.ProcKey(1, KeyParams{Check: true}) == baseProc {
		t.Fatal("Check must namespace procedure keys")
	}
}

// TestKeyerImports pins the prologue automaton against the batch
// scanner's semantics on a FROM/IMPORT mix.
func TestKeyerImports(t *testing.T) {
	k := NewKeyer()
	k.StartStream(0, -1, "")
	for _, tk := range []token.Token{
		tok(token.FROM, "FROM", 1, 1), tok(token.Ident, "Fib", 1, 6),
		tok(token.IMPORT, "IMPORT", 1, 10), tok(token.Ident, "Nth", 1, 17),
		tok(token.Semicolon, ";", 1, 20),
		tok(token.IMPORT, "IMPORT", 2, 1), tok(token.Ident, "IO", 2, 8),
		tok(token.Comma, ",", 2, 10), tok(token.Ident, "Sys", 2, 12),
		tok(token.Semicolon, ";", 2, 15),
		tok(token.VAR, "VAR", 3, 1), // prologue over
		tok(token.IMPORT, "IMPORT", 4, 1), tok(token.Ident, "Late", 4, 8),
	} {
		k.Token(0, tk)
	}
	k.Done()
	got := fmt.Sprintf("%v", k.Imports(0))
	if got != "[Fib IO Sys]" {
		t.Fatalf("imports = %s, want [Fib IO Sys]", got)
	}
}

// TestCacheLRU pins the eviction order and the Stats counters.
func TestCacheLRU(t *testing.T) {
	c := New(2)
	key := func(i byte) Key { return Key{i} }
	for i := byte(1); i <= 3; i++ {
		c.Put(key(i), &Entry{})
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("oldest entry must be evicted at the cap")
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Fatal("newest entry must survive")
	}
	c.Get(key(2))           // touch 2: now 3 is least recent
	c.Put(key(4), &Entry{}) // evicts 3
	if _, ok := c.Get(key(3)); ok {
		t.Fatal("least-recently-used entry must be the one evicted")
	}
	s := c.Stats()
	if s.Evictions != 2 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 evictions, 2 entries", s)
	}
	c.SetLimit(1)
	if got := c.Len(); got != 1 {
		t.Fatalf("SetLimit must shrink the cache: len = %d", got)
	}
}
