// Package ast defines the abstract syntax tree for Modula-2+.
//
// The concurrent compiler's task split (§3 of the paper) shows up
// directly in this tree: a ProcDecl in one stream may have its body
// compiled by a different stream, in which case Decls/Body are nil and
// BodyStream names the stream the splitter diverted the body to.
package ast

import "m2cc/internal/token"

// Name is an identifier occurrence.
type Name struct {
	Text string
	Pos  token.Pos
}

// ModKind distinguishes the three compilation-unit forms.
type ModKind uint8

const (
	// DefMod is a DEFINITION MODULE (an interface, file M.def).
	DefMod ModKind = iota
	// ImplMod is an IMPLEMENTATION MODULE (file M.mod).
	ImplMod
	// ProgMod is a program MODULE (a main module without a .def).
	ProgMod
)

func (k ModKind) String() string {
	switch k {
	case DefMod:
		return "DEFINITION MODULE"
	case ImplMod:
		return "IMPLEMENTATION MODULE"
	default:
		return "MODULE"
	}
}

// Module is one compilation unit.
type Module struct {
	Kind    ModKind
	Name    Name
	Imports []*Import
	Decls   []Decl
	Body    *StmtList // initialization/body statements; nil for DefMod
	Pos     token.Pos
}

// Import is one import declaration: either "FROM M IMPORT a, b;" (From
// set) or "IMPORT M, N;" (From empty, each name a module).
type Import struct {
	From  Name // zero Name for plain IMPORT
	Names []Name
	Pos   token.Pos
}

// Decl is a declaration.
type Decl interface{ declNode() }

// ConstDecl is "name = expr" within a CONST section.
type ConstDecl struct {
	Name Name
	Expr Expr
}

// TypeDecl is "name = type" within a TYPE section.  Type is nil for an
// opaque type declaration in a definition module ("TYPE T;").
type TypeDecl struct {
	Name Name
	Type Type
}

// VarDecl is "a, b: T" within a VAR section.
type VarDecl struct {
	Names []Name
	Type  Type
}

// ExceptionDecl is the Modula-2+ "EXCEPTION e1, e2;" declaration.
type ExceptionDecl struct {
	Names []Name
	Pos   token.Pos
}

// ProcHead is a procedure heading: name, formal parameters and optional
// result type.  Per §2.4 this is the information shared between parent
// and child scopes.
type ProcHead struct {
	Name   Name
	Params []*FPSection
	Ret    *Qualident // nil for proper procedures
	Pos    token.Pos
}

// FPSection is one formal-parameter section "VAR a, b: ARRAY OF T".
type FPSection struct {
	VarMode bool
	Names   []Name
	Open    bool // ARRAY OF prefix (open array)
	Type    *Qualident
}

// ProcDecl is a procedure declaration.  In a definition module, or for
// a body diverted to another stream, Decls and Body are nil.
type ProcDecl struct {
	Head *ProcHead
	// HeadingOnly marks a declaration with no body in this stream: a
	// definition-module heading, or (concurrent mode) a body that the
	// splitter diverted to stream BodyStream.
	HeadingOnly bool
	BodyStream  int32 // stream compiling the body; 0 = this stream
	Decls       []Decl
	Body        *StmtList
	EndName     Name
}

func (*ConstDecl) declNode()     {}
func (*TypeDecl) declNode()      {}
func (*VarDecl) declNode()       {}
func (*ExceptionDecl) declNode() {}
func (*ProcDecl) declNode()      {}

// Type is a syntactic type expression.
type Type interface{ typeNode() }

// Qualident is "ident" or "Module.ident" (or longer chains, resolved
// during semantic analysis).
type Qualident struct {
	Parts []Name
}

// Pos returns the position of the first component.
func (q *Qualident) Pos() token.Pos { return q.Parts[0].Pos }

// String renders the dotted form.
func (q *Qualident) String() string {
	s := q.Parts[0].Text
	for _, p := range q.Parts[1:] {
		s += "." + p.Text
	}
	return s
}

// NamedType is a type denoted by a (possibly qualified) identifier.
type NamedType struct {
	Name *Qualident
}

// EnumType is "(a, b, c)".
type EnumType struct {
	Names []Name
	Pos   token.Pos
}

// SubrangeType is "[lo .. hi]" with an optional base-type prefix
// "BaseType[lo .. hi]".
type SubrangeType struct {
	Base   *Qualident // may be nil
	Lo, Hi Expr
	Pos    token.Pos
}

// ArrayType is "ARRAY ix {, ix} OF elem".
type ArrayType struct {
	Indexes []Type
	Elem    Type
	Pos     token.Pos
}

// RecordType is "RECORD fields END".
type RecordType struct {
	Fields []*FieldList
	Pos    token.Pos
}

// FieldList is either a plain field group (Names/Type) or a variant
// part (Variant non-nil).
type FieldList struct {
	Names   []Name
	Type    Type
	Variant *VariantPart
}

// VariantPart is "CASE [tag :] TagType OF variants [ELSE fields] END".
type VariantPart struct {
	TagName Name       // zero Name when the tag field is anonymous
	TagType *Qualident // discriminating type
	Cases   []*VariantCase
	Else    []*FieldList
	Pos     token.Pos
}

// VariantCase is "labels : fields" within a variant part.
type VariantCase struct {
	Labels []*CaseLabel
	Fields []*FieldList
}

// SetType is "SET OF base".
type SetType struct {
	Base Type
	Pos  token.Pos
}

// PointerType is "POINTER TO base".
type PointerType struct {
	Base Type
	Pos  token.Pos
}

// RefType is the Modula-2+ "REF base" (a garbage-collected reference;
// this reproduction treats it as a pointer allocated with NEW and never
// DISPOSEd explicitly).
type RefType struct {
	Base Type
	Pos  token.Pos
}

// ProcType is "PROCEDURE [(formal types) [: ret]]".
type ProcType struct {
	Params []*ProcTypeParam
	Ret    *Qualident
	Pos    token.Pos
}

// ProcTypeParam is one formal type in a procedure type.
type ProcTypeParam struct {
	VarMode bool
	Open    bool
	Type    *Qualident
}

func (*NamedType) typeNode()    {}
func (*EnumType) typeNode()     {}
func (*SubrangeType) typeNode() {}
func (*ArrayType) typeNode()    {}
func (*RecordType) typeNode()   {}
func (*SetType) typeNode()      {}
func (*PointerType) typeNode()  {}
func (*RefType) typeNode()      {}
func (*ProcType) typeNode()     {}

// StmtList is a statement sequence.
type StmtList struct {
	Stmts []Stmt
}

// Stmt is a statement.
type Stmt interface{ stmtNode() }

// AssignStmt is "designator := expr".
type AssignStmt struct {
	LHS *Designator
	RHS Expr
	Pos token.Pos
}

// CallStmt is a procedure call used as a statement.
type CallStmt struct {
	Proc    *Designator
	Args    []Expr
	HasArgs bool // distinguishes "P" from "P()"
	Pos     token.Pos
}

// IfStmt is IF/ELSIF/ELSE/END.
type IfStmt struct {
	Cond   Expr
	Then   *StmtList
	Elsifs []ElsifArm
	Else   *StmtList // nil when absent
	Pos    token.Pos
}

// ElsifArm is one ELSIF branch.
type ElsifArm struct {
	Cond Expr
	Then *StmtList
}

// CaseLabel is "lo" or "lo .. hi" in CASE statements and variant parts.
type CaseLabel struct {
	Lo, Hi Expr // Hi nil for a single label
}

// CaseArm is "labels : statements" within a CASE statement.
type CaseArm struct {
	Labels []*CaseLabel
	Body   *StmtList
}

// CaseStmt is CASE expr OF arms [ELSE seq] END.
type CaseStmt struct {
	Expr Expr
	Arms []*CaseArm
	Else *StmtList // nil when no ELSE part
	Pos  token.Pos
}

// WhileStmt is WHILE cond DO body END.
type WhileStmt struct {
	Cond Expr
	Body *StmtList
	Pos  token.Pos
}

// RepeatStmt is REPEAT body UNTIL cond.
type RepeatStmt struct {
	Body *StmtList
	Cond Expr
	Pos  token.Pos
}

// LoopStmt is LOOP body END.
type LoopStmt struct {
	Body *StmtList
	Pos  token.Pos
}

// ExitStmt leaves the innermost LOOP.
type ExitStmt struct {
	Pos token.Pos
}

// ForStmt is FOR v := from TO to [BY step] DO body END.
type ForStmt struct {
	Var  Name
	From Expr
	To   Expr
	By   Expr // nil when absent
	Body *StmtList
	Pos  token.Pos
}

// WithStmt is WITH designator DO body END.
type WithStmt struct {
	Rec  *Designator
	Body *StmtList
	Pos  token.Pos
}

// ReturnStmt is RETURN [expr].
type ReturnStmt struct {
	Expr Expr // nil for proper procedures
	Pos  token.Pos
}

// RaiseStmt is the Modula-2+ "RAISE exception".
type RaiseStmt struct {
	Exc *Qualident
	Pos token.Pos
}

// TryStmt is the Modula-2+ "TRY body [EXCEPT handlers [ELSE seq]]
// [FINALLY seq] END".
type TryStmt struct {
	Body     *StmtList
	Handlers []*Handler
	Else     *StmtList // nil when no ELSE part
	Finally  *StmtList // nil when no FINALLY part
	Pos      token.Pos
}

// Handler is "exc1, exc2: statements" within EXCEPT.
type Handler struct {
	Excs []*Qualident
	Body *StmtList
}

// LockStmt is the Modula-2+ "LOCK mutex DO body END".
type LockStmt struct {
	Mutex Expr
	Body  *StmtList
	Pos   token.Pos
}

func (*AssignStmt) stmtNode() {}
func (*CallStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*CaseStmt) stmtNode()   {}
func (*WhileStmt) stmtNode()  {}
func (*RepeatStmt) stmtNode() {}
func (*LoopStmt) stmtNode()   {}
func (*ExitStmt) stmtNode()   {}
func (*ForStmt) stmtNode()    {}
func (*WithStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}
func (*RaiseStmt) stmtNode()  {}
func (*TryStmt) stmtNode()    {}
func (*LockStmt) stmtNode()   {}

// Expr is an expression.
type Expr interface {
	exprNode()
	// ExprPos returns a representative source position for diagnostics.
	ExprPos() token.Pos
}

// BinaryExpr is "x op y".
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
	Pos  token.Pos
}

// UnaryExpr is "+x", "-x" or "NOT x".
type UnaryExpr struct {
	Op  token.Kind
	X   Expr
	Pos token.Pos
}

// IntLit is an integer literal (decimal, hex or octal, already decoded).
type IntLit struct {
	Value int64
	Text  string
	Pos   token.Pos
}

// RealLit is a real literal.
type RealLit struct {
	Value float64
	Text  string
	Pos   token.Pos
}

// StringLit is a string literal.  One-character strings double as
// character literals; the semantic analyzer decides from context.
type StringLit struct {
	Value string
	Pos   token.Pos
}

// CharLit is an octal character literal (e.g. 15C).
type CharLit struct {
	Value byte
	Text  string
	Pos   token.Pos
}

// SetExpr is a set constructor "{a, b..c}" with an optional set-type
// qualifier "T{...}" (the parser records the qualifier in Type; a bare
// "{...}" has Type nil and defaults to BITSET).
type SetExpr struct {
	Type  *Qualident
	Elems []SetElem
	Pos   token.Pos
}

// SetElem is one element or range in a set constructor.
type SetElem struct {
	Lo, Hi Expr // Hi nil for a single element
}

// Selector is one step of a designator: field selection, indexing or
// pointer dereference.
type Selector interface{ selNode() }

// FieldSel is ".name".  Module qualification (M.x) parses as FieldSel
// too; the semantic analyzer reclassifies it when the head resolves to
// a module.
type FieldSel struct {
	Name Name
}

// IndexSel is "[e1, e2]".
type IndexSel struct {
	Indexes []Expr
	Pos     token.Pos
}

// DerefSel is "^".
type DerefSel struct {
	Pos token.Pos
}

func (*FieldSel) selNode() {}
func (*IndexSel) selNode() {}
func (*DerefSel) selNode() {}

// Designator is a variable/procedure reference with selectors.
type Designator struct {
	Head Name
	Sels []Selector
}

// CallExpr is a function call in an expression.
type CallExpr struct {
	Fun  *Designator
	Args []Expr
	Pos  token.Pos
}

func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*IntLit) exprNode()     {}
func (*RealLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*CharLit) exprNode()    {}
func (*SetExpr) exprNode()    {}
func (*Designator) exprNode() {}
func (*CallExpr) exprNode()   {}

// ExprPos implementations.
func (e *BinaryExpr) ExprPos() token.Pos { return e.Pos }
func (e *UnaryExpr) ExprPos() token.Pos  { return e.Pos }
func (e *IntLit) ExprPos() token.Pos     { return e.Pos }
func (e *RealLit) ExprPos() token.Pos    { return e.Pos }
func (e *StringLit) ExprPos() token.Pos  { return e.Pos }
func (e *CharLit) ExprPos() token.Pos    { return e.Pos }
func (e *SetExpr) ExprPos() token.Pos    { return e.Pos }
func (e *Designator) ExprPos() token.Pos { return e.Head.Pos }
func (e *CallExpr) ExprPos() token.Pos   { return e.Pos }
