package ast

import (
	"fmt"
	"strings"

	"m2cc/internal/token"
)

// Print renders a module back to compilable Modula-2+ source text.
// The output is canonically formatted (two-space indentation, one
// statement per line), so Print(parse(Print(parse(src)))) is a fixed
// point — the property the parser round-trip tests rely on.
//
// Procedure declarations whose bodies were diverted to another stream
// (HeadingOnly with a BodyStream) render as heading-only declarations
// with a comment, since the body tokens live elsewhere.
func Print(m *Module) string {
	p := &printer{}
	p.module(m)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) module(m *Module) {
	p.line("%s %s;", m.Kind, m.Name.Text)
	for _, imp := range m.Imports {
		if imp.From.Text != "" {
			p.line("FROM %s IMPORT %s;", imp.From.Text, nameList(imp.Names))
		} else {
			p.line("IMPORT %s;", nameList(imp.Names))
		}
	}
	p.decls(m.Decls)
	if m.Body != nil {
		p.line("BEGIN")
		p.stmts(m.Body)
	}
	p.line("END %s.", m.Name.Text)
}

func nameList(names []Name) string {
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n.Text
	}
	return strings.Join(parts, ", ")
}

func (p *printer) decls(decls []Decl) {
	// Consecutive declarations of one kind share a section keyword,
	// like idiomatic Modula-2.
	var section string
	open := func(kw string) {
		if section != kw {
			p.line("%s", kw)
			section = kw
		}
	}
	for _, d := range decls {
		switch d := d.(type) {
		case *ConstDecl:
			open("CONST")
			p.indent++
			p.line("%s = %s;", d.Name.Text, ExprString(d.Expr))
			p.indent--
		case *TypeDecl:
			open("TYPE")
			p.indent++
			if d.Type == nil {
				p.line("%s;", d.Name.Text)
			} else {
				p.line("%s = %s;", d.Name.Text, p.typeString(d.Type))
			}
			p.indent--
		case *VarDecl:
			open("VAR")
			p.indent++
			p.line("%s: %s;", nameList(d.Names), p.typeString(d.Type))
			p.indent--
		case *ExceptionDecl:
			section = ""
			p.line("EXCEPTION %s;", nameList(d.Names))
		case *ProcDecl:
			section = ""
			p.procDecl(d)
		}
	}
}

func (p *printer) procDecl(d *ProcDecl) {
	p.line("%s;", headingString(d.Head))
	switch {
	case d.BodyStream != 0:
		p.indent++
		p.line("(* body compiled by stream %d *)", d.BodyStream)
		p.indent--
	case d.HeadingOnly:
		// Definition-module heading: nothing more.
	default:
		p.indent++
		p.decls(d.Decls)
		p.indent--
		if d.Body != nil {
			p.line("BEGIN")
			p.stmts(d.Body)
		}
		p.line("END %s;", d.Head.Name.Text)
	}
}

func headingString(h *ProcHead) string {
	var b strings.Builder
	b.WriteString("PROCEDURE " + h.Name.Text)
	if len(h.Params) > 0 {
		b.WriteByte('(')
		for i, sec := range h.Params {
			if i > 0 {
				b.WriteString("; ")
			}
			if sec.VarMode {
				b.WriteString("VAR ")
			}
			b.WriteString(nameList(sec.Names) + ": ")
			if sec.Open {
				b.WriteString("ARRAY OF ")
			}
			b.WriteString(sec.Type.String())
		}
		b.WriteByte(')')
	}
	if h.Ret != nil {
		b.WriteString(": " + h.Ret.String())
	}
	return b.String()
}

func (p *printer) typeString(t Type) string {
	switch t := t.(type) {
	case *NamedType:
		return t.Name.String()
	case *EnumType:
		return "(" + nameList(t.Names) + ")"
	case *SubrangeType:
		base := ""
		if t.Base != nil {
			base = t.Base.String()
		}
		return fmt.Sprintf("%s[%s .. %s]", base, ExprString(t.Lo), ExprString(t.Hi))
	case *ArrayType:
		parts := make([]string, len(t.Indexes))
		for i, ix := range t.Indexes {
			parts[i] = p.typeString(ix)
		}
		return fmt.Sprintf("ARRAY %s OF %s", strings.Join(parts, ", "), p.typeString(t.Elem))
	case *RecordType:
		var b strings.Builder
		b.WriteString("RECORD ")
		b.WriteString(p.fieldsString(t.Fields))
		b.WriteString(" END")
		return b.String()
	case *SetType:
		return "SET OF " + p.typeString(t.Base)
	case *PointerType:
		return "POINTER TO " + p.typeString(t.Base)
	case *RefType:
		return "REF " + p.typeString(t.Base)
	case *ProcType:
		var b strings.Builder
		b.WriteString("PROCEDURE")
		if len(t.Params) > 0 {
			b.WriteString(" (")
			for i, prm := range t.Params {
				if i > 0 {
					b.WriteString(", ")
				}
				if prm.VarMode {
					b.WriteString("VAR ")
				}
				if prm.Open {
					b.WriteString("ARRAY OF ")
				}
				b.WriteString(prm.Type.String())
			}
			b.WriteByte(')')
		}
		if t.Ret != nil {
			b.WriteString(": " + t.Ret.String())
		}
		return b.String()
	default:
		return "<?type>"
	}
}

func (p *printer) fieldsString(fields []*FieldList) string {
	parts := make([]string, 0, len(fields))
	for _, fl := range fields {
		if fl.Variant != nil {
			parts = append(parts, p.variantString(fl.Variant))
			continue
		}
		parts = append(parts, fmt.Sprintf("%s: %s", nameList(fl.Names), p.typeString(fl.Type)))
	}
	return strings.Join(parts, "; ")
}

func (p *printer) variantString(v *VariantPart) string {
	var b strings.Builder
	b.WriteString("CASE ")
	if v.TagName.Text != "" {
		b.WriteString(v.TagName.Text + ": ")
	}
	b.WriteString(v.TagType.String() + " OF ")
	for i, c := range v.Cases {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(labelsString(c.Labels) + ": " + p.fieldsString(c.Fields))
	}
	if v.Else != nil {
		b.WriteString(" ELSE " + p.fieldsString(v.Else))
	}
	b.WriteString(" END")
	return b.String()
}

func labelsString(labels []*CaseLabel) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		if l.Hi != nil {
			parts[i] = ExprString(l.Lo) + " .. " + ExprString(l.Hi)
		} else {
			parts[i] = ExprString(l.Lo)
		}
	}
	return strings.Join(parts, ", ")
}

func (p *printer) stmts(sl *StmtList) {
	p.indent++
	for i, s := range sl.Stmts {
		p.stmt(s, i == len(sl.Stmts)-1)
	}
	p.indent--
}

func (p *printer) stmt(s Stmt, last bool) {
	semi := ";"
	if last {
		semi = ""
	}
	switch s := s.(type) {
	case *AssignStmt:
		p.line("%s := %s%s", DesignatorString(s.LHS), ExprString(s.RHS), semi)
	case *CallStmt:
		if s.HasArgs {
			p.line("%s(%s)%s", DesignatorString(s.Proc), exprList(s.Args), semi)
		} else {
			p.line("%s%s", DesignatorString(s.Proc), semi)
		}
	case *IfStmt:
		p.line("IF %s THEN", ExprString(s.Cond))
		p.stmts(s.Then)
		for _, arm := range s.Elsifs {
			p.line("ELSIF %s THEN", ExprString(arm.Cond))
			p.stmts(arm.Then)
		}
		if s.Else != nil {
			p.line("ELSE")
			p.stmts(s.Else)
		}
		p.line("END%s", semi)
	case *CaseStmt:
		p.line("CASE %s OF", ExprString(s.Expr))
		for i, arm := range s.Arms {
			bar := "  "
			if i > 0 {
				bar = "| "
			}
			p.line("%s%s:", bar, labelsString(arm.Labels))
			p.stmts(arm.Body)
		}
		if s.Else != nil {
			p.line("ELSE")
			p.stmts(s.Else)
		}
		p.line("END%s", semi)
	case *WhileStmt:
		p.line("WHILE %s DO", ExprString(s.Cond))
		p.stmts(s.Body)
		p.line("END%s", semi)
	case *RepeatStmt:
		p.line("REPEAT")
		p.stmts(s.Body)
		p.line("UNTIL %s%s", ExprString(s.Cond), semi)
	case *LoopStmt:
		p.line("LOOP")
		p.stmts(s.Body)
		p.line("END%s", semi)
	case *ExitStmt:
		p.line("EXIT%s", semi)
	case *ForStmt:
		by := ""
		if s.By != nil {
			by = " BY " + ExprString(s.By)
		}
		p.line("FOR %s := %s TO %s%s DO", s.Var.Text, ExprString(s.From), ExprString(s.To), by)
		p.stmts(s.Body)
		p.line("END%s", semi)
	case *WithStmt:
		p.line("WITH %s DO", DesignatorString(s.Rec))
		p.stmts(s.Body)
		p.line("END%s", semi)
	case *ReturnStmt:
		if s.Expr != nil {
			p.line("RETURN %s%s", ExprString(s.Expr), semi)
		} else {
			p.line("RETURN%s", semi)
		}
	case *RaiseStmt:
		p.line("RAISE %s%s", s.Exc, semi)
	case *TryStmt:
		p.line("TRY")
		p.stmts(s.Body)
		if len(s.Handlers) > 0 || s.Else != nil {
			p.line("EXCEPT")
			for i, h := range s.Handlers {
				bar := "  "
				if i > 0 {
					bar = "| "
				}
				excs := make([]string, len(h.Excs))
				for j, q := range h.Excs {
					excs[j] = q.String()
				}
				p.line("%s%s:", bar, strings.Join(excs, ", "))
				p.stmts(h.Body)
			}
			if s.Else != nil {
				p.line("ELSE")
				p.stmts(s.Else)
			}
		}
		if s.Finally != nil {
			p.line("FINALLY")
			p.stmts(s.Finally)
		}
		p.line("END%s", semi)
	case *LockStmt:
		p.line("LOCK %s DO", ExprString(s.Mutex))
		p.stmts(s.Body)
		p.line("END%s", semi)
	}
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// DesignatorString renders a designator.
func DesignatorString(d *Designator) string {
	var b strings.Builder
	b.WriteString(d.Head.Text)
	for _, sel := range d.Sels {
		switch sel := sel.(type) {
		case *FieldSel:
			b.WriteString("." + sel.Name.Text)
		case *IndexSel:
			b.WriteString("[" + exprList(sel.Indexes) + "]")
		case *DerefSel:
			b.WriteByte('^')
		}
	}
	return b.String()
}

// ExprString renders an expression with explicit parentheses around
// every binary operation, so the output re-parses to the same tree
// regardless of precedence subtleties.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return e.Text
	case *RealLit:
		return e.Text
	case *CharLit:
		return e.Text
	case *StringLit:
		return token.Token{Kind: token.StringLit, Text: e.Value}.String()
	case *UnaryExpr:
		op := e.Op.String()
		if e.Op == token.NOT {
			op = "NOT "
		}
		return "(" + op + ExprString(e.X) + ")"
	case *BinaryExpr:
		return "(" + ExprString(e.X) + " " + e.Op.String() + " " + ExprString(e.Y) + ")"
	case *SetExpr:
		var b strings.Builder
		if e.Type != nil {
			b.WriteString(e.Type.String())
		}
		b.WriteByte('{')
		for i, el := range e.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprString(el.Lo))
			if el.Hi != nil {
				b.WriteString(" .. " + ExprString(el.Hi))
			}
		}
		b.WriteByte('}')
		return b.String()
	case *Designator:
		return DesignatorString(e)
	case *CallExpr:
		return DesignatorString(e.Fun) + "(" + exprList(e.Args) + ")"
	default:
		return "<?expr>"
	}
}
