package ast_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"m2cc/internal/ast"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/lexer"
	"m2cc/internal/parser"
	"m2cc/internal/source"
	"m2cc/internal/workload"
)

func parseSrc(t *testing.T, src string) *ast.Module {
	t.Helper()
	files := source.NewSet()
	f := files.Add("T", source.Impl, src)
	diags := diag.NewBag(0)
	toks := lexer.ScanAll(f, &ctrace.TaskCtx{}, diags)
	p := parser.New(parser.NewSliceSource(toks), "T.mod", &ctrace.TaskCtx{}, diags)
	m := p.ParseUnit()
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s\nsource:\n%s", diags, src)
	}
	return m
}

func TestPrintRendersAllConstructs(t *testing.T) {
	src := `
MODULE Demo;
FROM Lib IMPORT a, b;
IMPORT Other;
CONST k = 3 + 4;
TYPE
  E = (Red, Green);
  S = [0 .. k];
  A = ARRAY [0 .. 3] OF INTEGER;
  R = RECORD x: INTEGER; CASE t: INTEGER OF 0: c: CHAR | 1: r: REAL END END;
  P = POINTER TO R;
  F = PROCEDURE (INTEGER, VAR CHAR): INTEGER;
EXCEPTION Oops;
VAR v: A; ptr: P;

PROCEDURE Work(n: INTEGER; VAR out: INTEGER): INTEGER;
VAR i: INTEGER;
BEGIN
  out := 0;
  FOR i := 1 TO n BY 2 DO
    CASE i OF
      1: out := out + 1
    | 2 .. 3: out := out * 2
    ELSE
      out := out - 1
    END
  END;
  WHILE out > 100 DO out := out DIV 2 END;
  REPEAT INC(out) UNTIL out >= 0;
  LOOP EXIT END;
  WITH ptr^ DO x := out END;
  TRY
    RAISE Oops
  EXCEPT
    Oops: out := -1
  END;
  RETURN out
END Work;

BEGIN
  v[0] := Work(5, v[1]);
  IF v[0] # 0 THEN WriteInt(v[0], 0) ELSE WriteLn END
END Demo.
`
	m := parseSrc(t, src)
	text := ast.Print(m)
	for _, want := range []string{
		"MODULE Demo;", "FROM Lib IMPORT a, b;", "IMPORT Other;",
		"E = (Red, Green);", "ARRAY [0 .. 3] OF INTEGER",
		"CASE t: INTEGER OF", "POINTER TO", "PROCEDURE (INTEGER, VAR CHAR): INTEGER",
		"EXCEPTION Oops;", "PROCEDURE Work(n: INTEGER; VAR out: INTEGER): INTEGER",
		"FOR i := 1 TO n BY 2 DO", "REPEAT", "UNTIL", "WITH ptr^ DO",
		"TRY", "RAISE Oops", "END Demo.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q:\n%s", want, text)
		}
	}
}

// TestPrintParseFixedPoint: printing is a fixed point under reparsing —
// parse(Print(m)) prints identically.
func TestPrintParseFixedPoint(t *testing.T) {
	loader := source.NewMapLoader()
	lib := workload.GenerateLibrary(21, loader)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := workload.RandomSpec(r, "Rnd", r.Intn(2) == 0)
		uselib := lib
		if spec.TargetImports == 0 {
			uselib = nil
		}
		workload.GenerateProgram(spec, uselib, loader)
		src, _ := loader.Load("Rnd", source.Impl)

		m1 := parseSrc(t, src)
		printed := ast.Print(m1)
		m2 := parseSrc(t, printed)
		again := ast.Print(m2)
		if printed != again {
			t.Logf("not a fixed point.\nfirst:\n%s\nsecond:\n%s", printed, again)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDesignatorAndExprStrings(t *testing.T) {
	m := parseSrc(t, `
MODULE T;
VAR x: INTEGER;
BEGIN
  x := a.b[i + 1]^.c + f(2, {1 .. 3}) * (-y)
END T.`)
	got := ast.ExprString(m.Body.Stmts[0].(*ast.AssignStmt).RHS)
	want := "(a.b[(i + 1)]^.c + (f(2, {1 .. 3}) * (-y)))"
	// Parenthesization is explicit; the exact nesting matters less than
	// reparse equivalence, but keep the string stable as a regression
	// anchor.
	if got != want {
		t.Errorf("ExprString = %q, want %q", got, want)
	}
}
