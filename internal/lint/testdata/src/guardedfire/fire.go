// Fixture for the guardedfire analyzer.  Parsed (never compiled) by
// lint_test.go under the synthetic import path m2cc/internal/sched.
package guardedfire

type Event struct{}

func (*Event) Fire()          {}
func (*Event) FireWith(n int) {}

type Ctx struct{}

func (*Ctx) FireEvent(ev *Event) {}

func raw(ev *Event) {
	ev.Fire() // want "raw \.Fire\(\) call"
}

func sanctioned(ev *Event) {
	ev.Fire() // vet:allowfire fixture: fired before any TaskCtx exists
}

func sanctionedAbove(ev *Event) {
	// vet:allowfire fixture: annotation on the preceding line
	ev.Fire()
}

func viaCtx(c *Ctx, ev *Event) {
	c.FireEvent(ev) // the blessed path: no diagnostic
}

func withArgs(ev *Event) {
	ev.FireWith(1) // not a zero-argument Fire: no diagnostic
}
