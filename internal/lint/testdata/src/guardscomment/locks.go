// Fixture for the guardscomment analyzer.  Parsed under an arbitrary
// import path: the convention applies repo-wide.
package guardscomment

import "sync"

type documented struct {
	mu   sync.Mutex // guards: count
	done chan int   // guards: completion — closed when count reaches zero
	// guards: the published flag; writers hold it for the full publish
	rw    sync.RWMutex
	count int
}

type undocumented struct {
	mu   sync.Mutex   // want "mutex field mu needs"
	rw   sync.RWMutex // want "mutex field rw needs"
	done chan int     // want "chan field done needs"
	n    int          // plain fields need no annotation
}

type embedded struct {
	sync.Mutex // want "mutex field .embedded. needs"
}
