// Fixture for the notime analyzer.  Parsed under the synthetic import
// path m2cc/internal/sim.
package notime

import (
	"time"
	wall "time"
)

func bad() time.Duration {
	start := time.Now() // want "wall-clock read time.Now"
	return time.Since(start) // want "wall-clock read time.Since"
}

func aliased() time.Time {
	return wall.Now() // want "wall-clock read wall.Now"
}

func fine() time.Duration {
	return 3 * time.Second // constants and types are fine; only Now/Since read the clock
}
