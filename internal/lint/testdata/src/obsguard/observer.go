// Fixture for the obsguard analyzer.  Parsed under the synthetic
// import path m2cc/internal/obs.
package obsguard

type Observer struct {
	n int
}

func (o *Observer) Guarded() {
	if o == nil {
		return
	}
	o.n++
}

func (o *Observer) GuardedFlipped() {
	if nil == o {
		return
	}
	o.n++
}

func (o *Observer) GuardedCompound(e *Observer) {
	if o == nil || e == nil {
		return
	}
	o.n += e.n
}

func (o *Observer) Delegates() {
	o.Guarded()
	o.GuardedFlipped()
}

func (o *Observer) Bad() { // want "must start with `if o == nil`"
	o.n++
}

func (o *Observer) BadMixed() { // want "must start with `if o == nil`"
	o.Guarded()
	o.n++ // direct field access alongside delegation: still unsafe
}

func (o *Observer) unexported() {
	o.n++ // unexported helpers run behind a caller's guard
}

func (o Observer) Value() int {
	return o.n // value receiver: cannot be nil
}
