package lint

import (
	"go/ast"
	"strings"
)

// GuardedFire enforces the event-firing discipline: production code
// must fire Supervisor events through ctrace.TaskCtx.FireEvent (which
// records the firing in the concurrency trace and notifies the
// observer) rather than calling Event.Fire directly.  The event
// package itself is exempt, as are _test.go files and call sites
// annotated with "// vet:allowfire <reason>" (on the call's line or
// the line above) — those are the handful of places that fire before
// a TaskCtx exists or where the trace record is made by hand.
var GuardedFire = &Analyzer{
	Name: "guardedfire",
	Doc: "flags raw zero-argument .Fire() calls outside internal/event; " +
		"fire events via ctrace.TaskCtx.FireEvent or annotate the site " +
		"with // vet:allowfire <reason>",
	Run: runGuardedFire,
}

func runGuardedFire(p *Pass) error {
	if strings.HasSuffix(p.Path, "internal/event") {
		return nil
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		allowed := markedLines(p.Fset, f, "vet:allowfire")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Fire" {
				return true
			}
			if allowed[p.Fset.Position(call.Pos()).Line] {
				return true
			}
			p.Reportf(call.Pos(), "raw .Fire() call; fire events through ctrace.TaskCtx.FireEvent so the trace and observer see them, or annotate // vet:allowfire <reason>")
			return true
		})
	}
	return nil
}

// ObsGuard keeps the observability layer optional: every exported
// pointer-receiver method in internal/obs must tolerate a nil
// receiver, because the compiler passes a nil *Observer around when
// tracing is off.  A method satisfies the invariant either by opening
// with an explicit `if recv == nil` guard or by using its receiver
// exclusively as the receiver of other method calls (pure delegation
// — the callees carry the guards).
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc: "exported pointer-receiver methods in internal/obs must begin " +
		"with an `if recv == nil` guard or only delegate through the " +
		"receiver; a nil observer is the disabled state and must be a no-op",
	Run: runObsGuard,
}

func runObsGuard(p *Pass) error {
	if !strings.HasSuffix(p.Path, "internal/obs") {
		return nil
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := pointerRecvName(fd)
			if recv == "" || recv == "_" {
				continue
			}
			if startsWithNilGuard(fd.Body, recv) || delegatesOnly(fd.Body, recv) {
				continue
			}
			p.Reportf(fd.Pos(), "exported method %s must start with `if %s == nil` (a nil observer means tracing is off and every method must be a no-op)", fd.Name.Name, recv)
		}
	}
	return nil
}

// pointerRecvName returns the receiver identifier of a *T method, or
// "" for value receivers and unnamed receivers (which cannot be
// dereferenced and so are trivially nil-safe).
func pointerRecvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	field := fd.Recv.List[0]
	if _, ok := field.Type.(*ast.StarExpr); !ok {
		return ""
	}
	if len(field.Names) != 1 {
		return ""
	}
	return field.Names[0].Name
}

// startsWithNilGuard reports whether the body's first statement is an
// `if recv == nil { ... }` check, possibly widened with further `||`
// disjuncts (`if o == nil || e == nil`).
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	return condChecksNil(ifs.Cond, recv)
}

// condChecksNil reports whether cond contains `recv == nil` as a
// top-level `||` disjunct.
func condChecksNil(cond ast.Expr, recv string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNil(e.X, recv)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "||":
			return condChecksNil(e.X, recv) || condChecksNil(e.Y, recv)
		case "==":
			return isIdent(e.X, recv) && isIdent(e.Y, "nil") ||
				isIdent(e.X, "nil") && isIdent(e.Y, recv)
		}
	}
	return false
}

// delegatesOnly reports whether every use of recv in the body is as
// the receiver of a method call (recv.M(...)); such methods inherit
// nil-safety from their callees.
func delegatesOnly(body *ast.BlockStmt, recv string) bool {
	callRecv := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
				callRecv[id] = true
			}
		}
		return true
	})
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if id, isID := n.(*ast.Ident); isID && id.Name == recv && !callRecv[id] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// NoTime bans wall-clock reads in the deterministic packages: the
// simulator (internal/sim) and the concurrency trace (internal/ctrace)
// derive all times from abstract work units so that replays and
// what-if analyses are reproducible.  A time.Now or time.Since there
// silently breaks replay determinism.
var NoTime = &Analyzer{
	Name: "notime",
	Doc: "flags time.Now/time.Since in internal/sim and internal/ctrace; " +
		"those packages are deterministic and must derive times from " +
		"work units, never the wall clock",
	Run: runNoTime,
}

func runNoTime(p *Pass) error {
	if !strings.HasSuffix(p.Path, "internal/sim") && !strings.HasSuffix(p.Path, "internal/ctrace") {
		return nil
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		timeNames := map[string]bool{}
		for _, imp := range f.Imports {
			if imp.Path.Value != `"time"` {
				continue
			}
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			timeNames[name] = true
		}
		if len(timeNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] {
				return true
			}
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				p.Reportf(sel.Pos(), "wall-clock read %s.%s in a deterministic package; derive times from work units", id.Name, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// GuardsComment enforces the lock-documentation convention: every
// struct field that is a sync.Mutex/sync.RWMutex or a channel must
// carry a doc or line comment containing "guards:" stating what the
// lock protects or what the channel signals.  The comment is the only
// machine-checkable link between a lock and its protected state.
var GuardsComment = &Analyzer{
	Name: "guardscomment",
	Doc: "struct fields of type sync.Mutex/sync.RWMutex or chan must " +
		"carry a comment containing \"guards:\" documenting the protected " +
		"state or signalled condition",
	Run: runGuardsComment,
}

func runGuardsComment(p *Pass) error {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				kind := lockKind(field.Type)
				if kind == "" {
					continue
				}
				if strings.Contains(field.Doc.Text(), "guards:") ||
					strings.Contains(field.Comment.Text(), "guards:") {
					continue
				}
				name := "(embedded)"
				if len(field.Names) > 0 {
					name = field.Names[0].Name
				}
				p.Reportf(field.Pos(), "%s field %s needs a \"// guards: ...\" comment documenting the protected state", kind, name)
			}
			return true
		})
	}
	return nil
}

// lockKind classifies a field type as "mutex", "chan" or "" (neither).
func lockKind(t ast.Expr) string {
	switch tt := t.(type) {
	case *ast.SelectorExpr:
		if isIdent(tt.X, "sync") && (tt.Sel.Name == "Mutex" || tt.Sel.Name == "RWMutex") {
			return "mutex"
		}
	case *ast.ChanType:
		return "chan"
	case *ast.StarExpr:
		return lockKind(tt.X)
	}
	return ""
}
