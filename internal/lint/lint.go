// Package lint is a small, dependency-free analysis framework in the
// style of go/analysis, carrying the custom vet passes that enforce
// this repository's concurrency invariants (see analyzers.go).  The
// standard x/tools module is deliberately not used — the toolchain
// here is self-contained — so Analyzer/Pass mirror just enough of the
// go/analysis surface for cmd/m2vet to drive the passes both
// standalone and under `go vet -vettool`.
//
// All passes are purely syntactic (parse-only, no type checking): each
// invariant below is recognizable from the AST plus the package's
// import path, which keeps m2vet fast and free of build-graph
// plumbing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Diagnostic is one finding, anchored at a token.Pos within the
// pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // short kebab-free identifier, e.g. "guardedfire"
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// Pass is one analyzer's view of one package: parsed files, the
// package's import path, and a Report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // package import path ("" when unknown)
	Report   func(Diagnostic)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzers lists every registered invariant check, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{GuardedFire, ObsGuard, NoTime, GuardsComment}
}

// Run applies every analyzer to one package, reporting diagnostics
// tagged with the analyzer's name.
func Run(fset *token.FileSet, files []*ast.File, path string, report func(a *Analyzer, d Diagnostic)) error {
	for _, a := range Analyzers() {
		pass := &Pass{
			Analyzer: a, Fset: fset, Files: files, Path: path,
			Report: func(d Diagnostic) { report(a, d) },
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return nil
}

// isTestFile reports whether f was parsed from a _test.go file.  The
// invariants protect production code; tests may fire events directly,
// read clocks and build scratch structs.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// markedLines returns the set of lines carrying a comment that
// contains marker — the annotation mechanism for sanctioned
// exceptions.  A marker comment blesses its own line and the line
// below it, so both trailing and preceding-line annotations work.
func markedLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				line := fset.Position(c.Pos()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
	return lines
}
