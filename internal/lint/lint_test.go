package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation regex from a `// want "..."` comment,
// following the go/analysis fixture convention.
var wantRe = regexp.MustCompile(`// want "(.*)"`)

type fixtureDiag struct {
	analyzer string
	file     string
	line     int
	msg      string
}

// runFixture parses every .go file under testdata/src/<dir>, runs all
// analyzers under the given synthetic import path, and returns the
// diagnostics.
func runFixture(t *testing.T, dir, path string) []fixtureDiag {
	t.Helper()
	fset := token.NewFileSet()
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(root, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	var diags []fixtureDiag
	err = Run(fset, files, path, func(a *Analyzer, d Diagnostic) {
		pos := fset.Position(d.Pos)
		diags = append(diags, fixtureDiag{a.Name, pos.Filename, pos.Line, d.Message})
	})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// checkFixture asserts that diagnostics and `// want` expectations
// match one-to-one per line.
func checkFixture(t *testing.T, dir, path string) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string]map[int]*want{} // file -> line -> expectation
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(root, e.Name())
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		wants[name] = map[int]*want{}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex: %v", name, i+1, err)
				}
				wants[name][i+1] = &want{re: re}
			}
		}
	}
	for _, d := range runFixture(t, dir, path) {
		w := wants[d.file][d.line]
		if w == nil {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", d.file, d.line, d.analyzer, d.msg)
			continue
		}
		if !w.re.MatchString(d.msg) {
			t.Errorf("%s:%d: diagnostic %q does not match want %q", d.file, d.line, d.msg, w.re)
			continue
		}
		w.matched = true
	}
	for file, lines := range wants {
		for line, w := range lines {
			if !w.matched {
				t.Errorf("%s:%d: want %q not reported", file, line, w.re)
			}
		}
	}
}

func TestGuardedFireFixture(t *testing.T)   { checkFixture(t, "guardedfire", "m2cc/internal/sched") }
func TestObsGuardFixture(t *testing.T)      { checkFixture(t, "obsguard", "m2cc/internal/obs") }
func TestNoTimeFixture(t *testing.T)        { checkFixture(t, "notime", "m2cc/internal/sim") }
func TestGuardsCommentFixture(t *testing.T) { checkFixture(t, "guardscomment", "m2cc/internal/vm") }

// TestPathExemptions: the path-scoped analyzers stay silent when the
// fixture is attributed to an exempt or unrelated package.
func TestPathExemptions(t *testing.T) {
	cases := []struct {
		dir, path, analyzer string
	}{
		{"guardedfire", "m2cc/internal/event", "guardedfire"},
		{"obsguard", "m2cc/internal/sched", "obsguard"},
		{"notime", "m2cc/internal/core", "notime"},
	}
	for _, tc := range cases {
		for _, d := range runFixture(t, tc.dir, tc.path) {
			if d.analyzer == tc.analyzer {
				t.Errorf("%s under path %s still reports: %s", tc.analyzer, tc.path, d.msg)
			}
		}
	}
}

// TestAnalyzerMetadata: every analyzer is named, documented, and
// runnable on an empty package.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
		pass := &Pass{Analyzer: a, Fset: token.NewFileSet(), Path: "m2cc/internal/obs",
			Report: func(d Diagnostic) { t.Errorf("%s reported on empty package: %s", a.Name, d.Message) }}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s on empty package: %v", a.Name, err)
		}
	}
	if len(seen) != 4 {
		t.Errorf("expected 4 analyzers, have %d", len(seen))
	}
}
