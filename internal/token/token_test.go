package token_test

import (
	"testing"

	"m2cc/internal/token"
)

func TestLookupReservedWords(t *testing.T) {
	cases := map[string]token.Kind{
		"MODULE":         token.MODULE,
		"PROCEDURE":      token.PROCEDURE,
		"BEGIN":          token.BEGIN,
		"END":            token.END,
		"DEFINITION":     token.DEFINITION,
		"IMPLEMENTATION": token.IMPLEMENTATION,
		"EXCEPTION":      token.EXCEPTION,
		"TRY":            token.TRY,
		"LOCK":           token.LOCK,
		"REF":            token.REF,
	}
	for text, want := range cases {
		if got := token.Lookup(text); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", text, got, want)
		}
	}
}

func TestLookupNonReserved(t *testing.T) {
	for _, text := range []string{"module", "Begin", "INTEGER", "WriteInt", "x", "Procedure"} {
		if got := token.Lookup(text); got != token.Ident {
			t.Errorf("Lookup(%q) = %v, want Ident (Modula-2 reserved words are all upper case)", text, got)
		}
	}
}

func TestIsReserved(t *testing.T) {
	if !token.AND.IsReserved() || !token.REF.IsReserved() {
		t.Error("AND and REF must be reserved")
	}
	for _, k := range []token.Kind{token.Ident, token.IntLit, token.Plus, token.EOF, token.BodyRef} {
		if k.IsReserved() {
			t.Errorf("%v must not be reserved", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[token.Kind]string{
		token.Assign:    ":=",
		token.NotEqual:  "#",
		token.DotDot:    "..",
		token.LessEq:    "<=",
		token.PROCEDURE: "PROCEDURE",
		token.EOF:       "end of file",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestPosBefore(t *testing.T) {
	a := token.Pos{File: 1, Line: 2, Col: 3}
	cases := []struct {
		b    token.Pos
		want bool
	}{
		{token.Pos{File: 1, Line: 2, Col: 4}, true},
		{token.Pos{File: 1, Line: 3, Col: 1}, true},
		{token.Pos{File: 2, Line: 1, Col: 1}, true},
		{token.Pos{File: 1, Line: 2, Col: 3}, false},
		{token.Pos{File: 1, Line: 2, Col: 2}, false},
		{token.Pos{File: 0, Line: 9, Col: 9}, false},
	}
	for _, c := range cases {
		if got := a.Before(c.b); got != c.want {
			t.Errorf("%v.Before(%v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestPosValidity(t *testing.T) {
	if (token.Pos{}).IsValid() {
		t.Error("zero Pos must be invalid")
	}
	if !(token.Pos{Line: 1, Col: 1}).IsValid() {
		t.Error("1:1 must be valid")
	}
	if got := (token.Pos{}).String(); got != "-" {
		t.Errorf("invalid pos renders %q, want -", got)
	}
	if got := (token.Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("pos renders %q, want 3:7", got)
	}
}

func TestOpensEnd(t *testing.T) {
	opens := []token.Kind{token.CASE, token.FOR, token.IF, token.LOOP,
		token.MODULE, token.RECORD, token.WHILE, token.WITH, token.TRY, token.LOCK}
	for _, k := range opens {
		if !k.OpensEnd() {
			t.Errorf("%v must open an END", k)
		}
	}
	// BEGIN and PROCEDURE are deliberately excluded (see the doc
	// comment); REPEAT closes with UNTIL.
	for _, k := range []token.Kind{token.BEGIN, token.PROCEDURE, token.REPEAT, token.END, token.Ident} {
		if k.OpensEnd() {
			t.Errorf("%v must not open an END", k)
		}
	}
}

func TestTokenStringRoundTrippable(t *testing.T) {
	cases := []struct {
		tok  token.Token
		want string
	}{
		{token.Token{Kind: token.Ident, Text: "foo"}, "foo"},
		{token.Token{Kind: token.IntLit, Text: "0FFH"}, "0FFH"},
		{token.Token{Kind: token.CharLit, Text: "15C"}, "15C"},
		{token.Token{Kind: token.StringLit, Text: "abc"}, `"abc"`},
		{token.Token{Kind: token.StringLit, Text: `say "hi"`}, `'say "hi"'`},
		{token.Token{Kind: token.Semicolon}, ";"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("token %v renders %q, want %q", c.tok.Kind, got, c.want)
		}
	}
}
