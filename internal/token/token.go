// Package token defines the lexical tokens of Modula-2+ and the source
// positions attached to them.
//
// Reserved words (not keywords) determine the lexical structure of
// Modula-2+, which is what allows the concurrent compiler to partition a
// program into separately compilable streams during lexical analysis
// (Wortman & Junkin, §1).  The splitter and import scanner rely on the
// reserved-word kinds defined here.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind uint8

// Token kinds.  Literal and identifier kinds carry their text in the
// Token's Text field; reserved words and operators are identified by Kind
// alone.
const (
	EOF Kind = iota
	Ident
	IntLit    // 123, 0FFH, 17B (octal), ordinal char 15C handled as CharLit
	RealLit   // 3.14, 1.0E6
	CharLit   // 'a', "b" of length 1 in char context, 15C
	StringLit // "abc" or 'abc'

	// Operators and delimiters.
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Assign    // :=
	Amp       // & (AND)
	Dot       // .
	Comma     // ,
	Semicolon // ;
	LParen    // (
	LBrack    // [
	LBrace    // {
	Caret     // ^
	Equal     // =
	NotEqual  // # or <>
	Less      // <
	Greater   // >
	LessEq    // <=
	GreaterEq // >=
	DotDot    // ..
	Colon     // :
	RParen    // )
	RBrack    // ]
	RBrace    // }
	Bar       // |
	Tilde     // ~ (NOT)

	// Reserved words.
	AND
	ARRAY
	BEGIN
	BY
	CASE
	CONST
	DEFINITION
	DIV
	DO
	ELSE
	ELSIF
	END
	EXIT
	EXPORT
	FOR
	FROM
	IF
	IMPLEMENTATION
	IMPORT
	IN
	LOOP
	MOD
	MODULE
	NOT
	OF
	OR
	POINTER
	PROCEDURE
	QUALIFIED
	RECORD
	REPEAT
	RETURN
	SET
	THEN
	TO
	TYPE
	UNTIL
	VAR
	WHILE
	WITH

	// Modula-2+ extensions (DEC SRC dialect).
	EXCEPTION
	RAISE
	TRY
	EXCEPT
	FINALLY
	LOCK
	PASSING
	REF

	// BodyRef is a synthetic token inserted by the splitter where a
	// procedure body was diverted to another stream (§2.1).  Text holds
	// the decimal stream number.  It never appears in source text.
	BodyRef

	numKinds
)

// NumKinds is the number of distinct token kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	EOF:       "end of file",
	Ident:     "identifier",
	IntLit:    "integer literal",
	RealLit:   "real literal",
	CharLit:   "character literal",
	StringLit: "string literal",

	Plus:      "+",
	Minus:     "-",
	Star:      "*",
	Slash:     "/",
	Assign:    ":=",
	Amp:       "&",
	Dot:       ".",
	Comma:     ",",
	Semicolon: ";",
	LParen:    "(",
	LBrack:    "[",
	LBrace:    "{",
	Caret:     "^",
	Equal:     "=",
	NotEqual:  "#",
	Less:      "<",
	Greater:   ">",
	LessEq:    "<=",
	GreaterEq: ">=",
	DotDot:    "..",
	Colon:     ":",
	RParen:    ")",
	RBrack:    "]",
	RBrace:    "}",
	Bar:       "|",
	Tilde:     "~",

	AND:            "AND",
	ARRAY:          "ARRAY",
	BEGIN:          "BEGIN",
	BY:             "BY",
	CASE:           "CASE",
	CONST:          "CONST",
	DEFINITION:     "DEFINITION",
	DIV:            "DIV",
	DO:             "DO",
	ELSE:           "ELSE",
	ELSIF:          "ELSIF",
	END:            "END",
	EXIT:           "EXIT",
	EXPORT:         "EXPORT",
	FOR:            "FOR",
	FROM:           "FROM",
	IF:             "IF",
	IMPLEMENTATION: "IMPLEMENTATION",
	IMPORT:         "IMPORT",
	IN:             "IN",
	LOOP:           "LOOP",
	MOD:            "MOD",
	MODULE:         "MODULE",
	NOT:            "NOT",
	OF:             "OF",
	OR:             "OR",
	POINTER:        "POINTER",
	PROCEDURE:      "PROCEDURE",
	QUALIFIED:      "QUALIFIED",
	RECORD:         "RECORD",
	REPEAT:         "REPEAT",
	RETURN:         "RETURN",
	SET:            "SET",
	THEN:           "THEN",
	TO:             "TO",
	TYPE:           "TYPE",
	UNTIL:          "UNTIL",
	VAR:            "VAR",
	WHILE:          "WHILE",
	WITH:           "WITH",

	EXCEPTION: "EXCEPTION",
	RAISE:     "RAISE",
	TRY:       "TRY",
	EXCEPT:    "EXCEPT",
	FINALLY:   "FINALLY",
	LOCK:      "LOCK",
	PASSING:   "PASSING",
	REF:       "REF",

	BodyRef: "<diverted body>",
}

// String returns a human-readable name for the kind: the reserved word or
// operator text itself, or a description for identifier/literal classes.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsReserved reports whether k is a reserved word.
func (k Kind) IsReserved() bool { return k >= AND && k <= REF }

// reservedWords maps reserved-word spelling to kind.  Modula-2 reserved
// words are all upper case.
var reservedWords = map[string]Kind{}

func init() {
	for k := AND; k <= REF; k++ {
		reservedWords[kindNames[k]] = k
	}
}

// Lookup returns the reserved-word kind for an identifier spelling, or
// Ident if the spelling is not reserved.
func Lookup(spelling string) Kind {
	if k, ok := reservedWords[spelling]; ok {
		return k
	}
	return Ident
}

// Pos is a source position: file (by index into a module set), line and
// column, all 1-based.  The zero Pos means "no position".
type Pos struct {
	File int32 // index assigned by the source set; 0 = unknown file
	Line int32
	Col  int32
}

// IsValid reports whether p denotes a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Before reports whether p is strictly before q in (file, line, column)
// order.  Used to merge diagnostics from concurrent streams into a stable
// order.
func (p Pos) Before(q Pos) bool {
	if p.File != q.File {
		return p.File < q.File
	}
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is one lexical token.  Text is set only for identifier and
// literal kinds (reserved words and operators carry no payload).
type Token struct {
	Kind Kind
	Pos  Pos
	Text string
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, RealLit, CharLit:
		// CharLit text is the octal 15C form and prints as written.
		return t.Text
	case StringLit:
		// Modula-2 strings have no escapes; pick whichever quote the
		// text does not contain.
		for i := 0; i < len(t.Text); i++ {
			if t.Text[i] == '"' {
				return "'" + t.Text + "'"
			}
		}
		return `"` + t.Text + `"`
	default:
		return t.Kind.String()
	}
}

// OpensEnd reports whether this reserved word opens a construct that is
// closed by END.  The splitter's finite-state recognizer uses this to
// match the END that terminates a procedure body without parsing
// (Wortman & Junkin §2.1: streams are identified by "a simple finite
// state recognizer" over the token sequence).
//
// BEGIN is deliberately absent: Modula-2 has no compound statement — the
// END after a block's BEGIN is matched by the PROCEDURE or MODULE that
// opened the block.  PROCEDURE is also absent because only a procedure
// *declaration* (PROCEDURE followed by an identifier) opens an END; a
// procedure *type* does not.  The splitter resolves that with one token
// of lookahead, as the paper describes.
func (k Kind) OpensEnd() bool {
	switch k {
	case CASE, FOR, IF, LOOP, MODULE, RECORD, WHILE, WITH, TRY, LOCK:
		return true
	}
	return false
}
