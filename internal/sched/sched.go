// Package sched implements the Supervisors approach of §2.3.2: one
// worker slot per (virtual) processor, priority-ordered ready queues
// searched in the paper's task-class order, and the three event wait
// disciplines of §2.3.3:
//
//   - avoided events gate a task out of the ready queues entirely until
//     they fire;
//   - handled events release the task's worker slot while it waits, and
//     the Supervisor preferentially boosts the task that will fire the
//     event (§2.3.4);
//   - barrier events hold the slot (token-queue consumers only; their
//     producers never block, so progress is guaranteed).
//
// Dispatch topology: each worker slot owns a local run queue, and one
// global overflow queue catches work with no slot affinity.  Tasks are
// pushed to the queue of the slot that made them ready (the spawner, the
// producer whose event released them, the slot a re-admitted waiter last
// ran on); a finishing or blocking slot-holder serves the best of its
// local queue and the overflow queue — both are priority heaps in the
// §2.3.4 class-major order, so comparing the two heads bounds priority
// inversion to what sits in *other* workers' local queues — and steals
// from another worker's queue (randomized victim order) before giving
// the slot back.  The handoff path never touches the scheduler's global
// lock's broadcast machinery, which is what makes finish→start chains
// cheap.  GlobalQueue restores the single strict global queue for
// comparison benchmarks.
//
// The paper's constraint that a task begun by a worker had to be
// finished by that worker was an artifact of Topaz thread affinity; here
// each task is a goroutine and worker slots are a prioritized counting
// semaphore, which removes that deadlock case without changing the
// scheduling policy (see DESIGN.md).
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
	"m2cc/internal/faultinject"
	"m2cc/internal/obs"
)

// ErrCanceled is the sentinel a task's wait raises when the compilation
// it belongs to has been canceled (Supervisor.Cancel).  It unwinds the
// task through the same panic-isolation path as a real fault — deferred
// queue seals run, produced events are force-fired so dependents never
// wedge — but is recognized in runGuarded and excluded from the fault
// count and the OnPanic report: cancellation is a request, not a bug.
var ErrCanceled = errors.New("compilation canceled")

// Priority computes a task's ready-queue priority: class-major (the
// §2.3.4 queue order), then larger sizes first within a class (code is
// generated for long procedures before short ones "to avoid a long
// sequential tail"), then spawn order.  Lower values run first.
func Priority(class ctrace.TaskKind, size int64) int64 {
	const classShift = 44
	if size < 0 {
		size = 0
	}
	if size >= 1<<classShift {
		size = 1<<classShift - 1
	}
	return int64(class)<<classShift - size
}

// Task is one schedulable unit of compilation work.
type Task struct {
	Ctx   *ctrace.TaskCtx
	Label string

	sup      *Supervisor
	kind     ctrace.TaskKind
	stream   int32
	priority int64 // written at boost under the owning runQ's mu
	seq      int64
	run      func(*Task)
	done     *event.Event

	gatesLeft int
	started   bool
	stolen    bool          // dispatched via a steal before first start (fault-injection site)
	resume    chan struct{} // guards: slot handoff — one send re-admits this blocked task
	heapIdx   int           // index in the containing runQ's heap, -1 when absent
	obsID     int           // observability-layer task ID (0 = unobserved)

	// slot is the worker slot most recently granted to the task (-1
	// before the first grant).  Written by the granter, read for queue
	// affinity by spawners and gate fires on other goroutines.
	slot atomic.Int32
	// curQ is the run queue currently holding the task, nil when the
	// task is running, blocked, or in flight between queues.  Written
	// under the owning queue's mu; the boost path loads it to find
	// which queue to migrate a producer out of.
	curQ atomic.Pointer[runQ]
}

// Done returns the event fired when the task finishes.  Other tasks
// gate on it to sequence the stages of one stream.
func (t *Task) Done() *event.Event { return t.done }

// Kind returns the task's class (used in fault reports).
func (t *Task) Kind() ctrace.TaskKind { return t.kind }

// Stream returns the stream the task belongs to.
func (t *Task) Stream() int32 { return t.stream }

// ObsID returns the task's observability-layer ID (0 when the
// compilation runs unobserved); the driver uses it to attribute
// stall-abandonment marks to the right task.
func (t *Task) ObsID() int { return t.obsID }

// BarrierWait performs a barrier-event wait: the worker slot is held
// (§2.3.3).  It is the WaitFunc handed to token-queue readers.  The
// wait is noted unconditionally — token-block acquisitions are
// schedule-independent facts the simulator replays, whether or not this
// particular run had to block on them.
func (t *Task) BarrierWait(e *event.Event) {
	t.Ctx.NoteBarrier(e)
	if e.Fired() {
		return
	}
	s := t.sup
	if s.canceled.Load() {
		// The producer this wait depends on may already have been
		// discharged unrun; unwind instead of blocking a slot forever.
		panic(ErrCanceled)
	}
	s.Obs.TaskBarrierBlocked(t.obsID, e)
	select {
	case <-e.WaitChan():
	case <-s.cancelCh:
	}
	s.Obs.TaskBarrierUnblocked(t.obsID)
	if !e.Fired() {
		panic(ErrCanceled)
	}
}

// HandledWait performs a handled-event wait: the slot is released so
// another task (preferentially the event's producer) can run, and
// re-acquired once the event fires.  It is the wait the symbol-table
// searcher uses for DKY blockages.
func (t *Task) HandledWait(e *event.Event) {
	if e.Fired() {
		return
	}
	s := t.sup
	s.releaseForWait(t, e)
	select {
	case <-e.WaitChan():
	case <-s.cancelCh:
	}
	// Reacquire before unwinding so the slot accounting stays exact:
	// the cancellation panic is raised from inside the task body, where
	// the normal finish path releases the slot.
	s.reacquire(t)
	if !e.Fired() {
		panic(ErrCanceled)
	}
}

// ExternalWait parks t on an event owned by *another* compilation (an
// interface-cache entry whose leader is a different session).  The
// worker slot is released like a handled wait, but the Supervisor's
// deadlock watchdog must neither force-fire the foreign event nor
// treat the stall as a scheduler bug: progress arrives from outside
// this compilation.  The wait is not traced — in the trace the cached
// scope appears pre-fired once installed.
//
// Because the producer lives outside this Supervisor's jurisdiction,
// the wait is bounded by StallTimeout: a foreign leader that wedges
// (or dies without failing its cache entry) must not stall this
// compilation forever.  ExternalWait reports whether the event fired;
// false means the deadline passed and the caller should abandon the
// foreign dependency and do the work itself.
func (t *Task) ExternalWait(e *event.Event) bool {
	if e.Fired() {
		return true
	}
	s := t.sup
	w := int(t.slot.Load())
	s.mu.Lock()
	s.Obs.TaskBlocked(t.obsID, obs.BlockExternal, e)
	s.external[t] = e
	s.mu.Unlock()
	s.handoffOrRelease(w)
	fired := true
	if s.StallTimeout > 0 {
		timer := time.NewTimer(s.StallTimeout)
		select {
		case <-e.Done():
		case <-timer.C:
			// The fire may have raced the deadline; a fired event is
			// never reported as a stall.
			fired = e.Fired()
		case <-s.cancelCh:
			// Canceled: abandon the foreign dependency immediately; the
			// caller's fallback work is discharged unrun anyway.
			fired = e.Fired()
		}
		timer.Stop()
	} else {
		select {
		case <-e.WaitChan():
		case <-s.cancelCh:
			fired = e.Fired()
		}
	}
	s.mu.Lock()
	delete(s.external, t)
	s.pushLocked(t, w)
	s.kickLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	<-t.resume
	return fired
}

// runQ is one priority run queue: a binary heap in (priority, seq)
// order.  Each worker slot owns one, and the Supervisor owns one more
// as the global overflow queue.
type runQ struct {
	mu sync.Mutex // guards: h (and the heapIdx/curQ/priority of the tasks in it)
	h  taskHeap

	// n mirrors len(h); maintained under mu, read lock-free by the
	// stall detector, ready-depth samples and steal-victim scans.
	n atomic.Int32
}

func (q *runQ) push(t *Task) {
	q.mu.Lock()
	heap.Push(&q.h, t)
	t.curQ.Store(q)
	q.n.Add(1)
	q.mu.Unlock()
}

func (q *runQ) popMin() *Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return nil
	}
	t := heap.Pop(&q.h).(*Task)
	t.curQ.Store(nil)
	q.n.Add(-1)
	return t
}

// Supervisor owns the worker slots and the run queues.
type Supervisor struct {
	mu    sync.Mutex // guards: all scheduler state below (locked before any runQ.mu); cond's locker
	cond  *sync.Cond
	slots int
	free  int

	// slotFree marks which worker slots are unclaimed; mutated only
	// under mu, so the stall detector's free==slots check is exact.
	slotFree []bool

	local     []*runQ  // one run queue per worker slot
	overflow  runQ     // global queue for work with no slot affinity
	stealRand []uint64 // per-slot xorshift state; touched only by the slot's holder

	seq int64

	producers map[*event.Event]*Task
	blocked   map[*Task]*event.Event
	parked    map[*Task][]*event.Event
	external  map[*Task]*event.Event // waits on events owned by other compilations

	// Gate bookkeeping: one event.Subscribe per distinct gate event,
	// batching the release of every task it gates into a single
	// scheduler transaction when it fires.
	gateWaiters map[*event.Event][]*Task // unfired gate → tasks counting it
	gateDone    map[*event.Event]bool    // gates whose fire was processed
	gateSub     map[*event.Event]bool    // gates with a subscription installed

	total    int
	finished int
	faults   int // tasks that panicked and were isolated
	skips    int // tasks discharged unrun after cancellation

	// canceled flips once when Cancel is called; checked lock-free on
	// every dispatch and wait so an abandoned compilation stops doing
	// work at the next task boundary.
	canceled atomic.Bool
	// cancelCh guards: cancellation broadcast — closed exactly once by
	// Cancel; every bounded wait selects on it so blocked tasks unwind
	// promptly instead of waiting for events that will never fire.
	cancelCh chan struct{}

	// Dispatch-traffic counters (see obs.SchedCounters).
	nLocalPushes    atomic.Int64
	nOverflowPushes atomic.Int64
	nLocalPops      atomic.Int64
	nSteals         atomic.Int64
	nOverflowPops   atomic.Int64
	nHandoffs       atomic.Int64

	rec *ctrace.Recorder

	// GlobalQueue disables the per-slot local queues and work stealing:
	// every task is pushed to and popped from the single overflow queue
	// in strict global priority order.  The scheduler benchmark uses it
	// as the before-topology baseline.  Set before the first Spawn.
	GlobalQueue bool

	// Inject, when non-nil, arms the PanicSteal fault-injection point:
	// a stolen task panics before its body runs, exercising panic
	// isolation on the steal dispatch path.  Set before the first Spawn.
	Inject *faultinject.Plan

	// OnDeadlock is invoked (outside the lock) with a description when
	// the watchdog breaks a stall; the driver reports it as an error.
	// The message includes a full scheduler state dump (run queues,
	// blocked/parked/external tasks and the producers of the events
	// they wait on).
	OnDeadlock func(msg string)

	// OnPanic is invoked (outside the lock) when a task panics.  The
	// panic is contained: the Supervisor reports it here, force-fires
	// every unfired event the task was registered to produce (so
	// sibling streams unwedge instead of deadlocking on a producer
	// that will never come back), fires the task's Done event, and
	// releases the worker slot.  The driver converts the report into a
	// diagnostic and poisons the result.
	OnPanic func(t *Task, recovered any, stack []byte)

	// StallTimeout bounds ExternalWait: how long a task may park on an
	// event owned by a foreign compilation before abandoning it.
	// Zero or negative waits forever.  Set before the first Spawn.
	StallTimeout time.Duration

	// Obs, when non-nil, receives live-observability hooks at every
	// task transition (spawn, dispatch, block, unblock, finish, panic,
	// watchdog fire).  Nil reduces every hook to a pointer check, the
	// same discipline as faultinject.  Set before the first Spawn.
	Obs *obs.Observer
}

// New returns a Supervisor with the given number of worker slots
// (§2.3.2: one per processor).  rec may be nil.
func New(workers int, rec *ctrace.Recorder) *Supervisor {
	if workers < 1 {
		workers = 1
	}
	s := &Supervisor{
		slots: workers, free: workers, rec: rec,
		cancelCh:    make(chan struct{}),
		slotFree:    make([]bool, workers),
		local:       make([]*runQ, workers),
		stealRand:   make([]uint64, workers),
		producers:   make(map[*event.Event]*Task),
		blocked:     make(map[*Task]*event.Event),
		parked:      make(map[*Task][]*event.Event),
		external:    make(map[*Task]*event.Event),
		gateWaiters: make(map[*event.Event][]*Task),
		gateDone:    make(map[*event.Event]bool),
		gateSub:     make(map[*event.Event]bool),
	}
	for i := range s.local {
		s.slotFree[i] = true
		s.local[i] = &runQ{}
		// Deterministic per-slot seeds (splitmix64 increments) so steal
		// orders differ across slots without global randomness.
		s.stealRand[i] = uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Counters returns the dispatch-traffic counters accumulated so far.
func (s *Supervisor) Counters() obs.SchedCounters {
	return obs.SchedCounters{
		LocalPushes:    s.nLocalPushes.Load(),
		OverflowPushes: s.nOverflowPushes.Load(),
		LocalPops:      s.nLocalPops.Load(),
		Steals:         s.nSteals.Load(),
		OverflowPops:   s.nOverflowPops.Load(),
		Handoffs:       s.nHandoffs.Load(),
	}
}

// Cancel abandons the compilation: tasks not yet started are discharged
// without running (their produced events force-fired so nothing wedges),
// and every blocked wait unwinds at its next opportunity through the
// panic-isolation teardown (ErrCanceled).  Tasks already executing run
// to their next wait or to completion — cancellation is cooperative at
// task boundaries, never preemptive mid-mutation.  Wait still drains
// every registered task, so by the time it returns all worker slots are
// released and all led cache entries have been failed by the driver's
// end-of-compilation sweep.  Idempotent and safe from any goroutine.
func (s *Supervisor) Cancel() {
	if s.canceled.Swap(true) {
		return
	}
	close(s.cancelCh)
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Canceled reports whether Cancel has been called.
func (s *Supervisor) Canceled() bool { return s.canceled.Load() }

// Skipped reports how many tasks were discharged unrun after
// cancellation.
func (s *Supervisor) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skips
}

// SetProducer declares that task t is the one that will fire e; the
// Supervisor uses this to run the DKY-resolving task preferentially
// when someone blocks on e (§2.3.4).
func (s *Supervisor) SetProducer(e *event.Event, t *Task) {
	s.mu.Lock()
	s.producers[e] = t
	s.mu.Unlock()
}

// Spawn registers a task.  parent supplies the creation stamp for the
// trace (nil for the initial tasks).  gates are the task's avoided
// events: it enters a run queue only once all have fired.
func (s *Supervisor) Spawn(kind ctrace.TaskKind, stream int32, label string,
	priority int64, gates []*event.Event, parent *ctrace.TaskCtx, run func(*Task)) *Task {

	ctx := &ctrace.TaskCtx{Kind: kind, Rec: s.rec}
	if s.rec != nil {
		ctx.ID = s.rec.RegisterTask(kind, stream, label)
		var pid ctrace.TaskID
		var at ctrace.Stamp
		if parent != nil {
			pid = parent.ID
			at = parent.Stamp()
		}
		s.rec.NoteSpawn(pid, at, ctx.ID, gates)
	}
	parentObs := 0
	if parent != nil {
		parentObs = parent.ObsID
	}
	t := &Task{
		Ctx: ctx, Label: label, sup: s, kind: kind, stream: stream, priority: priority,
		run: run, done: event.New(), resume: make(chan struct{}, 1), heapIdx: -1,
		obsID: s.Obs.TaskSpawned(kind, stream, label, parentObs, gates),
	}
	t.slot.Store(-1)
	ctx.Owner = t
	if obsv := s.Obs; obsv != nil && t.obsID != 0 {
		// Edge capture: every event this task fires through its TaskCtx
		// is attributed to it, before the fire lands (so waiters' unblock
		// edges always follow the fire edge).
		ctx.ObsID = t.obsID
		id := t.obsID
		ctx.OnFire = func(e *event.Event) { obsv.EventFired(id, e) }
	}

	s.mu.Lock()
	s.total++
	t.seq = s.seq
	s.seq++
	// The task's finish event gains it as producer, so gate releases
	// and DKY boosts know which slot's queue has affinity with it.
	s.producers[t.done] = t
	// Register against each gate that has not yet been seen to fire;
	// one subscription per distinct event covers every waiter, past and
	// future, in a single batched release.
	var fresh []*event.Event
	for _, g := range gates {
		if s.gateDone[g] || g.Fired() {
			continue
		}
		t.gatesLeft++
		s.gateWaiters[g] = append(s.gateWaiters[g], t)
		if !s.gateSub[g] {
			s.gateSub[g] = true
			fresh = append(fresh, g)
		}
	}
	if t.gatesLeft == 0 {
		s.pushLocked(t, affinitySlot(parent))
		s.kickLocked()
		s.mu.Unlock()
		return t
	}
	s.parked[t] = gates
	s.mu.Unlock()

	for _, g := range fresh {
		g := g
		g.Subscribe(func() { s.gatesFired(g) })
	}
	return t
}

// affinitySlot names the worker slot whose local queue a fresh spawn
// should land on: the spawning task's own.  -1 (the overflow queue)
// when the spawn has no scheduled parent.
func affinitySlot(parent *ctrace.TaskCtx) int {
	if parent == nil {
		return -1
	}
	if pt, ok := parent.Owner.(*Task); ok && pt != nil {
		return int(pt.slot.Load())
	}
	return -1
}

// gatesFired processes one gate event's fire: every task counting it is
// decremented, and all tasks it releases enter the run queues — pushed
// to the firing producer's slot for affinity — under a single scheduler
// transaction.
func (s *Supervisor) gatesFired(g *event.Event) {
	s.mu.Lock()
	s.gateDone[g] = true
	waiters := s.gateWaiters[g]
	delete(s.gateWaiters, g)
	w := -1
	if p, ok := s.producers[g]; ok {
		w = int(p.slot.Load())
	}
	released := false
	for _, t := range waiters {
		t.gatesLeft--
		if t.gatesLeft == 0 {
			delete(s.parked, t)
			s.pushLocked(t, w)
			released = true
		}
	}
	if released {
		s.kickLocked()
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// pushLocked enqueues a runnable task, preferring slot w's local queue
// (-1, an out-of-range slot, or GlobalQueue mode selects the overflow
// queue).  All pushes happen under s.mu so the stall detector can trust
// free==slots ∧ queuedLen()==0; pops and steals run outside it.
func (s *Supervisor) pushLocked(t *Task, w int) {
	if s.GlobalQueue || w < 0 || w >= len(s.local) {
		s.overflow.push(t)
		s.nOverflowPushes.Add(1)
		return
	}
	s.local[w].push(t)
	s.nLocalPushes.Add(1)
}

// queuedLen is the total number of queued runnable tasks.
func (s *Supervisor) queuedLen() int {
	n := int(s.overflow.n.Load())
	for _, q := range s.local {
		n += int(q.n.Load())
	}
	return n
}

// claimSlotLocked claims a free worker slot, preferring the one whose
// local queue is deepest.  Caller holds s.mu and has checked free > 0.
func (s *Supervisor) claimSlotLocked() int {
	best, bestN := -1, int32(-1)
	for w, fr := range s.slotFree {
		if !fr {
			continue
		}
		if n := s.local[w].n.Load(); n > bestN {
			best, bestN = w, n
		}
	}
	s.slotFree[best] = false
	s.free--
	return best
}

func (s *Supervisor) releaseSlotLocked(w int) {
	s.slotFree[w] = true
	s.free++
}

// kickLocked grants free slots to queued tasks until one of them runs
// out.  Caller holds s.mu.
func (s *Supervisor) kickLocked() {
	for s.free > 0 && s.queuedLen() > 0 {
		w := s.claimSlotLocked()
		t := s.nextFor(w)
		if t == nil {
			// A concurrent handoff drained the queues between the
			// length check and the pop; the work went somewhere.
			s.releaseSlotLocked(w)
			return
		}
		s.grant(t, w)
	}
}

// nextFor picks the best queued task for slot w: the better of the
// slot's local head and the overflow head (both heaps are in global
// priority order, so comparing heads bounds priority inversion), then
// a steal from another worker's queue.  The caller owns slot w; s.mu
// may or may not be held (lock order is always s.mu → runQ.mu).
func (s *Supervisor) nextFor(w int) *Task {
	if s.GlobalQueue {
		if t := s.overflow.popMin(); t != nil {
			s.nOverflowPops.Add(1)
			return t
		}
		return nil
	}
	lq := s.local[w]
	lq.mu.Lock()
	s.overflow.mu.Lock()
	var lt, ot *Task
	if len(lq.h) > 0 {
		lt = lq.h[0]
	}
	if len(s.overflow.h) > 0 {
		ot = s.overflow.h[0]
	}
	switch {
	case lt != nil && (ot == nil || taskLess(lt, ot)):
		heap.Pop(&lq.h)
		lt.curQ.Store(nil)
		lq.n.Add(-1)
		s.overflow.mu.Unlock()
		lq.mu.Unlock()
		s.nLocalPops.Add(1)
		return lt
	case ot != nil:
		heap.Pop(&s.overflow.h)
		ot.curQ.Store(nil)
		s.overflow.n.Add(-1)
		s.overflow.mu.Unlock()
		lq.mu.Unlock()
		s.nOverflowPops.Add(1)
		return ot
	}
	s.overflow.mu.Unlock()
	lq.mu.Unlock()
	return s.steal(w)
}

// steal scans the other workers' local queues in a randomized order
// and takes the head (best-priority) task of the first non-empty one.
// Only slot w's holder calls this, so stealRand[w] needs no lock; one
// victim queue is locked at a time.
func (s *Supervisor) steal(w int) *Task {
	n := len(s.local)
	if n < 2 {
		return nil
	}
	r := s.stealRand[w]
	r ^= r << 13
	r ^= r >> 7
	r ^= r << 17
	s.stealRand[w] = r
	start := int(r % uint64(n))
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == w || s.local[v].n.Load() == 0 {
			continue
		}
		if t := s.local[v].popMin(); t != nil {
			s.nSteals.Add(1)
			if !t.started {
				t.stolen = true
			}
			return t
		}
	}
	return nil
}

// grant hands slot w to task t, which the caller popped from a queue.
// The slot stays claimed from pop to grant, so the stall detector never
// sees an all-free scheduler with a task in flight.
func (s *Supervisor) grant(t *Task, w int) {
	t.slot.Store(int32(w))
	s.Obs.ReadySample(s.queuedLen())
	if !t.started {
		t.started = true
		s.Obs.TaskStarted(t.obsID)
		go s.body(t)
	} else {
		s.Obs.TaskUnblocked(t.obsID)
		t.resume <- struct{}{}
	}
}

// handoffOrRelease passes slot w straight to the next queued task —
// skipping the free-slot accounting and its broadcast entirely — or,
// when no work is queued, returns the slot under s.mu.  The re-check
// under the lock closes the race against a push that saw no free slot.
func (s *Supervisor) handoffOrRelease(w int) {
	if t := s.nextFor(w); t != nil {
		s.nHandoffs.Add(1)
		s.grant(t, w)
		return
	}
	s.mu.Lock()
	s.releaseSlotLocked(w)
	s.kickLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Supervisor) body(t *Task) {
	t.Ctx.Add(ctrace.CostTaskStart)
	s.runGuarded(t)
	t.Ctx.FireEvent(t.done)
	if s.rec != nil {
		s.rec.FinishTask(t.Ctx.ID, t.Ctx.Units)
	}
	// Note the finish (freeing the task's observed lane) before the
	// slot moves on, so an observer never sees more lanes busy than
	// slots exist.
	s.Obs.TaskFinished(t.obsID)
	w := int(t.slot.Load())
	if t2 := s.nextFor(w); t2 != nil {
		s.nHandoffs.Add(1)
		s.grant(t2, w)
		s.mu.Lock()
		s.finished++
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.releaseSlotLocked(w)
	s.finished++
	s.kickLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runGuarded runs the task body with panic isolation: a panicking task
// is contained to its own stream instead of crashing the process.  The
// recovery reports the fault through OnPanic, then force-fires every
// unfired event the task was registered (via SetProducer) to produce —
// sibling streams blocked on those events resume and run to completion
// rather than wedging until the deadlock watchdog.  The caller (body)
// then fires Done and releases the slot exactly as for a clean finish.
func (s *Supervisor) runGuarded(t *Task) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if r == ErrCanceled {
			// A cooperative cancellation unwind, not a fault: the
			// deferred seals already ran during the unwind; force-fire
			// what the task still owed and let body finish it normally.
			s.mu.Lock()
			s.skips++
			s.mu.Unlock()
			s.forceFireProduced(t)
			return
		}
		stack := debug.Stack()
		s.mu.Lock()
		s.faults++
		cb := s.OnPanic
		s.mu.Unlock()
		s.Obs.TaskPanicked(t.obsID)
		if cb != nil {
			cb(t, r, stack)
		}
		s.forceFireProduced(t)
	}()
	if s.canceled.Load() {
		// Granted after cancellation: discharge without running the
		// body.  Produced events are force-fired so dependents that
		// started before the cancellation never wedge on this task.
		s.mu.Lock()
		s.skips++
		s.mu.Unlock()
		s.forceFireProduced(t)
		return
	}
	if t.stolen {
		// Injected: the task crashes on the worker that stole it,
		// before its body runs; isolation must hold on this path too.
		s.Inject.Panic(faultinject.PanicSteal, t.Label)
	}
	t.run(t)
}

// forceFireProduced force-fires every unfired event the task was
// registered (via SetProducer) to produce, so sibling streams blocked
// on them resume instead of wedging until the deadlock watchdog.  The
// task's own Done event is excluded: body fires it on the normal path.
// Shared by the panic-isolation and cancellation-discharge teardowns.
func (s *Supervisor) forceFireProduced(t *Task) {
	s.mu.Lock()
	var fires []*event.Event
	for e, p := range s.producers {
		if p == t && e != t.done && !e.Fired() {
			fires = append(fires, e)
		}
	}
	s.mu.Unlock()
	for _, e := range fires {
		s.Obs.EventForceFired(e)
		e.Fire() // vet:allowfire forced fire on a dead or discharged task's behalf; EventForceFired is the record
	}
}

// Faults reports how many tasks panicked and were isolated.
func (s *Supervisor) Faults() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// releaseForWait gives up t's slot because it is about to block on e.
// The slot is handed straight to the next queued task — preferentially
// the producer that resolves the blockage, which is boosted into this
// slot's local queue first (§2.3.4).
func (s *Supervisor) releaseForWait(t *Task, e *event.Event) {
	w := int(t.slot.Load())
	s.mu.Lock()
	s.Obs.TaskBlocked(t.obsID, obs.BlockHandled, e)
	s.blocked[t] = e
	if p, ok := s.producers[e]; ok {
		s.boostLocked(p, w)
	}
	s.mu.Unlock()
	s.handoffOrRelease(w)
}

// boostLocked promotes a queued producer to run next: its priority is
// raised above every class and it migrates to slot w's local queue, so
// the blocked worker's own slot runs the task that unblocks it.  A
// producer that is already running, blocked, or parked is left alone
// (it no longer sits in any queue).  Caller holds s.mu, which is what
// serializes concurrent boosts of the same producer.
func (s *Supervisor) boostLocked(p *Task, w int) {
	for {
		q := p.curQ.Load()
		if q == nil {
			return
		}
		q.mu.Lock()
		if p.curQ.Load() != q {
			// Popped (or migrated) between the load and the lock; the
			// new queue — if any — is re-read on the next spin.
			q.mu.Unlock()
			continue
		}
		p.priority = -1 << 62
		var tq *runQ
		if !s.GlobalQueue && w >= 0 && w < len(s.local) {
			tq = s.local[w]
		}
		if tq == nil || tq == q {
			heap.Fix(&q.h, p.heapIdx)
			q.mu.Unlock()
			return
		}
		heap.Remove(&q.h, p.heapIdx)
		p.curQ.Store(nil)
		q.n.Add(-1)
		q.mu.Unlock()
		tq.push(p)
		return
	}
}

// reacquire returns t to the run queues after its event fired and
// blocks until a slot is granted.  The task lands on the queue of the
// slot it last ran on.
func (s *Supervisor) reacquire(t *Task) {
	s.mu.Lock()
	delete(s.blocked, t)
	s.pushLocked(t, int(t.slot.Load()))
	s.kickLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	<-t.resume
}

// Wait blocks until every spawned task has finished.  It breaks DKY
// deadlocks (possible only for erroneous programs, e.g. cyclic imports)
// by force-firing the events stalled tasks wait on, so compilation
// always terminates with diagnostics instead of hanging.
func (s *Supervisor) Wait() {
	s.mu.Lock()
	for s.finished < s.total {
		if s.free == s.slots && s.queuedLen() == 0 {
			// Nothing is running or runnable, yet tasks remain: a stall.
			var fires []*event.Event
			// Tasks parked on foreign (cache) events are woken from
			// outside this compilation; their stall is not a deadlock.
			inTransit := len(s.external) > 0
			for _, e := range s.blocked {
				if e.Fired() {
					// A woken waiter is between its event firing and
					// re-acquiring a slot; it may fire the events the
					// others wait on.  Not a deadlock — let it land.
					inTransit = true
				} else {
					fires = append(fires, e)
				}
			}
			if inTransit {
				fires = nil
			}
			if len(fires) == 0 && !inTransit {
				for _, gates := range s.parked {
					for _, g := range gates {
						if !g.Fired() {
							fires = append(fires, g)
						}
					}
				}
			}
			if len(fires) > 0 {
				cb := s.OnDeadlock
				var msg string
				wedged := !s.canceled.Load()
				if wedged {
					msg = "DKY deadlock broken: compilation cannot make progress (cyclic imports or missing declarations)\n" +
						s.stateDumpLocked()
				} else {
					// Canceled teardown: residual gates are expected (their
					// producers were discharged unrun); force-fire them so
					// the drain completes, but report no deadlock — the
					// result is already marked canceled by the driver.
					cb = nil
				}
				s.mu.Unlock()
				if wedged {
					s.Obs.WatchdogFired()
				}
				if cb != nil {
					cb(msg)
				}
				for _, e := range fires {
					s.Obs.EventForceFired(e)
					e.Fire() // vet:allowfire watchdog force-fire; EventForceFired is the record
				}
				s.mu.Lock()
				continue
			}
			if !inTransit {
				// No one to wake: tasks vanished without finishing —
				// this would be a scheduler bug; bail out rather than
				// hang.
				break
			}
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// stateDumpLocked renders the scheduler's full state — every run queue,
// blocked/parked/external tasks, and for every awaited event its
// registered producer — so a DKY deadlock report names the stuck tasks
// instead of leaving the user to guess.  Lines within each section are
// sorted for deterministic output.  Caller holds s.mu.
func (s *Supervisor) stateDumpLocked() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler state: %d/%d tasks finished, %d/%d slots free, %d faults\n",
		s.finished, s.total, s.free, s.slots, s.faults)
	section := func(title string, lines []string) {
		if len(lines) == 0 {
			return
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "  %s:\n", title)
		for _, l := range lines {
			fmt.Fprintf(&b, "    %s\n", l)
		}
	}
	var runnable []string
	collect := func(q *runQ, where string) {
		q.mu.Lock()
		for _, t := range q.h {
			runnable = append(runnable, fmt.Sprintf("%s (%s)", t.Label, where))
		}
		q.mu.Unlock()
	}
	collect(&s.overflow, "overflow queue")
	for w, q := range s.local {
		collect(q, fmt.Sprintf("local queue %d", w))
	}
	section("runnable", runnable)
	var blocked []string
	for t, e := range s.blocked {
		blocked = append(blocked, fmt.Sprintf("%s waits on %s", t.Label, s.eventDescLocked(e)))
	}
	section("blocked (handled waits)", blocked)
	var parked []string
	for t, gates := range s.parked {
		var unfired []string
		for _, g := range gates {
			if !g.Fired() {
				unfired = append(unfired, s.eventDescLocked(g))
			}
		}
		parked = append(parked, fmt.Sprintf("%s gated on %d event(s): %s",
			t.Label, len(unfired), strings.Join(unfired, ", ")))
	}
	section("parked (avoided gates)", parked)
	var external []string
	for t := range s.external {
		external = append(external, fmt.Sprintf("%s waits on a foreign compilation's event", t.Label))
	}
	section("external (cache waits)", external)
	return strings.TrimRight(b.String(), "\n")
}

// eventDescLocked names an event by its registered producer, the only
// identity events have.  Caller holds s.mu.
func (s *Supervisor) eventDescLocked(e *event.Event) string {
	if p, ok := s.producers[e]; ok {
		return fmt.Sprintf("event produced by %q", p.Label)
	}
	return "event with no registered producer"
}

// taskLess is the run-queue order: priority, then spawn order.
func taskLess(a, b *Task) bool {
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

// taskHeap orders runnable tasks by (priority, seq).
type taskHeap []*Task

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return taskLess(h[i], h[j]) }
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*Task)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}
