// Package sched implements the Supervisors approach of §2.3.2: one
// worker slot per (virtual) processor, a priority-ordered ready queue
// searched in the paper's task-class order, and the three event wait
// disciplines of §2.3.3:
//
//   - avoided events gate a task out of the ready queue entirely until
//     they fire;
//   - handled events release the task's worker slot while it waits, and
//     the Supervisor preferentially boosts the task that will fire the
//     event (§2.3.4);
//   - barrier events hold the slot (token-queue consumers only; their
//     producers never block, so progress is guaranteed).
//
// The paper's constraint that a task begun by a worker had to be
// finished by that worker was an artifact of Topaz thread affinity; here
// each task is a goroutine and worker slots are a prioritized counting
// semaphore, which removes that deadlock case without changing the
// scheduling policy (see DESIGN.md).
package sched

import (
	"container/heap"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
	"m2cc/internal/obs"
)

// Priority computes a task's ready-queue priority: class-major (the
// §2.3.4 queue order), then larger sizes first within a class (code is
// generated for long procedures before short ones "to avoid a long
// sequential tail"), then spawn order.  Lower values run first.
func Priority(class ctrace.TaskKind, size int64) int64 {
	const classShift = 44
	if size < 0 {
		size = 0
	}
	if size >= 1<<classShift {
		size = 1<<classShift - 1
	}
	return int64(class)<<classShift - size
}

// Task is one schedulable unit of compilation work.
type Task struct {
	Ctx   *ctrace.TaskCtx
	Label string

	sup      *Supervisor
	kind     ctrace.TaskKind
	stream   int32
	priority int64
	seq      int64
	run      func(*Task)
	done     *event.Event

	gatesLeft int
	started   bool
	resume    chan struct{} // guards: slot handoff — one send re-admits this blocked task
	heapIdx   int           // index in the runnable heap, -1 when absent
	obsID     int           // observability-layer task ID (0 = unobserved)
}

// Done returns the event fired when the task finishes.  Other tasks
// gate on it to sequence the stages of one stream.
func (t *Task) Done() *event.Event { return t.done }

// Kind returns the task's class (used in fault reports).
func (t *Task) Kind() ctrace.TaskKind { return t.kind }

// Stream returns the stream the task belongs to.
func (t *Task) Stream() int32 { return t.stream }

// ObsID returns the task's observability-layer ID (0 when the
// compilation runs unobserved); the driver uses it to attribute
// stall-abandonment marks to the right task.
func (t *Task) ObsID() int { return t.obsID }

// BarrierWait performs a barrier-event wait: the worker slot is held
// (§2.3.3).  It is the WaitFunc handed to token-queue readers.  The
// wait is noted unconditionally — token-block acquisitions are
// schedule-independent facts the simulator replays, whether or not this
// particular run had to block on them.
func (t *Task) BarrierWait(e *event.Event) {
	t.Ctx.NoteBarrier(e)
	if e.Fired() {
		return
	}
	t.sup.Obs.TaskBarrierBlocked(t.obsID, e)
	e.Wait()
	t.sup.Obs.TaskBarrierUnblocked(t.obsID)
}

// HandledWait performs a handled-event wait: the slot is released so
// another task (preferentially the event's producer) can run, and
// re-acquired once the event fires.  It is the wait the symbol-table
// searcher uses for DKY blockages.
func (t *Task) HandledWait(e *event.Event) {
	if e.Fired() {
		return
	}
	t.sup.releaseForWait(t, e)
	e.Wait()
	t.sup.reacquire(t)
}

// ExternalWait parks t on an event owned by *another* compilation (an
// interface-cache entry whose leader is a different session).  The
// worker slot is released like a handled wait, but the Supervisor's
// deadlock watchdog must neither force-fire the foreign event nor
// treat the stall as a scheduler bug: progress arrives from outside
// this compilation.  The wait is not traced — in the trace the cached
// scope appears pre-fired once installed.
//
// Because the producer lives outside this Supervisor's jurisdiction,
// the wait is bounded by StallTimeout: a foreign leader that wedges
// (or dies without failing its cache entry) must not stall this
// compilation forever.  ExternalWait reports whether the event fired;
// false means the deadline passed and the caller should abandon the
// foreign dependency and do the work itself.
func (t *Task) ExternalWait(e *event.Event) bool {
	if e.Fired() {
		return true
	}
	s := t.sup
	s.mu.Lock()
	s.Obs.TaskBlocked(t.obsID, obs.BlockExternal, e)
	s.free++
	s.external[t] = e
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	fired := true
	if s.StallTimeout > 0 {
		timer := time.NewTimer(s.StallTimeout)
		select {
		case <-e.Done():
		case <-timer.C:
			// The fire may have raced the deadline; a fired event is
			// never reported as a stall.
			fired = e.Fired()
		}
		timer.Stop()
	} else {
		e.Wait()
	}
	s.mu.Lock()
	delete(s.external, t)
	s.makeRunnableLocked(t)
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	<-t.resume
	return fired
}

// Supervisor owns the worker slots and the ready queue.
type Supervisor struct {
	mu       sync.Mutex // guards: all scheduler state below; cond's locker
	cond     *sync.Cond
	slots    int
	free     int
	runnable taskHeap
	seq      int64

	producers map[*event.Event]*Task
	blocked   map[*Task]*event.Event
	parked    map[*Task][]*event.Event
	external  map[*Task]*event.Event // waits on events owned by other compilations

	total    int
	finished int
	faults   int // tasks that panicked and were isolated

	rec *ctrace.Recorder

	// OnDeadlock is invoked (outside the lock) with a description when
	// the watchdog breaks a stall; the driver reports it as an error.
	// The message includes a full scheduler state dump (runnable heap,
	// blocked/parked/external tasks and the producers of the events
	// they wait on).
	OnDeadlock func(msg string)

	// OnPanic is invoked (outside the lock) when a task panics.  The
	// panic is contained: the Supervisor reports it here, force-fires
	// every unfired event the task was registered to produce (so
	// sibling streams unwedge instead of deadlocking on a producer
	// that will never come back), fires the task's Done event, and
	// releases the worker slot.  The driver converts the report into a
	// diagnostic and poisons the result.
	OnPanic func(t *Task, recovered any, stack []byte)

	// StallTimeout bounds ExternalWait: how long a task may park on an
	// event owned by a foreign compilation before abandoning it.
	// Zero or negative waits forever.  Set before the first Spawn.
	StallTimeout time.Duration

	// Obs, when non-nil, receives live-observability hooks at every
	// task transition (spawn, dispatch, block, unblock, finish, panic,
	// watchdog fire).  Nil reduces every hook to a pointer check, the
	// same discipline as faultinject.  Set before the first Spawn.
	Obs *obs.Observer
}

// New returns a Supervisor with the given number of worker slots
// (§2.3.2: one per processor).  rec may be nil.
func New(workers int, rec *ctrace.Recorder) *Supervisor {
	if workers < 1 {
		workers = 1
	}
	s := &Supervisor{
		slots: workers, free: workers, rec: rec,
		producers: make(map[*event.Event]*Task),
		blocked:   make(map[*Task]*event.Event),
		parked:    make(map[*Task][]*event.Event),
		external:  make(map[*Task]*event.Event),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetProducer declares that task t is the one that will fire e; the
// Supervisor uses this to run the DKY-resolving task preferentially
// when someone blocks on e (§2.3.4).
func (s *Supervisor) SetProducer(e *event.Event, t *Task) {
	s.mu.Lock()
	s.producers[e] = t
	s.mu.Unlock()
}

// Spawn registers a task.  parent supplies the creation stamp for the
// trace (nil for the initial tasks).  gates are the task's avoided
// events: it enters the ready queue only once all have fired.
func (s *Supervisor) Spawn(kind ctrace.TaskKind, stream int32, label string,
	priority int64, gates []*event.Event, parent *ctrace.TaskCtx, run func(*Task)) *Task {

	ctx := &ctrace.TaskCtx{Kind: kind, Rec: s.rec}
	if s.rec != nil {
		ctx.ID = s.rec.RegisterTask(kind, stream, label)
		var pid ctrace.TaskID
		var at ctrace.Stamp
		if parent != nil {
			pid = parent.ID
			at = parent.Stamp()
		}
		s.rec.NoteSpawn(pid, at, ctx.ID, gates)
	}
	parentObs := 0
	if parent != nil {
		parentObs = parent.ObsID
	}
	t := &Task{
		Ctx: ctx, Label: label, sup: s, kind: kind, stream: stream, priority: priority,
		run: run, done: event.New(), resume: make(chan struct{}, 1), heapIdx: -1,
		obsID: s.Obs.TaskSpawned(kind, stream, label, parentObs, gates),
	}
	if obsv := s.Obs; obsv != nil && t.obsID != 0 {
		// Edge capture: every event this task fires through its TaskCtx
		// is attributed to it, before the fire lands (so waiters' unblock
		// edges always follow the fire edge).
		ctx.ObsID = t.obsID
		id := t.obsID
		ctx.OnFire = func(e *event.Event) { obsv.EventFired(id, e) }
	}

	s.mu.Lock()
	s.total++
	t.seq = s.seq
	s.seq++
	// Each gate's Subscribe callback runs exactly once (immediately if
	// the event already fired), so counting len(gates) and decrementing
	// per callback is race-free.
	t.gatesLeft = len(gates)
	if t.gatesLeft == 0 {
		s.makeRunnableLocked(t)
		s.dispatchLocked()
		s.mu.Unlock()
		return t
	}
	s.parked[t] = gates
	s.mu.Unlock()

	for _, g := range gates {
		g.Subscribe(func() { s.gateFired(t) })
	}
	return t
}

func (s *Supervisor) gateFired(t *Task) {
	s.mu.Lock()
	t.gatesLeft--
	if t.gatesLeft == 0 {
		delete(s.parked, t)
		s.makeRunnableLocked(t)
		s.dispatchLocked()
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *Supervisor) makeRunnableLocked(t *Task) {
	heap.Push(&s.runnable, t)
}

// dispatchLocked hands free slots to the highest-priority runnable
// tasks.
func (s *Supervisor) dispatchLocked() {
	granted := false
	for s.free > 0 && s.runnable.Len() > 0 {
		t := heap.Pop(&s.runnable).(*Task)
		s.free--
		granted = true
		if !t.started {
			t.started = true
			s.Obs.TaskStarted(t.obsID)
			go s.body(t)
		} else {
			s.Obs.TaskUnblocked(t.obsID)
			t.resume <- struct{}{}
		}
	}
	if granted {
		s.Obs.ReadySample(s.runnable.Len())
	}
}

func (s *Supervisor) body(t *Task) {
	t.Ctx.Add(ctrace.CostTaskStart)
	s.runGuarded(t)
	t.Ctx.FireEvent(t.done)
	if s.rec != nil {
		s.rec.FinishTask(t.Ctx.ID, t.Ctx.Units)
	}
	// Note the finish (freeing the task's observed lane) before the
	// slot is returned, so an observer never sees more lanes busy than
	// slots exist.
	s.Obs.TaskFinished(t.obsID)
	s.mu.Lock()
	s.free++
	s.finished++
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runGuarded runs the task body with panic isolation: a panicking task
// is contained to its own stream instead of crashing the process.  The
// recovery reports the fault through OnPanic, then force-fires every
// unfired event the task was registered (via SetProducer) to produce —
// sibling streams blocked on those events resume and run to completion
// rather than wedging until the deadlock watchdog.  The caller (body)
// then fires Done and releases the slot exactly as for a clean finish.
func (s *Supervisor) runGuarded(t *Task) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		stack := debug.Stack()
		s.mu.Lock()
		s.faults++
		var fires []*event.Event
		for e, p := range s.producers {
			if p == t && !e.Fired() {
				fires = append(fires, e)
			}
		}
		cb := s.OnPanic
		s.mu.Unlock()
		s.Obs.TaskPanicked(t.obsID)
		if cb != nil {
			cb(t, r, stack)
		}
		for _, e := range fires {
			s.Obs.EventForceFired(e)
			e.Fire() // vet:allowfire forced fire on a dead task's behalf; EventForceFired is the record
		}
	}()
	t.run(t)
}

// Faults reports how many tasks panicked and were isolated.
func (s *Supervisor) Faults() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// releaseForWait gives up t's slot because it is about to block on e.
func (s *Supervisor) releaseForWait(t *Task, e *event.Event) {
	s.mu.Lock()
	s.Obs.TaskBlocked(t.obsID, obs.BlockHandled, e)
	s.free++
	s.blocked[t] = e
	// Run the task that resolves the blockage next, if it is ready.
	if p, ok := s.producers[e]; ok && p.heapIdx >= 0 {
		p.priority = -1 << 62
		heap.Fix(&s.runnable, p.heapIdx)
	}
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// reacquire returns t to the runnable queue after its event fired and
// blocks until a slot is granted.
func (s *Supervisor) reacquire(t *Task) {
	s.mu.Lock()
	delete(s.blocked, t)
	s.makeRunnableLocked(t)
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	<-t.resume
}

// Wait blocks until every spawned task has finished.  It breaks DKY
// deadlocks (possible only for erroneous programs, e.g. cyclic imports)
// by force-firing the events stalled tasks wait on, so compilation
// always terminates with diagnostics instead of hanging.
func (s *Supervisor) Wait() {
	s.mu.Lock()
	for s.finished < s.total {
		if s.free == s.slots && s.runnable.Len() == 0 {
			// Nothing is running or runnable, yet tasks remain: a stall.
			var fires []*event.Event
			// Tasks parked on foreign (cache) events are woken from
			// outside this compilation; their stall is not a deadlock.
			inTransit := len(s.external) > 0
			for _, e := range s.blocked {
				if e.Fired() {
					// A woken waiter is between its event firing and
					// re-acquiring a slot; it may fire the events the
					// others wait on.  Not a deadlock — let it land.
					inTransit = true
				} else {
					fires = append(fires, e)
				}
			}
			if inTransit {
				fires = nil
			}
			if len(fires) == 0 && !inTransit {
				for _, gates := range s.parked {
					for _, g := range gates {
						if !g.Fired() {
							fires = append(fires, g)
						}
					}
				}
			}
			if len(fires) > 0 {
				cb := s.OnDeadlock
				msg := "DKY deadlock broken: compilation cannot make progress (cyclic imports or missing declarations)\n" +
					s.stateDumpLocked()
				s.mu.Unlock()
				s.Obs.WatchdogFired()
				if cb != nil {
					cb(msg)
				}
				for _, e := range fires {
					s.Obs.EventForceFired(e)
					e.Fire() // vet:allowfire watchdog force-fire; EventForceFired is the record
				}
				s.mu.Lock()
				continue
			}
			if !inTransit {
				// No one to wake: tasks vanished without finishing —
				// this would be a scheduler bug; bail out rather than
				// hang.
				break
			}
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// stateDumpLocked renders the scheduler's full state — runnable heap,
// blocked/parked/external tasks, and for every awaited event its
// registered producer — so a DKY deadlock report names the stuck tasks
// instead of leaving the user to guess.  Lines within each section are
// sorted for deterministic output.  Caller holds s.mu.
func (s *Supervisor) stateDumpLocked() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler state: %d/%d tasks finished, %d/%d slots free, %d faults\n",
		s.finished, s.total, s.free, s.slots, s.faults)
	section := func(title string, lines []string) {
		if len(lines) == 0 {
			return
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "  %s:\n", title)
		for _, l := range lines {
			fmt.Fprintf(&b, "    %s\n", l)
		}
	}
	var runnable []string
	for _, t := range s.runnable {
		runnable = append(runnable, t.Label)
	}
	section("runnable", runnable)
	var blocked []string
	for t, e := range s.blocked {
		blocked = append(blocked, fmt.Sprintf("%s waits on %s", t.Label, s.eventDescLocked(e)))
	}
	section("blocked (handled waits)", blocked)
	var parked []string
	for t, gates := range s.parked {
		var unfired []string
		for _, g := range gates {
			if !g.Fired() {
				unfired = append(unfired, s.eventDescLocked(g))
			}
		}
		parked = append(parked, fmt.Sprintf("%s gated on %d event(s): %s",
			t.Label, len(unfired), strings.Join(unfired, ", ")))
	}
	section("parked (avoided gates)", parked)
	var external []string
	for t := range s.external {
		external = append(external, fmt.Sprintf("%s waits on a foreign compilation's event", t.Label))
	}
	section("external (cache waits)", external)
	return strings.TrimRight(b.String(), "\n")
}

// eventDescLocked names an event by its registered producer, the only
// identity events have.  Caller holds s.mu.
func (s *Supervisor) eventDescLocked(e *event.Event) string {
	if p, ok := s.producers[e]; ok {
		return fmt.Sprintf("event produced by %q", p.Label)
	}
	return "event with no registered producer"
}

// taskHeap orders runnable tasks by (priority, seq).
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*Task)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}
