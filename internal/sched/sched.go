// Package sched implements the Supervisors approach of §2.3.2: one
// worker slot per (virtual) processor, a priority-ordered ready queue
// searched in the paper's task-class order, and the three event wait
// disciplines of §2.3.3:
//
//   - avoided events gate a task out of the ready queue entirely until
//     they fire;
//   - handled events release the task's worker slot while it waits, and
//     the Supervisor preferentially boosts the task that will fire the
//     event (§2.3.4);
//   - barrier events hold the slot (token-queue consumers only; their
//     producers never block, so progress is guaranteed).
//
// The paper's constraint that a task begun by a worker had to be
// finished by that worker was an artifact of Topaz thread affinity; here
// each task is a goroutine and worker slots are a prioritized counting
// semaphore, which removes that deadlock case without changing the
// scheduling policy (see DESIGN.md).
package sched

import (
	"container/heap"
	"sync"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
)

// Priority computes a task's ready-queue priority: class-major (the
// §2.3.4 queue order), then larger sizes first within a class (code is
// generated for long procedures before short ones "to avoid a long
// sequential tail"), then spawn order.  Lower values run first.
func Priority(class ctrace.TaskKind, size int64) int64 {
	const classShift = 44
	if size < 0 {
		size = 0
	}
	if size >= 1<<classShift {
		size = 1<<classShift - 1
	}
	return int64(class)<<classShift - size
}

// Task is one schedulable unit of compilation work.
type Task struct {
	Ctx   *ctrace.TaskCtx
	Label string

	sup      *Supervisor
	kind     ctrace.TaskKind
	priority int64
	seq      int64
	run      func(*Task)
	done     *event.Event

	gatesLeft int
	started   bool
	resume    chan struct{}
	heapIdx   int // index in the runnable heap, -1 when absent
}

// Done returns the event fired when the task finishes.  Other tasks
// gate on it to sequence the stages of one stream.
func (t *Task) Done() *event.Event { return t.done }

// BarrierWait performs a barrier-event wait: the worker slot is held
// (§2.3.3).  It is the WaitFunc handed to token-queue readers.  The
// wait is noted unconditionally — token-block acquisitions are
// schedule-independent facts the simulator replays, whether or not this
// particular run had to block on them.
func (t *Task) BarrierWait(e *event.Event) {
	t.Ctx.NoteBarrier(e)
	if e.Fired() {
		return
	}
	e.Wait()
}

// HandledWait performs a handled-event wait: the slot is released so
// another task (preferentially the event's producer) can run, and
// re-acquired once the event fires.  It is the wait the symbol-table
// searcher uses for DKY blockages.
func (t *Task) HandledWait(e *event.Event) {
	if e.Fired() {
		return
	}
	t.sup.releaseForWait(t, e)
	e.Wait()
	t.sup.reacquire(t)
}

// ExternalWait parks t on an event owned by *another* compilation (an
// interface-cache entry whose leader is a different session).  The
// worker slot is released like a handled wait, but the Supervisor's
// deadlock watchdog must neither force-fire the foreign event nor
// treat the stall as a scheduler bug: progress arrives from outside
// this compilation.  The wait is not traced — in the trace the cached
// scope appears pre-fired once installed.
func (t *Task) ExternalWait(e *event.Event) {
	if e.Fired() {
		return
	}
	s := t.sup
	s.mu.Lock()
	s.free++
	s.external[t] = e
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	e.Wait()
	s.mu.Lock()
	delete(s.external, t)
	s.makeRunnableLocked(t)
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	<-t.resume
}

// Supervisor owns the worker slots and the ready queue.
type Supervisor struct {
	mu       sync.Mutex
	cond     *sync.Cond
	slots    int
	free     int
	runnable taskHeap
	seq      int64

	producers map[*event.Event]*Task
	blocked   map[*Task]*event.Event
	parked    map[*Task][]*event.Event
	external  map[*Task]*event.Event // waits on events owned by other compilations

	total    int
	finished int

	rec *ctrace.Recorder

	// OnDeadlock is invoked (outside the lock) with a description when
	// the watchdog breaks a stall; the driver reports it as an error.
	OnDeadlock func(msg string)
}

// New returns a Supervisor with the given number of worker slots
// (§2.3.2: one per processor).  rec may be nil.
func New(workers int, rec *ctrace.Recorder) *Supervisor {
	if workers < 1 {
		workers = 1
	}
	s := &Supervisor{
		slots: workers, free: workers, rec: rec,
		producers: make(map[*event.Event]*Task),
		blocked:   make(map[*Task]*event.Event),
		parked:    make(map[*Task][]*event.Event),
		external:  make(map[*Task]*event.Event),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetProducer declares that task t is the one that will fire e; the
// Supervisor uses this to run the DKY-resolving task preferentially
// when someone blocks on e (§2.3.4).
func (s *Supervisor) SetProducer(e *event.Event, t *Task) {
	s.mu.Lock()
	s.producers[e] = t
	s.mu.Unlock()
}

// Spawn registers a task.  parent supplies the creation stamp for the
// trace (nil for the initial tasks).  gates are the task's avoided
// events: it enters the ready queue only once all have fired.
func (s *Supervisor) Spawn(kind ctrace.TaskKind, stream int32, label string,
	priority int64, gates []*event.Event, parent *ctrace.TaskCtx, run func(*Task)) *Task {

	ctx := &ctrace.TaskCtx{Kind: kind, Rec: s.rec}
	if s.rec != nil {
		ctx.ID = s.rec.RegisterTask(kind, stream, label)
		var pid ctrace.TaskID
		var at ctrace.Stamp
		if parent != nil {
			pid = parent.ID
			at = parent.Stamp()
		}
		s.rec.NoteSpawn(pid, at, ctx.ID, gates)
	}
	t := &Task{
		Ctx: ctx, Label: label, sup: s, kind: kind, priority: priority,
		run: run, done: event.New(), resume: make(chan struct{}, 1), heapIdx: -1,
	}

	s.mu.Lock()
	s.total++
	t.seq = s.seq
	s.seq++
	// Each gate's Subscribe callback runs exactly once (immediately if
	// the event already fired), so counting len(gates) and decrementing
	// per callback is race-free.
	t.gatesLeft = len(gates)
	if t.gatesLeft == 0 {
		s.makeRunnableLocked(t)
		s.dispatchLocked()
		s.mu.Unlock()
		return t
	}
	s.parked[t] = gates
	s.mu.Unlock()

	for _, g := range gates {
		g.Subscribe(func() { s.gateFired(t) })
	}
	return t
}

func (s *Supervisor) gateFired(t *Task) {
	s.mu.Lock()
	t.gatesLeft--
	if t.gatesLeft == 0 {
		delete(s.parked, t)
		s.makeRunnableLocked(t)
		s.dispatchLocked()
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *Supervisor) makeRunnableLocked(t *Task) {
	heap.Push(&s.runnable, t)
}

// dispatchLocked hands free slots to the highest-priority runnable
// tasks.
func (s *Supervisor) dispatchLocked() {
	for s.free > 0 && s.runnable.Len() > 0 {
		t := heap.Pop(&s.runnable).(*Task)
		s.free--
		if !t.started {
			t.started = true
			go s.body(t)
		} else {
			t.resume <- struct{}{}
		}
	}
}

func (s *Supervisor) body(t *Task) {
	t.Ctx.Add(ctrace.CostTaskStart)
	t.run(t)
	t.Ctx.FireEvent(t.done)
	if s.rec != nil {
		s.rec.FinishTask(t.Ctx.ID, t.Ctx.Units)
	}
	s.mu.Lock()
	s.free++
	s.finished++
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// releaseForWait gives up t's slot because it is about to block on e.
func (s *Supervisor) releaseForWait(t *Task, e *event.Event) {
	s.mu.Lock()
	s.free++
	s.blocked[t] = e
	// Run the task that resolves the blockage next, if it is ready.
	if p, ok := s.producers[e]; ok && p.heapIdx >= 0 {
		p.priority = -1 << 62
		heap.Fix(&s.runnable, p.heapIdx)
	}
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// reacquire returns t to the runnable queue after its event fired and
// blocks until a slot is granted.
func (s *Supervisor) reacquire(t *Task) {
	s.mu.Lock()
	delete(s.blocked, t)
	s.makeRunnableLocked(t)
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	<-t.resume
}

// Wait blocks until every spawned task has finished.  It breaks DKY
// deadlocks (possible only for erroneous programs, e.g. cyclic imports)
// by force-firing the events stalled tasks wait on, so compilation
// always terminates with diagnostics instead of hanging.
func (s *Supervisor) Wait() {
	s.mu.Lock()
	for s.finished < s.total {
		if s.free == s.slots && s.runnable.Len() == 0 {
			// Nothing is running or runnable, yet tasks remain: a stall.
			var fires []*event.Event
			// Tasks parked on foreign (cache) events are woken from
			// outside this compilation; their stall is not a deadlock.
			inTransit := len(s.external) > 0
			for _, e := range s.blocked {
				if e.Fired() {
					// A woken waiter is between its event firing and
					// re-acquiring a slot; it may fire the events the
					// others wait on.  Not a deadlock — let it land.
					inTransit = true
				} else {
					fires = append(fires, e)
				}
			}
			if inTransit {
				fires = nil
			}
			if len(fires) == 0 && !inTransit {
				for _, gates := range s.parked {
					for _, g := range gates {
						if !g.Fired() {
							fires = append(fires, g)
						}
					}
				}
			}
			if len(fires) > 0 {
				cb := s.OnDeadlock
				s.mu.Unlock()
				if cb != nil {
					cb("DKY deadlock broken: compilation cannot make progress (cyclic imports or missing declarations)")
				}
				for _, e := range fires {
					e.Fire()
				}
				s.mu.Lock()
				continue
			}
			if !inTransit {
				// No one to wake: tasks vanished without finishing —
				// this would be a scheduler bug; bail out rather than
				// hang.
				break
			}
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// taskHeap orders runnable tasks by (priority, seq).
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*Task)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}
